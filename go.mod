module lstore

go 1.24
