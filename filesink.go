package lstore

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"lstore/internal/wal"
)

// This file is the real-disk half of the durability subsystem: file-backed
// WAL and checkpoint sinks with honest fsync semantics, plus offline
// verification of checkpoint images. The in-memory sinks (WALBuffer,
// CheckpointBuffer) remain the reference implementations; the crash-torture
// suite holds these to the same recovery properties.

// WALFile is a file-backed, truncatable WAL sink (an alias for the wal
// package's FileSink): pass one to WithWAL for a log that survives the
// process. Writes are buffered by the logger and made durable by Sync at
// each flush; a failed fsync poisons the sink permanently (never
// retry-and-trust a failed sync). Truncation rewrites the retained suffix
// and atomically renames it into place.
type WALFile = wal.FileSink

// OpenWALFile opens (creating if absent) a file-backed WAL sink at path and
// positions it to append after any bytes already durable there. A stale
// truncation temp file from a crashed truncation is removed.
func OpenWALFile(path string) (*WALFile, error) { return wal.OpenFileSink(path) }

// FileCheckpointSink is a file-backed CheckpointSink: each image is written
// to a temp file, fsynced, and atomically renamed over the previous one, so
// the file at path always holds a complete image — a crash mid-write leaves
// the previous checkpoint authoritative. Latest works after a process
// restart by re-reading (and verifying) the file.
type FileCheckpointSink struct {
	mu    sync.Mutex
	path  string
	info  CheckpointInfo // guarded by mu; valid when taken > 0
	taken int            // guarded by mu; images written by THIS process
}

// NewFileCheckpointSink creates a sink storing its latest image at path. A
// stale temp file from a crashed write is removed; an existing complete
// image at path is preserved and served by Latest.
func NewFileCheckpointSink(path string) (*FileCheckpointSink, error) {
	if err := os.Remove(path + ".tmp"); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("lstore: checkpoint sink: %w", err)
	}
	return &FileCheckpointSink{path: path}, nil
}

// Checkpoint durably replaces the latest image: write temp, fsync, rename,
// fsync the directory. Any failure keeps the previous image authoritative
// (the background checkpointer then skips WAL truncation for the round).
func (s *FileCheckpointSink) Checkpoint(image []byte, info CheckpointInfo) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp := s.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(image); err != nil {
		f.Close()
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup of a failed write
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup of a failed write
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup of a failed write
		return err
	}
	if err := os.Rename(tmp, s.path); err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup of a failed write
		return err
	}
	syncDirBestEffort(filepath.Dir(s.path))
	s.info = info
	s.taken++
	return nil
}

// Latest returns a reader over the most recent complete image and its info;
// ok is false when no image exists. After a restart (no image written by
// this process yet) the file is verified and its info reconstructed from the
// image itself — a torn or corrupt file is reported as absent rather than
// handed to restore.
func (s *FileCheckpointSink) Latest() (io.Reader, CheckpointInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := os.ReadFile(s.path)
	if err != nil {
		return nil, CheckpointInfo{}, false
	}
	info := s.info
	if s.taken == 0 {
		rep := VerifyCheckpoint(bytes.NewReader(data))
		if !rep.Complete {
			return nil, CheckpointInfo{}, false
		}
		info = rep.Info
	}
	return bytes.NewReader(data), info, true
}

// Taken returns how many checkpoints this process has written.
func (s *FileCheckpointSink) Taken() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.taken
}

// Path returns the image path.
func (s *FileCheckpointSink) Path() string { return s.path }

// syncDirBestEffort fsyncs a directory so a rename inside it is durable.
// Best-effort: some filesystems reject directory fsync; the rename itself
// is still atomic.
func syncDirBestEffort(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()  //nolint:errcheck // best-effort; see doc comment
	d.Close() //nolint:errcheck // read-only handle
}

// CheckpointVerifyReport is the result of an offline checkpoint integrity
// scan: frame-level verification (CRC, torn tail) plus structural
// verification (header, per-table row counts, end-frame totals) — what
// restore WOULD check, without loading anything.
type CheckpointVerifyReport struct {
	wal.FrameScan
	// Complete is true iff the image ends with a consistent end frame and no
	// trailing garbage: exactly the images restoreCheckpoint accepts.
	Complete bool
	// Info is the image's own description (watermark, cut timestamp, table
	// and row counts), valid when the header frame verified.
	Info CheckpointInfo
	// Detail explains a structural rejection ("" when Complete).
	Detail string
}

// VerifyCheckpoint walks a checkpoint image without restoring it. Unlike a
// log — whose torn tail is a meaningful crash cut — a checkpoint is only
// usable when Complete; anything else must be treated as absent.
func VerifyCheckpoint(r io.Reader) CheckpointVerifyReport {
	var rep CheckpointVerifyReport
	var (
		headerSeen, endSeen bool
		nTables             uint64
		tablesSeen          int64
		inTable             bool
		curTable            uint64
		curCols             int
		curCount, rows      int64
	)
	structural := func(format string, args ...any) error {
		rep.Detail = fmt.Sprintf(format, args...)
		return fmt.Errorf("%s", rep.Detail)
	}
	rep.FrameScan = wal.ScanFrames(r, func(payload []byte) error {
		if endSeen {
			return structural("frame after end frame")
		}
		if len(payload) == 0 {
			return structural("empty frame")
		}
		fp := &ckptParser{p: payload}
		tag := fp.byte()
		if !headerSeen && tag != frameHeader {
			return structural("image does not start with a header frame")
		}
		switch tag {
		case frameHeader:
			if headerSeen {
				return structural("duplicate header frame")
			}
			if string(fp.bytes(len(ckptMagic))) != ckptMagic {
				return structural("bad magic: not a checkpoint image")
			}
			if v := fp.uvarint(); !ckptVersionOK(v) {
				return structural("checkpoint version %d unsupported", v)
			}
			rep.Info.Time = fp.uvarint()
			rep.Info.LSN = fp.uvarint()
			nTables = fp.uvarint()
			if fp.err != nil {
				return structural("truncated header frame")
			}
			headerSeen = true
		case frameTable:
			if inTable {
				return structural("table frame inside an open table section")
			}
			curTable = fp.uvarint()
			fp.str() // name
			fp.uvarint()
			nCols := fp.uvarint()
			for i := uint64(0); i < nCols; i++ {
				fp.str()
				fp.byte()
			}
			nSec := fp.uvarint()
			for i := uint64(0); i < nSec; i++ {
				fp.uvarint()
			}
			nRanges := fp.uvarint()
			for i := uint64(0); i < nRanges; i++ {
				fp.byte()
				fp.uvarint()
				nc := fp.uvarint()
				for j := uint64(0); j < nc; j++ {
					fp.uvarint()
					fp.uvarint()
				}
			}
			if fp.err != nil {
				return structural("truncated table frame")
			}
			inTable, curCols, curCount = true, int(nCols), 0
			tablesSeen++
		case frameRowBatch:
			id := fp.uvarint()
			nRows := fp.uvarint()
			if fp.err != nil {
				return structural("truncated row batch frame")
			}
			if !inTable || id != curTable {
				return structural("row batch for table %d outside its section", id)
			}
			for i := uint64(0); i < nRows; i++ {
				tvals, off, err := wal.ParseTypedVals(fp.p, fp.off)
				if err != nil {
					return structural("row %d of batch unparseable", i)
				}
				fp.off = off
				if len(tvals) != curCols {
					return structural("row arity %d, table declares %d columns", len(tvals), curCols)
				}
			}
			curCount += int64(nRows)
			rows += int64(nRows)
		case framePageRange:
			id := fp.uvarint()
			fp.uvarint() // first RID
			fp.uvarint() // slot count
			nRows := fp.uvarint()
			nCols := fp.uvarint()
			if fp.err != nil {
				return structural("truncated page frame")
			}
			if !inTable || id != curTable {
				return structural("page frame for table %d outside its section", id)
			}
			if int(nCols) != curCols {
				return structural("page frame has %d columns, table declares %d", nCols, curCols)
			}
			for c := uint64(0); c <= nCols; c++ { // nCols column pages + starts
				fp.bytes(int(fp.uvarint()))
			}
			if fp.err != nil || fp.off != len(fp.p) {
				return structural("page frame payload malformed")
			}
			curCount += int64(nRows)
			rows += int64(nRows)
		case framePageRef:
			id := fp.uvarint()
			fp.uvarint() // first RID
			fp.uvarint() // slot count
			nRows := fp.uvarint()
			nCols := fp.uvarint()
			if fp.err != nil {
				return structural("truncated ref frame")
			}
			if !inTable || id != curTable {
				return structural("ref frame for table %d outside its section", id)
			}
			if int(nCols) != curCols {
				return structural("ref frame has %d columns, table declares %d", nCols, curCols)
			}
			// nCols column descriptors + starts; CRC-verification against the
			// spill file is restore's job (the file isn't at hand here).
			for c := uint64(0); c <= nCols; c++ {
				fp.spillDesc()
			}
			if fp.err != nil || fp.off != len(fp.p) {
				return structural("ref frame payload malformed")
			}
			curCount += int64(nRows)
			rows += int64(nRows)
		case frameTableEnd:
			id := fp.uvarint()
			want := fp.uvarint()
			if fp.err != nil {
				return structural("truncated table end frame")
			}
			if !inTable || id != curTable {
				return structural("table end for table %d outside its section", id)
			}
			if curCount != int64(want) {
				return structural("table %d holds %d rows, section declares %d", id, curCount, want)
			}
			inTable = false
		case frameEnd:
			want := fp.uvarint()
			if fp.err != nil {
				return structural("truncated end frame")
			}
			if inTable {
				return structural("end frame inside an open table section")
			}
			if rows != int64(want) {
				return structural("image holds %d rows, end frame declares %d", rows, want)
			}
			if tablesSeen != int64(nTables) {
				return structural("image holds %d tables, header declares %d", tablesSeen, nTables)
			}
			endSeen = true
		default:
			return structural("unknown frame tag %d", tag)
		}
		return nil
	})
	rep.Info.Tables = int(tablesSeen)
	rep.Info.Rows = rows
	rep.Complete = endSeen && rep.Reason == "clean-eof" && rep.ReadErr == nil
	if !rep.Complete && rep.Detail == "" {
		if !endSeen && rep.Reason == "clean-eof" {
			rep.Detail = "image ends before the end frame"
		} else {
			rep.Detail = "image torn or corrupt: " + rep.Reason
		}
	}
	return rep
}
