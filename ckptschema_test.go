package lstore

import (
	"bytes"
	"testing"
)

// TestCheckpointSchema: the schema-only walk over a checkpoint image must
// return every table's declaration — name, key, columns with types,
// secondary indexes — in creation (id) order, and the declarations must
// rebuild schemas equal to the originals.
func TestCheckpointSchema(t *testing.T) {
	db := Open()
	defer db.Close()
	if _, err := db.CreateTable("accounts", NewSchema("id",
		Column{Name: "id", Type: Int64},
		Column{Name: "owner", Type: String},
		Column{Name: "balance", Type: Int64},
	), TableOptions{SecondaryIndexes: []string{"owner"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("events", NewSchema("seq",
		Column{Name: "seq", Type: Int64},
		Column{Name: "kind", Type: String},
	)); err != nil {
		t.Fatal(err)
	}
	// Some data, so the walk has row frames to skip over.
	tbl, _ := db.Table("accounts")
	tx := db.Begin(ReadCommitted)
	for i := int64(1); i <= 10; i++ {
		if err := tbl.Insert(tx, Row{"id": Int(i), "owner": Str("o"), "balance": Int(i * 100)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	var sink CheckpointBuffer
	if _, err := db.CheckpointTo(&sink); err != nil {
		t.Fatal(err)
	}
	r, _, ok := sink.Latest()
	if !ok {
		t.Fatal("no checkpoint taken")
	}
	decls, err := CheckpointSchema(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(decls) != 2 {
		t.Fatalf("got %d table declarations, want 2", len(decls))
	}
	a := decls[0]
	if a.Name != "accounts" || a.Key != "id" {
		t.Fatalf("decl 0: %q key %q", a.Name, a.Key)
	}
	if len(a.Columns) != 3 || a.Columns[1].Name != "owner" || a.Columns[1].Type != String {
		t.Fatalf("accounts columns: %+v", a.Columns)
	}
	if len(a.SecondaryIndexes) != 1 || a.SecondaryIndexes[0] != "owner" {
		t.Fatalf("accounts indexes: %v", a.SecondaryIndexes)
	}
	e := decls[1]
	if e.Name != "events" || e.Key != "seq" || len(e.SecondaryIndexes) != 0 {
		t.Fatalf("decl 1: %+v", e)
	}

	// The declarations must be good enough to rebuild a DB that Recover
	// accepts — the contract OpenStore relies on.
	db2 := Open()
	defer db2.Close()
	for _, d := range decls {
		if _, err := db2.CreateTable(d.Name, d.Schema(), TableOptions{SecondaryIndexes: d.SecondaryIndexes}); err != nil {
			t.Fatalf("recreate %q from declaration: %v", d.Name, err)
		}
	}
	r2, _, _ := sink.Latest()
	stats, err := Recover(db2, r2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CheckpointRows != 10 {
		t.Fatalf("recovered %d rows through declared schema, want 10", stats.CheckpointRows)
	}
	// And the secondary index really exists on the rebuilt table.
	tbl2, _ := db2.Table("accounts")
	keys, err := tbl2.FindBy(db2.Now(), "owner", Str("o"))
	if err != nil || len(keys) != 10 {
		t.Fatalf("FindBy on recreated index: %d keys, err %v", len(keys), err)
	}
}

// TestCheckpointSchemaTornImage: a truncated image must yield an error, not
// a silently partial schema.
func TestCheckpointSchemaTornImage(t *testing.T) {
	db := Open()
	defer db.Close()
	if _, err := db.CreateTable("t", NewSchema("id", Column{Name: "id", Type: Int64})); err != nil {
		t.Fatal(err)
	}
	var sink CheckpointBuffer
	if _, err := db.CheckpointTo(&sink); err != nil {
		t.Fatal(err)
	}
	r, _, _ := sink.Latest()
	var full bytes.Buffer
	if _, err := full.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	img := full.Bytes()
	if _, err := CheckpointSchema(bytes.NewReader(img[:len(img)-3])); err == nil {
		t.Fatal("torn checkpoint image parsed without error")
	}
}
