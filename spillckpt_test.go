package lstore

import (
	"bytes"
	"strings"
	"testing"

	"lstore/internal/wal"
)

// spillCkptOpts returns table options for a spill-backed table whose
// checkpoints reference cold pages by descriptor.
func spillCkptOpts(spill SpillSink) TableOptions {
	return TableOptions{
		RangeSize:           64,
		DisableAutoMerge:    true,
		Spill:               spill,
		PoolBytes:           4096, // a handful of frames: eviction is exercised
		CheckpointSpillRefs: true,
	}
}

// refFrameStats counts framePageRef and framePageRange frames in an image.
func refFrameStats(t *testing.T, image []byte) (refs, pages int) {
	t.Helper()
	scan := wal.ScanFrames(bytes.NewReader(image), func(payload []byte) error {
		switch payload[0] {
		case framePageRef:
			refs++
		case framePageRange:
			pages++
		}
		return nil
	})
	if scan.Reason != "clean-eof" {
		t.Fatalf("image scan: %s", scan.Reason)
	}
	return refs, pages
}

// spillCkptImage builds a spill-backed table (4 cold ranges + warm tail),
// checkpoints it, and returns the image, the spill, and the expected state.
func spillCkptImage(t *testing.T) (image []byte, spill *MemSpill, want map[int64]Row) {
	t.Helper()
	spill = NewMemSpill()
	db := Open()
	tbl, err := db.CreateTable("t", intSchema(), spillCkptOpts(spill))
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin(ReadCommitted)
	for i := int64(0); i < 300; i++ {
		if err := tbl.Insert(tx, Row{"id": Int(i), "a": Int(i % 5), "b": Int(1000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	tbl.Merge()
	want = tableState(t, tbl, db.Now())
	var ckpt bytes.Buffer
	info, err := db.Checkpoint(&ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != 300 {
		t.Fatalf("checkpoint declares %d rows, want 300", info.Rows)
	}
	db.Close()
	return ckpt.Bytes(), spill, want
}

// TestCheckpointSpillRefs: cold ranges of a spill-backed table reach the
// checkpoint as descriptor frames — no page payloads — and restore with the
// same spill re-attached resolves them back to identical state.
func TestCheckpointSpillRefs(t *testing.T) {
	image, spill, want := spillCkptImage(t)

	refs, pages := refFrameStats(t, image)
	if refs != 4 {
		t.Fatalf("image holds %d ref frames, want 4 (every sealed range spilled)", refs)
	}
	if pages != 0 {
		t.Fatalf("image holds %d page frames, want 0 (refs replace payloads)", pages)
	}
	if rep := VerifyCheckpoint(bytes.NewReader(image)); !rep.Complete {
		t.Fatalf("VerifyCheckpoint rejects a ref image: %s (%s)", rep.Reason, rep.Detail)
	}
	// The point of refs: 4 ranges × 4 pages of descriptors is a few hundred
	// bytes, while the spill holds the actual page payloads.
	if int64(len(image)) >= spill.Size() {
		t.Fatalf("ref image is %d bytes, spill holds %d: image should not carry payloads", len(image), spill.Size())
	}

	db2 := Open()
	defer db2.Close()
	tbl2, err := db2.CreateTable("t", intSchema(), spillCkptOpts(spill))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(db2, bytes.NewReader(image), nil); err != nil {
		t.Fatal(err)
	}
	assertSameState(t, want, tableState(t, tbl2, db2.Now()), "restored from spill refs")
	if st := tbl2.Stats(); st.SpilledPages == 0 {
		t.Fatal("restored table spilled no pages: install must publish through the pool")
	}
}

// TestCheckpointSpillRefsNeedSpillFile: a ref image restored without the
// spill attached, or with the wrong spill, must fail loudly — never install
// partial or forged ranges.
func TestCheckpointSpillRefsNeedSpillFile(t *testing.T) {
	image, _, _ := spillCkptImage(t)

	// No spill attached at all.
	db2 := Open()
	if _, err := db2.CreateTable("t", intSchema(), TableOptions{RangeSize: 64, DisableAutoMerge: true}); err != nil {
		t.Fatal(err)
	}
	_, err := Recover(db2, bytes.NewReader(image), nil)
	if err == nil || !strings.Contains(err.Error(), "no spill file") {
		t.Fatalf("restore without spill: got %v, want a no-spill-file error", err)
	}
	db2.Close()

	// A different (empty) spill: descriptors point beyond its end.
	db3 := Open()
	if _, err := db3.CreateTable("t", intSchema(), spillCkptOpts(NewMemSpill())); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(db3, bytes.NewReader(image), nil); err == nil {
		t.Fatal("restore against the wrong spill succeeded")
	}
	db3.Close()
}

// TestCheckpointSpillRefsCorruptFrame: a bit flip inside a spilled frame is
// caught by the descriptor CRC at restore.
func TestCheckpointSpillRefsCorruptFrame(t *testing.T) {
	image, spill, _ := spillCkptImage(t)
	spill.Corrupt = func(d SpillDesc, p []byte) {
		if d.Off == 0 { // first frame only: the error must still surface
			p[len(p)/2] ^= 0x40
		}
	}
	db2 := Open()
	defer db2.Close()
	if _, err := db2.CreateTable("t", intSchema(), spillCkptOpts(spill)); err != nil {
		t.Fatal(err)
	}
	_, err := Recover(db2, bytes.NewReader(image), nil)
	if err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("restore over a corrupt frame: got %v, want a CRC error", err)
	}
}

// TestCheckpointSpillRefsFileSpill: the same round trip over a real spill
// file, closed and reopened between checkpoint and restore — descriptors
// survive process boundaries.
func TestCheckpointSpillRefsFileSpill(t *testing.T) {
	path := t.TempDir() + "/spill.lst"
	spill, err := OpenFileSpill(path)
	if err != nil {
		t.Fatal(err)
	}
	db := Open()
	tbl, err := db.CreateTable("t", intSchema(), spillCkptOpts(spill))
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin(ReadCommitted)
	for i := int64(0); i < 256; i++ {
		if err := tbl.Insert(tx, Row{"id": Int(i), "a": Int(i % 3), "b": Int(i)}); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	tbl.Merge()
	want := tableState(t, tbl, db.Now())
	var ckpt bytes.Buffer
	if _, err := db.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	db.Close()
	if err := spill.Close(); err != nil {
		t.Fatal(err)
	}

	if refs, _ := refFrameStats(t, ckpt.Bytes()); refs == 0 {
		t.Fatal("precondition: image has no ref frames")
	}
	spill2, err := OpenFileSpill(path)
	if err != nil {
		t.Fatal(err)
	}
	db2 := Open()
	defer db2.Close()
	tbl2, err := db2.CreateTable("t", intSchema(), spillCkptOpts(spill2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(db2, bytes.NewReader(ckpt.Bytes()), nil); err != nil {
		t.Fatal(err)
	}
	assertSameState(t, want, tableState(t, tbl2, db2.Now()), "restored from reopened spill file")
}
