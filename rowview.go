package lstore

import "fmt"

// RowView is the zero-allocation row cursor Query.Rows streams matching
// records through. Its accessors decode lazily, column by column, straight
// from the scan engine's pooled scratch — no per-row map, no per-row Value
// slice. A view is only valid inside the callback that received it: the
// underlying buffer is overwritten for the next row. Call Row to
// materialize an independent copy.
//
// Accessors address projected columns by name (the names passed to Select,
// or every schema column when Select was not called) or by projection
// position. Addressing a column outside the projection panics — it is a
// programming error on par with an out-of-range index, and silently
// returning zero would corrupt analytics.
type RowView struct {
	tbl   *Table
	cols  []int    // schema column index per projected column
	names []string // projected column names, aligned with cols
	vals  []uint64 // current row's slot-encoded values (projection prefix)
	key   int64
}

// Key returns the record's primary key.
func (rv *RowView) Key() int64 { return rv.key }

// NumCols returns the number of projected columns.
func (rv *RowView) NumCols() int { return len(rv.cols) }

// Name returns the name of projected column i.
func (rv *RowView) Name(i int) string { return rv.names[i] }

// ValueAt decodes projected column i.
func (rv *RowView) ValueAt(i int) Value {
	return rv.tbl.store.DecodeSlot(rv.cols[i], rv.vals[i])
}

// IntAt returns projected column i as an int64 (0 when null or non-integer).
func (rv *RowView) IntAt(i int) int64 { return rv.ValueAt(i).Int() }

// StrAt returns projected column i as a string ("" when null or integer).
func (rv *RowView) StrAt(i int) string { return rv.ValueAt(i).Str() }

func (rv *RowView) pos(name string) int {
	for i, n := range rv.names {
		if n == name {
			return i
		}
	}
	panic(fmt.Sprintf("lstore: RowView has no projected column %q (projection: %v)", name, rv.names))
}

// Value decodes the named projected column.
func (rv *RowView) Value(name string) Value { return rv.ValueAt(rv.pos(name)) }

// Int returns the named projected column as an int64 (0 when null).
func (rv *RowView) Int(name string) int64 { return rv.ValueAt(rv.pos(name)).Int() }

// Str returns the named projected column as a string ("" when null).
func (rv *RowView) Str(name string) string { return rv.ValueAt(rv.pos(name)).Str() }

// IsNull reports whether the named projected column is null.
func (rv *RowView) IsNull(name string) bool { return rv.ValueAt(rv.pos(name)).IsNull() }

// Row materializes the projection as an independent Row map (this
// allocates; hot paths should use the lazy accessors instead).
func (rv *RowView) Row() Row {
	row := make(Row, len(rv.cols))
	for i, name := range rv.names {
		row[name] = rv.ValueAt(i)
	}
	return row
}
