package lstore

import (
	"fmt"
	"math"

	"lstore/internal/core"
	"lstore/internal/types"
)

// This file is the query planner: it compiles a Query's projection,
// predicates and aggregates into one of three physical plans over the
// shared columnar scan engine (internal/core/scan.go):
//
//   - planProbe: an equality predicate on a column with a declared
//     secondary index resolves through the engine's point face
//     (ProbeFiltered → probeSlot). The probe predicate stays in the pushed
//     predicate list — index entries may be stale (§3.1), so every
//     candidate re-checks against its visible version.
//   - planScan: everything else compiles onto the bulk face
//     (ScanFiltered / ScanAggregate → rangeScanner) with the predicates
//     pushed down as slot windows, evaluated vectorized over the decoded
//     column pages before any row materialization.
//   - planEmpty: a predicate that provably matches nothing (a string absent
//     from the column dictionary, an inverted Between) short-circuits the
//     whole query.

type planKind uint8

const (
	planScan planKind = iota
	planProbe
	planEmpty
)

// queryPlan is one compiled query: the schema columns the engine must
// materialize (projection first, then predicate/aggregate columns, then the
// key when requested) and the predicates/aggregates re-indexed onto
// positions within that column list.
type queryPlan struct {
	kind      planKind
	readCols  []int
	nProj     int
	projNames []string
	keyPos    int // position of the key column within readCols (-1 if absent)
	preds     []core.Pred
	aggs      []core.AggSpec
	probeCol  int    // schema column of the index probe (planProbe only)
	probeSlot uint64 // encoded probe value
}

// planQuery compiles a query. proj lists the projected column names (nil
// for none), preds the predicates, aggs the aggregates; needKey forces the
// key column into readCols (Rows and Keys deliver it).
func (tb *Table) planQuery(proj []string, preds []Predicate, aggs []Agg, needKey bool) (*queryPlan, error) {
	p := &queryPlan{kind: planScan, keyPos: -1, probeCol: -1}

	for _, name := range proj {
		ci := tb.schema.ColIndex(name)
		if ci < 0 {
			return nil, fmt.Errorf("lstore: table %q has no column %q", tb.name, name)
		}
		p.readCols = append(p.readCols, ci)
		p.projNames = append(p.projNames, name)
	}
	p.nProj = len(p.readCols)

	// posOf returns the position of schema column ci within readCols,
	// appending it when absent. Predicate and aggregate columns may alias
	// projection positions — the materialized data is identical.
	posOf := func(ci int) int {
		for i, c := range p.readCols {
			if c == ci {
				return i
			}
		}
		p.readCols = append(p.readCols, ci)
		return len(p.readCols) - 1
	}

	empty := false
	for _, pr := range preds {
		ci := tb.schema.ColIndex(pr.col)
		if ci < 0 {
			return nil, fmt.Errorf("lstore: table %q has no column %q", tb.name, pr.col)
		}
		lo, hi, negate, none, err := tb.compilePred(ci, pr)
		if err != nil {
			return nil, fmt.Errorf("lstore: predicate on column %q: %w", pr.col, err)
		}
		if none {
			empty = true
			continue // keep validating the remaining predicates
		}
		p.preds = append(p.preds, core.Pred{Idx: posOf(ci), Lo: lo, Hi: hi, Negate: negate})
	}

	for _, a := range aggs {
		if a.op == core.AggCount {
			p.aggs = append(p.aggs, core.AggSpec{Op: a.op})
			continue
		}
		ci := tb.schema.ColIndex(a.col)
		if ci < 0 {
			return nil, fmt.Errorf("lstore: table %q has no column %q", tb.name, a.col)
		}
		if tb.schema.Cols[ci].Type != types.Int64 {
			return nil, fmt.Errorf("lstore: aggregate over non-integer column %q: %w", a.col, ErrTypeMismatch)
		}
		p.aggs = append(p.aggs, core.AggSpec{Op: a.op, Idx: posOf(ci)})
	}

	if needKey {
		p.keyPos = posOf(tb.schema.Key)
	}
	if len(p.readCols) == 0 {
		// A bare COUNT is the only shape that materializes nothing. Plan the
		// key column in anyway: the engine's zero-column path is correct but
		// forfeits the merged fast path and the scan worker pool (stride-0
		// rows cannot ride the parallel staging buffers), while one key
		// column keeps word-at-a-time classification and fan-out.
		posOf(tb.schema.Key)
	}
	if empty {
		p.kind = planEmpty
		return p, nil
	}

	// Index selection: the first point-equality predicate (a degenerate
	// non-null window) on a column with a declared secondary index turns the
	// whole query into scattered point probes instead of a table scan.
	// IS NULL windows are ineligible — secondary indexes never hold nulls.
	for i := range p.preds {
		pr := p.preds[i]
		if pr.Negate || pr.Lo != pr.Hi || pr.Lo == types.NullSlot {
			continue
		}
		if ci := p.readCols[pr.Idx]; tb.store.HasSecondary(ci) {
			p.kind = planProbe
			p.probeCol = ci
			p.probeSlot = pr.Lo
			break
		}
	}
	return p, nil
}

// compilePred lowers one predicate to an inclusive slot window [lo, hi]
// (negate inverts it with null exclusion; see core.Pred). none reports a
// predicate that provably matches no stored row. Int64 slot encoding is
// order-preserving, so every comparison becomes a window; String columns
// admit only (in)equality and null tests.
func (tb *Table) compilePred(ci int, pr Predicate) (lo, hi uint64, negate, none bool, err error) {
	switch pr.op {
	case opIsNull:
		return types.NullSlot, types.NullSlot, false, false, nil
	case opNotNull:
		return types.NullSlot, types.NullSlot, true, false, nil
	}

	ordered := pr.op != opEq && pr.op != opNe
	if ordered && tb.schema.Cols[ci].Type != types.Int64 {
		return 0, 0, false, false, fmt.Errorf("ordered comparison on %s column: %w",
			tb.schema.Cols[ci].Type, ErrTypeMismatch)
	}
	if ordered && (pr.v.IsNull() || (pr.op == opBetween && pr.v2.IsNull())) {
		return 0, 0, false, false, fmt.Errorf("null operand in ordered comparison: %w", ErrTypeMismatch)
	}

	// math.MaxInt64 is not storable (its encoding would collide with the
	// implicit null, so the write path rejects it); predicates mentioning it
	// lower to what the collision-free universe implies instead of comparing
	// a saturated encoding.
	isMax := func(v Value) bool {
		return !v.IsNull() && v.Kind() == types.Int64 && v.Int() == math.MaxInt64
	}
	if tb.schema.Cols[ci].Type == types.Int64 && isMax(pr.v) {
		switch pr.op {
		case opEq, opGt, opGe:
			return 0, 0, false, true, nil // nothing stored equals or exceeds it
		case opNe:
			return types.NullSlot, types.NullSlot, true, false, nil // every non-null differs
		case opLt, opLe:
			return 0, types.NullSlot - 1, false, false, nil // everything storable is below
		case opBetween:
			return 0, 0, false, true, nil // lo above every storable value
		}
	}

	sv, ok, err := tb.store.LookupSlot(ci, pr.v)
	if err != nil {
		return 0, 0, false, false, err // ErrBadValue == ErrTypeMismatch
	}

	switch pr.op {
	case opEq:
		// Eq(Null) encodes to the IS NULL window [∅, ∅] naturally.
		return sv, sv, false, !ok, nil
	case opNe:
		if !ok {
			// The operand is absent from the dictionary: every non-null
			// value differs, which is exactly IS NOT NULL.
			return types.NullSlot, types.NullSlot, true, false, nil
		}
		return sv, sv, true, false, nil
	case opLt:
		if sv == 0 {
			return 0, 0, false, true, nil // nothing below the minimum encoding
		}
		return 0, sv - 1, false, false, nil
	case opLe:
		return 0, sv, false, false, nil
	case opGt:
		if sv >= types.NullSlot-1 {
			return 0, 0, false, true, nil // nothing above the maximum encoding
		}
		return sv + 1, types.NullSlot - 1, false, false, nil
	case opGe:
		return sv, types.NullSlot - 1, false, false, nil
	case opBetween:
		if isMax(pr.v2) { // BETWEEN lo AND MaxInt64 = everything from lo up
			return sv, types.NullSlot - 1, false, false, nil
		}
		sv2, ok2, err := tb.store.LookupSlot(ci, pr.v2)
		if err != nil {
			return 0, 0, false, false, err
		}
		if !ok || !ok2 || sv > sv2 {
			return 0, 0, false, true, nil // inverted or unmatchable window
		}
		return sv, sv2, false, false, nil
	}
	return 0, 0, false, false, fmt.Errorf("unknown predicate op %d", pr.op)
}
