package lstore

import (
	"bytes"
	"testing"

	"lstore/internal/wal"
)

func intSchema() Schema {
	return NewSchema("id",
		Column{Name: "id", Type: Int64},
		Column{Name: "a", Type: Int64},
		Column{Name: "b", Type: Int64},
	)
}

// pageFrameStats counts framePageRange frames in a checkpoint image and
// returns the byte offset (within the concatenated payload stream) of the
// first one, for targeted corruption.
func pageFrameStats(t *testing.T, image []byte) (count int, rowBatches int) {
	t.Helper()
	scan := wal.ScanFrames(bytes.NewReader(image), func(payload []byte) error {
		switch payload[0] {
		case framePageRange:
			count++
		case frameRowBatch:
			rowBatches++
		}
		return nil
	})
	if scan.Reason != "clean-eof" {
		t.Fatalf("image scan: %s", scan.Reason)
	}
	return count, rowBatches
}

// TestCheckpointShipsEncodedPages: cold sealed ranges reach the checkpoint
// as verbatim encoded page frames — not re-expanded rows — restore installs
// them, and the restored table still serves compressed pages.
func TestCheckpointShipsEncodedPages(t *testing.T) {
	db := Open()
	tbl, err := db.CreateTable("t", intSchema(), TableOptions{RangeSize: 64, DisableAutoMerge: true})
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin(ReadCommitted)
	for i := int64(0); i < 300; i++ { // 4 full ranges + a live tail of 44
		if err := tbl.Insert(tx, Row{"id": Int(i), "a": Int(i % 5), "b": Int(1000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	tbl.Merge() // seal the 4 full ranges

	// Touch range 2 after the seal: its tail append makes it warm, so it
	// must ship as rows while ranges 0, 1 and 3 ship as page frames.
	tx = db.Begin(ReadCommitted)
	if err := tbl.Update(tx, 130, Row{"a": Int(99)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	want := tableState(t, tbl, db.Now())
	var ckpt bytes.Buffer
	info, err := db.Checkpoint(&ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != 300 {
		t.Fatalf("checkpoint declares %d rows, want 300", info.Rows)
	}
	db.Close()

	pages, batches := pageFrameStats(t, ckpt.Bytes())
	if pages != 3 {
		t.Fatalf("image holds %d page frames, want 3 (cold ranges 0, 1, 3)", pages)
	}
	if batches == 0 {
		t.Fatal("image holds no row batches: the warm range and insert tail must ship as rows")
	}

	db2 := Open()
	defer db2.Close()
	tbl2, err := db2.CreateTable("t", intSchema(), TableOptions{RangeSize: 64, DisableAutoMerge: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(db2, bytes.NewReader(ckpt.Bytes()), nil); err != nil {
		t.Fatal(err)
	}
	assertSameState(t, want, tableState(t, tbl2, db2.Now()), "restored from page frames")

	cs := tbl2.CompressionStats()
	if cs.SealedRanges < 3 {
		t.Fatalf("restored table has %d sealed ranges, want >= 3", cs.SealedRanges)
	}
	if cs.PagesPacked+cs.PagesDict+cs.PagesRLE == 0 {
		t.Fatal("restore decayed every page to raw: encoded pages must survive the wire")
	}
	if cs.PhysicalWords >= cs.LogicalWords {
		t.Fatalf("restored footprint %d words >= logical %d: no compression survived",
			cs.PhysicalWords, cs.LogicalWords)
	}
}

// TestTornPageFrameFailsRestore: corruption inside a page frame — CRC-level
// or a cut mid-frame — must fail restore loudly, never install a short or
// forged range.
func TestTornPageFrameFailsRestore(t *testing.T) {
	db := Open()
	tbl, err := db.CreateTable("t", intSchema(), TableOptions{RangeSize: 64, DisableAutoMerge: true})
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin(ReadCommitted)
	for i := int64(0); i < 256; i++ {
		if err := tbl.Insert(tx, Row{"id": Int(i), "a": Int(i % 3), "b": Int(i)}); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	tbl.Merge()
	var ckpt bytes.Buffer
	if _, err := db.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	db.Close()
	data := ckpt.Bytes()
	if pages, _ := pageFrameStats(t, data); pages == 0 {
		t.Fatal("precondition: image has no page frames")
	}

	// Bit-flip sweep across the back half of the image (where page frames
	// live, after the header and table frames): every mutation must either
	// fail restore or — if it lands in frame padding — restore the exact
	// original state. VerifyCheckpoint must agree in advance.
	for _, off := range []int{len(data) / 2, len(data)/2 + 97, len(data) - 30} {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x10
		rep := VerifyCheckpoint(bytes.NewReader(mut))
		db2 := Open()
		if _, err := db2.CreateTable("t", intSchema(), TableOptions{RangeSize: 64, DisableAutoMerge: true}); err != nil {
			t.Fatal(err)
		}
		_, err := Recover(db2, bytes.NewReader(mut), nil)
		if err == nil {
			t.Fatalf("flip at %d restored without error", off)
		}
		if rep.Complete {
			t.Fatalf("flip at %d: VerifyCheckpoint reports complete but restore failed: %v", off, err)
		}
		db2.Close()
	}

	// Truncation mid-image: same contract as torn row frames.
	for _, cut := range []int{len(data) - 1, len(data) * 3 / 4} {
		db2 := Open()
		if _, err := db2.CreateTable("t", intSchema(), TableOptions{RangeSize: 64, DisableAutoMerge: true}); err != nil {
			t.Fatal(err)
		}
		if _, err := Recover(db2, bytes.NewReader(data[:cut]), nil); err == nil {
			t.Fatalf("cut at %d restored without error", cut)
		}
		db2.Close()
	}
}
