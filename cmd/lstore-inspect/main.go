// lstore-inspect runs a short self-contained workload and dumps the
// storage internals it produced: per-range TPS lineage, tail backlog,
// merge/compression counters, WAL/checkpoint LSN state and the
// epoch-reclamation state. It is a window into the lineage architecture
// rather than a benchmark.
//
// With -verify it instead runs an offline integrity scan over a WAL or
// checkpoint file — frame and CRC verification, last clean commit boundary,
// torn-tail accounting — WITHOUT performing a recovery: the tool for
// deciding what a crash left behind before touching it.
//
// Usage: go run ./cmd/lstore-inspect [-rows 8192] [-updates 20000]
//
//	go run ./cmd/lstore-inspect -verify wal -path wal.log
//	go run ./cmd/lstore-inspect -verify checkpoint -path ckpt.img
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"lstore"
	"lstore/internal/wal"
)

func main() {
	var (
		rows    = flag.Int("rows", 8192, "table size")
		updates = flag.Int("updates", 20000, "update statements to run")
		rng     = flag.Int("range", 1024, "update-range size")
		pool    = flag.Int64("pool-bytes", 0, "spill sealed pages to a temp file behind a pool capped at this many bytes (0 = all resident)")
		verify  = flag.String("verify", "", "offline integrity scan: 'wal' or 'checkpoint' (requires -path; no recovery is performed)")
		path    = flag.String("path", "", "file to scan with -verify")
	)
	flag.Parse()

	if *verify != "" {
		if err := runVerify(*verify, *path); err != nil {
			log.Fatal(err)
		}
		return
	}

	sink := &wal.BufferSink{}
	db := lstore.Open(lstore.WithWAL(sink, nil))
	defer db.Close()
	opts := lstore.TableOptions{RangeSize: *rng, DisableAutoMerge: true}
	if *pool > 0 {
		dir, err := os.MkdirTemp("", "lstore-inspect")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		spill, err := lstore.OpenFileSpill(dir + "/spill.lsp")
		if err != nil {
			log.Fatal(err)
		}
		defer spill.Close()
		opts.Spill = spill
		opts.PoolBytes = *pool
	}
	tbl, err := db.CreateTable("t", lstore.NewSchema("id",
		lstore.Column{Name: "id", Type: lstore.Int64},
		lstore.Column{Name: "a", Type: lstore.Int64},
		lstore.Column{Name: "b", Type: lstore.Int64},
		lstore.Column{Name: "c", Type: lstore.Int64},
	), opts)
	if err != nil {
		log.Fatal(err)
	}

	tx := db.Begin(lstore.ReadCommitted)
	for i := 0; i < *rows; i++ {
		if err := tbl.Insert(tx, lstore.Row{
			"id": lstore.Int(int64(i)), "a": lstore.Int(0), "b": lstore.Int(0), "c": lstore.Int(0),
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	r := rand.New(rand.NewSource(1))
	cols := []string{"a", "b", "c"}
	for i := 0; i < *updates; i++ {
		tx := db.Begin(lstore.ReadCommitted)
		key := int64(r.Intn(*rows))
		if err := tbl.Update(tx, key, lstore.Row{cols[r.Intn(3)]: lstore.Int(int64(i))}); err != nil {
			tx.Abort()
			continue
		}
		if err := tx.Commit(); err != nil {
			continue
		}
		if i == *updates/2 {
			n := tbl.Merge()
			fmt.Printf("mid-run merge consolidated %d tail records\n", n)
		}
	}

	st := tbl.Stats()
	fmt.Printf("\n== storage state before final merge ==\n")
	fmt.Printf("inserts=%d updates=%d tail-records=%d\n", st.Inserts, st.Updates, st.TailRecords)
	fmt.Printf("merges=%d merged-tail-records=%d seals=%d\n", st.Merges, st.MergedTailRecords, st.Seals)
	fmt.Printf("merge-lag: backlog=%d queue-depth=%d workers=%d\n", st.MergeBacklog, st.MergeQueueDepth, st.MergeWorkers)
	fmt.Printf("pages retired=%d reclaimed=%d\n", st.PagesRetired, st.PagesReclaimed)
	printPoolGauges(st)

	fmt.Printf("\n== per-range merge lineage (before final merge) ==\n")
	for _, rl := range tbl.Lineage() {
		fmt.Printf("range %2d sealed=%-5v tail=%-5d backlog=%-5d", rl.Range, rl.Sealed, rl.Tail, rl.Backlog)
		for c, cl := range rl.Cols {
			fmt.Printf("  col%d{cursor=%d tps=%v}", c, cl.Cursor, cl.TPS)
		}
		fmt.Println()
	}

	n := tbl.Merge()
	moved := tbl.CompressHistory()
	st = tbl.Stats()
	fmt.Printf("\n== after final merge (+%d records) and history compression (+%d versions) ==\n", n, moved)
	fmt.Printf("merges=%d merged-tail-records=%d history-passes=%d history-records=%d\n",
		st.Merges, st.MergedTailRecords, st.HistoryPasses, st.HistoryRecords)
	fmt.Printf("merge-lag: backlog=%d queue-depth=%d workers=%d\n", st.MergeBacklog, st.MergeQueueDepth, st.MergeWorkers)
	fmt.Printf("pages retired=%d reclaimed=%d\n", st.PagesRetired, st.PagesReclaimed)
	printPoolGauges(st)

	// Durability state: log growth, then a checkpoint and the truncation it
	// unlocks — restart cost becomes checkpoint + tail, not total history.
	wi := db.WALInfo()
	fmt.Printf("\n== WAL / checkpoint state ==\n")
	fmt.Printf("before checkpoint: appended=%d flushed-lsn=%d syncs=%d log-bytes=%d\n",
		wi.Appended, wi.FlushedLSN, wi.Syncs, sink.Len())
	var ckpt bytes.Buffer
	info, err := db.Checkpoint(&ckpt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: watermark-lsn=%d ts=%d tables=%d rows=%d image-bytes=%d\n",
		info.LSN, info.Time, info.Tables, info.Rows, ckpt.Len())
	if _, err := db.TruncateWAL(info.LSN); err != nil {
		log.Fatal(err)
	}
	wi = db.WALInfo()
	fmt.Printf("after truncation: truncated-to-lsn=%d retained-log-bytes=%d\n",
		wi.TruncatedLSN, sink.Len())

	sum, live, _ := tbl.Sum(db.Now(), "a")
	fmt.Printf("\nfinal: rows=%d sum(a)=%d\n", live, sum)

	// Scan-engine gauges: how many slots the columnar fast path served vs
	// the readCols chain walk, across every Sum/Scan/FindBy so far. A
	// growing slow share means update lineage is outrunning the merge.
	st = tbl.Stats()
	fmt.Printf("scan engine: workers=%d fast-slots=%d slow-slots=%d\n",
		st.ScanWorkers, st.ScanFastSlots, st.ScanSlowSlots)
	fmt.Printf("encoded scan: words-decoded=%d words-skipped=%d\n",
		st.ScanWordsDecoded, st.ScanWordsSkipped)

	// Compression state of the sealed base pages: which encodings the
	// per-column distribution analysis picked, and the footprint it bought.
	cs := tbl.CompressionStats()
	fmt.Printf("\n== sealed base-page compression ==\n")
	fmt.Printf("sealed-ranges=%d pages: raw=%d packed=%d dict=%d rle=%d\n",
		cs.SealedRanges, cs.PagesRaw, cs.PagesPacked, cs.PagesDict, cs.PagesRLE)
	fmt.Printf("logical-words=%d physical-words=%d ratio=%.2fx\n",
		cs.LogicalWords, cs.PhysicalWords, cs.Ratio())
}

// printPoolGauges reports the beyond-RAM state of the sealed base pages:
// buffer-pool hit/miss/eviction counters, the resident-byte gauge against
// the cap, and the spill directory's frame count. All zero without -pool-bytes.
func printPoolGauges(st lstore.StatsSnapshot) {
	if st.PoolCapBytes == 0 && st.SpilledPages == 0 {
		return
	}
	fmt.Printf("buffer pool: hits=%d misses=%d evictions=%d resident=%d/%d bytes\n",
		st.PoolHits, st.PoolMisses, st.PoolEvictions, st.PoolResidentBytes, st.PoolCapBytes)
	fmt.Printf("spill: pages=%d append-errors=%d\n", st.SpilledPages, st.SpillErrors)
}

// runVerify is the -verify mode: a read-only scan of a WAL or checkpoint
// file. A torn WAL tail is reported but is NOT an error (it is the normal
// artifact of a crash; recovery cuts at the last commit boundary). An
// incomplete checkpoint IS an error: restore would refuse it, and so does
// the exit status.
func runVerify(kind, path string) error {
	if path == "" {
		return fmt.Errorf("-verify %s requires -path", kind)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch kind {
	case "wal":
		rep := wal.Verify(f)
		fmt.Printf("wal %s: %d records (%d commits), LSN range [%d, %d]\n",
			path, rep.Records, rep.Commits, rep.FirstLSN, rep.LastLSN)
		fmt.Printf("clean-bytes=%d torn-bytes=%d stop-reason=%s\n",
			rep.CleanBytes, rep.TornBytes, rep.Reason)
		if rep.Commits > 0 {
			fmt.Printf("last clean commit boundary: LSN %d at byte offset %d\n",
				rep.LastCommitLSN, rep.LastCommitEnd)
			fmt.Printf("recovery would cut here, discarding %d trailing bytes\n",
				rep.CleanBytes+rep.TornBytes-rep.LastCommitEnd)
		} else {
			fmt.Printf("no commit boundary: recovery of this log yields an empty state\n")
		}
		if rep.ReadErr != nil {
			return fmt.Errorf("read error during scan: %w", rep.ReadErr)
		}
		return nil
	case "checkpoint":
		rep := lstore.VerifyCheckpoint(f)
		fmt.Printf("checkpoint %s: complete=%v frames=%d clean-bytes=%d torn-bytes=%d\n",
			path, rep.Complete, rep.Frames, rep.CleanBytes, rep.TornBytes)
		fmt.Printf("watermark-lsn=%d ts=%d tables=%d rows=%d\n",
			rep.Info.LSN, rep.Info.Time, rep.Info.Tables, rep.Info.Rows)
		if rep.ReadErr != nil {
			return fmt.Errorf("read error during scan: %w", rep.ReadErr)
		}
		if !rep.Complete {
			return fmt.Errorf("image unusable (%s): restore would refuse it", rep.Detail)
		}
		return nil
	default:
		return fmt.Errorf("-verify %q: want 'wal' or 'checkpoint'", kind)
	}
}
