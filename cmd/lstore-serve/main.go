// lstore-serve runs an L-Store database as a network service: HTTP/JSON
// transactions and queries over a file-backed WAL (group commit) and an
// atomically-replaced checkpoint image, with admission control shedding
// load when the engine falls behind.
//
// Usage:
//
//	lstore-serve -listen :7433 -wal /data/lstore.wal -checkpoint /data/lstore.ckpt \
//	    -table "name=kv key=id cols=id:int,v:int" -checkpoint-every 30s
//
// Endpoints: POST /v1/txn (atomic op batch), POST /v1/query (filtered
// scans and aggregates), POST/GET /v1/tables (DDL, schema listing),
// GET /v1/stats (queues, shed counts, WAL and merge gauges), GET /healthz.
//
// SIGTERM/SIGINT triggers a graceful drain: stop admitting, finish
// in-flight requests, flush the WAL, write a final checkpoint, exit 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lstore"
	"lstore/internal/server"
)

type tableFlags []server.TableSpec

func (t *tableFlags) String() string { return fmt.Sprintf("%d tables", len(*t)) }

func (t *tableFlags) Set(s string) error {
	spec, err := parseTableSpec(s)
	if err != nil {
		return err
	}
	*t = append(*t, spec)
	return nil
}

// parseTableSpec parses "name=kv key=id cols=id:int,v:string index=v".
func parseTableSpec(s string) (server.TableSpec, error) {
	var spec server.TableSpec
	for _, field := range strings.Fields(s) {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return spec, fmt.Errorf("table spec field %q is not key=value", field)
		}
		switch k {
		case "name":
			spec.Name = v
		case "key":
			spec.Key = v
		case "cols":
			for _, col := range strings.Split(v, ",") {
				cn, ct, ok := strings.Cut(col, ":")
				if !ok {
					return spec, fmt.Errorf("column %q is not name:type", col)
				}
				switch ct {
				case "int":
					spec.Columns = append(spec.Columns, lstore.Column{Name: cn, Type: lstore.Int64})
				case "string":
					spec.Columns = append(spec.Columns, lstore.Column{Name: cn, Type: lstore.String})
				default:
					return spec, fmt.Errorf("column %q: unknown type %q (int or string)", cn, ct)
				}
			}
		case "index":
			spec.Indexes = append(spec.Indexes, strings.Split(v, ",")...)
		default:
			return spec, fmt.Errorf("unknown table spec field %q", k)
		}
	}
	if spec.Name == "" || spec.Key == "" || len(spec.Columns) == 0 {
		return spec, fmt.Errorf("table spec needs name=, key= and cols=")
	}
	return spec, nil
}

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7433", "listen address")
		walPath     = flag.String("wal", "", "WAL base path (required; generations live at <path>.NNNNNN)")
		ckptPath    = flag.String("checkpoint", "", "checkpoint base path (required; generation images live at <path>.NNNNNN)")
		ckptEvery   = flag.Duration("checkpoint-every", 30*time.Second, "background checkpoint cadence (0 = only DDL/drain checkpoints)")
		txnQueue    = flag.Int("txn-queue", 64, "max in-flight transactions before shedding")
		queryQueue  = flag.Int("query-queue", 64, "max in-flight queries before shedding")
		maxBacklog  = flag.Int64("max-merge-backlog", 1<<16, "shed transactions above this summed merge backlog (negative = off)")
		maxWALLag   = flag.Int64("max-wal-lag", 1<<16, "shed transactions above this WAL flush lag in records (negative = off)")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		noGroup     = flag.Bool("no-group-commit", false, "one WAL flush (and fsync) per commit instead of group commit")
		drainWithin = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests at shutdown")
	)
	var tables tableFlags
	flag.Var(&tables, "table", `table to create if absent: "name=kv key=id cols=id:int,v:int index=v" (repeatable)`)
	flag.Parse()

	if *walPath == "" || *ckptPath == "" {
		fmt.Fprintln(os.Stderr, "lstore-serve: -wal and -checkpoint are required")
		os.Exit(2)
	}

	st, err := server.OpenStore(server.StoreConfig{
		WALPath:         *walPath,
		CheckpointPath:  *ckptPath,
		CheckpointEvery: *ckptEvery,
		Tables:          tables,
		NoGroupCommit:   *noGroup,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lstore-serve: open store: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("lstore-serve: generation %d open (%d checkpoint rows, %d txns replayed), tables: %s\n",
		st.Generation, st.Recovered.CheckpointRows, st.Recovered.RedoneTxns,
		strings.Join(st.DB.TableNames(), ", "))

	srv := server.New(st.DB, server.Config{
		TxnQueue:        *txnQueue,
		QueryQueue:      *queryQueue,
		MaxMergeBacklog: *maxBacklog,
		MaxWALFlushLag:  *maxWALLag,
		RetryAfter:      *retryAfter,
		Checkpoint:      st.Checkpoint,
	})

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lstore-serve: listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("lstore-serve: listening on %s\n", l.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan error, 1)
	go func() {
		sig := <-sigs
		fmt.Printf("lstore-serve: %v — draining (stop admitting, flush, final checkpoint)\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWithin)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	if err := srv.Serve(l); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "lstore-serve: serve: %v\n", err)
		os.Exit(1)
	}
	if err := <-done; err != nil {
		fmt.Fprintf(os.Stderr, "lstore-serve: drain: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("lstore-serve: clean shutdown")
}
