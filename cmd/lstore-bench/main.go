// lstore-bench regenerates the evaluation of the L-Store paper (§6): every
// figure and table, at a configurable machine scale.
//
// Usage:
//
//	go run ./cmd/lstore-bench -experiment fig7a
//	go run ./cmd/lstore-bench -experiment all -duration 2s -rows 262144
//
// Experiments: fig7a fig7b fig7c (scalability under low/medium/high
// contention), fig8 (scan time vs merge batch), table7 (scan comparison),
// fig9a fig9b (read/write-ratio sweeps), fig10a fig10c (mixed OLTP+OLAP),
// table8 (row vs column scans), table9 (row vs column point reads),
// query (the unified Query API: predicate pushdown and filtered aggregates
// vs callback filtering, swept over selectivity), recover (restart time
// after a simulated crash: full-log replay vs checkpoint + log tail, swept
// over tail length), and serve (the HTTP service layer end to end: txn
// throughput and latency with group commit on/off, plus admission-control
// shedding under overload).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"lstore/internal/bench"
)

func main() {
	var (
		experiment  = flag.String("experiment", "all", "experiment id or 'all' ("+strings.Join(bench.ExperimentIDs, " ")+")")
		rows        = flag.Int("rows", 65536, "preloaded table size (paper: 10M)")
		duration    = flag.Duration("duration", time.Second, "measurement window per cell")
		rangeSize   = flag.Int("range", 4096, "L-Store update-range size (power of two)")
		mergeBatch  = flag.Int("merge-batch", 0, "L-Store merge batch (default range/2)")
		scanWorkers = flag.Int("scan-workers", 0, "L-Store scan worker pool (0 = GOMAXPROCS-bounded default)")
		threads     = flag.String("threads", "1,2,4,8,16,22", "update-thread grid for fig7")
		jsonPath    = flag.String("json", "", "also write machine-readable results (BENCH_*.json trajectory) to this path")
	)
	flag.Parse()

	grid, err := parseInts(*threads)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -threads: %v\n", err)
		os.Exit(2)
	}
	opts := bench.Options{
		TableSize:   *rows,
		Duration:    *duration,
		Threads:     grid,
		RangeSize:   *rangeSize,
		MergeBatch:  *mergeBatch,
		ScanWorkers: *scanWorkers,
		Out:         os.Stdout,
	}
	if *jsonPath != "" {
		opts.Report = bench.NewReport(opts)
	}

	fmt.Printf("L-Store benchmark harness — %d rows, %v per cell, GOMAXPROCS=%d\n",
		*rows, *duration, runtime.GOMAXPROCS(0))
	fmt.Printf("(paper testbed: 2x6-core Xeon E5-2430, 10M-row active sets; shapes, not absolutes, transfer)\n\n")

	ids := bench.ExperimentIDs
	if *experiment != "all" {
		if _, ok := bench.Experiments[*experiment]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; choose from %s or all\n",
				*experiment, strings.Join(bench.ExperimentIDs, " "))
			os.Exit(2)
		}
		ids = []string{*experiment}
	}
	for _, id := range ids {
		start := time.Now()
		if err := bench.Experiments[id](opts); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if opts.Report != nil {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		werr := opts.Report.Write(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, werr)
			os.Exit(1)
		}
		fmt.Printf("wrote %d samples to %s\n", len(opts.Report.Samples), *jsonPath)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &v); err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
