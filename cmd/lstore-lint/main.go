// Command lstore-lint runs the repository's static-analysis suite
// (internal/lint): walerr, scanpath, lockguard, and nodeterminism. It exits
// nonzero when any diagnostic is reported, so CI can gate on it:
//
//	go run ./cmd/lstore-lint ./...
//
// Pass -only to run a subset, e.g. -only=walerr,lockguard.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lstore/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lstore-lint [-only=a,b] [packages]\n\nanalyzers:\n")
		for _, az := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", az.Name, az.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *only != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var picked []*lint.Analyzer
		for _, az := range analyzers {
			if want[az.Name] {
				picked = append(picked, az)
				delete(want, az.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "lstore-lint: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = picked
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lstore-lint:", err)
		os.Exit(2)
	}
	n, err := lint.Run(os.Stdout, cwd, analyzers, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lstore-lint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "lstore-lint: %d problem(s)\n", n)
		os.Exit(1)
	}
}
