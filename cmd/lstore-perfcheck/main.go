// lstore-perfcheck guards against performance regressions in CI: it parses
// `go test -bench` output, compares each benchmark against a committed
// baseline, and flags any metric that regressed more than the tolerance.
//
// Allocation counts are deterministic across machines, so an allocs/op
// regression always fails. Wall-clock ns/op varies with the host, so ns/op
// regressions only annotate (GitHub "::warning::" lines) unless -strict.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchtime=50x ./... | \
//	    go run ./cmd/lstore-perfcheck -baseline PERF_BASELINE.json
//	... | go run ./cmd/lstore-perfcheck -baseline PERF_BASELINE.json -update
//
// -update regenerates the baseline from the input instead of comparing;
// -out writes the parsed results as JSON for trend tooling.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one benchmark's parsed metrics. AllocsOp is -1 when the
// benchmark did not report allocations.
type benchResult struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// gomaxprocsSuffix strips the `-8` CPU suffix so baselines transfer between
// hosts with different core counts.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parse reads `go test -bench` output. A benchmark line is
// `BenchmarkX[-8]  100  1234 ns/op [custom metrics...] [56 B/op  7 allocs/op]`
// — value/unit pairs after the iteration count, in any order.
func parse(r io.Reader) (map[string]benchResult, error) {
	out := map[string]benchResult{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(f[1]); err != nil {
			continue // not an iteration count: some other Benchmark-prefixed line
		}
		res := benchResult{NsOp: -1, AllocsOp: -1}
		for i := 3; i < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i-1], 64)
			if err != nil {
				break
			}
			switch f[i] {
			case "ns/op":
				res.NsOp = v
			case "allocs/op":
				res.AllocsOp = int64(v)
			}
		}
		if res.NsOp < 0 {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(f[0], "")
		// Same benchmark from multiple -cpu runs or packages: keep the fastest
		// (comparing best-vs-best is the least noisy trend signal).
		if prev, ok := out[name]; !ok || res.NsOp < prev.NsOp {
			out[name] = res
		}
	}
	return out, sc.Err()
}

func main() {
	var (
		baseline  = flag.String("baseline", "PERF_BASELINE.json", "committed baseline to compare against")
		update    = flag.Bool("update", false, "rewrite the baseline from the input instead of comparing")
		tolerance = flag.Float64("tolerance", 20, "allowed regression in percent")
		strict    = flag.Bool("strict", false, "ns/op regressions fail instead of annotating")
		out       = flag.String("out", "", "also write parsed results as JSON to this path")
	)
	flag.Parse()

	input := io.Reader(os.Stdin)
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		input = f
	} else if flag.NArg() > 1 {
		fatal(fmt.Errorf("perfcheck: at most one input file"))
	}

	got, err := parse(input)
	if err != nil {
		fatal(err)
	}
	if len(got) == 0 {
		fatal(fmt.Errorf("perfcheck: no benchmark lines in input"))
	}
	if *out != "" {
		if err := writeJSON(*out, got); err != nil {
			fatal(err)
		}
	}
	if *update {
		if err := writeJSON(*baseline, got); err != nil {
			fatal(err)
		}
		fmt.Printf("perfcheck: baseline %s updated with %d benchmarks\n", *baseline, len(got))
		return
	}

	data, err := os.ReadFile(*baseline)
	if err != nil {
		fatal(fmt.Errorf("perfcheck: %w (run with -update to create the baseline)", err))
	}
	base := map[string]benchResult{}
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("perfcheck: baseline %s: %w", *baseline, err))
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	limit := 1 + *tolerance/100
	failures, warnings, missing := 0, 0, 0
	for _, name := range names {
		want := base[name]
		cur, ok := got[name]
		if !ok {
			// A benchmark that vanished is a silent loss of coverage.
			fmt.Printf("::warning::perfcheck: baseline benchmark %s missing from input\n", name)
			missing++
			continue
		}
		if want.AllocsOp >= 0 && cur.AllocsOp >= 0 &&
			float64(cur.AllocsOp) > float64(want.AllocsOp)*limit {
			fmt.Printf("FAIL %s: %d allocs/op, baseline %d (+%.0f%% > %.0f%% tolerance)\n",
				name, cur.AllocsOp, want.AllocsOp,
				100*(float64(cur.AllocsOp)/float64(want.AllocsOp)-1), *tolerance)
			failures++
			continue
		}
		if cur.NsOp > want.NsOp*limit {
			msg := fmt.Sprintf("%s: %.0f ns/op, baseline %.0f (+%.0f%% > %.0f%% tolerance)",
				name, cur.NsOp, want.NsOp, 100*(cur.NsOp/want.NsOp-1), *tolerance)
			if *strict {
				fmt.Printf("FAIL %s\n", msg)
				failures++
			} else {
				fmt.Printf("::warning::perfcheck: %s\n", msg)
				warnings++
			}
			continue
		}
		fmt.Printf("ok   %s: %.0f ns/op (baseline %.0f), %s\n",
			name, cur.NsOp, want.NsOp, allocs(cur))
	}
	fmt.Printf("perfcheck: %d compared, %d failed, %d warned, %d missing\n",
		len(base)-missing, failures, warnings, missing)
	if failures > 0 {
		os.Exit(1)
	}
}

func allocs(r benchResult) string {
	if r.AllocsOp < 0 {
		return "allocs not reported"
	}
	return strconv.FormatInt(r.AllocsOp, 10) + " allocs/op"
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
