// Package lstore is a real-time OLTP and OLAP storage engine: a Go
// implementation of L-Store (Sadoghi et al., "L-Store: A Real-time OLTP and
// OLAP System", EDBT 2018).
//
// L-Store keeps a single copy of the data in a single, natively columnar
// representation and still serves both transactional point operations and
// analytical scans: recent updates are strictly appended to write-optimized
// tail pages, a background contention-free merge lazily consolidates
// committed updates into read-optimized compressed base pages (tracking
// in-page lineage so readers never block), and historic versions remain
// queryable — first through version chains, later through delta-compressed
// history stores.
//
// Minimal usage:
//
//	db := lstore.Open()
//	defer db.Close()
//	tbl, _ := db.CreateTable("accounts", lstore.NewSchema("id",
//		lstore.Column{Name: "id", Type: lstore.Int64},
//		lstore.Column{Name: "balance", Type: lstore.Int64},
//	))
//	tx := db.Begin(lstore.ReadCommitted)
//	tbl.Insert(tx, lstore.Row{"id": lstore.Int(1), "balance": lstore.Int(100)})
//	tx.Commit()
//
//	// Analytics run against consistent snapshots, never blocking writers:
//	sum, _ := tbl.Sum(db.Now(), "balance")
//
// Time travel:
//
//	then := db.Now()
//	// ... more transactions ...
//	old, ok, _ := tbl.GetAt(then, 1, "balance")
package lstore

import (
	"lstore/internal/core"
	"lstore/internal/txn"
	"lstore/internal/types"
)

// ColType enumerates column types.
type ColType = types.ColType

// Supported column types.
const (
	Int64  = types.Int64
	String = types.String
)

// Value is a typed cell value.
type Value = types.Value

// Int wraps an int64 value.
func Int(v int64) Value { return types.IntValue(v) }

// Str wraps a string value.
func Str(s string) Value { return types.StringValue(s) }

// Null is the typed null.
func Null() Value { return types.NullValue() }

// Column declares one table column.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table; build one with NewSchema.
type Schema struct {
	inner types.Schema
}

// NewSchema builds a schema with the named primary-key column (which must be
// an Int64 column among cols).
func NewSchema(key string, cols ...Column) Schema {
	s := types.Schema{}
	for _, c := range cols {
		s.Cols = append(s.Cols, types.ColumnDef{Name: c.Name, Type: c.Type})
	}
	s.Key = s.ColIndex(key)
	return Schema{inner: s}
}

// IsolationLevel selects transaction semantics (§5.1.1).
type IsolationLevel = txn.Level

// Isolation levels.
const (
	// ReadCommitted reads the latest committed version; no validation.
	ReadCommitted = txn.ReadCommitted
	// Snapshot reads as of the transaction's begin time.
	Snapshot = txn.Snapshot
	// Serializable validates read repeatability at commit.
	Serializable = txn.Serializable
)

// Timestamp is a logical engine timestamp (from DB.Now, usable for
// snapshots and time travel).
type Timestamp = types.Timestamp

// Row maps column names to values.
type Row map[string]Value

// ErrConflict is returned when optimistic concurrency control aborts an
// operation (write-write conflict or failed validation). Retry the
// transaction.
var ErrConflict = txn.ErrConflict

// ErrDuplicateKey is returned by Insert for an existing live key.
var ErrDuplicateKey = core.ErrDuplicateKey

// ErrNotFound is returned by Update/Delete for a missing key.
var ErrNotFound = core.ErrNotFound

// TableOptions tunes one table's storage.
type TableOptions struct {
	// RangeSize is records per update range (power of two; default 4096,
	// the paper's 2^12 fine-grained partitioning).
	RangeSize int
	// MergeBatch is the unmerged-tail-record threshold that triggers a
	// background merge (default RangeSize/2, the paper's optimum).
	MergeBatch int
	// DisableCumulativeUpdates turns off carrying forward prior updated
	// columns (2-hop reads become chain walks).
	DisableCumulativeUpdates bool
	// RowLayout stores base data row-major instead of columnar (the
	// L-Store (Row) variant of the paper's Tables 8 and 9).
	RowLayout bool
	// MergeColumnsIndependently merges each column in its own pass (§4.2).
	MergeColumnsIndependently bool
	// MergeWorkers sizes the background merge-scheduler pool (distinct
	// ranges merge concurrently; default GOMAXPROCS, capped at 8).
	MergeWorkers int
	// ScanWorkers sizes the analytical-scan worker pool: Sum and Scan fan
	// independent update ranges out across up to this many goroutines while
	// keeping results deterministic (Scan callbacks still run on the caller
	// goroutine, in sequential row order). 1 disables parallel scans;
	// default GOMAXPROCS, capped at 8.
	ScanWorkers int
	// SecondaryIndexes lists column names to maintain secondary indexes on.
	SecondaryIndexes []string
	// DisableAutoMerge turns off the background merge thread; merges then
	// run only through Table.Merge (deterministic tests).
	DisableAutoMerge bool
}
