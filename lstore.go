// Package lstore is a real-time OLTP and OLAP storage engine: a Go
// implementation of L-Store (Sadoghi et al., "L-Store: A Real-time OLTP and
// OLAP System", EDBT 2018).
//
// L-Store keeps a single copy of the data in a single, natively columnar
// representation and still serves both transactional point operations and
// analytical scans: recent updates are strictly appended to write-optimized
// tail pages, a background contention-free merge lazily consolidates
// committed updates into read-optimized compressed base pages (tracking
// in-page lineage so readers never block), and historic versions remain
// queryable — first through version chains, later through delta-compressed
// history stores.
//
// Transactional writes:
//
//	db := lstore.Open()
//	defer db.Close()
//	tbl, _ := db.CreateTable("accounts", lstore.NewSchema("id",
//		lstore.Column{Name: "id", Type: lstore.Int64},
//		lstore.Column{Name: "region", Type: lstore.Int64},
//		lstore.Column{Name: "balance", Type: lstore.Int64},
//	), lstore.TableOptions{SecondaryIndexes: []string{"region"}})
//	tx := db.Begin(lstore.ReadCommitted)
//	tbl.Insert(tx, lstore.Row{"id": lstore.Int(1), "region": lstore.Int(3), "balance": lstore.Int(100)})
//	tx.Commit()
//
// Analytics go through the Query builder. A query reads one consistent
// snapshot, never blocks writers, and compiles onto the columnar scan
// engine: equality predicates on indexed columns become index point-probes,
// everything else becomes a bulk scan with the predicates pushed down —
// evaluated vectorized over the decoded column pages, before any row is
// materialized:
//
//	// Filtered rows, streamed through a zero-allocation cursor:
//	tbl.Query().
//		Select("balance").
//		Where(lstore.Eq("region", lstore.Int(3)), lstore.Gt("balance", lstore.Int(100))).
//		Rows(func(r *lstore.RowView) bool {
//			fmt.Println(r.Key(), r.Int("balance"))
//			return true
//		})
//
//	// Aggregates fold inside the engine, in one pass:
//	res, _ := tbl.Query().
//		Where(lstore.Between("balance", lstore.Int(0), lstore.Int(1000))).
//		Aggregate(lstore.Sum("balance"), lstore.Count(), lstore.Max("balance"))
//	total, n := res.Int(0), res.Rows(1)
//
//	// Keys and counts:
//	keys, _ := tbl.Query().Where(lstore.Eq("region", lstore.Int(3))).Keys()
//	hot, _ := tbl.Query().Where(lstore.Gt("balance", lstore.Int(900))).Count()
//
// Sum, Scan and FindBy remain as thin wrappers compiled onto the same
// query plans.
//
// Time travel — pin any query or point read to an earlier snapshot:
//
//	then := db.Now()
//	// ... more transactions ...
//	old, ok, _ := tbl.GetAt(then, 1, "balance")
//	res, _ = tbl.Query().At(then).Aggregate(lstore.Sum("balance"))
package lstore

import (
	"lstore/internal/core"
	"lstore/internal/txn"
	"lstore/internal/types"
)

// ColType enumerates column types.
type ColType = types.ColType

// Supported column types.
const (
	Int64  = types.Int64
	String = types.String
)

// Value is a typed cell value.
type Value = types.Value

// Int wraps an int64 value.
func Int(v int64) Value { return types.IntValue(v) }

// Str wraps a string value.
func Str(s string) Value { return types.StringValue(s) }

// Null is the typed null.
func Null() Value { return types.NullValue() }

// Column declares one table column.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table; build one with NewSchema.
type Schema struct {
	inner types.Schema
}

// NewSchema builds a schema with the named primary-key column (which must be
// an Int64 column among cols).
func NewSchema(key string, cols ...Column) Schema {
	s := types.Schema{}
	for _, c := range cols {
		s.Cols = append(s.Cols, types.ColumnDef{Name: c.Name, Type: c.Type})
	}
	s.Key = s.ColIndex(key)
	return Schema{inner: s}
}

// IsolationLevel selects transaction semantics (§5.1.1).
type IsolationLevel = txn.Level

// Isolation levels.
const (
	// ReadCommitted reads the latest committed version; no validation.
	ReadCommitted = txn.ReadCommitted
	// Snapshot reads as of the transaction's begin time.
	Snapshot = txn.Snapshot
	// Serializable validates read repeatability at commit.
	Serializable = txn.Serializable
)

// Timestamp is a logical engine timestamp (from DB.Now, usable for
// snapshots and time travel).
type Timestamp = types.Timestamp

// Row maps column names to values.
type Row map[string]Value

// ErrConflict is returned when optimistic concurrency control aborts an
// operation (write-write conflict or failed validation). Retry the
// transaction.
var ErrConflict = txn.ErrConflict

// ErrDuplicateKey is returned by Insert for an existing live key.
var ErrDuplicateKey = core.ErrDuplicateKey

// ErrNotFound is returned by Update/Delete for a missing key.
var ErrNotFound = core.ErrNotFound

// ErrTypeMismatch is returned when a value does not match its column's
// declared type — a String value against an Int64 column (or vice versa) in
// Insert, Update, or a predicate constructor — and when a predicate or
// aggregate requires an order the column cannot provide (Lt/Between/Min/...
// on a String column). Values are type-checked at the API boundary; nothing
// mistyped is ever stored or compared.
var ErrTypeMismatch = core.ErrBadValue

// ErrNoIndex is returned by FindBy for a column with no declared secondary
// index (TableOptions.SecondaryIndexes). Query has no such requirement: an
// equality predicate on an unindexed column simply plans as a filtered
// scan instead of an index probe.
var ErrNoIndex = core.ErrNoIndex

// TableOptions tunes one table's storage.
type TableOptions struct {
	// RangeSize is records per update range (power of two; default 4096,
	// the paper's 2^12 fine-grained partitioning).
	RangeSize int
	// MergeBatch is the unmerged-tail-record threshold that triggers a
	// background merge (default RangeSize/2, the paper's optimum).
	MergeBatch int
	// DisableCumulativeUpdates turns off carrying forward prior updated
	// columns (2-hop reads become chain walks).
	DisableCumulativeUpdates bool
	// RowLayout stores base data row-major instead of columnar (the
	// L-Store (Row) variant of the paper's Tables 8 and 9).
	RowLayout bool
	// MergeColumnsIndependently merges each column in its own pass (§4.2).
	MergeColumnsIndependently bool
	// MergeWorkers sizes the background merge-scheduler pool (distinct
	// ranges merge concurrently; default GOMAXPROCS, capped at 8).
	MergeWorkers int
	// ScanWorkers sizes the analytical-scan worker pool: Sum and Scan fan
	// independent update ranges out across up to this many goroutines while
	// keeping results deterministic (Scan callbacks still run on the caller
	// goroutine, in sequential row order). 1 disables parallel scans;
	// default GOMAXPROCS, capped at 8.
	ScanWorkers int
	// SecondaryIndexes lists column names to maintain secondary indexes on.
	SecondaryIndexes []string
	// DisableAutoMerge turns off the background merge thread; merges then
	// run only through Table.Merge (deterministic tests).
	DisableAutoMerge bool
	// DisableCompression publishes sealed/merged base pages raw instead of
	// selecting an encoding (FOR bit-packing, RLE, dictionary) per column
	// from its value distribution. Benchmark baseline knob.
	DisableCompression bool
	// DisableEncodedScan makes predicate-filtered scans fully decode sealed
	// pages before filtering instead of evaluating predicates on the encoded
	// representation and decoding only surviving 64-slot words. Benchmark
	// baseline knob.
	DisableEncodedScan bool

	// Spill attaches beyond-RAM base storage: sealed and merged base pages
	// are written to this sink in their encoded form and read back through a
	// pinnable buffer pool capped at PoolBytes, so the table's base data may
	// exceed memory. Tail pages and unmerged update chains stay resident.
	// Incompatible with RowLayout. See OpenFileSpill / NewMemSpill.
	Spill SpillSink
	// PoolBytes caps the buffer pool's resident encoded-page bytes (CLOCK
	// eviction evicts unpinned pages past the cap; default 64 MiB). Only
	// meaningful with Spill.
	PoolBytes int64
	// CheckpointSpillRefs lets checkpoints reference this table's spilled
	// cold pages by (offset, length, CRC) descriptor instead of shipping the
	// page bytes — the image shrinks to a few uvarints per cold range, but is
	// then valid ONLY together with the spill file that produced it, which
	// Recover must see re-attached via Spill.
	CheckpointSpillRefs bool
}

// SpillSink is append-only page-frame storage behind a table's buffer pool
// (TableOptions.Spill); frames are addressed by self-verifying descriptors.
type SpillSink = core.SpillSink

// SpillDesc locates one spilled page frame: offset, length, CRC.
type SpillDesc = core.SpillDesc

// FileSpill is a file-backed SpillSink; see OpenFileSpill.
type FileSpill = core.FileSpill

// MemSpill is an in-memory SpillSink with failure-injection hooks (tests).
type MemSpill = core.MemSpill

// StatsSnapshot is what Table.Stats returns: engine counters, merge-lag
// gauges, and (with Spill attached) the buffer pool's hit/miss/eviction and
// resident-byte gauges.
type StatsSnapshot = core.StatsSnapshot

// OpenFileSpill opens (creating if absent) a file-backed spill at path.
// Reopening an existing file preserves every descriptor handed out before,
// which is what lets a checkpoint taken with CheckpointSpillRefs restore.
func OpenFileSpill(path string) (*FileSpill, error) { return core.OpenFileSpill(path) }

// NewMemSpill returns an empty in-memory spill.
func NewMemSpill() *MemSpill { return core.NewMemSpill() }
