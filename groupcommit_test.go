package lstore

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"lstore/internal/fault"
)

// TestCrashTortureConcurrentGroupCommit crashes a batch leader (the
// wal.groupcommit.batch-flush point: batch sealed, nothing flushed) while
// many workers commit through the full DB API over a file-backed WAL, then
// recovers from the durable bytes alone. The group-commit contract under
// crash: every transaction ACKNOWLEDGED before the kill must be in the
// recovered state. Workers mid-commit when the leader dies are abandoned,
// like the threads of a SIGKILLed process — their transactions may or may
// not have reached the log, and either outcome is fine because they were
// never acknowledged.
func TestCrashTortureConcurrentGroupCommit(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	path := filepath.Join(t.TempDir(), "wal")
	sink, err := OpenWALFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The synced hook models device latency so commits actually pile into
	// shared batches instead of each finding the logger idle.
	db := Open(WithWAL(sink, func() { time.Sleep(100 * time.Microsecond) }))
	tbl, err := db.CreateTable("t", NewSchema("id",
		Column{Name: "id", Type: Int64},
		Column{Name: "v", Type: Int64},
	), TableOptions{DisableAutoMerge: true})
	if err != nil {
		t.Fatal(err)
	}

	var ackedMu sync.Mutex
	acked := map[int64]int64{} // key -> value, guarded by ackedMu

	fault.Trip("wal.groupcommit.batch-flush", 10)
	const workers = 8
	crashCh := make(chan *fault.Crash, workers)
	crash := fault.RunToCrash(func() {
		for w := 0; w < workers; w++ {
			go func(w int) {
				// The crash point panics in whichever worker leads the doomed
				// batch; forward it so RunToCrash (watching this function's
				// goroutine) observes the process death.
				defer func() {
					if r := recover(); r != nil {
						if c, ok := r.(*fault.Crash); ok {
							crashCh <- c
							return
						}
						panic(r)
					}
				}()
				for i := 0; ; i++ {
					key := int64(w*1_000_000 + i + 1)
					tx := db.Begin(ReadCommitted)
					if err := tbl.Insert(tx, Row{"id": Int(key), "v": Int(key * 3)}); err != nil {
						tx.Abort()
						return
					}
					if err := tx.Commit(); err != nil {
						return
					}
					ackedMu.Lock()
					acked[key] = key * 3
					ackedMu.Unlock()
				}
			}(w)
		}
		panic(<-crashCh)
	})
	if crash == nil || crash.Point != "wal.groupcommit.batch-flush" {
		t.Fatalf("expected a crash at the batch-flush point, got %+v", crash)
	}

	// The durable bytes are frozen: the doomed batch's leader died with the
	// flush never started, and every later committer waits forever on it.
	durable, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	db2 := Open()
	tbl2, err := db2.CreateTable("t", NewSchema("id",
		Column{Name: "id", Type: Int64},
		Column{Name: "v", Type: Int64},
	), TableOptions{DisableAutoMerge: true})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Recover(db2, nil, bytes.NewReader(durable))
	if err != nil {
		t.Fatalf("recovery from post-crash log failed: %v", err)
	}

	ackedMu.Lock()
	defer ackedMu.Unlock()
	if len(acked) == 0 {
		t.Fatal("calibration failure: no commit was acknowledged before the crash")
	}
	if stats.RedoneTxns < len(acked) {
		t.Fatalf("recovery replayed %d txns but %d were acknowledged", stats.RedoneTxns, len(acked))
	}
	rtx := db2.Begin(ReadCommitted)
	defer rtx.Abort()
	for key, want := range acked {
		row, found, err := tbl2.Get(rtx, key, "v")
		if err != nil || !found {
			t.Fatalf("acknowledged key %d missing after recovery (found=%v err=%v)", key, found, err)
		}
		if got := row["v"].Int(); got != want {
			t.Fatalf("key %d recovered v=%d, want %d", key, got, want)
		}
	}
	db2.Close()
}
