// Frauddetect reproduces the paper's second motivating scenario (§1): a
// card network must approve or decline each transaction within a sub-second
// window, running analytics over the cardholder's latest history *inside*
// the approving transaction. Stale analytics (the ETL gap) would let rapid
// -fire fraud through; L-Store's single-copy design closes that gap.
//
// Run with: go run ./examples/frauddetect
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	"lstore"
)

const (
	nCards     = 500
	nTerminals = 4
	nAttempts  = 4000
	// Velocity rule: decline when a card exceeds this many approvals inside
	// one "window" (we model windows with a coarse counter reset).
	velocityLimit = 8
	amountLimit   = 900
)

func main() {
	db := lstore.Open()
	defer db.Close()

	cards, err := db.CreateTable("cards", lstore.NewSchema("id",
		lstore.Column{Name: "id", Type: lstore.Int64},
		lstore.Column{Name: "recent_count", Type: lstore.Int64}, // approvals in window
		lstore.Column{Name: "recent_spend", Type: lstore.Int64},
		lstore.Column{Name: "blocked", Type: lstore.Int64},
	))
	if err != nil {
		log.Fatal(err)
	}
	ledger, err := db.CreateTable("ledger", lstore.NewSchema("id",
		lstore.Column{Name: "id", Type: lstore.Int64},
		lstore.Column{Name: "card", Type: lstore.Int64},
		lstore.Column{Name: "amount", Type: lstore.Int64},
		lstore.Column{Name: "approved", Type: lstore.Int64},
	))
	if err != nil {
		log.Fatal(err)
	}

	tx := db.Begin(lstore.ReadCommitted)
	for i := int64(0); i < nCards; i++ {
		if err := cards.Insert(tx, lstore.Row{
			"id": lstore.Int(i), "recent_count": lstore.Int(0),
			"recent_spend": lstore.Int(0), "blocked": lstore.Int(0),
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	var nextTxn atomic.Int64
	var approved, declined, blockedCards atomic.Int64

	// A small set of "hot" cards simulates an active fraud ring hammering
	// the same numbers.
	hotCards := []int64{7, 77, 177}

	authorize := func(rng *rand.Rand) {
		var card int64
		if rng.Intn(4) == 0 {
			card = hotCards[rng.Intn(len(hotCards))]
		} else {
			card = rng.Int63n(nCards)
		}
		amount := int64(1 + rng.Intn(300))
		if rng.Intn(10) == 0 {
			amount += 800 // occasional big-ticket attempt
		}

		// Serializable: the velocity decision is a read-modify-write, and
		// validation turns every lost update into a clean retry-able abort.
		t := db.Begin(lstore.Serializable)
		prof, ok, err := cards.Get(t, card, "recent_count", "recent_spend", "blocked")
		if err != nil || !ok {
			t.Abort()
			return
		}
		// The fraud analytics, in-line and on the latest committed state:
		decision := prof["blocked"].Int() == 0 &&
			prof["recent_count"].Int() < velocityLimit &&
			prof["recent_spend"].Int()+amount < velocityLimit*amountLimit &&
			amount <= amountLimit

		id := nextTxn.Add(1)
		appr := int64(0)
		if decision {
			appr = 1
		}
		if err := ledger.Insert(t, lstore.Row{
			"id": lstore.Int(id), "card": lstore.Int(card),
			"amount": lstore.Int(amount), "approved": lstore.Int(appr),
		}); err != nil {
			t.Abort()
			return
		}
		set := lstore.Row{}
		if decision {
			set["recent_count"] = lstore.Int(prof["recent_count"].Int() + 1)
			set["recent_spend"] = lstore.Int(prof["recent_spend"].Int() + amount)
		} else if prof["recent_count"].Int() >= velocityLimit && prof["blocked"].Int() == 0 {
			set["blocked"] = lstore.Int(1) // escalate: block the card
		}
		if len(set) > 0 {
			if err := cards.Update(t, card, set); err != nil {
				t.Abort() // write-write conflict with a concurrent authorization
				return
			}
		}
		if err := t.Commit(); err != nil {
			return
		}
		if decision {
			approved.Add(1)
		} else {
			declined.Add(1)
		}
		if v, ok := set["blocked"]; ok && v.Int() == 1 {
			blockedCards.Add(1)
		}
	}

	var wg sync.WaitGroup
	for term := 0; term < nTerminals; term++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < nAttempts/nTerminals; i++ {
				authorize(rng)
			}
		}(int64(term) + 99)
	}

	// Risk dashboard: long-running analytical queries against live
	// snapshots while authorizations stream in. One Query folds exposure,
	// peak spend and the count of currently-blocked cards in a single
	// engine pass; the velocity watchlist pushes its filter into the
	// columnar scan instead of materializing every card.
	dash := make(chan struct{})
	go func() {
		defer close(dash)
		for i := 0; i < 5; i++ {
			ts := db.Now()
			res, err := cards.Query().At(ts).
				Aggregate(lstore.Sum("recent_spend"), lstore.Count(), lstore.Max("recent_spend"))
			if err != nil {
				log.Fatal(err)
			}
			watchlist, err := cards.Query().
				Where(lstore.Ge("recent_count", lstore.Int(velocityLimit-2))).At(ts).
				Count()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("[dashboard] snapshot=%d cards=%d exposure=%d¢ peak=%d¢ near-limit=%d\n",
				ts, res.Rows(1), res.Int(0), res.Int(2), watchlist)
		}
	}()

	wg.Wait()
	<-dash

	// Reconcile: card exposure equals approved ledger volume. The
	// approved=1 filter is pushed down into the ledger scan.
	ts := db.Now()
	expAgg, err := cards.Query().At(ts).Aggregate(lstore.Sum("recent_spend"))
	if err != nil {
		log.Fatal(err)
	}
	exposure := expAgg.Int(0)
	appAgg, err := ledger.Query().Where(lstore.Eq("approved", lstore.Int(1))).At(ts).
		Aggregate(lstore.Sum("amount"))
	if err != nil {
		log.Fatal(err)
	}
	ledgerApproved := appAgg.Int(0)
	fmt.Printf("approved=%d declined=%d cards blocked=%d\n",
		approved.Load(), declined.Load(), blockedCards.Load())
	fmt.Printf("card exposure %d¢ vs approved ledger volume %d¢\n", exposure, ledgerApproved)
	if exposure != ledgerApproved {
		log.Fatalf("EXPOSURE MISMATCH: %d != %d", exposure, ledgerApproved)
	}
	fmt.Println("exposure reconciles ✓ (analytics ran on the latest data, in-line)")

	// Post-mortem over the blocked cards: stream their final profiles
	// through the zero-alloc cursor.
	err = cards.Query().Select("recent_count", "recent_spend").
		Where(lstore.Eq("blocked", lstore.Int(1))).At(ts).
		Rows(func(r *lstore.RowView) bool {
			fmt.Printf("  blocked card %d: %d approvals, %d¢ in window\n",
				r.Key(), r.Int("recent_count"), r.Int("recent_spend"))
			return true
		})
	if err != nil {
		log.Fatal(err)
	}
}
