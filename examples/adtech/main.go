// Adtech reproduces the paper's first motivating scenario (§1): a real-time
// targeted-advertising auction. Shoppers roam and generate location events;
// ad auctions bid transactionally; analytics over the very latest
// impressions and purchases steer the next bids — all against one store,
// with no ETL between the transactional and analytical sides.
//
// Run with: go run ./examples/adtech
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	"lstore"
)

const (
	nShoppers  = 2000
	nBidders   = 4
	auctionOps = 3000
)

func main() {
	db := lstore.Open()
	defer db.Close()

	shoppers, err := db.CreateTable("shoppers", lstore.NewSchema("id",
		lstore.Column{Name: "id", Type: lstore.Int64},
		lstore.Column{Name: "zone", Type: lstore.Int64},      // current location zone
		lstore.Column{Name: "visits", Type: lstore.Int64},    // site visits
		lstore.Column{Name: "purchases", Type: lstore.Int64}, // lifetime purchases
		lstore.Column{Name: "spend", Type: lstore.Int64},     // lifetime spend (cents)
	), lstore.TableOptions{SecondaryIndexes: []string{"zone"}})
	if err != nil {
		log.Fatal(err)
	}
	bids, err := db.CreateTable("bids", lstore.NewSchema("id",
		lstore.Column{Name: "id", Type: lstore.Int64},
		lstore.Column{Name: "shopper", Type: lstore.Int64},
		lstore.Column{Name: "price", Type: lstore.Int64}, // winning bid (cents)
		lstore.Column{Name: "won", Type: lstore.Int64},   // 1 = converted to purchase
	))
	if err != nil {
		log.Fatal(err)
	}

	// Seed the shopper population.
	tx := db.Begin(lstore.ReadCommitted)
	for i := int64(0); i < nShoppers; i++ {
		if err := shoppers.Insert(tx, lstore.Row{
			"id": lstore.Int(i), "zone": lstore.Int(i % 16),
			"visits": lstore.Int(0), "purchases": lstore.Int(0), "spend": lstore.Int(0),
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	var nextBid atomic.Int64
	var conversions atomic.Int64
	var conflicts atomic.Int64

	// Bidders: each auction reads the shopper's live profile (OLTP point
	// reads), places a bid transactionally, and sometimes converts it into
	// a purchase that is immediately visible to the analytics below.
	var wg sync.WaitGroup
	for b := 0; b < nBidders; b++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for op := 0; op < auctionOps/nBidders; op++ {
				shopper := rng.Int63n(nShoppers)
				tx := db.Begin(lstore.ReadCommitted)
				prof, ok, err := shoppers.Get(tx, shopper, "visits", "purchases", "spend")
				if err != nil || !ok {
					tx.Abort()
					continue
				}
				// Bid more for shoppers with purchase history (the "real-time
				// actionable insight").
				price := 10 + prof["purchases"].Int()*5 + prof["spend"].Int()/100
				bidID := nextBid.Add(1)
				won := rng.Intn(4) == 0
				wonVal := int64(0)
				if won {
					wonVal = 1
				}
				if err := bids.Insert(tx, lstore.Row{
					"id": lstore.Int(bidID), "shopper": lstore.Int(shopper),
					"price": lstore.Int(price), "won": lstore.Int(wonVal),
				}); err != nil {
					tx.Abort()
					continue
				}
				set := lstore.Row{"visits": lstore.Int(prof["visits"].Int() + 1)}
				if won {
					set["purchases"] = lstore.Int(prof["purchases"].Int() + 1)
					set["spend"] = lstore.Int(prof["spend"].Int() + price)
				}
				if err := shoppers.Update(tx, shopper, set); err != nil {
					tx.Abort()
					conflicts.Add(1)
					continue
				}
				if err := tx.Commit(); err != nil {
					conflicts.Add(1)
					continue
				}
				if won {
					conversions.Add(1)
				}
			}
		}(int64(b) + 7)
	}

	// Real-time analytics: revenue and engagement over the LATEST data,
	// running concurrently with the auctions (no drain, no ETL). One Query
	// computes every aggregate in a single engine pass.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			ts := db.Now()
			res, err := shoppers.Query().At(ts).
				Aggregate(lstore.Sum("spend"), lstore.Sum("visits"), lstore.Count())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("[analytics] snapshot=%d shoppers=%d visits=%d revenue=%d¢\n",
				ts, res.Rows(2), res.Int(1), res.Int(0))
		}
	}()

	wg.Wait()
	<-done

	// Final, exact reconciliation: revenue booked on shoppers equals the
	// sum of won bids — one engine, one copy of the truth. The won=1 filter
	// is pushed down into the columnar scan instead of running per-row in a
	// callback.
	ts := db.Now()
	revAgg, err := shoppers.Query().At(ts).Aggregate(lstore.Sum("spend"))
	if err != nil {
		log.Fatal(err)
	}
	revenue := revAgg.Int(0)
	wonAgg, err := bids.Query().Where(lstore.Eq("won", lstore.Int(1))).At(ts).
		Aggregate(lstore.Sum("price"))
	if err != nil {
		log.Fatal(err)
	}
	wonRevenue := wonAgg.Int(0)
	fmt.Printf("conversions=%d conflicts=%d\n", conversions.Load(), conflicts.Load())
	fmt.Printf("revenue on shopper profiles: %d¢; revenue from won bids: %d¢\n", revenue, wonRevenue)
	if revenue != wonRevenue {
		log.Fatalf("BOOKS DO NOT BALANCE: %d != %d", revenue, wonRevenue)
	}
	fmt.Println("books balance ✓")

	// Zone targeting: the equality predicate on the indexed zone column
	// plans as secondary-index point-probes; the spend floor rides along as
	// a pushed-down re-check. The RowView cursor streams matches without
	// materializing row maps.
	var zone3 int
	var zoneSpend int64
	err = shoppers.Query().Select("spend").
		Where(lstore.Eq("zone", lstore.Int(3)), lstore.Ge("spend", lstore.Int(0))).At(ts).
		Rows(func(r *lstore.RowView) bool {
			zone3++
			zoneSpend += r.Int("spend")
			return true
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shoppers currently in zone 3: %d (lifetime spend %d¢)\n", zone3, zoneSpend)
}
