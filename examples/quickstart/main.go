// Quickstart: create a table, run transactions, scan analytically, travel
// in time. Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lstore"
)

func main() {
	db := lstore.Open()
	defer db.Close()

	accounts, err := db.CreateTable("accounts", lstore.NewSchema("id",
		lstore.Column{Name: "id", Type: lstore.Int64},
		lstore.Column{Name: "owner", Type: lstore.String},
		lstore.Column{Name: "balance", Type: lstore.Int64},
	))
	if err != nil {
		log.Fatal(err)
	}

	// OLTP: insert a few accounts in one transaction.
	tx := db.Begin(lstore.ReadCommitted)
	for i, owner := range []string{"ada", "bob", "cleo"} {
		if err := accounts.Insert(tx, lstore.Row{
			"id": lstore.Int(int64(i + 1)), "owner": lstore.Str(owner), "balance": lstore.Int(100),
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// Remember this moment for time travel.
	before := db.Now()

	// Transfer 30 from ada to bob, transactionally.
	transfer := func(from, to int64, amount int64) error {
		tx := db.Begin(lstore.Serializable)
		a, ok, err := accounts.Get(tx, from, "balance")
		if err != nil || !ok {
			tx.Abort()
			return fmt.Errorf("from account: %v %v", ok, err)
		}
		b, ok, err := accounts.Get(tx, to, "balance")
		if err != nil || !ok {
			tx.Abort()
			return fmt.Errorf("to account: %v %v", ok, err)
		}
		if a["balance"].Int() < amount {
			tx.Abort()
			return fmt.Errorf("insufficient funds")
		}
		if err := accounts.Update(tx, from, lstore.Row{"balance": lstore.Int(a["balance"].Int() - amount)}); err != nil {
			tx.Abort()
			return err
		}
		if err := accounts.Update(tx, to, lstore.Row{"balance": lstore.Int(b["balance"].Int() + amount)}); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit()
	}
	if err := transfer(1, 2, 30); err != nil {
		log.Fatal(err)
	}

	// OLAP: the total is conserved, computed from a consistent snapshot
	// without blocking any writer.
	sum, rows, _ := accounts.Sum(db.Now(), "balance")
	fmt.Printf("accounts=%d  total balance=%d (invariant: 300)\n", rows, sum)

	// Point read.
	tx = db.Begin(lstore.ReadCommitted)
	ada, _, _ := accounts.Get(tx, 1, "balance")
	tx.Abort()
	fmt.Printf("ada now has %d\n", ada["balance"].Int())

	// Time travel: ada before the transfer.
	then, _, _ := accounts.GetAt(before, 1, "balance")
	fmt.Printf("ada before the transfer had %d\n", then["balance"].Int())

	// Background storage adaptation is observable through stats.
	accounts.Merge()
	st := accounts.Stats()
	fmt.Printf("tail records=%d merges=%d\n", st.TailRecords, st.Merges)
}
