// Timetravel demonstrates L-Store's native multi-versioning: every update
// appends a version; pre-image snapshot records keep originals reachable
// across merges (Lemma 2); historic compression (§4.3) re-organizes old
// versions by record with delta compression — and none of it changes query
// answers.
//
// Run with: go run ./examples/timetravel
package main

import (
	"fmt"
	"log"

	"lstore"
)

func main() {
	db := lstore.Open()
	defer db.Close()

	// Small ranges so the example exercises seal + merge + compression.
	sensors, err := db.CreateTable("sensors", lstore.NewSchema("id",
		lstore.Column{Name: "id", Type: lstore.Int64},
		lstore.Column{Name: "site", Type: lstore.String},
		lstore.Column{Name: "temp", Type: lstore.Int64},
		lstore.Column{Name: "rev", Type: lstore.Int64},
	), lstore.TableOptions{RangeSize: 64, MergeBatch: 16, DisableAutoMerge: true})
	if err != nil {
		log.Fatal(err)
	}

	// Install 64 sensors (fills exactly one range so it can seal).
	tx := db.Begin(lstore.ReadCommitted)
	for i := int64(0); i < 64; i++ {
		if err := sensors.Insert(tx, lstore.Row{
			"id": lstore.Int(i), "site": lstore.Str([]string{"north", "south"}[i%2]),
			"temp": lstore.Int(20), "rev": lstore.Int(0),
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// Take a snapshot after every round of temperature updates.
	snapshots := []lstore.Timestamp{db.Now()}
	for round := int64(1); round <= 5; round++ {
		tx := db.Begin(lstore.ReadCommitted)
		for i := int64(0); i < 64; i += 4 {
			if err := sensors.Update(tx, i, lstore.Row{
				"temp": lstore.Int(20 + round), "rev": lstore.Int(round),
			}); err != nil {
				log.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
		snapshots = append(snapshots, db.Now())
	}

	report := func(label string) {
		fmt.Printf("--- %s ---\n", label)
		for round, ts := range snapshots {
			res, err := sensors.Query().At(ts).Aggregate(lstore.Sum("temp"), lstore.Count())
			if err != nil {
				log.Fatal(err)
			}
			row, _, _ := sensors.GetAt(ts, 0, "temp", "rev")
			fmt.Printf("snapshot %d: sensors=%d total-temp=%d sensor0={temp:%d rev:%d}\n",
				round, res.Rows(1), res.Int(0), row["temp"].Int(), row["rev"].Int())
		}
	}

	// The same five snapshots, replayed through three storage lifetimes:
	report("before merge (versions in tail pages)")

	merged := sensors.Merge()
	report(fmt.Sprintf("after merge (%d tail records consolidated, TPS advanced)", merged))

	movedRecords := sensors.CompressHistory()
	report(fmt.Sprintf("after historic compression (%d versions inlined & delta-compressed)", movedRecords))

	st := sensors.Stats()
	fmt.Printf("\nstats: tail=%d merges=%d merged-records=%d history-passes=%d history-records=%d\n",
		st.TailRecords, st.Merges, st.MergedTailRecords, st.HistoryPasses, st.HistoryRecords)

	// Audit query: full state of sensor 0 at every moment of its life.
	fmt.Println("\nsensor 0 through time:")
	for round, ts := range snapshots {
		row, ok, _ := sensors.GetAt(ts, 0)
		if !ok {
			log.Fatalf("sensor 0 missing at snapshot %d", round)
		}
		fmt.Printf("  round %d: site=%s temp=%d rev=%d\n",
			round, row["site"].Str(), row["temp"].Int(), row["rev"].Int())
	}
}
