package lstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"lstore/internal/core"
	"lstore/internal/fault"
	"lstore/internal/types"
	"lstore/internal/wal"
)

// Crash points on the checkpoint path (no-ops in production).
var (
	cpCkptPostCut     = fault.Register("ckpt.post-cut")
	cpCkptPreEnd      = fault.Register("ckpt.pre-end")
	cpCkptPreTruncate = fault.Register("ckpt.round.pre-truncate")
)

// This file is the checkpoint/restore half of the durability subsystem: a
// checkpoint serializes a transactionally consistent snapshot of every
// table (schema, committed rows as of one captured read timestamp,
// secondary-index column list, per-range merge-lineage counters) together
// with the WAL LSN watermark it covers. Recover restores the image through
// the bulk-load fast path and then redoes only the log tail above the
// watermark — restart cost is bounded by checkpoint size + log tail, not
// total history (the restart story of HTAP engines; see ROADMAP/PAPERS).
//
// Image layout: a strict sequence of CRC frames (wal.WriteFrame), each
// tagged by its first byte. A torn or corrupt image fails restore loudly
// (wal.ErrTornFrame) — unlike the log, whose torn tail is meaningful.

const (
	ckptMagic = "LSTORECKPT"
	// ckptVersion 2 added framePageRange: cold sealed ranges ship their
	// ENCODED base pages verbatim instead of expanded row tuples — images
	// shrink by the pages' compression ratio and restore installs them
	// without a decode/re-encode round-trip. Version 3 added framePageRef:
	// when base pages already live on a spill file (TableOptions.Spill) and
	// the table opts in (CheckpointSpillRefs), cold ranges ship as spill
	// DESCRIPTORS — (offset, length, CRC) triples a few bytes each — instead
	// of page payloads; the image is valid only alongside the spill file that
	// produced it, which restore re-attaches and CRC-verifies per frame.
	// Readers accept 1..3 (a v1 image is a v3 image with no page frames).
	ckptVersion    = 3
	ckptVersionMin = 1

	frameHeader    = 1 // magic, version, timestamp, LSN watermark, #tables
	frameTable     = 2 // table id, name, schema, secondary cols, lineage
	frameRowBatch  = 3 // table id, row count, rows as TypedVal tuples
	frameTableEnd  = 4 // table id, total row count (sanity)
	frameEnd       = 5 // total rows across tables (sanity)
	framePageRange = 6 // table id, cold range's encoded pages, verbatim
	framePageRef   = 7 // table id, cold range's pages as spill descriptors

	ckptRowsPerBatch = 512
)

// ckptVersionOK reports whether a reader of this binary understands v.
func ckptVersionOK(v uint64) bool { return v >= ckptVersionMin && v <= ckptVersion }

// ErrTornCheckpoint reports a truncated or corrupt checkpoint image:
// restore fails loudly (fall back to full-log replay) rather than loading a
// partial snapshot.
var ErrTornCheckpoint = wal.ErrTornFrame

// CheckpointInfo describes one checkpoint image.
type CheckpointInfo struct {
	// LSN is the WAL watermark the snapshot covers: every transaction whose
	// commit record has LSN <= LSN is inside the image, every one above it
	// is not. 0 when no WAL is attached.
	LSN uint64
	// Time is the logical read timestamp the snapshot was captured at.
	Time Timestamp
	// Tables and Rows count what was serialized.
	Tables int
	Rows   int64
}

// Checkpoint serializes a transactionally consistent snapshot of every
// table into w and returns the WAL watermark it covers. The (timestamp,
// LSN) cut is captured under the commit gate — no transaction can sit
// between its in-memory commit and its commit record while the cut is
// taken — so a transaction's effects are inside the image iff its commit
// record's LSN is at or below the watermark; Recover uses exactly that
// predicate to replay the tail exactly-once. The row scan itself runs
// outside the gate at the captured timestamp (MVCC time travel), so
// checkpointing never blocks writers beyond the cut instant.
func (db *DB) Checkpoint(w io.Writer) (CheckpointInfo, error) {
	db.commitMu.Lock()
	ts := db.tm.Now()
	var lsn uint64
	if db.logger != nil {
		if err := db.logger.Flush(); err != nil {
			db.commitMu.Unlock()
			return CheckpointInfo{}, fmt.Errorf("lstore: checkpoint: %w", err)
		}
		lsn = db.logger.FlushedLSN()
	}
	db.commitMu.Unlock()
	cpCkptPostCut.Hit() // crash here: cut taken, no image bytes written yet

	db.mu.RLock()
	tables := append([]*Table(nil), db.byID...)
	db.mu.RUnlock()

	info := CheckpointInfo{LSN: lsn, Time: ts, Tables: len(tables)}
	p := []byte{frameHeader}
	p = append(p, ckptMagic...)
	p = binary.AppendUvarint(p, ckptVersion)
	p = binary.AppendUvarint(p, ts)
	p = binary.AppendUvarint(p, lsn)
	p = binary.AppendUvarint(p, uint64(len(tables)))
	if err := wal.WriteFrame(w, p); err != nil {
		return info, err
	}
	for _, tbl := range tables {
		if err := tbl.writeCheckpoint(w, ts, &info.Rows); err != nil {
			return info, err
		}
	}
	cpCkptPreEnd.Hit() // crash here: image body written but no end frame — torn image
	end := []byte{frameEnd}
	end = binary.AppendUvarint(end, uint64(info.Rows))
	if err := wal.WriteFrame(w, end); err != nil {
		return info, err
	}
	return info, nil
}

// writeCheckpoint serializes one table: header frame (schema, secondary
// index columns, per-range merge lineage), row-batch frames with the
// committed rows as of ts, and a counted end frame.
func (tb *Table) writeCheckpoint(w io.Writer, ts Timestamp, totalRows *int64) error {
	p := []byte{frameTable}
	p = binary.AppendUvarint(p, tb.id)
	p = appendCkptString(p, tb.name)
	p = binary.AppendUvarint(p, uint64(tb.schema.Key))
	p = binary.AppendUvarint(p, uint64(tb.schema.NumCols()))
	for _, c := range tb.schema.Cols {
		p = appendCkptString(p, c.Name)
		p = append(p, byte(c.Type))
	}
	secs := append([]int(nil), tb.store.Config().SecondaryIndexColumns...)
	sort.Ints(secs)
	p = binary.AppendUvarint(p, uint64(len(secs)))
	for _, c := range secs {
		p = binary.AppendUvarint(p, uint64(c))
	}
	// Per-range merge lineage: carried for introspection (lstore-inspect,
	// post-mortems of what the merge had consolidated at checkpoint time).
	// Restore bulk-loads into fresh ranges and does not re-apply it.
	lin := tb.store.LineageSnapshot()
	p = binary.AppendUvarint(p, uint64(len(lin)))
	for _, rl := range lin {
		var sealed byte
		if rl.Sealed {
			sealed = 1
		}
		p = append(p, sealed)
		p = binary.AppendUvarint(p, uint64(rl.Tail))
		p = binary.AppendUvarint(p, uint64(len(rl.Cols)))
		for _, cl := range rl.Cols {
			p = binary.AppendUvarint(p, uint64(cl.Cursor))
			p = binary.AppendUvarint(p, uint64(cl.TPS))
		}
	}
	if err := wal.WriteFrame(w, p); err != nil {
		return err
	}

	// Cold sealed ranges (zero tail lineage) whose pages already sit on the
	// spill file ship as DESCRIPTOR frames when the table opts in
	// (CheckpointSpillRefs): SyncSpill first makes the referenced bytes
	// durable — its failure fails the round, since descriptors must never
	// point at bytes a crash could discard — then each qualifying range
	// costs a few uvarints instead of its page payloads.
	count := int64(0)
	var refs []core.RangeRef
	if tb.store.Spilled() && tb.store.Config().CheckpointSpillRefs {
		if err := tb.store.SyncSpill(); err != nil {
			return fmt.Errorf("lstore: checkpoint spill sync: %w", err)
		}
		refs = tb.store.ColdRangeRefs(ts)
	}
	refCovered := make(map[types.RID]bool, len(refs))
	for _, ref := range refs {
		refCovered[ref.FirstRID] = true
		f := []byte{framePageRef}
		f = binary.AppendUvarint(f, tb.id)
		f = binary.AppendUvarint(f, uint64(ref.FirstRID))
		f = binary.AppendUvarint(f, uint64(ref.N))
		f = binary.AppendUvarint(f, uint64(ref.Rows))
		f = binary.AppendUvarint(f, uint64(len(ref.Cols)))
		for _, d := range ref.Cols {
			f = appendSpillDesc(f, d)
		}
		f = appendSpillDesc(f, ref.Starts)
		if err := wal.WriteFrame(w, f); err != nil {
			return err
		}
		count += int64(ref.Rows)
	}

	// Remaining cold ranges (no spill attached, refs disabled, or a
	// spill-write failure left a page resident without a descriptor) ship as
	// page frames: their encoded base pages verbatim, at in-memory size. All
	// cold windows — refs and images — are then EXCLUDED from the row scan
	// below, which serializes only the hot remainder (insert ranges, updated
	// ranges, string-dictionary tables — ColdRangeImages returns nil for the
	// latter).
	imgs := tb.store.ColdRangeImages(ts)
	if len(refCovered) > 0 {
		kept := imgs[:0]
		for _, img := range imgs {
			if !refCovered[img.FirstRID] {
				kept = append(kept, img)
			}
		}
		imgs = kept
	}
	for _, img := range imgs {
		f := []byte{framePageRange}
		f = binary.AppendUvarint(f, tb.id)
		f = binary.AppendUvarint(f, uint64(img.FirstRID))
		f = binary.AppendUvarint(f, uint64(img.N))
		f = binary.AppendUvarint(f, uint64(img.Rows))
		f = binary.AppendUvarint(f, uint64(len(img.Cols)))
		for _, col := range img.Cols {
			f = binary.AppendUvarint(f, uint64(len(col)))
			f = append(f, col...)
		}
		f = binary.AppendUvarint(f, uint64(len(img.Starts)))
		f = append(f, img.Starts...)
		if err := wal.WriteFrame(w, f); err != nil {
			return err
		}
		count += int64(img.Rows)
	}

	var batch []byte
	n := 0
	var frameErr error
	flush := func() error {
		if n == 0 {
			return nil
		}
		f := []byte{frameRowBatch}
		f = binary.AppendUvarint(f, tb.id)
		f = binary.AppendUvarint(f, uint64(n))
		f = append(f, batch...)
		batch, n = batch[:0], 0
		return wal.WriteFrame(w, f)
	}
	allCols := make([]int, tb.schema.NumCols())
	for i := range allCols {
		allCols[i] = i
	}
	tvals := make([]wal.TypedVal, tb.schema.NumCols())
	scanWindow := func(loRID, hiRID types.RID) error {
		if loRID >= hiRID {
			return nil
		}
		tb.store.ScanRange(ts, allCols, loRID, hiRID, func(_ int64, vals []Value) bool {
			for i, v := range vals {
				tvals[i] = toTyped(v)
			}
			batch = wal.AppendTypedVals(batch, tvals)
			n++
			count++
			if n >= ckptRowsPerBatch {
				if frameErr = flush(); frameErr != nil {
					return false
				}
			}
			return true
		})
		return frameErr
	}
	type window struct {
		first types.RID
		n     int
	}
	wins := make([]window, 0, len(refs)+len(imgs))
	for _, ref := range refs {
		wins = append(wins, window{ref.FirstRID, ref.N})
	}
	for _, img := range imgs {
		wins = append(wins, window{img.FirstRID, img.N})
	}
	sort.Slice(wins, func(i, j int) bool { return wins[i].first < wins[j].first })
	var prev types.RID
	for _, win := range wins {
		if err := scanWindow(prev, win.first); err != nil {
			return err
		}
		prev = win.first + types.RID(win.n)
	}
	if err := scanWindow(prev, ^types.RID(0)); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	p = []byte{frameTableEnd}
	p = binary.AppendUvarint(p, tb.id)
	p = binary.AppendUvarint(p, uint64(count))
	*totalRows += count
	return wal.WriteFrame(w, p)
}

// restoreCheckpoint rebuilds table contents from a checkpoint image:
// verifies each table frame against the re-created tables, bulk-loads row
// batches, and re-logs the load as one synthetic committed transaction when
// a WAL is attached (so the new log alone covers the restored rows).
func (db *DB) restoreCheckpoint(r io.Reader, stats *RecoverStats) error {
	br := bufio.NewReaderSize(r, 1<<16)
	hdr, err := wal.ReadFrame(br)
	if err != nil {
		return fmt.Errorf("lstore: checkpoint header: %w", err)
	}
	hp := &ckptParser{p: hdr}
	if hp.byte() != frameHeader || string(hp.bytes(len(ckptMagic))) != ckptMagic {
		return fmt.Errorf("lstore: not a checkpoint image")
	}
	if v := hp.uvarint(); !ckptVersionOK(v) {
		return fmt.Errorf("lstore: checkpoint version %d unsupported", v)
	}
	hp.uvarint() // capture timestamp (informational; restore re-issues times)
	watermark := hp.uvarint()
	nTables := hp.uvarint()
	if hp.err != nil {
		return fmt.Errorf("lstore: checkpoint header: %w", hp.err)
	}
	stats.Watermark = watermark

	relog := db.logger != nil
	var loadID uint64
	if relog {
		// A synthetic transaction ID for the re-logged bulk load; Tick keeps
		// it disjoint from every real transaction's ID.
		loadID = types.TxnIDFlag | db.tm.Tick()
	}

	var curTbl *Table
	var curCount, tablesSeen int64
	for {
		p, err := wal.ReadFrame(br)
		if err == io.EOF {
			return fmt.Errorf("lstore: checkpoint truncated before end frame: %w", wal.ErrTornFrame)
		}
		if err != nil {
			return fmt.Errorf("lstore: checkpoint: %w", err)
		}
		fp := &ckptParser{p: p}
		switch fp.byte() {
		case frameTable:
			tbl, err := db.verifyCkptTable(fp)
			if err != nil {
				return err
			}
			curTbl, curCount = tbl, 0
			tablesSeen++
		case frameRowBatch:
			id := fp.uvarint()
			nRows := fp.uvarint()
			if fp.err != nil {
				return fmt.Errorf("lstore: checkpoint row batch: %w", fp.err)
			}
			if curTbl == nil || id != curTbl.id {
				return fmt.Errorf("lstore: checkpoint row batch for table %d outside its section", id)
			}
			rows := make([][]Value, 0, nRows)
			batchTVals := make([][]wal.TypedVal, 0, nRows)
			for i := uint64(0); i < nRows; i++ {
				tvals, off, err := wal.ParseTypedVals(fp.p, fp.off)
				if err != nil {
					return fmt.Errorf("lstore: checkpoint row: %w", err)
				}
				fp.off = off
				if len(tvals) != curTbl.schema.NumCols() {
					return fmt.Errorf("lstore: checkpoint row arity %d, schema has %d columns", len(tvals), curTbl.schema.NumCols())
				}
				vals := make([]Value, len(tvals))
				for j, tv := range tvals {
					vals[j] = fromTyped(tv)
				}
				rows = append(rows, vals)
				batchTVals = append(batchTVals, tvals)
			}
			loaded, err := curTbl.store.BulkLoad(rows)
			stats.CheckpointRows += int64(loaded)
			curCount += int64(loaded)
			if err != nil {
				return fmt.Errorf("lstore: checkpoint restore into %q: %w", curTbl.name, err)
			}
			if relog {
				for _, tvals := range batchTVals {
					if _, err := db.logger.Append(wal.Record{
						Kind: wal.KindInsert, TxnID: loadID, Table: curTbl.id, TVals: tvals,
					}); err != nil {
						return fmt.Errorf("lstore: re-log during restore: %w", err)
					}
				}
			}
		case framePageRange:
			id := fp.uvarint()
			firstRID := fp.uvarint()
			nSlots := fp.uvarint()
			declRows := fp.uvarint()
			nCols := fp.uvarint()
			if fp.err != nil {
				return fmt.Errorf("lstore: checkpoint page frame: %w", fp.err)
			}
			if curTbl == nil || id != curTbl.id {
				return fmt.Errorf("lstore: checkpoint page frame for table %d outside its section", id)
			}
			if nCols != uint64(curTbl.schema.NumCols()) {
				return fmt.Errorf("lstore: checkpoint page frame has %d columns, schema has %d", nCols, curTbl.schema.NumCols())
			}
			img := core.RangeImage{
				FirstRID: types.RID(firstRID),
				N:        int(nSlots),
				Rows:     int(declRows),
				Cols:     make([][]byte, nCols),
			}
			for c := range img.Cols {
				img.Cols[c] = fp.bytes(int(fp.uvarint()))
			}
			img.Starts = fp.bytes(int(fp.uvarint()))
			if fp.err != nil || fp.off != len(fp.p) {
				return fmt.Errorf("lstore: checkpoint page frame malformed: %w", wal.ErrTornFrame)
			}
			installed, err := db.installCkptRange(curTbl, img, declRows, relog, loadID)
			if err != nil {
				return err
			}
			stats.CheckpointRows += int64(installed)
			curCount += int64(installed)
		case framePageRef:
			id := fp.uvarint()
			firstRID := fp.uvarint()
			nSlots := fp.uvarint()
			declRows := fp.uvarint()
			nCols := fp.uvarint()
			if fp.err != nil {
				return fmt.Errorf("lstore: checkpoint ref frame: %w", fp.err)
			}
			if curTbl == nil || id != curTbl.id {
				return fmt.Errorf("lstore: checkpoint ref frame for table %d outside its section", id)
			}
			if nCols != uint64(curTbl.schema.NumCols()) {
				return fmt.Errorf("lstore: checkpoint ref frame has %d columns, schema has %d", nCols, curTbl.schema.NumCols())
			}
			ref := core.RangeRef{
				FirstRID: types.RID(firstRID),
				N:        int(nSlots),
				Rows:     int(declRows),
				Cols:     make([]core.SpillDesc, nCols),
			}
			for c := range ref.Cols {
				ref.Cols[c] = fp.spillDesc()
			}
			ref.Starts = fp.spillDesc()
			if fp.err != nil || fp.off != len(fp.p) {
				return fmt.Errorf("lstore: checkpoint ref frame malformed: %w", wal.ErrTornFrame)
			}
			// Resolve against the re-attached spill file; a missing file or a
			// CRC mismatch (wrong or corrupt spill) fails restore loudly.
			img, err := curTbl.store.ResolveRangeRef(ref)
			if err != nil {
				return fmt.Errorf("lstore: checkpoint restore into %q: %w", curTbl.name, err)
			}
			installed, err := db.installCkptRange(curTbl, img, declRows, relog, loadID)
			if err != nil {
				return err
			}
			stats.CheckpointRows += int64(installed)
			curCount += int64(installed)
		case frameTableEnd:
			id := fp.uvarint()
			want := fp.uvarint()
			if fp.err != nil {
				return fmt.Errorf("lstore: checkpoint table end: %w", fp.err)
			}
			if curTbl == nil || id != curTbl.id {
				return fmt.Errorf("lstore: checkpoint table end for table %d outside its section", id)
			}
			if curCount != int64(want) {
				return fmt.Errorf("lstore: checkpoint table %q restored %d rows, image declares %d", curTbl.name, curCount, want)
			}
			curTbl = nil
		case frameEnd:
			want := fp.uvarint()
			if fp.err != nil {
				return fmt.Errorf("lstore: checkpoint end: %w", fp.err)
			}
			if stats.CheckpointRows != int64(want) {
				return fmt.Errorf("lstore: checkpoint restored %d rows, image declares %d", stats.CheckpointRows, want)
			}
			if tablesSeen != int64(nTables) {
				return fmt.Errorf("lstore: checkpoint holds %d tables, header declares %d", tablesSeen, nTables)
			}
			if relog && stats.CheckpointRows > 0 {
				// Commit the synthetic bulk-load transaction in the new log.
				// Buffered only — Recover flushes once at the end.
				if _, err := db.logger.Append(wal.Record{Kind: wal.KindCommit, TxnID: loadID}); err != nil {
					return fmt.Errorf("lstore: re-log during restore: %w", err)
				}
			}
			return nil
		default:
			return fmt.Errorf("lstore: checkpoint frame tag %d unknown", p[0])
		}
	}
}

// installCkptRange installs one cold-range image into tbl, re-logging its
// rows into the new WAL generation when relog is set — shared by the
// framePageRange and framePageRef restore paths.
func (db *DB) installCkptRange(tbl *Table, img core.RangeImage, declRows uint64, relog bool, loadID uint64) (int, error) {
	var rowFn func(key int64, vals []Value) error
	if relog {
		tvals := make([]wal.TypedVal, tbl.schema.NumCols())
		rowFn = func(_ int64, vals []Value) error {
			for i, v := range vals {
				tvals[i] = toTyped(v)
			}
			_, err := db.logger.Append(wal.Record{
				Kind: wal.KindInsert, TxnID: loadID, Table: tbl.id, TVals: tvals,
			})
			return err
		}
	}
	installed, err := tbl.store.InstallRangeImage(img, rowFn)
	if errors.Is(err, core.ErrImageShape) {
		// The restoring store runs a different RangeSize (or layout):
		// decode the image to rows and take the bulk-load path.
		rows, rerr := tbl.store.RangeImageRows(img)
		if rerr != nil {
			return 0, fmt.Errorf("lstore: checkpoint page restore into %q: %w", tbl.name, rerr)
		}
		installed, err = tbl.store.BulkLoad(rows)
		if err == nil && rowFn != nil {
			for _, vals := range rows {
				if err = rowFn(0, vals); err != nil {
					break
				}
			}
		}
	}
	if err != nil {
		return installed, fmt.Errorf("lstore: checkpoint page restore into %q: %w", tbl.name, err)
	}
	if uint64(installed) != declRows {
		return installed, fmt.Errorf("lstore: checkpoint page frame restored %d rows, frame declares %d", installed, declRows)
	}
	return installed, nil
}

// verifyCkptTable matches a checkpoint table frame against the re-created
// database: same id→name binding, same schema (names, types, key).
func (db *DB) verifyCkptTable(fp *ckptParser) (*Table, error) {
	id := fp.uvarint()
	name := fp.str()
	key := fp.uvarint()
	nCols := fp.uvarint()
	type colDecl struct {
		name string
		typ  byte
	}
	cols := make([]colDecl, 0, nCols)
	for i := uint64(0); i < nCols; i++ {
		cn := fp.str()
		ct := fp.byte()
		cols = append(cols, colDecl{cn, ct})
	}
	if fp.err != nil {
		return nil, fmt.Errorf("lstore: checkpoint table frame: %w", fp.err)
	}
	// Secondary-index columns and lineage follow; parse (validates framing)
	// but restore only consumes them for introspection tooling.
	nSec := fp.uvarint()
	for i := uint64(0); i < nSec; i++ {
		fp.uvarint()
	}
	nRanges := fp.uvarint()
	for i := uint64(0); i < nRanges; i++ {
		fp.byte()    // sealed
		fp.uvarint() // tail count
		nc := fp.uvarint()
		for j := uint64(0); j < nc; j++ {
			fp.uvarint()
			fp.uvarint()
		}
	}
	if fp.err != nil {
		return nil, fmt.Errorf("lstore: checkpoint table frame: %w", fp.err)
	}

	db.mu.RLock()
	defer db.mu.RUnlock()
	if id >= uint64(len(db.byID)) {
		return nil, fmt.Errorf("lstore: checkpoint references table %d (%q); re-create all tables before Recover", id, name)
	}
	tbl := db.byID[id]
	if tbl.name != name {
		return nil, fmt.Errorf("lstore: checkpoint table %d is %q, database has %q (creation order must match)", id, name, tbl.name)
	}
	if tbl.schema.NumCols() != int(nCols) || tbl.schema.Key != int(key) {
		return nil, fmt.Errorf("lstore: checkpoint schema mismatch for table %q", name)
	}
	for i, c := range cols {
		if tbl.schema.Cols[i].Name != c.name || byte(tbl.schema.Cols[i].Type) != c.typ {
			return nil, fmt.Errorf("lstore: checkpoint schema mismatch for table %q column %d (%q)", name, i, c.name)
		}
	}
	return tbl, nil
}

// ckptParser is a cursor over one frame's payload with sticky errors.
type ckptParser struct {
	p   []byte
	off int
	err error
}

func (c *ckptParser) fail() {
	if c.err == nil {
		c.err = fmt.Errorf("truncated frame payload")
	}
}

func (c *ckptParser) byte() byte {
	if c.err != nil || c.off >= len(c.p) {
		c.fail()
		return 0
	}
	b := c.p[c.off]
	c.off++
	return b
}

func (c *ckptParser) bytes(n int) []byte {
	if c.err != nil || c.off+n > len(c.p) {
		c.fail()
		return nil
	}
	b := c.p[c.off : c.off+n]
	c.off += n
	return b
}

func (c *ckptParser) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.p[c.off:])
	if n <= 0 {
		c.fail()
		return 0
	}
	c.off += n
	return v
}

func (c *ckptParser) str() string {
	n := c.uvarint()
	return string(c.bytes(int(n)))
}

func appendCkptString(p []byte, s string) []byte {
	p = binary.AppendUvarint(p, uint64(len(s)))
	return append(p, s...)
}

// appendSpillDesc serializes one spill descriptor (offset, length, CRC).
func appendSpillDesc(p []byte, d core.SpillDesc) []byte {
	p = binary.AppendUvarint(p, uint64(d.Off))
	p = binary.AppendUvarint(p, uint64(d.Len))
	return binary.AppendUvarint(p, uint64(d.CRC))
}

func (c *ckptParser) spillDesc() core.SpillDesc {
	return core.SpillDesc{
		Off: int64(c.uvarint()),
		Len: uint32(c.uvarint()),
		CRC: uint32(c.uvarint()),
	}
}

// ---------------------------------------------------------------------------
// Background checkpointer

// CheckpointSink receives completed checkpoint images from the background
// checkpointer. Returning an error keeps the previous checkpoint
// authoritative and skips WAL truncation for that round.
type CheckpointSink interface {
	Checkpoint(image []byte, info CheckpointInfo) error
}

// CheckpointBuffer is an in-memory CheckpointSink retaining the latest
// image — the moral equivalent of a checkpoint file that is atomically
// replaced on each round.
type CheckpointBuffer struct {
	mu    sync.Mutex
	image []byte         // guarded by mu
	info  CheckpointInfo // guarded by mu
	taken int            // guarded by mu
}

// Checkpoint stores image as the latest checkpoint.
func (b *CheckpointBuffer) Checkpoint(image []byte, info CheckpointInfo) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.image = append(b.image[:0], image...)
	b.info = info
	b.taken++
	return nil
}

// Latest returns a reader over the most recent image and its info; ok is
// false before the first checkpoint completes.
func (b *CheckpointBuffer) Latest() (io.Reader, CheckpointInfo, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.taken == 0 {
		return nil, CheckpointInfo{}, false
	}
	return bytes.NewReader(append([]byte(nil), b.image...)), b.info, true
}

// Taken returns how many checkpoints have been stored.
func (b *CheckpointBuffer) Taken() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.taken
}

// WithCheckpointEvery runs a background checkpointer: every interval it
// writes a complete checkpoint to sink and then truncates the WAL to the
// checkpoint's watermark (bounded by the oldest active transaction's begin
// LSN), so the log stops growing without bound. Truncation is skipped
// silently when the WAL sink cannot truncate or no WAL is attached; the
// checkpoints themselves still bound restart time.
func WithCheckpointEvery(every time.Duration, sink CheckpointSink) Option {
	return func(db *DB) {
		db.ckptEvery = every
		db.ckptSink = sink
	}
}

// CheckpointTo runs one complete checkpoint round against sink — write a
// full image, hand it to the sink, truncate the covered WAL prefix — and
// returns the image's description. A sink error keeps the previous
// checkpoint authoritative (and skips truncation). Rounds are serialized
// against Recover through ckptRoundMu; the background checkpointer runs
// exactly this, and a serving layer calls it for its final drain
// checkpoint and after DDL (table creation is not WAL-logged, so the
// checkpoint image is what makes it durable).
func (db *DB) CheckpointTo(sink CheckpointSink) (CheckpointInfo, error) {
	db.ckptRoundMu.Lock()
	defer db.ckptRoundMu.Unlock()
	var buf bytes.Buffer
	info, err := db.Checkpoint(&buf)
	if err != nil {
		return info, err // a poisoned WAL or scan error; nothing reached the sink
	}
	if err := sink.Checkpoint(buf.Bytes(), info); err != nil {
		return info, err // previous checkpoint stays authoritative
	}
	cpCkptPreTruncate.Hit() // crash here: new image durable, old log not yet truncated
	if db.logger != nil {
		db.TruncateWAL(info.LSN) //nolint:errcheck // non-truncatable sinks keep their log
	}
	return info, nil
}

// StartCheckpointer starts the background checkpointer on an already-open
// database — the same loop WithCheckpointEvery runs, but under the caller's
// control of WHEN it begins. A durable serving layer needs exactly that:
// recovery re-logs into a fresh WAL generation, and until the new
// (checkpoint, WAL) pair is committed on disk, a background checkpoint
// would overwrite the only image — possibly with a half-recovered or empty
// database — while the generation marker still names the old pair. Such
// callers Open without WithCheckpointEvery, finish recovery and commit the
// generation, and only then start the checkpointer. The checkpointer can be
// started once per DB; Close stops it.
func (db *DB) StartCheckpointer(every time.Duration, sink CheckpointSink) error {
	if every <= 0 || sink == nil {
		return fmt.Errorf("lstore: StartCheckpointer needs a positive interval and a sink")
	}
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return fmt.Errorf("lstore: StartCheckpointer on closed database")
	}
	if db.ckptStop != nil {
		db.mu.Unlock()
		return fmt.Errorf("lstore: checkpointer already started")
	}
	db.ckptEvery, db.ckptSink = every, sink
	stop, done := db.armCheckpointerLocked()
	db.mu.Unlock()
	go db.checkpointLoop(every, sink, stop, done)
	return nil
}

// armCheckpointerLocked creates the checkpointer's stop/done channels and
// returns them; the caller launches checkpointLoop AFTER releasing mu (the
// loop acquires ckptRoundMu, which is ordered before mu). The loop takes
// its state as arguments so it never reads the mu-guarded channel fields.
//
// locked: db.mu
func (db *DB) armCheckpointerLocked() (stop, done chan struct{}) {
	db.ckptStop = make(chan struct{})
	db.ckptDone = make(chan struct{})
	return db.ckptStop, db.ckptDone
}

// checkpointRound is one background-checkpointer cycle against the
// configured sink; errors are dropped (the previous image stays
// authoritative). The torture tests drive rounds through it manually.
func (db *DB) checkpointRound() {
	db.CheckpointTo(db.ckptSink) //nolint:errcheck // see doc comment
}

// checkpointLoop runs checkpoint rounds every tick until stop closes.
// Round errors are dropped: the next tick retries, the previous image stays
// authoritative.
func (db *DB) checkpointLoop(every time.Duration, sink CheckpointSink, stop, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			db.CheckpointTo(sink) //nolint:errcheck // see doc comment
		}
	}
}
