package lstore

import (
	"errors"
	"math"
	"testing"
)

// planFixture builds a table with a secondary index on "region" only.
func planFixture(t *testing.T) (*DB, *Table) {
	t.Helper()
	db := Open()
	t.Cleanup(db.Close)
	tbl, err := db.CreateTable("accounts", NewSchema("id",
		Column{Name: "id", Type: Int64},
		Column{Name: "owner", Type: String},
		Column{Name: "balance", Type: Int64},
		Column{Name: "region", Type: Int64},
	), TableOptions{RangeSize: 64, DisableAutoMerge: true, SecondaryIndexes: []string{"region"}})
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin(ReadCommitted)
	if err := tbl.Insert(tx, Row{"id": Int(1), "owner": Str("ada"), "balance": Int(10), "region": Int(3)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

// TestPlannerIndexVsScanSelection pins the planner's plan choice: equality
// on an indexed column probes, everything else scans, provably-unmatchable
// predicates short-circuit.
func TestPlannerIndexVsScanSelection(t *testing.T) {
	_, tbl := planFixture(t)

	cases := []struct {
		name  string
		preds []Predicate
		want  planKind
	}{
		{"eq on indexed column", []Predicate{Eq("region", Int(3))}, planProbe},
		{"eq on unindexed column", []Predicate{Eq("balance", Int(10))}, planScan},
		{"eq on key column (no secondary index)", []Predicate{Eq("id", Int(1))}, planScan},
		{"window on indexed column", []Predicate{Between("region", Int(1), Int(4))}, planScan},
		{"degenerate between on indexed column", []Predicate{Between("region", Int(3), Int(3))}, planProbe},
		{"ne on indexed column", []Predicate{Ne("region", Int(3))}, planScan},
		{"is-null on indexed column (indexes hold no nulls)", []Predicate{IsNull("region")}, planScan},
		{"window first, eq on indexed second", []Predicate{Gt("balance", Int(5)), Eq("region", Int(3))}, planProbe},
		{"no predicates", nil, planScan},
		{"inverted between", []Predicate{Between("balance", Int(9), Int(3))}, planEmpty},
		{"eq on string absent from dictionary", []Predicate{Eq("owner", Str("nobody"))}, planEmpty},
	}
	for _, tc := range cases {
		p, err := tbl.planQuery(nil, tc.preds, nil, true)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if p.kind != tc.want {
			t.Errorf("%s: plan kind %d, want %d", tc.name, p.kind, tc.want)
		}
		if p.kind == planProbe && p.probeCol != tbl.schema.ColIndex("region") {
			t.Errorf("%s: probe column %d, want region", tc.name, p.probeCol)
		}
	}
}

// TestPlannerReadColsAndPositions pins the compiled column layout:
// projection first, predicate columns appended without duplication, key
// last when requested.
func TestPlannerReadColsAndPositions(t *testing.T) {
	_, tbl := planFixture(t)

	p, err := tbl.planQuery([]string{"balance", "owner"},
		[]Predicate{Gt("balance", Int(0)), Eq("region", Int(1))}, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	// readCols: balance, owner (projection), region (predicate), id (key).
	want := []int{2, 1, 3, 0}
	if len(p.readCols) != len(want) {
		t.Fatalf("readCols = %v, want %v", p.readCols, want)
	}
	for i := range want {
		if p.readCols[i] != want[i] {
			t.Fatalf("readCols = %v, want %v", p.readCols, want)
		}
	}
	if p.nProj != 2 || p.keyPos != 3 {
		t.Fatalf("nProj=%d keyPos=%d", p.nProj, p.keyPos)
	}
	// The balance predicate must alias the projection position.
	if p.preds[0].Idx != 0 || p.preds[1].Idx != 2 {
		t.Fatalf("pred positions %d,%d, want 0,2", p.preds[0].Idx, p.preds[1].Idx)
	}
}

// TestPlannerTypeChecking pins the API-boundary type checks: mistyped
// operands, ordered comparisons on strings, and aggregates over strings all
// fail with ErrTypeMismatch; Insert and Update reject mistyped values with
// the same sentinel.
func TestPlannerTypeChecking(t *testing.T) {
	db, tbl := planFixture(t)

	bad := [][]Predicate{
		{Eq("balance", Str("x"))},
		{Ne("owner", Int(1))},
		{Lt("owner", Str("x"))}, // ordered on string column
		{Between("owner", Str("a"), Str("b"))},
		{Gt("balance", Null())}, // null operand in ordered comparison
	}
	for i, preds := range bad {
		if _, err := tbl.planQuery(nil, preds, nil, false); !errors.Is(err, ErrTypeMismatch) {
			t.Errorf("case %d: err = %v, want ErrTypeMismatch", i, err)
		}
	}
	if _, err := tbl.planQuery(nil, nil, []Agg{Min("owner")}, false); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("Min over string column: want ErrTypeMismatch")
	}
	if _, err := tbl.planQuery(nil, []Predicate{Eq("ghost", Int(1))}, nil, false); err == nil {
		t.Error("unknown predicate column accepted")
	}

	tx := db.Begin(ReadCommitted)
	defer tx.Abort()
	if err := tbl.Insert(tx, Row{"id": Int(9), "owner": Int(1)}); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("Insert mistyped value: err = %v, want ErrTypeMismatch", err)
	}
	if err := tbl.Update(tx, 1, Row{"balance": Str("x")}); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("Update mistyped value: err = %v, want ErrTypeMismatch", err)
	}
}

// TestMaxInt64Boundary pins the reserved-value contract: math.MaxInt64 is
// unstorable (its encoding would collide with the implicit null), the write
// path rejects it with ErrTypeMismatch, and predicates mentioning it lower
// to what the collision-free universe implies instead of comparing a
// saturated encoding that aliases MaxInt64-1.
func TestMaxInt64Boundary(t *testing.T) {
	db, tbl := planFixture(t)
	const nearMax = math.MaxInt64 - 1

	tx := db.Begin(ReadCommitted)
	if err := tbl.Insert(tx, Row{"id": Int(2), "owner": Str("bea"), "balance": Int(nearMax), "region": Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(tx, Row{"id": Int(3), "balance": Int(math.MaxInt64)}); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("Insert MaxInt64: err = %v, want ErrTypeMismatch", err)
	}
	if err := tbl.Update(tx, 1, Row{"balance": Int(math.MaxInt64)}); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("Update MaxInt64: err = %v, want ErrTypeMismatch", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// The row holding MaxInt64-1 must NOT alias a MaxInt64 operand.
	if ks, err := tbl.Query().Where(Eq("balance", Int(math.MaxInt64))).Keys(); err != nil || len(ks) != 0 {
		t.Fatalf("Eq(MaxInt64): %v %v", ks, err)
	}
	if c, err := tbl.Query().Where(Lt("balance", Int(math.MaxInt64))).Count(); err != nil || c != 2 {
		t.Fatalf("Lt(MaxInt64) count = %d (%v), want 2", c, err)
	}
	if c, err := tbl.Query().Where(Ne("balance", Int(math.MaxInt64))).Count(); err != nil || c != 2 {
		t.Fatalf("Ne(MaxInt64) count = %d (%v), want 2", c, err)
	}
	if ks, err := tbl.Query().Where(Ge("balance", Int(math.MaxInt64))).Keys(); err != nil || len(ks) != 0 {
		t.Fatalf("Ge(MaxInt64): %v %v", ks, err)
	}
	if ks, err := tbl.Query().Where(Between("balance", Int(nearMax), Int(math.MaxInt64))).Keys(); err != nil || len(ks) != 1 || ks[0] != 2 {
		t.Fatalf("Between(..., MaxInt64): %v %v", ks, err)
	}
}

// TestFindByRequiresIndexQueryDoesNot pins the satellite contract: FindBy on
// an unindexed column fails with ErrNoIndex, while the same predicate
// through Query falls back to a filtered scan.
func TestFindByRequiresIndexQueryDoesNot(t *testing.T) {
	db, tbl := planFixture(t)

	if _, err := tbl.FindBy(db.Now(), "balance", Int(10)); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("FindBy on unindexed column: err = %v, want ErrNoIndex", err)
	}
	keys, err := tbl.Query().Where(Eq("balance", Int(10))).Keys()
	if err != nil || len(keys) != 1 || keys[0] != 1 {
		t.Fatalf("Query fallback: keys=%v err=%v", keys, err)
	}
	keys, err = tbl.FindBy(db.Now(), "region", Int(3))
	if err != nil || len(keys) != 1 || keys[0] != 1 {
		t.Fatalf("FindBy on indexed column: keys=%v err=%v", keys, err)
	}
	// FindBy(Null) keeps its historic contract — the index never holds
	// nulls, so the probe is empty — while Query's Eq(Null) means IS NULL.
	keys, err = tbl.FindBy(db.Now(), "region", Null())
	if err != nil || len(keys) != 0 {
		t.Fatalf("FindBy(Null): keys=%v err=%v", keys, err)
	}
}
