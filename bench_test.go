// Benchmark entry points: one testing.B benchmark per table and figure of
// the paper's evaluation (§6). Each benchmark executes its experiment at a
// reduced scale suitable for `go test -bench`; cmd/lstore-bench runs the
// same experiments with full control over scale. The printed series are the
// reproduction artifact; b.ReportMetric surfaces the headline number.
//
// Run all: go test -bench=. -benchmem
package lstore_test

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lstore"
	"lstore/internal/bench"
	"lstore/internal/workload"
)

// benchOptions returns the scaled-down options used under `go test -bench`.
func benchOptions() bench.Options {
	return bench.Options{
		TableSize: 16384,
		Duration:  250 * time.Millisecond,
		Threads:   []int{1, 2, 4, 8},
		RangeSize: 2048,
		Out:       os.Stdout,
	}
}

// runExperiment executes one experiment exactly once per benchmark run.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	o := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bench.Experiments[id](o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7ScalabilityLow(b *testing.B)      { runExperiment(b, "fig7a") }
func BenchmarkFig7ScalabilityMed(b *testing.B)      { runExperiment(b, "fig7b") }
func BenchmarkFig7ScalabilityHigh(b *testing.B)     { runExperiment(b, "fig7c") }
func BenchmarkFig8ScanVsMergeBatch(b *testing.B)    { runExperiment(b, "fig8") }
func BenchmarkTable7ScanComparison(b *testing.B)    { runExperiment(b, "table7") }
func BenchmarkFig9ReadRatioLow(b *testing.B)        { runExperiment(b, "fig9a") }
func BenchmarkFig9ReadRatioMed(b *testing.B)        { runExperiment(b, "fig9b") }
func BenchmarkFig10MixedLow(b *testing.B)           { runExperiment(b, "fig10a") }
func BenchmarkFig10MixedMed(b *testing.B)           { runExperiment(b, "fig10c") }
func BenchmarkTable8RowVsColumn(b *testing.B)       { runExperiment(b, "table8") }
func BenchmarkTable9PointQueryColumns(b *testing.B) { runExperiment(b, "table9") }

// ---------------------------------------------------------------------------
// Micro-benchmarks of the primitives (ablation-style measurements of the
// design choices DESIGN.md calls out).

// BenchmarkPointUpdate measures single-threaded short-update latency.
func BenchmarkPointUpdate(b *testing.B) {
	w := workload.ForContention(workload.Low, 16384)
	e, err := bench.NewLStore(w.NumCols, bench.LStoreOptions{RangeSize: 2048})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	if err := e.Preload(w.TableSize, w.NumCols); err != nil {
		b.Fatal(err)
	}
	gen := workload.NewGenerator(w, 1)
	b.ResetTimer()
	committed := 0
	for i := 0; i < b.N; i++ {
		if bench.RunOneTxn(e, gen.NextTxn()) {
			committed++
		}
	}
	b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "txns/s")
}

// BenchmarkScanAfterMerge measures the columnar scan fast path (everything
// consolidated, 0-hop reads).
func BenchmarkScanAfterMerge(b *testing.B) {
	benchScan(b, true)
}

// BenchmarkScanWithTailBacklog measures scans that must chase tail records
// (merge disabled — the worst case of Figure 8).
func BenchmarkScanWithTailBacklog(b *testing.B) {
	benchScan(b, false)
}

func benchScan(b *testing.B, merged bool) {
	w := workload.ForContention(workload.Low, 16384)
	e, err := bench.NewLStore(w.NumCols, bench.LStoreOptions{RangeSize: 2048, DisableAutoMerge: true})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	if err := e.Preload(w.TableSize, w.NumCols); err != nil {
		b.Fatal(err)
	}
	gen := workload.NewGenerator(w, 2)
	for i := 0; i < 2000; i++ {
		bench.RunOneTxn(e, gen.NextTxn())
	}
	if merged {
		e.Store().ForceMerge()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, rows := e.ScanSum(e.Now(), 1, w.TableSize)
		if rows == 0 {
			b.Fatalf("empty scan (sum=%d)", sum)
		}
	}
}

// BenchmarkMergeThroughput measures tail records consolidated per second by
// the merge process itself.
func BenchmarkMergeThroughput(b *testing.B) {
	w := workload.ForContention(workload.Low, 16384)
	b.ReportAllocs()
	var total float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := bench.NewLStore(w.NumCols, bench.LStoreOptions{RangeSize: 2048, DisableAutoMerge: true})
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Preload(w.TableSize, w.NumCols); err != nil {
			b.Fatal(err)
		}
		gen := workload.NewGenerator(w, 3)
		for j := 0; j < 5000; j++ {
			bench.RunOneTxn(e, gen.NextTxn())
		}
		b.StartTimer()
		t0 := time.Now()
		n := e.Store().ForceMerge()
		total += float64(n) / time.Since(t0).Seconds()
		b.StopTimer()
		e.Close()
		b.StartTimer()
	}
	b.ReportMetric(total/float64(b.N), "tailrecs/s")
}

// BenchmarkMergeWorkers compares the background merge-scheduler pool at 1
// worker vs a GOMAXPROCS-bounded pool under an update-heavy multi-range
// workload. Reported metrics: committed update throughput and the merge lag
// (tail records the merge had not yet consumed when the writers stopped).
func BenchmarkMergeWorkers(b *testing.B) {
	pool := runtime.GOMAXPROCS(0)
	if pool > 8 {
		pool = 8
	}
	if pool < 2 {
		pool = 2 // keep the 1-vs-N comparison meaningful on 1-CPU hosts
	}
	for _, workers := range []int{1, pool} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			db := lstore.Open()
			defer db.Close()
			tbl, err := db.CreateTable("t", lstore.NewSchema("id",
				lstore.Column{Name: "id", Type: lstore.Int64},
				lstore.Column{Name: "v", Type: lstore.Int64},
			), lstore.TableOptions{RangeSize: 512, MergeBatch: 64, MergeWorkers: workers})
			if err != nil {
				b.Fatal(err)
			}
			const rows = 8192
			tx := db.Begin(lstore.ReadCommitted)
			for i := int64(0); i < rows; i++ {
				if err := tbl.Insert(tx, lstore.Row{"id": lstore.Int(i), "v": lstore.Int(0)}); err != nil {
					b.Fatal(err)
				}
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
			const writers = 4
			per := b.N/writers + 1
			var committed atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					r := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < per; i++ {
						tx := db.Begin(lstore.ReadCommitted)
						if tbl.Update(tx, r.Int63n(rows), lstore.Row{"v": lstore.Int(int64(i))}) != nil {
							tx.Abort()
							continue
						}
						if tx.Commit() == nil {
							committed.Add(1)
						}
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			st := tbl.Stats()
			b.ReportMetric(float64(committed.Load())/b.Elapsed().Seconds(), "txns/s")
			b.ReportMetric(float64(st.MergeBacklog), "lag-tailrecs")
		})
	}
}

// BenchmarkCumulativeVsChainReads is the ablation for cumulative updates
// (§3.1): multi-column point reads with the 2-hop guarantee vs chain walks.
func BenchmarkCumulativeVsChainReads(b *testing.B) {
	for _, cumulative := range []bool{true, false} {
		name := "cumulative"
		if !cumulative {
			name = "chained"
		}
		b.Run(name, func(b *testing.B) {
			db := lstore.Open()
			defer db.Close()
			tbl, err := db.CreateTable("t", lstore.NewSchema("id",
				lstore.Column{Name: "id", Type: lstore.Int64},
				lstore.Column{Name: "c1", Type: lstore.Int64},
				lstore.Column{Name: "c2", Type: lstore.Int64},
				lstore.Column{Name: "c3", Type: lstore.Int64},
			), lstore.TableOptions{
				RangeSize: 256, DisableAutoMerge: true,
				DisableCumulativeUpdates: !cumulative,
			})
			if err != nil {
				b.Fatal(err)
			}
			tx := db.Begin(lstore.ReadCommitted)
			for i := int64(0); i < 256; i++ {
				if err := tbl.Insert(tx, lstore.Row{
					"id": lstore.Int(i), "c1": lstore.Int(0), "c2": lstore.Int(0), "c3": lstore.Int(0),
				}); err != nil {
					b.Fatal(err)
				}
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
			// Build 3-version chains touching different columns.
			for _, col := range []string{"c1", "c2", "c3"} {
				tx := db.Begin(lstore.ReadCommitted)
				for i := int64(0); i < 256; i++ {
					if err := tbl.Update(tx, i, lstore.Row{col: lstore.Int(i)}); err != nil {
						b.Fatal(err)
					}
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := db.Begin(lstore.ReadCommitted)
				if _, ok, err := tbl.Get(tx, int64(i%256), "c1", "c2", "c3"); err != nil || !ok {
					b.Fatalf("missing row: %v", err)
				}
				tx.Abort()
			}
		})
	}
}

// BenchmarkScanRangeCallback measures the full-table callback scan
// (Table.Scan) — the ScanRange path through the shared scan engine.
func BenchmarkScanRangeCallback(b *testing.B) {
	db := lstore.Open()
	defer db.Close()
	tbl, err := db.CreateTable("t", lstore.NewSchema("id",
		lstore.Column{Name: "id", Type: lstore.Int64},
		lstore.Column{Name: "v", Type: lstore.Int64},
		lstore.Column{Name: "w", Type: lstore.Int64},
	), lstore.TableOptions{RangeSize: 2048, DisableAutoMerge: true})
	if err != nil {
		b.Fatal(err)
	}
	const rows = 16384
	tx := db.Begin(lstore.ReadCommitted)
	for i := int64(0); i < rows; i++ {
		if err := tbl.Insert(tx, lstore.Row{"id": lstore.Int(i), "v": lstore.Int(i), "w": lstore.Int(-i)}); err != nil {
			b.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	tbl.Merge()
	ts := db.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := tbl.Scan(ts, []string{"v", "w"}, func(key int64, row lstore.Row) bool {
			n++
			return true
		}); err != nil {
			b.Fatal(err)
		}
		if n != rows {
			b.Fatalf("scanned %d rows", n)
		}
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkPinnedScan measures the columnar aggregate with sealed base
// pages behind the buffer pool: the cap is ~half the encoded footprint, so
// every sweep pins a mix of resident frames and spill refaults — the
// steady-state cost of beyond-RAM base storage, against the all-resident
// BenchmarkQueryAggregate numbers.
func BenchmarkPinnedScan(b *testing.B) {
	db := lstore.Open()
	defer db.Close()
	tbl, err := db.CreateTable("t", lstore.NewSchema("id",
		lstore.Column{Name: "id", Type: lstore.Int64},
		lstore.Column{Name: "v", Type: lstore.Int64},
		lstore.Column{Name: "w", Type: lstore.Int64},
	), lstore.TableOptions{
		RangeSize: 2048, DisableAutoMerge: true,
		Spill: lstore.NewMemSpill(), PoolBytes: 24 << 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	const rows = 16384
	tx := db.Begin(lstore.ReadCommitted)
	for i := int64(0); i < rows; i++ {
		if err := tbl.Insert(tx, lstore.Row{"id": lstore.Int(i), "v": lstore.Int(i), "w": lstore.Int(-i)}); err != nil {
			b.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	tbl.Merge()
	ts := db.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tbl.Query().At(ts).Aggregate(lstore.Sum("v"), lstore.Count())
		if err != nil || res.Rows(1) != rows {
			b.Fatalf("aggregate saw %d rows (%v)", res.Rows(1), err)
		}
	}
	b.StopTimer()
	if st := tbl.Stats(); st.PoolMisses == 0 || st.PoolResidentBytes > st.PoolCapBytes {
		b.Fatalf("pool did not thrash within budget: %+v", st)
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkQueryFiltered is the acceptance benchmark for the query API:
// a selective filter (~1% of rows) through Query's predicate pushdown
// (vectorized word-skipping inside the scan engine, zero-alloc RowView
// delivery) against the same filter applied in a Table.Scan callback
// (every row materialized into a Row map, filtered caller-side).
func BenchmarkQueryFiltered(b *testing.B) {
	db, tbl, rows := queryBenchTable(b)
	defer db.Close()
	ts := db.Now()
	lo, hi := int64(rows/2), int64(rows/2+rows/100-1) // ~1% selectivity
	wantRows := hi - lo + 1

	b.Run("query-pushdown", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var n, total int64
			err := tbl.Query().Select("w").
				Where(lstore.Between("v", lstore.Int(lo), lstore.Int(hi))).At(ts).
				Rows(func(rv *lstore.RowView) bool {
					n++
					total += rv.Int("w")
					return true
				})
			if err != nil || n != wantRows {
				b.Fatalf("matched %d rows, want %d (%v)", n, wantRows, err)
			}
		}
		b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})
	b.Run("scan-callback-filter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var n, total int64
			err := tbl.Scan(ts, []string{"v", "w"}, func(key int64, row lstore.Row) bool {
				if v := row["v"].Int(); v >= lo && v <= hi {
					n++
					total += row["w"].Int()
				}
				return true
			})
			if err != nil || n != wantRows {
				b.Fatalf("matched %d rows, want %d (%v)", n, wantRows, err)
			}
		}
		b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})
}

// BenchmarkQueryAggregate measures the filtered aggregate kernels
// (Sum/Count/Min/Max folded inside the scan engine) against the same
// aggregation done in a Table.Scan callback.
func BenchmarkQueryAggregate(b *testing.B) {
	db, tbl, rows := queryBenchTable(b)
	defer db.Close()
	ts := db.Now()
	lo, hi := int64(0), int64(rows/10) // ~10% selectivity

	b.Run("query-kernels", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := tbl.Query().
				Where(lstore.Between("v", lstore.Int(lo), lstore.Int(hi))).At(ts).
				Aggregate(lstore.Sum("w"), lstore.Count(), lstore.Min("w"), lstore.Max("w"))
			if err != nil || res.Rows(1) == 0 {
				b.Fatalf("empty aggregate (%v)", err)
			}
		}
		b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})
	b.Run("scan-callback-fold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sum, count, minV, maxV int64
			seen := false
			err := tbl.Scan(ts, []string{"v", "w"}, func(key int64, row lstore.Row) bool {
				if v := row["v"].Int(); v >= lo && v <= hi {
					w := row["w"].Int()
					sum += w
					count++
					if !seen || w < minV {
						minV = w
					}
					if !seen || w > maxV {
						maxV = w
					}
					seen = true
				}
				return true
			})
			if err != nil || count == 0 {
				b.Fatalf("empty fold (%v)", err)
			}
		}
		b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})
}

// queryBenchTable preloads the filtered-query benchmark table: v ascending
// (the filter column), w a payload column, fully merged.
func queryBenchTable(b *testing.B) (*lstore.DB, *lstore.Table, int) {
	b.Helper()
	db := lstore.Open()
	tbl, err := db.CreateTable("t", lstore.NewSchema("id",
		lstore.Column{Name: "id", Type: lstore.Int64},
		lstore.Column{Name: "v", Type: lstore.Int64},
		lstore.Column{Name: "w", Type: lstore.Int64},
	), lstore.TableOptions{RangeSize: 2048, DisableAutoMerge: true})
	if err != nil {
		b.Fatal(err)
	}
	const rows = 16384
	tx := db.Begin(lstore.ReadCommitted)
	for i := int64(0); i < rows; i++ {
		if err := tbl.Insert(tx, lstore.Row{"id": lstore.Int(i), "v": lstore.Int(i), "w": lstore.Int(-i)}); err != nil {
			b.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	tbl.Merge()
	return db, tbl, rows
}

// BenchmarkLookupSecondary measures secondary-index probes (Table.FindBy)
// through the scan engine's point face.
func BenchmarkLookupSecondary(b *testing.B) {
	db := lstore.Open()
	defer db.Close()
	tbl, err := db.CreateTable("t", lstore.NewSchema("id",
		lstore.Column{Name: "id", Type: lstore.Int64},
		lstore.Column{Name: "grp", Type: lstore.Int64},
	), lstore.TableOptions{RangeSize: 2048, DisableAutoMerge: true,
		SecondaryIndexes: []string{"grp"}})
	if err != nil {
		b.Fatal(err)
	}
	const rows = 16384
	tx := db.Begin(lstore.ReadCommitted)
	for i := int64(0); i < rows; i++ {
		if err := tbl.Insert(tx, lstore.Row{"id": lstore.Int(i), "grp": lstore.Int(i % 512)}); err != nil {
			b.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	tbl.Merge()
	ts := db.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keys, err := tbl.FindBy(ts, "grp", lstore.Int(int64(i%512)))
		if err != nil {
			b.Fatal(err)
		}
		if len(keys) != rows/512 {
			b.Fatalf("probe returned %d keys", len(keys))
		}
	}
	b.ReportMetric(float64(rows/512)*float64(b.N)/b.Elapsed().Seconds(), "probes/s")
}
