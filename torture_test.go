package lstore

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"testing"

	"lstore/internal/fault"
	"lstore/internal/wal"
)

// Crash-torture property suite: for every registered crash point and a sweep
// of fault shapes, a randomized workload is "killed" (the crash point panics
// with *fault.Crash, the DB is abandoned with whatever locks and half-done
// state it held), the store is reopened from DURABLE BYTES ONLY, recovery
// runs, and the result is checked against the committed-prefix oracle: the
// recovered state must equal some candidate state at or after the last
// acknowledged commit — acknowledged commits never vanish, unacknowledged
// ones may land either way, and nothing else can appear.
//
// The same harness runs over the in-memory sinks and the file-backed sinks;
// the file variant's "kill" closes every handle and re-reads the paths cold,
// so truncation (rewrite-and-rename on disk) and checkpoint replacement
// (write-temp-then-rename) are exercised against a real filesystem.

// tortureScale stretches the suite for long-run mode: LSTORE_TORTURE_ITERS=n
// multiplies workload sizes (CI sets it for the nightly deep sweep).
func tortureScale() int {
	if s := os.Getenv("LSTORE_TORTURE_ITERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

// tortureOpts are the table options every torture table runs with: ranges
// tiny enough that seals happen every few commits, and beyond-RAM base
// storage over a fresh in-memory spill with a pool cap of a few frames — so
// the spill-write, pool miss-read, and spill-sync paths all sit inside the
// crash sweep (calibration fails on any point the workload cannot reach).
func tortureOpts() TableOptions {
	return TableOptions{
		RangeSize:           8,
		DisableAutoMerge:    true,
		Spill:               NewMemSpill(),
		PoolBytes:           64,
		CheckpointSpillRefs: true,
	}
}

// tortureDev is one durable "machine": a raw WAL device and a checkpoint
// sink, plus the two cold-read accessors a post-kill recovery is allowed to
// use. Nothing else survives the crash.
type tortureDev struct {
	inner      io.Writer
	ckpt       CheckpointSink
	durableWAL func(t *testing.T) []byte
	latestCkpt func(t *testing.T) ([]byte, bool)
}

type tortureMedia struct {
	name string
	open func(t *testing.T) *tortureDev
}

func tortureMediaList() []tortureMedia {
	return []tortureMedia{
		{name: "mem", open: func(t *testing.T) *tortureDev {
			buf := &WALBuffer{}
			cb := &CheckpointBuffer{}
			return &tortureDev{
				inner: buf,
				ckpt:  cb,
				durableWAL: func(t *testing.T) []byte {
					return append([]byte(nil), buf.Bytes()...)
				},
				latestCkpt: func(t *testing.T) ([]byte, bool) {
					r, _, ok := cb.Latest()
					if !ok {
						return nil, false
					}
					data, err := io.ReadAll(r)
					if err != nil {
						t.Fatal(err)
					}
					return data, true
				},
			}
		}},
		{name: "file", open: func(t *testing.T) *tortureDev {
			dir := t.TempDir()
			walPath := filepath.Join(dir, "wal.log")
			ckptPath := filepath.Join(dir, "ckpt.img")
			ws, err := OpenWALFile(walPath)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { ws.Close() })
			cs, err := NewFileCheckpointSink(ckptPath)
			if err != nil {
				t.Fatal(err)
			}
			return &tortureDev{
				inner: ws,
				ckpt:  cs,
				durableWAL: func(t *testing.T) []byte {
					// The kill: drop the live handle, reopen the path cold
					// and read back what the disk holds.
					ws.Close()
					s2, err := OpenWALFile(walPath)
					if err != nil {
						t.Fatal(err)
					}
					defer s2.Close()
					data, err := s2.Bytes()
					if err != nil {
						t.Fatal(err)
					}
					return data
				},
				latestCkpt: func(t *testing.T) ([]byte, bool) {
					cs2, err := NewFileCheckpointSink(ckptPath)
					if err != nil {
						t.Fatal(err)
					}
					r, _, ok := cs2.Latest()
					if !ok {
						return nil, false
					}
					data, err := io.ReadAll(r)
					if err != nil {
						t.Fatal(err)
					}
					return data, true
				},
			}
		}},
	}
}

// tortureRun is the oracle's bookkeeping. states[0] is the initial empty
// state; a candidate is appended immediately before each Commit attempt, so
// after a kill the recovered state must equal states[j] for some j >= acked
// (a definitively-aborted candidate is popped back off).
type tortureRun struct {
	states []map[int64]Row
	acked  int
}

func newTortureRun() *tortureRun {
	return &tortureRun{states: []map[int64]Row{{}}}
}

func copyState(m map[int64]Row) map[int64]Row {
	out := make(map[int64]Row, len(m))
	for k, r := range m {
		cr := Row{}
		for c, v := range r {
			cr[c] = v
		}
		out[k] = cr
	}
	return out
}

func sameTortureState(a, b map[int64]Row) bool {
	if len(a) != len(b) {
		return false
	}
	for key, ar := range a {
		br, ok := b[key]
		if !ok {
			return false
		}
		for col, av := range ar {
			if !av.Equal(br[col]) {
				return false
			}
		}
	}
	return true
}

// tortureWorkload runs sequential random transactions (insert/update/delete
// over a 16-key space, 1–3 ops each) against db, checkpointing every 7th
// commit, recording oracle candidates into run IN PLACE so a crash mid-call
// leaves the bookkeeping consistent. It stops on its own once the WAL is
// poisoned (a dead device ends the workload; it must not end the test).
func tortureWorkload(db *DB, tbl *Table, rng *rand.Rand, commits int, run *tortureRun) {
	names := []string{"ada", "bob", "cleo", "dan"}
	committed := run.states[len(run.states)-1]
	done := 0
	for c := 0; c < commits; c++ {
		if db.WALInfo().Err != nil {
			return
		}
		tx := db.Begin(ReadCommitted)
		cand := copyState(committed)
		nops := 1 + rng.Intn(3)
		opFailed := false
		for o := 0; o < nops; o++ {
			key := rng.Int63n(16)
			var opErr error
			switch rng.Intn(5) {
			case 0, 1:
				name := Value(Null())
				if rng.Intn(4) > 0 {
					name = Str(names[rng.Intn(len(names))])
				}
				v := rng.Int63n(1000)
				opErr = tbl.Insert(tx, Row{"id": Int(key), "name": name, "v": Int(v)})
				if opErr == nil {
					cand[key] = Row{"id": Int(key), "name": name, "v": Int(v)}
				}
			case 2, 3:
				v := rng.Int63n(1000)
				opErr = tbl.Update(tx, key, Row{"v": Int(v)})
				if opErr == nil {
					cand[key]["v"] = Int(v)
				}
			default:
				opErr = tbl.Delete(tx, key)
				if opErr == nil {
					delete(cand, key)
				}
			}
			if opErr != nil {
				// Duplicate insert / missing key / poisoned txn: abort the
				// whole transaction so the oracle stays trivially aligned.
				tx.Abort()
				opFailed = true
				break
			}
		}
		if opFailed {
			continue
		}
		run.states = append(run.states, cand)
		err := tx.Commit()
		switch {
		case err == nil:
			committed = cand
			run.acked = len(run.states) - 1
			done++
		case errors.Is(err, ErrDurabilityUnknown):
			// Ambiguous: the candidate stays as an allowed outcome.
		default:
			// Definitive abort (incomplete log): the candidate can never
			// become durable.
			run.states = run.states[:len(run.states)-1]
		}
		// Checkpoint every 7th commit, but not near the end of the run: the
		// calibration pass needs committed transactions left in the log tail
		// so the redo-path crash points are reachable.
		if done > 0 && done%7 == 0 && c+8 < commits {
			db.checkpointRound()
			done++ // one round per boundary, not one per failed attempt after it
		}
		// Foreground merge every few commits: consolidation republishes base
		// pages through the spill, putting the merge-publish path (and its
		// crash points) on the torture goroutine where a trip can kill it.
		if done > 0 && done%5 == 0 {
			tbl.Merge()
		}
	}
}

// recoverTorture rebuilds a store from durable bytes only, retrying when a
// recovery-path crash point kills the first attempt (a double crash: every
// retry starts over from the SAME durable bytes).
func recoverTorture(t *testing.T, durable, image []byte, haveCkpt bool) map[int64]Row {
	t.Helper()
	for attempt := 0; attempt < 4; attempt++ {
		db2 := Open()
		tbl2, err := db2.CreateTable("t", ckptSchema(), tortureOpts())
		if err != nil {
			t.Fatal(err)
		}
		var ckptR io.Reader
		if haveCkpt {
			ckptR = bytes.NewReader(image)
		}
		var rerr error
		crash := fault.RunToCrash(func() {
			_, rerr = Recover(db2, ckptR, bytes.NewReader(durable))
		})
		if crash != nil {
			continue // killed mid-recovery; abandon db2 and start over
		}
		if rerr != nil {
			t.Fatalf("recovery from durable bytes failed: %v", rerr)
		}
		state := tableState(t, tbl2, db2.Now())
		db2.Close()
		return state
	}
	t.Fatal("recovery kept crashing after repeated attempts")
	return nil
}

func assertCommittedPrefix(t *testing.T, run *tortureRun, recovered map[int64]Row, label string) {
	t.Helper()
	for j := len(run.states) - 1; j >= run.acked; j-- {
		if sameTortureState(run.states[j], recovered) {
			return
		}
	}
	t.Fatalf("%s: recovered state (%d rows) matches no candidate in [%d, %d] — an acknowledged commit vanished or a phantom appeared",
		label, len(recovered), run.acked, len(run.states)-1)
}

// tortureShapes are the fault shapes swept per crash point: a pure kill, a
// torn write (partial bytes reach the device, then an error), a failed
// fsync, ENOSPC-style persistent write failure, and an error that heals
// after one occurrence (the logger must stay poisoned anyway).
var tortureShapes = []struct {
	name string
	plan []fault.Rule
}{
	{"none", nil},
	{"torn-write", []fault.Rule{fault.TornWrite(3, 7)}},
	{"fail-sync", []fault.Rule{fault.FailSync(2)}},
	{"enospc", []fault.Rule{fault.NoSpace(4)}},
	{"error-once-heal", []fault.Rule{fault.FailWrite(2)}},
}

// calibrateTorture runs the workload once with no faults armed, counting
// crash-point traffic. Every registered point must be reached — a point the
// suite cannot reach is a hole in the torture coverage, and the per-point
// trip depth is chosen inside the observed range.
func calibrateTorture(t *testing.T, media tortureMedia, seed int64, commits int) map[string]int64 {
	t.Helper()
	fault.Reset()
	fault.EnableCounting()
	dev := media.open(t)
	db := Open(WithWAL(fault.NewSink(dev.inner), nil))
	db.ckptSink = dev.ckpt
	tbl, err := db.CreateTable("t", ckptSchema(), tortureOpts())
	if err != nil {
		t.Fatal(err)
	}
	run := newTortureRun()
	tortureWorkload(db, tbl, rand.New(rand.NewSource(seed)), commits, run)
	db.Close()
	durable := dev.durableWAL(t)
	image, haveCkpt := dev.latestCkpt(t)
	recovered := recoverTorture(t, durable, image, haveCkpt)
	assertCommittedPrefix(t, run, recovered, "calibration")
	hits := map[string]int64{}
	for _, name := range fault.Points() {
		hits[name] = fault.Hits(name)
	}
	fault.Reset()
	return hits
}

func runCrashScenario(t *testing.T, media tortureMedia, point string, nth int, plan []fault.Rule, seed int64, commits int) {
	t.Helper()
	fault.Reset()
	defer fault.Reset()
	dev := media.open(t)
	db := Open(WithWAL(fault.NewSink(dev.inner, plan...), nil))
	db.ckptSink = dev.ckpt
	tbl, err := db.CreateTable("t", ckptSchema(), tortureOpts())
	if err != nil {
		t.Fatal(err)
	}
	run := newTortureRun()
	rng := rand.New(rand.NewSource(seed))
	fault.Trip(point, nth)
	// The kill. A nil crash is fine: an injected fault can poison the path
	// before the point is reached — the oracle must hold either way.
	fault.RunToCrash(func() { tortureWorkload(db, tbl, rng, commits, run) })

	durable := dev.durableWAL(t)
	image, haveCkpt := dev.latestCkpt(t)

	// Whatever the crash left behind, the offline verifier must account for
	// every durable byte as either clean frames or a classified torn tail.
	rep := wal.Verify(bytes.NewReader(durable))
	if rep.ReadErr != nil {
		t.Fatalf("verify of durable log failed: %v", rep.ReadErr)
	}
	if rep.CleanBytes+rep.TornBytes != int64(len(durable)) {
		t.Fatalf("verify accounts for %d+%d of %d durable bytes", rep.CleanBytes, rep.TornBytes, len(durable))
	}
	if haveCkpt {
		crep := VerifyCheckpoint(bytes.NewReader(image))
		if !crep.Complete {
			t.Fatalf("durable checkpoint image is not complete: %s", crep.Detail)
		}
	}

	recovered := recoverTorture(t, durable, image, haveCkpt)
	assertCommittedPrefix(t, run, recovered, point)
}

// TestCrashTortureEveryPointEveryShape is the acceptance sweep: every
// registered crash point × every fault shape, over both the in-memory and
// the file-backed sinks.
func TestCrashTortureEveryPointEveryShape(t *testing.T) {
	commits := 40 * tortureScale()
	for _, media := range tortureMediaList() {
		t.Run(media.name, func(t *testing.T) {
			hits := calibrateTorture(t, media, 1, commits)
			for _, p := range fault.Points() {
				if hits[p] == 0 {
					t.Fatalf("crash point %q is never reached by the torture workload — coverage hole", p)
				}
			}
			seed := int64(0xC0FFEE)
			for _, p := range fault.Points() {
				for _, shape := range tortureShapes {
					seed++
					s := seed
					t.Run(p+"/"+shape.name, func(t *testing.T) {
						nth := int(hits[p]+1) / 2
						if nth < 1 {
							nth = 1
						}
						runCrashScenario(t, media, p, nth, shape.plan, s, commits)
					})
				}
			}
		})
	}
}

// TestTortureTornTailByteSweep is the byte-granular half of the acceptance:
// the log truncated at EVERY byte offset must recover to exactly the state
// at the last commit boundary at or below the cut. No cut may error, invent
// rows, or resurrect an uncommitted suffix.
func TestTortureTornTailByteSweep(t *testing.T) {
	fault.Reset()
	rng := rand.New(rand.NewSource(7))
	var log bytes.Buffer
	db := Open(WithWAL(&log, nil))
	tbl, err := db.CreateTable("t", ckptSchema(), tortureOpts())
	if err != nil {
		t.Fatal(err)
	}
	committed := map[int64]Row{}
	states := []map[int64]Row{{}}
	bounds := []int{0} // log length at each commit boundary
	commits := 30 * tortureScale()
	for attempt := 0; attempt < commits*6 && len(states) <= commits; attempt++ {
		run := newTortureRun()
		run.states[0] = committed
		tortureWorkload(db, tbl, rng, 1, run)
		if run.acked > 0 {
			committed = run.states[run.acked]
			states = append(states, copyState(committed))
			bounds = append(bounds, log.Len())
		}
	}
	db.Close()
	data := log.Bytes()
	if len(states) < 10 {
		t.Fatalf("only %d commits; workload too timid for a sweep", len(states)-1)
	}
	for cut := 0; cut <= len(data); cut++ {
		j := sort.SearchInts(bounds, cut+1) - 1
		recovered := recoverTorture(t, data[:cut], nil, false)
		if !sameTortureState(states[j], recovered) {
			t.Fatalf("cut at byte %d of %d: recovered %d rows, want the state at commit boundary %d (%d rows)",
				cut, len(data), len(recovered), j, len(states[j]))
		}
	}
}

// TestTortureCheckpointTornSweep is the checkpoint half: an image truncated
// at EVERY byte offset must fail restore loudly (and fail offline
// verification), never load partially; the full image must verify, restore,
// and describe itself correctly. A log's torn tail is a meaningful crash
// cut; a checkpoint's is corruption.
func TestTortureCheckpointTornSweep(t *testing.T) {
	fault.Reset()
	db := Open()
	tbl, err := db.CreateTable("t", ckptSchema(), tortureOpts())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for i := int64(0); i < 40; i++ {
		tx := db.Begin(ReadCommitted)
		if err := tbl.Insert(tx, Row{"id": Int(i), "name": Str("r" + strconv.FormatInt(i, 10)), "v": Int(rng.Int63n(500))}); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	want := tableState(t, tbl, db.Now())
	var img bytes.Buffer
	info, err := db.Checkpoint(&img)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	image := img.Bytes()

	full := VerifyCheckpoint(bytes.NewReader(image))
	if !full.Complete {
		t.Fatalf("full image does not verify: %s", full.Detail)
	}
	if full.Info.LSN != info.LSN || full.Info.Rows != info.Rows || full.Info.Tables != info.Tables || full.Info.Time != info.Time {
		t.Fatalf("verifier reconstructed %+v, checkpoint reported %+v", full.Info, info)
	}
	db2 := Open()
	tbl2, err := db2.CreateTable("t", ckptSchema(), tortureOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(db2, bytes.NewReader(image), nil); err != nil {
		t.Fatal(err)
	}
	assertSameState(t, want, tableState(t, tbl2, db2.Now()), "full image restore")
	db2.Close()

	for cut := 0; cut < len(image); cut++ {
		if rep := VerifyCheckpoint(bytes.NewReader(image[:cut])); rep.Complete {
			t.Fatalf("image truncated to %d of %d bytes verifies as complete", cut, len(image))
		}
		db3 := Open()
		if _, err := db3.CreateTable("t", ckptSchema(), tortureOpts()); err != nil {
			t.Fatal(err)
		}
		if _, err := Recover(db3, bytes.NewReader(image[:cut]), nil); err == nil {
			t.Fatalf("image truncated to %d of %d bytes restored silently", cut, len(image))
		}
		db3.Close()
	}

	// Bit rot: a flipped byte anywhere must break verification too.
	for i := 0; i < 32; i++ {
		mut := append([]byte(nil), image...)
		mut[rng.Intn(len(mut))] ^= 0x5A
		if rep := VerifyCheckpoint(bytes.NewReader(mut)); rep.Complete {
			t.Fatal("corrupted image verifies as complete")
		}
	}
}

// TestFileBackedRecoveryWithDiskTruncation pins the full file-backed round
// trip deterministically: workload → checkpoint to a real file → a real
// rewrite-and-rename TruncateTo on disk → kill → cold reopen of both paths →
// recover → exact state. This is the acceptance case "a file that went
// through a real TruncateTo on disk".
func TestFileBackedRecoveryWithDiskTruncation(t *testing.T) {
	fault.Reset()
	dir := t.TempDir()
	walPath := filepath.Join(dir, "wal.log")
	ckptPath := filepath.Join(dir, "ckpt.img")
	ws, err := OpenWALFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewFileCheckpointSink(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	db := Open(WithWAL(ws, nil))
	db.ckptSink = cs
	tbl, err := db.CreateTable("t", ckptSchema(), tortureOpts())
	if err != nil {
		t.Fatal(err)
	}
	shadow := map[int64]Row{}
	put := func(k, v int64) {
		tx := db.Begin(ReadCommitted)
		row := Row{"id": Int(k), "name": Str("x"), "v": Int(v)}
		if _, ok := shadow[k]; ok {
			if err := tbl.Update(tx, k, Row{"v": Int(v)}); err != nil {
				t.Fatal(err)
			}
			shadow[k]["v"] = Int(v)
		} else {
			if err := tbl.Insert(tx, row); err != nil {
				t.Fatal(err)
			}
			shadow[k] = row
		}
		mustCommit(t, tx)
	}
	for i := int64(0); i < 12; i++ {
		put(i%8, i*10)
	}
	preLen := ws.Len()
	db.checkpointRound() // checkpoint to disk, then a REAL TruncateTo on disk
	if db.WALInfo().TruncatedLSN == 0 {
		t.Fatal("checkpoint round did not truncate the on-disk log")
	}
	if ws.Len() >= preLen {
		t.Fatalf("on-disk log did not shrink: %d -> %d bytes", preLen, ws.Len())
	}
	if cs.Taken() != 1 {
		t.Fatalf("checkpoint file written %d times, want 1", cs.Taken())
	}
	for i := int64(0); i < 5; i++ {
		put(i, 1000+i) // tail work above the watermark
	}
	// Kill: close every handle; reopen both paths cold.
	db.Close()
	ws.Close()
	ws2, err := OpenWALFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer ws2.Close()
	tail, err := ws2.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	cs2, err := NewFileCheckpointSink(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	ckptR, cinfo, ok := cs2.Latest()
	if !ok {
		t.Fatal("checkpoint file not found on cold reopen")
	}
	if cinfo.LSN == 0 || cinfo.Rows == 0 {
		t.Fatalf("cold-read checkpoint info not reconstructed: %+v", cinfo)
	}
	// The retained file is a pure tail: its first record sits above the
	// truncation point.
	rep := wal.Verify(bytes.NewReader(tail))
	if rep.Records == 0 || rep.FirstLSN <= 1 {
		t.Fatalf("retained log is not a truncated tail: first LSN %d of %d records", rep.FirstLSN, rep.Records)
	}
	db2 := Open()
	defer db2.Close()
	tbl2, err := db2.CreateTable("t", ckptSchema(), tortureOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(db2, ckptR, bytes.NewReader(tail)); err != nil {
		t.Fatal(err)
	}
	assertSameState(t, shadow, tableState(t, tbl2, db2.Now()), "file-backed recovery after disk truncation")
}
