package lstore

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

// propertyLog abstracts the WAL device under the recovery property test so
// the file-backed sink is held to exactly the same properties as the
// in-memory reference.
type propertyLog struct {
	sink io.Writer
	size func() int    // durable bytes so far
	dump func() []byte // durable bytes, read back
}

func memPropertyLog(t *testing.T) propertyLog {
	var b bytes.Buffer
	return propertyLog{
		sink: &b,
		size: b.Len,
		dump: func() []byte { return append([]byte(nil), b.Bytes()...) },
	}
}

func filePropertyLog(t *testing.T) propertyLog {
	s, err := OpenWALFile(filepath.Join(t.TempDir(), "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return propertyLog{
		sink: s,
		size: func() int { return int(s.Len()) },
		dump: func() []byte {
			data, err := s.Bytes()
			if err != nil {
				t.Fatal(err)
			}
			return data
		},
	}
}

// TestCrashRecoveryCommitPrefixProperty is the crash-recovery property
// test: a random workload of logically concurrent transactions (several
// open at once, random aborts, inserts/updates/deletes over a small key
// space) runs against a WAL-attached database while an in-memory shadow
// map tracks the committed state after every commit. Then, for EVERY log
// prefix that ends at a commit boundary, recovery of that prefix must yield
// exactly the shadow state at that commit — committed transactions are
// atomic and durable, everything else vanishes. A torn cut inside a commit
// record must yield the state of the previous boundary. The property runs
// over both the in-memory and the file-backed sink.
func TestCrashRecoveryCommitPrefixProperty(t *testing.T) {
	t.Run("mem", func(t *testing.T) { crashRecoveryCommitPrefixProperty(t, memPropertyLog) })
	t.Run("file", func(t *testing.T) { crashRecoveryCommitPrefixProperty(t, filePropertyLog) })
}

func crashRecoveryCommitPrefixProperty(t *testing.T, newLog func(*testing.T) propertyLog) {
	names := []string{"ada", "bob", "cleo", "dan"}
	for _, seed := range []int64{3, 11, 2026} {
		rng := rand.New(rand.NewSource(seed))
		log := newLog(t)
		db := Open(WithWAL(log.sink, nil))
		tbl, err := db.CreateTable("t", ckptSchema())
		if err != nil {
			t.Fatal(err)
		}

		type openTxn struct {
			tx  *Txn
			ops []func(map[int64]Row) // shadow effects, applied at commit
		}
		var open []*openTxn
		shadow := map[int64]Row{}
		var snapshots []map[int64]Row // committed state after i-th commit
		var prefixes []int            // log length at the i-th commit boundary

		deepCopy := func(m map[int64]Row) map[int64]Row {
			out := make(map[int64]Row, len(m))
			for k, r := range m {
				cr := Row{}
				for c, v := range r {
					cr[c] = v
				}
				out[k] = cr
			}
			return out
		}
		abort := func(i int) {
			open[i].tx.Abort()
			open = append(open[:i], open[i+1:]...)
		}

		for step := 0; step < 500; step++ {
			switch {
			case len(open) == 0 || (len(open) < 4 && rng.Intn(4) == 0):
				open = append(open, &openTxn{tx: db.Begin(ReadCommitted)})
			case rng.Intn(8) == 0: // random abort
				abort(rng.Intn(len(open)))
			case rng.Intn(5) == 0: // commit
				i := rng.Intn(len(open))
				ot := open[i]
				if err := ot.tx.Commit(); err != nil {
					t.Fatalf("seed %d: read-committed commit failed: %v", seed, err)
				}
				open = append(open[:i], open[i+1:]...)
				for _, apply := range ot.ops {
					apply(shadow)
				}
				snapshots = append(snapshots, deepCopy(shadow))
				prefixes = append(prefixes, log.size())
			default: // one operation on a random open transaction
				i := rng.Intn(len(open))
				ot := open[i]
				key := rng.Int63n(32)
				var opErr error
				var apply func(map[int64]Row)
				switch rng.Intn(5) {
				case 0, 1:
					name := Value(Null())
					if rng.Intn(4) > 0 {
						name = Str(names[rng.Intn(len(names))])
					}
					v := rng.Int63n(1000)
					opErr = tbl.Insert(ot.tx, Row{"id": Int(key), "name": name, "v": Int(v)})
					apply = func(m map[int64]Row) {
						m[key] = Row{"id": Int(key), "name": name, "v": Int(v)}
					}
				case 2, 3:
					v := rng.Int63n(1000)
					set := Row{"v": Int(v)}
					if rng.Intn(3) == 0 {
						set["name"] = Str(names[rng.Intn(len(names))])
					}
					opErr = tbl.Update(ot.tx, key, set)
					apply = func(m map[int64]Row) {
						row := m[key]
						for c, val := range set {
							row[c] = val
						}
					}
				case 4:
					opErr = tbl.Delete(ot.tx, key)
					apply = func(m map[int64]Row) { delete(m, key) }
				}
				if opErr != nil {
					// Conflict/duplicate/not-found: abort the whole
					// transaction so the shadow stays trivially aligned.
					abort(i)
					continue
				}
				ot.ops = append(ot.ops, apply)
			}
		}
		// Crash: open transactions simply stop (no abort records needed).
		data := log.dump()
		if len(snapshots) < 20 {
			t.Fatalf("seed %d: only %d commits; workload too timid", seed, len(snapshots))
		}

		recoverPrefix := func(cut int) map[int64]Row {
			db2 := Open()
			defer db2.Close()
			tbl2, err := db2.CreateTable("t", ckptSchema())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Recover(db2, nil, bytes.NewReader(data[:cut])); err != nil {
				t.Fatalf("seed %d: recover prefix %d: %v", seed, cut, err)
			}
			return tableState(t, tbl2, db2.Now())
		}

		for i, cut := range prefixes {
			got := recoverPrefix(cut)
			if len(got) != len(snapshots[i]) {
				t.Fatalf("seed %d: commit %d: %d rows, want %d", seed, i, len(got), len(snapshots[i]))
			}
			for key, wrow := range snapshots[i] {
				grow, ok := got[key]
				if !ok {
					t.Fatalf("seed %d: commit %d: key %d missing", seed, i, key)
				}
				for col, wv := range wrow {
					if !wv.Equal(grow[col]) {
						t.Fatalf("seed %d: commit %d: key %d col %s = %v, want %v",
							seed, i, key, col, grow[col], wv)
					}
				}
			}
		}

		// Torn tail mid-record: cutting inside the k-th commit record must
		// recover exactly the (k-1)-th committed state.
		k := 1 + rng.Intn(len(prefixes)-1)
		got := recoverPrefix(prefixes[k] - 3)
		want := snapshots[k-1]
		if len(got) != len(want) {
			t.Fatalf("seed %d: torn commit %d: %d rows, want %d", seed, k, len(got), len(want))
		}
		for key, wrow := range want {
			for col, wv := range wrow {
				if !wv.Equal(got[key][col]) {
					t.Fatalf("seed %d: torn commit %d: key %d col %s mismatch", seed, k, key, col)
				}
			}
		}
		db.Close()
	}
}

// blockableWriter fails every write while failing is set (a log device that
// dies mid-transaction and maybe comes back).
type blockableWriter struct {
	buf     bytes.Buffer
	failing bool
}

func (w *blockableWriter) Write(p []byte) (int, error) {
	if w.failing {
		return 0, errors.New("simulated log device failure")
	}
	return w.buf.Write(p)
}

// TestWALAppendFailureAtomicity pins satellite #1: when an OPERATION's log
// append fails (not the commit's), the operation error surfaces, the
// transaction is poisoned so Commit aborts it, no commit record is ever
// written, and replaying the log shows the transaction vanished atomically
// while earlier committed work survives.
func TestWALAppendFailureAtomicity(t *testing.T) {
	sink := &blockableWriter{}
	db := Open(WithWAL(sink, nil))
	defer db.Close()
	tbl, err := db.CreateTable("t", ckptSchema())
	if err != nil {
		t.Fatal(err)
	}
	// Transaction A commits durably before the device dies.
	txA := db.Begin(ReadCommitted)
	for i := int64(0); i < 3; i++ {
		if err := tbl.Insert(txA, Row{"id": Int(i), "v": Int(i)}); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, txA)

	// Device dies. Transaction B writes one small record (buffered — cannot
	// fail) and one oversized record that must write through and fail.
	sink.failing = true
	txB := db.Begin(ReadCommitted)
	if err := tbl.Insert(txB, Row{"id": Int(10), "v": Int(10)}); err != nil {
		t.Fatal(err) // buffered append; no device contact yet
	}
	huge := strings.Repeat("x", 1<<17) // larger than the log's write buffer
	if err := tbl.Insert(txB, Row{"id": Int(11), "name": Str(huge), "v": Int(11)}); err == nil {
		t.Fatal("oversized insert's failed WAL append returned nil")
	}
	// The transaction is poisoned: Commit must abort it, not commit it.
	if err := txB.Commit(); err == nil {
		t.Fatal("poisoned transaction committed")
	}
	// Its in-memory effects vanished atomically.
	probe := db.Begin(ReadCommitted)
	if _, ok, _ := tbl.Get(probe, 10, "v"); ok {
		t.Fatal("aborted transaction's first insert still visible")
	}
	if _, ok, _ := tbl.Get(probe, 11, "v"); ok {
		t.Fatal("aborted transaction's second insert still visible")
	}
	probe.Abort()

	// The logger is poisoned (sticky): even after the device heals, later
	// commits refuse to claim durability rather than logging records that
	// can never be replayed past the torn prefix.
	sink.failing = false
	txC := db.Begin(ReadCommitted)
	if err := tbl.Insert(txC, Row{"id": Int(20), "v": Int(20)}); err == nil {
		t.Fatal("append on poisoned logger returned nil")
	}
	if err := txC.Commit(); err == nil {
		t.Fatal("commit on poisoned logger returned nil")
	}
	if db.WALInfo().Err == nil {
		t.Fatal("WALInfo does not report the sticky error")
	}

	// Replay: only transaction A exists; B vanished without a trace of a
	// commit record.
	db2 := Open()
	defer db2.Close()
	tbl2, _ := db2.CreateTable("t", ckptSchema())
	if _, err := Recover(db2, nil, bytes.NewReader(sink.buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	sum, rows, _ := tbl2.Sum(db2.Now(), "v")
	if rows != 3 || sum != 0+1+2 {
		t.Fatalf("recovered %d rows sum %d, want 3 rows sum 3", rows, sum)
	}
}

// TestBeginAppendFailurePoisonsTxn: a begin record that the log rejects
// poisons the transaction — its Commit aborts instead of writing a commit
// record the analysis pass could trust.
func TestBeginAppendFailurePoisonsTxn(t *testing.T) {
	sink := &blockableWriter{}
	db := Open(WithWAL(sink, nil))
	defer db.Close()
	tbl, _ := db.CreateTable("t", ckptSchema())
	// Poison the logger with an oversized failing append first.
	sink.failing = true
	warm := db.Begin(ReadCommitted)
	huge := strings.Repeat("y", 1<<17)
	if err := tbl.Insert(warm, Row{"id": Int(1), "name": Str(huge), "v": Int(1)}); err == nil {
		t.Fatal("oversized append did not fail")
	}
	warm.Abort()
	sink.failing = false

	tx := db.Begin(ReadCommitted) // begin record append fails (sticky error)
	if err := tx.Commit(); err == nil {
		t.Fatal("commit of txn whose begin record failed returned nil")
	}
}
