package rid

import (
	"sync"
	"testing"

	"lstore/internal/types"
)

func TestBaseAllocatorSpans(t *testing.T) {
	a := NewBaseAllocator()
	s1, err := a.ReserveSpan(100)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := a.ReserveSpan(50)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != 1 {
		t.Errorf("first span starts at %v, want 1", s1)
	}
	if s2 != s1+100 {
		t.Errorf("second span starts at %v, want %v", s2, s1+100)
	}
	if !s1.IsBase() || !s2.IsBase() {
		t.Errorf("base spans must be base RIDs")
	}
	if _, err := a.ReserveSpan(0); err == nil {
		t.Errorf("zero span accepted")
	}
	if _, err := a.ReserveSpan(-3); err == nil {
		t.Errorf("negative span accepted")
	}
}

func TestTailAllocatorMonotone(t *testing.T) {
	a := NewTailAllocator()
	prev := types.InvalidRID
	for i := 0; i < 1000; i++ {
		b, err := a.ReserveBlock(7)
		if err != nil {
			t.Fatal(err)
		}
		if !b.IsTail() {
			t.Fatalf("block %d start %v not a tail RID", i, b)
		}
		if b <= prev {
			t.Fatalf("blocks not monotone: %v after %v", b, prev)
		}
		prev = b
	}
}

func TestTailAllocatorConcurrentDisjoint(t *testing.T) {
	a := NewTailAllocator()
	const workers, perWorker, blockSize = 8, 200, 16
	var mu sync.Mutex
	seen := make(map[types.RID]struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]types.RID, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				b, err := a.ReserveBlock(blockSize)
				if err != nil {
					t.Error(err)
					return
				}
				local = append(local, b)
			}
			mu.Lock()
			defer mu.Unlock()
			for _, b := range local {
				for k := 0; k < blockSize; k++ {
					r := b + types.RID(k)
					if _, dup := seen[r]; dup {
						t.Errorf("duplicate RID %v", r)
					}
					seen[r] = struct{}{}
				}
			}
		}()
	}
	wg.Wait()
	if len(seen) != workers*perWorker*blockSize {
		t.Fatalf("allocated %d unique RIDs, want %d", len(seen), workers*perWorker*blockSize)
	}
}

func TestBlockTake(t *testing.T) {
	b := NewBlock(types.TailRIDBase+100, 4)
	for i := 0; i < 4; i++ {
		r, slot, ok := b.Take()
		if !ok {
			t.Fatalf("Take %d failed", i)
		}
		if slot != i {
			t.Errorf("slot = %d, want %d", slot, i)
		}
		if r != b.First+types.RID(i) {
			t.Errorf("rid = %v", r)
		}
		if !b.Contains(r) || b.Slot(r) != i {
			t.Errorf("Contains/Slot wrong for %v", r)
		}
	}
	if _, _, ok := b.Take(); ok {
		t.Errorf("Take succeeded past capacity")
	}
	if b.Used() != 4 {
		t.Errorf("Used = %d, want 4", b.Used())
	}
	if b.Contains(b.First + 4) {
		t.Errorf("Contains accepts out-of-range RID")
	}
}

func TestBlockConcurrentTakeUnique(t *testing.T) {
	b := NewBlock(types.TailRIDBase, 1024)
	var wg sync.WaitGroup
	got := make([][]types.RID, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				r, _, ok := b.Take()
				if !ok {
					return
				}
				got[w] = append(got[w], r)
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[types.RID]struct{})
	total := 0
	for _, rs := range got {
		for _, r := range rs {
			if _, dup := seen[r]; dup {
				t.Fatalf("duplicate %v", r)
			}
			seen[r] = struct{}{}
			total++
		}
	}
	if total != 1024 {
		t.Fatalf("total takes = %d, want 1024", total)
	}
}
