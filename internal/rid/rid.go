// Package rid implements the record-identifier allocators of L-Store.
//
// Base RIDs and tail RIDs come from the same key space (§2.1: "records in
// both base and tail pages are assigned record-identifiers from the same key
// space") but from disjoint sub-ranges: base RIDs ascend from 1 and tail
// RIDs ascend from types.TailRIDBase. Tail RIDs are handed out in
// per-update-range blocks so updates for a range of records stay clustered
// inside that range's tail pages (§3.1), while the single global counter
// keeps RIDs monotone in allocation order — the property the TPS
// high-watermark logic depends on (§4.2).
//
// Insert ranges (§3.2) reserve an aligned pair of spans: a span of base RIDs
// and an equally sized span of table-level tail RIDs, so the i-th base RID of
// the range corresponds to the i-th table-level tail RID (implicit
// addressing).
package rid

import (
	"fmt"
	"sync/atomic"

	"lstore/internal/types"
)

// BaseAllocator hands out base RIDs in contiguous spans (insert ranges).
type BaseAllocator struct {
	next atomic.Uint64
}

// NewBaseAllocator returns an allocator whose first RID is 1.
func NewBaseAllocator() *BaseAllocator {
	a := &BaseAllocator{}
	a.next.Store(1)
	return a
}

// ReserveSpan reserves n consecutive base RIDs and returns the first.
func (a *BaseAllocator) ReserveSpan(n int) (types.RID, error) {
	if n <= 0 {
		return types.InvalidRID, fmt.Errorf("rid: span size %d must be positive", n)
	}
	first := a.next.Add(uint64(n)) - uint64(n)
	if first+uint64(n) >= uint64(types.TailRIDBase) {
		return types.InvalidRID, fmt.Errorf("rid: base RID space exhausted")
	}
	return types.RID(first), nil
}

// Peek returns the next RID that would be allocated (for introspection).
func (a *BaseAllocator) Peek() types.RID { return types.RID(a.next.Load()) }

// TailAllocator hands out tail RIDs in blocks from a single global counter.
type TailAllocator struct {
	next atomic.Uint64
}

// NewTailAllocator returns an allocator whose first RID is types.TailRIDBase.
func NewTailAllocator() *TailAllocator {
	a := &TailAllocator{}
	a.next.Store(uint64(types.TailRIDBase))
	return a
}

// ReserveBlock reserves n consecutive tail RIDs and returns the first.
// Successive calls return strictly increasing spans, so any interleaving of
// per-range block reservations preserves global RID monotonicity.
func (a *TailAllocator) ReserveBlock(n int) (types.RID, error) {
	if n <= 0 {
		return types.InvalidRID, fmt.Errorf("rid: block size %d must be positive", n)
	}
	first := a.next.Add(uint64(n)) - uint64(n)
	if first+uint64(n) < first { // wrap
		return types.InvalidRID, fmt.Errorf("rid: tail RID space exhausted")
	}
	return types.RID(first), nil
}

// Peek returns the next tail RID that would be allocated.
func (a *TailAllocator) Peek() types.RID { return types.RID(a.next.Load()) }

// Block is a contiguous span of RIDs with O(1) slot addressing.
type Block struct {
	First types.RID
	N     int
	used  atomic.Int64
}

// NewBlock wraps a reserved span.
func NewBlock(first types.RID, n int) *Block { return &Block{First: first, N: n} }

// Take hands out the next RID in the block. ok is false once the block is
// exhausted; the caller then reserves a fresh block. Take never blocks and
// is safe for concurrent use.
func (b *Block) Take() (r types.RID, slot int, ok bool) {
	i := b.used.Add(1) - 1
	if i >= int64(b.N) {
		return types.InvalidRID, 0, false
	}
	return b.First + types.RID(i), int(i), true
}

// Used returns how many RIDs have been taken (may transiently exceed N under
// races; callers treat >=N as full).
func (b *Block) Used() int {
	u := b.used.Load()
	if u > int64(b.N) {
		u = int64(b.N)
	}
	return int(u)
}

// Contains reports whether r falls inside the block.
func (b *Block) Contains(r types.RID) bool {
	return r >= b.First && r < b.First+types.RID(b.N)
}

// Slot returns the slot index of r inside the block. The caller must ensure
// Contains(r).
func (b *Block) Slot(r types.RID) int { return int(r - b.First) }
