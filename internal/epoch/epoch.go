// Package epoch implements the contention-free page de-allocation scheme of
// §4.1 (step 5) and Figure 6: after a merge swaps the page directory to the
// new consolidated pages, the outdated base pages "must be kept around as
// long as there is an active query that started before the merge process".
//
// Queries pin the current epoch on entry and unpin on exit. Retiring an
// object stamps it with the current epoch; the object is reclaimed only once
// every reader whose pinned epoch is ≤ the retirement epoch has drained.
// Readers are never blocked and never block the merge — reclamation is the
// only deferred action.
package epoch

import (
	"sync"
	"sync/atomic"
)

const shardCount = 16

type shard struct {
	mu     sync.Mutex
	active map[uint64]uint64 // reader id -> pinned epoch
}

// Manager tracks reader epochs and retired objects.
type Manager struct {
	global  atomic.Uint64
	nextID  atomic.Uint64
	shards  [shardCount]shard
	mu      sync.Mutex
	retired []retiredItem
	// reclaimed counts executed retirement callbacks (introspection).
	reclaimed atomic.Uint64
}

type retiredItem struct {
	epoch uint64
	free  func()
}

// NewManager returns a ready Manager. Epoch 0 is the initial epoch.
func NewManager() *Manager {
	m := &Manager{}
	for i := range m.shards {
		m.shards[i].active = make(map[uint64]uint64)
	}
	return m
}

// Guard represents one pinned reader. The zero Guard is invalid.
type Guard struct {
	m  *Manager
	id uint64
}

// Pin registers the caller as an active reader at the current epoch.
// Every scan and point read takes a guard for its duration.
func (m *Manager) Pin() Guard {
	id := m.nextID.Add(1)
	e := m.global.Load()
	s := &m.shards[id%shardCount]
	s.mu.Lock()
	s.active[id] = e
	s.mu.Unlock()
	return Guard{m: m, id: id}
}

// Unpin deregisters the reader. Unpin is idempotent.
func (g Guard) Unpin() {
	if g.m == nil {
		return
	}
	s := &g.m.shards[g.id%shardCount]
	s.mu.Lock()
	delete(s.active, g.id)
	s.mu.Unlock()
}

// Retire schedules free to run once all readers that might still reach the
// object have drained. free must be idempotent-friendly (it runs exactly
// once, on an arbitrary goroutine).
func (m *Manager) Retire(free func()) {
	e := m.global.Load()
	m.mu.Lock()
	m.retired = append(m.retired, retiredItem{epoch: e, free: free})
	m.mu.Unlock()
}

// minActive returns the smallest pinned epoch, or (max, false) when no
// readers are active.
func (m *Manager) minActive() (uint64, bool) {
	min := ^uint64(0)
	found := false
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for _, e := range s.active {
			found = true
			if e < min {
				min = e
			}
		}
		s.mu.Unlock()
	}
	return min, found
}

// TryReclaim advances the global epoch and frees every retired object whose
// retirement epoch precedes all active readers. It returns the number of
// objects freed. The merge thread calls this after each merge; it is also
// safe to call from anywhere concurrently.
func (m *Manager) TryReclaim() int {
	m.global.Add(1)
	min, anyActive := m.minActive()
	m.mu.Lock()
	var keep []retiredItem
	var run []func()
	for _, it := range m.retired {
		if !anyActive || it.epoch < min {
			run = append(run, it.free)
		} else {
			keep = append(keep, it)
		}
	}
	m.retired = keep
	m.mu.Unlock()
	for _, f := range run {
		f()
	}
	m.reclaimed.Add(uint64(len(run)))
	return len(run)
}

// Pending returns the number of retired-but-not-yet-freed objects.
func (m *Manager) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.retired)
}

// Reclaimed returns the total number of freed objects.
func (m *Manager) Reclaimed() uint64 { return m.reclaimed.Load() }

// Epoch returns the current global epoch (introspection).
func (m *Manager) Epoch() uint64 { return m.global.Load() }
