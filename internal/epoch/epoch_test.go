package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRetireWithoutReadersReclaimsImmediately(t *testing.T) {
	m := NewManager()
	freed := false
	m.Retire(func() { freed = true })
	if n := m.TryReclaim(); n != 1 {
		t.Fatalf("reclaimed %d, want 1", n)
	}
	if !freed {
		t.Fatal("free callback did not run")
	}
	if m.Pending() != 0 {
		t.Fatalf("pending = %d", m.Pending())
	}
}

func TestPinnedReaderBlocksReclaim(t *testing.T) {
	m := NewManager()
	g := m.Pin()
	freed := false
	m.Retire(func() { freed = true })
	if n := m.TryReclaim(); n != 0 {
		t.Fatalf("reclaimed %d while reader pinned, want 0", n)
	}
	if freed {
		t.Fatal("freed while reader pinned")
	}
	g.Unpin()
	if n := m.TryReclaim(); n != 1 {
		t.Fatalf("reclaimed %d after unpin, want 1", n)
	}
	if !freed {
		t.Fatal("not freed after unpin")
	}
}

func TestLateReaderDoesNotBlockEarlierRetirement(t *testing.T) {
	m := NewManager()
	freed := false
	m.Retire(func() { freed = true })
	m.TryReclaim() // no readers: freed, epoch advanced
	if !freed {
		t.Fatal("expected immediate reclaim")
	}

	// A retirement at epoch e must wait for a reader pinned at e, but a
	// reader pinned AFTER the epoch advanced past the retirement must not
	// hold it back.
	freed2 := false
	m.Retire(func() { freed2 = true }) // retired at current epoch E
	m.TryReclaim()                     // E+1; freed2 runs (no readers)
	if !freed2 {
		t.Fatal("expected reclaim before late reader")
	}
	g := m.Pin() // pinned at E+1
	freed3 := false
	m.Retire(func() { freed3 = true }) // retired at E+1
	if m.TryReclaim() != 0 || freed3 {
		t.Fatal("reader pinned at retirement epoch must block reclaim")
	}
	g.Unpin()
	if m.TryReclaim() != 1 || !freed3 {
		t.Fatal("reclaim after drain failed")
	}
}

func TestUnpinIdempotentAndZeroGuard(t *testing.T) {
	m := NewManager()
	g := m.Pin()
	g.Unpin()
	g.Unpin() // must not panic
	var zero Guard
	zero.Unpin() // must not panic
	_ = m
}

func TestConcurrentPinRetireReclaim(t *testing.T) {
	m := NewManager()
	var freedCount atomic.Int64
	var retiredCount atomic.Int64
	stop := make(chan struct{})
	var readers, retirers sync.WaitGroup

	// Readers continuously pin/unpin until the retirers finish.
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				g := m.Pin()
				g.Unpin()
			}
		}()
	}
	// Retirers.
	for i := 0; i < 2; i++ {
		retirers.Add(1)
		go func() {
			defer retirers.Done()
			for j := 0; j < 500; j++ {
				retiredCount.Add(1)
				m.Retire(func() { freedCount.Add(1) })
				if j%50 == 0 {
					m.TryReclaim()
				}
			}
		}()
	}
	retirers.Wait()
	close(stop)
	readers.Wait()
	// Drain.
	for i := 0; i < 10 && m.Pending() > 0; i++ {
		m.TryReclaim()
	}
	if freedCount.Load() != retiredCount.Load() {
		t.Fatalf("freed %d of %d retired", freedCount.Load(), retiredCount.Load())
	}
	if m.Reclaimed() != uint64(retiredCount.Load()) {
		t.Fatalf("Reclaimed() = %d, want %d", m.Reclaimed(), retiredCount.Load())
	}
}

func TestEveryRetirementRunsExactlyOnce(t *testing.T) {
	m := NewManager()
	counts := make([]int, 100)
	for i := 0; i < 100; i++ {
		i := i
		m.Retire(func() { counts[i]++ })
	}
	m.TryReclaim()
	m.TryReclaim()
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("retirement %d ran %d times", i, c)
		}
	}
}
