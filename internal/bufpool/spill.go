package bufpool

import (
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// The spill file is the cold half of beyond-RAM base storage: sealed and
// merged base pages are appended in their page.MarshalEncoded form and read
// back on a pool miss. The file is strictly append-only — a descriptor, once
// handed out, names immutable bytes forever — which is what lets checkpoint
// images reference spilled pages by descriptor and lets late epoch readers
// re-pin a page whose in-memory version was already retired.

// Desc locates one spilled page frame: the byte range holding its
// page.MarshalEncoded payload and the payload's CRC. A descriptor is
// self-verifying: ReadAt checks length and CRC, so a torn frame, a
// bit-flipped device, or a descriptor paired with the wrong spill file all
// fail loudly instead of installing a malformed page.
type Desc struct {
	Off int64
	Len uint32
	CRC uint32
}

// SpillSink is the storage behind a Pool: append-only page frames addressed
// by descriptor. Append and ReadAt may be called concurrently; Sync makes
// every previously appended frame durable (a checkpoint that references
// spilled pages by descriptor syncs first, so the descriptors never point at
// bytes the crash discarded).
type SpillSink interface {
	Append(payload []byte) (Desc, error)
	ReadAt(d Desc) ([]byte, error)
	Sync() error
}

// crcOf is the frame checksum (IEEE, matching the WAL's frame CRCs).
func crcOf(p []byte) uint32 { return crc32.ChecksumIEEE(p) }

// checkDesc validates a frame read back for d.
func checkDesc(d Desc, p []byte) error {
	if uint32(len(p)) != d.Len {
		return fmt.Errorf("bufpool: spill frame at %d: read %d bytes, descriptor says %d", d.Off, len(p), d.Len)
	}
	if c := crcOf(p); c != d.CRC {
		return fmt.Errorf("bufpool: spill frame at %d: CRC %08x, descriptor says %08x (torn frame or wrong spill file)", d.Off, c, d.CRC)
	}
	return nil
}

// ---------------------------------------------------------------------------
// File-backed spill

// FileSpill is a file-backed SpillSink. The file is append-only: reopening
// an existing file positions new appends after the bytes already there, so
// descriptors recorded by an earlier process (e.g. in a checkpoint image)
// keep naming the same bytes. Sync fsyncs the file; like the WAL sink, a
// failed fsync must be treated as poisoning everything not yet acknowledged —
// the store reacts by failing the checkpoint round that asked for it.
type FileSpill struct {
	mu sync.Mutex
	// f's appends serialize on mu; ReadAt bypasses it (os.File.ReadAt is
	// safe under concurrent appends, and reads never touch size).
	f    *os.File
	size int64 // guarded by mu; next append offset
}

// OpenFileSpill opens (creating if absent) the spill file at path.
func OpenFileSpill(path string) (*FileSpill, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("bufpool: spill file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("bufpool: spill file: %w", err)
	}
	return &FileSpill{f: f, size: st.Size()}, nil
}

// Append writes payload at the end of the file and returns its descriptor.
// A short or failed write leaves a dead gap (the next append overwrites from
// the recorded size), never a descriptor to partial bytes.
func (s *FileSpill) Append(payload []byte) (Desc, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	off := s.size
	n, err := s.f.WriteAt(payload, off)
	if err != nil {
		return Desc{}, fmt.Errorf("bufpool: spill append: %w", err)
	}
	if n != len(payload) {
		return Desc{}, fmt.Errorf("bufpool: spill append: short write %d of %d", n, len(payload))
	}
	s.size = off + int64(n)
	return Desc{Off: off, Len: uint32(len(payload)), CRC: crcOf(payload)}, nil
}

// ReadAt reads the frame d names and verifies it against the descriptor.
func (s *FileSpill) ReadAt(d Desc) ([]byte, error) {
	buf := make([]byte, d.Len)
	n, err := s.f.ReadAt(buf, d.Off)
	if err != nil {
		return nil, fmt.Errorf("bufpool: spill read at %d: %w", d.Off, err)
	}
	if err := checkDesc(d, buf[:n]); err != nil {
		return nil, err
	}
	return buf, nil
}

// Sync makes every appended frame durable.
func (s *FileSpill) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("bufpool: spill sync: %w", err)
	}
	return nil
}

// Size returns the spill file's logical size in bytes.
func (s *FileSpill) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Close closes the underlying file.
func (s *FileSpill) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// ---------------------------------------------------------------------------
// In-memory spill (tests, torture suite)

// MemSpill is an in-memory SpillSink modelling a durable spill file: bytes
// appended survive a simulated crash exactly like a WALBuffer's do. The
// failure hooks let tests inject an ENOSPC-style append failure, a failing
// fsync, or frame corruption on the read path (the loud-failure property:
// a corrupt frame must error, never install a malformed page).
type MemSpill struct {
	mu  sync.Mutex
	buf []byte // guarded by mu

	// Hooks, set before use (not synchronized with concurrent operations).
	FailAppend error                  // Append returns this when non-nil
	FailSync   error                  // Sync returns this when non-nil
	Corrupt    func(d Desc, p []byte) // mutates the frame bytes handed to readers
}

// NewMemSpill returns an empty in-memory spill.
func NewMemSpill() *MemSpill { return &MemSpill{} }

// Append stores payload and returns its descriptor.
func (s *MemSpill) Append(payload []byte) (Desc, error) {
	if s.FailAppend != nil {
		return Desc{}, s.FailAppend
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	off := int64(len(s.buf))
	s.buf = append(s.buf, payload...)
	return Desc{Off: off, Len: uint32(len(payload)), CRC: crcOf(payload)}, nil
}

// ReadAt returns a copy of the frame d names, verified against the
// descriptor (after the Corrupt hook, so injected corruption is caught by
// the same CRC check a real torn frame would hit).
func (s *MemSpill) ReadAt(d Desc) ([]byte, error) {
	buf, err := s.copyFrame(d)
	if err != nil {
		return nil, err
	}
	if s.Corrupt != nil {
		s.Corrupt(d, buf)
	}
	if err := checkDesc(d, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// copyFrame copies out the raw bytes d names.
func (s *MemSpill) copyFrame(d Desc) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d.Off < 0 || d.Off+int64(d.Len) > int64(len(s.buf)) {
		return nil, fmt.Errorf("bufpool: spill read at %d: beyond end (%d bytes)", d.Off, len(s.buf))
	}
	return append([]byte(nil), s.buf[d.Off:d.Off+int64(d.Len)]...), nil
}

// Sync is a no-op (memory is "durable" in the simulated-crash model).
func (s *MemSpill) Sync() error { return s.FailSync }

// Size returns the number of bytes appended.
func (s *MemSpill) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.buf))
}
