// Package bufpool is the pinnable buffer pool behind beyond-RAM base
// storage: sealed and merged base pages live on a spill file (SpillSink) and
// are faulted into memory on demand, under a byte-budget cap with CLOCK
// eviction. Every base-page reference in internal/core is a *Handle rather
// than a raw page.Reader; readers pin a handle for the duration of a decode
// window and unpin when done, so eviction can never yank a page out from
// under a scan.
//
// Like internal/page and internal/pagedir, this package is an implementation
// detail of internal/core (the scanpath lint seals it): every read path that
// pins pages is one of core's validated engine paths.
//
// Concurrency design — three lock levels, strictly ordered:
//
//	Handle.loadMu  >  Pool.mu  >  Handle.mu
//
// loadMu serializes spill reads for one handle (one miss does the I/O, the
// racers reuse its page); Pool.mu guards the CLOCK ring and the resident
// byte budget; Handle.mu guards one handle's pin count and page pointer.
// Only two paths nest into Handle.mu, both from under Pool.mu: the eviction
// sweep taking each candidate's lock, and the miss path installing the page
// it just decoded. No path acquires Pool.mu or loadMu while holding a
// Handle.mu, so the order is acyclic.
package bufpool

import (
	"fmt"
	"sync"
	"sync/atomic"

	"lstore/internal/fault"
	"lstore/internal/page"
)

// Crash point on the pool miss path (no-op in production): the crash-torture
// suite trips it to prove a crash while faulting a page back in recovers
// cleanly.
var cpMissRead = fault.Register("bufpool.miss-read")

// Pool is a pin/unpin buffer pool over one spill sink. The byte budget caps
// the decoded in-memory footprint of resident spilled pages (tail pages and
// never-spilled pages are outside the pool and outside the budget).
type Pool struct {
	spill SpillSink
	cap   int64

	// The CLOCK ring holds exactly the handles whose page is resident AND
	// charged against the budget — not every handle ever admitted. A table
	// can have millions of spilled pages; the sweep must be O(resident),
	// bounded by cap/page-size, or every miss degrades to a walk over the
	// whole cold set.
	mu     sync.Mutex
	frames []*Handle // guarded by mu; the CLOCK ring (charged-resident only)
	hand   int       // guarded by mu; CLOCK hand index into frames
	// resident is the decoded bytes currently charged. Mutated only under
	// mu; read lock-free by Unpin's over-budget check so the pin fast path
	// never touches the pool lock.
	resident atomic.Int64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// New builds a pool over spill with a resident-byte cap. The cap is a
// target, not a hard bound: pinned pages are never evicted, so a window
// where every page is pinned can exceed it; the final Unpin sweeps the pool
// back under budget.
func New(spill SpillSink, capBytes int64) *Pool {
	return &Pool{spill: spill, cap: capBytes}
}

// Spill returns the pool's sink (the seal/merge paths append through it).
func (p *Pool) Spill() SpillSink { return p.spill }

// Gauges is one consistent snapshot of the pool counters.
type Gauges struct {
	Hits          int64 // pins served by a resident page
	Misses        int64 // pins that read the spill file
	Evictions     int64 // resident pages dropped by the CLOCK sweep
	ResidentBytes int64 // decoded bytes currently resident
	CapBytes      int64 // configured budget
	Frames        int   // resident frames on the CLOCK ring
}

// Gauges reads the pool counters.
func (p *Pool) Gauges() Gauges {
	p.mu.Lock()
	res, frames := p.resident.Load(), len(p.frames)
	p.mu.Unlock()
	return Gauges{
		Hits:          p.hits.Load(),
		Misses:        p.misses.Load(),
		Evictions:     p.evictions.Load(),
		ResidentBytes: res,
		CapBytes:      p.cap,
		Frames:        frames,
	}
}

// ---------------------------------------------------------------------------
// Handle

// Handle is the one way core reads a base page. It implements page.Reader —
// point reads (Get) pin, read, and unpin internally, so every existing point
// call site works unchanged — and page.BulkDecoder, so the pooled-scratch
// bulk decode covers a whole page under one pin. Bulk scan paths that need
// the concrete encoded page (predicate binding, word-windowed decoding) pin
// explicitly: MustPin returns the underlying page.Reader and the caller
// Unpins when its decode window closes.
//
// Len/Kind/MemWords answer from metadata recorded at creation and never
// fault the page in — compression accounting and cold-range classification
// stay free of I/O.
type Handle struct {
	pool *Pool // nil: permanently resident, res is the page
	res  page.Reader
	key  uint64
	desc Desc

	kind  page.Kind
	slots int
	words int

	// loadMu serializes the miss path (spill read + decode) per handle; it
	// is never held together with mu. See the package doc's lock order.
	loadMu sync.Mutex

	mu      sync.Mutex
	pg      page.Reader // guarded by mu; nil while evicted
	pins    int         // guarded by mu
	ref     bool        // guarded by mu; CLOCK reference bit
	relFlag bool        // guarded by mu; version retired, drop when unpinned
	charged bool        // guarded by mu; pg's bytes are counted in pool.resident

	// ringIdx is the handle's slot in pool.frames, -1 while off the ring.
	// Guarded by pool.mu (NOT h.mu): ring membership changes only under the
	// pool lock, and always tracks charged (the transient where charged just
	// flipped false but the handle is still ringed is always retired-flagged,
	// so the sweep skips it until the remover takes pool.mu).
	ringIdx int
}

// NewResident wraps a page that never spills (tail-era pages, row-layout
// slabs, stores without a pool). Pin/Unpin are free, Get is direct.
func NewResident(pg page.Reader) *Handle {
	return &Handle{res: pg, kind: pg.Kind(), slots: pg.Len(), words: pg.MemWords(), ringIdx: -1}
}

// Admit registers a freshly spilled page with the pool and returns its
// handle. The page starts resident (it was just produced by seal/merge) with
// its reference bit set; the admission itself may evict colder frames to
// make room.
func (p *Pool) Admit(key uint64, d Desc, pg page.Reader) *Handle {
	h := &Handle{
		pool:    p,
		key:     key,
		desc:    d,
		kind:    pg.Kind(),
		slots:   pg.Len(),
		words:   pg.MemWords(),
		pg:      pg,
		ref:     true,
		charged: true,
		ringIdx: -1,
	}
	p.mu.Lock()
	p.ringAddLocked(h)
	p.resident.Add(h.bytes())
	p.evictLocked()
	p.mu.Unlock()
	return h
}

// bytes is the handle's decoded in-memory footprint.
func (h *Handle) bytes() int64 { return int64(h.words) * 8 }

// Desc returns the spill descriptor; ok is false for never-spilled handles.
func (h *Handle) Desc() (Desc, bool) { return h.desc, h.pool != nil }

// Spilled reports whether the handle is backed by the spill file.
func (h *Handle) Spilled() bool { return h.pool != nil }

// Kind returns the page's encoding (from creation-time metadata; no I/O).
func (h *Handle) Kind() page.Kind { return h.kind }

// Len returns the page's slot count (metadata; no I/O).
func (h *Handle) Len() int { return h.slots }

// MemWords returns the page's decoded footprint in words (metadata; no I/O).
func (h *Handle) MemWords() int { return h.words }

// Get reads one slot through a pin/unpin pair — the point-read face used by
// readCols, probeSlot and the base point paths. Spill failures panic (see
// MustPin): a page that cannot be read back is data loss, not a soft miss.
func (h *Handle) Get(i int) uint64 {
	if h.pool == nil {
		return h.res.Get(i)
	}
	pg := h.MustPin()
	v := pg.Get(i)
	h.Unpin()
	return v
}

// AppendTo bulk-decodes the whole page under one pin, making *Handle a
// page.BulkDecoder: the pooled-scratch decode paths (decodeInto) work
// unchanged and never fall back to per-slot pinning.
func (h *Handle) AppendTo(buf []uint64) []uint64 {
	if h.pool == nil {
		return appendSlots(buf, h.res)
	}
	pg := h.MustPin()
	buf = appendSlots(buf, pg)
	h.Unpin()
	return buf
}

func appendSlots(buf []uint64, pg page.Reader) []uint64 {
	if bd, ok := pg.(page.BulkDecoder); ok {
		return bd.AppendTo(buf)
	}
	for i, n := 0, pg.Len(); i < n; i++ {
		buf = append(buf, pg.Get(i))
	}
	return buf
}

// Pin faults the page in if needed and holds it resident until Unpin. The
// returned Reader is the concrete encoded page — predicate binding and
// word-windowed decoding see the real representation. Every successful Pin
// must be paired with exactly one Unpin.
func (h *Handle) Pin() (page.Reader, error) {
	if h.pool == nil {
		return h.res, nil
	}
	h.mu.Lock()
	if h.pg != nil {
		h.pins++
		h.ref = true
		pg := h.pg
		h.mu.Unlock()
		h.pool.hits.Add(1)
		return pg, nil
	}
	h.mu.Unlock()
	return h.pool.load(h)
}

// MustPin is Pin for the engine's read paths, where a spill read or CRC
// failure means the cold half of the data is gone or corrupt: it fails loud
// (panics) rather than letting a scan silently skip pages.
func (h *Handle) MustPin() page.Reader {
	pg, err := h.Pin()
	if err != nil {
		panic(fmt.Sprintf("bufpool: lost spilled base page: %v", err))
	}
	return pg
}

// Unpin releases one pin. The final Unpin of a retired handle drops its
// page immediately (no point keeping a dead version resident); the final
// Unpin of a live handle re-runs the sweep if pins pushed the pool over
// budget, so a quiesced pool always sits at or under its cap.
func (h *Handle) Unpin() {
	if h.pool == nil {
		return
	}
	h.mu.Lock()
	if h.pins <= 0 {
		h.mu.Unlock()
		panic("bufpool: Unpin without a matching Pin")
	}
	h.pins--
	last := h.pins == 0
	var freed int64
	if h.relFlag && last && h.pg != nil {
		h.pg = nil
		if h.charged {
			h.charged = false
			freed = h.bytes()
		}
	}
	h.mu.Unlock()
	if freed > 0 {
		h.pool.dropCharge(h, freed)
		return
	}
	if last && h.pool.resident.Load() > h.pool.cap {
		p := h.pool
		p.mu.Lock()
		p.evictLocked()
		p.mu.Unlock()
	}
}

// Release retires the handle when its page version is unpublished (the merge
// swapped in a successor, or the range was retired). Current pins stay
// valid; once the last one drops, the page leaves the budget. A Release'd
// handle can still be pinned by late epoch readers — the spill file is
// append-only, so the descriptor never dangles — but such reloads bypass the
// budget (they are bounded by the epoch grace window).
func (h *Handle) Release() {
	if h.pool == nil {
		return
	}
	h.mu.Lock()
	if h.relFlag {
		h.mu.Unlock()
		return
	}
	h.relFlag = true
	var freed int64
	if h.pins == 0 && h.pg != nil {
		h.pg = nil
		if h.charged {
			h.charged = false
			freed = h.bytes()
		}
	}
	h.mu.Unlock()
	if freed > 0 {
		h.pool.dropCharge(h, freed)
	}
}

// ---------------------------------------------------------------------------
// Miss path, eviction, accounting

// load is the miss path: read the frame from the spill file, decode it, and
// install it under the budget. loadMu serializes concurrent misses on the
// same handle so the spill read happens once.
func (p *Pool) load(h *Handle) (page.Reader, error) {
	h.loadMu.Lock()
	defer h.loadMu.Unlock()

	// A racer may have completed the load while we waited on loadMu.
	h.mu.Lock()
	if h.pg != nil {
		h.pins++
		h.ref = true
		pg := h.pg
		h.mu.Unlock()
		p.hits.Add(1)
		return pg, nil
	}
	retired := h.relFlag
	h.mu.Unlock()

	p.misses.Add(1)
	cpMissRead.Hit() // crash here: mid-fault; nothing installed, nothing lost
	payload, err := p.spill.ReadAt(h.desc)
	if err != nil {
		return nil, err
	}
	pg, err := page.UnmarshalEncoded(payload)
	if err != nil {
		return nil, fmt.Errorf("bufpool: spill frame at %d undecodable: %w", h.desc.Off, err)
	}
	if pg.Len() != h.slots || pg.Kind() != h.kind {
		return nil, fmt.Errorf("bufpool: spill frame at %d decodes to %s/%d slots, handle expects %s/%d",
			h.desc.Off, pg.Kind(), pg.Len(), h.kind, h.slots)
	}
	// Install and charge under one pool-lock hold (pool.mu > h.mu is the
	// sweep's edge too), so the sweep can never see the page resident but
	// missing from the ring. The new pin keeps h itself safe from the
	// eviction pass triggered here. Retired handles (late epoch readers)
	// stay off the ring and outside the budget; their page drops at final
	// Unpin.
	p.mu.Lock()
	h.mu.Lock()
	h.pg = pg
	h.charged = !retired
	h.pins++
	h.ref = true
	h.mu.Unlock()
	if !retired {
		p.resident.Add(h.bytes())
		p.ringAddLocked(h)
		p.evictLocked()
	}
	p.mu.Unlock()
	return pg, nil
}

// ringAddLocked appends h to the CLOCK ring.
//
// locked: p.mu
func (p *Pool) ringAddLocked(h *Handle) {
	h.ringIdx = len(p.frames)
	p.frames = append(p.frames, h)
}

// ringRemoveLocked swap-removes h from the CLOCK ring.
//
// locked: p.mu
func (p *Pool) ringRemoveLocked(h *Handle) {
	i := h.ringIdx
	if i < 0 {
		return
	}
	last := len(p.frames) - 1
	p.frames[i] = p.frames[last]
	p.frames[i].ringIdx = i
	p.frames[last] = nil
	p.frames = p.frames[:last]
	h.ringIdx = -1
	if p.hand > last {
		p.hand = 0
	}
}

// dropCharge returns bytes to the budget and takes the handle off the ring —
// a drop outside the sweep: a retired handle losing its page at Release or
// final Unpin.
func (p *Pool) dropCharge(h *Handle, bytes int64) {
	p.mu.Lock()
	p.resident.Add(-bytes)
	p.ringRemoveLocked(h)
	p.mu.Unlock()
}

// evictLocked runs the CLOCK sweep until the pool fits its budget. Pinned
// and retired frames are skipped; a first pass clears reference bits, a
// second evicts. The sweep is bounded at two revolutions — if everything is
// pinned the pool runs over budget rather than livelocking (Pin can never
// block on Unpin).
//
// locked: p.mu
func (p *Pool) evictLocked() {
	for budget := 2 * len(p.frames); p.resident.Load() > p.cap && budget > 0 && len(p.frames) > 0; budget-- {
		if p.hand >= len(p.frames) {
			p.hand = 0
		}
		h := p.frames[p.hand]
		h.mu.Lock()
		if h.relFlag || h.pg == nil || h.pins > 0 {
			// Pinned, or a retired frame mid-drop (its remover holds h out of
			// the budget the moment it takes p.mu).
			h.mu.Unlock()
			p.hand++
			continue
		}
		if h.ref {
			h.ref = false
			h.mu.Unlock()
			p.hand++
			continue
		}
		h.pg = nil
		h.charged = false
		h.mu.Unlock()
		p.resident.Add(-h.bytes())
		// Swap-remove leaves the swapped-in frame at the hand for the next
		// probe; the hand does not advance.
		p.ringRemoveLocked(h)
		p.evictions.Add(1)
	}
}
