package bufpool

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"lstore/internal/page"
)

func testPage(n int, seed uint64) page.Reader {
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = seed + uint64(i%7)
	}
	return page.Encode(vals)
}

// spillPage appends pg to the pool's spill and admits it, returning the
// handle — the same sequence the seal/merge publish path performs.
func spillPage(t *testing.T, p *Pool, key uint64, pg page.Reader) *Handle {
	t.Helper()
	d, err := p.Spill().Append(page.MarshalEncoded(pg))
	if err != nil {
		t.Fatalf("spill append: %v", err)
	}
	return p.Admit(key, d, pg)
}

func TestHandleRoundTrip(t *testing.T) {
	p := New(NewMemSpill(), 1<<20)
	pg := testPage(128, 40)
	h := spillPage(t, p, 1, pg)

	if h.Len() != 128 || h.Kind() != pg.Kind() || h.MemWords() != pg.MemWords() {
		t.Fatalf("metadata mismatch: len=%d kind=%v words=%d", h.Len(), h.Kind(), h.MemWords())
	}
	for i := 0; i < 128; i++ {
		if got, want := h.Get(i), pg.Get(i); got != want {
			t.Fatalf("Get(%d) = %d, want %d", i, got, want)
		}
	}
	got := h.AppendTo(nil)
	want := pg.(page.BulkDecoder).AppendTo(nil)
	if len(got) != len(want) {
		t.Fatalf("AppendTo length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("AppendTo[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if g := p.Gauges(); g.Misses != 0 {
		t.Fatalf("unexpected misses before eviction: %+v", g)
	}
}

func TestResidentHandle(t *testing.T) {
	pg := testPage(64, 7)
	h := NewResident(pg)
	if h.Spilled() {
		t.Fatal("resident handle reports spilled")
	}
	if _, ok := h.Desc(); ok {
		t.Fatal("resident handle has a descriptor")
	}
	r, err := h.Pin()
	if err != nil || r != pg {
		t.Fatalf("Pin = %v, %v; want the wrapped page", r, err)
	}
	h.Unpin()
	h.Release() // no-op, must not panic
	if h.Get(3) != pg.Get(3) {
		t.Fatal("Get mismatch")
	}
}

func TestEvictionAndMiss(t *testing.T) {
	// Budget fits roughly one decoded page, so admitting a second page
	// evicts the first; re-reading it is a miss that refaults from spill.
	pgA := testPage(256, 1)
	capBytes := int64(pgA.MemWords()*8) + 64
	p := New(NewMemSpill(), capBytes)

	hA := spillPage(t, p, 1, pgA)
	pgB := testPage(256, 1000)
	hB := spillPage(t, p, 2, pgB)

	// Admitting B (ref bits set on both) forces the sweep to clear and then
	// evict; one of the two must have been dropped to fit the budget.
	g := p.Gauges()
	if g.Evictions == 0 {
		t.Fatalf("expected evictions after over-budget admit: %+v", g)
	}
	if g.ResidentBytes > capBytes {
		t.Fatalf("resident %d over cap %d with nothing pinned", g.ResidentBytes, capBytes)
	}

	// Both handles must still read correctly, whichever was evicted.
	for i := 0; i < 256; i++ {
		if hA.Get(i) != pgA.Get(i) || hB.Get(i) != pgB.Get(i) {
			t.Fatalf("slot %d mismatch after eviction", i)
		}
	}
	if g = p.Gauges(); g.Misses == 0 {
		t.Fatalf("expected at least one miss: %+v", g)
	}
}

func TestPinnedPagesSurviveEviction(t *testing.T) {
	pgA := testPage(256, 1)
	p := New(NewMemSpill(), int64(pgA.MemWords()*8)/2) // nothing fits
	hA := spillPage(t, p, 1, pgA)

	r, err := hA.Pin()
	if err != nil {
		t.Fatalf("pin: %v", err)
	}
	// Churn more pages through; the pinned page must never be evicted.
	for k := uint64(2); k < 10; k++ {
		spillPage(t, p, k, testPage(256, k*100))
	}
	for i := 0; i < 256; i++ {
		if r.Get(i) != pgA.Get(i) {
			t.Fatalf("pinned page mutated at slot %d", i)
		}
	}
	hA.Unpin()
	if g := p.Gauges(); g.Evictions == 0 {
		t.Fatalf("churn should have evicted unpinned pages: %+v", g)
	}
}

func TestUnpinWithoutPinPanics(t *testing.T) {
	p := New(NewMemSpill(), 1<<20)
	h := spillPage(t, p, 1, testPage(16, 3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unbalanced Unpin")
		}
	}()
	h.Unpin()
}

func TestReleaseDropsPage(t *testing.T) {
	p := New(NewMemSpill(), 1<<20)
	h := spillPage(t, p, 1, testPage(256, 9))
	before := p.Gauges().ResidentBytes
	h.Release()
	after := p.Gauges().ResidentBytes
	if after >= before {
		t.Fatalf("Release did not free bytes: before=%d after=%d", before, after)
	}
	// Late readers (epoch grace window) can still pin a released handle.
	if h.Get(5) != testPage(256, 9).Get(5) {
		t.Fatal("released handle unreadable")
	}
}

func TestReleaseDefersToLastUnpin(t *testing.T) {
	p := New(NewMemSpill(), 1<<20)
	pg := testPage(256, 9)
	h := spillPage(t, p, 1, pg)
	r, _ := h.Pin()
	h.Release()
	// Still pinned: page must remain readable and resident.
	if r.Get(0) != pg.Get(0) {
		t.Fatal("pinned page unreadable after Release")
	}
	h.Unpin()
	if g := p.Gauges(); g.ResidentBytes != 0 {
		t.Fatalf("resident bytes %d after final unpin of released handle", g.ResidentBytes)
	}
}

func TestCorruptFrameFailsLoud(t *testing.T) {
	ms := NewMemSpill()
	p := New(ms, 1) // evict immediately so every Pin refaults
	h := spillPage(t, p, 1, testPage(64, 5))

	ms.Corrupt = func(d Desc, b []byte) { b[len(b)/2] ^= 0xff }
	_, err := h.Pin()
	if err == nil {
		t.Fatal("Pin of corrupt frame succeeded")
	}
	if !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corrupt-frame error does not mention CRC: %v", err)
	}

	// MustPin escalates to a panic (the engine's loud-failure contract).
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustPin on corrupt frame did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "CRC") {
			t.Fatalf("panic does not mention CRC: %v", r)
		}
	}()
	h.MustPin()
}

func TestRingCompaction(t *testing.T) {
	p := New(NewMemSpill(), 1<<20)
	var hs []*Handle
	for k := uint64(0); k < 32; k++ {
		hs = append(hs, spillPage(t, p, k, testPage(16, k)))
	}
	for _, h := range hs[:24] {
		h.Release()
	}
	if g := p.Gauges(); g.Frames >= 32 {
		t.Fatalf("ring not compacted: %d frames", g.Frames)
	}
	// Survivors still work.
	for i, h := range hs[24:] {
		want := testPage(16, uint64(24+i)).Get(1)
		if got := h.Get(1); got != want {
			t.Fatalf("survivor %d reads %d, want %d", i, got, want)
		}
	}
}

func TestConcurrentPinEvictRelease(t *testing.T) {
	// -race property test: readers pin/unpin while churn admits new pages
	// (forcing eviction) and releases old ones, racing the CLOCK sweep
	// against loads and retirement.
	pgs := make([]page.Reader, 16)
	for i := range pgs {
		pgs[i] = testPage(128, uint64(i)*13)
	}
	p := New(NewMemSpill(), int64(pgs[0].MemWords()*8)*3) // ~3 frames resident
	// Published like core's colVersion swap: readers load the current handle
	// atomically, the merge-swap goroutine stores successors.
	handles := make([]atomic.Pointer[Handle], len(pgs))
	for i, pg := range pgs {
		handles[i].Store(spillPage(t, p, uint64(i), pg))
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < 400; it++ {
				h := handles[(w*7+it)%len(handles)].Load()
				r, err := h.Pin()
				if err != nil {
					panic(err)
				}
				want := pgs[(w*7+it)%len(pgs)]
				if r.Get(it%128) != want.Get(it%128) {
					panic("pinned read mismatch")
				}
				if it%3 == 0 {
					_ = h.AppendTo(nil)
				}
				h.Unpin()
			}
		}(w)
	}
	// Merge-swap simulator: retire and re-admit fresh versions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for it := 0; it < 100; it++ {
			i := it % len(pgs)
			old := handles[i].Load()
			nh := spillPage(t, p, uint64(i), pgs[i])
			handles[i].Store(nh)
			old.Release()
		}
	}()
	wg.Wait()

	g := p.Gauges()
	if g.Misses == 0 || g.Evictions == 0 {
		t.Fatalf("churn produced no pool activity: %+v", g)
	}
}

func TestFileSpillRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spill.lsp")
	fs, err := OpenFileSpill(path)
	if err != nil {
		t.Fatal(err)
	}
	pg := testPage(100, 77)
	payload := page.MarshalEncoded(pg)
	d, err := fs.Append(payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: old descriptors stay valid, new appends land after them.
	fs2, err := OpenFileSpill(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	got, err := fs2.ReadAt(d)
	if err != nil {
		t.Fatalf("read after reopen: %v", err)
	}
	rp, err := page.UnmarshalEncoded(got)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Get(42) != pg.Get(42) {
		t.Fatal("round-trip mismatch")
	}
	d2, err := fs2.Append(payload)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Off < d.Off+int64(d.Len) {
		t.Fatalf("reopened append overlapped: %+v then %+v", d, d2)
	}

	// Corruption on disk fails the CRC check.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[d.Off+int64(d.Len)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	fs3, err := OpenFileSpill(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs3.Close()
	if _, err := fs3.ReadAt(d); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corrupt file read = %v, want CRC error", err)
	}
}

func TestMemSpillFailureHooks(t *testing.T) {
	ms := NewMemSpill()
	ms.FailAppend = fmt.Errorf("no space left on device")
	if _, err := ms.Append([]byte{1}); err == nil {
		t.Fatal("FailAppend ignored")
	}
	ms.FailAppend = nil
	ms.FailSync = fmt.Errorf("sync failed")
	if err := ms.Sync(); err == nil {
		t.Fatal("FailSync ignored")
	}
	if _, err := ms.ReadAt(Desc{Off: 100, Len: 10}); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
}
