package server

import (
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
)

// gate bounds one request class's in-flight count with a semaphore channel:
// tryAcquire either takes a slot immediately or reports the queue full —
// admission never blocks, because a blocked accept loop IS the collapse
// admission control exists to prevent. Depth (len of the channel) is the
// live queue gauge /v1/stats reports.
type gate struct {
	slots    chan struct{}
	admitted atomic.Uint64
	shed     atomic.Uint64
}

func newGate(depth int) *gate {
	if depth < 1 {
		depth = 1
	}
	return &gate{slots: make(chan struct{}, depth)}
}

func (g *gate) tryAcquire() bool {
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return true
	default:
		g.shed.Add(1)
		return false
	}
}

func (g *gate) release() { <-g.slots }

func (g *gate) depth() int { return len(g.slots) }
func (g *gate) cap() int   { return cap(g.slots) }

// admit runs the request-independent admission checks for a gate: drain
// refusal and queue capacity. It writes the refusal response itself and
// reports whether the caller owns a slot (and must release it).
func (s *Server) admit(w http.ResponseWriter, g *gate) bool {
	if s.draining.Load() {
		jsonError(w, http.StatusServiceUnavailable, "server is draining")
		return false
	}
	if !g.tryAcquire() {
		s.shedResponse(w, "request queue full")
		return false
	}
	return true
}

// admitTxn is admit plus the engine-health watermarks: transactions are
// additionally shed while the merge backlog or the WAL flush lag says the
// engine is already behind on the write path. Queries are not shed on
// those gauges — they add no WAL load, and reads staying available while
// writes shed is the point of separate classes.
func (s *Server) admitTxn(w http.ResponseWriter) bool {
	if s.draining.Load() {
		jsonError(w, http.StatusServiceUnavailable, "server is draining")
		return false
	}
	if reason, over := s.overloaded(); over {
		s.overloadShed.Add(1)
		s.shedResponse(w, reason)
		return false
	}
	if !s.txnGate.tryAcquire() {
		s.shedResponse(w, "transaction queue full")
		return false
	}
	return true
}

// overloaded evaluates the watermarks against the engine's own gauges.
func (s *Server) overloaded() (string, bool) {
	if s.cfg.MaxMergeBacklog >= 0 {
		if b := s.mergeBacklog(); b > s.cfg.MaxMergeBacklog {
			return fmt.Sprintf("merge backlog %d over watermark %d", b, s.cfg.MaxMergeBacklog), true
		}
	}
	if s.cfg.MaxWALFlushLag >= 0 {
		wi := s.db.WALInfo()
		if wi.Attached {
			if lag := int64(wi.LastLSN - wi.FlushedLSN); lag > s.cfg.MaxWALFlushLag {
				return fmt.Sprintf("WAL flush lag %d over watermark %d", lag, s.cfg.MaxWALFlushLag), true
			}
		}
	}
	return "", false
}

// mergeBacklog sums the merge backlog gauge across tables — the distance
// between writers and the merge scheduler, engine-wide.
func (s *Server) mergeBacklog() int64 {
	var total int64
	for _, name := range s.db.TableNames() {
		if tbl, ok := s.db.Table(name); ok {
			total += tbl.Stats().MergeBacklog
		}
	}
	return total
}

// shedResponse is the 429 contract: status, Retry-After hint, and a JSON
// body naming the reason, so clients can distinguish shed classes.
func (s *Server) shedResponse(w http.ResponseWriter, reason string) {
	secs := int(s.cfg.RetryAfter.Seconds())
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	jsonError(w, http.StatusTooManyRequests, reason)
}
