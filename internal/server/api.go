// HTTP/JSON wire protocol. Values map naturally: Int64 columns are JSON
// integers (decoded via json.Number — no float rounding of large keys),
// String columns are JSON strings, null is null. Errors are always
// `{"error": "..."}` with a meaningful status: 400 malformed request, 404
// unknown table, 409 conflict (retryable: optimistic validation lost) or
// constraint violation, 429 shed (with Retry-After), 500 durability
// failures, 503 draining.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"lstore"
)

func jsonError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]any{"error": msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // response already committed; a broken client conn has nowhere to report
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.UseNumber()
	return dec.Decode(v)
}

// toValue converts a decoded JSON value into a typed engine value.
func toValue(v any) (lstore.Value, error) {
	switch x := v.(type) {
	case nil:
		return lstore.Null(), nil
	case string:
		return lstore.Str(x), nil
	case json.Number:
		i, err := x.Int64()
		if err != nil {
			return lstore.Null(), fmt.Errorf("value %q is not a 64-bit integer", x)
		}
		return lstore.Int(i), nil
	default:
		return lstore.Null(), fmt.Errorf("unsupported value type %T", v)
	}
}

func fromValue(v lstore.Value) any {
	switch {
	case v.IsNull():
		return nil
	case v.Kind() == lstore.String:
		return v.Str()
	default:
		return v.Int()
	}
}

func toRow(m map[string]any) (lstore.Row, error) {
	row := make(lstore.Row, len(m))
	for k, v := range m {
		val, err := toValue(v)
		if err != nil {
			return nil, fmt.Errorf("column %q: %w", k, err)
		}
		row[k] = val
	}
	return row, nil
}

func fromRow(row lstore.Row) map[string]any {
	out := make(map[string]any, len(row))
	for k, v := range row {
		out[k] = fromValue(v)
	}
	return out
}

// ---------------------------------------------------------------------------
// POST /v1/txn — a batch of operations, one atomic transaction.

type txnRequest struct {
	// Isolation: "read-committed" (default), "snapshot", "serializable".
	Isolation string  `json:"isolation,omitempty"`
	Ops       []txnOp `json:"ops"`
}

type txnOp struct {
	Op    string         `json:"op"` // insert | update | delete | get
	Table string         `json:"table"`
	Key   *json.Number   `json:"key,omitempty"`
	Row   map[string]any `json:"row,omitempty"`  // insert
	Set   map[string]any `json:"set,omitempty"`  // update
	Cols  []string       `json:"cols,omitempty"` // get projection
}

type txnResponse struct {
	Committed bool             `json:"committed"`
	Results   []opResult       `json:"results"`
	BeginTime lstore.Timestamp `json:"begin_time"`
}

type opResult struct {
	Found *bool          `json:"found,omitempty"` // get only
	Row   map[string]any `json:"row,omitempty"`   // get only
}

func parseIsolation(s string) (lstore.IsolationLevel, error) {
	switch s {
	case "", "read-committed":
		return lstore.ReadCommitted, nil
	case "snapshot":
		return lstore.Snapshot, nil
	case "serializable":
		return lstore.Serializable, nil
	}
	return lstore.ReadCommitted, fmt.Errorf("unknown isolation level %q", s)
}

func (s *Server) handleTxn(w http.ResponseWriter, r *http.Request) {
	if !s.admitTxn(w) {
		return
	}
	defer s.txnGate.release()
	if sess := sessionFrom(r.Context()); sess != nil {
		sess.txns.Add(1)
	}

	var req txnRequest
	if err := decodeBody(r, &req); err != nil {
		jsonError(w, http.StatusBadRequest, "bad transaction request: "+err.Error())
		return
	}
	if len(req.Ops) == 0 {
		jsonError(w, http.StatusBadRequest, "transaction has no operations")
		return
	}
	level, err := parseIsolation(req.Isolation)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err.Error())
		return
	}

	tx := s.db.Begin(level)
	resp := txnResponse{Results: make([]opResult, 0, len(req.Ops)), BeginTime: tx.BeginTime()}
	for i, op := range req.Ops {
		res, status, err := s.applyOp(tx, op)
		if err != nil {
			tx.Abort()
			jsonError(w, status, fmt.Sprintf("op %d (%s %s): %v", i, op.Op, op.Table, err))
			return
		}
		resp.Results = append(resp.Results, res)
	}
	if err := tx.Commit(); err != nil {
		switch {
		case errors.Is(err, lstore.ErrConflict):
			writeJSON(w, http.StatusConflict, map[string]any{"error": err.Error(), "retryable": true})
		case errors.Is(err, lstore.ErrDurabilityUnknown):
			// Committed in memory, durability in doubt: the one answer the
			// server must never soften into a clean 200 or a clean failure.
			writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error(), "durability_unknown": true})
		default:
			jsonError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	resp.Committed = true
	writeJSON(w, http.StatusOK, resp)
}

// applyOp runs one operation inside tx; an error aborts the whole batch
// with the returned status.
func (s *Server) applyOp(tx *lstore.Txn, op txnOp) (opResult, int, error) {
	tbl, ok := s.db.Table(op.Table)
	if !ok {
		return opResult{}, http.StatusNotFound, fmt.Errorf("unknown table")
	}
	key := func() (int64, error) {
		if op.Key == nil {
			return 0, fmt.Errorf("missing key")
		}
		return op.Key.Int64()
	}
	switch op.Op {
	case "insert":
		row, err := toRow(op.Row)
		if err != nil {
			return opResult{}, http.StatusBadRequest, err
		}
		if err := tbl.Insert(tx, row); err != nil {
			return opResult{}, opErrStatus(err), err
		}
		return opResult{}, 0, nil
	case "update":
		k, err := key()
		if err != nil {
			return opResult{}, http.StatusBadRequest, err
		}
		set, err := toRow(op.Set)
		if err != nil {
			return opResult{}, http.StatusBadRequest, err
		}
		if err := tbl.Update(tx, k, set); err != nil {
			return opResult{}, opErrStatus(err), err
		}
		return opResult{}, 0, nil
	case "delete":
		k, err := key()
		if err != nil {
			return opResult{}, http.StatusBadRequest, err
		}
		if err := tbl.Delete(tx, k); err != nil {
			return opResult{}, opErrStatus(err), err
		}
		return opResult{}, 0, nil
	case "get":
		k, err := key()
		if err != nil {
			return opResult{}, http.StatusBadRequest, err
		}
		row, found, err := tbl.Get(tx, k, op.Cols...)
		if err != nil {
			return opResult{}, opErrStatus(err), err
		}
		res := opResult{Found: &found}
		if found {
			res.Row = fromRow(row)
		}
		return res, 0, nil
	}
	return opResult{}, http.StatusBadRequest, fmt.Errorf("unknown op %q", op.Op)
}

func opErrStatus(err error) int {
	switch {
	case errors.Is(err, lstore.ErrConflict),
		errors.Is(err, lstore.ErrDuplicateKey),
		errors.Is(err, lstore.ErrNotFound):
		return http.StatusConflict
	case errors.Is(err, lstore.ErrTypeMismatch):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// ---------------------------------------------------------------------------
// POST /v1/query — the Query builder on the wire.

type queryRequest struct {
	Table  string            `json:"table"`
	Select []string          `json:"select,omitempty"`
	Where  []wirePred        `json:"where,omitempty"`
	Agg    []wireAgg         `json:"aggregate,omitempty"`
	At     *lstore.Timestamp `json:"at,omitempty"` // time travel
	// Limit caps returned rows (default 1000; negative = unlimited).
	Limit *int `json:"limit,omitempty"`
}

type wirePred struct {
	Col    string `json:"col"`
	Op     string `json:"op"` // eq ne lt le gt ge between is-null not-null
	Value  any    `json:"value,omitempty"`
	Value2 any    `json:"value2,omitempty"` // between upper bound
}

type wireAgg struct {
	Op  string `json:"op"` // sum count min max
	Col string `json:"col,omitempty"`
}

type queryResponse struct {
	Rows       []map[string]any `json:"rows,omitempty"`
	Count      int              `json:"count"`
	Truncated  bool             `json:"truncated,omitempty"`
	Aggregates []aggResult      `json:"aggregates,omitempty"`
}

type aggResult struct {
	Value any   `json:"value"`
	Rows  int64 `json:"rows"`
}

func (p wirePred) compile() (lstore.Predicate, error) {
	v, err := toValue(p.Value)
	if err != nil {
		return lstore.Predicate{}, fmt.Errorf("predicate on %q: %w", p.Col, err)
	}
	switch p.Op {
	case "eq":
		return lstore.Eq(p.Col, v), nil
	case "ne":
		return lstore.Ne(p.Col, v), nil
	case "lt":
		return lstore.Lt(p.Col, v), nil
	case "le":
		return lstore.Le(p.Col, v), nil
	case "gt":
		return lstore.Gt(p.Col, v), nil
	case "ge":
		return lstore.Ge(p.Col, v), nil
	case "between":
		v2, err := toValue(p.Value2)
		if err != nil {
			return lstore.Predicate{}, fmt.Errorf("predicate on %q: %w", p.Col, err)
		}
		return lstore.Between(p.Col, v, v2), nil
	case "is-null":
		return lstore.IsNull(p.Col), nil
	case "not-null":
		return lstore.NotNull(p.Col), nil
	}
	return lstore.Predicate{}, fmt.Errorf("unknown predicate op %q", p.Op)
}

func (a wireAgg) compile() (lstore.Agg, error) {
	switch a.Op {
	case "sum":
		return lstore.Sum(a.Col), nil
	case "count":
		return lstore.Count(), nil
	case "min":
		return lstore.Min(a.Col), nil
	case "max":
		return lstore.Max(a.Col), nil
	}
	return lstore.Agg{}, fmt.Errorf("unknown aggregate op %q", a.Op)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, s.queryGate) {
		return
	}
	defer s.queryGate.release()
	if sess := sessionFrom(r.Context()); sess != nil {
		sess.queries.Add(1)
	}

	var req queryRequest
	if err := decodeBody(r, &req); err != nil {
		jsonError(w, http.StatusBadRequest, "bad query request: "+err.Error())
		return
	}
	tbl, ok := s.db.Table(req.Table)
	if !ok {
		jsonError(w, http.StatusNotFound, fmt.Sprintf("unknown table %q", req.Table))
		return
	}
	q := tbl.Query()
	if len(req.Select) > 0 {
		q.Select(req.Select...)
	}
	for _, wp := range req.Where {
		pred, err := wp.compile()
		if err != nil {
			jsonError(w, http.StatusBadRequest, err.Error())
			return
		}
		q.Where(pred)
	}
	if req.At != nil {
		q.At(*req.At)
	}

	if len(req.Agg) > 0 {
		aggs := make([]lstore.Agg, 0, len(req.Agg))
		for _, wa := range req.Agg {
			a, err := wa.compile()
			if err != nil {
				jsonError(w, http.StatusBadRequest, err.Error())
				return
			}
			aggs = append(aggs, a)
		}
		res, err := q.Aggregate(aggs...)
		if err != nil {
			jsonError(w, queryErrStatus(err), err.Error())
			return
		}
		resp := queryResponse{Aggregates: make([]aggResult, res.Len())}
		for i := range resp.Aggregates {
			resp.Aggregates[i] = aggResult{Value: fromValue(res.Value(i)), Rows: res.Rows(i)}
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}

	limit := 1000
	if req.Limit != nil {
		limit = *req.Limit
	}
	var resp queryResponse
	err := q.Rows(func(rv *lstore.RowView) bool {
		if limit >= 0 && len(resp.Rows) >= limit {
			resp.Truncated = true
			return false
		}
		resp.Rows = append(resp.Rows, fromRow(rv.Row()))
		return true
	})
	if err != nil {
		jsonError(w, queryErrStatus(err), err.Error())
		return
	}
	resp.Count = len(resp.Rows)
	writeJSON(w, http.StatusOK, resp)
}

func queryErrStatus(err error) int {
	if errors.Is(err, lstore.ErrTypeMismatch) {
		return http.StatusBadRequest
	}
	// Anything else is the engine failing mid-execution (scan error,
	// poisoned state) — a server fault, not a malformed request.
	return http.StatusInternalServerError
}

// ---------------------------------------------------------------------------
// Tables: DDL and introspection.

type tableDecl struct {
	Name    string    `json:"name"`
	Key     string    `json:"key"`
	Columns []wireCol `json:"columns"`
	Indexes []string  `json:"indexes,omitempty"`
}

type wireCol struct {
	Name string `json:"name"`
	Type string `json:"type"` // int | string
}

func (s *Server) handleCreateTable(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		jsonError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var decl tableDecl
	if err := decodeBody(r, &decl); err != nil {
		jsonError(w, http.StatusBadRequest, "bad table declaration: "+err.Error())
		return
	}
	cols := make([]lstore.Column, 0, len(decl.Columns))
	for _, c := range decl.Columns {
		switch c.Type {
		case "int":
			cols = append(cols, lstore.Column{Name: c.Name, Type: lstore.Int64})
		case "string":
			cols = append(cols, lstore.Column{Name: c.Name, Type: lstore.String})
		default:
			jsonError(w, http.StatusBadRequest, fmt.Sprintf("column %q: unknown type %q", c.Name, c.Type))
			return
		}
	}
	// One DDL at a time: the create and the checkpoint that makes it
	// durable must not interleave with another DDL's pair.
	s.ddlMu.Lock()
	defer s.ddlMu.Unlock()
	_, err := s.db.CreateTable(decl.Name, lstore.NewSchema(decl.Key, cols...),
		lstore.TableOptions{SecondaryIndexes: decl.Indexes})
	if err != nil {
		jsonError(w, http.StatusConflict, err.Error())
		return
	}
	// Table creation is not WAL-logged; the checkpoint image is the only
	// durable record of the schema. Fail loudly if it cannot be written —
	// a table that would silently vanish on restart is worse than a 500.
	if s.cfg.Checkpoint != nil {
		if _, err := s.db.CheckpointTo(s.cfg.Checkpoint); err != nil {
			jsonError(w, http.StatusInternalServerError,
				"table created but schema checkpoint failed (table will not survive restart): "+err.Error())
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"created": decl.Name})
}

func (s *Server) handleListTables(w http.ResponseWriter, r *http.Request) {
	names := s.db.TableNames()
	decls := make([]tableDecl, 0, len(names))
	for _, name := range names {
		tbl, ok := s.db.Table(name)
		if !ok {
			continue
		}
		d := tableDecl{Name: name, Key: tbl.Key(), Indexes: tbl.SecondaryIndexes()}
		for _, c := range tbl.ColumnDefs() {
			tn := "int"
			if c.Type == lstore.String {
				tn = "string"
			}
			d.Columns = append(d.Columns, wireCol{Name: c.Name, Type: tn})
		}
		decls = append(decls, d)
	}
	writeJSON(w, http.StatusOK, map[string]any{"tables": decls})
}

// ---------------------------------------------------------------------------
// GET /v1/stats, GET /healthz

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	active, total := s.sessionCounts()
	wi := s.db.WALInfo()
	walErr := ""
	if wi.Err != nil {
		walErr = wi.Err.Error()
	}
	tables := make(map[string]any)
	var backlog int64
	for _, name := range s.db.TableNames() {
		tbl, ok := s.db.Table(name)
		if !ok {
			continue
		}
		st := tbl.Stats()
		backlog += st.MergeBacklog
		tstats := map[string]any{
			"inserts":           st.Inserts,
			"updates":           st.Updates,
			"deletes":           st.Deletes,
			"point_reads":       st.PointReads,
			"scans":             st.Scans,
			"ww_conflicts":      st.WWConflicts,
			"tail_records":      st.TailRecords,
			"merges":            st.Merges,
			"merge_backlog":     st.MergeBacklog,
			"merge_queue_depth": st.MergeQueueDepth,
		}
		// Beyond-RAM base storage: present only when the table has a spill
		// attached, so all-resident deployments keep their stats shape.
		if st.PoolCapBytes > 0 || st.SpilledPages > 0 {
			tstats["pool"] = map[string]any{
				"hits":           st.PoolHits,
				"misses":         st.PoolMisses,
				"evictions":      st.PoolEvictions,
				"resident_bytes": st.PoolResidentBytes,
				"cap_bytes":      st.PoolCapBytes,
				"spilled_pages":  st.SpilledPages,
				"spill_errors":   st.SpillErrors,
			}
		}
		tables[name] = tstats
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_secs":     int64(time.Since(s.born).Seconds()),
		"draining":        s.draining.Load(),
		"sessions_active": active,
		"sessions_total":  total,
		"admission": map[string]any{
			"txn_queue_depth":   s.txnGate.depth(),
			"txn_queue_cap":     s.txnGate.cap(),
			"txn_admitted":      s.txnGate.admitted.Load(),
			"txn_shed":          s.txnGate.shed.Load(),
			"query_queue_depth": s.queryGate.depth(),
			"query_queue_cap":   s.queryGate.cap(),
			"query_admitted":    s.queryGate.admitted.Load(),
			"query_shed":        s.queryGate.shed.Load(),
			"overload_shed":     s.overloadShed.Load(),
			"merge_backlog":     backlog,
		},
		"wal": map[string]any{
			"attached":      wi.Attached,
			"appended":      wi.Appended,
			"last_lsn":      wi.LastLSN,
			"flushed_lsn":   wi.FlushedLSN,
			"flush_lag":     wi.LastLSN - wi.FlushedLSN,
			"truncated_lsn": wi.TruncatedLSN,
			"syncs":         wi.Syncs,
			"group_commit":  wi.GroupCommit,
			"group_batches": wi.GroupBatches,
			"error":         walErr,
		},
		"tables": tables,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if wi := s.db.WALInfo(); wi.Err != nil {
		http.Error(w, "wal poisoned: "+wi.Err.Error(), http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}
