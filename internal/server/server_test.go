package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lstore"
)

func kvSpec() TableSpec {
	return TableSpec{
		Name: "kv",
		Key:  "id",
		Columns: []lstore.Column{
			{Name: "id", Type: lstore.Int64},
			{Name: "v", Type: lstore.Int64},
			{Name: "note", Type: lstore.String},
		},
		Indexes: []string{"v"},
	}
}

func storeConfig(dir string) StoreConfig {
	return StoreConfig{
		WALPath:        filepath.Join(dir, "wal"),
		CheckpointPath: filepath.Join(dir, "ckpt"),
		Tables:         []TableSpec{kvSpec()},
	}
}

func postJSON(t *testing.T, h http.Handler, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil && rec.Body.Len() > 0 {
		t.Fatalf("%s: non-JSON response %q", path, rec.Body.String())
	}
	return rec, out
}

func getJSON(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil && strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("%s: non-JSON response %q", path, rec.Body.String())
	}
	return rec, out
}

// TestServeEndToEnd drives the full lifecycle over a real TCP listener:
// open a durable store, commit transactions and run queries over HTTP,
// drain via Shutdown (final checkpoint), then reopen the store and find
// everything — rows AND schema — again, with an empty log tail to replay.
func TestServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(storeConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st.DB, Config{Checkpoint: st.Checkpoint})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()

	post := func(path, body string) (int, map[string]any) {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		var out map[string]any
		json.Unmarshal(raw, &out) //nolint:errcheck // asserted via fields below
		return resp.StatusCode, out
	}

	code, out := post("/v1/txn", `{"ops":[
		{"op":"insert","table":"kv","row":{"id":1,"v":10,"note":"a"}},
		{"op":"insert","table":"kv","row":{"id":2,"v":20}},
		{"op":"get","table":"kv","key":1,"cols":["v"]}]}`)
	if code != 200 || out["committed"] != true {
		t.Fatalf("txn: %d %v", code, out)
	}
	code, out = post("/v1/query", `{"table":"kv","aggregate":[{"op":"sum","col":"v"},{"op":"count"}]}`)
	if code != 200 {
		t.Fatalf("query: %d %v", code, out)
	}
	aggs := out["aggregates"].([]any)
	if got := aggs[0].(map[string]any)["value"].(float64); got != 30 {
		t.Fatalf("sum = %v, want 30", got)
	}

	// A conflicting insert aborts the whole batch atomically.
	code, _ = post("/v1/txn", `{"ops":[
		{"op":"insert","table":"kv","row":{"id":3,"v":30}},
		{"op":"insert","table":"kv","row":{"id":1,"v":99}}]}`)
	if code != http.StatusConflict {
		t.Fatalf("duplicate insert: status %d, want 409", code)
	}
	code, out = post("/v1/query", `{"table":"kv","where":[{"col":"id","op":"eq","value":3}]}`)
	if code != 200 || out["count"].(float64) != 0 {
		t.Fatalf("aborted batch leaked op: %d %v", code, out)
	}

	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	json.NewDecoder(resp.Body).Decode(&stats) //nolint:errcheck // fields asserted below
	resp.Body.Close()
	adm := stats["admission"].(map[string]any)
	if adm["txn_admitted"].(float64) < 2 {
		t.Fatalf("stats admission: %v", adm)
	}
	if stats["sessions_total"].(float64) < 1 {
		t.Fatalf("stats sessions: %v", stats)
	}
	wal := stats["wal"].(map[string]any)
	if wal["group_commit"] != true || wal["attached"] != true {
		t.Fatalf("stats wal: %v", wal)
	}

	taken := st.Checkpoint.Taken()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v", err)
	}
	if st.Checkpoint.Taken() != taken+1 {
		t.Fatal("drain did not write a final checkpoint")
	}

	st2, err := OpenStore(storeConfig(dir))
	if err != nil {
		t.Fatalf("reopen after drain: %v", err)
	}
	defer st2.Close()
	if st2.Generation != st.Generation+1 {
		t.Fatalf("generation %d after %d", st2.Generation, st.Generation)
	}
	if st2.Recovered.RedoneTxns != 0 {
		t.Fatalf("drained store still replayed %d txns from the tail", st2.Recovered.RedoneTxns)
	}
	tbl, ok := st2.DB.Table("kv")
	if !ok {
		t.Fatal("schema lost across restart")
	}
	if got := tbl.SecondaryIndexes(); len(got) != 1 || got[0] != "v" {
		t.Fatalf("secondary indexes lost: %v", got)
	}
	tx := st2.DB.Begin(lstore.ReadCommitted)
	row, found, err := tbl.Get(tx, 1, "v", "note")
	tx.Abort()
	if err != nil || !found || row["v"].Int() != 10 || row["note"].Str() != "a" {
		t.Fatalf("row lost across restart: %v %v %v", row, found, err)
	}
}

// TestCrashRestartRecovers kills the server without a drain (no final
// checkpoint) and reopens: the startup checkpoint plus the generation's
// log tail must rebuild every committed transaction, and a second crash
// mid-recovery (stale next-generation WAL left behind) must not confuse a
// later open.
func TestCrashRestartRecovers(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(storeConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st.DB, Config{Checkpoint: st.Checkpoint})
	for i := 1; i <= 10; i++ {
		rec, out := postJSON(t, srv.Handler(), "/v1/txn",
			fmt.Sprintf(`{"ops":[{"op":"insert","table":"kv","row":{"id":%d,"v":%d}}]}`, i, i*10))
		if rec.Code != 200 {
			t.Fatalf("txn %d: %d %v", i, rec.Code, out)
		}
	}
	// Crash: no Shutdown, no final checkpoint. (The DB object is simply
	// abandoned; its WAL file already holds every acked commit.)
	st.DB.Close()

	// A stale WAL from a hypothetical crashed recovery must be ignored
	// and removed: only the committed generation's pair is authoritative.
	stale := walGenPath(filepath.Join(dir, "wal"), st.Generation+7)
	if err := os.WriteFile(stale, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(storeConfig(dir))
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer st2.Close()
	if st2.Recovered.RedoneTxns != 10 {
		t.Fatalf("replayed %d txns from the tail, want 10", st2.Recovered.RedoneTxns)
	}
	tbl, _ := st2.DB.Table("kv")
	sum, rows, err := tbl.Sum(st2.DB.Now(), "v")
	if err != nil || rows != 10 || sum != 550 {
		t.Fatalf("recovered sum=%d rows=%d err=%v, want 550/10", sum, rows, err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale WAL %s survived reopen (err=%v)", stale, err)
	}
}

// TestCrashBetweenStartupCheckpointAndGenCommit reproduces the window the
// generation protocol exists for: a recovery that completed its startup
// checkpoint (new-generation image durable on disk) but crashed before the
// gen file committed the switch. Because images are generation-tagged, the
// old pair is untouched — the next open must discard both partial
// new-generation halves and replay identically, with no doubled effects
// and no duplicate-key recovery failure.
func TestCrashBetweenStartupCheckpointAndGenCommit(t *testing.T) {
	dir := t.TempDir()
	cfg := storeConfig(dir)
	st, err := OpenStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := st.DB.Table("kv")
	for i := 1; i <= 10; i++ {
		tx := st.DB.Begin(lstore.ReadCommitted)
		if err := tbl.Insert(tx, lstore.Row{"id": lstore.Int(int64(i)), "v": lstore.Int(int64(i * 10))}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	st.DB.Close() // crash 1: no drain — the 10 txns live in wal.<gen>'s tail
	gen := st.Generation

	// Crash 2, mid-recovery: run the second open's work by hand — recover
	// the gen pair into a fresh gen+1 WAL, write the gen+1 startup
	// checkpoint — and then "die" before writeGeneration. This is exactly
	// the state a process kill in that window leaves on disk: complete
	// ckpt.<gen+1> and wal.<gen+1>, gen file still naming gen.
	tail, err := os.ReadFile(walGenPath(cfg.WALPath, gen))
	if err != nil {
		t.Fatal(err)
	}
	prev, err := lstore.NewFileCheckpointSink(ckptGenPath(cfg.CheckpointPath, gen))
	if err != nil {
		t.Fatal(err)
	}
	walSink, err := lstore.OpenWALFile(walGenPath(cfg.WALPath, gen+1))
	if err != nil {
		t.Fatal(err)
	}
	db2 := lstore.Open(lstore.WithWAL(walSink, nil))
	schemaReader, _, ok := prev.Latest()
	if !ok {
		t.Fatal("generation image missing")
	}
	decls, err := lstore.CheckpointSchema(schemaReader)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range decls {
		if _, err := db2.CreateTable(d.Name, d.Schema(), lstore.TableOptions{SecondaryIndexes: d.SecondaryIndexes}); err != nil {
			t.Fatal(err)
		}
	}
	ckptReader, _, _ := prev.Latest()
	if _, err := lstore.Recover(db2, ckptReader, bytes.NewReader(tail)); err != nil {
		t.Fatal(err)
	}
	next, err := lstore.NewFileCheckpointSink(ckptGenPath(cfg.CheckpointPath, gen+1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db2.CheckpointTo(next); err != nil {
		t.Fatal(err)
	}
	db2.Close() // crash 2: writeGeneration never ran

	// The old generation's image must still exist (a shared image path
	// would have been overwritten by the gen+1 startup checkpoint above).
	if _, err := os.Stat(ckptGenPath(cfg.CheckpointPath, gen)); err != nil {
		t.Fatalf("old generation's image gone before the gen commit: %v", err)
	}

	st3, err := OpenStore(cfg)
	if err != nil {
		t.Fatalf("reopen after crashed recovery: %v", err)
	}
	defer st3.Close()
	tbl3, _ := st3.DB.Table("kv")
	sum, rows, err := tbl3.Sum(st3.DB.Now(), "v")
	if err != nil || rows != 10 || sum != 550 {
		t.Fatalf("recovered sum=%d rows=%d err=%v, want 550/10 (doubled effects = mixed-generation replay)", sum, rows, err)
	}
}

// TestMissingImageRefusesPartialRecovery: when the gen file names a
// generation whose image is gone, the WAL tail alone cannot rebuild the
// store (it only holds records above the image's watermark) — OpenStore
// must refuse loudly instead of silently serving a near-empty database.
func TestMissingImageRefusesPartialRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := storeConfig(dir)
	st, err := OpenStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st.DB.Close()
	if err := os.Remove(st.CkptFile); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(cfg); err == nil || !strings.Contains(err.Error(), "no complete image") {
		t.Fatalf("OpenStore with missing image: err=%v, want refusal", err)
	}
}

// TestDDLOverHTTPSurvivesCrash: tables created through the API are only
// durable through the post-DDL checkpoint — prove a crash (not a drain)
// still finds them.
func TestDDLOverHTTPSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(storeConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st.DB, Config{Checkpoint: st.Checkpoint})
	rec, out := postJSON(t, srv.Handler(), "/v1/tables",
		`{"name":"events","key":"seq","columns":[{"name":"seq","type":"int"},{"name":"kind","type":"string"}]}`)
	if rec.Code != 200 {
		t.Fatalf("create table: %d %v", rec.Code, out)
	}
	rec, out = postJSON(t, srv.Handler(), "/v1/txn",
		`{"ops":[{"op":"insert","table":"events","row":{"seq":1,"kind":"boot"}}]}`)
	if rec.Code != 200 {
		t.Fatalf("insert into new table: %d %v", rec.Code, out)
	}
	st.DB.Close() // crash

	st2, err := OpenStore(storeConfig(dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	tbl, ok := st2.DB.Table("events")
	if !ok {
		t.Fatal("DDL'd table lost in crash: post-DDL checkpoint did not take")
	}
	tx := st2.DB.Begin(lstore.ReadCommitted)
	row, found, err := tbl.Get(tx, 1, "kind")
	tx.Abort()
	if err != nil || !found || row["kind"].Str() != "boot" {
		t.Fatalf("row in DDL'd table lost: %v %v %v", row, found, err)
	}
}

// TestOverloadShedsWrites: when the merge backlog crosses the watermark,
// new transactions get 429 + Retry-After while queries keep flowing; once
// the merge catches up, writes are admitted again.
func TestOverloadShedsWrites(t *testing.T) {
	db := lstore.Open()
	// RangeSize 64 (one tail block) lets the 64 inserts fill — and seal —
	// the first range so the later Merge() can actually consume the backlog.
	const rows = 64
	tbl, err := db.CreateTable("kv", lstore.NewSchema("id",
		lstore.Column{Name: "id", Type: lstore.Int64},
		lstore.Column{Name: "v", Type: lstore.Int64},
	), lstore.TableOptions{DisableAutoMerge: true, RangeSize: rows})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{MaxMergeBacklog: rows, MaxWALFlushLag: -1})
	defer srv.Shutdown(context.Background()) //nolint:errcheck // teardown

	// Build a merge backlog the disabled merge will never drain.
	tx := db.Begin(lstore.ReadCommitted)
	for i := 1; i <= rows; i++ {
		if err := tbl.Insert(tx, lstore.Row{"id": lstore.Int(int64(i)), "v": lstore.Int(0)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = db.Begin(lstore.ReadCommitted)
	for i := 1; i <= rows; i++ {
		if err := tbl.Update(tx, int64(i), lstore.Row{"v": lstore.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if b := srv.mergeBacklog(); b <= rows {
		t.Fatalf("test setup: merge backlog %d, need > %d", b, rows)
	}

	rec, out := postJSON(t, srv.Handler(), "/v1/txn",
		`{"ops":[{"op":"insert","table":"kv","row":{"id":100,"v":1}}]}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overloaded txn: %d %v, want 429", rec.Code, out)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if srv.overloadShed.Load() == 0 {
		t.Fatal("overload shed not counted")
	}
	// Reads are not shed by write-path watermarks.
	rec, out = postJSON(t, srv.Handler(), "/v1/query", `{"table":"kv","aggregate":[{"op":"count"}]}`)
	if rec.Code != 200 {
		t.Fatalf("query during overload: %d %v, want 200", rec.Code, out)
	}

	tbl.Merge() // drain the backlog
	rec, out = postJSON(t, srv.Handler(), "/v1/txn",
		`{"ops":[{"op":"insert","table":"kv","row":{"id":100,"v":1}}]}`)
	if rec.Code != 200 {
		t.Fatalf("txn after merge caught up: %d %v, want 200", rec.Code, out)
	}
}

// TestQueueFullSheds: a full per-class queue sheds with 429 and recovers
// when a slot frees; the other class's queue is unaffected.
func TestQueueFullSheds(t *testing.T) {
	db := lstore.Open()
	if _, err := db.CreateTable("kv", lstore.NewSchema("id",
		lstore.Column{Name: "id", Type: lstore.Int64})); err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{TxnQueue: 1, MaxMergeBacklog: -1, MaxWALFlushLag: -1})
	defer srv.Shutdown(context.Background()) //nolint:errcheck // teardown

	if !srv.txnGate.tryAcquire() {
		t.Fatal("fresh gate refused a slot")
	}
	rec, out := postJSON(t, srv.Handler(), "/v1/txn",
		`{"ops":[{"op":"insert","table":"kv","row":{"id":1}}]}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("full queue: %d %v, want 429", rec.Code, out)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Queries ride their own queue.
	rec, _ = postJSON(t, srv.Handler(), "/v1/query", `{"table":"kv","aggregate":[{"op":"count"}]}`)
	if rec.Code != 200 {
		t.Fatalf("query while txn queue full: %d, want 200", rec.Code)
	}
	srv.txnGate.release()
	rec, _ = postJSON(t, srv.Handler(), "/v1/txn",
		`{"ops":[{"op":"insert","table":"kv","row":{"id":1}}]}`)
	if rec.Code != 200 {
		t.Fatalf("txn after slot freed: %d, want 200", rec.Code)
	}
	if got := srv.txnGate.shed.Load(); got != 1 {
		t.Fatalf("txn shed counter = %d, want 1", got)
	}
}

// TestOverloadUnderConcurrentLoad floods a tiny queue from many clients:
// some requests must be shed with 429, everything admitted must commit,
// and admitted+shed must account for every request.
func TestOverloadUnderConcurrentLoad(t *testing.T) {
	db := lstore.Open()
	if _, err := db.CreateTable("kv", lstore.NewSchema("id",
		lstore.Column{Name: "id", Type: lstore.Int64})); err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{TxnQueue: 2, MaxMergeBacklog: -1, MaxWALFlushLag: -1})
	defer srv.Shutdown(context.Background()) //nolint:errcheck // teardown

	const clients, perClient = 16, 20
	var ok200, shed429 atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				body := fmt.Sprintf(`{"ops":[{"op":"insert","table":"kv","row":{"id":%d}}]}`, c*perClient+i)
				req := httptest.NewRequest("POST", "/v1/txn", strings.NewReader(body))
				rec := httptest.NewRecorder()
				srv.Handler().ServeHTTP(rec, req)
				switch rec.Code {
				case 200:
					ok200.Add(1)
				case http.StatusTooManyRequests:
					shed429.Add(1)
				default:
					t.Errorf("unexpected status %d: %s", rec.Code, rec.Body.String())
					return
				}
			}
		}(c)
	}
	wg.Wait()
	total := ok200.Load() + shed429.Load()
	if total != clients*perClient {
		t.Fatalf("accounted %d of %d requests", total, clients*perClient)
	}
	if ok200.Load() == 0 {
		t.Fatal("everything was shed — queue never admitted")
	}
	if got := srv.txnGate.admitted.Load() + srv.txnGate.shed.Load(); got != uint64(clients*perClient) {
		t.Fatalf("gate accounting %d, want %d", got, clients*perClient)
	}
	// Every 200 really committed.
	tbl, _ := db.Table("kv")
	n, err := tbl.Query().Count()
	if err != nil || n != int64(ok200.Load()) {
		t.Fatalf("committed rows %d (err %v), want %d", n, err, ok200.Load())
	}
}

// TestDrainRefusesNewWork: a draining server answers 503 everywhere new
// work could enter, including health checks (so load balancers stop
// routing to it).
func TestDrainRefusesNewWork(t *testing.T) {
	db := lstore.Open()
	srv := New(db, Config{})
	srv.draining.Store(true)
	for _, probe := range []struct{ method, path, body string }{
		{"POST", "/v1/txn", `{"ops":[{"op":"insert","table":"kv","row":{"id":1}}]}`},
		{"POST", "/v1/query", `{"table":"kv"}`},
		{"POST", "/v1/tables", `{"name":"x","key":"id","columns":[{"name":"id","type":"int"}]}`},
		{"GET", "/healthz", ""},
	} {
		req := httptest.NewRequest(probe.method, probe.path, strings.NewReader(probe.body))
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s %s while draining: %d, want 503", probe.method, probe.path, rec.Code)
		}
	}
	db.Close()
}

// TestShutdownDrainTimeoutForcesClose: a client that never finishes its
// request outlasts the drain context; Shutdown must force the connection
// closed, confirm the request gates are idle, and still finish the full
// teardown (final checkpoint, DB close) instead of racing or hanging.
func TestShutdownDrainTimeoutForcesClose(t *testing.T) {
	db := lstore.Open()
	sink := &lstore.CheckpointBuffer{}
	srv := New(db, Config{Checkpoint: sink})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	// A slow client: the request never completes, so the connection stays
	// active and the graceful drain cannot finish.
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("POST /v1/txn HTTP/1.1\r\nHost: x\r\nContent-Length: 1000\r\n\r\n{")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	err = srv.Shutdown(ctx)
	if err == nil || !strings.Contains(err.Error(), "http drain") {
		t.Fatalf("Shutdown with a stuck client: err=%v, want http drain failure", err)
	}
	if <-serveDone != http.ErrServerClosed {
		t.Fatal("Serve did not return after forced close")
	}
	// The gates were idle (the stuck request was never admitted), so the
	// teardown must have completed: final checkpoint written, DB closed.
	if sink.Taken() != 1 {
		t.Fatalf("final checkpoint not written after forced close (taken=%d)", sink.Taken())
	}
	if _, err := db.CreateTable("late", lstore.NewSchema("id",
		lstore.Column{Name: "id", Type: lstore.Int64})); err == nil {
		t.Fatal("DB still open after forced-close shutdown completed")
	}
}

// TestShutdownStuckHandlerLeavesDBOpen: if requests are still executing
// after the forced close (simulated by a held gate slot — a handler stuck
// inside the engine), Shutdown must NOT close the DB under them: it
// reports the failure and leaves the store usable.
func TestShutdownStuckHandlerLeavesDBOpen(t *testing.T) {
	db := lstore.Open()
	tbl, err := db.CreateTable("kv", lstore.NewSchema("id",
		lstore.Column{Name: "id", Type: lstore.Int64}))
	if err != nil {
		t.Fatal(err)
	}
	sink := &lstore.CheckpointBuffer{}
	srv := New(db, Config{Checkpoint: sink})
	srv.forcedGrace = 50 * time.Millisecond
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck // shut down below

	conn, err := net.Dial("tcp", l.Addr().String()) // keeps the drain from finishing
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("POST /v1/txn HTTP/1.1\r\nHost: x\r\nContent-Length: 1000\r\n\r\n{")); err != nil {
		t.Fatal(err)
	}
	if !srv.txnGate.tryAcquire() { // the "stuck handler"
		t.Fatal("fresh gate refused a slot")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	err = srv.Shutdown(ctx)
	if err == nil || !strings.Contains(err.Error(), "still executing") {
		t.Fatalf("Shutdown with stuck handler: err=%v, want still-executing failure", err)
	}
	if sink.Taken() != 0 {
		t.Fatal("final checkpoint written while requests were still executing")
	}
	// The DB must still be live: the stuck handler's transaction can finish.
	tx := db.Begin(lstore.ReadCommitted)
	if err := tbl.Insert(tx, lstore.Row{"id": lstore.Int(1)}); err != nil {
		t.Fatalf("DB closed under a still-executing handler: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	srv.txnGate.release()
	db.Close()
}

// TestSessionsTracked: connections served through a real listener carry
// per-connection session state, reported by /v1/stats and cleaned up when
// connections close.
func TestSessionsTracked(t *testing.T) {
	db := lstore.Open()
	if _, err := db.CreateTable("kv", lstore.NewSchema("id",
		lstore.Column{Name: "id", Type: lstore.Int64})); err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck // closed by Shutdown below
	base := "http://" + l.Addr().String()

	client := &http.Client{} // keep-alives on: one conn, many requests
	for i := 0; i < 3; i++ {
		resp, err := client.Post(base+"/v1/query", "application/json",
			bytes.NewReader([]byte(`{"table":"kv","aggregate":[{"op":"count"}]}`)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		resp.Body.Close()
	}
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	json.NewDecoder(resp.Body).Decode(&stats) //nolint:errcheck // fields asserted below
	resp.Body.Close()
	if got := stats["sessions_active"].(float64); got < 1 {
		t.Fatalf("sessions_active = %v, want >= 1", got)
	}
	// Keep-alive means far fewer sessions than requests.
	if got := stats["sessions_total"].(float64); got > 3 {
		t.Fatalf("sessions_total = %v for 4 keep-alive requests, want <= 3", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// ConnState(StateClosed) fires on the connection goroutine, which may
	// trail Shutdown's return by a beat.
	deadline := time.Now().Add(2 * time.Second)
	for {
		active, _ := srv.sessionCounts()
		if active == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sessions_active = %d after shutdown, want 0", active)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
