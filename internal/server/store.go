// Durable store open/recover for the serving layer.
//
// The subtlety this file exists for: Recover RE-LOGS everything it applies
// into the new WAL with fresh LSNs, so after a restart there are two LSN
// sequences in play — the pre-crash generation (old checkpoint + old log)
// and the new one. Mixing them is silently wrong: a checkpoint watermark
// from one generation filters a log tail from another into either double
// replay or dropped transactions. The protocol below makes generations
// explicit so a (checkpoint, tail) pair is only ever consumed when both
// sides are from the same generation:
//
//   - BOTH halves of a pair are named by generation: WAL files live at
//     <wal>.<generation>, checkpoint images at <ckpt>.<generation>, and a
//     generation file <wal>.gen (atomically replaced) names the generation
//     whose pair is authoritative. Tagging the image too is what makes the
//     protocol crash-safe: a single shared image path would be overwritten
//     by the startup checkpoint BEFORE the gen write commits the new pair,
//     so a crash in that window leaves the old generation's WAL tail paired
//     with a new-generation image whose watermark belongs to a different
//     LSN sequence — transactions already inside the image replay again.
//
//   - Startup reads gen G, deletes WAL files and checkpoint images of any
//     other generation (leftovers of crashed recoveries — G is
//     authoritative until the new pair is complete), recovers from
//     ckpt.G+wal.G into a FRESH wal.G+1, checkpoints into a FRESH
//     ckpt.G+1 (wal.G+1 truncated beneath its watermark), and only then
//     commits the new generation by writing G+1 to the gen file. A crash
//     anywhere before that write leaves the G pair untouched on disk —
//     the next startup removes the partial G+1 files and replays the
//     exact same recovery; a crash after it restarts from the complete
//     G+1 pair. The G pair's files are deleted only after the commit.
//
//   - While serving, the background checkpointer keeps replacing ckpt.G+1
//     with newer G+1-watermarked images and truncating wal.G+1 —
//     in-generation, always a valid pair. The checkpointer is started only
//     AFTER the generation commit (lstore.StartCheckpointer, not
//     WithCheckpointEvery at Open): a tick during recovery would overwrite
//     the image mid-rebuild with the same mixed-generation hazard.
package server

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"lstore"
)

// TableSpec declares one table for bootstrap of a fresh store. On restart
// the checkpoint image's recorded schema is authoritative; specs only add
// tables that do not exist yet.
type TableSpec struct {
	Name    string
	Key     string
	Columns []lstore.Column
	Indexes []string
}

// StoreConfig configures OpenStore.
type StoreConfig struct {
	// WALPath is the base path; generation files live at WALPath.<gen> and
	// the generation marker at WALPath.gen.
	WALPath string
	// CheckpointPath is the base path; generation images live at
	// CheckpointPath.<gen>, each atomically replaced in-generation.
	CheckpointPath string
	// CheckpointEvery runs the background checkpointer (0 = only explicit
	// checkpoints: after DDL and at drain).
	CheckpointEvery time.Duration
	// Tables bootstraps a fresh store (and adds missing tables on restart).
	Tables []TableSpec
	// NoGroupCommit selects a flush (and fsync) per commit.
	NoGroupCommit bool
}

// Store is an opened durable store: the DB plus the sinks and identity the
// serving layer needs for DDL/drain checkpoints.
type Store struct {
	DB         *lstore.DB
	Checkpoint *lstore.FileCheckpointSink // this generation's image sink
	Generation uint64                     // the committed recovery generation
	WALFile    string                     // active log: WALPath.<Generation>
	CkptFile   string                     // active image: CheckpointPath.<Generation>
	Recovered  lstore.RecoverStats        // what startup recovery replayed
}

// OpenStore opens (creating if absent) the store rooted at cfg.WALPath /
// cfg.CheckpointPath, recovering any previous state. On return the store
// is fully durable again: schema and data are covered by a fresh
// checkpoint plus the (truncated) new log, and the old generation's files
// are gone.
func OpenStore(cfg StoreConfig) (*Store, error) {
	if cfg.WALPath == "" || cfg.CheckpointPath == "" {
		return nil, fmt.Errorf("server: OpenStore needs both a WAL path and a checkpoint path")
	}
	gen, err := readGeneration(cfg.WALPath)
	if err != nil {
		return nil, err
	}
	if err := removeStaleGenFiles(cfg.WALPath, gen); err != nil {
		return nil, err
	}
	if err := removeStaleGenFiles(cfg.CheckpointPath, gen); err != nil {
		return nil, err
	}
	if _, err := os.Stat(cfg.CheckpointPath); err == nil {
		// A bare, generation-less image cannot be paired with any log;
		// loading it could silently drop or double-replay a tail.
		return nil, fmt.Errorf("server: unpaired checkpoint image at %s (images live at %s.<generation>) — refusing to guess",
			cfg.CheckpointPath, cfg.CheckpointPath)
	}

	// Recovery sources: generation gen's pair. A missing WAL file is fine
	// (a drain checkpoint may have truncated it to nothing); a missing or
	// torn image is not — wal.gen holds only the tail above the image's
	// watermark, so without the image the pair cannot rebuild the store.
	var tail []byte
	var ckptReader io.Reader
	var prevSink *lstore.FileCheckpointSink
	haveCkpt := false
	if gen > 0 {
		b, err := os.ReadFile(walGenPath(cfg.WALPath, gen))
		if err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("server: read WAL generation %d: %w", gen, err)
		}
		tail = b
		prevSink, err = lstore.NewFileCheckpointSink(ckptGenPath(cfg.CheckpointPath, gen))
		if err != nil {
			return nil, err
		}
		ckptReader, _, haveCkpt = prevSink.Latest()
		if !haveCkpt {
			return nil, fmt.Errorf("server: generation file names %d but no complete image at %s — refusing a partial recovery",
				gen, ckptGenPath(cfg.CheckpointPath, gen))
		}
	}

	newGen := gen + 1
	ckptSink, err := lstore.NewFileCheckpointSink(ckptGenPath(cfg.CheckpointPath, newGen))
	if err != nil {
		return nil, err
	}
	walSink, err := lstore.OpenWALFile(walGenPath(cfg.WALPath, newGen))
	if err != nil {
		return nil, err
	}
	opts := []lstore.Option{lstore.WithWAL(walSink, nil)}
	if cfg.NoGroupCommit {
		opts = append(opts, lstore.WithoutGroupCommit())
	}
	db := lstore.Open(opts...)
	fail := func(err error) (*Store, error) {
		db.Close()
		// Next startup would remove these as stale anyway; gen is untouched.
		os.Remove(walGenPath(cfg.WALPath, newGen))         //nolint:errcheck // best-effort cleanup
		os.Remove(ckptGenPath(cfg.CheckpointPath, newGen)) //nolint:errcheck // best-effort cleanup
		return nil, err
	}

	// Schema first: Recover replays into tables that must already exist,
	// with the same ids (creation order). The image records the schema;
	// table creation is not WAL-logged.
	if haveCkpt {
		schemaReader, _, ok := prevSink.Latest()
		if !ok {
			return fail(fmt.Errorf("server: checkpoint disappeared during open"))
		}
		decls, err := lstore.CheckpointSchema(schemaReader)
		if err != nil {
			return fail(fmt.Errorf("server: checkpoint schema: %w", err))
		}
		for _, d := range decls {
			if _, err := db.CreateTable(d.Name, d.Schema(), lstore.TableOptions{SecondaryIndexes: d.SecondaryIndexes}); err != nil {
				return fail(fmt.Errorf("server: recreate table %q: %w", d.Name, err))
			}
		}
	}
	st := &Store{
		DB:         db,
		Checkpoint: ckptSink,
		Generation: newGen,
		WALFile:    walGenPath(cfg.WALPath, newGen),
		CkptFile:   ckptGenPath(cfg.CheckpointPath, newGen),
	}
	if haveCkpt || len(tail) > 0 {
		var tailReader io.Reader
		if len(tail) > 0 {
			tailReader = bytes.NewReader(tail)
		}
		if !haveCkpt {
			ckptReader = nil
		}
		stats, err := lstore.Recover(db, ckptReader, tailReader)
		if err != nil {
			return fail(fmt.Errorf("server: recover generation %d: %w", gen, err))
		}
		st.Recovered = stats
	}
	// Bootstrap tables the image does not know about (fresh store, or new
	// specs added across a restart). After Recover: their ids must come
	// after every replayed table's.
	for _, spec := range cfg.Tables {
		if _, ok := db.Table(spec.Name); ok {
			continue
		}
		if _, err := db.CreateTable(spec.Name, lstore.NewSchema(spec.Key, spec.Columns...),
			lstore.TableOptions{SecondaryIndexes: spec.Indexes}); err != nil {
			return fail(fmt.Errorf("server: create table %q: %w", spec.Name, err))
		}
	}

	// Complete the new generation's pair (image at ckpt.newGen with a
	// newGen watermark; wal.newGen truncated beneath it), then commit the
	// generation switch. The gen write is the commit point: until it lands,
	// the G pair is untouched on disk and a crash replays from it; after
	// it, the complete newGen pair is authoritative and the G files are
	// deleted (best-effort — a later startup removes them as stale).
	if _, err := db.CheckpointTo(ckptSink); err != nil {
		return fail(fmt.Errorf("server: startup checkpoint: %w", err))
	}
	if err := writeGeneration(cfg.WALPath, newGen); err != nil {
		return fail(err)
	}
	if gen > 0 {
		os.Remove(walGenPath(cfg.WALPath, gen))         //nolint:errcheck // best-effort; next startup removes it as stale
		os.Remove(ckptGenPath(cfg.CheckpointPath, gen)) //nolint:errcheck // best-effort; next startup removes it as stale
	}
	// Only now — with the newGen pair committed — may background
	// checkpoints start replacing the image (always in-generation). Not
	// fail() on error: the newGen pair is committed and must survive.
	if cfg.CheckpointEvery > 0 {
		if err := db.StartCheckpointer(cfg.CheckpointEvery, ckptSink); err != nil {
			db.Close()
			return nil, err
		}
	}
	return st, nil
}

// Close stops background work and closes the DB (without a final
// checkpoint — Server.Shutdown does the drain sequence).
func (st *Store) Close() { st.DB.Close() }

// ---------------------------------------------------------------------------
// Generation bookkeeping

func genPath(walPath string) string { return walPath + ".gen" }

func walGenPath(walPath string, gen uint64) string {
	return fmt.Sprintf("%s.%06d", walPath, gen)
}

func ckptGenPath(ckptPath string, gen uint64) string {
	return fmt.Sprintf("%s.%06d", ckptPath, gen)
}

func readGeneration(walPath string) (uint64, error) {
	b, err := os.ReadFile(genPath(walPath))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("server: read generation file: %w", err)
	}
	gen, perr := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
	if perr != nil || gen == 0 {
		return 0, fmt.Errorf("server: generation file %s is corrupt (%q)", genPath(walPath), b)
	}
	return gen, nil
}

// writeGeneration atomically replaces the generation marker: temp file,
// fsync, rename, directory fsync — the same discipline as the checkpoint
// image, because this write is what commits a recovery.
func writeGeneration(walPath string, gen uint64) error {
	path := genPath(walPath)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("server: write generation file: %w", err)
	}
	if _, err := fmt.Fprintf(f, "%d\n", gen); err != nil {
		f.Close()
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup of a failed write
		return fmt.Errorf("server: write generation file: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup of a failed write
		return fmt.Errorf("server: sync generation file: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup of a failed write
		return fmt.Errorf("server: close generation file: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup of a failed write
		return fmt.Errorf("server: commit generation file: %w", err)
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()  //nolint:errcheck // best-effort; rename itself is atomic
		d.Close() //nolint:errcheck // read-only handle
	}
	return nil
}

// removeStaleGenFiles deletes generation-suffixed files (base.<NNNNNN> —
// WAL logs or checkpoint images) of generations other than gen: newer ones
// are partial halves of recoveries that crashed before committing their
// generation, older ones are superseded.
func removeStaleGenFiles(base string, gen uint64) error {
	matches, err := filepath.Glob(base + ".*")
	if err != nil {
		return err
	}
	for _, m := range matches {
		suffix := strings.TrimPrefix(m, base+".")
		g, perr := strconv.ParseUint(suffix, 10, 64)
		if perr != nil {
			continue // .gen, .tmp droppings — not a generation file
		}
		if g == gen {
			continue
		}
		if err := os.Remove(m); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("server: remove stale %s: %w", m, err)
		}
	}
	return nil
}
