// Package server exposes an lstore.DB over HTTP/JSON — the serving layer
// of the engine: a transaction endpoint (POST /v1/txn, a batch of
// operations committed atomically), a query endpoint (POST /v1/query, the
// Query builder on the wire), DDL (POST /v1/tables), and introspection
// (GET /v1/tables, GET /v1/stats, GET /healthz).
//
// The layer's job is not just translation; it is the engine's contact
// point with load it does not control, so it owns ADMISSION: request
// concurrency is bounded by per-class queues (transactions and queries
// separately — analytics must not starve commits and vice versa), and when
// the engine's own gauges say it is falling behind — summed merge backlog
// across tables, or WAL flush lag — new transactions are shed with 429 and
// a Retry-After hint instead of being queued into a collapse. Shedding
// reads the same gauges lstore-inspect prints; there is no separate
// bookkeeping to drift out of sync.
//
// Shutdown is a DRAIN, not a stop: Shutdown flips the server into
// draining (healthz goes 503, new requests are refused), waits for
// in-flight requests, flushes the WAL, writes a final checkpoint, and
// closes the DB — so a SIGTERM'd server restarts from a checkpoint plus an
// empty log tail.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"lstore"
)

// Config tunes admission control and shutdown behavior. The zero value
// gets sensible defaults; negative watermarks disable that shed trigger.
type Config struct {
	// TxnQueue / QueryQueue bound the number of in-flight requests per
	// class (admitted and executing, including those blocked on engine
	// locks). A full queue sheds with 429. Defaults: 64 each.
	TxnQueue   int
	QueryQueue int

	// MaxMergeBacklog sheds new transactions when the summed merge backlog
	// across all tables (tail records not yet consolidated by the merge)
	// exceeds it — writers have outrun the merge and the scan path is
	// degrading. Default 1<<16; negative disables.
	MaxMergeBacklog int64

	// MaxWALFlushLag sheds new transactions when LastLSN-FlushedLSN (log
	// records appended but not yet durable) exceeds it — commits are
	// outrunning the device. Default 1<<16; negative disables.
	MaxWALFlushLag int64

	// RetryAfter is the hint sent with 429 responses. Default 1s.
	RetryAfter time.Duration

	// Checkpoint, when non-nil, receives a checkpoint after every DDL
	// (table creation is not WAL-logged — the image is what makes it
	// durable) and the final checkpoint written by Shutdown.
	Checkpoint lstore.CheckpointSink
}

func (c Config) withDefaults() Config {
	if c.TxnQueue == 0 {
		c.TxnQueue = 64
	}
	if c.QueryQueue == 0 {
		c.QueryQueue = 64
	}
	if c.MaxMergeBacklog == 0 {
		c.MaxMergeBacklog = 1 << 16
	}
	if c.MaxWALFlushLag == 0 {
		c.MaxWALFlushLag = 1 << 16
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server serves one DB. Build with New, run with Serve, stop with
// Shutdown (which drains and closes the DB).
type Server struct {
	db   *lstore.DB
	cfg  Config
	hs   *http.Server
	mux  *http.ServeMux
	born time.Time

	txnGate   *gate
	queryGate *gate
	draining  atomic.Bool
	// forcedGrace bounds the wait for in-flight requests to finish after a
	// drain timeout forced the connections closed (tests shrink it).
	forcedGrace time.Duration
	// overloadShed counts transactions refused by the watermark check
	// (queue sheds are counted by their gate).
	overloadShed atomic.Uint64

	// ddlMu serializes DDL requests: CreateTable itself is safe, but the
	// create+checkpoint pair must not interleave with another DDL's pair.
	ddlMu sync.Mutex

	sessMu     sync.Mutex
	sessions   map[net.Conn]*session // guarded by sessMu
	sessionSeq uint64                // guarded by sessMu
	sessTotal  uint64                // guarded by sessMu
}

// New builds a server over db. The caller keeps ownership of db until
// Shutdown, which closes it.
func New(db *lstore.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		db:          db,
		cfg:         cfg,
		born:        time.Now(),
		txnGate:     newGate(cfg.TxnQueue),
		queryGate:   newGate(cfg.QueryQueue),
		forcedGrace: 5 * time.Second,
		sessions:    make(map[net.Conn]*session),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/txn", s.handleTxn)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/tables", s.handleCreateTable)
	s.mux.HandleFunc("GET /v1/tables", s.handleListTables)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.hs = &http.Server{
		Handler:     s.mux,
		ConnContext: s.connContext,
		ConnState:   s.connState,
	}
	return s
}

// Handler returns the route table (for in-process tests that bypass the
// listener). Sessions only exist for connections served through Serve.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown; it returns
// http.ErrServerClosed after a clean drain, like net/http.
func (s *Server) Serve(l net.Listener) error { return s.hs.Serve(l) }

// Shutdown drains and closes everything, in dependency order: stop
// admitting (healthz 503, requests refused), wait for in-flight requests
// (bounded by ctx), force the WAL durable, write the final checkpoint so
// restart is image + empty tail, and close the DB. Safe to call once.
//
// A drain timeout (ctx expired with requests still in flight — e.g. a slow
// client outlasting -drain-timeout) must NOT fall through to db.Close:
// handlers may still be executing transactions and scans, and closing every
// table store under them races live requests against closed stores. The
// timeout path instead force-closes the connections (hs.Close) and waits —
// bounded by forcedGrace — for both request gates to empty. If handlers are
// still inside the engine after that, the DB is left open and the error
// says so: an unclosed process that exits restarts from the WAL like a
// crash, which is strictly safer than corrupting this one.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	var errs []error
	if err := s.hs.Shutdown(ctx); err != nil {
		errs = append(errs, fmt.Errorf("http drain: %w", err))
		if cerr := s.hs.Close(); cerr != nil {
			errs = append(errs, fmt.Errorf("http close: %w", cerr))
		}
		if !s.awaitIdle(s.forcedGrace) {
			if err := s.db.FlushWAL(); err != nil {
				errs = append(errs, fmt.Errorf("final WAL flush: %w", err))
			}
			errs = append(errs, fmt.Errorf(
				"%d transactions and %d queries still executing after forced close; DB left open, no final checkpoint",
				s.txnGate.depth(), s.queryGate.depth()))
			return errors.Join(errs...)
		}
	}
	if err := s.db.FlushWAL(); err != nil {
		errs = append(errs, fmt.Errorf("final WAL flush: %w", err))
	}
	if s.cfg.Checkpoint != nil {
		if _, err := s.db.CheckpointTo(s.cfg.Checkpoint); err != nil {
			errs = append(errs, fmt.Errorf("final checkpoint: %w", err))
		}
	}
	s.db.Close()
	return errors.Join(errs...)
}

// awaitIdle polls until both request gates report zero in-flight requests
// or grace expires. Handlers whose connections were force-closed finish
// quickly (their response writes fail); only a handler stuck inside the
// engine outlasts the grace.
func (s *Server) awaitIdle(grace time.Duration) bool {
	deadline := time.Now().Add(grace)
	for {
		if s.txnGate.depth() == 0 && s.queryGate.depth() == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// ---------------------------------------------------------------------------
// Sessions

// session is per-connection state: identity plus what the connection has
// done, attached to every request's context by ConnContext and reported in
// aggregate by /v1/stats.
type session struct {
	id      uint64
	remote  string
	txns    atomic.Uint64
	queries atomic.Uint64
}

type sessionKey struct{}

func (s *Server) connContext(ctx context.Context, c net.Conn) context.Context {
	sess := &session{remote: c.RemoteAddr().String()}
	s.sessMu.Lock()
	s.sessionSeq++
	s.sessTotal++
	sess.id = s.sessionSeq
	s.sessions[c] = sess
	s.sessMu.Unlock()
	return context.WithValue(ctx, sessionKey{}, sess)
}

func (s *Server) connState(c net.Conn, st http.ConnState) {
	if st != http.StateClosed && st != http.StateHijacked {
		return
	}
	s.sessMu.Lock()
	delete(s.sessions, c)
	s.sessMu.Unlock()
}

// sessionFrom returns the request's session; nil for handler-only tests
// that never went through a real connection.
func sessionFrom(ctx context.Context) *session {
	sess, _ := ctx.Value(sessionKey{}).(*session)
	return sess
}

func (s *Server) sessionCounts() (active int, total uint64) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return len(s.sessions), s.sessTotal
}
