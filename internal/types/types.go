// Package types holds the primitive vocabulary shared by every L-Store
// subsystem: record identifiers (RIDs), slot encodings, logical timestamps,
// transaction identifiers, schema descriptions and typed values.
//
// All storage slots are uint64. The special value NullSlot is the implicit
// null (the paper's ∅) that tail pages pre-assign to columns that were not
// updated. Strings are dictionary-encoded into slots by the schema layer.
package types

import (
	"fmt"
	"math"
)

// RID is a record identifier. Base records and tail records draw RIDs from
// the same key space (the paper's "common holistic form") but from disjoint,
// individually monotone sub-ranges so that a RID alone reveals whether it
// names a base or a tail record and so that tail RIDs can be compared
// against a page's TPS watermark.
type RID uint64

const (
	// InvalidRID is the zero RID; it never names a record. An Indirection
	// slot holding InvalidRID is the paper's ⊥ (record never updated).
	InvalidRID RID = 0

	// TailRIDBase is the first tail RID. Base RIDs live in [1, TailRIDBase);
	// tail RIDs ascend from TailRIDBase. The paper allocates tail RIDs
	// descending from 2^64; ascending allocation preserves the monotonicity
	// TPS relies on while keeping comparisons natural (see DESIGN.md).
	TailRIDBase RID = 1 << 40
)

// IsTail reports whether r names a tail record.
func (r RID) IsTail() bool { return r >= TailRIDBase }

// IsBase reports whether r names a base record.
func (r RID) IsBase() bool { return r != InvalidRID && r < TailRIDBase }

func (r RID) String() string {
	switch {
	case r == InvalidRID:
		return "rid(⊥)"
	case r.IsTail():
		return fmt.Sprintf("t%d", uint64(r-TailRIDBase))
	default:
		return fmt.Sprintf("b%d", uint64(r))
	}
}

// NullSlot is the slot representation of the implicit null value ∅.
const NullSlot uint64 = math.MaxUint64

// Timestamp is a logical commit timestamp drawn from the transaction
// manager's synchronized clock. The zero Timestamp precedes every commit.
type Timestamp = uint64

// TxnID identifies a transaction. Start Time slots may transiently hold a
// transaction ID instead of a commit timestamp (bit 63 set); readers resolve
// it through the transaction manager and lazily swap in the commit time.
type TxnID = uint64

// TxnIDFlag marks a Start Time slot as holding a TxnID rather than a commit
// timestamp.
const TxnIDFlag uint64 = 1 << 63

// IsTxnID reports whether a Start Time slot value holds a transaction ID.
func IsTxnID(slot uint64) bool { return slot != NullSlot && slot&TxnIDFlag != 0 }

// Indirection word layout: bit 63 is the write latch the OCC protocol uses
// for write-write conflict detection; the low 63 bits hold the RID of the
// newest tail version (or InvalidRID for never-updated records).
const (
	IndirectionLatchBit uint64 = 1 << 63
	IndirectionRIDMask  uint64 = IndirectionLatchBit - 1
)

// Schema-encoding word layout: bit i (i < MaxDataColumns) is set when data
// column i carries an explicit value in a tail record (or, on base records,
// when column i was ever updated). Two flag bits mirror the paper's
// annotations: SchemaSnapshotFlag is the asterisk marking pre-image records
// (records that hold the old values captured on first update) and
// SchemaDeleteFlag marks delete tombstones.
const (
	SchemaSnapshotFlag uint64 = 1 << 62
	SchemaDeleteFlag   uint64 = 1 << 61

	// MaxDataColumns bounds the number of data columns a table may declare so
	// that the schema-encoding bitmap and flag bits never collide.
	MaxDataColumns = 56
)

// ColType enumerates supported column types.
type ColType uint8

const (
	// Int64 columns store signed 64-bit integers (zigzag-mapped to slots so
	// that NullSlot never collides with a live value).
	Int64 ColType = iota
	// String columns store dictionary-encoded strings.
	String
)

func (t ColType) String() string {
	switch t {
	case Int64:
		return "int64"
	case String:
		return "string"
	default:
		return fmt.Sprintf("coltype(%d)", uint8(t))
	}
}

// ColumnDef describes one data column.
type ColumnDef struct {
	Name string
	Type ColType
}

// Schema describes a table: its data columns and which of them is the
// primary key. Meta-columns (Indirection, Schema Encoding, Start Time,
// Last Updated Time, Base RID) are implicit and managed by the engine.
type Schema struct {
	Cols []ColumnDef
	// Key is the index of the primary-key column inside Cols. The key column
	// must be Int64 and unique.
	Key int
}

// Validate checks structural soundness of the schema.
func (s Schema) Validate() error {
	if len(s.Cols) == 0 {
		return fmt.Errorf("types: schema has no columns")
	}
	if len(s.Cols) > MaxDataColumns {
		return fmt.Errorf("types: schema has %d columns; max is %d", len(s.Cols), MaxDataColumns)
	}
	if s.Key < 0 || s.Key >= len(s.Cols) {
		return fmt.Errorf("types: key index %d out of range [0,%d)", s.Key, len(s.Cols))
	}
	if s.Cols[s.Key].Type != Int64 {
		return fmt.Errorf("types: key column %q must be int64", s.Cols[s.Key].Name)
	}
	seen := make(map[string]struct{}, len(s.Cols))
	for i, c := range s.Cols {
		if c.Name == "" {
			return fmt.Errorf("types: column %d has empty name", i)
		}
		if _, dup := seen[c.Name]; dup {
			return fmt.Errorf("types: duplicate column name %q", c.Name)
		}
		seen[c.Name] = struct{}{}
	}
	return nil
}

// ColIndex returns the index of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// NumCols returns the number of data columns.
func (s Schema) NumCols() int { return len(s.Cols) }

// EncodeInt64 maps a signed integer into a slot, biased so that NullSlot is
// never produced by a live value.
func EncodeInt64(v int64) uint64 {
	u := uint64(v) + (1 << 63) // order-preserving bias
	if u == NullSlot {
		// math.MaxInt64 would collide with NullSlot; saturate one below. The
		// schema layer rejects math.MaxInt64 at the API boundary, so this is
		// defense in depth only.
		u--
	}
	return u
}

// DecodeInt64 inverts EncodeInt64.
func DecodeInt64(slot uint64) int64 { return int64(slot - (1 << 63)) }

// Value is a typed cell value crossing the public API boundary.
type Value struct {
	kind ColType
	null bool
	i64  int64
	str  string
}

// NullValue returns the typed null.
func NullValue() Value { return Value{null: true} }

// IntValue wraps an int64.
func IntValue(v int64) Value { return Value{kind: Int64, i64: v} }

// StringValue wraps a string.
func StringValue(s string) Value { return Value{kind: String, str: s} }

// IsNull reports whether v is null.
func (v Value) IsNull() bool { return v.null }

// Kind returns the value's column type (meaningless for nulls).
func (v Value) Kind() ColType { return v.kind }

// Int returns the int64 payload (0 for nulls or strings).
func (v Value) Int() int64 {
	if v.null || v.kind != Int64 {
		return 0
	}
	return v.i64
}

// Str returns the string payload ("" for nulls or ints).
func (v Value) Str() string {
	if v.null || v.kind != String {
		return ""
	}
	return v.str
}

func (v Value) String() string {
	if v.null {
		return "∅"
	}
	switch v.kind {
	case Int64:
		return fmt.Sprintf("%d", v.i64)
	case String:
		return fmt.Sprintf("%q", v.str)
	}
	return "?"
}

// Equal compares two values for equality (nulls equal only nulls).
func (v Value) Equal(o Value) bool {
	if v.null || o.null {
		return v.null == o.null
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case Int64:
		return v.i64 == o.i64
	case String:
		return v.str == o.str
	}
	return false
}
