package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRIDClassification(t *testing.T) {
	if InvalidRID.IsBase() || InvalidRID.IsTail() {
		t.Fatalf("InvalidRID must be neither base nor tail")
	}
	if !RID(1).IsBase() {
		t.Fatalf("RID 1 should be base")
	}
	if RID(TailRIDBase - 1).IsTail() {
		t.Fatalf("TailRIDBase-1 should not be tail")
	}
	if !TailRIDBase.IsTail() {
		t.Fatalf("TailRIDBase should be tail")
	}
	if TailRIDBase.IsBase() {
		t.Fatalf("TailRIDBase should not be base")
	}
}

func TestRIDString(t *testing.T) {
	if got := RID(7).String(); got != "b7" {
		t.Errorf("RID(7) = %q, want b7", got)
	}
	if got := (TailRIDBase + 3).String(); got != "t3" {
		t.Errorf("tail rid = %q, want t3", got)
	}
	if got := InvalidRID.String(); got != "rid(⊥)" {
		t.Errorf("invalid rid = %q", got)
	}
}

func TestInt64EncodingRoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 42, -42, math.MinInt64, math.MaxInt64 - 1}
	for _, v := range cases {
		slot := EncodeInt64(v)
		if slot == NullSlot {
			t.Errorf("EncodeInt64(%d) produced NullSlot", v)
		}
		if got := DecodeInt64(slot); got != v {
			t.Errorf("roundtrip(%d) = %d", v, got)
		}
	}
}

func TestInt64EncodingOrderPreserving(t *testing.T) {
	f := func(a, b int64) bool {
		if a == math.MaxInt64 || b == math.MaxInt64 {
			return true // excluded at API boundary
		}
		ea, eb := EncodeInt64(a), EncodeInt64(b)
		return (a < b) == (ea < eb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt64EncodingNeverNull(t *testing.T) {
	f := func(v int64) bool { return EncodeInt64(v) != NullSlot }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTxnIDFlag(t *testing.T) {
	if IsTxnID(12345) {
		t.Errorf("plain timestamp misread as txn id")
	}
	if !IsTxnID(TxnIDFlag | 7) {
		t.Errorf("txn id not recognized")
	}
	if IsTxnID(NullSlot) {
		t.Errorf("NullSlot must not be a txn id")
	}
}

func TestSchemaValidate(t *testing.T) {
	good := Schema{Cols: []ColumnDef{{"k", Int64}, {"a", Int64}, {"s", String}}, Key: 0}
	if err := good.Validate(); err != nil {
		t.Fatalf("good schema rejected: %v", err)
	}
	bad := []Schema{
		{},
		{Cols: []ColumnDef{{"k", Int64}}, Key: 5},
		{Cols: []ColumnDef{{"k", String}}, Key: 0},
		{Cols: []ColumnDef{{"k", Int64}, {"k", Int64}}, Key: 0},
		{Cols: []ColumnDef{{"", Int64}}, Key: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schema %d accepted", i)
		}
	}
	// Too many columns.
	many := Schema{Key: 0}
	for i := 0; i < MaxDataColumns+1; i++ {
		many.Cols = append(many.Cols, ColumnDef{Name: string(rune('a'+i%26)) + string(rune('0'+i/26)), Type: Int64})
	}
	if err := many.Validate(); err == nil {
		t.Errorf("over-wide schema accepted")
	}
}

func TestSchemaColIndex(t *testing.T) {
	s := Schema{Cols: []ColumnDef{{"k", Int64}, {"amount", Int64}}, Key: 0}
	if s.ColIndex("amount") != 1 {
		t.Errorf("ColIndex(amount) = %d", s.ColIndex("amount"))
	}
	if s.ColIndex("nope") != -1 {
		t.Errorf("ColIndex(nope) should be -1")
	}
	if s.NumCols() != 2 {
		t.Errorf("NumCols = %d", s.NumCols())
	}
}

func TestValues(t *testing.T) {
	n := NullValue()
	if !n.IsNull() || n.Int() != 0 || n.Str() != "" {
		t.Errorf("null value misbehaves: %v", n)
	}
	iv := IntValue(-9)
	if iv.IsNull() || iv.Int() != -9 || iv.Kind() != Int64 {
		t.Errorf("int value misbehaves: %v", iv)
	}
	sv := StringValue("hi")
	if sv.Str() != "hi" || sv.Kind() != String {
		t.Errorf("string value misbehaves: %v", sv)
	}
	if !iv.Equal(IntValue(-9)) || iv.Equal(IntValue(8)) || iv.Equal(sv) || iv.Equal(n) {
		t.Errorf("Equal misbehaves")
	}
	if !n.Equal(NullValue()) {
		t.Errorf("null != null")
	}
	if n.String() != "∅" || iv.String() != "-9" || sv.String() != `"hi"` {
		t.Errorf("String() outputs: %q %q %q", n.String(), iv.String(), sv.String())
	}
}

func TestSchemaFlagBitsDisjoint(t *testing.T) {
	if SchemaSnapshotFlag&SchemaDeleteFlag != 0 {
		t.Fatal("flag bits overlap")
	}
	colMask := uint64(1)<<MaxDataColumns - 1
	if colMask&(SchemaSnapshotFlag|SchemaDeleteFlag) != 0 {
		t.Fatal("column bits overlap flag bits")
	}
	if IndirectionLatchBit&IndirectionRIDMask != 0 {
		t.Fatal("latch bit overlaps RID mask")
	}
}
