// Package index provides L-Store's index structures. Per §3.1, indexes
// always point to base records (base RIDs) and never to tail records, which
// eliminates index maintenance on version creation: an update touches only
// the indexes of changed columns, and even those keep pointing at base RIDs.
// Readers landing on a base record via an index must re-evaluate the query
// predicate against the visible version (stale entries are legal; removal of
// old values is deferred until they fall outside every active snapshot).
//
// Primary is a unique key → base-RID map; Secondary is a value → base-RID
// multi-map with deferred deletion. Both are lock-striped hash structures:
// point lookups dominate the workloads of §6 and stripes keep writer
// contention bounded.
package index

import (
	"sync"

	"lstore/internal/types"
)

const stripeCount = 64

// Primary is the unique primary-key index.
type Primary struct {
	stripes [stripeCount]primaryStripe
}

type primaryStripe struct {
	mu sync.RWMutex
	m  map[uint64]types.RID // guarded by mu
}

// NewPrimary returns an empty primary index.
func NewPrimary() *Primary {
	p := &Primary{}
	for i := range p.stripes {
		p.stripes[i].m = make(map[uint64]types.RID)
	}
	return p
}

func (p *Primary) stripe(key uint64) *primaryStripe {
	return &p.stripes[hash64(key)%stripeCount]
}

// Get returns the base RID for key.
func (p *Primary) Get(key uint64) (types.RID, bool) {
	s := p.stripe(key)
	s.mu.RLock()
	r, ok := s.m[key]
	s.mu.RUnlock()
	return r, ok
}

// PutIfAbsent installs key → rid unless the key is present; it returns the
// winning RID and whether this call installed it. Uniqueness races between
// concurrent inserters resolve here.
func (p *Primary) PutIfAbsent(key uint64, rid types.RID) (types.RID, bool) {
	s := p.stripe(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.m[key]; ok {
		return cur, false
	}
	s.m[key] = rid
	return rid, true
}

// Replace swaps the RID stored for key if it currently equals old. Used for
// delete-then-reinsert of the same key.
func (p *Primary) Replace(key uint64, old, new types.RID) bool {
	s := p.stripe(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.m[key]; !ok || cur != old {
		return false
	}
	s.m[key] = new
	return true
}

// Delete removes the key (used only by recovery rebuilds; normal operation
// defers removal per §3.1 footnote 3).
func (p *Primary) Delete(key uint64) {
	s := p.stripe(key)
	s.mu.Lock()
	delete(s.m, key)
	s.mu.Unlock()
}

// Len returns the number of entries.
func (p *Primary) Len() int {
	n := 0
	for i := range p.stripes {
		s := &p.stripes[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Range calls fn for every (key, rid) pair until fn returns false. The
// iteration holds one stripe lock at a time; entries added or removed during
// iteration may or may not be observed.
func (p *Primary) Range(fn func(key uint64, rid types.RID) bool) {
	for i := range p.stripes {
		s := &p.stripes[i]
		s.mu.RLock()
		for k, r := range s.m {
			if !fn(k, r) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

// ---------------------------------------------------------------------------

// Secondary is a non-unique value → base-RID multi-map. Updating column C of
// record b from v to v' adds (v', b); the old entry (v, b) stays until
// CleanupValue is invoked once the change falls outside all active
// snapshots, so index readers must re-check predicates (§3.1).
type Secondary struct {
	stripes [stripeCount]secondaryStripe
}

type secondaryStripe struct {
	mu sync.RWMutex
	m  map[uint64][]types.RID // guarded by mu
}

// NewSecondary returns an empty secondary index.
func NewSecondary() *Secondary {
	s := &Secondary{}
	for i := range s.stripes {
		s.stripes[i].m = make(map[uint64][]types.RID)
	}
	return s
}

func (s *Secondary) stripe(v uint64) *secondaryStripe {
	return &s.stripes[hash64(v)%stripeCount]
}

// Add appends (value, rid) unless the exact pair is already present.
func (s *Secondary) Add(value uint64, rid types.RID) {
	st := s.stripe(value)
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, r := range st.m[value] {
		if r == rid {
			return
		}
	}
	st.m[value] = append(st.m[value], rid)
}

// LookupAppend appends the base RIDs whose (possibly stale) entry matches
// value to dst and returns the extended slice. The copy happens under the
// stripe read lock, so callers may retain and reuse dst freely — hot probe
// loops pass a recycled buffer and allocate nothing per probe.
func (s *Secondary) LookupAppend(dst []types.RID, value uint64) []types.RID {
	st := s.stripe(value)
	st.mu.RLock()
	dst = append(dst, st.m[value]...)
	st.mu.RUnlock()
	return dst
}

// Lookup returns a copy of the base RIDs whose (possibly stale) entry
// matches value.
func (s *Secondary) Lookup(value uint64) []types.RID {
	return s.LookupAppend(make([]types.RID, 0, 4), value)
}

// Remove deletes the exact (value, rid) pair; used by the deferred cleanup
// pass once the old value left every active snapshot.
func (s *Secondary) Remove(value uint64, rid types.RID) {
	st := s.stripe(value)
	st.mu.Lock()
	defer st.mu.Unlock()
	rids := st.m[value]
	for i, r := range rids {
		if r == rid {
			rids[i] = rids[len(rids)-1]
			rids = rids[:len(rids)-1]
			if len(rids) == 0 {
				delete(st.m, value)
			} else {
				st.m[value] = rids
			}
			return
		}
	}
}

// Entries returns the total number of (value, rid) pairs (introspection).
func (s *Secondary) Entries() int {
	n := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for _, rids := range st.m {
			n += len(rids)
		}
		st.mu.RUnlock()
	}
	return n
}

// hash64 is splitmix64's finalizer — cheap and well distributed for both
// sequential keys and encoded values.
func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
