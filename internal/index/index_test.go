package index

import (
	"sync"
	"testing"

	"lstore/internal/types"
)

func TestPrimaryBasic(t *testing.T) {
	p := NewPrimary()
	if _, ok := p.Get(5); ok {
		t.Fatal("empty index returned a hit")
	}
	if rid, installed := p.PutIfAbsent(5, 100); !installed || rid != 100 {
		t.Fatalf("PutIfAbsent = (%v,%v)", rid, installed)
	}
	if rid, installed := p.PutIfAbsent(5, 200); installed || rid != 100 {
		t.Fatalf("duplicate PutIfAbsent = (%v,%v)", rid, installed)
	}
	if rid, ok := p.Get(5); !ok || rid != 100 {
		t.Fatalf("Get = (%v,%v)", rid, ok)
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestPrimaryReplace(t *testing.T) {
	p := NewPrimary()
	p.PutIfAbsent(1, 10)
	if p.Replace(1, 99, 20) {
		t.Fatal("Replace with wrong old succeeded")
	}
	if !p.Replace(1, 10, 20) {
		t.Fatal("Replace failed")
	}
	if rid, _ := p.Get(1); rid != 20 {
		t.Fatalf("after replace rid = %v", rid)
	}
	if p.Replace(42, 0, 1) {
		t.Fatal("Replace on absent key succeeded")
	}
}

func TestPrimaryDeleteAndRange(t *testing.T) {
	p := NewPrimary()
	for k := uint64(0); k < 100; k++ {
		p.PutIfAbsent(k, types.RID(k+1))
	}
	p.Delete(50)
	if _, ok := p.Get(50); ok {
		t.Fatal("deleted key still present")
	}
	seen := 0
	p.Range(func(k uint64, r types.RID) bool {
		if r != types.RID(k+1) {
			t.Errorf("key %d has rid %v", k, r)
		}
		seen++
		return true
	})
	if seen != 99 {
		t.Fatalf("Range visited %d, want 99", seen)
	}
	// Early termination.
	n := 0
	p.Range(func(uint64, types.RID) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("Range did not stop early: %d", n)
	}
}

func TestPrimaryConcurrentUniqueness(t *testing.T) {
	p := NewPrimary()
	const keys = 500
	var wg sync.WaitGroup
	wins := make([][]uint64, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := uint64(0); k < keys; k++ {
				if _, installed := p.PutIfAbsent(k, types.RID(uint64(w)*keys+k+1)); installed {
					wins[w] = append(wins[w], k)
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, ws := range wins {
		total += len(ws)
	}
	if total != keys {
		t.Fatalf("%d installs for %d keys: uniqueness violated", total, keys)
	}
	if p.Len() != keys {
		t.Fatalf("Len = %d, want %d", p.Len(), keys)
	}
}

func TestSecondaryBasic(t *testing.T) {
	s := NewSecondary()
	s.Add(7, 1)
	s.Add(7, 2)
	s.Add(7, 1) // duplicate pair ignored
	s.Add(9, 3)
	if got := s.Lookup(7); len(got) != 2 {
		t.Fatalf("Lookup(7) = %v", got)
	}
	if got := s.Lookup(404); len(got) != 0 {
		t.Fatalf("Lookup(404) = %v", got)
	}
	if s.Entries() != 3 {
		t.Fatalf("Entries = %d", s.Entries())
	}
}

func TestSecondaryDeferredRemove(t *testing.T) {
	s := NewSecondary()
	// Record b2's column C changes c2 → c21: new entry added, old kept.
	s.Add(2, 2) // (c2, b2)
	s.Add(21, 2)
	if len(s.Lookup(2)) != 1 || len(s.Lookup(21)) != 1 {
		t.Fatal("both old and new entries must be present before cleanup")
	}
	// Deferred cleanup once outside all snapshots.
	s.Remove(2, 2)
	if len(s.Lookup(2)) != 0 {
		t.Fatal("old entry survived cleanup")
	}
	if len(s.Lookup(21)) != 1 {
		t.Fatal("new entry removed by cleanup")
	}
	s.Remove(2, 2) // idempotent
}

func TestSecondaryLookupIsCopy(t *testing.T) {
	s := NewSecondary()
	s.Add(1, 10)
	got := s.Lookup(1)
	got[0] = 999
	if s.Lookup(1)[0] != 10 {
		t.Fatal("Lookup returned aliased storage")
	}
}

func TestSecondaryConcurrent(t *testing.T) {
	s := NewSecondary()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Add(uint64(i%10), types.RID(uint64(w)*1000+uint64(i)+1))
				s.Lookup(uint64(i % 10))
			}
		}(w)
	}
	wg.Wait()
	if s.Entries() != 8*200 {
		t.Fatalf("Entries = %d, want %d", s.Entries(), 8*200)
	}
}

func TestSecondaryLookupAppendReusesBuffer(t *testing.T) {
	s := NewSecondary()
	s.Add(1, 10)
	s.Add(1, 11)
	s.Add(2, 20)

	buf := make([]types.RID, 0, 8)
	got := s.LookupAppend(buf, 1)
	if len(got) != 2 || got[0] != 10 || got[1] != 11 {
		t.Fatalf("LookupAppend(1) = %v", got)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("LookupAppend did not reuse the caller's buffer")
	}
	// Recycled probe loop: truncate and reuse, no per-probe allocation.
	got = s.LookupAppend(got[:0], 2)
	if len(got) != 1 || got[0] != 20 {
		t.Fatalf("LookupAppend(2) = %v", got)
	}
	if got = s.LookupAppend(got[:0], 99); len(got) != 0 {
		t.Fatalf("LookupAppend(miss) = %v", got)
	}
	// Appending onto existing content preserves the prefix.
	got = s.LookupAppend([]types.RID{7}, 1)
	if len(got) != 3 || got[0] != 7 {
		t.Fatalf("LookupAppend with prefix = %v", got)
	}
}
