package page

import (
	"encoding/binary"
	"fmt"

	"lstore/internal/compress"
	"lstore/internal/types"
)

// Encoded-form serialization: unlike Marshal (which flattens to raw slots),
// MarshalEncoded writes the page's compressed representation verbatim, so a
// checkpoint carries merged base pages at their in-memory size and restore
// installs them without a decode/re-encode round-trip.
//
// Layout (little-endian, uvarint where noted):
//
//	byte    kind
//	uvarint n (slot count)
//	payload per kind:
//	  raw:    n × 8-byte slots
//	  packed: 8-byte min, uvarint width, byte hasNulls,
//	          ceil(n*width/64) × 8-byte code words,
//	          [ceil(n/64) × 8-byte null words when hasNulls]
//	  dict:   uvarint dictSize, dictSize × 8-byte values,
//	          uvarint width, ceil(n*width/64) × 8-byte code words
//	  rle:    uvarint runCount, runCount × (8-byte value, uvarint count)
//
// UnmarshalEncoded validates structure exhaustively (exact lengths, width
// bounds, code range, run-count accounting, no trailing bytes): a torn or
// bit-flipped frame that somehow passes the outer CRC still fails loudly
// instead of installing a malformed page.

// maxEncodedSlots bounds n during deserialization (way above any real
// RangeSize; rejects garbage lengths before any allocation).
const maxEncodedSlots = 1 << 24

// MarshalEncoded serializes p in its encoded form.
func MarshalEncoded(p Reader) []byte {
	switch t := p.(type) {
	case *RawPage:
		buf := make([]byte, 0, 2+9+8*len(t.slots))
		buf = append(buf, byte(KindRaw))
		buf = binary.AppendUvarint(buf, uint64(len(t.slots)))
		return appendWords(buf, t.slots)
	case *PackedPage:
		buf := make([]byte, 0, 2+9+8+8*(len(t.words)+len(t.nulls)))
		buf = append(buf, byte(KindPacked))
		buf = binary.AppendUvarint(buf, uint64(t.n))
		buf = binary.LittleEndian.AppendUint64(buf, t.min)
		buf = binary.AppendUvarint(buf, uint64(t.width))
		if t.nulls != nil {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = appendWords(buf, t.words)
		return appendWords(buf, t.nulls)
	case *DictPage:
		vals := t.dict.Values()
		buf := make([]byte, 0, 2+9+8*(len(vals)+len(t.words)))
		buf = append(buf, byte(KindDict))
		buf = binary.AppendUvarint(buf, uint64(t.n))
		buf = binary.AppendUvarint(buf, uint64(len(vals)))
		buf = appendWords(buf, vals)
		buf = binary.AppendUvarint(buf, uint64(t.width))
		return appendWords(buf, t.words)
	case *RLEPage:
		buf := make([]byte, 0, 2+9+10*len(t.runs))
		buf = append(buf, byte(KindRLE))
		buf = binary.AppendUvarint(buf, uint64(t.n))
		buf = binary.AppendUvarint(buf, uint64(len(t.runs)))
		for _, r := range t.runs {
			buf = binary.LittleEndian.AppendUint64(buf, r.Value)
			buf = binary.AppendUvarint(buf, uint64(r.Count))
		}
		return buf
	default:
		// Foreign Reader (row views never reach checkpoints, but stay total):
		// flatten to a raw image.
		n := p.Len()
		buf := make([]byte, 0, 2+9+8*n)
		buf = append(buf, byte(KindRaw))
		buf = binary.AppendUvarint(buf, uint64(n))
		for i := 0; i < n; i++ {
			buf = binary.LittleEndian.AppendUint64(buf, p.Get(i))
		}
		return buf
	}
}

func appendWords(buf []byte, words []uint64) []byte {
	for _, w := range words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// encCursor is a strict little parser for UnmarshalEncoded.
type encCursor struct {
	b   []byte
	off int
}

func (c *encCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("page: truncated encoded page")
	}
	c.off += n
	return v, nil
}

func (c *encCursor) u64() (uint64, error) {
	if c.off+8 > len(c.b) {
		return 0, fmt.Errorf("page: truncated encoded page")
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v, nil
}

func (c *encCursor) words(n int) ([]uint64, error) {
	if n < 0 || c.off+8*n > len(c.b) {
		return nil, fmt.Errorf("page: truncated encoded page: want %d words", n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(c.b[c.off:])
		c.off += 8
	}
	return out, nil
}

// UnmarshalEncoded parses a MarshalEncoded page, validating every structural
// invariant of the encoding before constructing the Reader.
func UnmarshalEncoded(b []byte) (Reader, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("page: truncated encoded page header")
	}
	c := &encCursor{b: b, off: 1}
	kind := Kind(b[0])
	nu, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if nu > maxEncodedSlots {
		return nil, fmt.Errorf("page: encoded page declares %d slots", nu)
	}
	n := int(nu)

	var p Reader
	switch kind {
	case KindRaw:
		slots, err := c.words(n)
		if err != nil {
			return nil, err
		}
		p = NewRaw(slots)
	case KindPacked:
		min, err := c.u64()
		if err != nil {
			return nil, err
		}
		wu, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if wu >= 64 {
			return nil, fmt.Errorf("page: packed width %d out of range", wu)
		}
		width := int(wu)
		if c.off >= len(c.b) {
			return nil, fmt.Errorf("page: truncated encoded page")
		}
		hasNulls := c.b[c.off]
		c.off++
		if hasNulls > 1 {
			return nil, fmt.Errorf("page: packed null flag %d", hasNulls)
		}
		words, err := c.words((n*width + 63) / 64)
		if err != nil {
			return nil, err
		}
		var nulls []uint64
		if hasNulls == 1 {
			if nulls, err = c.words((n + 63) / 64); err != nil {
				return nil, err
			}
		}
		// min + maxCode must not collide with ∅ (the encoder's frame keeps
		// non-null values below NullSlot; a forged min could alias it).
		if width > 0 && min > types.NullSlot-(1<<uint(width)-1) {
			return nil, fmt.Errorf("page: packed frame reaches the null sentinel")
		}
		if width == 0 && min == types.NullSlot {
			return nil, fmt.Errorf("page: packed frame reaches the null sentinel")
		}
		p = &PackedPage{min: min, width: width, n: n, words: words, nulls: nulls}
	case KindDict:
		du, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if du == 0 || du > nu {
			return nil, fmt.Errorf("page: dict size %d for %d slots", du, nu)
		}
		vals, err := c.words(int(du))
		if err != nil {
			return nil, err
		}
		wu, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		wantW := compress.BitWidth(du - 1)
		if wantW == 0 {
			wantW = 1
		}
		if int(wu) != wantW {
			return nil, fmt.Errorf("page: dict width %d, %d values need %d", wu, du, wantW)
		}
		width := int(wu)
		words, err := c.words((n*width + 63) / 64)
		if err != nil {
			return nil, err
		}
		// Every packed code must address the value table.
		for i := 0; i < n; i++ {
			if compress.UnpackBit(words, width, i) >= du {
				return nil, fmt.Errorf("page: dict code out of range at slot %d", i)
			}
		}
		p = &DictPage{dict: compress.DictFromValues(vals), width: width, n: n, words: words}
	case KindRLE:
		ru, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if ru > nu {
			return nil, fmt.Errorf("page: %d runs for %d slots", ru, nu)
		}
		runs := make([]compress.Run, ru)
		starts := make([]uint32, ru)
		total := uint64(0)
		for i := range runs {
			v, err := c.u64()
			if err != nil {
				return nil, err
			}
			cnt, err := c.uvarint()
			if err != nil {
				return nil, err
			}
			if cnt == 0 || cnt > uint64(^uint32(0)) {
				return nil, fmt.Errorf("page: run %d count %d", i, cnt)
			}
			starts[i] = uint32(total)
			total += cnt
			if total > nu {
				return nil, fmt.Errorf("page: runs cover %d of %d slots", total, nu)
			}
			runs[i] = compress.Run{Value: v, Count: uint32(cnt)}
		}
		if total != nu {
			return nil, fmt.Errorf("page: runs cover %d of %d slots", total, nu)
		}
		p = &RLEPage{runs: runs, starts: starts, n: n}
	default:
		return nil, fmt.Errorf("page: unknown encoding %d", b[0])
	}
	if c.off != len(b) {
		return nil, fmt.Errorf("page: %d trailing bytes after encoded page", len(b)-c.off)
	}
	return p, nil
}
