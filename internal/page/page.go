// Package page implements L-Store's two physical page families (§2.1):
//
//   - Base pages: read-only, compressed, columnar. They are produced whole
//     (by the merge process or by sealing an insert range), never mutated,
//     and eventually retired through epoch-based de-allocation. Several
//     encodings are provided (raw, frame-of-reference bit-packed,
//     dictionary, run-length); Encode picks the smallest.
//
//   - Tail pages: append-only, uncompressed, write-once. Slots are
//     pre-allocated (the paper pre-assigns the special null ∅) and each slot
//     is written at most once, via atomic stores so readers never observe
//     torn words. Tail pages are the only growing structure in the store.
//
// One page holds DefaultSlots 8-byte slots, matching the paper's 32 KB page
// size for both base and tail pages (§6.1).
package page

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"lstore/internal/compress"
	"lstore/internal/types"
)

// DefaultSlots is the number of 8-byte slots per page (32 KB pages).
const DefaultSlots = 4096

// Kind identifies a base-page encoding.
type Kind uint8

const (
	KindRaw Kind = iota
	KindPacked
	KindDict
	KindRLE
)

func (k Kind) String() string {
	switch k {
	case KindRaw:
		return "raw"
	case KindPacked:
		return "packed"
	case KindDict:
		return "dict"
	case KindRLE:
		return "rle"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Reader is the read interface shared by all base-page encodings.
type Reader interface {
	// Get returns the slot value at index i.
	Get(i int) uint64
	// Len returns the number of slots.
	Len() int
	// Kind returns the encoding.
	Kind() Kind
	// MemWords returns the approximate in-memory footprint in 8-byte words
	// (used by Encode to pick the cheapest representation and by the
	// benchmarks to report compression ratios).
	MemWords() int
}

// ---------------------------------------------------------------------------
// Raw

// RawPage stores slots verbatim.
type RawPage struct{ slots []uint64 }

// NewRaw wraps vals (not copied) as a raw page.
func NewRaw(vals []uint64) *RawPage { return &RawPage{slots: vals} }

func (p *RawPage) Get(i int) uint64 { return p.slots[i] }
func (p *RawPage) Len() int         { return len(p.slots) }
func (p *RawPage) Kind() Kind       { return KindRaw }
func (p *RawPage) MemWords() int    { return len(p.slots) }

// ---------------------------------------------------------------------------
// Frame-of-reference bit-packed

// PackedPage stores (value - min) in fixed-width bit fields. Nulls are
// tracked in a side bitmap because types.NullSlot would destroy the frame.
type PackedPage struct {
	min   uint64
	width int
	n     int
	words []uint64
	nulls []uint64 // 1 bit per slot; nil when no nulls
}

// NewPacked builds a frame-of-reference packed page, or returns nil when the
// input cannot be packed profitably (width 64).
func NewPacked(vals []uint64) *PackedPage {
	min := ^uint64(0)
	max := uint64(0)
	hasNull := false
	nonNull := 0
	for _, v := range vals {
		if v == types.NullSlot {
			hasNull = true
			continue
		}
		nonNull++
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if nonNull == 0 {
		min = 0
		max = 0
	}
	width := compress.BitWidth(max - min)
	if width >= 64 {
		return nil
	}
	shifted := make([]uint64, len(vals))
	var nulls []uint64
	if hasNull {
		nulls = make([]uint64, (len(vals)+63)/64)
	}
	for i, v := range vals {
		if v == types.NullSlot {
			nulls[i/64] |= 1 << uint(i%64)
			continue
		}
		shifted[i] = v - min
	}
	return &PackedPage{
		min:   min,
		width: width,
		n:     len(vals),
		words: compress.PackBits(shifted, width),
		nulls: nulls,
	}
}

func (p *PackedPage) Get(i int) uint64 {
	if p.nulls != nil && p.nulls[i/64]&(1<<uint(i%64)) != 0 {
		return types.NullSlot
	}
	return p.min + compress.UnpackBit(p.words, p.width, i)
}
func (p *PackedPage) Len() int      { return p.n }
func (p *PackedPage) Kind() Kind    { return KindPacked }
func (p *PackedPage) MemWords() int { return 2 + len(p.words) + len(p.nulls) }

// ---------------------------------------------------------------------------
// Dictionary

// DictPage dictionary-encodes low-cardinality columns; codes are bit-packed.
type DictPage struct {
	dict  *compress.Dict
	width int
	n     int
	words []uint64
}

// NewDict builds a dictionary page; returns nil when the dictionary would be
// as large as the data (no benefit).
func NewDict(vals []uint64) *DictPage {
	d, codes := compress.BuildDict(vals)
	if d.Size() >= len(vals) || d.Size() == 0 {
		return nil
	}
	width := compress.BitWidth(uint64(d.Size() - 1))
	if width == 0 {
		width = 1
	}
	c64 := make([]uint64, len(codes))
	for i, c := range codes {
		c64[i] = uint64(c)
	}
	return &DictPage{dict: d, width: width, n: len(vals), words: compress.PackBits(c64, width)}
}

func (p *DictPage) Get(i int) uint64 {
	return p.dict.Value(uint32(compress.UnpackBit(p.words, p.width, i)))
}
func (p *DictPage) Len() int      { return p.n }
func (p *DictPage) Kind() Kind    { return KindDict }
func (p *DictPage) MemWords() int { return 1 + p.dict.Size() + len(p.words) }

// ---------------------------------------------------------------------------
// Run-length

// RLEPage stores runs plus a sparse index of run start offsets for O(log R)
// point access.
type RLEPage struct {
	runs   []compress.Run
	starts []uint32
	n      int
}

// NewRLE builds an RLE page; returns nil when runs don't compress.
func NewRLE(vals []uint64) *RLEPage {
	runs := compress.RLEncode(vals)
	if len(runs)*2 >= len(vals) {
		return nil
	}
	starts := make([]uint32, len(runs))
	off := uint32(0)
	for i, r := range runs {
		starts[i] = off
		off += r.Count
	}
	return &RLEPage{runs: runs, starts: starts, n: len(vals)}
}

func (p *RLEPage) Get(i int) uint64 {
	lo, hi := 0, len(p.starts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.starts[mid] <= uint32(i) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return p.runs[lo].Value
}
func (p *RLEPage) Len() int      { return p.n }
func (p *RLEPage) Kind() Kind    { return KindRLE }
func (p *RLEPage) MemWords() int { return 2 * len(p.runs) }

// ---------------------------------------------------------------------------
// Bulk decoding

// BulkDecoder is the optional fast path for scans: append all decoded slots
// to buf in one sequential pass.
type BulkDecoder interface {
	AppendTo(buf []uint64) []uint64
}

// AppendTo copies the raw slots.
func (p *RawPage) AppendTo(buf []uint64) []uint64 { return append(buf, p.slots...) }

// AppendTo expands runs without per-slot binary search.
func (p *RLEPage) AppendTo(buf []uint64) []uint64 {
	for _, r := range p.runs {
		for i := uint32(0); i < r.Count; i++ {
			buf = append(buf, r.Value)
		}
	}
	return buf
}

// AppendTo unpacks sequentially (monotone bit cursor, no re-derived
// positions).
func (p *PackedPage) AppendTo(buf []uint64) []uint64 {
	for i := 0; i < p.n; i++ {
		buf = append(buf, p.Get(i))
	}
	return buf
}

// AppendTo decodes codes sequentially.
func (p *DictPage) AppendTo(buf []uint64) []uint64 {
	for i := 0; i < p.n; i++ {
		buf = append(buf, p.Get(i))
	}
	return buf
}

// ---------------------------------------------------------------------------
// Encoder

// Encode picks the smallest representation for vals from the value
// distribution: one compress.Analyze pass prices every encoding (raw,
// RLE, dictionary, frame-of-reference packed) and only the winner is built.
// The raw fallback aliases vals — callers must not mutate vals after Encode
// (EncodeScratch copies instead, for arena-backed callers).
func Encode(vals []uint64) Reader { return encode(vals, false) }

// EncodeScratch is Encode for callers that reuse vals afterwards (the merge
// arena): the raw fallback copies the input instead of aliasing it. The
// other encodings never retain vals.
func EncodeScratch(vals []uint64) Reader { return encode(vals, true) }

func encode(vals []uint64, copyRaw bool) Reader {
	st := compress.Analyze(vals, types.NullSlot)
	n := st.N

	// Price each candidate in MemWords, mirroring the constructors exactly.
	bestW := n // raw
	best := KindRaw
	if w := 2 * st.Runs; 2*st.Runs < n && w < bestW {
		best, bestW = KindRLE, w
	}
	if !st.DistinctOverflow && st.Distinct > 0 && st.Distinct < n {
		dw := compress.BitWidth(uint64(st.Distinct - 1))
		if dw == 0 {
			dw = 1
		}
		if w := 1 + st.Distinct + (n*dw+63)/64; w < bestW {
			best, bestW = KindDict, w
		}
	}
	if pw := compress.BitWidth(st.Max - st.Min); pw < 64 {
		w := 2 + (n*pw+63)/64
		if st.NonNull < n {
			w += (n + 63) / 64 // side null bitmap
		}
		if w < bestW {
			best = KindPacked
		}
	}

	switch best {
	case KindRLE:
		if p := NewRLE(vals); p != nil {
			return p
		}
	case KindDict:
		if p := NewDict(vals); p != nil {
			return p
		}
	case KindPacked:
		if p := NewPacked(vals); p != nil {
			return p
		}
	}
	if copyRaw {
		return NewRaw(append(make([]uint64, 0, n), vals...))
	}
	return NewRaw(vals)
}

// NewConst builds the page holding n copies of v — one RLE run. Restore uses
// it for the merge-maintained meta pages of a freshly installed cold range
// (Last Updated all-∅, Schema Encoding all-zero).
func NewConst(v uint64, n int) Reader {
	if n == 0 {
		return NewRaw(nil)
	}
	runs := make([]compress.Run, 0, (n+runCountMax-1)/runCountMax)
	for rem := n; rem > 0; rem -= runCountMax {
		c := rem
		if c > runCountMax {
			c = runCountMax
		}
		runs = append(runs, compress.Run{Value: v, Count: uint32(c)})
	}
	starts := make([]uint32, len(runs))
	for i := range runs {
		starts[i] = uint32(i * runCountMax)
	}
	return &RLEPage{runs: runs, starts: starts, n: n}
}

// runCountMax is the largest per-run count (compress.Run counts are uint32).
const runCountMax = int(^uint32(0))

// Decode expands any Reader back into a slot vector.
func Decode(p Reader) []uint64 {
	out := make([]uint64, p.Len())
	for i := range out {
		out[i] = p.Get(i)
	}
	return out
}

// ---------------------------------------------------------------------------
// Serialization (used by the WAL snapshotter and cmd/lstore-inspect)

// Marshal serializes any base page. Pages are serialized decoded; the
// compression choice is a runtime decision and Unmarshal re-encodes.
func Marshal(p Reader) []byte {
	buf := make([]byte, 0, 8+8*p.Len())
	buf = binary.LittleEndian.AppendUint64(buf, uint64(p.Len()))
	for i := 0; i < p.Len(); i++ {
		buf = binary.LittleEndian.AppendUint64(buf, p.Get(i))
	}
	return buf
}

// Unmarshal parses a Marshal-ed page and re-encodes it optimally.
func Unmarshal(b []byte) (Reader, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("page: truncated header")
	}
	n := binary.LittleEndian.Uint64(b)
	if uint64(len(b)) < 8+8*n {
		return nil, fmt.Errorf("page: truncated body: want %d slots", n)
	}
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = binary.LittleEndian.Uint64(b[8+8*i:])
	}
	return Encode(vals), nil
}

// ---------------------------------------------------------------------------
// Tail pages

// TailPage is an uncompressed, append-only, write-once slot vector. Every
// slot starts as the implicit null ∅ and is written at most once by the
// writer that owns the corresponding tail RID; the lone exception is the
// lazy swap of transaction IDs for commit times in Start Time slots, which
// is a CAS that only moves the slot "forward in time". All access is via
// atomics so concurrent readers are race-free.
type TailPage struct {
	slots []uint64
}

// NewTail allocates a tail page of n slots, all ∅.
func NewTail(n int) *TailPage {
	p := &TailPage{slots: make([]uint64, n)}
	for i := range p.slots {
		p.slots[i] = types.NullSlot
	}
	return p
}

// Load atomically reads slot i.
func (p *TailPage) Load(i int) uint64 { return atomic.LoadUint64(&p.slots[i]) }

// Store atomically writes slot i. The write-once discipline is the caller's
// responsibility (enforced by RID ownership).
func (p *TailPage) Store(i int, v uint64) { atomic.StoreUint64(&p.slots[i], v) }

// CompareAndSwap atomically replaces slot i if it still holds old. Used only
// for the lazy txn-ID → commit-time swap.
func (p *TailPage) CompareAndSwap(i int, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&p.slots[i], old, new)
}

// Len returns the slot count.
func (p *TailPage) Len() int { return len(p.slots) }
