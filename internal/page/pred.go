package page

import (
	"lstore/internal/compress"
	"lstore/internal/types"
)

// This file is the encoded-space half of predicate pushdown: a scan
// translates each predicate window into the page's OWN representation once
// (code space for packed/dictionary pages, run granularity for RLE) and
// computes 64-slot filter bitmaps without decoding the page. Words the
// filter rejects are never decoded at all; DecodeWordInto materializes only
// the survivors.
//
// Semantics contract: for every slot s, FilterWord sets bit s&63 exactly
// when the engine's scalar predicate would match the page value —
// in := v-Lo <= Hi-Lo; negated windows match !in && v != ∅. The compiled
// forms below are algebraic rewrites of that single compare, so the filter
// bitmap is bit-identical to evaluating the predicate over a full decode.

// predMatch is the scalar predicate (mirrors core's Pred.Matches; duplicated
// here because the scan engine depends on page, not the reverse).
func predMatch(v, lo, hi uint64, negate bool) bool {
	in := v-lo <= hi-lo
	if negate {
		return !in && v != types.NullSlot
	}
	return in
}

// spanMask sets bits lo&63 .. hi-1&63 for a [lo, hi) slot span within one
// 64-slot word.
func spanMask(lo, hi int) uint64 {
	n := hi - lo
	if n <= 0 {
		return 0
	}
	if n >= 64 {
		return ^uint64(0)
	}
	return (1<<uint(n) - 1) << uint(lo&63)
}

// CompiledPred is one predicate window bound to one base page: Bind
// translates the window into the page's encoded space, FilterWord evaluates
// 64 slots against that translation. A CompiledPred belongs to ONE scanner
// (the RLE form keeps a monotone run cursor); pages themselves stay
// stateless and shared. The zero value is ready for Bind; Reset drops page
// references (pool hygiene) while keeping reusable scratch.
type CompiledPred struct {
	lo, hi uint64
	negate bool

	kind uint8 // one of cpRaw/cpPacked/cpDict/cpRLE/cpGeneric

	raw *RawPage

	// Packed: the window moved into code space (c = v - min). cEmpty means no
	// non-null value can fall inside the window; nullHit is the precomputed
	// predicate result for ∅ slots.
	pk         *PackedPage
	cLo, cSpan uint64
	cEmpty     bool
	nullHit    bool

	// Dict: one bit per dictionary code whose value matches (the dictionary
	// is probed once at Bind; equality windows probe a single code).
	dp       *DictPage
	codeBits []uint64

	// RLE: runs are tested whole-run-at-a-time; runIdx is the scanner's
	// monotone cursor (FilterWord bases never decrease within one Bind).
	rl     *RLEPage
	runIdx int

	gen Reader // fallback for foreign Reader implementations (row views)
}

const (
	cpRaw uint8 = iota
	cpPacked
	cpDict
	cpRLE
	cpGeneric
)

// Bind compiles the window [lo, hi] (negate per core's Pred semantics)
// against p, translating the bounds into p's encoded space once.
func (cp *CompiledPred) Bind(p Reader, lo, hi uint64, negate bool) {
	cp.Reset()
	cp.lo, cp.hi, cp.negate = lo, hi, negate
	switch t := p.(type) {
	case *RawPage:
		cp.kind, cp.raw = cpRaw, t
	case *PackedPage:
		cp.kind, cp.pk = cpPacked, t
		cp.nullHit = predMatch(types.NullSlot, lo, hi, negate)
		// Non-null values are min+c with c < 2^width: intersect [lo, hi] with
		// the code range. An empty intersection decides whole words at once.
		maxCode := uint64(1)<<uint(t.width) - 1
		if t.width == 0 {
			maxCode = 0
		}
		switch {
		case hi < t.min || (lo > t.min && lo-t.min > maxCode):
			cp.cEmpty = true
		default:
			cp.cLo = 0
			if lo > t.min {
				cp.cLo = lo - t.min
			}
			cHi := hi - t.min
			if cHi > maxCode {
				cHi = maxCode
			}
			cp.cSpan = cHi - cp.cLo
		}
	case *DictPage:
		cp.kind, cp.dp = cpDict, t
		nb := (t.dict.Size() + 63) / 64
		if cap(cp.codeBits) < nb {
			cp.codeBits = make([]uint64, nb)
		}
		cp.codeBits = cp.codeBits[:nb]
		for i := range cp.codeBits {
			cp.codeBits[i] = 0
		}
		if lo == hi && !negate {
			// Equality: probe the dictionary once; a missing value rejects
			// every slot without touching the code stream.
			if c, ok := t.dict.Code(lo); ok {
				cp.codeBits[c>>6] |= 1 << uint(c&63)
			}
		} else {
			for c, n := 0, t.dict.Size(); c < n; c++ {
				if predMatch(t.dict.Value(uint32(c)), lo, hi, negate) {
					cp.codeBits[c>>6] |= 1 << uint(c&63)
				}
			}
		}
	case *RLEPage:
		cp.kind, cp.rl = cpRLE, t
	default:
		cp.kind, cp.gen = cpGeneric, p
	}
}

// Reset drops page references so pooled scanners do not pin retired page
// versions; compiled scratch (the dict code bitmap) is kept for reuse.
func (cp *CompiledPred) Reset() {
	bits := cp.codeBits
	*cp = CompiledPred{codeBits: bits[:0]}
}

// FilterWord evaluates slots [lo, hi) — all within one 64-slot word — and
// returns the match bitmap (bit slot&63). Bases must not decrease between
// calls on one Bind (the RLE cursor is monotone).
func (cp *CompiledPred) FilterWord(lo, hi int) uint64 {
	switch cp.kind {
	case cpRaw:
		return cp.filterRaw(lo, hi)
	case cpPacked:
		return cp.filterPacked(lo, hi)
	case cpDict:
		return cp.filterDict(lo, hi)
	case cpRLE:
		return cp.filterRLE(lo, hi)
	default:
		var m uint64
		for s := lo; s < hi; s++ {
			if predMatch(cp.gen.Get(s), cp.lo, cp.hi, cp.negate) {
				m |= 1 << uint(s&63)
			}
		}
		return m
	}
}

func (cp *CompiledPred) filterRaw(lo, hi int) uint64 {
	slots := cp.raw.slots
	span := cp.hi - cp.lo
	var m uint64
	if cp.negate {
		for s := lo; s < hi; s++ {
			if v := slots[s]; v-cp.lo > span && v != types.NullSlot {
				m |= 1 << uint(s&63)
			}
		}
		return m
	}
	for s := lo; s < hi; s++ {
		if slots[s]-cp.lo <= span {
			m |= 1 << uint(s&63)
		}
	}
	return m
}

// filterPacked compares bit-packed codes against the translated window —
// no min re-add, no null branch, no scratch write per slot.
func (cp *CompiledPred) filterPacked(lo, hi int) uint64 {
	p := cp.pk
	var nw uint64
	if p.nulls != nil {
		nw = p.nulls[lo>>6]
	}
	cover := spanMask(lo, hi)
	if cp.cEmpty {
		// No non-null value can match: the word is decided by nulls alone.
		if cp.negate {
			return cover &^ nw // every non-null is outside the window
		}
		if cp.nullHit {
			return cover & nw
		}
		return 0
	}
	var m uint64
	for s := lo; s < hi; s++ {
		c := compress.UnpackBit(p.words, p.width, s)
		if c-cp.cLo <= cp.cSpan {
			m |= 1 << uint(s&63)
		}
	}
	if cp.negate {
		m = (cover &^ m) &^ nw
	} else if nw != 0 {
		m &^= nw
		if cp.nullHit {
			m |= cover & nw
		}
	}
	return m
}

func (cp *CompiledPred) filterDict(lo, hi int) uint64 {
	p := cp.dp
	var m uint64
	for s := lo; s < hi; s++ {
		c := compress.UnpackBit(p.words, p.width, s)
		if cp.codeBits[c>>6]&(1<<uint(c&63)) != 0 {
			m |= 1 << uint(s&63)
		}
	}
	return m
}

// filterRLE tests each run once and sets whole-run bit spans; the cursor
// advances monotonically so a full-page scan costs O(runs + words).
func (cp *CompiledPred) filterRLE(lo, hi int) uint64 {
	p := cp.rl
	ri := cp.runIdx
	if ri >= len(p.starts) || int(p.starts[ri]) > lo {
		ri = p.findRun(lo) // re-seek (first call or a forward Bind reuse)
	}
	for ri+1 < len(p.starts) && int(p.starts[ri+1]) <= lo {
		ri++
	}
	var m uint64
	s := lo
	for s < hi {
		runEnd := p.n
		if ri+1 < len(p.starts) {
			runEnd = int(p.starts[ri+1])
		}
		e := hi
		if runEnd < e {
			e = runEnd
		}
		if predMatch(p.runs[ri].Value, cp.lo, cp.hi, cp.negate) {
			m |= spanMask(s, e)
		}
		s = e
		if s < hi {
			ri++
		}
	}
	cp.runIdx = ri
	return m
}

// findRun binary-searches the run containing slot i.
func (p *RLEPage) findRun(i int) int {
	lo, hi := 0, len(p.starts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.starts[mid] <= uint32(i) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// ---------------------------------------------------------------------------
// Word-granular decode

// DecodeWordInto decodes slots [base, base+n) of p into dst[0:n] — the
// scan engine's surviving-word materializer. Each encoding decodes the span
// natively (RLE fills whole runs, packed walks a monotone bit cursor);
// words the predicate filter rejected are simply never passed here.
func DecodeWordInto(dst []uint64, p Reader, base, n int) {
	switch t := p.(type) {
	case *RawPage:
		copy(dst[:n], t.slots[base:base+n])
	case *PackedPage:
		var nw uint64
		if t.nulls != nil {
			nw = t.nulls[base>>6]
		}
		for i := 0; i < n; i++ {
			s := base + i
			if nw&(1<<uint(s&63)) != 0 {
				dst[i] = types.NullSlot
				continue
			}
			dst[i] = t.min + compress.UnpackBit(t.words, t.width, s)
		}
	case *DictPage:
		for i := 0; i < n; i++ {
			dst[i] = t.dict.Value(uint32(compress.UnpackBit(t.words, t.width, base+i)))
		}
	case *RLEPage:
		ri := t.findRun(base)
		for i := 0; i < n; {
			runEnd := t.n
			if ri+1 < len(t.starts) {
				runEnd = int(t.starts[ri+1])
			}
			v := t.runs[ri].Value
			for ; i < n && base+i < runEnd; i++ {
				dst[i] = v
			}
			ri++
		}
	default:
		for i := 0; i < n; i++ {
			dst[i] = p.Get(base + i)
		}
	}
}
