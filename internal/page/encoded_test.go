package page

import (
	"math/rand"
	"reflect"
	"testing"

	"lstore/internal/types"
)

// adversarial returns distributions chosen to hit codec edge cases: run
// boundaries, full bit width, degenerate lengths, and null density.
func adversarial() map[string][]uint64 {
	rng := rand.New(rand.NewSource(11))
	allEqual := make([]uint64, 257)
	for i := range allEqual {
		allEqual[i] = 1 << 40
	}
	alternating := make([]uint64, 257) // worst case for RLE: 257 runs
	for i := range alternating {
		alternating[i] = uint64(i % 2)
	}
	maxWidth := make([]uint64, 200) // full 64-bit spread: packed must refuse
	for i := range maxWidth {
		if v := rng.Uint64(); v != types.NullSlot {
			maxWidth[i] = v
		}
	}
	maxWidth[0], maxWidth[1] = 0, types.NullSlot-1
	nullDense := make([]uint64, 300)
	for i := range nullDense {
		if i%3 != 0 {
			nullDense[i] = types.NullSlot
		} else {
			nullDense[i] = uint64(i)
		}
	}
	nearNull := make([]uint64, 130) // min so high that packed would alias ∅
	for i := range nearNull {
		nearNull[i] = types.NullSlot - 1 - uint64(i%7)
	}
	wordEdge := make([]uint64, 128) // run boundaries exactly at word 64
	for i := range wordEdge {
		wordEdge[i] = uint64(i / 64)
	}
	return map[string][]uint64{
		"all-equal":   allEqual,
		"alternating": alternating,
		"max-width":   maxWidth,
		"null-dense":  nullDense,
		"near-null":   nearNull,
		"word-edge":   wordEdge,
		"single":      {42},
		"single-null": {types.NullSlot},
		"empty":       {},
	}
}

// codecs builds every constructible encoding of vals (Encode's winner plus
// each specific codec that accepts the distribution).
func codecs(vals []uint64) map[string]Reader {
	out := map[string]Reader{
		"encode": Encode(vals),
		"raw":    NewRaw(append([]uint64(nil), vals...)),
	}
	if p := NewPacked(vals); p != nil {
		out["packed"] = p
	}
	if p := NewDict(vals); p != nil {
		out["dict"] = p
	}
	if p := NewRLE(vals); p != nil {
		out["rle"] = p
	}
	return out
}

func TestCodecRoundTripAdversarial(t *testing.T) {
	for name, vals := range adversarial() {
		for codec, p := range codecs(vals) {
			if p.Len() != len(vals) {
				t.Fatalf("%s/%s: Len = %d, want %d", name, codec, p.Len(), len(vals))
			}
			for i, want := range vals {
				if got := p.Get(i); got != want {
					t.Fatalf("%s/%s: Get(%d) = %d, want %d", name, codec, i, got, want)
				}
			}
		}
	}
}

func TestEncodeScratchCopiesRawFallback(t *testing.T) {
	vals := adversarial()["max-width"]
	p := EncodeScratch(vals)
	if p.Kind() != KindRaw {
		t.Fatalf("max-width encoded as %v, want raw fallback", p.Kind())
	}
	before := p.Get(0)
	vals[0] = 12345 // caller reuses its scratch buffer
	if p.Get(0) != before {
		t.Fatal("EncodeScratch aliased the caller's buffer on raw fallback")
	}
}

// TestFilterWordMatchesScalarOracle: for every codec and distribution, the
// vectorized encoded-space filter must agree bit-for-bit with the scalar
// predicate applied to decoded values — including Negate, null handling,
// empty windows, and windows touching the distribution's extremes.
func TestFilterWordMatchesScalarOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for name, vals := range adversarial() {
		if len(vals) == 0 {
			continue
		}
		for codec, p := range codecs(vals) {
			for trial := 0; trial < 64; trial++ {
				// Window bounds biased toward actual values so windows are
				// sometimes selective rather than always empty or full.
				pick := func() uint64 {
					if rng.Intn(2) == 0 {
						return vals[rng.Intn(len(vals))]
					}
					return rng.Uint64() >> 1 // bit 63 clear: never the null slot
				}
				lo, hi := pick(), pick()
				if lo > hi {
					lo, hi = hi, lo
				}
				if trial%8 == 0 {
					hi = lo // equality window: exercises the dict single-probe
				}
				negate := trial%3 == 0

				var cp CompiledPred
				cp.Bind(p, lo, hi, negate)
				for base := 0; base < len(vals); base += 64 {
					end := base + 64
					if end > len(vals) {
						end = len(vals)
					}
					got := cp.FilterWord(base, end)
					var want uint64
					for i := base; i < end; i++ {
						if predMatch(vals[i], lo, hi, negate) {
							want |= 1 << uint(i-base)
						}
					}
					if got != want {
						t.Fatalf("%s/%s window [%d,%d] negate=%v word %d: got %064b want %064b",
							name, codec, lo, hi, negate, base/64, got, want)
					}
				}
				cp.Reset()
			}
		}
	}
}

// TestFilterWordRLENonMonotone: the RLE cursor optimizes for ascending word
// order but must stay correct when words are re-filtered or visited out of
// order (parallel scans hand ranges to workers independently).
func TestFilterWordRLENonMonotone(t *testing.T) {
	vals := make([]uint64, 512)
	for i := range vals {
		vals[i] = uint64(i / 37)
	}
	p := NewRLE(vals)
	if p == nil {
		t.Fatal("RLE refused runs")
	}
	var cp CompiledPred
	cp.Bind(p, 3, 9, false)
	order := []int{256, 0, 448, 64, 0, 384, 256}
	for _, base := range order {
		got := cp.FilterWord(base, base+64)
		var want uint64
		for i := base; i < base+64; i++ {
			if v := vals[i]; v >= 3 && v <= 9 {
				want |= 1 << uint(i-base)
			}
		}
		if got != want {
			t.Fatalf("word at %d after non-monotone seek: got %064b want %064b", base, got, want)
		}
	}
}

func TestDecodeWordIntoMatchesGet(t *testing.T) {
	for name, vals := range adversarial() {
		if len(vals) == 0 {
			continue
		}
		for codec, p := range codecs(vals) {
			dst := make([]uint64, 64)
			for base := 0; base < len(vals); base += 64 {
				n := len(vals) - base
				if n > 64 {
					n = 64
				}
				for i := range dst {
					dst[i] = 0xdead
				}
				DecodeWordInto(dst, p, base, n)
				for i := 0; i < n; i++ {
					if dst[i] != vals[base+i] {
						t.Fatalf("%s/%s: DecodeWordInto slot %d = %d, want %d",
							name, codec, base+i, dst[i], vals[base+i])
					}
				}
			}
		}
	}
}

// TestMarshalEncodedRoundTrip: the wire form preserves both values and the
// chosen encoding (checkpoint images must not silently decay to raw).
func TestMarshalEncodedRoundTrip(t *testing.T) {
	for name, vals := range adversarial() {
		for codec, p := range codecs(vals) {
			b := MarshalEncoded(p)
			q, err := UnmarshalEncoded(b)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, codec, err)
			}
			if q.Kind() != p.Kind() {
				t.Fatalf("%s/%s: kind %v round-tripped as %v", name, codec, p.Kind(), q.Kind())
			}
			if q.Len() != p.Len() {
				t.Fatalf("%s/%s: len %d round-tripped as %d", name, codec, p.Len(), q.Len())
			}
			if len(vals) > 0 && !reflect.DeepEqual(Decode(q), vals) {
				t.Fatalf("%s/%s: values corrupted through wire form", name, codec)
			}
		}
	}
}

// TestUnmarshalEncodedRejectsCorruption: every byte-level mutation class a
// torn or bit-flipped checkpoint can produce must fail parsing loudly, not
// construct a page that lies.
func TestUnmarshalEncodedRejectsCorruption(t *testing.T) {
	vals := []uint64{5, 5, 5, 9, 9, 100, types.NullSlot, 7}
	for codec, p := range codecs(vals) {
		b := MarshalEncoded(p)
		if _, err := UnmarshalEncoded(b[:len(b)-1]); err == nil {
			t.Errorf("%s: truncated frame accepted", codec)
		}
		if _, err := UnmarshalEncoded(append(append([]byte(nil), b...), 0)); err == nil {
			t.Errorf("%s: trailing garbage accepted", codec)
		}
		if _, err := UnmarshalEncoded(b[:1]); err == nil {
			t.Errorf("%s: header-only frame accepted", codec)
		}
	}
	if _, err := UnmarshalEncoded(nil); err == nil {
		t.Error("empty frame accepted")
	}
	if _, err := UnmarshalEncoded([]byte{99, 1}); err == nil {
		t.Error("unknown kind byte accepted")
	}

	// Kind-specific forgeries.
	reject := func(name string, b []byte) {
		t.Helper()
		if _, err := UnmarshalEncoded(b); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Packed page whose min+maxCode reaches NullSlot: decoded slots would
	// alias ∅.
	forged := MarshalEncoded(NewPacked([]uint64{types.NullSlot - 3, types.NullSlot - 1}))
	if forged != nil {
		for i := 0; i < 8; i++ {
			forged[1+i] = 0xff // min = NullSlot - overflows with width 2
		}
		reject("packed frame aliasing NullSlot", forged)
	}
	// Dict page with a code out of dictionary range.
	dp := NewDict([]uint64{10, 20, 30, 10})
	if dp == nil {
		t.Fatal("dict refused low cardinality")
	}
	db := MarshalEncoded(dp)
	db[len(db)-1] |= 0x80 // corrupt packed code words: some code >= dictSize
	if q, err := UnmarshalEncoded(db); err == nil {
		// The flip may land on padding; only a parse that produced
		// out-of-range values is a failure.
		for i := 0; i < q.Len(); i++ {
			if v := q.Get(i); v != 10 && v != 20 && v != 30 {
				t.Errorf("dict frame with forged codes produced %d", v)
			}
		}
	}
	// RLE frame whose run counts disagree with its slot count.
	rp := NewRLE([]uint64{4, 4, 4, 4, 8, 8})
	rb := MarshalEncoded(rp)
	rb[2]++ // bump slot count n; run totals now disagree
	reject("RLE frame with inconsistent run totals", rb)
}

func TestUnmarshalEncodedAllocatesFreshArrays(t *testing.T) {
	// Checkpoint restore parses pages out of a frame buffer that is reused;
	// the constructed page must not alias it.
	p := NewPacked([]uint64{100, 101, 102, 103})
	b := MarshalEncoded(p)
	q, err := UnmarshalEncoded(b)
	if err != nil {
		t.Fatal(err)
	}
	want := Decode(q)
	for i := range b {
		b[i] = 0xff
	}
	if !reflect.DeepEqual(Decode(q), want) {
		t.Fatal("unmarshaled page aliases the input buffer")
	}
}
