package page

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"lstore/internal/types"
)

func vectors() map[string][]uint64 {
	rng := rand.New(rand.NewSource(7))
	random := make([]uint64, 1000)
	for i := range random {
		random[i] = rng.Uint64()
	}
	narrow := make([]uint64, 1000)
	for i := range narrow {
		narrow[i] = 5_000_000 + uint64(rng.Intn(100))
	}
	constant := make([]uint64, 1000)
	for i := range constant {
		constant[i] = 42
	}
	lowCard := make([]uint64, 1000)
	for i := range lowCard {
		lowCard[i] = []uint64{10, 1 << 60, 77, types.NullSlot}[rng.Intn(4)]
	}
	withNulls := make([]uint64, 1000)
	for i := range withNulls {
		if rng.Intn(3) == 0 {
			withNulls[i] = types.NullSlot
		} else {
			withNulls[i] = uint64(rng.Intn(1000))
		}
	}
	return map[string][]uint64{
		"random":   random,
		"narrow":   narrow,
		"constant": constant,
		"lowCard":  lowCard,
		"nulls":    withNulls,
		"empty":    {},
		"single":   {types.NullSlot},
	}
}

func TestEncodeRoundTripAllShapes(t *testing.T) {
	for name, vals := range vectors() {
		p := Encode(vals)
		if p.Len() != len(vals) {
			t.Fatalf("%s: Len = %d, want %d", name, p.Len(), len(vals))
		}
		got := Decode(p)
		if len(vals) > 0 && !reflect.DeepEqual(got, vals) {
			t.Fatalf("%s (%v): roundtrip mismatch", name, p.Kind())
		}
	}
}

func TestEncodePicksCompressed(t *testing.T) {
	v := vectors()
	if k := Encode(v["constant"]).Kind(); k != KindRLE {
		t.Errorf("constant vector encoded as %v, want rle", k)
	}
	if k := Encode(v["narrow"]).Kind(); k == KindRaw {
		t.Errorf("narrow vector not compressed")
	}
	if got := Encode(v["narrow"]).MemWords(); got >= 1000 {
		t.Errorf("narrow vector occupies %d words, no compression achieved", got)
	}
}

func TestPackedHandlesNulls(t *testing.T) {
	vals := []uint64{types.NullSlot, 100, 101, types.NullSlot, 105}
	p := NewPacked(vals)
	if p == nil {
		t.Fatal("packed refused small range with nulls")
	}
	if !reflect.DeepEqual(Decode(p), vals) {
		t.Fatalf("packed with nulls roundtrip mismatch: %v", Decode(p))
	}
}

func TestPackedRefusesFullWidth(t *testing.T) {
	if p := NewPacked([]uint64{0, 1 << 63}); p != nil {
		t.Errorf("packed accepted 64-bit range")
	}
}

func TestRLEPointAccess(t *testing.T) {
	vals := []uint64{7, 7, 7, 9, 9, 3, 3, 3, 3, 5}
	p := NewRLE(vals)
	if p == nil {
		t.Fatal("RLE refused runs")
	}
	for i, want := range vals {
		if got := p.Get(i); got != want {
			t.Errorf("Get(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestEncodeProperty(t *testing.T) {
	f := func(vals []uint64, mode uint8) bool {
		shaped := make([]uint64, len(vals))
		for i, v := range vals {
			switch mode % 3 {
			case 0:
				shaped[i] = v
			case 1:
				shaped[i] = v % 7
			case 2:
				if v%5 == 0 {
					shaped[i] = types.NullSlot
				} else {
					shaped[i] = 1000 + v%64
				}
			}
		}
		p := Encode(shaped)
		if p.Len() != len(shaped) {
			return false
		}
		for i := range shaped {
			if p.Get(i) != shaped[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalUnmarshal(t *testing.T) {
	for name, vals := range vectors() {
		if len(vals) == 0 {
			continue
		}
		b := Marshal(Encode(vals))
		p, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(Decode(p), vals) {
			t.Fatalf("%s: marshal roundtrip mismatch", name)
		}
	}
	if _, err := Unmarshal([]byte{1, 2}); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := Unmarshal(Marshal(NewRaw([]uint64{1, 2, 3}))[:16]); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestTailPageWriteOnceVisibility(t *testing.T) {
	p := NewTail(DefaultSlots)
	if p.Len() != DefaultSlots {
		t.Fatalf("Len = %d", p.Len())
	}
	for i := 0; i < 10; i++ {
		if p.Load(i) != types.NullSlot {
			t.Fatalf("fresh slot %d not null", i)
		}
	}
	p.Store(3, 99)
	if p.Load(3) != 99 {
		t.Fatalf("Load after Store = %d", p.Load(3))
	}
}

func TestTailPageConcurrentDistinctSlots(t *testing.T) {
	p := NewTail(1024)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < 1024; i += 8 {
				p.Store(i, uint64(i)*3)
			}
		}(w)
	}
	wg.Wait()
	for i := 0; i < 1024; i++ {
		if p.Load(i) != uint64(i)*3 {
			t.Fatalf("slot %d = %d", i, p.Load(i))
		}
	}
}

func TestTailPageCAS(t *testing.T) {
	p := NewTail(4)
	p.Store(0, types.TxnIDFlag|5)
	if !p.CompareAndSwap(0, types.TxnIDFlag|5, 1234) {
		t.Fatal("CAS failed")
	}
	if p.CompareAndSwap(0, types.TxnIDFlag|5, 9999) {
		t.Fatal("stale CAS succeeded")
	}
	if p.Load(0) != 1234 {
		t.Fatalf("slot = %d", p.Load(0))
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindRaw: "raw", KindPacked: "packed", KindDict: "dict", KindRLE: "rle"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}
