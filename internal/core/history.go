package core

import (
	"lstore/internal/compress"
	"lstore/internal/txn"
	"lstore/internal/types"
)

// This file implements §4.3: compressing historic tail pages. Tail records
// that every column's merge has consumed (and thus fall below every TPS) are
// re-organized by base-RID order with each record's versions inlined
// contiguously and delta-compressed; the original tail blocks are then
// retired through the epoch manager and their page-directory entries
// dropped. Snapshot (time-travel) reads that walk a version chain across the
// compression boundary switch to the history store — readers of non-historic
// data never touch it (latest-mode reads stop at the TPS watermark, which is
// always at or above the compression boundary), so compression never clashes
// with the OLTP path.

// historyStore holds one range's compressed historic versions.
type historyStore struct {
	upto types.RID // every tail record with RID <= upto lives here
	recs map[int]*histRecord
}

// histRecord is one base record's inlined, delta-compressed version chain.
type histRecord struct {
	blob []byte
}

// histVersion is the decoded form used while building and reading.
type histVersion struct {
	rid types.RID
	ts  types.Timestamp
	enc uint64
	// vals holds one value per set data-column bit of enc, ascending by
	// column index.
	vals []uint64
}

// value returns the version's explicit value for col.
func (v *histVersion) value(col int, ncols int) (uint64, bool) {
	if v.enc&types.SchemaDeleteFlag != 0 {
		return types.NullSlot, true
	}
	if v.enc&(1<<uint(col)) == 0 {
		return 0, false
	}
	vi := 0
	for c := 0; c < col; c++ {
		if v.enc&(1<<uint(c)) != 0 {
			vi++
		}
	}
	return v.vals[vi], true
}

// encodeHist packs versions (in append = RID order) into a compact blob:
// counts, delta-coded RIDs, delta-coded times, then per version the schema
// encoding and per-column delta-coded values (§4.3's inlined delta
// compression across versions: repeated and slowly changing values cost a
// byte or two each).
func encodeHist(versions []histVersion, ncols int) []byte {
	blob := []byte(nil)
	rids := make([]uint64, len(versions))
	times := make([]uint64, len(versions))
	for i, v := range versions {
		rids[i] = uint64(v.rid)
		times[i] = v.ts
	}
	blob = compress.DeltaEncode(blob, rids)
	blob = compress.DeltaEncode(blob, times)
	prev := make([]uint64, ncols)
	for _, v := range versions {
		blob = compress.PutUvarint(blob, v.enc)
		vi := 0
		for c := 0; c < ncols; c++ {
			if v.enc&(1<<uint(c)) == 0 {
				continue
			}
			val := v.vals[vi]
			vi++
			blob = compress.PutUvarint(blob, compress.ZigZag(int64(val-prev[c])))
			prev[c] = val
		}
	}
	return blob
}

// decodeHist unpacks a blob produced by encodeHist.
func decodeHist(blob []byte, ncols int) []histVersion {
	rids, m, err := compress.DeltaDecode(blob)
	if err != nil {
		return nil
	}
	off := m
	times, m, err := compress.DeltaDecode(blob[off:])
	if err != nil {
		return nil
	}
	off += m
	versions := make([]histVersion, 0, len(rids))
	prev := make([]uint64, ncols)
	for i := range rids {
		enc, m, err := compress.Uvarint(blob[off:])
		if err != nil {
			return nil
		}
		off += m
		v := histVersion{rid: types.RID(rids[i]), ts: times[i], enc: enc}
		for c := 0; c < ncols; c++ {
			if enc&(1<<uint(c)) == 0 {
				continue
			}
			d, m, err := compress.Uvarint(blob[off:])
			if err != nil {
				return nil
			}
			off += m
			prev[c] += uint64(compress.UnZigZag(d))
			v.vals = append(v.vals, prev[c])
		}
		versions = append(versions, v)
	}
	return versions
}

// CompressHistory compresses every range's eligible historic tail blocks;
// it returns the number of tail records moved into history stores.
func (s *Store) CompressHistory() int {
	total := 0
	for i := 0; i < s.rangeCount(); i++ {
		total += s.compressRangeHistory(s.rangeAt(i))
	}
	s.em.TryReclaim()
	return total
}

// compressRangeHistory moves fully merged tail blocks of r into the history
// store. Only whole blocks below every column's merge cursor move; the
// cursor never crosses an in-flight record, so everything moved is resolved.
func (s *Store) compressRangeHistory(r *updateRange) int {
	r.mergeMu.Lock()
	defer r.mergeMu.Unlock()
	tbs := int64(s.cfg.TailBlockSize)
	targetBlocks := r.lineage.minCursor() / tbs
	if targetBlocks <= r.histBlocks {
		return 0
	}
	blocks := *r.tailBlocks.Load()
	ncols := s.schema.NumCols()

	// Start from the existing store's decoded contents (re-compression
	// passes inline newer versions after older ones, preserving RID order).
	perSlot := make(map[int][]histVersion)
	if old := r.hist.Load(); old != nil {
		for slot, rec := range old.recs {
			perSlot[slot] = decodeHist(rec.blob, ncols)
		}
	}

	moved := 0
	var upto types.RID
	for bi := r.histBlocks; bi < targetBlocks; bi++ {
		b := blocks[bi]
		if b == nil {
			continue
		}
		upto = b.rids.First + types.RID(b.rids.N-1)
		for sl := 0; sl < b.rids.N; sl++ {
			if b.indirection.Load(sl) == types.NullSlot {
				continue // reserved but never published
			}
			raw := b.startTime.Load(sl)
			ts, st := s.tm.Resolve(raw)
			if st != txn.StatusCommitted {
				continue // aborted tombstones vanish here (space reclaim)
			}
			slot := int(types.RID(b.baseRID.Load(sl)) - r.firstRID)
			if slot < 0 || slot >= r.n {
				continue
			}
			enc := b.schemaEnc.Load(sl)
			v := histVersion{rid: b.rids.First + types.RID(sl), ts: ts, enc: enc}
			for c := 0; c < ncols; c++ {
				if enc&(1<<uint(c)) == 0 {
					continue
				}
				var val uint64 = types.NullSlot
				if p := b.dataPage(c, false); p != nil {
					val = p.Load(sl)
				}
				v.vals = append(v.vals, val)
			}
			perSlot[slot] = append(perSlot[slot], v)
			moved++
		}
	}

	recs := make(map[int]*histRecord, len(perSlot))
	for slot, versions := range perSlot {
		recs[slot] = &histRecord{blob: encodeHist(versions, ncols)}
	}
	// Publish the store before the boundary so readers crossing histUpto
	// always find their versions.
	r.hist.Store(&historyStore{upto: upto, recs: recs})
	r.histUpto.Store(uint64(upto))

	// Retire the original blocks: nil them in the block list (new slice,
	// swapped under tmu to serialize with appendTail's rollover) and drop
	// their page-directory entries once pinned readers drain.
	r.tmu.Lock()
	cur := *r.tailBlocks.Load()
	next := make([]*tailBlock, len(cur))
	copy(next, cur)
	for bi := r.histBlocks; bi < targetBlocks; bi++ {
		b := next[bi]
		next[bi] = nil
		if b == nil {
			continue
		}
		key := uint64(b.rids.First-types.TailRIDBase) / uint64(s.cfg.TailBlockSize)
		s.em.Retire(func() {
			s.tailDir.Delete(key)
			s.stats.PagesReclaimed.Add(1)
		})
		s.stats.PagesRetired.Add(1)
	}
	r.tailBlocks.Store(&next)
	r.tmu.Unlock()

	r.histBlocks = targetBlocks
	s.stats.HistoryPasses.Add(1)
	s.stats.HistoryRecords.Add(uint64(moved))
	return moved
}

// readFromHistory completes a chain walk that crossed the compression
// boundary: remaining needed columns and (if still undecided) the record's
// existence are resolved from the history store, falling back to base
// values for never-updated columns exactly like the chain-end path.
func (r *updateRange) readFromHistory(view readView, slot int, cols []int, out []uint64, need uint64, decided bool, res readResult) readResult {
	s := r.store
	q := view.ts
	if !view.asOf {
		q = ^uint64(0)
	}
	var versions []histVersion
	if hs := r.hist.Load(); hs != nil {
		if rec, ok := hs.recs[slot]; ok {
			versions = decodeHist(rec.blob, s.schema.NumCols())
		}
	}
	// Existence: the newest version at or before q decides; ties on ts are
	// broken by position (later RID wins).
	if !decided {
		best := -1
		var bestTS types.Timestamp
		for i := range versions {
			if versions[i].ts <= q && (best < 0 || versions[i].ts >= bestTS) {
				best, bestTS = i, versions[i].ts
			}
		}
		if best >= 0 {
			if versions[best].enc&types.SchemaDeleteFlag != 0 {
				return res // deleted as of q
			}
			decided = true
			if versions[best].enc&types.SchemaSnapshotFlag != 0 {
				// Pre-image versions carry the base record's identity (see
				// readCols).
				res.decidingRID = r.firstRID + types.RID(slot)
			} else {
				res.decidingRID = versions[best].rid
			}
		}
	}
	// Values: per column, the newest version ≤ q that defines it.
	if need != 0 {
		for i, c := range cols {
			if need&(1<<uint(c)) == 0 {
				continue
			}
			bestIdx := -1
			var bestTS types.Timestamp
			for vi := range versions {
				v := &versions[vi]
				if v.ts > q || v.enc&types.SchemaDeleteFlag != 0 {
					continue
				}
				if v.enc&(1<<uint(c)) == 0 {
					continue
				}
				if bestIdx < 0 || v.ts >= bestTS {
					bestIdx, bestTS = vi, v.ts
				}
			}
			if bestIdx >= 0 {
				if val, ok := versions[bestIdx].value(c, s.schema.NumCols()); ok {
					out[i] = val
					need &^= 1 << uint(c)
				}
			}
		}
	}
	if !decided {
		if !r.baseVisible(s, view, slot) {
			return res
		}
		res.decidingRID = r.firstRID + types.RID(slot)
	}
	for i, c := range cols {
		if need&(1<<uint(c)) != 0 {
			out[i] = r.baseValue(slot, c)
		}
	}
	res.exists = true
	return res
}

// HistoryRecords returns the number of base records with compressed history
// in range ri (introspection).
func (s *Store) HistoryRecords(ri int) int {
	if hs := s.rangeAt(ri).hist.Load(); hs != nil {
		return len(hs.recs)
	}
	return 0
}
