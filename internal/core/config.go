// Package core implements the paper's primary contribution: the
// lineage-based storage architecture of L-Store (§2–§4).
//
// A table's records are virtually partitioned into fixed-size update ranges.
// Each range owns:
//
//   - an in-place-updatable Indirection vector (the only mutable base data,
//     manipulated exclusively through atomic CAS with an embedded latch bit),
//   - per-column base versions — read-only compressed pages stamped with an
//     in-page lineage counter (TPS) that records how many tail records have
//     been consolidated into them,
//   - a chain of append-only, write-once tail blocks holding updates for
//     the range (values materialized only for updated columns),
//   - optionally a table-level tail block while the range is still an
//     insert range (§3.2), and
//   - a compressed history store for merged tail records that left every
//     active snapshot (§4.3).
//
// The merge process (merge.go) lazily consolidates committed tail records
// into new base versions without ever blocking readers or writers; outdated
// pages are retired through epoch-based de-allocation.
package core

import (
	"fmt"
	"runtime"

	"lstore/internal/types"
)

// Layout selects the physical base-data layout. The paper's primary design
// is columnar; the row layout exists to reproduce Tables 8 and 9 (L-Store
// (Row) vs L-Store (Column)).
type Layout uint8

const (
	// ColumnLayout stores each column of a range contiguously (compressed).
	ColumnLayout Layout = iota
	// RowLayout stores records contiguously (uncompressed), trading scan
	// bandwidth for point-read locality across many columns.
	RowLayout
)

func (l Layout) String() string {
	if l == RowLayout {
		return "row"
	}
	return "column"
}

// Config tunes a Store. The zero Config is usable via applyDefaults.
type Config struct {
	// RangeSize is the number of records per update range (§4.4 recommends
	// 2^12–2^16). It must be a power of two. Also the insert-range size:
	// the paper uses much larger insert ranges (≥1M RIDs) purely to cut
	// allocation frequency; equal sizes preserve every structural property
	// (see DESIGN.md substitutions).
	RangeSize int

	// TailBlockSize is the number of tail records per tail block (the
	// paper's tail pages may be smaller than base pages, §4.4 footnote 13).
	TailBlockSize int

	// MergeBatch is the number of unmerged committed tail records that
	// triggers a background merge for a range (§6.2 finds ~50% of the range
	// size optimal).
	MergeBatch int

	// CumulativeUpdates enables carrying previously updated column values
	// forward into new tail records (§3.1), keeping the latest version of
	// any record at most 2 hops away.
	CumulativeUpdates bool

	// Layout selects columnar (default) or row-major base storage.
	Layout Layout

	// AutoMerge starts the background merge scheduler. When false, merges
	// run only via ForceMerge (deterministic tests).
	AutoMerge bool

	// MergeWorkers is the size of the background merge-scheduler pool:
	// workers drain the shared queue and merge DISTINCT ranges concurrently
	// (merges of one range still serialize on its lineage lock). The paper's
	// evaluation runs exactly one merge thread (§6.1); a pool keeps the tail
	// backlog bounded under update-heavy multi-range workloads. Default:
	// GOMAXPROCS, capped at 8.
	MergeWorkers int

	// ScanWorkers sizes the analytical-scan worker pool: ScanSum/ScanRange
	// fan independent update ranges out across up to this many goroutines
	// (aggregates merge per-worker partials; callback scans stage rows so
	// delivery order stays sequential). 1 keeps scans single-threaded.
	// Default: GOMAXPROCS, capped at 8; an explicit larger value is honored
	// (useful for tests that force the parallel path).
	ScanWorkers int

	// MergeColumnsIndependently makes the background merge consolidate each
	// updated column in a separate pass (exercising the per-column lineage
	// of §4.2). Point reads and scans remain correct either way; full-range
	// merges are the default because they also refresh the Last Updated
	// Time meta-column.
	MergeColumnsIndependently bool

	// SecondaryIndexColumns lists data columns to maintain secondary
	// indexes on (key column always has the primary index).
	SecondaryIndexColumns []int

	// DisableCompression publishes sealed/merged base pages raw instead of
	// picking an encoding per column from its value distribution (§4.1
	// step 3). Benchmark baseline knob; compression is otherwise invisible
	// above this package.
	DisableCompression bool

	// DisableEncodedScan forces predicate-filtered scans over sealed ranges
	// to fully decode every page before filtering, instead of evaluating
	// predicate windows on the encoded representation and decoding only
	// surviving 64-slot words. Benchmark baseline knob.
	DisableEncodedScan bool

	// Spill enables beyond-RAM base storage: sealed/merged base pages are
	// appended to this sink in their page.MarshalEncoded form and faulted
	// back in through a pinnable buffer pool on read. Tail pages, unmerged
	// chains, and row-layout slabs stay memory-resident regardless. Nil
	// keeps every base page resident (the previous behavior).
	Spill SpillSink

	// PoolBytes caps the decoded in-memory footprint of spilled base pages
	// (the buffer pool's CLOCK eviction budget). 0 with Spill set picks a
	// default; ignored when Spill is nil.
	PoolBytes int64

	// CheckpointSpillRefs lets checkpoints reference already-spilled cold
	// pages by descriptor instead of re-shipping their bytes; restore then
	// requires the same spill file re-attached. Ignored when Spill is nil.
	CheckpointSpillRefs bool
}

// applyDefaults fills zero fields with paper-faithful defaults.
func (c Config) applyDefaults() Config {
	if c.RangeSize == 0 {
		c.RangeSize = 4096 // 2^12, the fine-grained update range of §4.4
	}
	if c.TailBlockSize == 0 {
		c.TailBlockSize = c.RangeSize / 8
		if c.TailBlockSize < 64 {
			c.TailBlockSize = 64
		}
		if c.TailBlockSize > c.RangeSize {
			c.TailBlockSize = c.RangeSize // tiny ranges (torture configs)
		}
	}
	if c.MergeBatch == 0 {
		c.MergeBatch = c.RangeSize / 2 // §6.2: M ≈ 50% of range size
	}
	if c.MergeWorkers == 0 {
		c.MergeWorkers = runtime.GOMAXPROCS(0)
		if c.MergeWorkers > 8 {
			c.MergeWorkers = 8
		}
	}
	if c.ScanWorkers == 0 {
		c.ScanWorkers = runtime.GOMAXPROCS(0)
		if c.ScanWorkers > 8 {
			c.ScanWorkers = 8
		}
	}
	if c.Spill != nil && c.PoolBytes == 0 {
		c.PoolBytes = 64 << 20
	}
	return c
}

// validate rejects unusable configurations.
func (c Config) validate() error {
	if c.RangeSize&(c.RangeSize-1) != 0 || c.RangeSize <= 0 {
		return fmt.Errorf("core: RangeSize %d must be a positive power of two", c.RangeSize)
	}
	if c.TailBlockSize <= 0 {
		return fmt.Errorf("core: TailBlockSize %d must be positive", c.TailBlockSize)
	}
	if c.MergeBatch <= 0 {
		return fmt.Errorf("core: MergeBatch %d must be positive", c.MergeBatch)
	}
	if c.MergeWorkers <= 0 {
		return fmt.Errorf("core: MergeWorkers %d must be positive", c.MergeWorkers)
	}
	if c.ScanWorkers <= 0 {
		return fmt.Errorf("core: ScanWorkers %d must be positive", c.ScanWorkers)
	}
	if c.Spill == nil && c.PoolBytes != 0 {
		return fmt.Errorf("core: PoolBytes requires a Spill sink")
	}
	if c.Spill != nil && c.Layout == RowLayout {
		return fmt.Errorf("core: spill requires the column layout (row slabs never spill)")
	}
	return nil
}

// Errors surfaced by the storage API.
var (
	ErrDuplicateKey = fmt.Errorf("core: duplicate key")
	ErrNotFound     = fmt.Errorf("core: key not found")
	ErrBadValue     = fmt.Errorf("core: value does not match column type")
	ErrClosed       = fmt.Errorf("core: store closed")
	ErrNoIndex      = fmt.Errorf("core: no secondary index")
)

// ridLocation addresses a base record: which range and which slot.
type ridLocation struct {
	rng  *updateRange
	slot int
}

func (s *Store) locate(rid types.RID) (ridLocation, bool) {
	if !rid.IsBase() {
		return ridLocation{}, false
	}
	idx := (uint64(rid) - 1) / uint64(s.cfg.RangeSize)
	s.rangesMu.RLock()
	defer s.rangesMu.RUnlock()
	if idx >= uint64(len(s.ranges)) {
		return ridLocation{}, false
	}
	r := s.ranges[idx]
	return ridLocation{rng: r, slot: int(uint64(rid) - uint64(r.firstRID))}, true
}
