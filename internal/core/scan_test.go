package core

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lstore/internal/txn"
	"lstore/internal/types"
)

// This file holds the scan-engine oracle: every analytical read path
// (ScanSum, ScanRange, LookupSecondary) must agree with a per-slot readCols
// chain walk at the same snapshot, under concurrent updates and any mix of
// full and per-column merges — extending the lineage invariants held since
// PR 1 to the read side.

// oracleSum is the slow-path reference for ScanSumRIDs: one readCols chain
// walk per slot, no decoded pages, no merged-state shortcuts.
func oracleSum(s *Store, ts types.Timestamp, col int, lo, hi types.RID) (int64, int64) {
	view := asOfView(ts)
	out := make([]uint64, 1)
	cols := []int{col}
	var sum, rows int64
	for ri := 0; ri < s.rangeCount(); ri++ {
		r := s.rangeAt(ri)
		nRows := r.rowCount()
		for slot := 0; slot < nRows; slot++ {
			rid := r.firstRID + types.RID(slot)
			if rid < lo || rid >= hi {
				continue
			}
			res := r.readCols(view, slot, cols, out)
			if res.exists && out[0] != types.NullSlot {
				sum += types.DecodeInt64(out[0])
				rows++
			}
		}
	}
	return sum, rows
}

// oracleRange is the slow-path reference for ScanRange: rows flattened as
// (key, cols...) in RID order.
func oracleRange(s *Store, ts types.Timestamp, cols []int, lo, hi types.RID) []int64 {
	view := asOfView(ts)
	readCols := append(append([]int{}, cols...), s.schema.Key)
	out := make([]uint64, len(readCols))
	var flat []int64
	for ri := 0; ri < s.rangeCount(); ri++ {
		r := s.rangeAt(ri)
		nRows := r.rowCount()
		for slot := 0; slot < nRows; slot++ {
			rid := r.firstRID + types.RID(slot)
			if rid < lo || rid >= hi {
				continue
			}
			res := r.readCols(view, slot, readCols, out)
			if !res.exists {
				continue
			}
			flat = append(flat, types.DecodeInt64(out[len(out)-1]))
			for i := range cols {
				flat = append(flat, int64(out[i]))
			}
		}
	}
	return flat
}

// engineRange collects ScanRange's rows in the oracle's flat shape.
func engineRange(s *Store, ts types.Timestamp, cols []int, lo, hi types.RID) []int64 {
	var flat []int64
	s.ScanRange(ts, cols, lo, hi, func(key int64, vals []types.Value) bool {
		flat = append(flat, key)
		for i, c := range cols {
			flat = append(flat, int64(s.encodeOracle(c, vals[i])))
		}
		return true
	})
	return flat
}

// encodeOracle re-encodes a decoded value for comparison with raw slots.
func (s *Store) encodeOracle(col int, v types.Value) uint64 {
	sv, err := s.encodeValue(col, v)
	if err != nil {
		panic(err)
	}
	return sv
}

// oracleFiltered is the slow-path reference for ScanFiltered: one readCols
// chain walk per slot with the predicates evaluated scalar-wise on the walk
// output, rows flattened in RID order.
func oracleFiltered(s *Store, ts types.Timestamp, cols []int, preds []Pred, lo, hi types.RID) []int64 {
	view := asOfView(ts)
	out := make([]uint64, len(cols))
	var flat []int64
	for ri := 0; ri < s.rangeCount(); ri++ {
		r := s.rangeAt(ri)
		nRows := r.rowCount()
		for slot := 0; slot < nRows; slot++ {
			rid := r.firstRID + types.RID(slot)
			if rid < lo || rid >= hi {
				continue
			}
			res := r.readCols(view, slot, cols, out)
			if !res.exists {
				continue
			}
			match := true
			for _, p := range preds {
				if !p.Matches(out[p.Idx]) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			for i := range cols {
				flat = append(flat, int64(out[i]))
			}
		}
	}
	return flat
}

// engineFiltered collects ScanFiltered's raw rows in the oracle's shape.
func engineFiltered(s *Store, ts types.Timestamp, cols []int, preds []Pred, lo, hi types.RID) []int64 {
	var flat []int64
	s.ScanFiltered(ts, cols, preds, lo, hi, func(vals []uint64) bool {
		for _, v := range vals {
			flat = append(flat, int64(v))
		}
		return true
	})
	return flat
}

// oracleAggStates folds oracle-produced flat rows through the same kernels
// the engine uses, so the comparison isolates the scan, not the fold.
func oracleAggStates(flat []int64, stride int, specs []AggSpec) []AggState {
	states := make([]AggState, len(specs))
	vals := make([]uint64, stride)
	for off := 0; off+stride <= len(flat); off += stride {
		for i := 0; i < stride; i++ {
			vals[i] = uint64(flat[off+i])
		}
		foldAgg(states, specs, vals)
	}
	return states
}

// oracleProbeFiltered is the slow-path reference for ProbeFiltered: the same
// index candidate list (stale entries included), per-slot chain walks, and
// scalar predicate re-checks, flattened in ascending base-RID order.
func oracleProbeFiltered(s *Store, ts types.Timestamp, col int, sv uint64, cols []int, preds []Pred) []int64 {
	view := asOfView(ts)
	out := make([]uint64, len(cols))
	rids := s.secondary[col].Lookup(sv)
	sort.Slice(rids, func(i, j int) bool { return rids[i] < rids[j] })
	var flat []int64
	for _, rid := range rids {
		loc, ok := s.locate(rid)
		if !ok {
			continue
		}
		res := loc.rng.readCols(view, loc.slot, cols, out)
		if !res.exists {
			continue
		}
		match := true
		for _, p := range preds {
			if !p.Matches(out[p.Idx]) {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		for i := range cols {
			flat = append(flat, int64(out[i]))
		}
	}
	return flat
}

// oracleSecondary is the slow-path reference for LookupSecondary.
func oracleSecondary(s *Store, ts types.Timestamp, col int, sv uint64) []int64 {
	view := asOfView(ts)
	readCols := []int{col, s.schema.Key}
	out := make([]uint64, 2)
	var keys []int64
	for _, rid := range s.secondary[col].Lookup(sv) {
		loc, ok := s.locate(rid)
		if !ok {
			continue
		}
		res := loc.rng.readCols(view, loc.slot, readCols, out)
		if res.exists && out[0] == sv {
			keys = append(keys, types.DecodeInt64(out[1]))
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func equalAggStates(a, b []AggState) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedCopy(in []int64) []int64 {
	out := append([]int64{}, in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalI64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// scanOracleConfig builds a store with small ranges, a secondary index on
// column 2, and the given scan pool size.
func scanOracleConfig(workers int) Config {
	cfg := testConfig() // RangeSize 64, TailBlockSize 16, MergeBatch 8
	cfg.ScanWorkers = workers
	cfg.SecondaryIndexColumns = []int{2}
	return cfg
}

// runScanOracle drives concurrent writers and mergers while the main
// goroutine repeatedly compares every engine path against the readCols
// oracle at a fixed snapshot. Optional config mutators select storage
// variants (compression and encoded-scan knobs) for the same property.
func runScanOracle(t *testing.T, workers, iters int, mut ...func(*Config)) {
	cfg := scanOracleConfig(workers)
	for _, m := range mut {
		m(&cfg)
	}
	s := newTestStore(t, cfg)
	const rows = 300 // 4 sealed ranges of 64 + a live insert range
	mustCommit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < rows; i++ {
			insertRow(t, s, tx, i, 10*i, int64(i%7), 30*i)
		}
	})
	s.ForceMerge() // seal the full ranges so sealed fast paths exist from iter 0

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writers: random single- and multi-column updates, occasional deletes,
	// fresh-key inserts (insert-range rollover coverage), and deliberate
	// aborts. Every transaction flips the visibility of at most ONE base RID
	// at commit: the oracle-sandwich below relies on flips being per-RID and
	// non-cancelling (a multi-RID flip, e.g. delete+reinsert in one txn, can
	// be observed torn by a scan that reads the two ranges at different
	// moments — inherent to scanning at a ts inside the pre-commit window,
	// not something the engine can repair).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			fresh := seed * 1_000_000
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tx := s.tm.Begin(txn.ReadCommitted)
				key := r.Int63n(rows)
				var err error
				switch r.Intn(12) {
				case 0:
					err = s.Delete(tx, key)
				case 1:
					// Distinctive column-1 value: no update-flip delta can
					// cancel an insert flip in the sum comparison. Fresh keys
					// are bounded: the oracle walks every row per pass, so
					// unbounded growth compounds (slower passes give writers
					// more wall time) and the -race runs never converge; a
					// few thousand inserts still cover insert-range rollover.
					if fresh < seed*1_000_000+1500 {
						fresh++
						err = s.Insert(tx, []types.Value{
							types.IntValue(fresh), types.IntValue(1_000_000_000 + fresh),
							types.IntValue(int64(r.Intn(7))), types.IntValue(fresh),
						})
					} else {
						err = s.Update(tx, key, []int{1},
							[]types.Value{types.IntValue(int64(i))})
					}
				case 2:
					err = s.Update(tx, key, []int{1, 2},
						[]types.Value{types.IntValue(int64(i)), types.IntValue(int64(r.Intn(7)))})
				default:
					err = s.Update(tx, key, []int{1 + r.Intn(3)},
						[]types.Value{types.IntValue(int64(i))})
				}
				if err != nil || r.Intn(16) == 0 {
					s.tm.Abort(tx)
					continue
				}
				s.tm.Commit(tx)
			}
		}(int64(w) + 1)
	}

	// Merger: full merges and independent per-column merges interleave so
	// scans see every lineage shape (mv.tps ahead of, equal to, and behind
	// individual column TPS values).
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if r.Intn(3) == 0 {
				s.ForceMerge()
			} else {
				s.MergeColumn(r.Intn(s.rangeCount()), r.Intn(4))
			}
			time.Sleep(200 * time.Microsecond) // don't monopolize small hosts
		}
	}()

	r := rand.New(rand.NewSource(7))
	cols := []int{1, 2}
	for iter := 0; iter < iters; iter++ {
		if iter%8 == 0 {
			time.Sleep(time.Millisecond) // let writers and merger interleave
		}
		ts := s.tm.Now()
		lo, hi := types.RID(0), ^types.RID(0)
		if iter%2 == 1 { // alternate full scans with clamped RID windows
			a := types.RID(1 + r.Int63n(rows))
			b := types.RID(1 + r.Int63n(rows))
			if a > b {
				a, b = b, a
			}
			lo, hi = a, b+1
		}

		// A transaction in pre-commit can hold a commit time <= ts and flip
		// from invisible to visible mid-iteration; the flip is monotone, so
		// sandwiching the engine between two oracle runs and skipping the
		// (rare) iterations where the oracles disagree keeps the comparison
		// sound without weakening the concurrency.
		sumA, rowsA := oracleSum(s, ts, 1, lo, hi)
		gotSum, gotRows := s.ScanSumRIDs(ts, 1, lo, hi)
		sumB, rowsB := oracleSum(s, ts, 1, lo, hi)
		if sumA == sumB && rowsA == rowsB && (gotSum != sumA || gotRows != rowsA) {
			t.Fatalf("iter %d: ScanSumRIDs(%d,%d)=(%d,%d), oracle (%d,%d)",
				iter, lo, hi, gotSum, gotRows, sumA, rowsA)
		}

		wantA := oracleRange(s, ts, cols, lo, hi)
		got := engineRange(s, ts, cols, lo, hi)
		wantB := oracleRange(s, ts, cols, lo, hi)
		if equalI64(wantA, wantB) && !equalI64(got, wantA) {
			t.Fatalf("iter %d: ScanRange(%d,%d) rows diverge: got %d values, want %d",
				iter, lo, hi, len(got), len(wantA))
		}

		sv := types.EncodeInt64(int64(r.Intn(7)))
		keysA := oracleSecondary(s, ts, 2, sv)
		gotKeys, err := s.LookupSecondary(ts, 2, types.IntValue(types.DecodeInt64(sv)))
		if err != nil {
			t.Fatal(err)
		}
		keysB := oracleSecondary(s, ts, 2, sv)
		if equalI64(keysA, keysB) && !equalI64(sortedCopy(gotKeys), keysA) {
			t.Fatalf("iter %d: LookupSecondary diverges: got %v want %v",
				iter, sortedCopy(gotKeys), keysA)
		}

		// Predicate pushdown: a window on col 1 plus an equality/negation on
		// col 2, through the filtered bulk face and the aggregate kernels.
		// (Every 4th iteration: each comparison costs two full oracle walks.)
		if iter%4 != 0 {
			continue
		}
		fcols := []int{1, 2, s.schema.Key}
		k := int64(r.Intn(7))
		fpreds := []Pred{
			{Idx: 0, Lo: types.EncodeInt64(0), Hi: types.EncodeInt64(int64(200 + r.Intn(3000)))},
			{Idx: 1, Lo: types.EncodeInt64(k), Hi: types.EncodeInt64(k), Negate: iter%3 == 0},
		}
		specs := []AggSpec{{Op: AggSum, Idx: 0}, {Op: AggCount}, {Op: AggMin, Idx: 0}, {Op: AggMax, Idx: 2}}
		fA := oracleFiltered(s, ts, fcols, fpreds, lo, hi)
		fGot := engineFiltered(s, ts, fcols, fpreds, lo, hi)
		gotStates := s.ScanAggregate(ts, fcols, fpreds, specs, lo, hi)
		fB := oracleFiltered(s, ts, fcols, fpreds, lo, hi)
		if equalI64(fA, fB) {
			if !equalI64(fGot, fA) {
				t.Fatalf("iter %d: ScanFiltered(%d,%d) diverges: got %d values, want %d",
					iter, lo, hi, len(fGot), len(fA))
			}
			if wantStates := oracleAggStates(fA, len(fcols), specs); !equalAggStates(gotStates, wantStates) {
				t.Fatalf("iter %d: ScanAggregate diverges: got %+v want %+v",
					iter, gotStates, wantStates)
			}
		}

		// Index-probe plan with an extra pushed predicate (probe candidates
		// come from the same possibly-stale index list on both sides).
		pcols := []int{2, 1, s.schema.Key}
		ppreds := []Pred{
			{Idx: 0, Lo: sv, Hi: sv},
			{Idx: 1, Lo: types.EncodeInt64(0), Hi: types.EncodeInt64(1 << 40)},
		}
		pA := oracleProbeFiltered(s, ts, 2, sv, pcols, ppreds)
		var pGot []int64
		if err := s.ProbeFiltered(ts, 2, sv, pcols, ppreds, func(vals []uint64) bool {
			for _, v := range vals {
				pGot = append(pGot, int64(v))
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		pB := oracleProbeFiltered(s, ts, 2, sv, pcols, ppreds)
		if equalI64(pA, pB) && !equalI64(pGot, pA) {
			t.Fatalf("iter %d: ProbeFiltered diverges: got %d values, want %d",
				iter, len(pGot), len(pA))
		}
	}
	close(stop)
	wg.Wait()

	st := s.Stats()
	if st.ScanFastSlots == 0 {
		t.Fatal("scan engine never took the fast path")
	}
}

// TestScanEngineMatchesReadColsOracle: sequential scans against the oracle
// under concurrent updates and mixed merge schedules.
func TestScanEngineMatchesReadColsOracle(t *testing.T) {
	runScanOracle(t, 1, 120)
}

// TestParallelScanMatchesReadColsOracle: same property with the worker pool
// forced on (ScanWorkers > ranges scanned is clamped per scan). Run with
// -race this doubles as the data-race test for parallel scans.
func TestParallelScanMatchesReadColsOracle(t *testing.T) {
	runScanOracle(t, 4, 120)
}

// TestScanOracleStorageVariants re-runs the oracle property across the
// compression knob matrix: raw pages, compressed pages with the encoded
// predicate path disabled (decode-then-filter), and each again under the
// parallel pool. The default config (compressed + encoded scan) is covered
// by the two tests above; together the four variants pin the "one scan
// engine" invariant — every storage representation must produce identical
// results through the identical engine surface.
func TestScanOracleStorageVariants(t *testing.T) {
	raw := func(c *Config) { c.DisableCompression = true }
	noEnc := func(c *Config) { c.DisableEncodedScan = true }
	// A pool cap of ~4 raw frames against 4+ sealed ranges × 4 pages each:
	// every scan churns through misses and evictions while writers and the
	// merge republish pages — the beyond-RAM variant of the same property.
	spill := func(c *Config) { c.Spill = NewMemSpill(); c.PoolBytes = 2048 }
	t.Run("raw", func(t *testing.T) { runScanOracle(t, 1, 60, raw) })
	t.Run("decode-then-filter", func(t *testing.T) { runScanOracle(t, 1, 60, noEnc) })
	t.Run("raw-parallel", func(t *testing.T) { runScanOracle(t, 4, 60, raw) })
	t.Run("decode-then-filter-parallel", func(t *testing.T) { runScanOracle(t, 4, 60, noEnc) })
	t.Run("spill", func(t *testing.T) { runScanOracle(t, 1, 60, spill) })
	t.Run("spill-parallel", func(t *testing.T) { runScanOracle(t, 4, 60, spill) })
	t.Run("spill-raw-parallel", func(t *testing.T) { runScanOracle(t, 4, 60, raw, spill) })
}

// TestParallelScanRangeOrderAndEarlyStop: parallel ScanRange must deliver
// exactly the sequential row order, and a false-returning callback must stop
// the scan after precisely the rows seen so far.
func TestParallelScanRangeOrderAndEarlyStop(t *testing.T) {
	cfg := scanOracleConfig(4)
	s := newTestStore(t, cfg)
	const rows = 256 // 4 ranges
	mustCommit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < rows; i++ {
			insertRow(t, s, tx, i, i, i%7, -i)
		}
	})
	mustCommit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < rows; i += 3 {
			if err := s.Update(tx, i, []int{1}, []types.Value{types.IntValue(1000 + i)}); err != nil {
				t.Fatal(err)
			}
		}
	})
	s.ForceMerge()
	ts := s.tm.Now()
	cols := []int{1, 3}

	full := oracleRange(s, ts, cols, 0, ^types.RID(0))
	got := engineRange(s, ts, cols, 0, ^types.RID(0))
	if !equalI64(got, full) {
		t.Fatalf("parallel ScanRange order diverges from sequential oracle")
	}

	stride := 1 + len(cols)
	for _, stopAfter := range []int{1, 65, 130} {
		var seen []int64
		n := 0
		s.ScanRange(ts, cols, 0, ^types.RID(0), func(key int64, vals []types.Value) bool {
			seen = append(seen, key)
			n++
			return n < stopAfter
		})
		if n != stopAfter {
			t.Fatalf("early stop after %d rows delivered %d", stopAfter, n)
		}
		for i := 0; i < n; i++ {
			if seen[i] != full[i*stride] {
				t.Fatalf("stopAfter=%d: row %d key %d, want %d", stopAfter, i, seen[i], full[i*stride])
			}
		}
	}
}

// TestFilteredPlansQuiesced: on a quiesced store (writers stopped, index
// complete) the index-probe plan and the filtered bulk scan must produce
// exactly the same rows for the same predicates, both matching the chain-walk
// oracle; predicate windows over nulls and negations must behave; and a
// false-returning ScanFiltered callback must stop after precisely the rows
// seen so far.
func TestFilteredPlansQuiesced(t *testing.T) {
	for _, workers := range []int{1, 4} {
		s := newTestStore(t, scanOracleConfig(workers))
		const rows = 300
		mustCommit(t, s, func(tx *txn.Txn) {
			for i := int64(0); i < rows; i++ {
				insertRow(t, s, tx, i, 10*i, i%7, 30*i)
			}
		})
		// Null out col 1 of every 11th record; update col 2 of every 5th so
		// stale index entries exist for the old value.
		mustCommit(t, s, func(tx *txn.Txn) {
			for i := int64(0); i < rows; i += 11 {
				if err := s.Update(tx, i, []int{1}, []types.Value{types.NullValue()}); err != nil {
					t.Fatal(err)
				}
			}
			for i := int64(0); i < rows; i += 5 {
				if err := s.Update(tx, i, []int{2}, []types.Value{types.IntValue((i + 1) % 7)}); err != nil {
					t.Fatal(err)
				}
			}
		})
		s.ForceMerge()
		ts := s.tm.Now()

		cols := []int{2, 1, s.schema.Key}
		for k := int64(0); k < 7; k++ {
			sv := types.EncodeInt64(k)
			preds := []Pred{
				{Idx: 0, Lo: sv, Hi: sv},
				{Idx: 1, Lo: types.EncodeInt64(0), Hi: types.EncodeInt64(1 << 40)},
			}
			want := oracleFiltered(s, ts, cols, preds, 0, ^types.RID(0))
			if got := engineFiltered(s, ts, cols, preds, 0, ^types.RID(0)); !equalI64(got, want) {
				t.Fatalf("workers=%d k=%d: filtered scan diverges from oracle", workers, k)
			}
			var probe []int64
			if err := s.ProbeFiltered(ts, 2, sv, cols, preds, func(vals []uint64) bool {
				for _, v := range vals {
					probe = append(probe, int64(v))
				}
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if !equalI64(probe, want) {
				t.Fatalf("workers=%d k=%d: probe plan != scan plan (%d vs %d values)",
					workers, k, len(probe), len(want))
			}
		}

		// IS NULL / IS NOT NULL windows on the nulled column.
		isNull := []Pred{{Idx: 0, Lo: types.NullSlot, Hi: types.NullSlot}}
		notNull := []Pred{{Idx: 0, Lo: types.NullSlot, Hi: types.NullSlot, Negate: true}}
		ncols := []int{1, s.schema.Key}
		nullRows := len(engineFiltered(s, ts, ncols, isNull, 0, ^types.RID(0))) / len(ncols)
		liveRows := len(engineFiltered(s, ts, ncols, notNull, 0, ^types.RID(0))) / len(ncols)
		wantNull := (rows + 10) / 11
		if nullRows != wantNull || liveRows != rows-wantNull {
			t.Fatalf("workers=%d: null split %d/%d, want %d/%d",
				workers, nullRows, liveRows, wantNull, rows-wantNull)
		}

		// An unmatchable window yields nothing without touching rows.
		none := []Pred{{Idx: 0, Lo: types.EncodeInt64(1 << 41), Hi: types.EncodeInt64(1 << 42)}}
		if got := engineFiltered(s, ts, cols, none, 0, ^types.RID(0)); len(got) != 0 {
			t.Fatalf("workers=%d: unmatchable predicate returned %d values", workers, len(got))
		}

		// Early stop: exactly stopAfter rows, in sequential order.
		all := oracleFiltered(s, ts, cols, nil, 0, ^types.RID(0))
		for _, stopAfter := range []int{1, 70, 150} {
			var seen []int64
			n := 0
			s.ScanFiltered(ts, cols, nil, 0, ^types.RID(0), func(vals []uint64) bool {
				seen = append(seen, int64(vals[len(vals)-1]))
				n++
				return n < stopAfter
			})
			if n != stopAfter {
				t.Fatalf("workers=%d: early stop after %d rows delivered %d", workers, stopAfter, n)
			}
			for i := 0; i < n; i++ {
				if seen[i] != all[i*len(cols)+len(cols)-1] {
					t.Fatalf("workers=%d stopAfter=%d: row %d key %d, want %d",
						workers, stopAfter, i, seen[i], all[i*len(cols)+len(cols)-1])
				}
			}
		}
		s.Close()
	}
}

// TestBareCountSeesUnmergedDeletes: a COUNT with no materialized columns is
// the one plan whose readCols is empty — gatherCols degenerates to sentinel
// TPS extrema there, so the merged fast path must be bypassed or deletes
// newer than the last merge are wrongly served from merged pages
// (regression: found by review of the query-API PR).
func TestBareCountSeesUnmergedDeletes(t *testing.T) {
	for _, workers := range []int{1, 4} {
		s := newTestStore(t, scanOracleConfig(workers))
		const rows = 256 // several ranges so the parallel dispatch engages
		mustCommit(t, s, func(tx *txn.Txn) {
			for i := int64(0); i < rows; i++ {
				insertRow(t, s, tx, i, i, i%7, -i)
			}
		})
		// Update every row so updatedBits is set and the merge publishes a
		// Last Updated Time per slot, then delete some WITHOUT re-merging.
		mustCommit(t, s, func(tx *txn.Txn) {
			for i := int64(0); i < rows; i++ {
				if err := s.Update(tx, i, []int{1}, []types.Value{types.IntValue(i + 100)}); err != nil {
					t.Fatal(err)
				}
			}
		})
		s.ForceMerge()
		const deleted = 10
		mustCommit(t, s, func(tx *txn.Txn) {
			for i := int64(0); i < deleted; i++ {
				if err := s.Delete(tx, i); err != nil {
					t.Fatal(err)
				}
			}
		})
		ts := s.tm.Now()
		states := s.ScanAggregate(ts, nil, nil, []AggSpec{{Op: AggCount}}, 0, ^types.RID(0))
		if got := states[0].Count; got != rows-deleted {
			t.Fatalf("workers=%d: bare count = %d, want %d", workers, got, rows-deleted)
		}
		// Zero-width rows cannot ride the parallel staging buffers;
		// ScanFiltered must fall back to the sequential path (a stride-0
		// drain loop would spin forever) and still see the deletes.
		var n int64
		s.ScanFiltered(ts, nil, nil, 0, ^types.RID(0), func(vals []uint64) bool {
			n++
			return true
		})
		if n != rows-deleted {
			t.Fatalf("workers=%d: zero-column ScanFiltered saw %d rows, want %d", workers, n, rows-deleted)
		}
		// The point face must agree when probed without columns.
		var out [0]uint64
		var cvs [0]*colVersion
		loc, _ := s.locate(1)
		if exists, _ := s.probeSlot(ts, loc.rng, loc.slot, nil, out[:], cvs[:]); exists {
			t.Fatal("probeSlot with no columns served an unmerged-deleted slot")
		}
		s.Close()
	}
}

// TestScanSumParallelDeterministic: the parallel aggregate must be bit-equal
// across repeated runs and equal to a single-threaded pass over the same
// frozen snapshot.
func TestScanSumParallelDeterministic(t *testing.T) {
	s := newTestStore(t, scanOracleConfig(4))
	const rows = 320
	mustCommit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < rows; i++ {
			insertRow(t, s, tx, i, i*i, i%7, i)
		}
	})
	s.ForceMerge()
	ts := s.tm.Now()
	wantSum, wantRows := oracleSum(s, ts, 1, 0, ^types.RID(0))
	var firstSum atomic.Int64
	for rep := 0; rep < 20; rep++ {
		sum, n := s.ScanSumRIDs(ts, 1, 0, ^types.RID(0))
		if sum != wantSum || n != wantRows {
			t.Fatalf("rep %d: (%d,%d) != oracle (%d,%d)", rep, sum, n, wantSum, wantRows)
		}
		if rep == 0 {
			firstSum.Store(sum)
		} else if sum != firstSum.Load() {
			t.Fatalf("rep %d: nondeterministic sum", rep)
		}
	}
	if st := s.Stats(); st.ScanWorkers != 4 {
		t.Fatalf("ScanWorkers gauge = %d, want 4", st.ScanWorkers)
	}
}
