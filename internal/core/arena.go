package core

import (
	"sync"

	"lstore/internal/page"
)

// mergeArena pools the merge/seal path's scratch vectors. One merge used to
// allocate per column — the Start Time slab, a consolidation buffer per
// touched column, the meta-column slabs, and the resolved-prefix staging
// slice — all of it garbage the moment the new page versions published.
// The arena keeps one reusable copy of each; page.EncodeScratch copies on
// the raw fallback (the only encoding that would alias its input), so every
// published page is safe against the arena's next reuse.
//
// The row layout's slab is intentionally NOT pooled: it is published inside
// the rowView page readers and stays live for the version's lifetime.
//
// BenchmarkMergeAllocs guards the steady-state allocation count of this path.
type mergeArena struct {
	starts []uint64 // seal: resolved Start Time slab
	vals   []uint64 // seal: per-column consolidation buffer (reused per column)
	meta1  []uint64 // Last Updated scratch (seal: the all-∅ slab)
	meta2  []uint64 // Schema Encoding scratch (seal: the all-zero slab)

	prefix []mergedTail // collectPrefixLocked staging

	// work[c] is column c's decode+consolidate buffer for full merges;
	// workUsed marks which columns this merge actually touched (the old map
	// keyed the same information).
	work     [][]uint64
	workUsed []bool
}

var mergeArenaPool = sync.Pool{New: func() any { return new(mergeArena) }}

func getMergeArena() *mergeArena { return mergeArenaPool.Get().(*mergeArena) }

// putMergeArena returns a to the pool, dropping tail-block references so
// pooled arenas do not pin retired blocks.
func putMergeArena(a *mergeArena) {
	for i := range a.prefix {
		a.prefix[i] = mergedTail{}
	}
	a.prefix = a.prefix[:0]
	for i := range a.workUsed {
		a.workUsed[i] = false
	}
	mergeArenaPool.Put(a)
}

// u64 resizes *buf to n slots (contents unspecified) and returns it.
func (a *mergeArena) u64(buf *[]uint64, n int) []uint64 {
	if cap(*buf) < n {
		*buf = make([]uint64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// colScratch sizes the per-column work table.
func (a *mergeArena) colScratch(ncols int) {
	if cap(a.work) < ncols {
		a.work = make([][]uint64, ncols)
		a.workUsed = make([]bool, ncols)
	}
	a.work = a.work[:ncols]
	a.workUsed = a.workUsed[:ncols]
	for i := range a.workUsed {
		a.workUsed[i] = false
	}
}

// encodePage publishes a base page from arena-backed scratch: codec selection
// per the column's value distribution (§4.1 step 3), or a raw copy when
// compression is disabled. Either way the result never aliases vals.
func (s *Store) encodePage(vals []uint64) page.Reader {
	if s.cfg.DisableCompression {
		return page.NewRaw(append(make([]uint64, 0, len(vals)), vals...))
	}
	return page.EncodeScratch(vals)
}
