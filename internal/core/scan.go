package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"lstore/internal/page"
	"lstore/internal/types"
)

// This file is the table's one columnar batch-read subsystem: every
// analytical read path — ScanSum/ScanSumRIDs, ScanRange, and the probe side
// of LookupSecondary — funnels through it instead of growing its own inline
// fast path (§4.2's TPS interpretation and §6.1's "SUM over a continuously
// updated column" are the shapes it serves).
//
// The engine has two faces:
//
//   - rangeScanner: the bulk face. For a sealed range it decodes the needed
//     column pages and the Start/Last Updated meta pages once into pooled
//     scratch buffers (one sequential decompression instead of per-slot
//     point access), classifies slots word-at-a-time against the packed
//     ever-updated bitmap (64 clean slots per load), and walks the readCols
//     chain only for slots with unmerged lineage.
//
//   - probeSlot: the point face. Secondary-index probes hit scattered slots,
//     so bulk decode would not amortize; the probe applies the same
//     classification per slot against the compressed pages directly.
//
// Scans optionally fan independent ranges out across a worker pool
// (Config.ScanWorkers): aggregates merge per-worker partials after the pool
// drains, and callback scans stage each range's rows so delivery order is
// exactly the sequential order.

// ---------------------------------------------------------------------------
// Pooled scratch

// scanScratch holds one scanner's decode buffers. Scratch cycles through a
// sync.Pool so steady-state scans allocate nothing regardless of range count
// or column count.
type scanScratch struct {
	data  [][]uint64    // decoded data page per requested column
	cvs   []*colVersion // pinned column versions (immutable snapshots)
	start []uint64      // decoded Start Time meta page
	last  []uint64      // decoded Last Updated Time meta page
	out   []uint64      // readCols fallback output
	vals  []uint64      // per-slot staging row handed to emit
	rids  []types.RID   // secondary-index probe buffer
}

var scanScratchPool = sync.Pool{New: func() any { return new(scanScratch) }}

// rowBatch stages one range's emitted rows for the ordered parallel
// ScanRange pipeline (flat, stride = len(readCols)).
type rowBatch struct{ rows []uint64 }

var rowBatchPool = sync.Pool{New: func() any { return new(rowBatch) }}

// ---------------------------------------------------------------------------
// rangeScanner: the bulk face

// gatherCols captures the requested columns' immutable base versions into
// cvs and returns their TPS extrema; ok is false while any column is still
// unsealed. Both engine faces pin versions through this so the tps checks
// and the page reads always use the same snapshots.
func gatherCols(r *updateRange, cols []int, cvs []*colVersion) (minTPS, maxTPS types.RID, ok bool) {
	minTPS = ^types.RID(0)
	for i, c := range cols {
		cv := r.colVer(c)
		if cv == nil {
			return 0, 0, false
		}
		cvs[i] = cv
		if cv.tps < minTPS {
			minTPS = cv.tps
		}
		if cv.tps > maxTPS {
			maxTPS = cv.tps
		}
	}
	return minTPS, maxTPS, true
}

// mergedCurrent is the engine's ONE merged-visibility predicate: it reports
// whether an updated slot's merged base-page state is exactly its state at
// ts — base record visible (raw, the slot's resolved Start Time), the whole
// version chain consolidated into every requested column (Indirection at or
// below minTPS), and the newest consolidated change committed at or before
// the snapshot (lu, the slot's Last Updated Time). deleted reports a merged
// delete tombstone. raw and lu must come from one meta version satisfying
// mv.tps >= maxTPS, or lu may not cover everything the column TPS claims
// (§4.2's TPS interpretation + the Last Updated Time column's purpose).
func (r *updateRange) mergedCurrent(ts types.Timestamp, slot int, raw, lu uint64, minTPS types.RID) (serve, deleted bool) {
	if raw == types.NullSlot || raw > ts {
		return false, false
	}
	if ind := r.loadIndirection(slot); ind == 0 || ind > minTPS {
		return false, false
	}
	if lu == types.NullSlot || lu > ts {
		return false, false
	}
	return true, r.isMergedDeleted(slot)
}

// rangeScanner streams the visible records of ranges under one snapshot
// view. A scanner is single-goroutine; parallel scans give each worker its
// own. fast/slow count slots served from decoded pages vs the chain walk
// (flushed into the store gauges by finish).
type rangeScanner struct {
	s    *Store
	ts   types.Timestamp
	view readView
	cols []int
	sc   *scanScratch
	fast int64
	slow int64
}

func newRangeScanner(s *Store, ts types.Timestamp, cols []int) rangeScanner {
	rs := rangeScanner{
		s:    s,
		ts:   ts,
		view: asOfView(ts),
		cols: cols,
		sc:   scanScratchPool.Get().(*scanScratch),
	}
	n := len(cols)
	sc := rs.sc
	if cap(sc.data) < n {
		sc.data = make([][]uint64, n)
	}
	sc.data = sc.data[:n]
	if cap(sc.cvs) < n {
		sc.cvs = make([]*colVersion, n)
	}
	sc.cvs = sc.cvs[:n]
	if cap(sc.out) < n {
		sc.out = make([]uint64, n)
	}
	sc.out = sc.out[:n]
	if cap(sc.vals) < n {
		sc.vals = make([]uint64, n)
	}
	sc.vals = sc.vals[:n]
	return rs
}

// finish flushes the slot gauges and returns the scratch to the pool.
func (rs *rangeScanner) finish() {
	if rs.fast != 0 {
		rs.s.stats.ScanFastSlots.Add(uint64(rs.fast))
	}
	if rs.slow != 0 {
		rs.s.stats.ScanSlowSlots.Add(uint64(rs.slow))
	}
	for i := range rs.sc.cvs {
		rs.sc.cvs[i] = nil // do not pin page versions across pool reuse
	}
	scanScratchPool.Put(rs.sc)
	rs.sc = nil
}

// scanRange streams every record of r visible as of rs.ts whose slot lies in
// [slot0, nRows), in slot order. emit receives the slot and the slot-encoded
// values of rs.cols (the slice is reused; copy to retain) and returns false
// to stop the whole scan. scanRange reports whether the scan ran to
// completion.
func (rs *rangeScanner) scanRange(r *updateRange, slot0, nRows int, emit func(slot int, vals []uint64) bool) bool {
	sc := rs.sc
	mv := r.meta.Load()
	var minTPS, maxTPS types.RID
	sealed := mv != nil
	if sealed {
		minTPS, maxTPS, sealed = gatherCols(r, rs.cols, sc.cvs)
	}
	if !sealed {
		return rs.scanUnsealed(r, slot0, nRows, emit)
	}

	// Sealed range: bulk-decode the column pages and the Start/Last Updated
	// meta pages once (sequential decompression, not per-slot point access).
	for i := range rs.cols {
		sc.data[i] = decodeInto(sc.data[i][:0], sc.cvs[i].data)
	}
	sc.start = decodeInto(sc.start[:0], mv.startTime)
	sc.last = decodeInto(sc.last[:0], mv.lastUpdated)
	// The merged fast path for updated slots relies on Last Updated Time
	// covering every record any requested column's TPS claims (true unless
	// an independent column merge ran ahead of the last full merge).
	luValid := mv.tps >= maxTPS
	ts := rs.ts
	vals := sc.vals

	for wi := slot0 >> 6; wi<<6 < nRows; wi++ {
		lo, hi := wi<<6, (wi+1)<<6
		if lo < slot0 {
			lo = slot0
		}
		if hi > nRows {
			hi = nRows
		}
		word := r.updatedBits[wi].Load()
		if word == 0 {
			// 64 never-updated slots: serve straight from the decoded pages.
			for slot := lo; slot < hi; slot++ {
				raw := sc.start[slot]
				if raw == types.NullSlot || raw > ts {
					continue // absent, aborted, or inserted after ts
				}
				for i := range vals {
					vals[i] = sc.data[i][slot]
				}
				rs.fast++
				if !emit(slot, vals) {
					return false
				}
			}
			continue
		}
		for slot := lo; slot < hi; slot++ {
			if word&(1<<uint(slot&63)) == 0 {
				raw := sc.start[slot]
				if raw == types.NullSlot || raw > ts {
					continue
				}
				for i := range vals {
					vals[i] = sc.data[i][slot]
				}
				rs.fast++
				if !emit(slot, vals) {
					return false
				}
				continue
			}
			// Updated record, but fully merged into every requested column
			// and last changed at or before the snapshot: the merged page
			// values ARE the values at ts.
			if luValid {
				if serve, deleted := r.mergedCurrent(ts, slot, sc.start[slot], sc.last[slot], minTPS); serve {
					if deleted {
						continue // deleted at or before lu <= ts
					}
					for i := range vals {
						vals[i] = sc.data[i][slot]
					}
					rs.fast++
					if !emit(slot, vals) {
						return false
					}
					continue
				}
			}
			// Unmerged lineage: the chain walk decides.
			rs.slow++
			res := r.readCols(rs.view, slot, rs.cols, sc.out)
			if !res.exists {
				continue
			}
			copy(vals, sc.out)
			if !emit(slot, vals) {
				return false
			}
		}
	}
	return true
}

// scanUnsealed handles insert ranges (and the brief window while a seal
// publishes versions): base values still live in table-level tail pages and
// visibility may need transaction resolution, so clean slots read the pages
// point-wise and everything unresolved falls back to the chain walk.
func (rs *rangeScanner) scanUnsealed(r *updateRange, slot0, nRows int, emit func(slot int, vals []uint64) bool) bool {
	sc := rs.sc
	ts := rs.ts
	vals := sc.vals
	for wi := slot0 >> 6; wi<<6 < nRows; wi++ {
		lo, hi := wi<<6, (wi+1)<<6
		if lo < slot0 {
			lo = slot0
		}
		if hi > nRows {
			hi = nRows
		}
		word := r.updatedBits[wi].Load()
		for slot := lo; slot < hi; slot++ {
			if word&(1<<uint(slot&63)) == 0 {
				raw := r.baseStartSlot(slot)
				if raw == types.NullSlot {
					continue
				}
				if !types.IsTxnID(raw) {
					if raw > ts {
						continue
					}
					for i, c := range rs.cols {
						vals[i] = r.baseValue(slot, c)
					}
					rs.fast++
					if !emit(slot, vals) {
						return false
					}
					continue
				}
				// Unresolved insert: fall through to the chain walk.
			}
			rs.slow++
			res := r.readCols(rs.view, slot, rs.cols, sc.out)
			if !res.exists {
				continue
			}
			copy(vals, sc.out)
			if !emit(slot, vals) {
				return false
			}
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// probeSlot: the point face

// probeSlot resolves cols of one base slot as of ts without bulk decode —
// the shape of secondary-index probes, whose scattered slots would not
// amortize a page decompression. Classification mirrors rangeScanner:
// never-updated slots read base pages directly, fully merged slots whose
// lineage pre-dates the snapshot read the merged pages, everything else
// walks the readCols chain. cvs is caller scratch (len(cols)); fast reports
// which side served the probe.
func (s *Store) probeSlot(ts types.Timestamp, r *updateRange, slot int, cols []int, out []uint64, cvs []*colVersion) (exists, fast bool) {
	if r.updatedBits[slot>>6].Load()&(1<<uint(slot&63)) == 0 {
		raw := r.baseStartSlot(slot)
		if raw == types.NullSlot {
			return false, true // aborted insert or never-written slot
		}
		if !types.IsTxnID(raw) {
			if raw > ts {
				return false, true
			}
			for i, c := range cols {
				out[i] = r.baseValue(slot, c)
			}
			return true, true
		}
		// Unresolved insert: chain walk below.
	} else if mv := r.meta.Load(); mv != nil {
		if minTPS, maxTPS, sealed := gatherCols(r, cols, cvs); sealed && mv.tps >= maxTPS {
			serve, deleted := r.mergedCurrent(ts, slot, mv.startTime.Get(slot), mv.lastUpdated.Get(slot), minTPS)
			if serve {
				if deleted {
					return false, true
				}
				for i := range cols {
					out[i] = cvs[i].data.Get(slot)
				}
				return true, true
			}
		}
	}
	res := r.readCols(asOfView(ts), slot, cols, out)
	return res.exists, false
}

// ---------------------------------------------------------------------------
// Scan planning and the worker pool

// scanTarget is one range's slice of a RID-bounded scan: slots
// [slot0, nRows) of r intersect the requested RID window.
type scanTarget struct {
	r     *updateRange
	slot0 int
	nRows int
}

// scanTargets clamps [loRID, hiRID) onto the table's ranges, computing each
// intersecting range's slot window up front instead of testing every slot's
// RID inside the hot loop.
func (s *Store) scanTargets(loRID, hiRID types.RID) []scanTarget {
	nRanges := s.rangeCount()
	targets := make([]scanTarget, 0, nRanges)
	for ri := 0; ri < nRanges; ri++ {
		r := s.rangeAt(ri)
		if r.firstRID+types.RID(r.n) <= loRID || r.firstRID >= hiRID {
			continue
		}
		nRows := r.rowCount()
		if hiRID < r.firstRID+types.RID(nRows) {
			nRows = int(hiRID - r.firstRID)
		}
		slot0 := 0
		if loRID > r.firstRID {
			slot0 = int(loRID - r.firstRID)
		}
		if slot0 >= nRows {
			continue
		}
		targets = append(targets, scanTarget{r: r, slot0: slot0, nRows: nRows})
	}
	return targets
}

// scanWorkersFor bounds the per-scan pool: never more workers than the
// configured pool or than ranges to scan.
func (s *Store) scanWorkersFor(nTargets int) int {
	w := s.cfg.ScanWorkers
	if w > nTargets {
		w = nTargets
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ---------------------------------------------------------------------------
// Public scans (analytical reads, snapshot isolation)

// ScanSum computes SUM(col) over live records as of ts — the benchmark scan
// of §6.1 ("SUM aggregation on a column that is continuously updated").
// It returns the sum and the number of contributing records.
func (s *Store) ScanSum(ts types.Timestamp, col int) (sum int64, rows int64) {
	return s.ScanSumRIDs(ts, col, 0, ^types.RID(0))
}

// ScanSumRIDs is ScanSum over base RIDs in [loRID, hiRID) — the harness's
// "scan 10% of the table" shape. Ranges fan out across the scan worker pool
// when Config.ScanWorkers allows; per-worker partial aggregates are merged
// after the pool drains (exact integer addition, so the result is identical
// for every schedule).
func (s *Store) ScanSumRIDs(ts types.Timestamp, col int, loRID, hiRID types.RID) (sum int64, rows int64) {
	g := s.em.Pin()
	defer g.Unpin()
	targets := s.scanTargets(loRID, hiRID)
	cols := []int{col}
	if workers := s.scanWorkersFor(len(targets)); workers > 1 {
		sum, rows = s.parallelSum(targets, ts, cols, workers)
	} else {
		rs := newRangeScanner(s, ts, cols)
		for _, t := range targets {
			rs.scanRange(t.r, t.slot0, t.nRows, func(_ int, vals []uint64) bool {
				if v := vals[0]; v != types.NullSlot {
					sum += types.DecodeInt64(v)
					rows++
				}
				return true
			})
		}
		rs.finish()
	}
	s.stats.Scans.Add(1)
	return sum, rows
}

// parallelSum fans targets out across workers. Each worker owns a scanner
// (its own pooled scratch) and a partial aggregate; partials merge in worker
// order once the pool drains. The caller's epoch pin covers every worker.
func (s *Store) parallelSum(targets []scanTarget, ts types.Timestamp, cols []int, workers int) (int64, int64) {
	var next atomic.Int64
	sums := make([]int64, workers)
	counts := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rs := newRangeScanner(s, ts, cols)
			var sum, rows int64
			for {
				i := int(next.Add(1)) - 1
				if i >= len(targets) {
					break
				}
				t := targets[i]
				rs.scanRange(t.r, t.slot0, t.nRows, func(_ int, vals []uint64) bool {
					if v := vals[0]; v != types.NullSlot {
						sum += types.DecodeInt64(v)
						rows++
					}
					return true
				})
			}
			sums[w], counts[w] = sum, rows
			rs.finish()
		}(w)
	}
	wg.Wait()
	var sum, rows int64
	for w := 0; w < workers; w++ {
		sum += sums[w]
		rows += counts[w]
	}
	return sum, rows
}

// ScanRange applies fn to the requested columns of every live record (as of
// ts) whose base RID falls in [loRID, hiRID), in RID order; fn returning
// false stops the scan. Pass 0,^0 for a full scan. With ScanWorkers > 1
// ranges are scanned concurrently but fn still runs only on the calling
// goroutine and observes exactly the sequential row order.
func (s *Store) ScanRange(ts types.Timestamp, cols []int, loRID, hiRID types.RID, fn func(key int64, vals []types.Value) bool) {
	g := s.em.Pin()
	defer g.Unpin()
	readCols := make([]int, 0, len(cols)+1)
	readCols = append(readCols, cols...)
	readCols = append(readCols, s.schema.Key)
	targets := s.scanTargets(loRID, hiRID)
	vals := make([]types.Value, len(cols))
	if workers := s.scanWorkersFor(len(targets)); workers > 1 {
		s.parallelRange(targets, ts, readCols, cols, vals, fn, workers)
	} else {
		rs := newRangeScanner(s, ts, readCols)
		for _, t := range targets {
			if !rs.scanRange(t.r, t.slot0, t.nRows, func(_ int, out []uint64) bool {
				for i, c := range cols {
					vals[i] = s.decodeValue(c, out[i])
				}
				return fn(types.DecodeInt64(out[len(out)-1]), vals)
			}) {
				break
			}
		}
		rs.finish()
	}
	s.stats.Scans.Add(1)
}

// parallelRange scans targets concurrently while preserving sequential
// delivery: workers stage each range's visible rows in a pooled flat buffer
// and the caller's goroutine drains the batches in range order, so fn is
// never called concurrently and sees rows exactly as a sequential scan
// would. Workers acquire a semaphore slot BEFORE claiming a range index, so
// the lowest outstanding range always holds a slot and the in-order drain
// cannot deadlock; at most `workers` staged batches exist at once. A false
// return from fn raises the stop flag — in-flight workers then publish
// empty batches and the drain completes cheaply.
func (s *Store) parallelRange(targets []scanTarget, ts types.Timestamp, readCols, cols []int, vals []types.Value, fn func(int64, []types.Value) bool, workers int) {
	stride := len(readCols)
	batches := make([]chan *rowBatch, len(targets))
	for i := range batches {
		batches[i] = make(chan *rowBatch, 1)
	}
	sem := make(chan struct{}, workers)
	var next atomic.Int64
	var stopped atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs := newRangeScanner(s, ts, readCols)
			for {
				sem <- struct{}{}
				i := int(next.Add(1)) - 1
				if i >= len(targets) {
					<-sem
					break
				}
				b := rowBatchPool.Get().(*rowBatch)
				b.rows = b.rows[:0]
				if !stopped.Load() {
					t := targets[i]
					rs.scanRange(t.r, t.slot0, t.nRows, func(_ int, out []uint64) bool {
						b.rows = append(b.rows, out...)
						return !stopped.Load()
					})
				}
				batches[i] <- b
			}
			rs.finish()
		}()
	}
	for i := range targets {
		b := <-batches[i]
		<-sem
		rows := b.rows
		for off := 0; off+stride <= len(rows) && !stopped.Load(); off += stride {
			out := rows[off : off+stride]
			for j, c := range cols {
				vals[j] = s.decodeValue(c, out[j])
			}
			if !fn(types.DecodeInt64(out[stride-1]), vals) {
				stopped.Store(true)
			}
		}
		b.rows = rows[:0]
		rowBatchPool.Put(b)
	}
	wg.Wait()
}

// LookupSecondary returns the keys of live records whose column col
// currently has value v (snapshot at ts), re-evaluating the predicate
// against the visible version as §3.1 requires for possibly-stale entries.
// Probes ride the scan engine's point face: never-updated and fully merged
// records resolve against base pages without a chain walk.
func (s *Store) LookupSecondary(ts types.Timestamp, col int, v types.Value) ([]int64, error) {
	sec, ok := s.secondary[col]
	if !ok {
		return nil, fmt.Errorf("core: no secondary index on column %d", col)
	}
	sv, err := s.encodeValue(col, v)
	if err != nil {
		return nil, err
	}
	g := s.em.Pin()
	defer g.Unpin()
	sc := scanScratchPool.Get().(*scanScratch)
	sc.rids = sec.LookupAppend(sc.rids[:0], sv)
	readCols := [2]int{col, s.schema.Key}
	var cvs [2]*colVersion
	var out [2]uint64
	var keys []int64
	var fast, slow int64
	for _, rid := range sc.rids {
		loc, ok := s.locate(rid)
		if !ok {
			continue
		}
		exists, served := s.probeSlot(ts, loc.rng, loc.slot, readCols[:], out[:], cvs[:])
		if served {
			fast++
		} else {
			slow++
		}
		if exists && out[0] == sv { // predicate re-check
			keys = append(keys, types.DecodeInt64(out[1]))
		}
	}
	if fast != 0 {
		s.stats.ScanFastSlots.Add(uint64(fast))
	}
	if slow != 0 {
		s.stats.ScanSlowSlots.Add(uint64(slow))
	}
	scanScratchPool.Put(sc)
	return keys, nil
}

// decodeInto appends the decoded slots of p to buf (bulk decompression for
// the scan fast path); encodings with a native bulk path use it.
func decodeInto(buf []uint64, p page.Reader) []uint64 {
	if bd, ok := p.(page.BulkDecoder); ok {
		return bd.AppendTo(buf)
	}
	n := p.Len()
	if cap(buf)-len(buf) < n {
		grown := make([]uint64, len(buf), len(buf)+n)
		copy(grown, buf)
		buf = grown
	}
	for i := 0; i < n; i++ {
		buf = append(buf, p.Get(i))
	}
	return buf
}
