package core

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"lstore/internal/page"
	"lstore/internal/types"
)

// This file is the table's one columnar batch-read subsystem: every
// analytical read path — ScanSum/ScanSumRIDs, ScanRange, ScanFiltered,
// ScanAggregate, and the probe side of LookupSecondary/ProbeFiltered —
// funnels through it instead of growing its own inline fast path (§4.2's TPS
// interpretation and §6.1's "SUM over a continuously updated column" are the
// shapes it serves).
//
// The engine has two faces:
//
//   - rangeScanner: the bulk face. For a sealed range it decodes the needed
//     column pages and the Start/Last Updated meta pages once into pooled
//     scratch buffers (one sequential decompression instead of per-slot
//     point access), classifies slots word-at-a-time against the packed
//     ever-updated bitmap (64 clean slots per load), and walks the readCols
//     chain only for slots with unmerged lineage.
//
//   - probeSlot: the point face. Secondary-index probes hit scattered slots,
//     so bulk decode would not amortize; the probe applies the same
//     classification per slot against the compressed pages directly.
//
// Predicate pushdown (the query layer's plans compile onto these hooks):
// a scan may carry []Pred — slot-window tests evaluated VECTORIZED over the
// decoded column pages, one filter bitmap per 64-slot word, before any row
// materialization. A word whose filter bitmap is empty and whose updated
// bitmap is empty is skipped outright: selective scans touch no per-row
// state at all for most of the table. Chain-walk slots re-evaluate the
// predicates against the walk's output (the decoded page value may be stale
// for them).
//
// Scans optionally fan independent ranges out across a worker pool
// (Config.ScanWorkers): aggregates merge per-worker partials after the pool
// drains, and callback scans stage each range's rows so delivery order is
// exactly the sequential order.

// ---------------------------------------------------------------------------
// Predicates (pushdown) and aggregate kernels

// Pred is one pushed-down predicate over slot-encoded values of a scan
// column. Idx is the position of the predicate's column inside the scan's
// cols slice (NOT a schema column index). The test is an inclusive window
// over the slot encoding — Int64 slots are order-preserving, so every
// comparison (=, <, <=, >, >=, BETWEEN) normalizes to a window; equality on
// dictionary codes is the degenerate window Lo == Hi.
//
// Invariant: Lo <= Hi (the planner guarantees it; Matches relies on the
// single unsigned compare v-Lo <= Hi-Lo).
//
// Negate inverts the window with null exclusion: the predicate matches
// values OUTSIDE [Lo, Hi] that are not ∅ (the shape of != and IS NOT NULL).
// Non-negated windows exclude ∅ implicitly whenever Hi < NullSlot; the
// window [NullSlot, NullSlot] is IS NULL.
type Pred struct {
	Idx    int
	Lo, Hi uint64
	Negate bool
}

// Matches evaluates the predicate against one slot value.
func (p Pred) Matches(v uint64) bool {
	in := v-p.Lo <= p.Hi-p.Lo
	if p.Negate {
		return !in && v != types.NullSlot
	}
	return in
}

// AggOp enumerates the engine's aggregate kernels.
type AggOp uint8

const (
	// AggCount counts matching rows (not non-null values).
	AggCount AggOp = iota
	// AggSum sums the non-null Int64 values of a column.
	AggSum
	// AggMin tracks the minimum non-null slot of a column (order-preserving
	// Int64 encoding; meaningless for dictionary codes — the API layer
	// restricts Min/Max to Int64 columns).
	AggMin
	// AggMax tracks the maximum non-null slot of a column.
	AggMax
)

// AggSpec is one requested aggregate: the kernel and the position of its
// column inside the scan's cols slice (ignored by AggCount).
type AggSpec struct {
	Op  AggOp
	Idx int
}

// AggState is one aggregate's running (and mergeable) state. Count is the
// number of contributing rows: matched rows for AggCount, non-null values
// for the other kernels. Merging states is exact integer arithmetic, so
// parallel scans produce bit-identical results for every worker schedule.
type AggState struct {
	Sum     int64
	Count   int64
	MinSlot uint64
	MaxSlot uint64
	Seen    bool // a non-null value reached MinSlot/MaxSlot
}

// foldAgg folds one emitted row into the aggregate states.
func foldAgg(states []AggState, specs []AggSpec, vals []uint64) {
	for i := range specs {
		st := &states[i]
		switch specs[i].Op {
		case AggCount:
			st.Count++
		case AggSum:
			if v := vals[specs[i].Idx]; v != types.NullSlot {
				st.Sum += types.DecodeInt64(v)
				st.Count++
			}
		case AggMin:
			if v := vals[specs[i].Idx]; v != types.NullSlot {
				st.Count++
				if !st.Seen || v < st.MinSlot {
					st.MinSlot = v
				}
				st.Seen = true
			}
		case AggMax:
			if v := vals[specs[i].Idx]; v != types.NullSlot {
				st.Count++
				if !st.Seen || v > st.MaxSlot {
					st.MaxSlot = v
				}
				st.Seen = true
			}
		}
	}
}

// FoldAgg folds one materialized row into states — the query layer uses it
// to aggregate over index-probe plans, which deliver rows through
// ProbeFiltered instead of ScanAggregate.
func FoldAgg(states []AggState, specs []AggSpec, vals []uint64) { foldAgg(states, specs, vals) }

// mergeAggStates folds src (one worker's partials) into dst.
func mergeAggStates(dst, src []AggState) {
	for i := range dst {
		dst[i].Sum += src[i].Sum
		dst[i].Count += src[i].Count
		if src[i].Seen {
			if !dst[i].Seen || src[i].MinSlot < dst[i].MinSlot {
				dst[i].MinSlot = src[i].MinSlot
			}
			if !dst[i].Seen || src[i].MaxSlot > dst[i].MaxSlot {
				dst[i].MaxSlot = src[i].MaxSlot
			}
			dst[i].Seen = true
		}
	}
}

// ---------------------------------------------------------------------------
// Pooled scratch

// scanScratch holds one scanner's decode buffers. Scratch cycles through a
// sync.Pool so steady-state scans allocate nothing regardless of range count
// or column count.
type scanScratch struct {
	data  [][]uint64    // decoded data page per requested column
	cvs   []*colVersion // captured column versions (immutable snapshots)
	pgs   []page.Reader // pinned concrete pages of cvs (one pin per range scan)
	start []uint64      // decoded Start Time meta page
	last  []uint64      // decoded Last Updated Time meta page
	out   []uint64      // readCols fallback output
	vals  []uint64      // per-slot staging row handed to emit
	rids  []types.RID   // secondary-index probe buffer

	// cp holds one compiled predicate per pushed Pred for the encoded scan
	// path: predicate windows translate into each page's code space once per
	// range and filter bitmaps compute WITHOUT decoding (see scanRange).
	cp []page.CompiledPred
}

var scanScratchPool = sync.Pool{New: func() any { return new(scanScratch) }}

// rowBatch stages one range's emitted rows for the ordered parallel
// filtered-scan pipeline (flat, stride = len(cols)).
type rowBatch struct{ rows []uint64 }

var rowBatchPool = sync.Pool{New: func() any { return new(rowBatch) }}

// ---------------------------------------------------------------------------
// rangeScanner: the bulk face

// gatherCols captures the requested columns' immutable base versions into
// cvs and returns their TPS extrema; ok is false while any column is still
// unsealed. Both engine faces pin versions through this so the tps checks
// and the page reads always use the same snapshots.
func gatherCols(r *updateRange, cols []int, cvs []*colVersion) (minTPS, maxTPS types.RID, ok bool) {
	minTPS = ^types.RID(0)
	if len(cols) == 0 {
		// Existence-only reads (a bare COUNT): no column lineage can vouch
		// for merged state, so return a maxTPS no real mv.tps reaches —
		// every merged-fast-path gate (mv.tps >= maxTPS) then fails and
		// updated slots take the chain walk, the only place an unmerged
		// delete tombstone is discoverable.
		return minTPS, ^types.RID(0), true
	}
	for i, c := range cols {
		cv := r.colVer(c)
		if cv == nil {
			return 0, 0, false
		}
		cvs[i] = cv
		if cv.tps < minTPS {
			minTPS = cv.tps
		}
		if cv.tps > maxTPS {
			maxTPS = cv.tps
		}
	}
	return minTPS, maxTPS, true
}

// mergedCurrent is the engine's ONE merged-visibility predicate: it reports
// whether an updated slot's merged base-page state is exactly its state at
// ts — base record visible (raw, the slot's resolved Start Time), the whole
// version chain consolidated into every requested column (Indirection at or
// below minTPS), and the newest consolidated change committed at or before
// the snapshot (lu, the slot's Last Updated Time). deleted reports a merged
// delete tombstone. raw and lu must come from one meta version satisfying
// mv.tps >= maxTPS, or lu may not cover everything the column TPS claims
// (§4.2's TPS interpretation + the Last Updated Time column's purpose).
func (r *updateRange) mergedCurrent(ts types.Timestamp, slot int, raw, lu uint64, minTPS types.RID) (serve, deleted bool) {
	if raw == types.NullSlot || raw > ts {
		return false, false
	}
	if ind := r.loadIndirection(slot); ind == 0 || ind > minTPS {
		return false, false
	}
	if lu == types.NullSlot || lu > ts {
		return false, false
	}
	return true, r.isMergedDeleted(slot)
}

// rangeScanner streams the visible records of ranges under one snapshot
// view, optionally applying pushed-down predicates before emitting. A
// scanner is single-goroutine; parallel scans give each worker its own.
// fast/slow count slots served from decoded pages vs the chain walk
// (flushed into the store gauges by finish).
type rangeScanner struct {
	s     *Store
	ts    types.Timestamp
	view  readView
	cols  []int
	preds []Pred
	sc    *scanScratch
	fast  int64
	slow  int64
	// Encoded-path word gauges: words whose column data was materialized vs
	// words rejected straight from the encoded filter with zero decode.
	wordsDec  int64
	wordsSkip int64
}

func newRangeScanner(s *Store, ts types.Timestamp, cols []int, preds []Pred) rangeScanner {
	rs := rangeScanner{
		s:     s,
		ts:    ts,
		view:  asOfView(ts),
		cols:  cols,
		preds: preds,
		sc:    scanScratchPool.Get().(*scanScratch),
	}
	n := len(cols)
	sc := rs.sc
	if cap(sc.data) < n {
		sc.data = make([][]uint64, n)
	}
	sc.data = sc.data[:n]
	if cap(sc.cvs) < n {
		sc.cvs = make([]*colVersion, n)
	}
	sc.cvs = sc.cvs[:n]
	if cap(sc.pgs) < n {
		sc.pgs = make([]page.Reader, n)
	}
	sc.pgs = sc.pgs[:n]
	if cap(sc.out) < n {
		sc.out = make([]uint64, n)
	}
	sc.out = sc.out[:n]
	if cap(sc.vals) < n {
		sc.vals = make([]uint64, n)
	}
	sc.vals = sc.vals[:n]
	np := len(preds)
	if cap(sc.cp) < np {
		sc.cp = make([]page.CompiledPred, np)
	}
	sc.cp = sc.cp[:np]
	return rs
}

// finish flushes the slot gauges and returns the scratch to the pool.
func (rs *rangeScanner) finish() {
	if rs.fast != 0 {
		rs.s.stats.ScanFastSlots.Add(uint64(rs.fast))
	}
	if rs.slow != 0 {
		rs.s.stats.ScanSlowSlots.Add(uint64(rs.slow))
	}
	if rs.wordsDec != 0 {
		rs.s.stats.ScanWordsDecoded.Add(uint64(rs.wordsDec))
	}
	if rs.wordsSkip != 0 {
		rs.s.stats.ScanWordsSkipped.Add(uint64(rs.wordsSkip))
	}
	for i := range rs.sc.cvs {
		rs.sc.cvs[i] = nil // do not hold page versions across pool reuse
	}
	for i := range rs.sc.pgs {
		rs.sc.pgs[i] = nil
	}
	for i := range rs.sc.cp {
		rs.sc.cp[i].Reset() // compiled preds hold page references too
	}
	scanScratchPool.Put(rs.sc)
	rs.sc = nil
}

// filterWord computes the predicate bitmap for slots [lo, hi) of one 64-slot
// word straight from the decoded column pages: bit slot&63 is set when every
// pushed predicate matches the page value. Each predicate is one unsigned
// window compare per lane (no per-row branching on op), so selective scans
// reject most of a word before any visibility or materialization work. The
// bitmap is authoritative only for slots served from the decoded pages
// (never-updated and merged-current); chain-walk slots re-check via
// predsMatch on the walk output.
func (rs *rangeScanner) filterWord(lo, hi int) uint64 {
	fb := ^uint64(0)
	for pi := range rs.preds {
		p := &rs.preds[pi]
		col := rs.sc.data[p.Idx]
		span := p.Hi - p.Lo
		var m uint64
		if p.Negate {
			for slot := lo; slot < hi; slot++ {
				if v := col[slot]; v-p.Lo > span && v != types.NullSlot {
					m |= 1 << uint(slot&63)
				}
			}
		} else {
			for slot := lo; slot < hi; slot++ {
				if col[slot]-p.Lo <= span {
					m |= 1 << uint(slot&63)
				}
			}
		}
		if fb &= m; fb == 0 {
			break
		}
	}
	return fb
}

// predsMatch scalar-evaluates every predicate against one materialized row
// (chain-walk results and unsealed-range rows, where no decoded page backs
// the value).
func (rs *rangeScanner) predsMatch(vals []uint64) bool {
	for i := range rs.preds {
		if !rs.preds[i].Matches(vals[rs.preds[i].Idx]) {
			return false
		}
	}
	return true
}

// scanRange streams every record of r visible as of rs.ts whose slot lies in
// [slot0, nRows) and matches every pushed predicate, in slot order. emit
// receives the slot and the slot-encoded values of rs.cols (the slice is
// reused; copy to retain) and returns false to stop the whole scan.
// scanRange reports whether the scan ran to completion.
func (rs *rangeScanner) scanRange(r *updateRange, slot0, nRows int, emit func(slot int, vals []uint64) bool) bool {
	sc := rs.sc
	mv := r.meta.Load()
	var minTPS, maxTPS types.RID
	sealed := mv != nil
	if sealed {
		minTPS, maxTPS, sealed = gatherCols(r, rs.cols, sc.cvs)
	}
	if !sealed {
		return rs.scanUnsealed(r, slot0, nRows, emit)
	}

	// Pin every page this window reads, once per range: the pins keep the
	// concrete encoded readers resident through the whole predicate/decode
	// window (the buffer pool cannot evict mid-scan), and the Bind /
	// DecodeWordInto fast paths below need the real page representations,
	// not handles.
	startPg := mv.startTime.MustPin()
	lastPg := mv.lastUpdated.MustPin()
	for i := range rs.cols {
		sc.pgs[i] = sc.cvs[i].data.MustPin()
	}
	defer func() {
		for i := range rs.cols {
			sc.cvs[i].data.Unpin()
		}
		mv.lastUpdated.Unpin()
		mv.startTime.Unpin()
	}()

	// The merged fast path for updated slots relies on Last Updated Time
	// covering every record any requested column's TPS claims (true unless
	// an independent column merge ran ahead of the last full merge; never
	// true for zero requested columns, whose gatherCols maxTPS is the
	// unreachable sentinel).
	luValid := mv.tps >= maxTPS
	ts := rs.ts
	vals := sc.vals
	filtered := len(rs.preds) > 0

	// Sealed range, two decode strategies:
	//
	//   - Encoded scan (filtered): bind each predicate window to its column
	//     page's OWN representation once (code space for FOR-packed and
	//     dictionary pages, run granularity for RLE), compute each 64-slot
	//     filter bitmap straight off the encoded data, and decode ONLY the
	//     words something survives in. Selective scans leave most of the page
	//     compressed.
	//
	//   - Bulk decode (unfiltered, or DisableEncodedScan): expand the column
	//     pages and the Start/Last Updated meta pages once up front
	//     (sequential decompression, not per-slot point access).
	useEnc := filtered && !rs.s.cfg.DisableEncodedScan
	if useEnc {
		for pi := range rs.preds {
			p := &rs.preds[pi]
			sc.cp[pi].Bind(sc.pgs[p.Idx], p.Lo, p.Hi, p.Negate)
		}
		for i := range rs.cols {
			sc.data[i] = growSlots(sc.data[i], nRows)
		}
		sc.start = growSlots(sc.start, nRows)
		sc.last = growSlots(sc.last, nRows)
	} else {
		for i := range rs.cols {
			sc.data[i] = decodeInto(sc.data[i][:0], sc.pgs[i])
		}
		sc.start = decodeInto(sc.start[:0], startPg)
		sc.last = decodeInto(sc.last[:0], lastPg)
	}

	for wi := slot0 >> 6; wi<<6 < nRows; wi++ {
		lo, hi := wi<<6, (wi+1)<<6
		if lo < slot0 {
			lo = slot0
		}
		if hi > nRows {
			hi = nRows
		}
		word := r.updatedBits[wi].Load()
		fb := ^uint64(0)
		if filtered {
			if useEnc {
				for pi := range sc.cp {
					if fb &= sc.cp[pi].FilterWord(lo, hi); fb == 0 {
						break
					}
				}
			} else {
				fb = rs.filterWord(lo, hi)
			}
			if fb == 0 && word == 0 {
				if useEnc {
					rs.wordsSkip++ // 64 slots rejected without decoding one
				}
				continue // 64 slots rejected with zero per-row work
			}
		}
		if useEnc {
			// Something in this word survives: materialize exactly what the
			// paths below read. Start Time always (visibility); column words
			// only when the filter lets a page-served slot through; Last
			// Updated only when updated slots can take the merged fast path.
			page.DecodeWordInto(sc.start[lo:], startPg, lo, hi-lo)
			if fb != 0 {
				for i := range rs.cols {
					page.DecodeWordInto(sc.data[i][lo:], sc.pgs[i], lo, hi-lo)
				}
				rs.wordsDec++
			}
			if word != 0 && luValid {
				page.DecodeWordInto(sc.last[lo:], lastPg, lo, hi-lo)
			}
		}
		if word == 0 {
			// 64 never-updated slots: serve straight from the decoded pages.
			for slot := lo; slot < hi; slot++ {
				if fb&(1<<uint(slot&63)) == 0 {
					continue
				}
				raw := sc.start[slot]
				if raw == types.NullSlot || raw > ts {
					continue // absent, aborted, or inserted after ts
				}
				for i := range vals {
					vals[i] = sc.data[i][slot]
				}
				rs.fast++
				if !emit(slot, vals) {
					return false
				}
			}
			continue
		}
		for slot := lo; slot < hi; slot++ {
			bit := uint64(1) << uint(slot&63)
			if word&bit == 0 {
				if fb&bit == 0 {
					continue
				}
				raw := sc.start[slot]
				if raw == types.NullSlot || raw > ts {
					continue
				}
				for i := range vals {
					vals[i] = sc.data[i][slot]
				}
				rs.fast++
				if !emit(slot, vals) {
					return false
				}
				continue
			}
			// Updated record, but fully merged into every requested column
			// and last changed at or before the snapshot: the merged page
			// values ARE the values at ts, so the filter bitmap decides.
			if luValid {
				if serve, deleted := r.mergedCurrent(ts, slot, sc.start[slot], sc.last[slot], minTPS); serve {
					if deleted || fb&bit == 0 {
						continue
					}
					for i := range vals {
						vals[i] = sc.data[i][slot]
					}
					rs.fast++
					if !emit(slot, vals) {
						return false
					}
					continue
				}
			}
			// Unmerged lineage: the chain walk decides, and the predicates
			// re-evaluate against the walk's output (the page value may be
			// stale for this slot).
			rs.slow++
			res := r.readCols(rs.view, slot, rs.cols, sc.out)
			if !res.exists {
				continue
			}
			if filtered && !rs.predsMatch(sc.out) {
				continue
			}
			copy(vals, sc.out)
			if !emit(slot, vals) {
				return false
			}
		}
	}
	return true
}

// scanUnsealed handles insert ranges (and the brief window while a seal
// publishes versions): base values still live in table-level tail pages and
// visibility may need transaction resolution, so clean slots read the pages
// point-wise, predicates evaluate scalar-wise on the materialized row, and
// everything unresolved falls back to the chain walk.
func (rs *rangeScanner) scanUnsealed(r *updateRange, slot0, nRows int, emit func(slot int, vals []uint64) bool) bool {
	sc := rs.sc
	ts := rs.ts
	vals := sc.vals
	filtered := len(rs.preds) > 0
	for wi := slot0 >> 6; wi<<6 < nRows; wi++ {
		lo, hi := wi<<6, (wi+1)<<6
		if lo < slot0 {
			lo = slot0
		}
		if hi > nRows {
			hi = nRows
		}
		word := r.updatedBits[wi].Load()
		for slot := lo; slot < hi; slot++ {
			if word&(1<<uint(slot&63)) == 0 {
				raw := r.baseStartSlot(slot)
				if raw == types.NullSlot {
					continue
				}
				if !types.IsTxnID(raw) {
					if raw > ts {
						continue
					}
					for i, c := range rs.cols {
						vals[i] = r.baseValue(slot, c)
					}
					if filtered && !rs.predsMatch(vals) {
						continue
					}
					rs.fast++
					if !emit(slot, vals) {
						return false
					}
					continue
				}
				// Unresolved insert: fall through to the chain walk.
			}
			rs.slow++
			res := r.readCols(rs.view, slot, rs.cols, sc.out)
			if !res.exists {
				continue
			}
			if filtered && !rs.predsMatch(sc.out) {
				continue
			}
			copy(vals, sc.out)
			if !emit(slot, vals) {
				return false
			}
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// probeSlot: the point face

// probeSlot resolves cols of one base slot as of ts without bulk decode —
// the shape of secondary-index probes, whose scattered slots would not
// amortize a page decompression. Classification mirrors rangeScanner:
// never-updated slots read base pages directly, fully merged slots whose
// lineage pre-dates the snapshot read the merged pages, everything else
// walks the readCols chain. cvs is caller scratch (len(cols)); fast reports
// which side served the probe.
func (s *Store) probeSlot(ts types.Timestamp, r *updateRange, slot int, cols []int, out []uint64, cvs []*colVersion) (exists, fast bool) {
	if r.updatedBits[slot>>6].Load()&(1<<uint(slot&63)) == 0 {
		raw := r.baseStartSlot(slot)
		if raw == types.NullSlot {
			return false, true // aborted insert or never-written slot
		}
		if !types.IsTxnID(raw) {
			if raw > ts {
				return false, true
			}
			for i, c := range cols {
				out[i] = r.baseValue(slot, c)
			}
			return true, true
		}
		// Unresolved insert: chain walk below.
	} else if mv := r.meta.Load(); mv != nil {
		if minTPS, maxTPS, sealed := gatherCols(r, cols, cvs); sealed && mv.tps >= maxTPS {
			serve, deleted := r.mergedCurrent(ts, slot, mv.startTime.Get(slot), mv.lastUpdated.Get(slot), minTPS)
			if serve {
				if deleted {
					return false, true
				}
				for i := range cols {
					out[i] = cvs[i].data.Get(slot)
				}
				return true, true
			}
		}
	}
	res := r.readCols(asOfView(ts), slot, cols, out)
	return res.exists, false
}

// ---------------------------------------------------------------------------
// Scan planning and the worker pool

// scanTarget is one range's slice of a RID-bounded scan: slots
// [slot0, nRows) of r intersect the requested RID window.
type scanTarget struct {
	r     *updateRange
	slot0 int
	nRows int
}

// scanTargets clamps [loRID, hiRID) onto the table's ranges, computing each
// intersecting range's slot window up front instead of testing every slot's
// RID inside the hot loop.
func (s *Store) scanTargets(loRID, hiRID types.RID) []scanTarget {
	nRanges := s.rangeCount()
	targets := make([]scanTarget, 0, nRanges)
	for ri := 0; ri < nRanges; ri++ {
		r := s.rangeAt(ri)
		if r.firstRID+types.RID(r.n) <= loRID || r.firstRID >= hiRID {
			continue
		}
		nRows := r.rowCount()
		if hiRID < r.firstRID+types.RID(nRows) {
			nRows = int(hiRID - r.firstRID)
		}
		slot0 := 0
		if loRID > r.firstRID {
			slot0 = int(loRID - r.firstRID)
		}
		if slot0 >= nRows {
			continue
		}
		targets = append(targets, scanTarget{r: r, slot0: slot0, nRows: nRows})
	}
	return targets
}

// scanWorkersFor bounds the per-scan pool: never more workers than the
// configured pool or than ranges to scan.
func (s *Store) scanWorkersFor(nTargets int) int {
	w := s.cfg.ScanWorkers
	if w > nTargets {
		w = nTargets
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ---------------------------------------------------------------------------
// Public scans (analytical reads, snapshot isolation)

// ScanSum computes SUM(col) over live records as of ts — the benchmark scan
// of §6.1 ("SUM aggregation on a column that is continuously updated").
// It returns the sum and the number of contributing records.
func (s *Store) ScanSum(ts types.Timestamp, col int) (sum int64, rows int64) {
	return s.ScanSumRIDs(ts, col, 0, ^types.RID(0))
}

// ScanSumRIDs is ScanSum over base RIDs in [loRID, hiRID) — the harness's
// "scan 10% of the table" shape. It is a thin wrapper over the AggSum
// kernel of ScanAggregate.
func (s *Store) ScanSumRIDs(ts types.Timestamp, col int, loRID, hiRID types.RID) (sum int64, rows int64) {
	states := s.ScanAggregate(ts, []int{col}, nil, []AggSpec{{Op: AggSum, Idx: 0}}, loRID, hiRID)
	return states[0].Sum, states[0].Count
}

// ScanAggregate runs the requested aggregate kernels over the rows visible
// as of ts whose base RIDs fall in [loRID, hiRID) and match every pushed
// predicate. cols names the schema columns the scan materializes; preds and
// specs index positions within cols. Ranges fan out across the scan worker
// pool when Config.ScanWorkers allows; per-worker partials merge with exact
// integer arithmetic after the pool drains, so the result is identical for
// every schedule.
func (s *Store) ScanAggregate(ts types.Timestamp, cols []int, preds []Pred, specs []AggSpec, loRID, hiRID types.RID) []AggState {
	g := s.em.Pin()
	defer g.Unpin()
	targets := s.scanTargets(loRID, hiRID)
	states := make([]AggState, len(specs))
	if workers := s.scanWorkersFor(len(targets)); workers > 1 {
		s.parallelAggregate(targets, ts, cols, preds, specs, states, workers)
	} else {
		rs := newRangeScanner(s, ts, cols, preds)
		for _, t := range targets {
			rs.scanRange(t.r, t.slot0, t.nRows, func(_ int, vals []uint64) bool {
				foldAgg(states, specs, vals)
				return true
			})
		}
		rs.finish()
	}
	s.stats.Scans.Add(1)
	return states
}

// parallelAggregate fans targets out across workers. Each worker owns a
// scanner (its own pooled scratch) and partial aggregate states; partials
// merge once the pool drains. The caller's epoch pin covers every worker.
func (s *Store) parallelAggregate(targets []scanTarget, ts types.Timestamp, cols []int, preds []Pred, specs []AggSpec, states []AggState, workers int) {
	var next atomic.Int64
	partials := make([][]AggState, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rs := newRangeScanner(s, ts, cols, preds)
			part := make([]AggState, len(specs))
			for {
				i := int(next.Add(1)) - 1
				if i >= len(targets) {
					break
				}
				t := targets[i]
				rs.scanRange(t.r, t.slot0, t.nRows, func(_ int, vals []uint64) bool {
					foldAgg(part, specs, vals)
					return true
				})
			}
			partials[w] = part
			rs.finish()
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		mergeAggStates(states, partials[w])
	}
}

// ScanFiltered streams the slot-encoded values of cols for every live record
// (as of ts) whose base RID falls in [loRID, hiRID) and that matches every
// pushed predicate, in RID order; fn returning false stops the scan. The
// vals slice is reused between calls — copy what must be retained. This is
// the bulk face the query layer's filtered plans compile onto: with
// ScanWorkers > 1 predicates evaluate inside the workers (only matching rows
// are staged), but fn still runs only on the calling goroutine and observes
// exactly the sequential row order.
func (s *Store) ScanFiltered(ts types.Timestamp, cols []int, preds []Pred, loRID, hiRID types.RID, fn func(vals []uint64) bool) {
	g := s.em.Pin()
	defer g.Unpin()
	targets := s.scanTargets(loRID, hiRID)
	// Zero-width rows cannot ride the flat staging buffers (stride 0), so
	// existence-only scans stay sequential.
	if workers := s.scanWorkersFor(len(targets)); workers > 1 && len(cols) > 0 {
		s.parallelFiltered(targets, ts, cols, preds, fn, workers)
	} else {
		rs := newRangeScanner(s, ts, cols, preds)
		for _, t := range targets {
			if !rs.scanRange(t.r, t.slot0, t.nRows, func(_ int, vals []uint64) bool {
				return fn(vals)
			}) {
				break
			}
		}
		rs.finish()
	}
	s.stats.Scans.Add(1)
}

// ScanRange applies fn to the requested columns of every live record (as of
// ts) whose base RID falls in [loRID, hiRID), in RID order; fn returning
// false stops the scan. Pass 0,^0 for a full scan. A thin wrapper over
// ScanFiltered that decodes values and peels off the key column.
func (s *Store) ScanRange(ts types.Timestamp, cols []int, loRID, hiRID types.RID, fn func(key int64, vals []types.Value) bool) {
	readCols := make([]int, 0, len(cols)+1)
	readCols = append(readCols, cols...)
	readCols = append(readCols, s.schema.Key)
	vals := make([]types.Value, len(cols))
	s.ScanFiltered(ts, readCols, nil, loRID, hiRID, func(out []uint64) bool {
		for i, c := range cols {
			vals[i] = s.decodeValue(c, out[i])
		}
		return fn(types.DecodeInt64(out[len(out)-1]), vals)
	})
}

// parallelFiltered scans targets concurrently while preserving sequential
// delivery: workers stage each range's matching rows in a pooled flat buffer
// and the caller's goroutine drains the batches in range order, so fn is
// never called concurrently and sees rows exactly as a sequential scan
// would. Workers acquire a semaphore slot BEFORE claiming a range index, so
// the lowest outstanding range always holds a slot and the in-order drain
// cannot deadlock; at most `workers` staged batches exist at once. A false
// return from fn raises the stop flag — in-flight workers then publish
// empty batches and the drain completes cheaply.
func (s *Store) parallelFiltered(targets []scanTarget, ts types.Timestamp, cols []int, preds []Pred, fn func([]uint64) bool, workers int) {
	stride := len(cols)
	batches := make([]chan *rowBatch, len(targets))
	for i := range batches {
		batches[i] = make(chan *rowBatch, 1)
	}
	sem := make(chan struct{}, workers)
	var next atomic.Int64
	var stopped atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs := newRangeScanner(s, ts, cols, preds)
			for {
				sem <- struct{}{}
				i := int(next.Add(1)) - 1
				if i >= len(targets) {
					<-sem
					break
				}
				b := rowBatchPool.Get().(*rowBatch)
				b.rows = b.rows[:0]
				if !stopped.Load() {
					t := targets[i]
					rs.scanRange(t.r, t.slot0, t.nRows, func(_ int, out []uint64) bool {
						b.rows = append(b.rows, out...)
						return !stopped.Load()
					})
				}
				batches[i] <- b
			}
			rs.finish()
		}()
	}
	for i := range targets {
		b := <-batches[i]
		<-sem
		rows := b.rows
		for off := 0; off+stride <= len(rows) && !stopped.Load(); off += stride {
			if !fn(rows[off : off+stride]) {
				stopped.Store(true)
			}
		}
		b.rows = rows[:0]
		rowBatchPool.Put(b)
	}
	wg.Wait()
}

// ---------------------------------------------------------------------------
// Index-probe plans (the point face's bulk entry)

// ProbeFiltered resolves a query's index-probe plan: the secondary index on
// schema column col supplies candidate base RIDs for the encoded value sv,
// each candidate resolves through the scan engine's point face, and preds
// re-evaluate against the visible version — the probe predicate itself MUST
// appear in preds, because index entries may be stale (§3.1). cols names
// the materialized schema columns; preds index positions within cols.
// Candidates probe in ascending base-RID order, so delivery order matches a
// bulk scan of the same rows. The vals slice handed to fn is reused.
func (s *Store) ProbeFiltered(ts types.Timestamp, col int, sv uint64, cols []int, preds []Pred, fn func(vals []uint64) bool) error {
	sec, ok := s.secondary[col]
	if !ok {
		return fmt.Errorf("%w on column %d", ErrNoIndex, col)
	}
	g := s.em.Pin()
	defer g.Unpin()
	rs := newRangeScanner(s, ts, cols, preds) // sizes pooled scratch to len(cols)
	sc := rs.sc
	sc.rids = sec.LookupAppend(sc.rids[:0], sv)
	slices.Sort(sc.rids)
	for _, rid := range sc.rids {
		loc, ok := s.locate(rid)
		if !ok {
			continue
		}
		exists, served := s.probeSlot(ts, loc.rng, loc.slot, cols, sc.out, sc.cvs)
		if served {
			rs.fast++
		} else {
			rs.slow++
		}
		if !exists || !rs.predsMatch(sc.out) {
			continue
		}
		if !fn(sc.out) {
			break
		}
	}
	rs.finish()
	return nil
}

// LookupSecondary returns the keys of live records whose column col
// currently has value v (snapshot at ts) — a thin wrapper over the
// ProbeFiltered plan with the equality predicate pushed down (the stale-
// entry re-check §3.1 requires). Keys arrive in ascending base-RID order.
func (s *Store) LookupSecondary(ts types.Timestamp, col int, v types.Value) ([]int64, error) {
	if !s.HasSecondary(col) {
		return nil, fmt.Errorf("%w on column %d", ErrNoIndex, col)
	}
	sv, ok, err := s.LookupSlot(col, v)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil // value cannot appear in any stored slot
	}
	readCols := []int{col, s.schema.Key}
	preds := []Pred{{Idx: 0, Lo: sv, Hi: sv}}
	var keys []int64
	err = s.ProbeFiltered(ts, col, sv, readCols, preds, func(vals []uint64) bool {
		keys = append(keys, types.DecodeInt64(vals[1]))
		return true
	})
	return keys, err
}

// growSlots resizes buf to n slots without decoding anything into it — the
// encoded scan path sizes its scratch up front and fills only surviving words.
func growSlots(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		return make([]uint64, n)
	}
	return buf[:n]
}

// decodeInto appends the decoded slots of p to buf (bulk decompression for
// the scan fast path); encodings with a native bulk path use it.
func decodeInto(buf []uint64, p page.Reader) []uint64 {
	if bd, ok := p.(page.BulkDecoder); ok {
		return bd.AppendTo(buf)
	}
	n := p.Len()
	if cap(buf)-len(buf) < n {
		grown := make([]uint64, len(buf), len(buf)+n)
		copy(grown, buf)
		buf = grown
	}
	for i := 0; i < n; i++ {
		buf = append(buf, p.Get(i))
	}
	return buf
}
