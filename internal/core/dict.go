package core

import (
	"fmt"
	"math"
	"sync"

	"lstore/internal/types"
)

// stringDict is the per-column string dictionary. String columns are
// dictionary-encoded into slots at the API boundary; the dictionary is
// append-only (codes are never reassigned), so slot values remain stable
// across merges and historic compression.
type stringDict struct {
	mu     sync.RWMutex
	toCode map[string]uint64 // guarded by mu
	vals   []string          // guarded by mu
}

func newStringDict() *stringDict {
	return &stringDict{toCode: make(map[string]uint64)}
}

// encode returns the code for s, assigning a new one if needed.
func (d *stringDict) encode(s string) uint64 {
	d.mu.RLock()
	c, ok := d.toCode[s]
	d.mu.RUnlock()
	if ok {
		return c
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.toCode[s]; ok {
		return c
	}
	c = uint64(len(d.vals))
	d.toCode[s] = c
	d.vals = append(d.vals, s)
	return c
}

// decode returns the string for a code; unknown codes (impossible through
// the public API) decode to "".
func (d *stringDict) decode(c uint64) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if c >= uint64(len(d.vals)) {
		return ""
	}
	return d.vals[c]
}

// lookup returns the code for s without assigning.
func (d *stringDict) lookup(s string) (uint64, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	c, ok := d.toCode[s]
	return c, ok
}

// size returns the number of distinct strings.
func (d *stringDict) size() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.vals)
}

// encodeValue converts a typed value to its slot representation for column
// col, building dictionary entries as needed.
func (s *Store) encodeValue(col int, v types.Value) (uint64, error) {
	if v.IsNull() {
		return types.NullSlot, nil
	}
	switch s.schema.Cols[col].Type {
	case types.Int64:
		if v.Kind() != types.Int64 {
			return 0, ErrBadValue
		}
		if v.Int() == math.MaxInt64 {
			// The one unstorable integer: its encoding would collide with
			// the implicit null ∅ (EncodeInt64 would saturate it onto
			// MaxInt64-1, silently corrupting the value).
			return 0, fmt.Errorf("%w: math.MaxInt64 is reserved", ErrBadValue)
		}
		return types.EncodeInt64(v.Int()), nil
	case types.String:
		if v.Kind() != types.String {
			return 0, ErrBadValue
		}
		return s.dicts[col].encode(v.Str()), nil
	}
	return 0, ErrBadValue
}

// LookupSlot encodes v for column col WITHOUT side effects: unlike the
// write-path encoder it never assigns new dictionary codes. ok=false means
// no stored slot can possibly equal v (a string absent from the dictionary)
// — the query planner turns that into an empty plan. A type mismatch
// between v and the column returns ErrBadValue.
func (s *Store) LookupSlot(col int, v types.Value) (slot uint64, ok bool, err error) {
	if v.IsNull() {
		return types.NullSlot, true, nil
	}
	switch s.schema.Cols[col].Type {
	case types.Int64:
		if v.Kind() != types.Int64 {
			return 0, false, ErrBadValue
		}
		if v.Int() == math.MaxInt64 {
			return 0, false, nil // unstorable (see encodeValue): matches nothing
		}
		return types.EncodeInt64(v.Int()), true, nil
	case types.String:
		if v.Kind() != types.String {
			return 0, false, ErrBadValue
		}
		c, ok := s.dicts[col].lookup(v.Str())
		return c, ok, nil
	}
	return 0, false, ErrBadValue
}

// DecodeSlot converts a stored slot back to a typed value for column col —
// the hook RowView's lazy per-column accessors decode through. Dictionary
// decodes return the interned string, so decoding allocates nothing.
func (s *Store) DecodeSlot(col int, slot uint64) types.Value { return s.decodeValue(col, slot) }

// HasSecondary reports whether col carries a declared secondary index (the
// planner's index-selection test).
func (s *Store) HasSecondary(col int) bool {
	_, ok := s.secondary[col]
	return ok
}

// decodeValue converts a slot back to a typed value for column col.
func (s *Store) decodeValue(col int, slot uint64) types.Value {
	if slot == types.NullSlot {
		return types.NullValue()
	}
	switch s.schema.Cols[col].Type {
	case types.Int64:
		return types.IntValue(types.DecodeInt64(slot))
	case types.String:
		return types.StringValue(s.dicts[col].decode(slot))
	}
	return types.NullValue()
}
