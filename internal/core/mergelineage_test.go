package core

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"lstore/internal/txn"
	"lstore/internal/types"
)

// replayTPSOpStream replays the op stream of TestInvariantTPSMonotone for one
// seed and fails the test on any per-column TPS regression. It returns false
// on regression (so quick.Check callers can reuse it).
func replayTPSOpStream(t *testing.T, seed int64) bool {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := Config{RangeSize: 32, TailBlockSize: 8, MergeBatch: 4, CumulativeUpdates: true}
	s, err := NewStore(testSchema(), cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tx := s.tm.Begin(txn.ReadCommitted)
	for i := int64(0); i < 32; i++ {
		if err := s.Insert(tx, []types.Value{
			types.IntValue(i), types.IntValue(0), types.IntValue(0), types.IntValue(0),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.tm.Commit(tx); err != nil {
		t.Fatal(err)
	}
	s.TrySeal(s.rangeAt(0))
	last := make([]types.RID, 4)
	for op := 0; op < 60; op++ {
		switch rng.Intn(3) {
		case 0:
			tx := s.tm.Begin(txn.ReadCommitted)
			col := 1 + rng.Intn(3)
			if s.Update(tx, rng.Int63n(32), []int{col}, []types.Value{types.IntValue(rng.Int63n(100))}) != nil {
				s.tm.Abort(tx)
				continue
			}
			if s.tm.Commit(tx) != nil {
				continue
			}
		case 1:
			s.mergeRange(s.rangeAt(0), -1)
		case 2:
			s.MergeColumn(0, rng.Intn(4))
		}
		for c := 0; c < 4; c++ {
			tps := s.RangeTPS(0, c)
			if tps < last[c] {
				t.Logf("seed %d: op %d col %d TPS regressed %v -> %v", seed, op, c, last[c], tps)
				return false
			}
			last[c] = tps
		}
	}
	return true
}

// checkTPSTruthful verifies CheckTPSConsistency's answer against the actual
// per-column TPS values of range ri.
func checkTPSTruthful(t *testing.T, s *Store, ri int) bool {
	t.Helper()
	_, consistent := s.CheckTPSConsistency(ri)
	allEqual := true
	first := s.RangeTPS(ri, 0)
	for c := 1; c < s.schema.NumCols(); c++ {
		if s.RangeTPS(ri, c) != first {
			allEqual = false
			break
		}
	}
	if consistent != allEqual {
		t.Logf("CheckTPSConsistency(%d) = %v but columns equal = %v", ri, consistent, allEqual)
		return false
	}
	return true
}

// TestInvariantMixedMergeSchedulesMatchOracle interleaves per-column merges,
// partial full merges, drain-everything merges, deletes, and NON-cumulative
// updates, and checks every read against a no-merge oracle running the same
// op stream — merges must never change visible state, under any schedule
// (§4.2: full and per-column merges commute). CheckTPSConsistency must stay
// truthful throughout.
func TestInvariantMixedMergeSchedulesMatchOracle(t *testing.T) {
	f := func(seed int64) bool {
		run := func(withMerges bool) map[int64][3]int64 {
			r := rand.New(rand.NewSource(seed + 7777)) // op stream: same both runs
			mr := rand.New(rand.NewSource(seed))       // merge schedule
			cfg := Config{RangeSize: 32, TailBlockSize: 8, MergeBatch: 4, CumulativeUpdates: false}
			s, err := NewStore(testSchema(), cfg, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			tx := s.tm.Begin(txn.ReadCommitted)
			for i := int64(0); i < 32; i++ {
				if err := s.Insert(tx, []types.Value{
					types.IntValue(i), types.IntValue(0), types.IntValue(0), types.IntValue(0),
				}); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.tm.Commit(tx); err != nil {
				t.Fatal(err)
			}
			s.TrySeal(s.rangeAt(0))
			for op := 0; op < 120; op++ {
				tx := s.tm.Begin(txn.ReadCommitted)
				var opErr error
				if r.Intn(10) == 0 {
					opErr = s.Delete(tx, r.Int63n(32))
				} else {
					col := 1 + r.Intn(3)
					opErr = s.Update(tx, r.Int63n(32), []int{col}, []types.Value{types.IntValue(r.Int63n(1 << 30))})
				}
				if opErr != nil {
					s.tm.Abort(tx)
				} else if err := s.tm.Commit(tx); err != nil {
					t.Fatal(err)
				}
				if withMerges {
					switch mr.Intn(6) {
					case 0:
						s.mergeRange(s.rangeAt(0), -1)
					case 1:
						s.MergeColumn(0, mr.Intn(4))
					case 2:
						s.ForceMerge()
					}
					if !checkTPSTruthful(t, s, 0) {
						t.Fatalf("seed %d: CheckTPSConsistency lied at op %d", seed, op)
					}
				}
			}
			out := make(map[int64][3]int64)
			tx2 := s.tm.Begin(txn.ReadCommitted)
			defer s.tm.Abort(tx2)
			for i := int64(0); i < 32; i++ {
				vals, ok, err := s.Get(tx2, i, []int{1, 2, 3})
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					continue // deleted
				}
				out[i] = [3]int64{vals[0].Int(), vals[1].Int(), vals[2].Int()}
			}
			return out
		}
		oracle := run(false)
		merged := run(true)
		if len(oracle) != len(merged) {
			t.Logf("seed %d: live-row count %d != oracle %d", seed, len(merged), len(oracle))
			return false
		}
		for k, want := range oracle {
			if got, ok := merged[k]; !ok || got != want {
				t.Logf("seed %d: key %d = %v, oracle %v", seed, k, merged[k], want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestInvariantTPSMonotoneUnderMergePool runs the merge-scheduler pool
// (MergeWorkers > 1) against concurrent writers and mixed explicit merge
// schedules, sampling every column's TPS from a monitor goroutine: the
// lineage must never regress, and CheckTPSConsistency must stay truthful
// once the system quiesces.
func TestInvariantTPSMonotoneUnderMergePool(t *testing.T) {
	cfg := Config{
		RangeSize: 64, TailBlockSize: 8, MergeBatch: 8,
		CumulativeUpdates: true, AutoMerge: true, MergeWorkers: 4,
	}
	s, err := NewStore(testSchema(), cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 256 // 4 update ranges
	tx := s.tm.Begin(txn.ReadCommitted)
	for i := int64(0); i < rows; i++ {
		if err := s.Insert(tx, []types.Value{
			types.IntValue(i), types.IntValue(0), types.IntValue(0), types.IntValue(0),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.tm.Commit(tx); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var monitorWG sync.WaitGroup
	monitorWG.Add(1)
	var regressed atomic.Bool
	go func() {
		defer monitorWG.Done()
		last := make(map[[2]int]types.RID)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for ri := 0; ri < s.rangeCount(); ri++ {
				for c := 0; c < s.schema.NumCols(); c++ {
					tps := s.RangeTPS(ri, c)
					key := [2]int{ri, c}
					if tps < last[key] {
						t.Errorf("range %d col %d TPS regressed %v -> %v", ri, c, last[key], tps)
						regressed.Store(true)
						return
					}
					last[key] = tps
				}
			}
			runtime.Gosched()
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 400 && !regressed.Load(); i++ {
				tx := s.tm.Begin(txn.ReadCommitted)
				col := 1 + r.Intn(3)
				if s.Update(tx, r.Int63n(rows), []int{col}, []types.Value{types.IntValue(r.Int63n(1 << 20))}) != nil {
					s.tm.Abort(tx)
					continue
				}
				s.tm.Commit(tx) //nolint:errcheck
				if i%16 == 0 {
					// Mixed schedules: explicit per-column and full merges
					// race the background pool.
					ri := r.Intn(s.rangeCount())
					if r.Intn(2) == 0 {
						s.MergeColumn(ri, r.Intn(4))
					} else {
						s.mergeRange(s.rangeAt(ri), -1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	monitorWG.Wait()

	s.ForceMerge()
	for ri := 0; ri < s.rangeCount(); ri++ {
		if !checkTPSTruthful(t, s, ri) {
			t.Fatalf("CheckTPSConsistency lied for range %d after quiesce", ri)
		}
	}
	s.Close()
}

// TestRegressionTPSLineageSeed100813092062542807 pins the deterministic
// repro from ISSUE 1: interleaving MergeColumn with a full mergeRange used to
// regress col 0's TPS (t53 -> t49 at op 25) because the full merge started
// from the minimum cursor and stamped every target column with the prefix's
// TPS unconditionally. Per-column lineage records make the schedules commute.
func TestRegressionTPSLineageSeed100813092062542807(t *testing.T) {
	if !replayTPSOpStream(t, 100813092062542807) {
		t.Fatal("TPS regressed under the pinned seed")
	}
}
