package core

import (
	"sync"
	"sync/atomic"

	"lstore/internal/page"
	"lstore/internal/rid"
	"lstore/internal/types"
)

// tailBlock is a contiguous span of tail RIDs with columnar, write-once
// storage — a set of aligned tail pages (§2.2: "tail pages directly mirror
// the structure and the schema of base pages"). Meta-columns are always
// materialized; data columns are allocated lazily on first update of that
// column within the block ("a column that has never been updated does not
// even have to be materialized", §3.1). Table-level tail blocks of insert
// ranges (§3.2) materialize every column eagerly since inserts provide all
// values.
type tailBlock struct {
	rids *rid.Block

	// pending counts reserved-but-unpublished insert slots (incremented
	// BEFORE the RID take, decremented after the Start Time publish or the
	// neutralizing store). A reserved slot reads ∅ exactly like a
	// neutralized one, so sealing consults this counter to tell "insert in
	// flight" from "aborted forever": a seal must defer while pending > 0
	// or it would discard the in-flight record. sealing fences NEW
	// reservations for partial-block seals (ForceSeal): inserters announce
	// via pending, then check sealing, then take — so a sealer that set
	// sealing and observed pending == 0 knows no take can succeed anymore.
	// Only meaningful for table-level (insert-range) tail blocks.
	pending atomic.Int64
	sealing atomic.Bool

	// Meta tail pages (always present).
	indirection *page.TailPage // back pointer to previous version
	schemaEnc   *page.TailPage // changed-columns bitmap + flags
	startTime   *page.TailPage // commit time or transaction ID
	baseRID     *page.TailPage // owning base record (merge accelerator, §2.2)

	// Data tail pages, one per schema column, allocated lazily. NOT
	// annotated "guarded by allocMu": readers load pages lock-free through
	// the atomic pointer; allocMu only serializes the allocate-and-publish
	// step so two writers do not race to install the same column's page.
	data []atomic.Pointer[page.TailPage]

	allocMu sync.Mutex // serializes lazy data-page allocation only
}

func newTailBlock(first types.RID, n, numCols int, eager bool) *tailBlock {
	b := &tailBlock{
		rids:        rid.NewBlock(first, n),
		indirection: page.NewTail(n),
		schemaEnc:   page.NewTail(n),
		startTime:   page.NewTail(n),
		baseRID:     page.NewTail(n),
		data:        make([]atomic.Pointer[page.TailPage], numCols),
	}
	if eager {
		for i := range b.data {
			b.data[i].Store(page.NewTail(n))
		}
	}
	return b
}

// dataPage returns column col's tail page, allocating it on first use when
// create is true. Returns nil when the column was never materialized.
func (b *tailBlock) dataPage(col int, create bool) *page.TailPage {
	p := b.data[col].Load()
	if p != nil || !create {
		return p
	}
	b.allocMu.Lock()
	defer b.allocMu.Unlock()
	if p := b.data[col].Load(); p != nil {
		return p
	}
	p = page.NewTail(b.rids.N)
	b.data[col].Store(p)
	return p
}

// take reserves the next tail RID in the block.
func (b *tailBlock) take() (types.RID, int, bool) { return b.rids.Take() }

// contains reports whether r belongs to this block.
func (b *tailBlock) contains(r types.RID) bool { return b.rids.Contains(r) }

// slot converts a contained RID to its slot index.
func (b *tailBlock) slot(r types.RID) int { return b.rids.Slot(r) }

// tailRecord is a decoded view of one tail record (read path).
type tailRecord struct {
	rid       types.RID
	back      types.RID // previous version (tail RID) or base RID at chain end
	enc       uint64
	startSlot uint64 // raw Start Time slot (commit time, txn ID, or tombstone)
	block     *tailBlock
	slotIdx   int
}

// value returns this record's explicit value for col; ok is false when the
// record does not define the column.
func (r *tailRecord) value(col int) (uint64, bool) {
	if r.enc&types.SchemaDeleteFlag != 0 {
		// Delete tombstones implicitly set every data column to ∅.
		return types.NullSlot, true
	}
	if r.enc&(1<<uint(col)) == 0 {
		return 0, false
	}
	p := r.block.dataPage(col, false)
	if p == nil {
		return 0, false
	}
	return p.Load(r.slotIdx), true
}

// loadTailRecord reads the record header for rid through the store's tail
// directory. ok is false for unknown RIDs (never handed out).
func (s *Store) loadTailRecord(r types.RID) (tailRecord, bool) {
	b, ok := s.tailDir.Get(uint64(r-types.TailRIDBase) / uint64(s.cfg.TailBlockSize))
	if !ok || !b.contains(r) {
		return tailRecord{}, false
	}
	i := b.slot(r)
	back := b.indirection.Load(i)
	if back == types.NullSlot {
		// Slot reserved but record not yet fully written: the writer stores
		// the back pointer last (publish order), so treat as absent.
		return tailRecord{}, false
	}
	return tailRecord{
		rid:       r,
		back:      types.RID(back),
		enc:       b.schemaEnc.Load(i),
		startSlot: b.startTime.Load(i),
		block:     b,
		slotIdx:   i,
	}, true
}

// newTailBlockFor reserves RID space for a new block and registers it in the
// tail directory so loadTailRecord can address it.
func (s *Store) newTailBlockFor(numCols int, eager bool) (*tailBlock, error) {
	first, err := s.tailAlloc.ReserveBlock(s.cfg.TailBlockSize)
	if err != nil {
		return nil, err
	}
	b := newTailBlock(first, s.cfg.TailBlockSize, numCols, eager)
	s.tailDir.Put(uint64(first-types.TailRIDBase)/uint64(s.cfg.TailBlockSize), b)
	return b, nil
}
