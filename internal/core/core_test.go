package core

import (
	"testing"

	"lstore/internal/txn"
	"lstore/internal/types"
)

// testSchema mirrors the paper's running example: key + columns A, B, C
// (Table 2).
func testSchema() types.Schema {
	return types.Schema{
		Cols: []types.ColumnDef{
			{Name: "key", Type: types.Int64},
			{Name: "A", Type: types.Int64},
			{Name: "B", Type: types.Int64},
			{Name: "C", Type: types.Int64},
		},
		Key: 0,
	}
}

func testConfig() Config {
	return Config{
		RangeSize:         64,
		TailBlockSize:     16,
		MergeBatch:        8,
		CumulativeUpdates: true,
		AutoMerge:         false,
	}
}

func newTestStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := NewStore(testSchema(), cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// mustCommit runs fn inside a read-committed transaction and commits.
func mustCommit(t *testing.T, s *Store, fn func(tx *txn.Txn)) *txn.Txn {
	t.Helper()
	tx := s.tm.Begin(txn.ReadCommitted)
	fn(tx)
	if err := s.tm.Commit(tx); err != nil {
		t.Fatalf("commit: %v", err)
	}
	return tx
}

func insertRow(t *testing.T, s *Store, tx *txn.Txn, key, a, b, c int64) {
	t.Helper()
	err := s.Insert(tx, []types.Value{
		types.IntValue(key), types.IntValue(a), types.IntValue(b), types.IntValue(c),
	})
	if err != nil {
		t.Fatalf("insert %d: %v", key, err)
	}
}

func getRow(t *testing.T, s *Store, key int64) ([]int64, bool) {
	t.Helper()
	tx := s.tm.Begin(txn.ReadCommitted)
	defer s.tm.Abort(tx)
	vals, ok, err := s.Get(tx, key, []int{1, 2, 3})
	if err != nil {
		t.Fatalf("get %d: %v", key, err)
	}
	if !ok {
		return nil, false
	}
	out := make([]int64, len(vals))
	for i, v := range vals {
		out[i] = v.Int()
	}
	return out, true
}

func TestInsertAndGet(t *testing.T) {
	s := newTestStore(t, testConfig())
	mustCommit(t, s, func(tx *txn.Txn) {
		insertRow(t, s, tx, 1, 10, 20, 30)
		insertRow(t, s, tx, 2, 11, 21, 31)
	})
	got, ok := getRow(t, s, 1)
	if !ok || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("row 1 = %v, %v", got, ok)
	}
	got, ok = getRow(t, s, 2)
	if !ok || got[0] != 11 {
		t.Fatalf("row 2 = %v, %v", got, ok)
	}
	if _, ok := getRow(t, s, 99); ok {
		t.Fatal("absent key found")
	}
}

func TestUncommittedInsertInvisible(t *testing.T) {
	s := newTestStore(t, testConfig())
	tx := s.tm.Begin(txn.ReadCommitted)
	insertRow(t, s, tx, 1, 10, 20, 30)
	// Another reader must not see it.
	if _, ok := getRow(t, s, 1); ok {
		t.Fatal("uncommitted insert visible")
	}
	// The inserting transaction sees its own write.
	vals, ok, err := s.Get(tx, 1, []int{1})
	if err != nil || !ok || vals[0].Int() != 10 {
		t.Fatalf("own read = %v %v %v", vals, ok, err)
	}
	s.tm.Abort(tx)
	if _, ok := getRow(t, s, 1); ok {
		t.Fatal("aborted insert visible")
	}
}

func TestDuplicateKeyRejected(t *testing.T) {
	s := newTestStore(t, testConfig())
	mustCommit(t, s, func(tx *txn.Txn) { insertRow(t, s, tx, 7, 1, 2, 3) })
	tx := s.tm.Begin(txn.ReadCommitted)
	err := s.Insert(tx, []types.Value{
		types.IntValue(7), types.IntValue(0), types.IntValue(0), types.IntValue(0),
	})
	if err != ErrDuplicateKey {
		t.Fatalf("err = %v, want ErrDuplicateKey", err)
	}
	s.tm.Abort(tx)
	// Original row intact.
	if got, ok := getRow(t, s, 7); !ok || got[0] != 1 {
		t.Fatalf("row 7 = %v %v", got, ok)
	}
}

func TestUpdateCreatesNewVersion(t *testing.T) {
	s := newTestStore(t, testConfig())
	mustCommit(t, s, func(tx *txn.Txn) { insertRow(t, s, tx, 1, 10, 20, 30) })
	mustCommit(t, s, func(tx *txn.Txn) {
		if err := s.Update(tx, 1, []int{1}, []types.Value{types.IntValue(100)}); err != nil {
			t.Fatal(err)
		}
	})
	got, ok := getRow(t, s, 1)
	if !ok || got[0] != 100 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("after update: %v %v", got, ok)
	}
}

func TestUncommittedUpdateInvisibleAndAbortRollsBack(t *testing.T) {
	s := newTestStore(t, testConfig())
	mustCommit(t, s, func(tx *txn.Txn) { insertRow(t, s, tx, 1, 10, 20, 30) })

	tx := s.tm.Begin(txn.ReadCommitted)
	if err := s.Update(tx, 1, []int{1}, []types.Value{types.IntValue(999)}); err != nil {
		t.Fatal(err)
	}
	// Own read sees it; others do not.
	vals, ok, _ := s.Get(tx, 1, []int{1})
	if !ok || vals[0].Int() != 999 {
		t.Fatalf("own read = %v", vals)
	}
	if got, _ := getRow(t, s, 1); got[0] != 10 {
		t.Fatalf("other read sees uncommitted: %v", got)
	}
	s.tm.Abort(tx)
	// Append-only rollback: tail record tombstoned, not removed.
	if got, _ := getRow(t, s, 1); got[0] != 10 {
		t.Fatalf("after abort: %v", got)
	}
	// A later update walks past the tombstone.
	mustCommit(t, s, func(tx *txn.Txn) {
		if err := s.Update(tx, 1, []int{1}, []types.Value{types.IntValue(11)}); err != nil {
			t.Fatal(err)
		}
	})
	if got, _ := getRow(t, s, 1); got[0] != 11 {
		t.Fatalf("after post-abort update: %v", got)
	}
}

func TestWriteWriteConflictAbortsSecondWriter(t *testing.T) {
	s := newTestStore(t, testConfig())
	mustCommit(t, s, func(tx *txn.Txn) { insertRow(t, s, tx, 1, 10, 20, 30) })

	t1 := s.tm.Begin(txn.ReadCommitted)
	t2 := s.tm.Begin(txn.ReadCommitted)
	if err := s.Update(t1, 1, []int{1}, []types.Value{types.IntValue(11)}); err != nil {
		t.Fatal(err)
	}
	// t2 must hit the uncommitted-competitor check.
	if err := s.Update(t2, 1, []int{2}, []types.Value{types.IntValue(22)}); err != txn.ErrConflict {
		t.Fatalf("second writer err = %v, want ErrConflict", err)
	}
	s.tm.Abort(t2)
	if err := s.tm.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if got, _ := getRow(t, s, 1); got[0] != 11 || got[1] != 20 {
		t.Fatalf("after conflict: %v", got)
	}
	if s.Stats().WWConflicts == 0 {
		t.Fatal("conflict not counted")
	}
}

func TestSameTxnMultipleUpdatesLastWins(t *testing.T) {
	s := newTestStore(t, testConfig())
	mustCommit(t, s, func(tx *txn.Txn) { insertRow(t, s, tx, 1, 10, 20, 30) })
	mustCommit(t, s, func(tx *txn.Txn) {
		for _, v := range []int64{11, 12, 13} {
			if err := s.Update(tx, 1, []int{1}, []types.Value{types.IntValue(v)}); err != nil {
				t.Fatal(err)
			}
		}
	})
	if got, _ := getRow(t, s, 1); got[0] != 13 {
		t.Fatalf("last update should win: %v", got)
	}
}

func TestDeleteAndReinsert(t *testing.T) {
	s := newTestStore(t, testConfig())
	mustCommit(t, s, func(tx *txn.Txn) { insertRow(t, s, tx, 1, 10, 20, 30) })
	mustCommit(t, s, func(tx *txn.Txn) {
		if err := s.Delete(tx, 1); err != nil {
			t.Fatal(err)
		}
	})
	if _, ok := getRow(t, s, 1); ok {
		t.Fatal("deleted row visible")
	}
	// Updating a deleted record fails.
	tx := s.tm.Begin(txn.ReadCommitted)
	if err := s.Update(tx, 1, []int{1}, []types.Value{types.IntValue(5)}); err != ErrNotFound {
		t.Fatalf("update deleted: %v", err)
	}
	s.tm.Abort(tx)
	// Re-insert under the same key gets a fresh record.
	mustCommit(t, s, func(tx *txn.Txn) { insertRow(t, s, tx, 1, 77, 88, 99) })
	if got, ok := getRow(t, s, 1); !ok || got[0] != 77 {
		t.Fatalf("reinserted = %v %v", got, ok)
	}
}

func TestDeleteVisibilityIsTransactional(t *testing.T) {
	s := newTestStore(t, testConfig())
	mustCommit(t, s, func(tx *txn.Txn) { insertRow(t, s, tx, 1, 10, 20, 30) })
	tx := s.tm.Begin(txn.ReadCommitted)
	if err := s.Delete(tx, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := getRow(t, s, 1); !ok {
		t.Fatal("uncommitted delete already visible")
	}
	s.tm.Abort(tx)
	if _, ok := getRow(t, s, 1); !ok {
		t.Fatal("aborted delete removed the record")
	}
}

func TestNullValues(t *testing.T) {
	s := newTestStore(t, testConfig())
	mustCommit(t, s, func(tx *txn.Txn) {
		err := s.Insert(tx, []types.Value{
			types.IntValue(1), types.NullValue(), types.IntValue(2), types.NullValue(),
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	tx := s.tm.Begin(txn.ReadCommitted)
	defer s.tm.Abort(tx)
	vals, ok, err := s.Get(tx, 1, []int{1, 2, 3})
	if err != nil || !ok {
		t.Fatal(err)
	}
	if !vals[0].IsNull() || vals[1].Int() != 2 || !vals[2].IsNull() {
		t.Fatalf("nulls mishandled: %v", vals)
	}
}

func TestStringColumnsDictionaryEncoded(t *testing.T) {
	schema := types.Schema{
		Cols: []types.ColumnDef{
			{Name: "key", Type: types.Int64},
			{Name: "city", Type: types.String},
		},
		Key: 0,
	}
	s, err := NewStore(schema, testConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tm := s.TxnManager()
	tx := tm.Begin(txn.ReadCommitted)
	for i := int64(0); i < 10; i++ {
		city := []string{"nyc", "sf", "nyc", "la"}[i%4]
		if err := s.Insert(tx, []types.Value{types.IntValue(i), types.StringValue(city)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tm.Commit(tx); err != nil {
		t.Fatal(err)
	}
	tx2 := tm.Begin(txn.ReadCommitted)
	defer tm.Abort(tx2)
	vals, ok, err := s.Get(tx2, 2, []int{1})
	if err != nil || !ok || vals[0].Str() != "nyc" {
		t.Fatalf("string roundtrip: %v %v %v", vals, ok, err)
	}
	if s.dicts[1].size() != 3 {
		t.Fatalf("dict size = %d, want 3", s.dicts[1].size())
	}
	// Update to a new string.
	mustCommit(t, s, func(tx *txn.Txn) {
		if err := s.Update(tx, 2, []int{1}, []types.Value{types.StringValue("tokyo")}); err != nil {
			t.Fatal(err)
		}
	})
	tx3 := tm.Begin(txn.ReadCommitted)
	defer tm.Abort(tx3)
	vals, _, _ = s.Get(tx3, 2, []int{1})
	if vals[0].Str() != "tokyo" {
		t.Fatalf("updated string = %v", vals[0])
	}
}

func TestTypeMismatchRejected(t *testing.T) {
	s := newTestStore(t, testConfig())
	tx := s.tm.Begin(txn.ReadCommitted)
	defer s.tm.Abort(tx)
	err := s.Insert(tx, []types.Value{
		types.StringValue("oops"), types.IntValue(1), types.IntValue(2), types.IntValue(3),
	})
	if err == nil {
		t.Fatal("string into int64 key accepted")
	}
	err = s.Insert(tx, []types.Value{types.IntValue(5)})
	if err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestUpdateKeyColumnRejected(t *testing.T) {
	s := newTestStore(t, testConfig())
	mustCommit(t, s, func(tx *txn.Txn) { insertRow(t, s, tx, 1, 10, 20, 30) })
	tx := s.tm.Begin(txn.ReadCommitted)
	defer s.tm.Abort(tx)
	if err := s.Update(tx, 1, []int{0}, []types.Value{types.IntValue(2)}); err == nil {
		t.Fatal("key update accepted")
	}
}

func TestInsertRangeRollover(t *testing.T) {
	cfg := testConfig()
	cfg.RangeSize = 16
	cfg.TailBlockSize = 16
	s := newTestStore(t, cfg)
	mustCommit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 100; i++ {
			insertRow(t, s, tx, i, i*2, i*3, i*4)
		}
	})
	if got := s.rangeCount(); got < 7 {
		t.Fatalf("rangeCount = %d, want >= 7", got)
	}
	for i := int64(0); i < 100; i++ {
		got, ok := getRow(t, s, i)
		if !ok || got[0] != i*2 || got[2] != i*4 {
			t.Fatalf("row %d = %v %v", i, got, ok)
		}
	}
}

func TestScanSum(t *testing.T) {
	s := newTestStore(t, testConfig())
	var want int64
	mustCommit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 50; i++ {
			insertRow(t, s, tx, i, i, 2*i, 3*i)
			want += i
		}
	})
	sum, rows := s.ScanSum(s.tm.Now(), 1)
	if sum != want || rows != 50 {
		t.Fatalf("sum = %d rows = %d, want %d/50", sum, rows, want)
	}
	// Updates move the sum.
	mustCommit(t, s, func(tx *txn.Txn) {
		if err := s.Update(tx, 0, []int{1}, []types.Value{types.IntValue(1000)}); err != nil {
			t.Fatal(err)
		}
	})
	sum, _ = s.ScanSum(s.tm.Now(), 1)
	if sum != want+1000 {
		t.Fatalf("sum after update = %d, want %d", sum, want+1000)
	}
	// Deleted rows leave the sum.
	mustCommit(t, s, func(tx *txn.Txn) {
		if err := s.Delete(tx, 3); err != nil {
			t.Fatal(err)
		}
	})
	sum, rows = s.ScanSum(s.tm.Now(), 1)
	if sum != want+1000-3 || rows != 49 {
		t.Fatalf("sum after delete = %d rows %d", sum, rows)
	}
}

func TestScanSumSnapshotStability(t *testing.T) {
	s := newTestStore(t, testConfig())
	mustCommit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 20; i++ {
			insertRow(t, s, tx, i, 1, 0, 0)
		}
	})
	snap := s.tm.Now()
	// Concurrent-ish updates after the snapshot.
	mustCommit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 20; i++ {
			if err := s.Update(tx, i, []int{1}, []types.Value{types.IntValue(100)}); err != nil {
				t.Fatal(err)
			}
		}
	})
	sum, _ := s.ScanSum(snap, 1)
	if sum != 20 {
		t.Fatalf("snapshot scan = %d, want 20 (pre-update values)", sum)
	}
	sum, _ = s.ScanSum(s.tm.Now(), 1)
	if sum != 2000 {
		t.Fatalf("current scan = %d, want 2000", sum)
	}
}

func TestScanRange(t *testing.T) {
	s := newTestStore(t, testConfig())
	mustCommit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 30; i++ {
			insertRow(t, s, tx, i, i*10, 0, 0)
		}
	})
	var keys []int64
	s.ScanRange(s.tm.Now(), []int{1}, 0, ^types.RID(0), func(key int64, vals []types.Value) bool {
		if vals[0].Int() != key*10 {
			t.Errorf("key %d has A=%d", key, vals[0].Int())
		}
		keys = append(keys, key)
		return true
	})
	if len(keys) != 30 {
		t.Fatalf("scanned %d rows, want 30", len(keys))
	}
	// Early stop.
	n := 0
	s.ScanRange(s.tm.Now(), []int{1}, 0, ^types.RID(0), func(int64, []types.Value) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestGetAtTimeTravel(t *testing.T) {
	s := newTestStore(t, testConfig())
	mustCommit(t, s, func(tx *txn.Txn) { insertRow(t, s, tx, 1, 10, 20, 30) })
	ts1 := s.tm.Now()
	mustCommit(t, s, func(tx *txn.Txn) {
		if err := s.Update(tx, 1, []int{1}, []types.Value{types.IntValue(11)}); err != nil {
			t.Fatal(err)
		}
	})
	ts2 := s.tm.Now()
	mustCommit(t, s, func(tx *txn.Txn) {
		if err := s.Update(tx, 1, []int{1, 3}, []types.Value{types.IntValue(12), types.IntValue(33)}); err != nil {
			t.Fatal(err)
		}
	})
	ts3 := s.tm.Now()

	check := func(ts types.Timestamp, wantA, wantC int64) {
		t.Helper()
		vals, ok, err := s.GetAt(ts, 1, []int{1, 3})
		if err != nil || !ok {
			t.Fatalf("GetAt(%d): %v %v", ts, ok, err)
		}
		if vals[0].Int() != wantA || vals[1].Int() != wantC {
			t.Fatalf("GetAt(%d) = A:%v C:%v, want %d/%d", ts, vals[0], vals[1], wantA, wantC)
		}
	}
	check(ts1, 10, 30)
	check(ts2, 11, 30)
	check(ts3, 12, 33)

	// Before the insert the record does not exist.
	if _, ok, _ := s.GetAt(0, 1, []int{1}); ok {
		t.Fatal("record visible before insert")
	}
}

func TestSecondaryIndexLookup(t *testing.T) {
	cfg := testConfig()
	cfg.SecondaryIndexColumns = []int{3}
	s := newTestStore(t, cfg)
	mustCommit(t, s, func(tx *txn.Txn) {
		insertRow(t, s, tx, 1, 0, 0, 7)
		insertRow(t, s, tx, 2, 0, 0, 7)
		insertRow(t, s, tx, 3, 0, 0, 8)
	})
	keys, err := s.LookupSecondary(s.tm.Now(), 3, types.IntValue(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Fatalf("lookup(7) = %v", keys)
	}
	// Update moves record 1 from 7 to 9; stale entry must be filtered by
	// predicate re-evaluation (§3.1).
	mustCommit(t, s, func(tx *txn.Txn) {
		if err := s.Update(tx, 1, []int{3}, []types.Value{types.IntValue(9)}); err != nil {
			t.Fatal(err)
		}
	})
	keys, _ = s.LookupSecondary(s.tm.Now(), 3, types.IntValue(7))
	if len(keys) != 1 || keys[0] != 2 {
		t.Fatalf("lookup(7) after update = %v", keys)
	}
	keys, _ = s.LookupSecondary(s.tm.Now(), 3, types.IntValue(9))
	if len(keys) != 1 || keys[0] != 1 {
		t.Fatalf("lookup(9) = %v", keys)
	}
}

func TestSnapshotIsolationLevelReadsBeginTime(t *testing.T) {
	s := newTestStore(t, testConfig())
	mustCommit(t, s, func(tx *txn.Txn) { insertRow(t, s, tx, 1, 10, 20, 30) })
	snap := s.tm.Begin(txn.Snapshot)
	// A later committed update is invisible to the snapshot txn.
	mustCommit(t, s, func(tx *txn.Txn) {
		if err := s.Update(tx, 1, []int{1}, []types.Value{types.IntValue(99)}); err != nil {
			t.Fatal(err)
		}
	})
	vals, ok, err := s.Get(snap, 1, []int{1})
	if err != nil || !ok || vals[0].Int() != 10 {
		t.Fatalf("snapshot read = %v %v %v", vals, ok, err)
	}
	if err := s.tm.Commit(snap); err != nil {
		t.Fatal(err)
	}
}

func TestSerializableValidationDetectsChange(t *testing.T) {
	s := newTestStore(t, testConfig())
	mustCommit(t, s, func(tx *txn.Txn) { insertRow(t, s, tx, 1, 10, 20, 30) })

	t1 := s.tm.Begin(txn.Serializable)
	if _, ok, err := s.Get(t1, 1, []int{1}); err != nil || !ok {
		t.Fatalf("read: %v %v", ok, err)
	}
	// A competing committed write invalidates t1's read.
	mustCommit(t, s, func(tx *txn.Txn) {
		if err := s.Update(tx, 1, []int{1}, []types.Value{types.IntValue(99)}); err != nil {
			t.Fatal(err)
		}
	})
	if err := s.tm.Commit(t1); err != txn.ErrConflict {
		t.Fatalf("commit err = %v, want ErrConflict", err)
	}

	// Without interference the same pattern commits.
	t2 := s.tm.Begin(txn.Serializable)
	if _, ok, _ := s.Get(t2, 1, []int{1}); !ok {
		t.Fatal("read failed")
	}
	if err := s.tm.Commit(t2); err != nil {
		t.Fatalf("clean serializable commit failed: %v", err)
	}
}

func TestSpeculativeReadSeesPreCommit(t *testing.T) {
	s := newTestStore(t, testConfig())
	mustCommit(t, s, func(tx *txn.Txn) { insertRow(t, s, tx, 1, 10, 20, 30) })

	writer := s.tm.Begin(txn.ReadCommitted)
	if err := s.Update(writer, 1, []int{1}, []types.Value{types.IntValue(55)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.tm.Prepare(writer); err != nil {
		t.Fatal(err)
	}
	// Normal read: old value. Speculative: pre-committed value.
	reader := s.tm.Begin(txn.ReadCommitted)
	vals, _, _ := s.Get(reader, 1, []int{1})
	if vals[0].Int() != 10 {
		t.Fatalf("normal read = %v, want 10", vals[0])
	}
	sv, _, _ := s.GetSpeculative(reader, 1, []int{1})
	if sv[0].Int() != 55 {
		t.Fatalf("speculative read = %v, want 55", sv[0])
	}
	s.tm.Abort(reader)
	if err := writer.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := s.tm.Commit(writer); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	_, err := NewStore(testSchema(), Config{RangeSize: 100}, nil, nil)
	if err == nil {
		t.Fatal("non-power-of-two RangeSize accepted")
	}
	_, err = NewStore(testSchema(), Config{RangeSize: 64, TailBlockSize: 48}, nil, nil)
	if err == nil {
		t.Fatal("non-dividing TailBlockSize accepted")
	}
	_, err = NewStore(types.Schema{}, Config{}, nil, nil)
	if err == nil {
		t.Fatal("empty schema accepted")
	}
	_, err = NewStore(testSchema(), Config{SecondaryIndexColumns: []int{9}}, nil, nil)
	if err == nil {
		t.Fatal("bad secondary column accepted")
	}
}
