package core

import (
	"sync/atomic"

	"lstore/internal/page"
)

// Stats exposes engine counters for the benchmark harness and
// cmd/lstore-inspect. All counters are monotone.
type Stats struct {
	Inserts           atomic.Uint64
	Updates           atomic.Uint64
	Deletes           atomic.Uint64
	PointReads        atomic.Uint64
	Scans             atomic.Uint64
	ScanFastSlots     atomic.Uint64
	ScanSlowSlots     atomic.Uint64
	ScanWordsDecoded  atomic.Uint64
	ScanWordsSkipped  atomic.Uint64
	WWConflicts       atomic.Uint64
	TailRecords       atomic.Uint64
	Merges            atomic.Uint64
	MergedTailRecords atomic.Uint64
	Seals             atomic.Uint64
	PagesRetired      atomic.Uint64
	PagesReclaimed    atomic.Uint64
	HistoryPasses     atomic.Uint64
	HistoryRecords    atomic.Uint64
	SpillErrors       atomic.Uint64 // spill appends that failed (page stayed resident)
}

// StatsSnapshot is a point-in-time copy of the counters, plus the merge-lag
// gauges (computed at snapshot time, not monotone): MergeBacklog is the
// number of appended tail records not yet consumed by every column's merge
// across all ranges — the distance between writers and the merge scheduler —
// and MergeQueueDepth is how many ranges currently wait in the merge queue.
// ScanFastSlots/ScanSlowSlots split scanned slots between the scan engine's
// decoded-page fast path and the readCols chain-walk fallback (their ratio
// is the scan-side health of the merge: a growing slow share means lineage
// is outrunning consolidation). ScanWordsDecoded/ScanWordsSkipped are the
// encoded scan path's 64-slot word gauges: words whose column pages were
// materialized vs words rejected straight from the encoded predicate filter
// with zero decode. ScanWorkers is the configured scan pool.
type StatsSnapshot struct {
	Inserts           uint64
	Updates           uint64
	Deletes           uint64
	PointReads        uint64
	Scans             uint64
	ScanFastSlots     uint64
	ScanSlowSlots     uint64
	ScanWordsDecoded  uint64
	ScanWordsSkipped  uint64
	WWConflicts       uint64
	TailRecords       uint64
	Merges            uint64
	MergedTailRecords uint64
	Seals             uint64
	PagesRetired      uint64
	PagesReclaimed    uint64
	HistoryPasses     uint64
	HistoryRecords    uint64

	MergeBacklog    int64
	MergeQueueDepth int
	MergeWorkers    int
	ScanWorkers     int

	// Beyond-RAM base storage (all zero without Config.Spill): the buffer
	// pool's hit/miss/eviction counters, its resident-byte gauge against the
	// configured cap, the number of page frames currently on the spill file
	// (the spill page directory's size), and spill appends that failed.
	PoolHits          uint64
	PoolMisses        uint64
	PoolEvictions     uint64
	PoolResidentBytes int64
	PoolCapBytes      int64
	SpilledPages      int
	SpillErrors       uint64
}

// Stats returns a snapshot of the engine counters and merge-lag gauges.
func (s *Store) Stats() StatsSnapshot {
	snap := StatsSnapshot{
		Inserts:           s.stats.Inserts.Load(),
		Updates:           s.stats.Updates.Load(),
		Deletes:           s.stats.Deletes.Load(),
		PointReads:        s.stats.PointReads.Load(),
		Scans:             s.stats.Scans.Load(),
		ScanFastSlots:     s.stats.ScanFastSlots.Load(),
		ScanSlowSlots:     s.stats.ScanSlowSlots.Load(),
		ScanWordsDecoded:  s.stats.ScanWordsDecoded.Load(),
		ScanWordsSkipped:  s.stats.ScanWordsSkipped.Load(),
		WWConflicts:       s.stats.WWConflicts.Load(),
		TailRecords:       s.stats.TailRecords.Load(),
		Merges:            s.stats.Merges.Load(),
		MergedTailRecords: s.stats.MergedTailRecords.Load(),
		Seals:             s.stats.Seals.Load(),
		PagesRetired:      s.stats.PagesRetired.Load(),
		PagesReclaimed:    s.stats.PagesReclaimed.Load(),
		HistoryPasses:     s.stats.HistoryPasses.Load(),
		HistoryRecords:    s.stats.HistoryRecords.Load(),
		MergeQueueDepth:   len(s.mergeQ),
		ScanWorkers:       s.cfg.ScanWorkers,
	}
	if s.cfg.AutoMerge {
		snap.MergeWorkers = s.cfg.MergeWorkers // 0 when no pool is running
	}
	for i := 0; i < s.rangeCount(); i++ {
		snap.MergeBacklog += s.rangeAt(i).pendingTail()
	}
	if s.pool != nil {
		pg := s.pool.Gauges()
		snap.PoolHits = uint64(pg.Hits)
		snap.PoolMisses = uint64(pg.Misses)
		snap.PoolEvictions = uint64(pg.Evictions)
		snap.PoolResidentBytes = pg.ResidentBytes
		snap.PoolCapBytes = pg.CapBytes
		snap.SpilledPages = s.spillDir.Len()
		snap.SpillErrors = s.stats.SpillErrors.Load()
	}
	return snap
}

// CompressionStats summarizes the encoded footprint of the table's sealed
// base pages (data columns plus the Start/Last Updated/Schema meta columns).
// LogicalWords is what the pages represent (one word per slot);
// PhysicalWords is what they occupy — their ratio is the compression factor
// cmd/lstore-inspect reports.
type CompressionStats struct {
	SealedRanges int
	PagesRaw     int
	PagesPacked  int
	PagesDict    int
	PagesRLE     int

	LogicalWords  uint64
	PhysicalWords uint64
}

// Ratio is the logical/physical compression factor (1 when nothing is sealed).
func (cs CompressionStats) Ratio() float64 {
	if cs.PhysicalWords == 0 {
		return 1
	}
	return float64(cs.LogicalWords) / float64(cs.PhysicalWords)
}

// CompressionStats walks every sealed range's current page versions.
func (s *Store) CompressionStats() CompressionStats {
	var cs CompressionStats
	g := s.em.Pin()
	defer g.Unpin()
	tally := func(p page.Reader) {
		if p == nil {
			return
		}
		switch p.Kind() {
		case page.KindPacked:
			cs.PagesPacked++
		case page.KindDict:
			cs.PagesDict++
		case page.KindRLE:
			cs.PagesRLE++
		default:
			cs.PagesRaw++
		}
		cs.LogicalWords += uint64(p.Len())
		cs.PhysicalWords += uint64(p.MemWords())
	}
	for i := 0; i < s.rangeCount(); i++ {
		r := s.rangeAt(i)
		mv := r.meta.Load()
		if mv == nil {
			continue
		}
		cs.SealedRanges++
		for c := range r.cols {
			if cv := r.cols[c].Load(); cv != nil {
				tally(cv.data)
			}
		}
		tally(mv.startTime)
		tally(mv.lastUpdated)
		tally(mv.schemaEnc)
	}
	return cs
}
