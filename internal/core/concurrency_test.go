package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"lstore/internal/txn"
	"lstore/internal/types"
)

// TestConcurrentWritersWithMergeAndScans is the integration stress test:
// several writer goroutines run short update transactions against a shared
// key set while a merge worker consolidates and scan goroutines verify an
// invariant — the table-wide sum of column A equals the sum implied by the
// committed counter increments, at every snapshot.
func TestConcurrentWritersWithMergeAndScans(t *testing.T) {
	cfg := Config{
		RangeSize:         256,
		TailBlockSize:     64,
		MergeBatch:        64,
		CumulativeUpdates: true,
		AutoMerge:         true,
	}
	s, err := NewStore(testSchema(), cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	const nKeys = 256
	mustCommit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < nKeys; i++ {
			insertRow(t, s, tx, i, 0, 0, 0)
		}
	})

	// Writers: each committed transaction adds exactly +1 to one record's A
	// column (read-modify-write) under serializable isolation, so read
	// validation turns every lost update into an abort and the committed
	// increment count exactly predicts the table sum.
	var committedIncrements atomic.Int64
	var aborted atomic.Int64
	var wg sync.WaitGroup
	const writers, opsPerWriter = 4, 400
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for op := 0; op < opsPerWriter; op++ {
				key := rng.Int63n(nKeys)
				tx := s.tm.Begin(txn.Serializable)
				vals, ok, err := s.Get(tx, key, []int{1})
				if err != nil || !ok {
					t.Errorf("get %d: %v %v", key, ok, err)
					s.tm.Abort(tx)
					return
				}
				err = s.Update(tx, key, []int{1}, []types.Value{types.IntValue(vals[0].Int() + 1)})
				if err != nil {
					s.tm.Abort(tx)
					aborted.Add(1)
					continue
				}
				if err := s.tm.Commit(tx); err != nil {
					aborted.Add(1)
					continue
				}
				committedIncrements.Add(1)
			}
		}(int64(w) + 42)
	}

	// Scanners: snapshot sums must never exceed the committed total at the
	// time the snapshot was taken, and must be monotone in snapshot time.
	scanErr := make(chan error, 1)
	var scanWG sync.WaitGroup
	stop := make(chan struct{})
	for sc := 0; sc < 2; sc++ {
		scanWG.Add(1)
		go func() {
			defer scanWG.Done()
			var lastSum int64 = -1
			for {
				select {
				case <-stop:
					return
				default:
				}
				before := committedIncrements.Load()
				ts := s.tm.Now()
				sum, rows := s.ScanSum(ts, 1)
				after := committedIncrements.Load()
				_ = before
				if rows != nKeys {
					select {
					case scanErr <- errf("scan saw %d rows, want %d", rows, nKeys):
					default:
					}
					return
				}
				// The snapshot's sum can't exceed all increments committed
				// by the time the scan finished.
				if sum > after {
					select {
					case scanErr <- errf("snapshot sum %d exceeds committed %d", sum, after):
					default:
					}
					return
				}
				if sum < lastSum {
					// Not strictly monotone across different snapshots taken
					// by the same goroutine? It is: ts increases and updates
					// only add +1.
					select {
					case scanErr <- errf("snapshot sums went backwards: %d after %d", sum, lastSum):
					default:
					}
					return
				}
				lastSum = sum
			}
		}()
	}

	wg.Wait()
	close(stop)
	scanWG.Wait()
	select {
	case err := <-scanErr:
		t.Fatal(err)
	default:
	}

	// Quiesced: final sum equals committed increments exactly.
	finalSum, _ := s.ScanSum(s.tm.Now(), 1)
	if finalSum != committedIncrements.Load() {
		t.Fatalf("final sum %d != committed increments %d (aborted=%d)",
			finalSum, committedIncrements.Load(), aborted.Load())
	}
	s.Close()
	// And again after draining all merges.
	finalSum2, _ := s.ScanSum(s.tm.Now(), 1)
	if finalSum2 != finalSum {
		t.Fatalf("sum changed across close: %d -> %d", finalSum, finalSum2)
	}
	if aborted.Load() == 0 {
		t.Log("note: no write-write conflicts occurred (timing-dependent)")
	}
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }

// TestConcurrentInsertersUniqueKeys: concurrent inserters racing on
// overlapping key sets must never both succeed for one key.
func TestConcurrentInsertersUniqueKeys(t *testing.T) {
	cfg := testConfig()
	cfg.RangeSize = 512
	cfg.TailBlockSize = 64
	s := newTestStore(t, cfg)
	const nKeys = 300
	var wins atomic.Int64
	var dups atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := int64(0); k < nKeys; k++ {
				tx := s.tm.Begin(txn.ReadCommitted)
				err := s.Insert(tx, []types.Value{
					types.IntValue(k), types.IntValue(int64(w)), types.IntValue(0), types.IntValue(0),
				})
				if err != nil {
					s.tm.Abort(tx)
					dups.Add(1)
					continue
				}
				if err := s.tm.Commit(tx); err != nil {
					dups.Add(1)
					continue
				}
				wins.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if wins.Load() != nKeys {
		t.Fatalf("committed inserts = %d, want exactly %d", wins.Load(), nKeys)
	}
	// Every key readable exactly once.
	for k := int64(0); k < nKeys; k++ {
		if _, ok := getRow(t, s, k); !ok {
			t.Fatalf("key %d missing", k)
		}
	}
	_, rows := s.ScanSum(s.tm.Now(), 1)
	if rows != nKeys {
		t.Fatalf("scan rows = %d, want %d", rows, nKeys)
	}
}

// TestConcurrentReadersDuringMerge hammers point reads while merges run;
// readers must always see each record's committed value.
func TestConcurrentReadersDuringMerge(t *testing.T) {
	cfg := testConfig()
	cfg.RangeSize = 128
	cfg.TailBlockSize = 32
	cfg.MergeBatch = 16
	s := newTestStore(t, cfg)
	mustCommit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 128; i++ {
			insertRow(t, s, tx, i, i, 0, 0)
		}
	})
	s.TrySeal(s.rangeAt(0))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// One writer keeps bumping values by +1000 (value = key + 1000*version).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := int64(1); v <= 20; v++ {
			mustCommit(t, s, func(tx *txn.Txn) {
				for i := int64(0); i < 128; i += 8 {
					if err := s.Update(tx, i, []int{1}, []types.Value{types.IntValue(i + 1000*v)}); err != nil {
						t.Errorf("update: %v", err)
						return
					}
				}
			})
		}
	}()
	// Merge thread.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.ForceMerge()
		}
	}()
	// Readers: A mod 1000 must always equal the key.
	for rd := 0; rd < 2; rd++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := rng.Int63n(128)
				got, ok := getRow(t, s, key)
				if !ok {
					t.Errorf("key %d vanished", key)
					return
				}
				if got[0]%1000 != key {
					t.Errorf("key %d read torn value %d", key, got[0])
					return
				}
			}
		}(int64(rd))
	}
	// Wait until the writer's final round is visible, then stop the rest.
	for {
		got, _ := getRow(t, s, 0)
		if got != nil && got[0] == 20000 {
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestQuickCheckRandomOpSequences drives random single-threaded op
// sequences against a model map; engine state must match the model exactly.
func TestQuickCheckRandomOpSequences(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{RangeSize: 32, TailBlockSize: 16, MergeBatch: 8, CumulativeUpdates: seed%2 == 0}
		s, err := NewStore(testSchema(), cfg, nil, nil)
		if err != nil {
			return false
		}
		defer s.Close()
		type row struct{ a, b, c int64 }
		model := make(map[int64]*row)
		for op := 0; op < 120; op++ {
			key := rng.Int63n(20)
			switch rng.Intn(6) {
			case 0, 1: // insert
				tx := s.tm.Begin(txn.ReadCommitted)
				err := s.Insert(tx, []types.Value{
					types.IntValue(key), types.IntValue(key * 2), types.IntValue(key * 3), types.IntValue(key * 4),
				})
				if model[key] != nil {
					if err != ErrDuplicateKey {
						t.Logf("op %d: dup insert err = %v", op, err)
						return false
					}
					s.tm.Abort(tx)
				} else {
					if err != nil {
						t.Logf("op %d: insert err = %v", op, err)
						return false
					}
					if s.tm.Commit(tx) != nil {
						return false
					}
					model[key] = &row{a: key * 2, b: key * 3, c: key * 4}
				}
			case 2, 3: // update
				tx := s.tm.Begin(txn.ReadCommitted)
				col := 1 + rng.Intn(3)
				val := rng.Int63n(1000)
				err := s.Update(tx, key, []int{col}, []types.Value{types.IntValue(val)})
				if model[key] == nil {
					if err != ErrNotFound {
						t.Logf("op %d: update missing err = %v", op, err)
						return false
					}
					s.tm.Abort(tx)
				} else {
					if err != nil || s.tm.Commit(tx) != nil {
						t.Logf("op %d: update err = %v", op, err)
						return false
					}
					switch col {
					case 1:
						model[key].a = val
					case 2:
						model[key].b = val
					case 3:
						model[key].c = val
					}
				}
			case 4: // delete
				tx := s.tm.Begin(txn.ReadCommitted)
				err := s.Delete(tx, key)
				if model[key] == nil {
					if err != ErrNotFound {
						return false
					}
					s.tm.Abort(tx)
				} else {
					if err != nil || s.tm.Commit(tx) != nil {
						return false
					}
					delete(model, key)
				}
			case 5: // merge / compress at random points
				if rng.Intn(2) == 0 {
					s.ForceMerge()
				} else {
					s.CompressHistory()
				}
			}
		}
		s.ForceMerge()
		// Verify every key against the model.
		for key := int64(0); key < 20; key++ {
			got, ok := getRow(nil2t(t), s, key)
			m := model[key]
			if (m != nil) != ok {
				t.Logf("seed %d: key %d exists=%v model=%v", seed, key, ok, m != nil)
				return false
			}
			if m != nil && (got[0] != m.a || got[1] != m.b || got[2] != m.c) {
				t.Logf("seed %d: key %d = %v, model %+v", seed, key, got, *m)
				return false
			}
		}
		// Scan agrees with the model sum.
		var wantSum int64
		for _, r := range model {
			wantSum += r.a
		}
		sum, rows := s.ScanSum(s.tm.Now(), 1)
		if sum != wantSum || int(rows) != len(model) {
			t.Logf("seed %d: scan %d/%d want %d/%d", seed, sum, rows, wantSum, len(model))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// nil2t lets the helper accept the same *testing.T within quick.Check.
func nil2t(t *testing.T) *testing.T { return t }

// TestInsertSealRaceKeepsRecords: an insert that reserved the LAST slot of
// the insert range races a seal of that (now "full") range. The reserved
// slot's ∅ Start Time looks exactly like a neutralized slot, so before
// tailBlock.pending a TrySeal in that window discarded the in-flight record
// and nil'd the insert block under the writer (nil-pointer panic in Insert,
// or a committed row that silently vanished). Every committed insert must
// remain readable afterwards.
func TestInsertSealRaceKeepsRecords(t *testing.T) {
	cfg := testConfig()
	cfg.RangeSize = 64
	for round := 0; round < 30; round++ {
		s := newTestStore(t, cfg)
		const total = 192 // 3 ranges worth, inserted by racing writers
		var committed [total]atomic.Bool
		var writers, sealer sync.WaitGroup
		stopSeal := make(chan struct{})
		sealer.Add(1)
		go func() { // sealer: hammer TrySeal on every range
			defer sealer.Done()
			for {
				select {
				case <-stopSeal:
					return
				default:
				}
				for ri := 0; ri < s.rangeCount(); ri++ {
					s.TrySeal(s.rangeAt(ri))
				}
			}
		}()
		for w := 0; w < 4; w++ {
			writers.Add(1)
			go func(w int) {
				defer writers.Done()
				for k := w; k < total; k += 4 {
					tx := s.tm.Begin(txn.ReadCommitted)
					err := s.Insert(tx, []types.Value{
						types.IntValue(int64(k)), types.IntValue(int64(k)),
						types.IntValue(0), types.IntValue(0),
					})
					if err != nil {
						s.tm.Abort(tx)
						continue
					}
					if s.tm.Commit(tx) == nil {
						committed[k].Store(true)
					}
				}
			}(w)
		}
		writers.Wait()
		close(stopSeal)
		sealer.Wait()
		for k := 0; k < total; k++ {
			if !committed[k].Load() {
				continue
			}
			if _, ok := getRow(t, s, int64(k)); !ok {
				t.Fatalf("round %d: committed insert %d vanished", round, k)
			}
		}
		s.Close()
	}
}
