package core

import (
	"lstore/internal/bufpool"
	"lstore/internal/page"
	"lstore/internal/txn"
	"lstore/internal/types"
)

// This file implements §4: the contention-free, relaxed merge.
//
// Writers enqueue ranges whose unmerged committed tail backlog crossed the
// MergeBatch threshold; the merge worker drains the queue in the background
// (Figure 5). A merge:
//
//  1. identifies a consecutive prefix of committed tail records,
//  2. loads the outdated base pages (only of updated columns),
//  3. consolidates them by applying the newest value per (record, column)
//     in a reverse scan (Algorithm 1), skipping pre-image snapshot records
//     and aborted tombstones,
//  4. swaps the per-column version pointers (the only foreground action),
//  5. retires the outdated pages through the epoch manager.
//
// The Indirection column is never read or written by the merge; writers keep
// appending and readers keep reading throughout. TPS — the RID of the last
// consolidated tail record — is stamped into every new column version.
// Columns may merge independently (§4.2): each column keeps its own merge
// cursor, and re-applying an already-consolidated record is idempotent, so
// full merges and per-column merges compose freely.

// maybeEnqueueMerge queues r for background merging when its backlog is due.
func (s *Store) maybeEnqueueMerge(r *updateRange) {
	if !s.cfg.AutoMerge || s.closed.Load() {
		return
	}
	needsSeal := !r.sealed.Load() && r.insertFull()
	if r.pendingTail() < int64(s.cfg.MergeBatch) && !needsSeal {
		return
	}
	if r.inQueue.CompareAndSwap(false, true) {
		select {
		case s.mergeQ <- r:
		default:
			r.inQueue.Store(false) // queue full; a later writer re-enqueues
		}
	}
}

// pendingTail estimates unconsumed tail records (appended minus the least
// advanced column cursor; an un-merged column keeps the backlog visible).
// Lock-free: reads the atomic mirror of the min cursor, so writers and stats
// pollers never block behind an in-flight merge.
func (r *updateRange) pendingTail() int64 {
	return r.appended.Load() - r.consumedMin.Load()
}

// insertFull reports whether the insert range has handed out every base RID.
func (r *updateRange) insertFull() bool {
	ib := r.insertBlock.Load()
	return ib == nil || ib.rids.Used() >= r.n
}

// mergeWorker is one thread of the merge-scheduler pool (§6.1 runs exactly
// one; Config.MergeWorkers sizes the pool). Workers pop distinct ranges off
// the shared queue, so ranges merge concurrently while each range's merges
// serialize on its lineage lock.
func (s *Store) mergeWorker() {
	defer s.mergeWG.Done()
	for r := range s.mergeQ {
		r.inQueue.Store(false)
		if !r.sealed.Load() {
			s.TrySeal(r)
		}
		if r.sealed.Load() {
			if s.cfg.MergeColumnsIndependently {
				for c := 0; c < s.schema.NumCols(); c++ {
					s.mergeRange(r, c)
				}
			} else {
				s.mergeRange(r, -1)
			}
		}
		s.em.TryReclaim()
		// Forget finished transactions whose Start Time slots have all been
		// lazily swapped (§5.1.1's transaction-manager hashtable hygiene).
		s.tm.Sweep()
	}
}

func allColsMask(n int) uint64 { return 1<<uint(n) - 1 }

// ---------------------------------------------------------------------------
// Sealing an insert range (§3.2 "merging table-level tail-pages")

// TrySeal converts a full insert range's table-level tail pages into
// compressed read-only base pages (TPS 0). It requires every inserted record
// resolved (committed or aborted); otherwise it reports false and the range
// is re-enqueued by a later writer. Sealing moves the range "outside the
// insert range", making it eligible for regular merges.
func (s *Store) TrySeal(r *updateRange) bool {
	r.mergeMu.Lock()
	defer r.mergeMu.Unlock()
	if r.sealed.Load() {
		return true
	}
	ib := r.insertBlock.Load()
	if ib == nil {
		return false
	}
	if ib.rids.Used() < r.n {
		return false // auto-seal only full ranges; ForceSeal handles tails
	}
	return s.sealLocked(r, ib)
}

// ForceSeal seals a partially filled insert range (tests, shutdown flushes).
// Unfilled slots remain permanently invisible.
func (s *Store) ForceSeal(r *updateRange) bool {
	r.mergeMu.Lock()
	defer r.mergeMu.Unlock()
	if r.sealed.Load() {
		return true
	}
	ib := r.insertBlock.Load()
	if ib == nil {
		return false
	}
	return s.sealLocked(r, ib)
}

func (s *Store) sealLocked(r *updateRange, ib *tailBlock) bool {
	// Quiesce reservations before reading anything: a reserved slot whose
	// Start Time is still ∅ is indistinguishable from a neutralized one, so
	// sealing past an in-flight insert would silently discard the record.
	// Inserters announce through pending BEFORE checking sealing and taking
	// a slot, so once sealing is set and pending reads 0, no further take
	// can succeed and the Used() snapshot below is final. On deferral the
	// inserter re-enqueues the range when it finishes (or rolls over).
	ib.sealing.Store(true)
	if ib.pending.Load() != 0 {
		ib.sealing.Store(false)
		return false
	}
	used := ib.rids.Used()
	n := r.n
	a := getMergeArena()
	defer putMergeArena(a)
	// Every published record must be resolved; pending writers or
	// unresolved transactions defer the seal.
	starts := a.u64(&a.starts, n)
	for i := 0; i < used; i++ {
		raw := ib.startTime.Load(i)
		if raw == types.NullSlot {
			starts[i] = types.NullSlot // aborted or neutralized slot
			continue
		}
		ts, st := s.tm.Resolve(raw)
		switch st {
		case txn.StatusCommitted:
			starts[i] = ts
			if types.IsTxnID(raw) {
				if t, ok := s.tm.Lookup(raw); ok && ib.startTime.CompareAndSwap(i, raw, ts) {
					t.NoteSwapped()
				}
			}
		case txn.StatusAborted:
			starts[i] = types.NullSlot
		default:
			return false // still in flight
		}
	}
	for i := used; i < n; i++ {
		starts[i] = types.NullSlot
	}

	ncols := s.schema.NumCols()
	if s.cfg.Layout == RowLayout {
		slab := make([]uint64, n*ncols)
		for c := 0; c < ncols; c++ {
			p := ib.dataPage(c, false)
			for i := 0; i < n; i++ {
				v := types.NullSlot
				if p != nil && i < used && starts[i] != types.NullSlot {
					v = p.Load(i)
				}
				slab[i*ncols+c] = v
			}
		}
		for c := 0; c < ncols; c++ {
			// Row slabs never spill (point-read locality is their purpose).
			r.cols[c].Store(&colVersion{tps: 0, data: bufpool.NewResident(rowView{data: slab, ncols: ncols, col: c, n: n})})
		}
	} else {
		vals := a.u64(&a.vals, n) // one arena buffer, refilled per column
		for c := 0; c < ncols; c++ {
			p := ib.dataPage(c, false)
			for i := 0; i < n; i++ {
				if p != nil && i < used && starts[i] != types.NullSlot {
					vals[i] = p.Load(i)
				} else {
					vals[i] = types.NullSlot
				}
			}
			r.cols[c].Store(&colVersion{tps: 0, data: s.publishPage(r, c, s.encodePage(vals))})
		}
	}

	nulls := a.u64(&a.meta1, n)
	zeros := a.u64(&a.meta2, n)
	for i := range nulls {
		nulls[i] = types.NullSlot
		zeros[i] = 0
	}
	r.meta.Store(&metaVersion{
		tps:         0,
		startTime:   s.publishPage(r, ncols+spillSlotStart, s.encodePage(starts)),
		lastUpdated: s.publishPage(r, ncols+spillSlotLastUpdated, s.encodePage(nulls)),
		schemaEnc:   s.publishPage(r, ncols+spillSlotSchemaEnc, s.encodePage(zeros)),
	})
	r.sealed.Store(true)

	// Step 5 for table-level tail pages: unlike regular tail pages they are
	// discarded permanently once pre-seal readers drain (§4.1).
	r.insertBlock.Store(nil)
	s.em.Retire(func() { s.stats.PagesReclaimed.Add(1) })
	s.stats.Seals.Add(1)
	return true
}

// rowView adapts a row-major slab to the per-column page.Reader interface;
// it is the L-Store (Row) layout of Tables 8 and 9. Point reads touch one
// cache line per record; scans stride by the schema width.
type rowView struct {
	data  []uint64
	ncols int
	col   int
	n     int
}

func (v rowView) Get(i int) uint64 { return v.data[i*v.ncols+v.col] }
func (v rowView) Len() int         { return v.n }
func (v rowView) Kind() page.Kind  { return page.KindRaw }
func (v rowView) MemWords() int    { return v.n }

// asRowView unwraps the row slab behind a version handle. Row slabs never
// spill (Config.validate rejects Spill with RowLayout), so the handle is
// always resident and the pin is free.
func asRowView(h *bufpool.Handle) (rowView, bool) {
	pg := h.MustPin()
	v, ok := pg.(rowView)
	h.Unpin()
	return v, ok
}

// ---------------------------------------------------------------------------
// The relaxed merge (§4.1)

// mergedTail is one resolved tail record staged for consolidation.
type mergedTail struct {
	rid     types.RID
	enc     uint64
	ts      types.Timestamp
	aborted bool
	block   *tailBlock
	slotIdx int
}

// collectPrefixLocked appends up to limit resolved tail records starting at
// flat position from to out: records are included while their transactions
// are committed or aborted; the first in-flight (or unpublished) record stops
// the scan — "a set of consecutive fully committed tail records" (§4.1).
func (s *Store) collectPrefixLocked(r *updateRange, from int64, limit int, out []mergedTail) []mergedTail {
	blocksPtr := r.tailBlocks.Load()
	blocks := *blocksPtr
	tbs := int64(s.cfg.TailBlockSize)
	for pos := from; pos < from+int64(limit); pos++ {
		bi := pos / tbs
		if bi >= int64(len(blocks)) || blocks[bi] == nil {
			break
		}
		b := blocks[bi]
		sl := int(pos % tbs)
		if b.indirection.Load(sl) == types.NullSlot {
			break // reserved but unpublished
		}
		raw := b.startTime.Load(sl)
		_, ts, st := s.resolveSlot(raw, func() uint64 { return b.startTime.Load(sl) })
		switch st {
		case txn.StatusCommitted:
			out = append(out, mergedTail{
				rid: b.rids.First + types.RID(sl), enc: b.schemaEnc.Load(sl),
				ts: ts, block: b, slotIdx: sl,
			})
		case txn.StatusAborted:
			out = append(out, mergedTail{
				rid: b.rids.First + types.RID(sl), enc: b.schemaEnc.Load(sl),
				aborted: true, block: b, slotIdx: sl,
			})
		default:
			return out
		}
	}
	return out
}

// mergeRange consolidates the committed tail prefix into new base versions.
// col == -1 merges every column together (and refreshes the merge-maintained
// meta-columns); col >= 0 merges that column independently with its own
// lineage record (§4.2). Returns the number of tail records consumed.
//
// Full merges scan from the least-advanced cursor, but each column's
// EFFECTIVE start is its own cursor: prefix records below it were already
// consolidated into that column's base version (by an earlier independent
// column merge), and re-applying them would clobber newer merged values.
// Published TPS is max(old, new), so full and per-column merges compose in
// any order without regressing any column's lineage.
func (s *Store) mergeRange(r *updateRange, col int) int {
	r.mergeMu.Lock()
	defer r.mergeMu.Unlock()
	if !r.sealed.Load() {
		return 0 // base records must be outside the insert range (§3.2)
	}
	ncols := s.schema.NumCols()
	var from int64
	if col >= 0 {
		from = r.lineage.cursor(col)
	} else {
		from = r.lineage.minCursor()
	}
	a := getMergeArena()
	defer putMergeArena(a)
	a.prefix = s.collectPrefixLocked(r, from, 4*s.cfg.MergeBatch, a.prefix[:0])
	prefix := a.prefix
	if len(prefix) == 0 {
		return 0
	}
	newTPS := prefix[len(prefix)-1].rid
	end := from + int64(len(prefix))

	var targets uint64
	if col >= 0 {
		targets = 1 << uint(col)
	} else {
		targets = allColsMask(ncols)
	}

	// Steps 2–3: copy the outdated pages of target columns and apply the
	// newest resolved value per (record, column), scanning in reverse.
	// Column-layout decode buffers come from the arena; the row slab cannot
	// (it is published inside the new rowView versions).
	var rowSlab []uint64
	a.colScratch(ncols)
	if s.cfg.Layout == RowLayout {
		// Independent column merges can leave columns pointing at diverged
		// slabs; a full merge must then rebuild from each column's OWN
		// version so no column's consolidated state is lost. In the common
		// case every column still shares one slab — copy it wholesale.
		first, _ := asRowView(r.colVer(0).data)
		shared := true
		for c := 1; c < ncols && shared; c++ {
			v, ok := asRowView(r.colVer(c).data)
			shared = ok && &v.data[0] == &first.data[0]
		}
		switch {
		case shared:
			rowSlab = make([]uint64, len(first.data))
			copy(rowSlab, first.data)
		case col >= 0:
			// A per-column merge publishes a view of one column; only that
			// stride of the new slab is ever read.
			rowSlab = make([]uint64, r.n*ncols)
			src := r.colVer(col).data
			for i := 0; i < r.n; i++ {
				rowSlab[i*ncols+col] = src.Get(i)
			}
		default:
			rowSlab = make([]uint64, r.n*ncols)
			for c := 0; c < ncols; c++ {
				src := r.colVer(c).data
				for i := 0; i < r.n; i++ {
					rowSlab[i*ncols+c] = src.Get(i)
				}
			}
		}
	}
	colVals := func(c int) []uint64 {
		if !a.workUsed[c] {
			a.work[c] = decodeInto(a.work[c][:0], r.colVer(c).data)
			a.workUsed[c] = true
		}
		return a.work[c]
	}
	set := func(c, slot int, v uint64) {
		if rowSlab != nil {
			rowSlab[slot*ncols+c] = v
		} else {
			colVals(c)[slot] = v
		}
	}

	applied := make(map[int]uint64)            // slot -> column bits applied
	appliedTS := make(map[int]types.Timestamp) // slot -> newest applied commit time
	deleted := make(map[int]bool)
	for i := len(prefix) - 1; i >= 0; i-- {
		m := &prefix[i]
		pos := from + int64(i) // flat tail position of this record
		if m.aborted || m.enc&types.SchemaSnapshotFlag != 0 {
			continue // tombstones and pre-images carry no new state
		}
		slot := int(types.RID(m.block.baseRID.Load(m.slotIdx)) - r.firstRID)
		if slot < 0 || slot >= r.n {
			continue
		}
		if _, seen := appliedTS[slot]; !seen {
			appliedTS[slot] = m.ts
		}
		if m.enc&types.SchemaDeleteFlag != 0 {
			if applied[slot] == 0 && !deleted[slot] {
				deleted[slot] = true
				for c := 0; c < ncols; c++ {
					if targets&(1<<uint(c)) != 0 {
						set(c, slot, types.NullSlot)
					}
				}
				applied[slot] = allColsMask(ncols)
			}
			continue
		}
		newBits := m.enc & targets &^ applied[slot]
		for c := 0; c < ncols && newBits != 0; c++ {
			bit := uint64(1) << uint(c)
			if newBits&bit == 0 {
				continue
			}
			newBits &^= bit
			applied[slot] |= bit
			if pos < r.lineage.cursor(c) {
				// Column c's effective start: its base version already
				// reflects this record (and everything newer below its
				// cursor); re-applying would overwrite newer merged state.
				continue
			}
			rec := tailRecord{enc: m.enc, block: m.block, slotIdx: m.slotIdx}
			if v, ok := rec.value(c); ok {
				set(c, slot, v)
			}
		}
	}

	// Step 4: compress and swap the page-directory pointers. Each target
	// column publishes max(old, new): a column untouched by the consumed
	// prefix still gets the lineage bump (none of those records changed it),
	// while a column whose independent merge ran ahead keeps its TPS — and
	// skips the swap entirely when the prefix is wholly behind its cursor.
	for c := 0; c < ncols; c++ {
		if targets&(1<<uint(c)) == 0 {
			continue
		}
		old := r.colVer(c)
		stamped := r.lineage.advance(c, end, newTPS)
		switch {
		case rowSlab != nil:
			r.cols[c].Store(&colVersion{tps: stamped, data: bufpool.NewResident(rowView{data: rowSlab, ncols: ncols, col: c, n: r.n})})
		default:
			if a.workUsed[c] {
				r.cols[c].Store(&colVersion{tps: stamped, data: s.publishPage(r, c, s.encodePage(a.work[c]))})
			} else {
				if stamped == old.tps {
					continue // already consolidated past this prefix
				}
				// Lineage-only bump: the new version reuses old.data, so the
				// handle stays live and must not be released below.
				r.cols[c].Store(&colVersion{tps: stamped, data: old.data})
				s.retireVersion(old)
				continue
			}
		}
		old.data.Release() // epoch readers keep their pins; spill keeps the bytes
		s.retireVersion(old)
	}

	// Merged deletes become visible to the point-read fast path.
	for slot := range deleted {
		r.setMergedDeleted(slot)
	}

	// Meta-columns: full merges refresh Last Updated Time and the base
	// Schema Encoding (§2.2: "populated after the merge"); the original
	// Start Time column is preserved.
	if col < 0 {
		if mv := r.meta.Load(); mv != nil {
			last := decodeInto(a.meta1[:0], mv.lastUpdated)
			encs := decodeInto(a.meta2[:0], mv.schemaEnc)
			a.meta1, a.meta2 = last, encs
			for slot, ts := range appliedTS {
				if last[slot] == types.NullSlot || last[slot] < ts {
					last[slot] = ts
				}
			}
			for slot, bits := range applied {
				if deleted[slot] {
					encs[slot] |= types.SchemaDeleteFlag
				}
				encs[slot] |= bits &^ types.SchemaDeleteFlag
			}
			r.meta.Store(&metaVersion{
				tps:         r.lineage.advanceMeta(end, newTPS),
				startTime:   mv.startTime, // preserved across merges: handle reused
				lastUpdated: s.publishPage(r, ncols+spillSlotLastUpdated, s.encodePage(last)),
				schemaEnc:   s.publishPage(r, ncols+spillSlotSchemaEnc, s.encodePage(encs)),
			})
			mv.lastUpdated.Release()
			mv.schemaEnc.Release()
		}
	}

	r.consumedMin.Store(r.lineage.minCursor())
	s.stats.Merges.Add(1)
	s.stats.MergedTailRecords.Add(uint64(len(prefix)))
	return len(prefix)
}

// retireVersion hands an outdated base version to the epoch manager
// (Figure 6, §4.1 step 5). The callback is bookkeeping: Go's GC performs the
// actual free once the last pinned reader drops its reference, which the
// epoch protocol guarantees has happened.
func (s *Store) retireVersion(old *colVersion) {
	if old == nil {
		return
	}
	s.stats.PagesRetired.Add(1)
	s.em.Retire(func() { s.stats.PagesReclaimed.Add(1) })
}

// ForceMerge runs full merges synchronously until every backlog is drained
// (deterministic tests and benchmarks). It returns total records consumed.
func (s *Store) ForceMerge() int {
	total := 0
	for i := 0; i < s.rangeCount(); i++ {
		r := s.rangeAt(i)
		if !r.sealed.Load() && r.insertFull() {
			s.TrySeal(r)
		}
		if !r.sealed.Load() {
			continue
		}
		for {
			n := s.mergeRange(r, -1)
			total += n
			if n == 0 {
				break
			}
		}
	}
	s.em.TryReclaim()
	return total
}

// MergeColumn merges only the given column for range ri (the independent
// per-column lineage of §4.2). Returns records consumed.
func (s *Store) MergeColumn(ri, col int) int {
	r := s.rangeAt(ri)
	if !r.sealed.Load() && !s.TrySeal(r) {
		return 0
	}
	return s.mergeRange(r, col)
}

// SealRange force-seals range ri (tests).
func (s *Store) SealRange(ri int) bool { return s.ForceSeal(s.rangeAt(ri)) }

// CheckTPSConsistency reports whether all columns of range ri share one TPS
// (Lemma 3's detectability check: a reader assembling a multi-column base
// snapshot verifies this before trusting base pages wholesale; on mismatch
// it reconstructs per column from tail records, Theorem 2 — which is exactly
// what readCols does by consulting each column's own TPS).
func (s *Store) CheckTPSConsistency(ri int) (types.RID, bool) {
	r := s.rangeAt(ri)
	var tps types.RID
	for c := 0; c < s.schema.NumCols(); c++ {
		cv := r.colVer(c)
		if cv == nil {
			return 0, true // unsealed: trivially consistent (all TPS 0)
		}
		if c == 0 {
			tps = cv.tps
			continue
		}
		if cv.tps != tps {
			return tps, false
		}
	}
	return tps, true
}

// RangeTPS returns column col's TPS for range ri (introspection).
func (s *Store) RangeTPS(ri, col int) types.RID {
	if cv := s.rangeAt(ri).colVer(col); cv != nil {
		return cv.tps
	}
	return 0
}
