package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"lstore/internal/bufpool"
	"lstore/internal/epoch"
	"lstore/internal/index"
	"lstore/internal/pagedir"
	"lstore/internal/rid"
	"lstore/internal/txn"
	"lstore/internal/types"
)

// Store is one L-Store table: the lineage-based storage engine plus its
// indexes. All methods are safe for concurrent use.
type Store struct {
	cfg    Config
	schema types.Schema
	tm     *txn.Manager
	em     *epoch.Manager

	baseAlloc *rid.BaseAllocator
	tailAlloc *rid.TailAllocator

	// tailDir is the page directory for update-tail blocks, keyed by
	// (firstRID - TailRIDBase) / TailBlockSize.
	tailDir *pagedir.Directory[*tailBlock]

	// Beyond-RAM base storage (nil without Config.Spill): pool is the
	// pinnable buffer pool over the spill sink, and spillDir is the page
	// directory of spilled base pages — entries hold descriptors (offset +
	// length + CRC) rather than live pages, keyed by spillKey; the merge's
	// publish swaps descriptors exactly like its version-pointer swap.
	pool     *bufpool.Pool
	spillDir *pagedir.Directory[SpillDesc]

	rangesMu  sync.RWMutex
	ranges    []*updateRange // guarded by rangesMu
	curInsert atomic.Pointer[updateRange]
	insertMu  sync.Mutex // serializes insert-range rollover

	primary   *index.Primary
	secondary map[int]*index.Secondary
	dicts     []*stringDict

	mergeQ  chan *updateRange
	mergeWG sync.WaitGroup
	closed  atomic.Bool

	stats Stats
}

// NewStore creates a table with the given schema over shared transaction and
// epoch managers (a database holds one of each across its tables).
func NewStore(schema types.Schema, cfg Config, tm *txn.Manager, em *epoch.Manager) (*Store, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.RangeSize%cfg.TailBlockSize != 0 {
		return nil, fmt.Errorf("core: TailBlockSize %d must divide RangeSize %d", cfg.TailBlockSize, cfg.RangeSize)
	}
	if tm == nil {
		tm = txn.NewManager()
	}
	if em == nil {
		em = epoch.NewManager()
	}
	s := &Store{
		cfg:       cfg,
		schema:    schema,
		tm:        tm,
		em:        em,
		baseAlloc: rid.NewBaseAllocator(),
		tailAlloc: rid.NewTailAllocator(),
		tailDir:   pagedir.New[*tailBlock](),
		primary:   index.NewPrimary(),
		secondary: make(map[int]*index.Secondary),
		dicts:     make([]*stringDict, schema.NumCols()),
		mergeQ:    make(chan *updateRange, 1024),
	}
	if cfg.Spill != nil {
		s.pool = bufpool.New(cfg.Spill, cfg.PoolBytes)
		s.spillDir = pagedir.New[SpillDesc]()
	}
	for _, c := range cfg.SecondaryIndexColumns {
		if c < 0 || c >= schema.NumCols() {
			return nil, fmt.Errorf("core: secondary index column %d out of range", c)
		}
		s.secondary[c] = index.NewSecondary()
	}
	for i, c := range schema.Cols {
		if c.Type == types.String {
			s.dicts[i] = newStringDict()
		}
	}
	if _, err := s.addInsertRange(); err != nil {
		return nil, err
	}
	if cfg.AutoMerge {
		for i := 0; i < cfg.MergeWorkers; i++ {
			s.mergeWG.Add(1)
			go s.mergeWorker()
		}
	}
	return s, nil
}

// Close stops the background merge worker. The store remains readable.
func (s *Store) Close() {
	if s.closed.CompareAndSwap(false, true) {
		close(s.mergeQ)
		s.mergeWG.Wait()
	}
}

// TxnManager exposes the shared transaction manager.
func (s *Store) TxnManager() *txn.Manager { return s.tm }

// EpochManager exposes the shared epoch manager.
func (s *Store) EpochManager() *epoch.Manager { return s.em }

// Schema returns the table schema.
func (s *Store) Schema() types.Schema { return s.schema }

// Config returns the effective configuration.
func (s *Store) Config() Config { return s.cfg }

func (s *Store) addInsertRange() (*updateRange, error) {
	first, err := s.baseAlloc.ReserveSpan(s.cfg.RangeSize)
	if err != nil {
		return nil, err
	}
	s.rangesMu.Lock()
	idx := len(s.ranges)
	r, err := newUpdateRange(s, idx, first, s.cfg.RangeSize)
	if err != nil {
		s.rangesMu.Unlock()
		return nil, err
	}
	s.ranges = append(s.ranges, r)
	s.rangesMu.Unlock()
	s.curInsert.Store(r)
	return r, nil
}

// rangeCount returns how many ranges exist.
func (s *Store) rangeCount() int {
	s.rangesMu.RLock()
	defer s.rangesMu.RUnlock()
	return len(s.ranges)
}

func (s *Store) rangeAt(i int) *updateRange {
	s.rangesMu.RLock()
	defer s.rangesMu.RUnlock()
	return s.ranges[i]
}

// ---------------------------------------------------------------------------
// Insert (§3.2)

// Insert adds a new record with one value per schema column. The key column
// must be non-null and unique among live records.
func (s *Store) Insert(t *txn.Txn, vals []types.Value) error {
	if len(vals) != s.schema.NumCols() {
		return fmt.Errorf("core: insert arity %d, schema has %d columns", len(vals), s.schema.NumCols())
	}
	if vals[s.schema.Key].IsNull() {
		return fmt.Errorf("core: null primary key")
	}
	slots := make([]uint64, len(vals))
	for i, v := range vals {
		sv, err := s.encodeValue(i, v)
		if err != nil {
			return fmt.Errorf("core: column %q: %w", s.schema.Cols[i].Name, err)
		}
		slots[i] = sv
	}
	keySlot := slots[s.schema.Key]

	// Reserve a base RID (and its aligned table-level tail slot).
	r, ib, slot, err := s.takeInsertSlot()
	if err != nil {
		return err
	}
	baseRID := r.firstRID + types.RID(slot)

	// Uniqueness (indexes reference base RIDs only, §3.1).
	if winner, installed := s.primary.PutIfAbsent(keySlot, baseRID); !installed {
		if err := s.resolveKeyConflict(t, keySlot, winner, baseRID); err != nil {
			// Neutralize the reserved slot: it stays invisible forever.
			ib.startTime.Store(slot, types.NullSlot)
			ib.pending.Add(-1)
			// A deferred seal may be waiting on this reservation.
			s.maybeEnqueueMerge(r)
			return err
		}
	}

	// Write the record into the table-level tail pages; Start Time publishes
	// it (readers treat the initial ∅ as absent).
	for c, sv := range slots {
		ib.dataPage(c, true).Store(slot, sv)
	}
	ib.baseRID.Store(slot, uint64(baseRID))
	ib.schemaEnc.Store(slot, 0)
	ib.indirection.Store(slot, uint64(baseRID))
	t.NoteWrite()
	ib.startTime.Store(slot, t.ID)
	ib.pending.Add(-1)
	// The base record's Indirection column starts at ⊥ (zero value already).

	for c, sec := range s.secondary {
		if slots[c] != types.NullSlot {
			sec.Add(slots[c], baseRID)
		}
	}
	s.stats.Inserts.Add(1)
	if ib.rids.Used() >= r.n {
		s.maybeEnqueueMerge(r)
	}
	return nil
}

// takeInsertSlot reserves the next base slot, rolling over to a fresh
// insert range when the current one is full. The reservation is announced
// through ib.pending BEFORE the take, so a sealer that observes the block
// full also observes the reservation and defers; all writes after a take go
// to the block the slot was taken from (the range's insertBlock pointer may
// be nil'd by a later seal). The caller must decrement ib.pending after
// publishing (or neutralizing) the slot.
func (s *Store) takeInsertSlot() (*updateRange, *tailBlock, int, error) {
	for {
		r := s.curInsert.Load()
		ib := r.insertBlock.Load()
		if ib != nil {
			ib.pending.Add(1)
			if ib.sealing.Load() {
				ib.pending.Add(-1) // a partial-block seal is quiescing takes
			} else if _, slot, ok := ib.take(); ok {
				return r, ib, slot, nil
			} else {
				ib.pending.Add(-1)
			}
		}
		// Range full (or being force-sealed): roll over to a fresh insert
		// range (§3.2: "if insert range is full, then a new insert range is
		// created").
		s.insertMu.Lock()
		if s.curInsert.Load() == r {
			if _, err := s.addInsertRange(); err != nil {
				s.insertMu.Unlock()
				return nil, nil, 0, err
			}
		}
		s.insertMu.Unlock()
		// Re-kick unconditionally: a seal of r may have deferred on this
		// goroutine's transient reservation, and the deferring worker will
		// not retry on its own.
		s.maybeEnqueueMerge(r)
	}
}

// resolveKeyConflict handles an insert that lost the PutIfAbsent race: if
// the incumbent record is live the insert is a duplicate; if it is
// conclusively dead (aborted insert or committed delete) the key is reusable
// and the index entry is swapped to the new base RID. The incumbent's
// transaction state is sampled BEFORE the existence check: states only move
// forward (active → pre-commit → committed/aborted), so an incumbent that
// commits mid-check is classified as a conflict, never as reusable.
func (s *Store) resolveKeyConflict(t *txn.Txn, keySlot uint64, winner, mine types.RID) error {
	loc, ok := s.locate(winner)
	if !ok {
		return ErrDuplicateKey
	}
	raw := loc.rng.baseStartSlot(loc.slot)
	if raw == types.NullSlot && !loc.rng.sealed.Load() {
		// The winner reserved the slot but has not published its record yet.
		return txn.ErrConflict
	}
	if raw == t.ID {
		return ErrDuplicateKey // own earlier insert in this transaction
	}
	_, _, st := s.resolveSlot(raw, func() uint64 { return loc.rng.baseStartSlot(loc.slot) })
	switch st {
	case txn.StatusUncommitted, txn.StatusPreCommitted:
		return txn.ErrConflict
	case txn.StatusAborted:
		// Insert never happened; the key is free.
	case txn.StatusCommitted:
		// Born for sure — reusable only if a committed delete killed it.
		if _, exists := loc.rng.decidingVersion(latestView(t), loc.slot); exists {
			return ErrDuplicateKey
		}
	}
	if !s.primary.Replace(keySlot, winner, mine) {
		return txn.ErrConflict // raced another re-inserter
	}
	return nil
}

// ---------------------------------------------------------------------------
// Update and Delete (§3.1)

// Update modifies the given columns of the record with key. Column indexes
// must not include the key column (key updates are delete+insert).
func (s *Store) Update(t *txn.Txn, key int64, cols []int, vals []types.Value) error {
	if len(cols) != len(vals) || len(cols) == 0 {
		return fmt.Errorf("core: update arity mismatch")
	}
	slots := make([]uint64, len(cols))
	for i, c := range cols {
		if c == s.schema.Key {
			return fmt.Errorf("core: cannot update key column")
		}
		if c < 0 || c >= s.schema.NumCols() {
			return fmt.Errorf("core: column %d out of range", c)
		}
		sv, err := s.encodeValue(c, vals[i])
		if err != nil {
			return err
		}
		slots[i] = sv
	}
	loc, err := s.lookupKey(key)
	if err != nil {
		return err
	}
	return s.writeVersion(t, loc, cols, slots, false)
}

// Delete removes the record with key (an update that implicitly sets every
// data column to ∅, §3.1).
func (s *Store) Delete(t *txn.Txn, key int64) error {
	loc, err := s.lookupKey(key)
	if err != nil {
		return err
	}
	return s.writeVersion(t, loc, nil, nil, true)
}

func (s *Store) lookupKey(key int64) (ridLocation, error) {
	rid, ok := s.primary.Get(types.EncodeInt64(key))
	if !ok {
		return ridLocation{}, ErrNotFound
	}
	loc, ok := s.locate(rid)
	if !ok {
		return ridLocation{}, ErrNotFound
	}
	return loc, nil
}

// writeVersion implements the paper's update procedure: latch the
// Indirection word by CAS, detect write-write conflicts via the latest
// version's Start Time, append the pre-image snapshot record on first update
// of a column, append the new version (cumulative if configured), and
// publish by storing the new tail RID into the Indirection column.
func (s *Store) writeVersion(t *txn.Txn, loc ridLocation, cols []int, slots []uint64, isDelete bool) error {
	r, slot := loc.rng, loc.slot
	word := &r.indirection[slot]

	// Step 1: latch bit via CAS; failure is a write-write conflict (§5.1.1).
	old := atomic.LoadUint64(word)
	if old&types.IndirectionLatchBit != 0 || !atomic.CompareAndSwapUint64(word, old, old|types.IndirectionLatchBit) {
		s.stats.WWConflicts.Add(1)
		return txn.ErrConflict
	}
	release := func() { atomic.StoreUint64(word, old) }
	ind := types.RID(old & types.IndirectionRIDMask)

	// Step 2: the latest version must not belong to a live competing txn.
	var curStart uint64
	if ind == 0 {
		curStart = r.baseStartSlot(slot)
	} else if rec, ok := s.loadTailRecord(ind); ok {
		curStart = rec.startSlot
	} else {
		curStart = types.NullSlot
	}
	if curStart != t.ID {
		if _, _, st := s.resolveSlot(curStart, nil); st == txn.StatusUncommitted || st == txn.StatusPreCommitted {
			release()
			s.stats.WWConflicts.Add(1)
			return txn.ErrConflict
		}
	}

	// The record must exist (visible latest committed or own version).
	view := latestView(t)
	if _, exists := r.decidingVersion(view, slot); !exists {
		release()
		return ErrNotFound
	}

	baseRID := r.firstRID + types.RID(slot)
	prev := ind
	if prev == 0 {
		prev = baseRID
	}

	// Pre-image snapshot records (§3.1 / Lemma 2): the first update of a
	// column captures the original base value so outdated base pages can be
	// discarded safely. Deletes snapshot every not-yet-captured column
	// (footnote 9).
	ever := r.everUpdated[slot].Load()
	var snapBits uint64
	if isDelete {
		for c := 0; c < s.schema.NumCols(); c++ {
			if ever&(1<<uint(c)) == 0 {
				snapBits |= 1 << uint(c)
			}
		}
	} else {
		for _, c := range cols {
			if ever&(1<<uint(c)) == 0 {
				snapBits |= 1 << uint(c)
			}
		}
	}
	if snapBits != 0 {
		snapVals := make(map[int]uint64)
		for c := 0; c < s.schema.NumCols(); c++ {
			if snapBits&(1<<uint(c)) != 0 {
				snapVals[c] = r.baseValue(slot, c)
			}
		}
		// The snapshot's Start Time is the preserved version's start time:
		// the base record's original install time (resolve first so the
		// slot never outlives its transaction entry).
		snapStart := curBaseStart(s, r, slot, t)
		snapRID, err := r.appendTail(s, prev, snapBits|types.SchemaSnapshotFlag, snapStart, baseRID, snapVals, t)
		if err != nil {
			release()
			return err
		}
		prev = snapRID
	}

	// New version record.
	var enc uint64
	newVals := make(map[int]uint64, len(cols))
	if isDelete {
		enc = types.SchemaDeleteFlag
	} else {
		for i, c := range cols {
			enc |= 1 << uint(c)
			newVals[c] = slots[i]
		}
		if s.cfg.CumulativeUpdates && ever != 0 {
			// Carry forward previously updated columns (§3.1) so the latest
			// version stays at most 2 hops away. Carried values come from
			// the latest visible version.
			carry := make([]int, 0, 8)
			for c := 0; c < s.schema.NumCols(); c++ {
				if ever&(1<<uint(c)) != 0 && enc&(1<<uint(c)) == 0 {
					carry = append(carry, c)
				}
			}
			if len(carry) > 0 {
				tmp := make([]uint64, len(carry))
				if res := r.readCols(view, slot, carry, tmp); res.exists {
					for i, c := range carry {
						enc |= 1 << uint(c)
						newVals[c] = tmp[i]
					}
				}
			}
		}
	}
	t.NoteWrite()
	newRID, err := r.appendTail(s, prev, enc, t.ID, baseRID, newVals, t)
	if err != nil {
		release()
		return err
	}

	// Bookkeeping before publication so committed readers observe it.
	if isDelete {
		r.markEverUpdated(slot, 1<<uint(s.schema.NumCols())-1)
	} else {
		var bits uint64
		for _, c := range cols {
			bits |= 1 << uint(c)
		}
		r.markEverUpdated(slot, bits)
	}

	// Step 3: publish — in-place update of the Indirection column, which
	// also releases the latch bit.
	atomic.StoreUint64(word, uint64(newRID))

	// Affected secondary indexes gain the new value, still pointing at the
	// base RID (§3.1); old entries are removed lazily.
	if !isDelete {
		for i, c := range cols {
			if sec, ok := s.secondary[c]; ok && slots[i] != types.NullSlot {
				sec.Add(slots[i], baseRID)
			}
		}
	}

	if isDelete {
		s.stats.Deletes.Add(1)
	} else {
		s.stats.Updates.Add(1)
	}
	s.maybeEnqueueMerge(r)
	return nil
}

// curBaseStart resolves the base record's start time for pre-image records:
// committed inserts yield the commit time; an own-transaction insert keeps
// the transaction ID (it resolves at commit).
func curBaseStart(s *Store, r *updateRange, slot int, t *txn.Txn) uint64 {
	raw := r.baseStartSlot(slot)
	if raw == t.ID {
		t.NoteWrite()
		return raw
	}
	if _, ts, st := s.resolveSlot(raw, func() uint64 { return r.baseStartSlot(slot) }); st == txn.StatusCommitted {
		return ts
	}
	return raw
}

// appendTail reserves the next tail slot for the range and writes one tail
// record. The backward pointer is stored last: it publishes the record.
func (r *updateRange) appendTail(s *Store, back types.RID, enc uint64, start uint64, baseRID types.RID, vals map[int]uint64, t *txn.Txn) (types.RID, error) {
	var b *tailBlock
	var newRID types.RID
	var slot int
	for {
		r.tmu.Lock()
		b = r.cur
		if b == nil {
			nb, err := s.newTailBlockFor(s.schema.NumCols(), false)
			if err != nil {
				r.tmu.Unlock()
				return 0, err
			}
			blocks := append(append([]*tailBlock{}, *r.tailBlocks.Load()...), nb)
			r.tailBlocks.Store(&blocks)
			r.cur = nb
			b = nb
		}
		r.tmu.Unlock()
		var ok bool
		newRID, slot, ok = b.take()
		if ok {
			break
		}
		r.tmu.Lock()
		if r.cur == b {
			r.cur = nil // force rollover
		}
		r.tmu.Unlock()
	}
	for c, v := range vals {
		b.dataPage(c, true).Store(slot, v)
	}
	b.schemaEnc.Store(slot, enc)
	b.startTime.Store(slot, start)
	b.baseRID.Store(slot, uint64(baseRID))
	b.indirection.Store(slot, uint64(back)) // publish
	r.appended.Add(1)
	s.stats.TailRecords.Add(1)
	return newRID, nil
}

// ---------------------------------------------------------------------------
// Point reads

// Get returns the requested columns of the record with key under the
// transaction's isolation level: read-committed sees the latest committed
// (or own) version; snapshot and serializable see the version as of the
// transaction's begin time. Serializable reads register validation checks.
func (s *Store) Get(t *txn.Txn, key int64, cols []int) ([]types.Value, bool, error) {
	return s.get(t, key, cols, false)
}

// GetSpeculative is Get under speculative-read semantics (§5.1.1): it may
// observe pre-committed versions, and always registers a validator.
func (s *Store) GetSpeculative(t *txn.Txn, key int64, cols []int) ([]types.Value, bool, error) {
	return s.get(t, key, cols, true)
}

func (s *Store) get(t *txn.Txn, key int64, cols []int, speculative bool) ([]types.Value, bool, error) {
	loc, err := s.lookupKey(key)
	if err == ErrNotFound {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	var view readView
	switch t.Level {
	case txn.ReadCommitted:
		view = latestView(t)
	default:
		view = asOfView(t.Begin)
		view.selfID = t.ID
	}
	if speculative {
		view = latestView(t)
		view.speculative = true
	}
	g := s.em.Pin()
	defer g.Unpin()
	out := make([]uint64, len(cols))
	res := loc.rng.readCols(view, loc.slot, cols, out)
	s.stats.PointReads.Add(1)
	if !res.exists {
		return nil, false, nil
	}
	// Read validation (§5.1.1): under serializable (or any speculative
	// read), the committed visible version as of the commit time must match
	// what we observed.
	if t.Level == txn.Serializable || speculative {
		r, slot, observed := loc.rng, loc.slot, res.decidingRID
		t.AddValidator(func(ct types.Timestamp) bool {
			cur, exists := r.decidingVersion(asOfView(ct-1), slot)
			return exists && cur == observed
		})
	}
	vals := make([]types.Value, len(cols))
	for i, c := range cols {
		vals[i] = s.decodeValue(c, out[i])
	}
	return vals, true, nil
}

// GetAt is a time-travel point read: the record's state as of ts.
func (s *Store) GetAt(ts types.Timestamp, key int64, cols []int) ([]types.Value, bool, error) {
	loc, err := s.lookupKey(key)
	if err == ErrNotFound {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	g := s.em.Pin()
	defer g.Unpin()
	out := make([]uint64, len(cols))
	res := loc.rng.readCols(asOfView(ts), loc.slot, cols, out)
	if !res.exists {
		return nil, false, nil
	}
	vals := make([]types.Value, len(cols))
	for i, c := range cols {
		vals[i] = s.decodeValue(c, out[i])
	}
	return vals, true, nil
}

// Scans and secondary-index lookups live in scan.go: ScanSum, ScanSumRIDs,
// ScanRange, and LookupSecondary all delegate to the shared columnar scan
// engine (rangeScanner / probeSlot) rather than carrying inline fast paths.

// NumRecords returns the number of base record slots allocated (including
// deleted and aborted ones; introspection).
func (s *Store) NumRecords() int {
	n := 0
	for i := 0; i < s.rangeCount(); i++ {
		n += s.rangeAt(i).rowCount()
	}
	return n
}
