package core

import (
	"lstore/internal/bufpool"
	"lstore/internal/fault"
	"lstore/internal/page"
)

// Beyond-RAM base storage (ROADMAP item 3): with Config.Spill set, every
// sealed or merged base page is appended to the spill sink in its
// page.MarshalEncoded form before it is published, and the published
// colVersion/metaVersion holds a buffer-pool handle instead of the page
// itself. The pool (Config.PoolBytes) decides what stays decoded in memory;
// readers fault pages back in through pin/unpin. Tail pages, unmerged
// chains, and row-layout slabs never spill — the paper's hot-write/
// cold-columnar split.
//
// The spill file is append-only, so a descriptor handed to the page
// directory (or to a checkpoint, see CheckpointSpillRefs) names immutable
// bytes forever; the merge pointer-swap just installs a new descriptor.

// Crash/fault points on the spill write path: a crash between the append
// and the publish must recover cleanly (the WAL still holds the rows), and
// an append failure (ENOSPC) must degrade to memory-resident pages, never
// lose data.
var (
	cpSpillWrite = fault.Register("core.spill-write")
	cpSpillSync  = fault.Register("core.spill-sync")
)

// SpillSink is the append-only page store behind beyond-RAM base storage
// (re-exported so the API layer never imports the sealed bufpool package).
type SpillSink = bufpool.SpillSink

// SpillDesc locates one spilled page frame (offset + length + CRC).
type SpillDesc = bufpool.Desc

// FileSpill is the file-backed SpillSink.
type FileSpill = bufpool.FileSpill

// MemSpill is the in-memory SpillSink used by tests and the torture suite.
type MemSpill = bufpool.MemSpill

// OpenFileSpill opens (creating if absent) a file-backed spill sink.
func OpenFileSpill(path string) (*FileSpill, error) { return bufpool.OpenFileSpill(path) }

// NewMemSpill returns an empty in-memory spill sink.
func NewMemSpill() *MemSpill { return bufpool.NewMemSpill() }

// Meta-column slots in a range's spill-directory key space: data columns use
// their own index, the merge-maintained meta columns follow.
const (
	spillSlotStart = iota // + ncols
	spillSlotLastUpdated
	spillSlotSchemaEnc
)

// spillKey addresses one base page in the spill page directory:
// (range index, column-or-meta slot).
func spillKey(rangeIdx, slot int) uint64 {
	return uint64(rangeIdx)<<32 | uint64(uint32(slot))
}

// publishPage turns a freshly built encoded base page into the handle a
// colVersion/metaVersion publishes. Without a pool the page is simply
// wrapped resident. With one, the page is appended to the spill file, its
// descriptor swapped into the spill page directory (the merge's pointer
// swap), and the page admitted to the pool — it starts resident and ages
// out under the byte budget. A spill-write failure (ENOSPC and friends)
// degrades gracefully: the page stays memory-resident and SpillErrors
// counts the miss; nothing is lost.
//
// pg must be a concrete encoded page (or rowView wrapped by the caller),
// never a handle: MarshalEncoded of a foreign Reader would flatten it.
func (s *Store) publishPage(r *updateRange, slot int, pg page.Reader) *bufpool.Handle {
	if s.pool == nil {
		return bufpool.NewResident(pg)
	}
	cpSpillWrite.Hit() // crash here: page never published, WAL replays the rows
	d, err := s.pool.Spill().Append(page.MarshalEncoded(pg))
	if err != nil {
		s.stats.SpillErrors.Add(1)
		return bufpool.NewResident(pg)
	}
	s.spillDir.Swap(spillKey(r.idx, slot), d)
	return s.pool.Admit(spillKey(r.idx, slot), d, pg)
}

// SyncSpill makes every spilled page durable. Checkpoints that reference
// spilled pages by descriptor call it before writing the references, so a
// descriptor never outlives the bytes it names.
func (s *Store) SyncSpill() error {
	if s.pool == nil {
		return nil
	}
	cpSpillSync.Hit() // crash here: checkpoint round dies, previous one stands
	return s.pool.Spill().Sync()
}

// ReadSpill fetches one spilled frame by descriptor, CRC-verified — the
// checkpoint restore path resolves page references through it.
func (s *Store) ReadSpill(d SpillDesc) ([]byte, error) {
	return s.cfg.Spill.ReadAt(d)
}

// Spilled reports whether the store runs with a spill sink attached.
func (s *Store) Spilled() bool { return s.pool != nil }

// PoolGauges returns the buffer pool's counters (zero values without a pool).
func (s *Store) PoolGauges() bufpool.Gauges {
	if s.pool == nil {
		return bufpool.Gauges{}
	}
	return s.pool.Gauges()
}
