package core

import (
	"testing"

	"lstore/internal/txn"
	"lstore/internal/types"
)

// TestSnapshotConsistencyAcrossLifecycle is the lifecycle property test:
// record a set of (timestamp, expected-value) observations while mutating,
// then re-verify every observation after each storage transition (merge,
// second merge, historic compression, more updates + merge again).
func TestSnapshotConsistencyAcrossLifecycle(t *testing.T) {
	cfg := Config{RangeSize: 64, TailBlockSize: 16, MergeBatch: 8, CumulativeUpdates: true}
	s, err := NewStore(testSchema(), cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	mustCommit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 64; i++ {
			insertRow(t, s, tx, i, i, 0, 0)
		}
	})
	s.TrySeal(s.rangeAt(0))

	type obs struct {
		ts   types.Timestamp
		key  int64
		a    int64
		live bool
	}
	var observations []obs
	snap := func(key int64) {
		ts := s.tm.Now()
		vals, ok, err := s.GetAt(ts, key, []int{1})
		if err != nil {
			t.Fatal(err)
		}
		o := obs{ts: ts, key: key, live: ok}
		if ok {
			o.a = vals[0].Int()
		}
		observations = append(observations, o)
	}
	verify := func(stage string) {
		t.Helper()
		for _, o := range observations {
			vals, ok, err := s.GetAt(o.ts, o.key, []int{1})
			if err != nil {
				t.Fatalf("%s: GetAt(%d,%d): %v", stage, o.ts, o.key, err)
			}
			if ok != o.live {
				t.Fatalf("%s: key %d at %d live=%v, observed %v", stage, o.key, o.ts, ok, o.live)
			}
			if ok && vals[0].Int() != o.a {
				t.Fatalf("%s: key %d at %d = %d, observed %d", stage, o.key, o.ts, vals[0].Int(), o.a)
			}
		}
	}

	// Mutate with observations in between.
	for round := int64(1); round <= 6; round++ {
		mustCommit(t, s, func(tx *txn.Txn) {
			for i := int64(0); i < 16; i++ {
				if err := s.Update(tx, i, []int{1}, []types.Value{types.IntValue(round*100 + i)}); err != nil {
					t.Fatal(err)
				}
			}
		})
		snap(3)
		snap(15)
	}
	mustCommit(t, s, func(tx *txn.Txn) {
		if err := s.Delete(tx, 3); err != nil {
			t.Fatal(err)
		}
	})
	snap(3)
	verify("pre-merge")

	s.ForceMerge()
	verify("post-merge")

	// Compress, then verify, then mutate again and re-verify everything.
	if s.CompressHistory() == 0 {
		t.Fatal("expected compressible history")
	}
	verify("post-compress")

	for round := int64(7); round <= 9; round++ {
		mustCommit(t, s, func(tx *txn.Txn) {
			for i := int64(4); i < 12; i++ {
				if err := s.Update(tx, i, []int{1}, []types.Value{types.IntValue(round*100 + i)}); err != nil {
					t.Fatal(err)
				}
			}
		})
		snap(5)
	}
	s.ForceMerge()
	s.CompressHistory()
	verify("post-second-cycle")
}

// TestMultiPassHistoryCompression verifies repeated compression passes
// accumulate versions without losing earlier ones.
func TestMultiPassHistoryCompression(t *testing.T) {
	cfg := Config{RangeSize: 32, TailBlockSize: 8, MergeBatch: 4, CumulativeUpdates: true}
	s, err := NewStore(testSchema(), cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustCommit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 32; i++ {
			insertRow(t, s, tx, i, 0, 0, 0)
		}
	})
	s.TrySeal(s.rangeAt(0))

	var stamps []types.Timestamp
	for round := int64(1); round <= 4; round++ {
		mustCommit(t, s, func(tx *txn.Txn) {
			for i := int64(0); i < 8; i++ {
				if err := s.Update(tx, 1, []int{1}, []types.Value{types.IntValue(round*10 + i)}); err != nil {
					t.Fatal(err)
				}
			}
		})
		stamps = append(stamps, s.tm.Now())
		s.ForceMerge()
		s.CompressHistory() // one pass per round
	}
	if s.Stats().HistoryPasses < 2 {
		t.Fatalf("history passes = %d, want >= 2", s.Stats().HistoryPasses)
	}
	for round, ts := range stamps {
		vals, ok, err := s.GetAt(ts, 1, []int{1})
		if err != nil || !ok {
			t.Fatalf("round %d: %v %v", round, ok, err)
		}
		want := int64(round+1)*10 + 7
		if vals[0].Int() != want {
			t.Fatalf("round %d value = %d, want %d", round, vals[0].Int(), want)
		}
	}
}

// TestTxnSweepAfterLazySwaps: once readers have lazily swapped every Start
// Time slot of a committed transaction, the manager can forget it.
func TestTxnSweepAfterLazySwaps(t *testing.T) {
	s := newTestStore(t, testConfig())
	mustCommit(t, s, func(tx *txn.Txn) { insertRow(t, s, tx, 1, 1, 1, 1) })
	for i := int64(0); i < 63; i++ {
		mustCommit(t, s, func(tx *txn.Txn) { insertRow(t, s, tx, 100+i, 0, 0, 0) })
	}
	writer := s.tm.Begin(txn.ReadCommitted)
	if err := s.Update(writer, 1, []int{1}, []types.Value{types.IntValue(9)}); err != nil {
		t.Fatal(err)
	}
	if err := s.tm.Commit(writer); err != nil {
		t.Fatal(err)
	}
	// Reads lazily swap the txn id for the commit time.
	getRow(t, s, 1)
	// Seal swaps the insert-range slots of the preload txns.
	if !s.TrySeal(s.rangeAt(0)) {
		t.Fatal("seal failed")
	}
	swept := s.tm.Sweep()
	if swept == 0 {
		t.Fatal("no transactions swept after full lazy swap")
	}
	if _, ok := s.tm.Lookup(writer.ID); ok {
		t.Fatal("drained writer still tracked")
	}
	// Reads still work (slots now hold plain commit times).
	if got, ok := getRow(t, s, 1); !ok || got[0] != 9 {
		t.Fatalf("post-sweep read = %v %v", got, ok)
	}
}

// TestScanRangeBounds exercises RID-bounded scans crossing range borders.
func TestScanRangeBounds(t *testing.T) {
	cfg := testConfig()
	cfg.RangeSize = 16
	cfg.TailBlockSize = 16
	s := newTestStore(t, cfg)
	mustCommit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 48; i++ {
			insertRow(t, s, tx, i, 1, 0, 0)
		}
	})
	count := func(lo, hi types.RID) int {
		n := 0
		s.ScanRange(s.tm.Now(), []int{1}, lo, hi, func(int64, []types.Value) bool {
			n++
			return true
		})
		return n
	}
	if got := count(1, 49); got != 48 {
		t.Fatalf("full scan = %d", got)
	}
	if got := count(8, 24); got != 16 {
		t.Fatalf("cross-range scan = %d, want 16", got)
	}
	if got := count(100, 200); got != 0 {
		t.Fatalf("out-of-range scan = %d", got)
	}
}

// TestSecondaryIndexSurvivesDeleteAndMerge: deleted records drop out of
// index answers; merge does not resurrect them.
func TestSecondaryIndexSurvivesDeleteAndMerge(t *testing.T) {
	cfg := testConfig()
	cfg.SecondaryIndexColumns = []int{2}
	s := newTestStore(t, cfg)
	mustCommit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 64; i++ {
			insertRow(t, s, tx, i, 0, i%4, 0)
		}
	})
	mustCommit(t, s, func(tx *txn.Txn) {
		if err := s.Delete(tx, 2); err != nil { // key 2 had B = 2
			t.Fatal(err)
		}
	})
	keys, err := s.LookupSecondary(s.tm.Now(), 2, types.IntValue(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if k == 2 {
			t.Fatal("deleted key in index answer")
		}
	}
	if len(keys) != 15 {
		t.Fatalf("lookup = %d keys, want 15", len(keys))
	}
	s.ForceMerge()
	keys, _ = s.LookupSecondary(s.tm.Now(), 2, types.IntValue(2))
	if len(keys) != 15 {
		t.Fatalf("post-merge lookup = %d keys", len(keys))
	}
}

// TestUpdateWithNullValue sets a column to ∅ explicitly.
func TestUpdateWithNullValue(t *testing.T) {
	s := newTestStore(t, testConfig())
	mustCommit(t, s, func(tx *txn.Txn) { insertRow(t, s, tx, 1, 5, 6, 7) })
	mustCommit(t, s, func(tx *txn.Txn) {
		if err := s.Update(tx, 1, []int{2}, []types.Value{types.NullValue()}); err != nil {
			t.Fatal(err)
		}
	})
	tx := s.tm.Begin(txn.ReadCommitted)
	defer s.tm.Abort(tx)
	vals, ok, _ := s.Get(tx, 1, []int{1, 2, 3})
	if !ok || !vals[1].IsNull() || vals[0].Int() != 5 {
		t.Fatalf("null update = %v %v", vals, ok)
	}
	// Scans skip the null but keep the row.
	sum, rows := s.ScanSum(s.tm.Now(), 2)
	if sum != 0 || rows != 0 {
		t.Fatalf("scan over nulled column = %d/%d", sum, rows)
	}
	s.ForceMerge()
	vals, ok, _ = s.Get(tx, 1, []int{2})
	if !ok || !vals[0].IsNull() {
		t.Fatalf("null lost in merge: %v", vals)
	}
}

// TestGetAtBetweenInsertAndSeal reads a snapshot taken while the range was
// still an insert range, after it has been sealed and merged.
func TestGetAtBetweenInsertAndSeal(t *testing.T) {
	cfg := testConfig()
	cfg.RangeSize = 16
	cfg.TailBlockSize = 16
	s := newTestStore(t, cfg)
	mustCommit(t, s, func(tx *txn.Txn) { insertRow(t, s, tx, 1, 10, 0, 0) })
	tsEarly := s.tm.Now()
	mustCommit(t, s, func(tx *txn.Txn) {
		if err := s.Update(tx, 1, []int{1}, []types.Value{types.IntValue(11)}); err != nil {
			t.Fatal(err)
		}
		for i := int64(2); i <= 16; i++ {
			insertRow(t, s, tx, i, 0, 0, 0)
		}
	})
	s.TrySeal(s.rangeAt(0))
	s.ForceMerge()
	vals, ok, err := s.GetAt(tsEarly, 1, []int{1})
	if err != nil || !ok || vals[0].Int() != 10 {
		t.Fatalf("pre-seal snapshot after seal+merge = %v %v %v", vals, ok, err)
	}
	// Records inserted after tsEarly are invisible at it.
	if _, ok, _ := s.GetAt(tsEarly, 5, []int{1}); ok {
		t.Fatal("later insert visible at early snapshot")
	}
}

// TestIndependentColumnMergeWithDeletes: a per-column merge that consumes a
// delete tombstone blanks only its own column but still flags the record.
func TestIndependentColumnMergeWithDeletes(t *testing.T) {
	s := newTestStore(t, testConfig())
	fillRange(t, s, 64)
	mustCommit(t, s, func(tx *txn.Txn) {
		if err := s.Delete(tx, 7); err != nil {
			t.Fatal(err)
		}
	})
	if n := s.MergeColumn(0, 1); n == 0 {
		t.Fatal("column merge consumed nothing")
	}
	r := s.rangeAt(0)
	if !r.isMergedDeleted(7) {
		t.Fatal("delete flag not set by column merge")
	}
	if _, ok := getRow(t, s, 7); ok {
		t.Fatal("deleted row visible after column merge")
	}
	// Other columns catch up later; reads stay correct throughout.
	s.MergeColumn(0, 2)
	s.MergeColumn(0, 3)
	if _, ok := getRow(t, s, 7); ok {
		t.Fatal("deleted row visible after full catch-up")
	}
	if got, ok := getRow(t, s, 8); !ok || got[0] != 80 {
		t.Fatalf("neighbor damaged: %v %v", got, ok)
	}
}

// TestSpeculativeReadValidation: a speculative read of a pre-committed
// version must fail validation if that version's writer ultimately aborts.
func TestSpeculativeReadValidation(t *testing.T) {
	s := newTestStore(t, testConfig())
	mustCommit(t, s, func(tx *txn.Txn) { insertRow(t, s, tx, 1, 10, 0, 0) })

	writer := s.tm.Begin(txn.ReadCommitted)
	if err := s.Update(writer, 1, []int{1}, []types.Value{types.IntValue(55)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.tm.Prepare(writer); err != nil {
		t.Fatal(err)
	}
	reader := s.tm.Begin(txn.Snapshot)
	sv, ok, err := s.GetSpeculative(reader, 1, []int{1})
	if err != nil || !ok || sv[0].Int() != 55 {
		t.Fatalf("speculative read = %v %v %v", sv, ok, err)
	}
	// The writer aborts: the speculative read was of a version that never
	// committed, so the reader must fail validation.
	s.tm.Abort(writer)
	if err := s.tm.Commit(reader); err != txn.ErrConflict {
		t.Fatalf("reader commit = %v, want ErrConflict", err)
	}

	// And the happy path: writer commits first, reader validates fine.
	writer2 := s.tm.Begin(txn.ReadCommitted)
	if err := s.Update(writer2, 1, []int{1}, []types.Value{types.IntValue(66)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.tm.Prepare(writer2); err != nil {
		t.Fatal(err)
	}
	reader2 := s.tm.Begin(txn.Snapshot)
	if sv, ok, _ := s.GetSpeculative(reader2, 1, []int{1}); !ok || sv[0].Int() != 66 {
		t.Fatalf("speculative read 2 = %v", sv)
	}
	if err := s.tm.Commit(writer2); err != nil {
		t.Fatal(err)
	}
	if err := s.tm.Commit(reader2); err != nil {
		t.Fatalf("reader2 commit = %v", err)
	}
}

// TestStatsCounters sanity-checks the introspection counters move.
func TestStatsCounters(t *testing.T) {
	s := newTestStore(t, testConfig())
	fillRange(t, s, 64)
	mustCommit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 8; i++ {
			if err := s.Update(tx, i, []int{1}, []types.Value{types.IntValue(1)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Delete(tx, 60); err != nil {
			t.Fatal(err)
		}
	})
	getRow(t, s, 0)
	s.ScanSum(s.tm.Now(), 1)
	s.ForceMerge()
	st := s.Stats()
	if st.Inserts != 64 || st.Updates != 8 || st.Deletes != 1 {
		t.Fatalf("op counters: %+v", st)
	}
	if st.PointReads == 0 || st.Scans == 0 {
		t.Fatalf("read counters: %+v", st)
	}
	if st.TailRecords == 0 || st.Merges == 0 || st.MergedTailRecords == 0 || st.Seals != 1 {
		t.Fatalf("merge counters: %+v", st)
	}
	if st.PagesRetired == 0 {
		t.Fatalf("retirement counters: %+v", st)
	}
	if s.NumRecords() != 64 {
		t.Fatalf("NumRecords = %d", s.NumRecords())
	}
}

// TestLocateRejectsForeignRIDs covers the RID-location guard rails.
func TestLocateRejectsForeignRIDs(t *testing.T) {
	s := newTestStore(t, testConfig())
	if _, ok := s.locate(types.InvalidRID); ok {
		t.Fatal("located invalid RID")
	}
	if _, ok := s.locate(types.TailRIDBase + 5); ok {
		t.Fatal("located tail RID as base")
	}
	if _, ok := s.locate(types.RID(1 << 30)); ok {
		t.Fatal("located out-of-range RID")
	}
}
