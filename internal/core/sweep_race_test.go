package core

import (
	"math/rand"
	"sync"
	"testing"

	"lstore/internal/txn"
	"lstore/internal/types"
)

// TestScanRowsStableUnderSealAndSweep is a regression test for the
// lazy-swap/sweep race: a reader that loaded a Start Time slot holding a
// transaction ID could race the seal's swap plus the manager's sweep and
// mis-classify a committed insert as aborted, transiently dropping the row
// from scans. resolveSlot's re-load closes the window; this test hammers
// the exact interleaving (seal + sweep run on the auto-merge worker while
// scanners iterate the still-unsealed path).
func TestScanRowsStableUnderSealAndSweep(t *testing.T) {
	cfg := Config{RangeSize: 256, TailBlockSize: 64, MergeBatch: 64, CumulativeUpdates: true, AutoMerge: true}
	s, err := NewStore(testSchema(), cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const nKeys = 256
	mustCommit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < nKeys; i++ {
			insertRow(t, s, tx, i, 0, 0, 0)
		}
	})
	stop := make(chan struct{})
	var wg, swg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 400; i++ {
				key := rng.Int63n(nKeys)
				tx := s.tm.Begin(txn.Serializable)
				vals, ok, _ := s.Get(tx, key, []int{1})
				if !ok {
					s.tm.Abort(tx)
					continue
				}
				if s.Update(tx, key, []int{1}, []types.Value{types.IntValue(vals[0].Int() + 1)}) != nil {
					s.tm.Abort(tx)
					continue
				}
				s.tm.Commit(tx) //nolint:errcheck // validation aborts are expected
			}
		}(int64(w) + 42)
	}
	for sc := 0; sc < 2; sc++ {
		swg.Add(1)
		go func() {
			defer swg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ts := s.tm.Now()
				if _, rows := s.ScanSum(ts, 1); rows != nKeys {
					t.Errorf("scan at ts=%d saw %d rows, want %d", ts, rows, nKeys)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	swg.Wait()
}
