package core

import (
	"testing"

	"lstore/internal/txn"
	"lstore/internal/types"
)

// fillRange inserts exactly one full range worth of rows and seals it so it
// leaves the insert range (precondition for regular merges, §3.2).
func fillRange(t *testing.T, s *Store, n int) {
	t.Helper()
	mustCommit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < int64(n); i++ {
			insertRow(t, s, tx, i, 10*i, 20*i, 30*i)
		}
	})
	if !s.TrySeal(s.rangeAt(0)) {
		t.Fatal("seal failed")
	}
}

func TestSealMakesBasePagesAndDiscardsTableTail(t *testing.T) {
	cfg := testConfig() // RangeSize 64
	s := newTestStore(t, cfg)
	fillRange(t, s, 64)
	r := s.rangeAt(0)
	if !r.sealed.Load() {
		t.Fatal("range not sealed")
	}
	if r.insertBlock.Load() != nil {
		t.Fatal("table-level tail pages not discarded after seal")
	}
	for c := 0; c < 4; c++ {
		cv := r.colVer(c)
		if cv == nil || cv.tps != 0 {
			t.Fatalf("col %d version missing or wrong TPS", c)
		}
	}
	// Data survives the seal.
	for i := int64(0); i < 64; i++ {
		got, ok := getRow(t, s, i)
		if !ok || got[0] != 10*i || got[2] != 30*i {
			t.Fatalf("row %d after seal = %v %v", i, got, ok)
		}
	}
	if s.Stats().Seals != 1 {
		t.Fatalf("seals = %d", s.Stats().Seals)
	}
}

func TestSealRequiresResolvedInserts(t *testing.T) {
	cfg := testConfig()
	cfg.RangeSize = 16
	cfg.TailBlockSize = 16
	s := newTestStore(t, cfg)
	tx := s.tm.Begin(txn.ReadCommitted)
	for i := int64(0); i < 16; i++ {
		insertRow(t, s, tx, i, i, i, i)
	}
	// Insert range is full but uncommitted: seal must refuse.
	if s.TrySeal(s.rangeAt(0)) {
		t.Fatal("sealed a range with in-flight inserts")
	}
	if err := s.tm.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if !s.TrySeal(s.rangeAt(0)) {
		t.Fatal("seal failed after commit")
	}
}

func TestMergeConsolidatesAndAdvancesTPS(t *testing.T) {
	s := newTestStore(t, testConfig())
	fillRange(t, s, 64)
	// Update A of rows 0..9 twice.
	for round := int64(1); round <= 2; round++ {
		mustCommit(t, s, func(tx *txn.Txn) {
			for i := int64(0); i < 10; i++ {
				if err := s.Update(tx, i, []int{1}, []types.Value{types.IntValue(1000*round + i)}); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
	merged := s.ForceMerge()
	if merged == 0 {
		t.Fatal("merge consumed nothing")
	}
	r := s.rangeAt(0)
	cv := r.colVer(1)
	if cv.tps == 0 {
		t.Fatal("TPS not advanced")
	}
	// The merged base page holds the newest committed values: intermediate
	// versions were skipped (Algorithm 1).
	for i := 0; i < 10; i++ {
		want := types.EncodeInt64(2000 + int64(i))
		if got := cv.data.Get(i); got != want {
			t.Fatalf("merged A[%d] = %d, want %d", i, got, want)
		}
	}
	// Untouched rows keep originals.
	if got := cv.data.Get(20); got != types.EncodeInt64(200) {
		t.Fatalf("merged A[20] = %d", got)
	}
	// Reads after merge see the same values as before (2-hop fast path).
	for i := int64(0); i < 10; i++ {
		got, _ := getRow(t, s, i)
		if got[0] != 2000+i {
			t.Fatalf("row %d after merge = %v", i, got)
		}
	}
	// Consistent TPS across columns after a full merge (Lemma 3).
	if _, ok := s.CheckTPSConsistency(0); !ok {
		t.Fatal("full merge left inconsistent TPS")
	}
}

func TestMergeIsIdempotentlyRepeatable(t *testing.T) {
	s := newTestStore(t, testConfig())
	fillRange(t, s, 64)
	mustCommit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 5; i++ {
			if err := s.Update(tx, i, []int{2}, []types.Value{types.IntValue(7 * i)}); err != nil {
				t.Fatal(err)
			}
		}
	})
	s.ForceMerge()
	before := make([]uint64, 64)
	cv := s.rangeAt(0).colVer(2)
	for i := range before {
		before[i] = cv.data.Get(i)
	}
	// Re-running merges with no new tail records changes nothing.
	if n := s.ForceMerge(); n != 0 {
		t.Fatalf("idle merge consumed %d records", n)
	}
	cv2 := s.rangeAt(0).colVer(2)
	for i := range before {
		if cv2.data.Get(i) != before[i] {
			t.Fatalf("idle merge changed slot %d", i)
		}
	}
}

func TestMergeSkipsUncommittedSuffix(t *testing.T) {
	s := newTestStore(t, testConfig())
	fillRange(t, s, 64)
	mustCommit(t, s, func(tx *txn.Txn) {
		if err := s.Update(tx, 1, []int{1}, []types.Value{types.IntValue(111)}); err != nil {
			t.Fatal(err)
		}
	})
	// An in-flight transaction's records form the prefix cut.
	open := s.tm.Begin(txn.ReadCommitted)
	if err := s.Update(open, 2, []int{1}, []types.Value{types.IntValue(222)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, s, func(tx *txn.Txn) {
		if err := s.Update(tx, 3, []int{1}, []types.Value{types.IntValue(333)}); err != nil {
			t.Fatal(err)
		}
	})
	s.ForceMerge()
	cv := s.rangeAt(0).colVer(1)
	// Row 1's update (before the cut) is merged; row 3's (after the cut) is
	// not — "consecutive" means the merge stops at the first unresolved
	// record (§4.1 step 1).
	if got := cv.data.Get(1); got != types.EncodeInt64(111) {
		t.Fatalf("committed-before-cut not merged: %d", got)
	}
	if got := cv.data.Get(3); got == types.EncodeInt64(333) {
		t.Fatal("record after uncommitted cut was merged")
	}
	// Reads still correct for everyone.
	if got, _ := getRow(t, s, 3); got[0] != 333 {
		t.Fatalf("row 3 = %v", got)
	}
	if got, _ := getRow(t, s, 2); got[0] != 20 {
		t.Fatalf("row 2 sees uncommitted: %v", got)
	}
	if err := s.tm.Commit(open); err != nil {
		t.Fatal(err)
	}
	s.ForceMerge()
	cv = s.rangeAt(0).colVer(1)
	if got := cv.data.Get(2); got != types.EncodeInt64(222) {
		t.Fatalf("after commit+merge row2 base = %d", got)
	}
	if got := cv.data.Get(3); got != types.EncodeInt64(333) {
		t.Fatalf("after commit+merge row3 base = %d", got)
	}
}

func TestMergeAppliesDeleteTombstones(t *testing.T) {
	s := newTestStore(t, testConfig())
	fillRange(t, s, 64)
	mustCommit(t, s, func(tx *txn.Txn) {
		if err := s.Delete(tx, 5); err != nil {
			t.Fatal(err)
		}
	})
	s.ForceMerge()
	r := s.rangeAt(0)
	if !r.isMergedDeleted(5) {
		t.Fatal("merged delete bit not set")
	}
	if got := r.colVer(1).data.Get(5); got != types.NullSlot {
		t.Fatalf("deleted row's merged value = %d, want ∅", got)
	}
	if _, ok := getRow(t, s, 5); ok {
		t.Fatal("deleted row readable after merge")
	}
	// Neighbors unaffected.
	if got, ok := getRow(t, s, 6); !ok || got[0] != 60 {
		t.Fatalf("row 6 = %v %v", got, ok)
	}
}

func TestSnapshotReadsSurviveMerge(t *testing.T) {
	// Lemma 2: pre-image snapshot records keep originals reachable after
	// outdated base pages are discarded.
	s := newTestStore(t, testConfig())
	fillRange(t, s, 64)
	tsOrig := s.tm.Now()
	mustCommit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 8; i++ {
			if err := s.Update(tx, i, []int{1, 3}, []types.Value{types.IntValue(-1), types.IntValue(-2)}); err != nil {
				t.Fatal(err)
			}
		}
	})
	tsNew := s.tm.Now()
	s.ForceMerge()
	for i := int64(0); i < 8; i++ {
		vals, ok, err := s.GetAt(tsOrig, i, []int{1, 3})
		if err != nil || !ok {
			t.Fatalf("GetAt orig %d: %v %v", i, ok, err)
		}
		if vals[0].Int() != 10*i || vals[1].Int() != 30*i {
			t.Fatalf("original version lost after merge: row %d = %v", i, vals)
		}
		vals, _, _ = s.GetAt(tsNew, i, []int{1, 3})
		if vals[0].Int() != -1 || vals[1].Int() != -2 {
			t.Fatalf("new version wrong after merge: row %d = %v", i, vals)
		}
	}
	// Snapshot scans reconstruct the old sum.
	sum, _ := s.ScanSum(tsOrig, 1)
	want := int64(0)
	for i := int64(0); i < 64; i++ {
		want += 10 * i
	}
	if sum != want {
		t.Fatalf("snapshot scan after merge = %d, want %d", sum, want)
	}
}

func TestIndependentColumnMergeAndTPSMismatch(t *testing.T) {
	// §4.2: different columns of the same record merge independently at
	// different points in time; the resulting TPS mismatch is detectable
	// (Lemma 3) and reads remain consistent (Theorem 2).
	s := newTestStore(t, testConfig())
	fillRange(t, s, 64)
	mustCommit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 6; i++ {
			if err := s.Update(tx, i, []int{1, 3}, []types.Value{types.IntValue(100 + i), types.IntValue(300 + i)}); err != nil {
				t.Fatal(err)
			}
		}
	})
	// Merge only column A.
	if n := s.MergeColumn(0, 1); n == 0 {
		t.Fatal("column merge consumed nothing")
	}
	tpsA := s.RangeTPS(0, 1)
	tpsC := s.RangeTPS(0, 3)
	if tpsA == 0 || tpsC != 0 {
		t.Fatalf("tps A=%v C=%v; want A>0, C=0", tpsA, tpsC)
	}
	if _, ok := s.CheckTPSConsistency(0); ok {
		t.Fatal("TPS mismatch not detected")
	}
	// Reads of both columns remain correct despite the mismatch.
	for i := int64(0); i < 6; i++ {
		got, _ := getRow(t, s, i)
		if got[0] != 100+i || got[2] != 300+i {
			t.Fatalf("row %d during split merge = %v", i, got)
		}
	}
	// Merging C reconciles.
	if n := s.MergeColumn(0, 3); n == 0 {
		t.Fatal("second column merge consumed nothing")
	}
	if s.RangeTPS(0, 3) != tpsA {
		t.Fatalf("C TPS %v != A TPS %v after catching up", s.RangeTPS(0, 3), tpsA)
	}
	cv := s.rangeAt(0).colVer(3)
	for i := 0; i < 6; i++ {
		if cv.data.Get(i) != types.EncodeInt64(300+int64(i)) {
			t.Fatalf("C[%d] merged wrong", i)
		}
	}
}

func TestMergeRetiresPagesThroughEpochs(t *testing.T) {
	s := newTestStore(t, testConfig())
	fillRange(t, s, 64)
	mustCommit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 10; i++ {
			if err := s.Update(tx, i, []int{1}, []types.Value{types.IntValue(i)}); err != nil {
				t.Fatal(err)
			}
		}
	})
	// Pin a reader epoch, then merge: retired pages must stay pending.
	g := s.em.Pin()
	r := s.rangeAt(0)
	s.mergeRange(r, -1)
	if s.em.Pending() == 0 {
		t.Fatal("merge retired nothing")
	}
	reclaimedBefore := s.Stats().PagesReclaimed
	s.em.TryReclaim()
	if s.Stats().PagesReclaimed != reclaimedBefore {
		t.Fatal("pages reclaimed while a reader epoch was pinned")
	}
	g.Unpin()
	s.em.TryReclaim()
	if s.Stats().PagesReclaimed == reclaimedBefore {
		t.Fatal("pages not reclaimed after readers drained")
	}
}

func TestTwoHopInvariantWithCumulativeUpdates(t *testing.T) {
	// §1: "(at most) 2-hop away access to the latest version of any record".
	// With cumulative updates, a point read needs at most the base record
	// plus one tail record.
	s := newTestStore(t, testConfig())
	fillRange(t, s, 64)
	for round := 0; round < 5; round++ {
		mustCommit(t, s, func(tx *txn.Txn) {
			col := 1 + round%3
			if err := s.Update(tx, 7, []int{col}, []types.Value{types.IntValue(int64(1000 + round))}); err != nil {
				t.Fatal(err)
			}
		})
	}
	r := s.rangeAt(0)
	out := make([]uint64, 3)
	res := r.readCols(latestView(nil), 7, []int{1, 2, 3}, out)
	if !res.exists {
		t.Fatal("row 7 missing")
	}
	if res.hops > 2 {
		t.Fatalf("latest read took %d hops, want <= 2 (cumulative updates)", res.hops)
	}
}

func TestNonCumulativeReadsWalkChain(t *testing.T) {
	cfg := testConfig()
	cfg.CumulativeUpdates = false
	s := newTestStore(t, cfg)
	fillRange(t, s, 64)
	// Update different columns in separate transactions: a reader must walk
	// back to assemble the record (§3.1 "readers are simply forced to walk
	// back the chain").
	for i, col := range []int{1, 2, 3} {
		mustCommit(t, s, func(tx *txn.Txn) {
			if err := s.Update(tx, 9, []int{col}, []types.Value{types.IntValue(int64(100 * (i + 1)))}); err != nil {
				t.Fatal(err)
			}
		})
	}
	got, ok := getRow(t, s, 9)
	if !ok || got[0] != 100 || got[1] != 200 || got[2] != 300 {
		t.Fatalf("non-cumulative assembly = %v %v", got, ok)
	}
	r := s.rangeAt(0)
	out := make([]uint64, 3)
	res := r.readCols(latestView(nil), 9, []int{1, 2, 3}, out)
	if res.hops < 3 {
		t.Fatalf("expected >=3 hops without cumulation, got %d", res.hops)
	}
	// After a merge the same read is 0-hop (fast path).
	s.ForceMerge()
	res = r.readCols(latestView(nil), 9, []int{1, 2, 3}, out)
	if res.hops != 0 {
		t.Fatalf("post-merge read took %d hops, want 0", res.hops)
	}
}

func TestAutoMergeWorker(t *testing.T) {
	cfg := testConfig()
	cfg.AutoMerge = true
	cfg.MergeBatch = 4
	s := newTestStore(t, cfg)
	mustCommit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 64; i++ {
			insertRow(t, s, tx, i, i, i, i)
		}
	})
	for round := int64(0); round < 10; round++ {
		mustCommit(t, s, func(tx *txn.Txn) {
			for i := int64(0); i < 8; i++ {
				if err := s.Update(tx, i, []int{1}, []types.Value{types.IntValue(round*100 + i)}); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
	// Close drains the merge queue; merges should have happened.
	s.Close()
	if s.Stats().Merges == 0 && s.Stats().Seals == 0 {
		t.Fatal("auto merge never ran")
	}
	for i := int64(0); i < 8; i++ {
		got, ok := getRow(t, s, i)
		if !ok || got[0] != 900+i {
			t.Fatalf("row %d after auto merges = %v %v", i, got, ok)
		}
	}
}

func TestRowLayoutSealMergeAndRead(t *testing.T) {
	cfg := testConfig()
	cfg.Layout = RowLayout
	s := newTestStore(t, cfg)
	fillRange(t, s, 64)
	mustCommit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 10; i++ {
			if err := s.Update(tx, i, []int{1}, []types.Value{types.IntValue(5000 + i)}); err != nil {
				t.Fatal(err)
			}
		}
	})
	s.ForceMerge()
	for i := int64(0); i < 10; i++ {
		got, ok := getRow(t, s, i)
		if !ok || got[0] != 5000+i || got[1] != 20*i {
			t.Fatalf("row-layout row %d = %v %v", i, got, ok)
		}
	}
	sum, rows := s.ScanSum(s.tm.Now(), 2)
	var want int64
	for i := int64(0); i < 64; i++ {
		want += 20 * i
	}
	if sum != want || rows != 64 {
		t.Fatalf("row-layout scan = %d/%d, want %d/64", sum, rows, want)
	}
}
