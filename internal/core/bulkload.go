package core

import (
	"fmt"

	"lstore/internal/types"
)

// BulkLoad installs rows (one value per schema column, non-null unique
// keys) as already-committed base records — the checkpoint-restore fast
// path. It bypasses the transaction machinery entirely: every row in the
// call is stamped with one freshly issued commit timestamp, so there is no
// transaction-manager entry, no lazy start-time swap debt, and no
// conflict-resolution walk. Loaded rows are immediately visible to
// committed reads and to snapshots taken at or after the issued timestamp.
//
// Keys still go through the primary index's PutIfAbsent, so a duplicate —
// against another loaded row or a live inserted record — fails the load
// partway with ErrDuplicateKey; callers restoring a checkpoint treat that
// as a corrupt image and discard the store. BulkLoad is safe to run
// concurrently with merges and readers; interleaving it with writers to the
// same keys is the caller's responsibility.
func (s *Store) BulkLoad(rows [][]types.Value) (int, error) {
	ts := s.tm.Tick() // one commit timestamp for the whole batch
	loaded := 0
	slots := make([]uint64, s.schema.NumCols())
	for _, vals := range rows {
		if len(vals) != s.schema.NumCols() {
			return loaded, fmt.Errorf("core: bulk-load arity %d, schema has %d columns", len(vals), s.schema.NumCols())
		}
		if vals[s.schema.Key].IsNull() {
			return loaded, fmt.Errorf("core: bulk-load null primary key")
		}
		for i, v := range vals {
			sv, err := s.encodeValue(i, v)
			if err != nil {
				return loaded, fmt.Errorf("core: column %q: %w", s.schema.Cols[i].Name, err)
			}
			slots[i] = sv
		}
		keySlot := slots[s.schema.Key]

		r, ib, slot, err := s.takeInsertSlot()
		if err != nil {
			return loaded, err
		}
		baseRID := r.firstRID + types.RID(slot)
		if _, installed := s.primary.PutIfAbsent(keySlot, baseRID); !installed {
			// Neutralize the reserved slot: it stays invisible forever.
			ib.startTime.Store(slot, types.NullSlot)
			ib.pending.Add(-1)
			s.maybeEnqueueMerge(r)
			return loaded, fmt.Errorf("%w: bulk-load key %d", ErrDuplicateKey, types.DecodeInt64(keySlot))
		}
		for c, sv := range slots {
			ib.dataPage(c, true).Store(slot, sv)
		}
		ib.baseRID.Store(slot, uint64(baseRID))
		ib.schemaEnc.Store(slot, 0)
		ib.indirection.Store(slot, uint64(baseRID))
		// The start time is a plain commit timestamp: readers never need to
		// resolve it through the transaction manager.
		ib.startTime.Store(slot, ts)
		ib.pending.Add(-1)

		for c, sec := range s.secondary {
			if slots[c] != types.NullSlot {
				sec.Add(slots[c], baseRID)
			}
		}
		s.stats.Inserts.Add(1)
		loaded++
		if ib.rids.Used() >= r.n {
			s.maybeEnqueueMerge(r)
		}
	}
	return loaded, nil
}
