package core

import (
	"testing"

	"lstore/internal/txn"
	"lstore/internal/types"
)

// This file reproduces the paper's running example (Tables 2–6) against the
// real engine: records k1..k3 in one update range, the exact update/delete
// sequence of §3.1, the merge of §4.1 (Table 4), the TPS interpretation of
// §4.2 (Table 5) and the historic compression of §4.3 (Table 6).

// paperStore builds the k1..k3 world: one sealed range containing the three
// records with initial values (a_i, b_i, c_i) encoded as i*10+digit.
func paperStore(t *testing.T, cumulative bool) *Store {
	t.Helper()
	cfg := Config{
		RangeSize:         16,
		TailBlockSize:     16,
		MergeBatch:        4,
		CumulativeUpdates: cumulative,
	}
	s, err := NewStore(testSchema(), cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	mustCommit(t, s, func(tx *txn.Txn) {
		// a1=11 b1=12 c1=13; a2=21 ...; values chosen so every cell is
		// distinct and recognizable.
		for k := int64(1); k <= 3; k++ {
			insertRow(t, s, tx, k, k*10+1, k*10+2, k*10+3)
		}
		// Fill the rest of the range so it can seal.
		for k := int64(4); k <= 16; k++ {
			insertRow(t, s, tx, k, 0, 0, 0)
		}
	})
	if !s.TrySeal(s.rangeAt(0)) {
		t.Fatal("seal failed")
	}
	return s
}

// TestPaperTable2UpdateDeleteSequence replays §3.1's sequence:
// t1/t2: first update of A on k2 (pre-image + new value a21)
// t3:    second update of A on k2 (a22)
// t4/t5: first update of C on k2 (pre-image + cumulative a22,c21)
// t6/t7: first update of C on k3 (pre-image + c31)
// t8:    delete of k1
func TestPaperTable2UpdateDeleteSequence(t *testing.T) {
	s := paperStore(t, true)
	r := s.rangeAt(0)

	update := func(key int64, col int, v int64) {
		mustCommit(t, s, func(tx *txn.Txn) {
			if err := s.Update(tx, key, []int{col}, []types.Value{types.IntValue(v)}); err != nil {
				t.Fatal(err)
			}
		})
	}
	update(2, 1, 211) // a21
	update(2, 1, 212) // a22
	update(2, 3, 231) // c21
	update(3, 3, 331) // c31
	mustCommit(t, s, func(tx *txn.Txn) {
		if err := s.Delete(tx, 1); err != nil {
			t.Fatal(err)
		}
	})

	// Tail record census: k2's first A update produced a pre-image + value
	// (2 records), second A update 1 record, first C update 2, k3's first C
	// update 2, delete = pre-image (all columns) + tombstone (2). Total 9.
	if got := r.appended.Load(); got != 9 {
		t.Fatalf("tail records = %d, want 9 (2+1+2+2+2)", got)
	}

	// The indirection of k2's base record points at the newest version,
	// which carries the cumulative (a22, c21) — 2-hop access.
	loc, _ := s.locate(r.firstRID + 1) // k2 was the 2nd insert
	ind := loc.rng.loadIndirection(loc.slot)
	if ind == 0 {
		t.Fatal("k2 indirection still ⊥")
	}
	rec, ok := s.loadTailRecord(ind)
	if !ok {
		t.Fatal("k2's newest version unreadable")
	}
	if a, ok := rec.value(1); !ok || a != types.EncodeInt64(212) {
		t.Fatalf("newest version A = (%d,%v), want cumulative a22", a, ok)
	}
	if c, ok := rec.value(3); !ok || c != types.EncodeInt64(231) {
		t.Fatalf("newest version C = (%d,%v), want c21", c, ok)
	}
	// Its back pointer leads to the pre-image of C whose Schema Encoding
	// carries the snapshot flag (the asterisk of Table 2).
	pre, ok := s.loadTailRecord(rec.back)
	if !ok {
		t.Fatal("pre-image missing")
	}
	if pre.enc&types.SchemaSnapshotFlag == 0 {
		t.Fatalf("expected snapshot-flagged pre-image, enc=%b", pre.enc)
	}
	if c, ok := pre.value(3); !ok || c != types.EncodeInt64(23) {
		t.Fatalf("pre-image C = (%d,%v), want original c2", c, ok)
	}

	// Visible state matches the table: k1 deleted, k2=(a22,b2,c21),
	// k3=(a3,b3,c31).
	if _, ok := getRow(t, s, 1); ok {
		t.Fatal("k1 still visible after delete")
	}
	if got, _ := getRow(t, s, 2); got[0] != 212 || got[1] != 22 || got[2] != 231 {
		t.Fatalf("k2 = %v", got)
	}
	if got, _ := getRow(t, s, 3); got[0] != 31 || got[2] != 331 {
		t.Fatalf("k3 = %v", got)
	}
}

// TestPaperTable3InsertWithConcurrentUpdates replays §3.2: inserts flow into
// table-level tail pages; updating a recently inserted (unsealed) record
// follows the regular update path.
func TestPaperTable3InsertWithConcurrentUpdates(t *testing.T) {
	cfg := Config{RangeSize: 16, TailBlockSize: 16, MergeBatch: 4, CumulativeUpdates: true}
	s, err := NewStore(testSchema(), cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tm := s.TxnManager()

	mustCommit(t, s, func(tx *txn.Txn) {
		for k := int64(7); k <= 9; k++ {
			insertRow(t, s, tx, k, k*10+1, k*10+2, k*10+3)
		}
	})
	r := s.rangeAt(0)
	if r.sealed.Load() {
		t.Fatal("range sealed prematurely")
	}
	if r.insertBlock.Load() == nil {
		t.Fatal("table-level tail pages missing")
	}
	// Update k8's C (c8 -> c81) while the range is still an insert range.
	mustCommit(t, s, func(tx *txn.Txn) {
		if err := s.Update(tx, 8, []int{3}, []types.Value{types.IntValue(831)}); err != nil {
			t.Fatal(err)
		}
	})
	// The base record's indirection now points into regular tail pages,
	// while its values still live in the table-level tail pages.
	loc, _ := s.locate(r.firstRID + 1)
	if loc.rng.loadIndirection(loc.slot) == 0 {
		t.Fatal("k8 indirection not set")
	}
	if got, _ := getRow(t, s, 8); got[0] != 81 || got[2] != 831 {
		t.Fatalf("k8 = %v", got)
	}
	// Regular merges refuse the unsealed range (§3.2's strengthened
	// stability condition).
	if n := s.mergeRange(r, -1); n != 0 {
		t.Fatalf("merge consumed %d records from an insert range", n)
	}
	// Fill, seal, merge: everything consolidates.
	mustCommit(t, s, func(tx *txn.Txn) {
		for k := int64(10); k <= 22; k++ {
			insertRow(t, s, tx, k, 0, 0, 0)
		}
	})
	_ = tm
	s.ForceMerge()
	if got, _ := getRow(t, s, 8); got[2] != 831 {
		t.Fatalf("k8 after seal+merge = %v", got)
	}
	if cv := r.colVer(3); cv.data.Get(1) != types.EncodeInt64(831) {
		t.Fatalf("merged C[k8] = %d", cv.data.Get(1))
	}
}

// TestPaperTable4RelaxedMerge replays §4.1: consolidating the committed
// prefix brings base pages almost up to date; only the latest version of
// each record participates; the Indirection column is untouched; the
// original Start Time column is preserved and Last Updated Time populated.
func TestPaperTable4RelaxedMerge(t *testing.T) {
	s := paperStore(t, true)
	r := s.rangeAt(0)
	preMeta := r.meta.Load()

	update := func(key int64, col int, v int64) {
		mustCommit(t, s, func(tx *txn.Txn) {
			if err := s.Update(tx, key, []int{col}, []types.Value{types.IntValue(v)}); err != nil {
				t.Fatal(err)
			}
		})
	}
	update(2, 1, 211)
	update(2, 1, 212)
	update(2, 3, 231)
	update(3, 3, 331)

	indBefore := r.loadIndirection(1)
	s.ForceMerge()
	if r.loadIndirection(1) != indBefore {
		t.Fatal("merge modified the Indirection column")
	}
	// Merged pages: k2 = (a22, b2, c21), k3 C = c31 — Table 4's result.
	if got := r.colVer(1).data.Get(1); got != types.EncodeInt64(212) {
		t.Fatalf("merged A[k2] = %d", got)
	}
	if got := r.colVer(2).data.Get(1); got != types.EncodeInt64(22) {
		t.Fatalf("merged B[k2] = %d (should be untouched original)", got)
	}
	if got := r.colVer(3).data.Get(1); got != types.EncodeInt64(231) {
		t.Fatalf("merged C[k2] = %d", got)
	}
	if got := r.colVer(3).data.Get(2); got != types.EncodeInt64(331) {
		t.Fatalf("merged C[k3] = %d", got)
	}
	// Start Time preserved, Last Updated Time populated (§4.1 step 3).
	mv := r.meta.Load()
	if mv.startTime.Get(1) != preMeta.startTime.Get(1) {
		t.Fatal("merge clobbered the original Start Time column")
	}
	if mv.lastUpdated.Get(1) == types.NullSlot {
		t.Fatal("Last Updated Time not populated for k2")
	}
	if mv.lastUpdated.Get(5) != types.NullSlot {
		t.Fatal("Last Updated Time populated for an untouched record")
	}
	// Base Schema Encoding reflects changed columns (A and C for k2).
	if enc := mv.schemaEnc.Get(1); enc&(1<<1) == 0 || enc&(1<<3) == 0 || enc&(1<<2) != 0 {
		t.Fatalf("base schema encoding = %b", enc)
	}
}

// TestPaperTable5TPSInterpretation replays §4.2: after a merge with TPS t7,
// a reader holding pre-merge pages (TPS 0) must consult tail records, while
// a reader of merged pages needs only the cumulative tail record — and both
// reconstruct the same record.
func TestPaperTable5TPSInterpretation(t *testing.T) {
	s := paperStore(t, true)
	r := s.rangeAt(0)

	update := func(key int64, col int, v int64) {
		mustCommit(t, s, func(tx *txn.Txn) {
			if err := s.Update(tx, key, []int{col}, []types.Value{types.IntValue(v)}); err != nil {
				t.Fatal(err)
			}
		})
	}
	update(2, 1, 211)
	update(2, 1, 212)
	update(2, 3, 231)

	// Hold the pre-merge version (a reader that loaded pages before the
	// pointer swap).
	oldA := r.colVer(1)
	oldC := r.colVer(3)
	s.ForceMerge()
	newA := r.colVer(1)

	// Post-merge updates (the t9..t12 of Table 5).
	update(2, 2, 221) // b21
	update(2, 1, 213) // a23 (cumulative carries b21)

	// Reader A: pre-merge pages, TPS 0 — must walk tail records for A.
	if oldA.tps != 0 || oldC.tps != 0 {
		t.Fatalf("pre-merge TPS = %v/%v", oldA.tps, oldC.tps)
	}
	if oldA.data.Get(1) != types.EncodeInt64(21) {
		t.Fatal("pre-merge page should hold the original a2")
	}
	// Reader B: merged pages with advanced TPS already reflect a22.
	if newA.tps == 0 {
		t.Fatal("merged TPS not advanced")
	}
	if newA.data.Get(1) != types.EncodeInt64(212) {
		t.Fatal("merged page should hold a22")
	}
	// Both arrive at the same current record through the engine.
	got, _ := getRow(t, s, 2)
	if got[0] != 213 || got[1] != 221 || got[2] != 231 {
		t.Fatalf("k2 = %v, want (a23,b21,c21)", got)
	}
	// The indirection value is interpretable against both TPS values: it
	// exceeds the merged TPS, so even merged-page readers follow it.
	ind := r.loadIndirection(1)
	if ind <= newA.tps {
		t.Fatalf("indirection %v not beyond merged TPS %v", ind, newA.tps)
	}
}

// TestPaperTable6HistoricCompression replays §4.3: merged tail records are
// re-organized per base record with versions inlined and delta-compressed,
// originals retired, and historic (time-travel) queries still answered.
func TestPaperTable6HistoricCompression(t *testing.T) {
	s := paperStore(t, true)
	update := func(key int64, col int, v int64) types.Timestamp {
		mustCommit(t, s, func(tx *txn.Txn) {
			if err := s.Update(tx, key, []int{col}, []types.Value{types.IntValue(v)}); err != nil {
				t.Fatal(err)
			}
		})
		return s.tm.Now()
	}
	ts0 := s.tm.Now()
	tsA21 := update(2, 1, 211)
	tsA22 := update(2, 1, 212)
	tsC21 := update(2, 3, 231)
	update(3, 3, 331)
	// Pad with more updates so whole tail blocks (16 records) fill: 8 so
	// far; 8 more single-record updates brings block 0 to 16.
	for i := 0; i < 8; i++ {
		update(4, 1, int64(1000+i))
	}
	s.ForceMerge()
	moved := s.CompressHistory()
	if moved == 0 {
		t.Fatal("history compression moved nothing")
	}
	r := s.rangeAt(0)
	if r.histUpto.Load() == 0 {
		t.Fatal("histUpto not advanced")
	}
	if s.HistoryRecords(0) == 0 {
		t.Fatal("no records in history store")
	}
	// The first tail block's directory entry is gone after reclamation.
	s.em.TryReclaim()

	// Time travel across the compression boundary: every intermediate
	// version of k2 is still reachable (version inlining preserves them).
	check := func(ts types.Timestamp, wantA, wantC int64) {
		t.Helper()
		vals, ok, err := s.GetAt(ts, 2, []int{1, 3})
		if err != nil || !ok {
			t.Fatalf("GetAt(%d): %v %v", ts, ok, err)
		}
		if vals[0].Int() != wantA || vals[1].Int() != wantC {
			t.Fatalf("GetAt(%d) = %v, want A=%d C=%d", ts, vals, wantA, wantC)
		}
	}
	check(ts0, 21, 23)     // originals via inlined pre-images
	check(tsA21, 211, 23)  // a21
	check(tsA22, 212, 23)  // a22
	check(tsC21, 212, 231) // a22 + c21
	// Latest reads never touch history (they stop at TPS).
	if got, _ := getRow(t, s, 2); got[0] != 212 || got[2] != 231 {
		t.Fatalf("latest k2 = %v", got)
	}
	if s.Stats().HistoryPasses == 0 {
		t.Fatal("history pass not counted")
	}
}

// TestHistoricCompressionWithDeletes verifies tombstones survive into the
// history store so time travel sees deletion correctly.
func TestHistoricCompressionWithDeletes(t *testing.T) {
	s := paperStore(t, true)
	tsAlive := s.tm.Now()
	mustCommit(t, s, func(tx *txn.Txn) {
		if err := s.Delete(tx, 1); err != nil {
			t.Fatal(err)
		}
	})
	tsDead := s.tm.Now()
	// Pad to a full block: delete produced 2 records; 14 more needed.
	for i := 0; i < 14; i++ {
		mustCommit(t, s, func(tx *txn.Txn) {
			if err := s.Update(tx, 4, []int{1}, []types.Value{types.IntValue(int64(i))}); err != nil {
				t.Fatal(err)
			}
		})
	}
	s.ForceMerge()
	if s.CompressHistory() == 0 {
		t.Fatal("nothing compressed")
	}
	if v, ok, _ := s.GetAt(tsAlive, 1, []int{1}); !ok || v[0].Int() != 11 {
		t.Fatalf("pre-delete read via history = %v %v", v, ok)
	}
	if _, ok, _ := s.GetAt(tsDead, 1, []int{1}); ok {
		t.Fatal("deleted record visible post-delete via history")
	}
}
