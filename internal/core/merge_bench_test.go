package core

import (
	"testing"

	"lstore/internal/txn"
	"lstore/internal/types"
)

// benchMergeCycle builds a store with one sealed range and returns a step
// function that applies a committed update batch and merges it — the
// steady-state work the merge arena is meant to keep allocation-free.
func benchMergeCycle(tb testing.TB) func(round int) {
	cfg := testConfig()
	cfg.RangeSize = 256
	cfg.TailBlockSize = 64
	cfg.MergeBatch = 64
	s, err := NewStore(testSchema(), cfg, nil, nil)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(s.Close)

	tx := s.tm.Begin(txn.ReadCommitted)
	for i := int64(0); i < int64(cfg.RangeSize); i++ {
		if err := s.Insert(tx, []types.Value{
			types.IntValue(i), types.IntValue(10 * i), types.IntValue(20 * i), types.IntValue(30 * i),
		}); err != nil {
			tb.Fatal(err)
		}
	}
	if err := s.tm.Commit(tx); err != nil {
		tb.Fatal(err)
	}
	if !s.TrySeal(s.rangeAt(0)) {
		tb.Fatal("seal failed")
	}

	cols := []int{1}
	vals := []types.Value{types.NullValue()}
	return func(round int) {
		tx := s.tm.Begin(txn.ReadCommitted)
		for i := 0; i < cfg.MergeBatch; i++ {
			key := int64((round*cfg.MergeBatch + i) % cfg.RangeSize)
			vals[0] = types.IntValue(int64(round))
			if err := s.Update(tx, key, cols, vals); err != nil {
				tb.Fatal(err)
			}
		}
		if err := s.tm.Commit(tx); err != nil {
			tb.Fatal(err)
		}
		if s.ForceMerge() == 0 {
			tb.Fatal("merge consolidated nothing")
		}
	}
}

// BenchmarkMergeAllocs measures a full update-batch + merge cycle. The
// merge arena pools the consolidation scratch (starts, column values, meta
// columns, prefix collection), so allocs/op should stay flat as ranges
// churn — page encodes themselves still allocate their published arrays.
func BenchmarkMergeAllocs(b *testing.B) {
	step := benchMergeCycle(b)
	step(0) // warm the arena pool before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step(i + 1)
	}
}

// TestMergeAllocBudget pins the steady-state allocation count of a merge
// cycle. The bound is empirical with headroom: the cycle includes the update
// batch (tail records, WAL-free) and the merge (pooled arena + published
// page encodes). A regression that reintroduces per-merge slice churn —
// e.g. dropping the arena from sealLocked/mergeRange — trips this well
// before it shows up in profiles.
func TestMergeAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation benchmark under -short")
	}
	res := testing.Benchmark(func(b *testing.B) {
		step := benchMergeCycle(b)
		step(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step(i + 1)
		}
	})
	const maxAllocs = 600
	if got := res.AllocsPerOp(); got > maxAllocs {
		t.Fatalf("merge cycle allocates %d objects/op, budget %d — arena regression?", got, maxAllocs)
	}
}
