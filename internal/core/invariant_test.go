package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lstore/internal/txn"
	"lstore/internal/types"
)

// This file verifies the structural invariants DESIGN.md enumerates.

// TestInvariantTailPagesWriteOnce: once a tail record is published, its data
// slots never change; Start Time slots change only via the value-preserving
// lazy swap (txn-ID → commit time / tombstone).
func TestInvariantTailPagesWriteOnce(t *testing.T) {
	s := newTestStore(t, testConfig())
	fillRange(t, s, 64)
	mustCommit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 16; i++ {
			if err := s.Update(tx, i, []int{1, 3}, []types.Value{types.IntValue(i), types.IntValue(-i)}); err != nil {
				t.Fatal(err)
			}
		}
	})
	r := s.rangeAt(0)
	blocks := *r.tailBlocks.Load()
	type snap struct {
		enc, back, base uint64
		data            [4]uint64
		startResolved   types.Timestamp
	}
	var before []snap
	for _, b := range blocks {
		for i := 0; i < b.rids.Used(); i++ {
			sn := snap{
				enc:  b.schemaEnc.Load(i),
				back: b.indirection.Load(i),
				base: b.baseRID.Load(i),
			}
			ts, st := s.tm.Resolve(b.startTime.Load(i))
			if st != txn.StatusCommitted {
				t.Fatalf("unexpected uncommitted tail record in quiesced store")
			}
			sn.startResolved = ts
			for c := 0; c < 4; c++ {
				if p := b.dataPage(c, false); p != nil {
					sn.data[c] = p.Load(i)
				}
			}
			before = append(before, sn)
		}
	}
	// Generate lots more activity: updates, merges, reads (lazy swaps).
	for round := int64(0); round < 4; round++ {
		mustCommit(t, s, func(tx *txn.Txn) {
			for i := int64(0); i < 16; i++ {
				if err := s.Update(tx, i+16, []int{2}, []types.Value{types.IntValue(round)}); err != nil {
					t.Fatal(err)
				}
			}
		})
		getRow(t, s, 3)
		s.ForceMerge()
	}
	idx := 0
	for _, b := range blocks {
		for i := 0; i < len(before) && b.rids.Contains(b.rids.First+types.RID(i)); i++ {
			if idx >= len(before) {
				break
			}
			sn := before[idx]
			idx++
			if got := b.schemaEnc.Load(i); got != sn.enc {
				t.Fatalf("tail enc mutated: slot %d %x -> %x", i, sn.enc, got)
			}
			if got := b.indirection.Load(i); got != sn.back {
				t.Fatalf("tail back pointer mutated: slot %d", i)
			}
			if got := b.baseRID.Load(i); got != sn.base {
				t.Fatalf("tail base rid mutated: slot %d", i)
			}
			for c := 0; c < 4; c++ {
				if p := b.dataPage(c, false); p != nil && p.Load(i) != sn.data[c] {
					t.Fatalf("tail data mutated: slot %d col %d", i, c)
				}
			}
			// Start Time may only have been swapped to the SAME resolved
			// commit time.
			ts, st := s.tm.Resolve(b.startTime.Load(i))
			if st != txn.StatusCommitted || ts != sn.startResolved {
				t.Fatalf("start-time swap changed meaning: slot %d (%d,%v) want %d", i, ts, st, sn.startResolved)
			}
		}
		break // first block is enough (the one snapshot covered)
	}
}

// TestInvariantBaseVersionImmutable: a base version captured before more
// merges still decodes to the same values afterwards (readers holding old
// pages are safe; only the directory pointer moves).
func TestInvariantBaseVersionImmutable(t *testing.T) {
	s := newTestStore(t, testConfig())
	fillRange(t, s, 64)
	mustCommit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 8; i++ {
			if err := s.Update(tx, i, []int{1}, []types.Value{types.IntValue(100 + i)}); err != nil {
				t.Fatal(err)
			}
		}
	})
	s.ForceMerge()
	r := s.rangeAt(0)
	old := r.colVer(1)
	frozen := make([]uint64, old.data.Len())
	for i := range frozen {
		frozen[i] = old.data.Get(i)
	}
	// More updates + merges swap in new versions.
	for round := int64(0); round < 3; round++ {
		mustCommit(t, s, func(tx *txn.Txn) {
			for i := int64(0); i < 8; i++ {
				if err := s.Update(tx, i, []int{1}, []types.Value{types.IntValue(1000*round + i)}); err != nil {
					t.Fatal(err)
				}
			}
		})
		s.ForceMerge()
	}
	if r.colVer(1) == old {
		t.Fatal("merges did not produce a new version")
	}
	for i := range frozen {
		if old.data.Get(i) != frozen[i] {
			t.Fatalf("old base version mutated at slot %d", i)
		}
	}
}

// TestInvariantTPSMonotone: per-column TPS never regresses under randomized
// interleavings of full merges, per-column merges, and updates. The op-stream
// replay lives in mergelineage_test.go, shared with the pinned-seed
// regression test.
func TestInvariantTPSMonotone(t *testing.T) {
	f := func(seed int64) bool {
		return replayTPSOpStream(t, seed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestInvariantMergeIdempotentUnderRandomSchedules: the final visible state
// after any interleaving of merges equals the no-merge state.
func TestInvariantMergeIdempotentUnderRandomSchedules(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		run := func(withMerges bool) map[int64][3]int64 {
			r := rand.New(rand.NewSource(seed + 1000)) // same op stream
			cfg := Config{RangeSize: 32, TailBlockSize: 8, MergeBatch: 4, CumulativeUpdates: true}
			s, _ := NewStore(testSchema(), cfg, nil, nil)
			defer s.Close()
			tx := s.tm.Begin(txn.ReadCommitted)
			for i := int64(0); i < 32; i++ {
				s.Insert(tx, []types.Value{ //nolint:errcheck
					types.IntValue(i), types.IntValue(0), types.IntValue(0), types.IntValue(0),
				})
			}
			s.tm.Commit(tx) //nolint:errcheck
			for op := 0; op < 100; op++ {
				tx := s.tm.Begin(txn.ReadCommitted)
				col := 1 + r.Intn(3)
				if s.Update(tx, r.Int63n(32), []int{col}, []types.Value{types.IntValue(r.Int63n(1 << 30))}) == nil {
					s.tm.Commit(tx) //nolint:errcheck
				} else {
					s.tm.Abort(tx)
				}
				if withMerges && rng.Intn(5) == 0 {
					s.ForceMerge()
				}
			}
			out := make(map[int64][3]int64)
			tx2 := s.tm.Begin(txn.ReadCommitted)
			defer s.tm.Abort(tx2)
			for i := int64(0); i < 32; i++ {
				vals, ok, _ := s.Get(tx2, i, []int{1, 2, 3})
				if !ok {
					continue
				}
				out[i] = [3]int64{vals[0].Int(), vals[1].Int(), vals[2].Int()}
			}
			return out
		}
		a := run(false)
		b := run(true)
		if len(a) != len(b) {
			return false
		}
		for k, va := range a {
			if b[k] != va {
				t.Logf("seed %d: key %d %v != %v", seed, k, va, b[k])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
