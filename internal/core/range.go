package core

import (
	"sync"
	"sync/atomic"

	"lstore/internal/bufpool"
	"lstore/internal/txn"
	"lstore/internal/types"
)

// colVersion is one column's read-only base page set for a range, stamped
// with its in-page lineage counter (§4.2): tps is the RID of the newest tail
// record whose effect is reflected in data. Versions are immutable; the
// merge process swaps a new version in atomically. The page is held through
// a buffer-pool handle, never a raw page pointer: with Config.Spill the
// bytes may live on disk, and readers pin the handle for the duration of
// their decode window (point reads pin per Get internally).
type colVersion struct {
	tps  types.RID
	data *bufpool.Handle // RangeSize slots
}

// metaVersion bundles the merge-maintained meta-columns of base records:
// Start Time (original insertion time, preserved across merges), Last
// Updated Time (populated by merge, §2.2) and the base-record Schema
// Encoding (populated by merge). Meta pages go through handles exactly like
// data pages — a sealed range can be entirely cold.
type metaVersion struct {
	tps         types.RID
	startTime   *bufpool.Handle // resolved insert commit times; ∅ = aborted insert
	lastUpdated *bufpool.Handle // commit time of newest merged update; ∅ = never
	schemaEnc   *bufpool.Handle // columns ever updated (merged view) + delete flag
}

// updateRange is one virtual partition of the table (§2.1): RangeSize
// consecutive base RIDs with their base pages, indirection vector, tail
// blocks, and lineage bookkeeping.
type updateRange struct {
	store    *Store
	idx      int
	firstRID types.RID
	n        int

	// indirection is the paper's table-embedded Indirection column for base
	// records: the only in-place-updated base data. Bit 63 is the write
	// latch; low bits hold the newest tail RID (0 = ⊥). Accessed exclusively
	// through atomics.
	indirection []uint64

	// everUpdated is a live per-record bitmap of columns ever updated
	// (including via uncommitted/aborted attempts); it gates the scan fast
	// path. updatedBits packs one ever-updated bit per slot (64 slots per
	// word) and is set BEFORE the matching everUpdated word, so a clear
	// packed bit guarantees a zero everUpdated word: scans classify 64
	// clean slots with a single load. deletedBits marks records whose
	// delete tombstone has been merged into base pages (gates the
	// point-read fast path).
	everUpdated []atomic.Uint64
	updatedBits []atomic.Uint64 // bit per slot, packed 64/word
	deletedBits []atomic.Uint64 // bit per slot, packed 64/word

	// Base versions. cols[i] is nil until the range is sealed; while nil the
	// base values live in insertBlock (the table-level tail pages of §3.2).
	cols []atomic.Pointer[colVersion]
	meta atomic.Pointer[metaVersion]

	insertBlock atomic.Pointer[tailBlock]
	sealed      atomic.Bool

	// Update-tail storage. tailBlocks is the ordered list of this range's
	// tail blocks; appended under tmu. The flattened sequence of records
	// across blocks is the range's tail-record order used by merge.
	tmu        sync.Mutex
	tailBlocks atomic.Pointer[[]*tailBlock]
	cur        *tailBlock // guarded by tmu for rollover; Take itself is lock-free

	// appended counts published tail records (high-watermark for merge
	// scanning). lineage holds each column's {cursor, tps} merge-state record
	// (guarded by mergeMu; see mergelineage.go for the invariants).
	// consumedMin mirrors lineage.minCursor() atomically so backlog estimates
	// (enqueue triggers, stats gauges) never block behind an in-flight merge.
	// inQueue deduplicates merge-queue entries.
	appended    atomic.Int64
	mergeMu     sync.Mutex
	lineage     mergeLineage // guarded by mergeMu
	consumedMin atomic.Int64
	inQueue     atomic.Bool

	// Historic compression state (§4.3): tail records with RID <= histUpto
	// live in hist, and their blocks have been retired. histBlocks counts
	// compressed blocks (guarded by mergeMu).
	hist       atomic.Pointer[historyStore]
	histUpto   atomic.Uint64
	histBlocks int64 // guarded by mergeMu
}

func newUpdateRange(s *Store, idx int, firstRID types.RID, n int) (*updateRange, error) {
	r := &updateRange{
		store:       s,
		idx:         idx,
		firstRID:    firstRID,
		n:           n,
		indirection: make([]uint64, n),
		everUpdated: make([]atomic.Uint64, n),
		updatedBits: make([]atomic.Uint64, (n+63)/64),
		deletedBits: make([]atomic.Uint64, (n+63)/64),
		cols:        make([]atomic.Pointer[colVersion], s.schema.NumCols()),
		lineage:     newMergeLineage(s.schema.NumCols()),
	}
	empty := []*tailBlock{}
	r.tailBlocks.Store(&empty)
	// The insert range's table-level tail block: all columns materialized
	// eagerly (§3.2: "we allocate tail pages for all columns").
	first, err := s.tailAlloc.ReserveBlock(n)
	if err != nil {
		return nil, err
	}
	r.insertBlock.Store(newTailBlock(first, n, s.schema.NumCols(), true))
	return r, nil
}

// rowCount returns the number of base records allocated so far.
func (r *updateRange) rowCount() int {
	if r.sealed.Load() {
		return r.n
	}
	if ib := r.insertBlock.Load(); ib != nil {
		return ib.rids.Used()
	}
	return r.n
}

// colVer returns column col's current base version (nil while inserting).
func (r *updateRange) colVer(col int) *colVersion { return r.cols[col].Load() }

// loadIndirection reads the indirection word, masking the latch bit.
func (r *updateRange) loadIndirection(slot int) types.RID {
	return types.RID(atomic.LoadUint64(&r.indirection[slot]) & types.IndirectionRIDMask)
}

// baseStartSlot returns the raw Start Time slot of the base record: the
// sealed meta page post-seal, the table-level tail page before. Sealing
// publishes the meta version before discarding the insert block, so a reader
// that observes both as missing simply raced the seal and retries.
func (r *updateRange) baseStartSlot(slot int) uint64 {
	for {
		if mv := r.meta.Load(); mv != nil {
			return mv.startTime.Get(slot)
		}
		if ib := r.insertBlock.Load(); ib != nil {
			return ib.startTime.Load(slot)
		}
	}
}

// baseValue returns the base-page value of col (sealed pages post-seal, the
// table-level tail block before). Same seal-race retry as baseStartSlot.
func (r *updateRange) baseValue(slot, col int) uint64 {
	for {
		if cv := r.colVer(col); cv != nil {
			return cv.data.Get(slot)
		}
		if ib := r.insertBlock.Load(); ib != nil {
			p := ib.dataPage(col, false)
			if p == nil {
				return types.NullSlot
			}
			return p.Load(slot)
		}
	}
}

// isMergedDeleted reports whether a merged delete tombstone covers slot.
func (r *updateRange) isMergedDeleted(slot int) bool {
	return r.deletedBits[slot/64].Load()&(1<<uint(slot%64)) != 0
}

func (r *updateRange) setMergedDeleted(slot int) {
	for {
		w := &r.deletedBits[slot/64]
		old := w.Load()
		if old&(1<<uint(slot%64)) != 0 || w.CompareAndSwap(old, old|1<<uint(slot%64)) {
			return
		}
	}
}

// markEverUpdated ORs bits into slot's ever-updated bitmap. The packed
// per-slot bit is published first: a scan that observes it clear may assume
// the slot's everUpdated word is still zero.
func (r *updateRange) markEverUpdated(slot int, bits uint64) {
	r.updatedBits[slot>>6].Or(1 << uint(slot&63))
	r.everUpdated[slot].Or(bits)
}

// ---------------------------------------------------------------------------
// Read views and the chain walk

// readView captures the visibility rules of one read (§5.1.1).
type readView struct {
	asOf        bool            // true: snapshot semantics at ts; false: latest
	ts          types.Timestamp // snapshot time when asOf
	selfID      types.TxnID     // own uncommitted writes are visible (0 = none)
	speculative bool            // latest mode: also see pre-committed versions
}

// latestView builds the committed-read view for t (nil t = pure committed).
func latestView(t *txn.Txn) readView {
	v := readView{}
	if t != nil {
		v.selfID = t.ID
	}
	return v
}

func asOfView(ts types.Timestamp) readView { return readView{asOf: true, ts: ts} }

// resolveSlot resolves a Start Time slot value, tolerating the
// lazy-swap/sweep race: a transaction is only swept once every slot holding
// its ID has been swapped to a plain value, so observing an unknown ID means
// the slot has since been rewritten — re-load and resolve the fresh value.
func (s *Store) resolveSlot(raw uint64, reload func() uint64) (uint64, types.Timestamp, txn.Status) {
	for attempt := 0; ; attempt++ {
		if raw == types.NullSlot || !types.IsTxnID(raw) {
			ts, st := s.tm.Resolve(raw)
			return raw, ts, st
		}
		if t, ok := s.tm.Lookup(raw); ok {
			switch t.State() {
			case txn.StateCommitted:
				return raw, t.CommitTime(), txn.StatusCommitted
			case txn.StatePreCommit:
				return raw, t.CommitTime(), txn.StatusPreCommitted
			case txn.StateAborted:
				return raw, 0, txn.StatusAborted
			default:
				return raw, 0, txn.StatusUncommitted
			}
		}
		if reload == nil || attempt > 2 {
			return raw, 0, txn.StatusAborted
		}
		next := reload()
		if next == raw {
			// Unswapped slot with an unknown ID: the sweep invariant says
			// this cannot happen; classify as tombstone.
			return raw, 0, txn.StatusAborted
		}
		raw = next
	}
}

// visible decides whether a version whose raw Start Time slot is startSlot
// is visible under the view, resolving transaction IDs through the manager.
// It also performs the paper's lazy txn-ID → commit-time swap.
func (s *Store) visible(view readView, rec *tailRecord) bool {
	slot := rec.startSlot
	if view.selfID != 0 && slot == view.selfID {
		return !view.asOf // own writes visible under latest reads
	}
	raw, ts, st := s.resolveSlot(slot, func() uint64 { return rec.block.startTime.Load(rec.slotIdx) })
	if types.IsTxnID(raw) {
		rec.startSlot = raw
		s.lazySwap(rec, ts, st)
	}
	switch st {
	case txn.StatusCommitted:
		if view.asOf {
			return ts <= view.ts
		}
		return true
	case txn.StatusPreCommitted:
		return !view.asOf && view.speculative
	default:
		return false
	}
}

// lazySwap replaces a resolved transaction ID in a Start Time slot with the
// commit time (or the ∅ tombstone for aborted writers), then lets the
// transaction manager forget drained transactions (§5.1.1 commit: "swapping
// the transaction ID with commit time is done lazily by future readers").
func (s *Store) lazySwap(rec *tailRecord, ts types.Timestamp, st txn.Status) {
	var repl uint64
	switch st {
	case txn.StatusCommitted:
		repl = ts
	case txn.StatusAborted:
		repl = types.NullSlot
	default:
		return
	}
	old := rec.startSlot
	if rec.block.startTime.CompareAndSwap(rec.slotIdx, old, repl) {
		if t, ok := s.tm.Lookup(old); ok {
			t.NoteSwapped()
		}
	}
}

// baseVisible reports whether the base record itself (its insert) is visible
// under the view, resolving unsealed insert-range start slots.
func (r *updateRange) baseVisible(s *Store, view readView, slot int) bool {
	raw := r.baseStartSlot(slot)
	if raw == types.NullSlot {
		return false // aborted insert or never-written slot
	}
	if view.selfID != 0 && raw == view.selfID {
		return !view.asOf
	}
	_, ts, st := s.resolveSlot(raw, func() uint64 { return r.baseStartSlot(slot) })
	switch st {
	case txn.StatusCommitted:
		if view.asOf {
			return ts <= view.ts
		}
		return true
	case txn.StatusPreCommitted:
		return !view.asOf && view.speculative
	default:
		return false
	}
}

// readResult carries a chain walk's outcome.
type readResult struct {
	exists bool
	// decidingRID is the RID of the version that determined existence: the
	// newest visible tail record, or the base RID when the base record
	// itself is the visible version. Used by serializable validation.
	decidingRID types.RID
	hops        int // tail records visited (2-hop invariant introspection)
}

// readCols resolves the values of cols for the record at slot under view,
// writing slot-encoded values into out (len(out) == len(cols)). It returns
// exists=false when the record is invisible or deleted under the view.
//
// The walk starts from the Indirection forward pointer and follows backward
// pointers (§2.2). Latest-mode reads stop at each column's TPS watermark —
// the merged base page already reflects everything at or below it (§4.2).
// Snapshot reads walk the full chain (pre-image records make originals
// reachable, Lemma 2) and fall through to the history store once they cross
// the historic-compression boundary (§4.3).
func (r *updateRange) readCols(view readView, slot int, cols []int, out []uint64) readResult {
	s := r.store
	res := readResult{}
	var need uint64
	for i, c := range cols {
		out[i] = types.NullSlot
		need |= 1 << uint(c)
	}
	decided := false

	ind := r.loadIndirection(slot)

	// Pure fast path for latest reads: indirection at or below every needed
	// column's TPS means base pages are current (at most the 2nd hop below).
	// Existence-only probes (len(cols)==0) always walk: an unmerged delete
	// tombstone is only discoverable on the chain.
	if !view.asOf && ind != 0 && len(cols) > 0 {
		allMerged := true
		for _, c := range cols {
			cv := r.colVer(c)
			if cv == nil || ind > cv.tps {
				allMerged = false
				break
			}
		}
		if allMerged {
			if r.isMergedDeleted(slot) {
				return res
			}
			for i, c := range cols {
				out[i] = r.baseValue(slot, c)
			}
			res.exists = true
			res.decidingRID = r.firstRID + types.RID(slot)
			return res
		}
	}

	cur := ind
	for cur.IsTail() {
		if uint64(cur) <= r.histUpto.Load() {
			// Remainder of the chain was re-organized into the history store.
			return r.readFromHistory(view, slot, cols, out, need, decided, res)
		}
		rec, ok := s.loadTailRecord(cur)
		if !ok {
			break // unpublished slot: treat as absent version
		}
		res.hops++
		if s.visible(view, &rec) {
			if !decided {
				if rec.enc&types.SchemaDeleteFlag != 0 {
					return res // newest visible version is a delete
				}
				decided = true
				if rec.enc&types.SchemaSnapshotFlag != 0 {
					// A pre-image record preserves the ORIGINAL version; for
					// version identity (read validation) it IS the base
					// record, which decided this read before the pre-image
					// was appended.
					res.decidingRID = r.firstRID + types.RID(slot)
				} else {
					res.decidingRID = cur
				}
			}
			if need != 0 && rec.enc&types.SchemaDeleteFlag == 0 {
				for i, c := range cols {
					if need&(1<<uint(c)) == 0 {
						continue
					}
					if v, ok := rec.value(c); ok {
						out[i] = v
						need &^= 1 << uint(c)
					}
				}
			}
			if need == 0 && decided {
				res.exists = true
				return res
			}
			// Latest mode: once past a column's TPS the merged page has it.
			if !view.asOf {
				done := true
				for i, c := range cols {
					if need&(1<<uint(c)) == 0 {
						continue
					}
					cv := r.colVer(c)
					if cv != nil && cur <= cv.tps {
						out[i] = cv.data.Get(slot)
						need &^= 1 << uint(c)
					} else {
						done = false
					}
				}
				if done {
					res.exists = true
					return res
				}
			}
		}
		cur = rec.back
	}

	// Chain exhausted: the base record is the visible version for everything
	// still needed (columns never updated keep their original values in the
	// merged pages).
	if !decided {
		if !r.baseVisible(s, view, slot) {
			return res
		}
		res.decidingRID = r.firstRID + types.RID(slot)
	}
	for i, c := range cols {
		if need&(1<<uint(c)) != 0 {
			out[i] = r.baseValue(slot, c)
		}
	}
	res.exists = true
	return res
}

// decidingVersion returns only the deciding RID under the view (validation
// helper; avoids materializing values).
func (r *updateRange) decidingVersion(view readView, slot int) (types.RID, bool) {
	res := r.readCols(view, slot, nil, nil)
	return res.decidingRID, res.exists
}
