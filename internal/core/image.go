package core

import (
	"errors"
	"fmt"

	"lstore/internal/bufpool"
	"lstore/internal/page"
	"lstore/internal/types"
)

// Range images: the checkpoint fast path for cold base data. A sealed range
// that has never taken a tail record is exactly its encoded base pages plus
// its Start Time page — so the checkpoint carries those pages VERBATIM
// (page.MarshalEncoded) instead of expanding them into row tuples, and
// restore installs them back without a decode/re-encode round-trip. Hot
// ranges (any tail lineage) and string-dictionary tables keep the row path:
// their state is not reproducible from base pages alone.

// RangeImage is one cold range's serialized base pages.
type RangeImage struct {
	FirstRID types.RID // original first base RID (informational; restore re-assigns)
	N        int       // slot count (the source store's RangeSize)
	Rows     int       // visible rows (start != ∅) the image carries
	MaxStart types.Timestamp
	Cols     [][]byte // per schema column, page.MarshalEncoded
	Starts   []byte   // Start Time meta page, page.MarshalEncoded
}

// ErrImageShape reports a RangeImage that cannot install into this store's
// layout (different RangeSize); callers fall back to row-wise loading.
var ErrImageShape = errors.New("core: range image shape mismatch")

// coldRange reports whether r can be captured as a page image at snapshot
// ts: sealed, zero tail lineage (no update/delete ever appended — base pages
// ARE the range's whole state), and every Start Time slot either ∅ or a
// plain committed timestamp at or before ts (a row sealed after the cut
// would smuggle post-snapshot state into the image).
func (s *Store) coldRange(r *updateRange, ts types.Timestamp) (mv *metaVersion, ok bool) {
	if !r.sealed.Load() || r.appended.Load() != 0 || r.n != s.cfg.RangeSize {
		return nil, false
	}
	mv = r.meta.Load()
	if mv == nil {
		return nil, false
	}
	st := mv.startTime.MustPin() // one pin covers the whole slot walk
	defer mv.startTime.Unpin()
	for i, n := 0, st.Len(); i < n; i++ {
		raw := st.Get(i)
		if raw == types.NullSlot {
			continue
		}
		if types.IsTxnID(raw) || raw > ts {
			return nil, false
		}
	}
	return mv, true
}

// ColdRangeImages captures every cold range as of ts. Row-layout stores and
// tables with string columns return nil (their pages alias store-level state
// the image cannot carry); those tables checkpoint row-wise as before.
func (s *Store) ColdRangeImages(ts types.Timestamp) []RangeImage {
	if s.cfg.Layout == RowLayout {
		return nil
	}
	for _, d := range s.dicts {
		if d != nil {
			return nil // string slots are codes into the store's dictionary
		}
	}
	g := s.em.Pin()
	defer g.Unpin()
	var out []RangeImage
	for i := 0; i < s.rangeCount(); i++ {
		r := s.rangeAt(i)
		mv, ok := s.coldRange(r, ts)
		if !ok {
			continue
		}
		// Marshal from the PINNED concrete pages: marshaling a handle
		// directly would flatten the page to raw through point reads.
		st := mv.startTime.MustPin()
		img := RangeImage{
			FirstRID: r.firstRID,
			N:        r.n,
			Cols:     make([][]byte, s.schema.NumCols()),
			Starts:   page.MarshalEncoded(st),
		}
		for slot, n := 0, st.Len(); slot < n; slot++ {
			if raw := st.Get(slot); raw != types.NullSlot {
				img.Rows++
				if raw > img.MaxStart {
					img.MaxStart = raw
				}
			}
		}
		mv.startTime.Unpin()
		complete := true
		for c := range img.Cols {
			cv := r.colVer(c)
			if cv == nil {
				complete = false
				break
			}
			pg := cv.data.MustPin()
			img.Cols[c] = page.MarshalEncoded(pg)
			cv.data.Unpin()
		}
		if complete {
			out = append(out, img)
		}
	}
	return out
}

// InstallRangeImage transforms the store's CURRENT (completely unused)
// insert range into a sealed range holding the image's pages, then opens a
// fresh insert range. Records keep their original commit timestamps — the
// caller must afterwards be able to rely on the clock having passed them,
// which InstallRangeImage guarantees via txn.Manager.AdvanceTo. row is
// called once per visible row with its new base RID's key and decoded
// values (the restore path re-logs them into the WAL); a nil row skips the
// callback. Returns the number of visible rows installed.
//
// Only restore-time callers may use this: the unused-insert-range
// precondition makes it safe, and a concurrent writer would violate it.
func (s *Store) InstallRangeImage(img RangeImage, row func(key int64, vals []types.Value) error) (int, error) {
	if img.N != s.cfg.RangeSize || s.cfg.Layout == RowLayout {
		return 0, ErrImageShape
	}
	ncols := s.schema.NumCols()
	if len(img.Cols) != ncols {
		return 0, fmt.Errorf("core: range image has %d columns, schema has %d", len(img.Cols), ncols)
	}
	for _, d := range s.dicts {
		if d != nil {
			return 0, ErrImageShape
		}
	}
	pages := make([]page.Reader, ncols)
	for c := range pages {
		p, err := page.UnmarshalEncoded(img.Cols[c])
		if err != nil {
			return 0, fmt.Errorf("core: range image column %d: %w", c, err)
		}
		if p.Len() != img.N {
			return 0, fmt.Errorf("core: range image column %d has %d slots, want %d", c, p.Len(), img.N)
		}
		pages[c] = p
	}
	starts, err := page.UnmarshalEncoded(img.Starts)
	if err != nil {
		return 0, fmt.Errorf("core: range image start page: %w", err)
	}
	if starts.Len() != img.N {
		return 0, fmt.Errorf("core: range image start page has %d slots, want %d", starts.Len(), img.N)
	}

	s.insertMu.Lock()
	defer s.insertMu.Unlock()
	r := s.curInsert.Load()
	ib := r.insertBlock.Load()
	if ib == nil || ib.rids.Used() != 0 || ib.pending.Load() != 0 {
		return 0, fmt.Errorf("core: install target insert range already in use")
	}

	// Index every visible row under its NEW base RID, validating as we go.
	installed := 0
	var maxStart types.Timestamp
	keyPage := pages[s.schema.Key]
	for slot := 0; slot < img.N; slot++ {
		raw := starts.Get(slot)
		if raw == types.NullSlot {
			continue
		}
		if types.IsTxnID(raw) {
			return installed, fmt.Errorf("core: range image start slot %d is an unresolved transaction id", slot)
		}
		baseRID := r.firstRID + types.RID(slot)
		ksv := keyPage.Get(slot)
		if ksv == types.NullSlot {
			return installed, fmt.Errorf("core: range image slot %d has a null primary key", slot)
		}
		if _, ok := s.primary.PutIfAbsent(ksv, baseRID); !ok {
			return installed, fmt.Errorf("%w: range image key %d", ErrDuplicateKey, types.DecodeInt64(ksv))
		}
		for c, sec := range s.secondary {
			if sv := pages[c].Get(slot); sv != types.NullSlot {
				sec.Add(sv, baseRID)
			}
		}
		if raw > maxStart {
			maxStart = raw
		}
		installed++
	}

	// Publish: column versions, then meta, then sealed — the order a normal
	// seal uses. TPS 0 on everything: zero tail lineage by construction.
	// With a spill attached the restored pages spill like any seal would;
	// the const meta pages stay resident (a handful of words each, and a
	// cold range's Last Updated/Schema Encoding are never checkpointed).
	ncolsTotal := len(pages)
	for c := range pages {
		r.cols[c].Store(&colVersion{tps: 0, data: s.publishPage(r, c, pages[c])})
	}
	r.meta.Store(&metaVersion{
		tps:         0,
		startTime:   s.publishPage(r, ncolsTotal+spillSlotStart, starts),
		lastUpdated: bufpool.NewResident(page.NewConst(types.NullSlot, img.N)),
		schemaEnc:   bufpool.NewResident(page.NewConst(0, img.N)),
	})
	r.sealed.Store(true)
	r.insertBlock.Store(nil)
	s.stats.Seals.Add(1)
	s.stats.Inserts.Add(uint64(installed))
	// New transactions must commit after every installed record's time.
	s.tm.AdvanceTo(maxStart)

	if _, err := s.addInsertRange(); err != nil {
		return installed, err
	}

	if row != nil {
		vals := make([]types.Value, ncols)
		for slot := 0; slot < img.N; slot++ {
			if starts.Get(slot) == types.NullSlot {
				continue
			}
			for c := range vals {
				vals[c] = s.decodeValue(c, pages[c].Get(slot))
			}
			if err := row(types.DecodeInt64(keyPage.Get(slot)), vals); err != nil {
				return installed, err
			}
		}
	}
	return installed, nil
}

// RangeImageRows decodes an image's visible rows to value tuples — the
// restore fallback when the image cannot install directly (ErrImageShape:
// the restoring store runs a different RangeSize). Rows then BulkLoad like
// any checkpointed row batch.
func (s *Store) RangeImageRows(img RangeImage) ([][]types.Value, error) {
	ncols := s.schema.NumCols()
	if len(img.Cols) != ncols {
		return nil, fmt.Errorf("core: range image has %d columns, schema has %d", len(img.Cols), ncols)
	}
	pages := make([]page.Reader, ncols)
	for c := range pages {
		p, err := page.UnmarshalEncoded(img.Cols[c])
		if err != nil {
			return nil, fmt.Errorf("core: range image column %d: %w", c, err)
		}
		if p.Len() != img.N {
			return nil, fmt.Errorf("core: range image column %d has %d slots, want %d", c, p.Len(), img.N)
		}
		pages[c] = p
	}
	starts, err := page.UnmarshalEncoded(img.Starts)
	if err != nil {
		return nil, fmt.Errorf("core: range image start page: %w", err)
	}
	if starts.Len() != img.N {
		return nil, fmt.Errorf("core: range image start page has %d slots, want %d", starts.Len(), img.N)
	}
	var rows [][]types.Value
	for slot := 0; slot < img.N; slot++ {
		if starts.Get(slot) == types.NullSlot {
			continue
		}
		vals := make([]types.Value, ncols)
		for c := range vals {
			vals[c] = s.decodeValue(c, pages[c].Get(slot))
		}
		rows = append(rows, vals)
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Spill-descriptor references (checkpoint v3's framePageRef)

// RangeRef is one cold range's base pages referenced by spill descriptor:
// the same shape as RangeImage with (offset, length, CRC) descriptors in
// place of payload bytes. A checkpoint carrying refs is valid only together
// with the spill file that produced them; restore re-attaches that file and
// resolves each descriptor back to the identical page.MarshalEncoded bytes
// a framePageRange would have shipped.
type RangeRef struct {
	FirstRID types.RID
	N        int
	Rows     int
	MaxStart types.Timestamp
	Cols     []SpillDesc // per schema column
	Starts   SpillDesc   // Start Time meta page
}

// ColdRangeRefs captures every cold range as of ts by spill descriptor.
// Only ranges whose every page actually reached the spill file qualify — a
// spill-write failure leaves a resident page with no descriptor, and such a
// range simply falls back to the byte-shipping image path (the caller pairs
// ColdRangeRefs with ColdRangeImages over the remaining ranges). Exclusions
// match ColdRangeImages: row layout and dictionary tables never qualify.
func (s *Store) ColdRangeRefs(ts types.Timestamp) []RangeRef {
	if s.pool == nil || s.cfg.Layout == RowLayout {
		return nil
	}
	for _, d := range s.dicts {
		if d != nil {
			return nil // spilled codes are meaningless without this store's dict
		}
	}
	g := s.em.Pin()
	defer g.Unpin()
	var out []RangeRef
	for i := 0; i < s.rangeCount(); i++ {
		r := s.rangeAt(i)
		mv, ok := s.coldRange(r, ts)
		if !ok {
			continue
		}
		stDesc, ok := mv.startTime.Desc()
		if !ok {
			continue
		}
		ref := RangeRef{
			FirstRID: r.firstRID,
			N:        r.n,
			Cols:     make([]SpillDesc, s.schema.NumCols()),
			Starts:   stDesc,
		}
		st := mv.startTime.MustPin()
		for slot, n := 0, st.Len(); slot < n; slot++ {
			if raw := st.Get(slot); raw != types.NullSlot {
				ref.Rows++
				if raw > ref.MaxStart {
					ref.MaxStart = raw
				}
			}
		}
		mv.startTime.Unpin()
		complete := true
		for c := range ref.Cols {
			cv := r.colVer(c)
			if cv == nil {
				complete = false
				break
			}
			if ref.Cols[c], ok = cv.data.Desc(); !ok {
				complete = false
				break
			}
		}
		if complete {
			out = append(out, ref)
		}
	}
	return out
}

// ResolveRangeRef reads a RangeRef's frames back from the attached spill
// file into a RangeImage (the restore path). Every frame is CRC-verified by
// the spill sink, so a descriptor paired with the wrong spill file fails
// loudly here instead of installing corrupt pages.
func (s *Store) ResolveRangeRef(ref RangeRef) (RangeImage, error) {
	img := RangeImage{
		FirstRID: ref.FirstRID,
		N:        ref.N,
		Rows:     ref.Rows,
		MaxStart: ref.MaxStart,
		Cols:     make([][]byte, len(ref.Cols)),
	}
	if s.cfg.Spill == nil {
		return img, fmt.Errorf("core: checkpoint references spilled pages but no spill file is attached")
	}
	var err error
	if img.Starts, err = s.ReadSpill(ref.Starts); err != nil {
		return img, fmt.Errorf("core: range ref start page: %w", err)
	}
	for c, d := range ref.Cols {
		if img.Cols[c], err = s.ReadSpill(d); err != nil {
			return img, fmt.Errorf("core: range ref column %d: %w", c, err)
		}
	}
	return img, nil
}
