package core

import (
	"errors"
	"fmt"

	"lstore/internal/page"
	"lstore/internal/types"
)

// Range images: the checkpoint fast path for cold base data. A sealed range
// that has never taken a tail record is exactly its encoded base pages plus
// its Start Time page — so the checkpoint carries those pages VERBATIM
// (page.MarshalEncoded) instead of expanding them into row tuples, and
// restore installs them back without a decode/re-encode round-trip. Hot
// ranges (any tail lineage) and string-dictionary tables keep the row path:
// their state is not reproducible from base pages alone.

// RangeImage is one cold range's serialized base pages.
type RangeImage struct {
	FirstRID types.RID // original first base RID (informational; restore re-assigns)
	N        int       // slot count (the source store's RangeSize)
	Rows     int       // visible rows (start != ∅) the image carries
	MaxStart types.Timestamp
	Cols     [][]byte // per schema column, page.MarshalEncoded
	Starts   []byte   // Start Time meta page, page.MarshalEncoded
}

// ErrImageShape reports a RangeImage that cannot install into this store's
// layout (different RangeSize); callers fall back to row-wise loading.
var ErrImageShape = errors.New("core: range image shape mismatch")

// coldRange reports whether r can be captured as a page image at snapshot
// ts: sealed, zero tail lineage (no update/delete ever appended — base pages
// ARE the range's whole state), and every Start Time slot either ∅ or a
// plain committed timestamp at or before ts (a row sealed after the cut
// would smuggle post-snapshot state into the image).
func (s *Store) coldRange(r *updateRange, ts types.Timestamp) (mv *metaVersion, ok bool) {
	if !r.sealed.Load() || r.appended.Load() != 0 || r.n != s.cfg.RangeSize {
		return nil, false
	}
	mv = r.meta.Load()
	if mv == nil {
		return nil, false
	}
	st := mv.startTime
	for i, n := 0, st.Len(); i < n; i++ {
		raw := st.Get(i)
		if raw == types.NullSlot {
			continue
		}
		if types.IsTxnID(raw) || raw > ts {
			return nil, false
		}
	}
	return mv, true
}

// ColdRangeImages captures every cold range as of ts. Row-layout stores and
// tables with string columns return nil (their pages alias store-level state
// the image cannot carry); those tables checkpoint row-wise as before.
func (s *Store) ColdRangeImages(ts types.Timestamp) []RangeImage {
	if s.cfg.Layout == RowLayout {
		return nil
	}
	for _, d := range s.dicts {
		if d != nil {
			return nil // string slots are codes into the store's dictionary
		}
	}
	g := s.em.Pin()
	defer g.Unpin()
	var out []RangeImage
	for i := 0; i < s.rangeCount(); i++ {
		r := s.rangeAt(i)
		mv, ok := s.coldRange(r, ts)
		if !ok {
			continue
		}
		img := RangeImage{
			FirstRID: r.firstRID,
			N:        r.n,
			Cols:     make([][]byte, s.schema.NumCols()),
			Starts:   page.MarshalEncoded(mv.startTime),
		}
		st := mv.startTime
		for slot, n := 0, st.Len(); slot < n; slot++ {
			if raw := st.Get(slot); raw != types.NullSlot {
				img.Rows++
				if raw > img.MaxStart {
					img.MaxStart = raw
				}
			}
		}
		complete := true
		for c := range img.Cols {
			cv := r.colVer(c)
			if cv == nil {
				complete = false
				break
			}
			img.Cols[c] = page.MarshalEncoded(cv.data)
		}
		if complete {
			out = append(out, img)
		}
	}
	return out
}

// InstallRangeImage transforms the store's CURRENT (completely unused)
// insert range into a sealed range holding the image's pages, then opens a
// fresh insert range. Records keep their original commit timestamps — the
// caller must afterwards be able to rely on the clock having passed them,
// which InstallRangeImage guarantees via txn.Manager.AdvanceTo. row is
// called once per visible row with its new base RID's key and decoded
// values (the restore path re-logs them into the WAL); a nil row skips the
// callback. Returns the number of visible rows installed.
//
// Only restore-time callers may use this: the unused-insert-range
// precondition makes it safe, and a concurrent writer would violate it.
func (s *Store) InstallRangeImage(img RangeImage, row func(key int64, vals []types.Value) error) (int, error) {
	if img.N != s.cfg.RangeSize || s.cfg.Layout == RowLayout {
		return 0, ErrImageShape
	}
	ncols := s.schema.NumCols()
	if len(img.Cols) != ncols {
		return 0, fmt.Errorf("core: range image has %d columns, schema has %d", len(img.Cols), ncols)
	}
	for _, d := range s.dicts {
		if d != nil {
			return 0, ErrImageShape
		}
	}
	pages := make([]page.Reader, ncols)
	for c := range pages {
		p, err := page.UnmarshalEncoded(img.Cols[c])
		if err != nil {
			return 0, fmt.Errorf("core: range image column %d: %w", c, err)
		}
		if p.Len() != img.N {
			return 0, fmt.Errorf("core: range image column %d has %d slots, want %d", c, p.Len(), img.N)
		}
		pages[c] = p
	}
	starts, err := page.UnmarshalEncoded(img.Starts)
	if err != nil {
		return 0, fmt.Errorf("core: range image start page: %w", err)
	}
	if starts.Len() != img.N {
		return 0, fmt.Errorf("core: range image start page has %d slots, want %d", starts.Len(), img.N)
	}

	s.insertMu.Lock()
	defer s.insertMu.Unlock()
	r := s.curInsert.Load()
	ib := r.insertBlock.Load()
	if ib == nil || ib.rids.Used() != 0 || ib.pending.Load() != 0 {
		return 0, fmt.Errorf("core: install target insert range already in use")
	}

	// Index every visible row under its NEW base RID, validating as we go.
	installed := 0
	var maxStart types.Timestamp
	keyPage := pages[s.schema.Key]
	for slot := 0; slot < img.N; slot++ {
		raw := starts.Get(slot)
		if raw == types.NullSlot {
			continue
		}
		if types.IsTxnID(raw) {
			return installed, fmt.Errorf("core: range image start slot %d is an unresolved transaction id", slot)
		}
		baseRID := r.firstRID + types.RID(slot)
		ksv := keyPage.Get(slot)
		if ksv == types.NullSlot {
			return installed, fmt.Errorf("core: range image slot %d has a null primary key", slot)
		}
		if _, ok := s.primary.PutIfAbsent(ksv, baseRID); !ok {
			return installed, fmt.Errorf("%w: range image key %d", ErrDuplicateKey, types.DecodeInt64(ksv))
		}
		for c, sec := range s.secondary {
			if sv := pages[c].Get(slot); sv != types.NullSlot {
				sec.Add(sv, baseRID)
			}
		}
		if raw > maxStart {
			maxStart = raw
		}
		installed++
	}

	// Publish: column versions, then meta, then sealed — the order a normal
	// seal uses. TPS 0 on everything: zero tail lineage by construction.
	for c := range pages {
		r.cols[c].Store(&colVersion{tps: 0, data: pages[c]})
	}
	r.meta.Store(&metaVersion{
		tps:         0,
		startTime:   starts,
		lastUpdated: page.NewConst(types.NullSlot, img.N),
		schemaEnc:   page.NewConst(0, img.N),
	})
	r.sealed.Store(true)
	r.insertBlock.Store(nil)
	s.stats.Seals.Add(1)
	s.stats.Inserts.Add(uint64(installed))
	// New transactions must commit after every installed record's time.
	s.tm.AdvanceTo(maxStart)

	if _, err := s.addInsertRange(); err != nil {
		return installed, err
	}

	if row != nil {
		vals := make([]types.Value, ncols)
		for slot := 0; slot < img.N; slot++ {
			if starts.Get(slot) == types.NullSlot {
				continue
			}
			for c := range vals {
				vals[c] = s.decodeValue(c, pages[c].Get(slot))
			}
			if err := row(types.DecodeInt64(keyPage.Get(slot)), vals); err != nil {
				return installed, err
			}
		}
	}
	return installed, nil
}

// RangeImageRows decodes an image's visible rows to value tuples — the
// restore fallback when the image cannot install directly (ErrImageShape:
// the restoring store runs a different RangeSize). Rows then BulkLoad like
// any checkpointed row batch.
func (s *Store) RangeImageRows(img RangeImage) ([][]types.Value, error) {
	ncols := s.schema.NumCols()
	if len(img.Cols) != ncols {
		return nil, fmt.Errorf("core: range image has %d columns, schema has %d", len(img.Cols), ncols)
	}
	pages := make([]page.Reader, ncols)
	for c := range pages {
		p, err := page.UnmarshalEncoded(img.Cols[c])
		if err != nil {
			return nil, fmt.Errorf("core: range image column %d: %w", c, err)
		}
		if p.Len() != img.N {
			return nil, fmt.Errorf("core: range image column %d has %d slots, want %d", c, p.Len(), img.N)
		}
		pages[c] = p
	}
	starts, err := page.UnmarshalEncoded(img.Starts)
	if err != nil {
		return nil, fmt.Errorf("core: range image start page: %w", err)
	}
	if starts.Len() != img.N {
		return nil, fmt.Errorf("core: range image start page has %d slots, want %d", starts.Len(), img.N)
	}
	var rows [][]types.Value
	for slot := 0; slot < img.N; slot++ {
		if starts.Get(slot) == types.NullSlot {
			continue
		}
		vals := make([]types.Value, ncols)
		for c := range vals {
			vals[c] = s.decodeValue(c, pages[c].Get(slot))
		}
		rows = append(rows, vals)
	}
	return rows, nil
}
