package core

import "lstore/internal/types"

// This file is the per-column merge-lineage subsystem of §4.2. Every update
// range owns one mergeLineage; every column (and the merge-maintained
// meta-columns) owns one lineage record inside it.
//
// Invariants (also recorded in ROADMAP.md):
//
//   - Per-column TPS is monotone: a merge publishes max(old, new), never a
//     smaller value, no matter which schedule produced it.
//   - Full merges and independent per-column merges commute: a full merge
//     starts each column at that column's own cursor (its effective start),
//     so tail records a per-column merge already consolidated are never
//     re-applied over newer base values.
//
// The lineage is guarded by the owning range's mergeMu: merges of one range
// serialize, merges of distinct ranges run concurrently (the merge pool).

// colLineage is one column's merge-state record: cursor is the flat count of
// the range's tail records whose effects this column's base version reflects
// (records at flat position < cursor are consolidated); tps is the published
// in-page lineage counter — the RID of the newest consolidated tail record,
// stamped into the column's base version for readers.
type colLineage struct {
	cursor int64
	tps    types.RID
}

// advance folds a consumed tail prefix ending at flat position end (whose
// newest record is newTPS) into the record and returns the TPS to publish:
// max(old, new), so no schedule ever regresses the lineage.
func (cl *colLineage) advance(end int64, newTPS types.RID) types.RID {
	if end > cl.cursor {
		cl.cursor = end
	}
	if newTPS > cl.tps {
		cl.tps = newTPS
	}
	return cl.tps
}

// mergeLineage is the merge state of one update range.
type mergeLineage struct {
	cols []colLineage
	meta colLineage // lineage of Last Updated Time + base Schema Encoding
}

func newMergeLineage(ncols int) mergeLineage {
	return mergeLineage{cols: make([]colLineage, ncols)}
}

// cursor returns column c's consolidation cursor.
func (l *mergeLineage) cursor(c int) int64 { return l.cols[c].cursor }

// tps returns column c's published lineage counter.
func (l *mergeLineage) tps(c int) types.RID { return l.cols[c].tps }

// minCursor returns the least-advanced cursor across columns — the effective
// start of a full merge and the range's unconsumed-backlog watermark.
func (l *mergeLineage) minCursor() int64 {
	if len(l.cols) == 0 {
		return 0
	}
	min := l.cols[0].cursor
	for _, cl := range l.cols[1:] {
		if cl.cursor < min {
			min = cl.cursor
		}
	}
	return min
}

// advance publishes a merge of the prefix ending at end on behalf of column
// c and returns the TPS to stamp into its new base version.
func (l *mergeLineage) advance(c int, end int64, newTPS types.RID) types.RID {
	return l.cols[c].advance(end, newTPS)
}

// advanceMeta is advance for the merge-maintained meta-columns (full merges
// only; per-column merges leave the meta-columns alone). The meta cursor is
// bookkeeping symmetry — backlog and effective starts derive only from the
// data columns.
func (l *mergeLineage) advanceMeta(end int64, newTPS types.RID) types.RID {
	return l.meta.advance(end, newTPS)
}

// ColumnLineage is one column's lineage record as reported by introspection.
type ColumnLineage struct {
	Cursor int64     // tail records consolidated into the base version
	TPS    types.RID // published in-page lineage counter
}

// RangeLineage is the merge state of one update range (introspection: the
// lstore-inspect lineage dump).
type RangeLineage struct {
	Range   int             // range index
	Sealed  bool            // unsealed ranges have no base versions yet
	Tail    int64           // tail records appended so far
	Backlog int64           // tail records not yet consumed by every column
	Cols    []ColumnLineage // one record per schema column
}

// LineageSnapshot reports every range's per-column merge lineage.
func (s *Store) LineageSnapshot() []RangeLineage {
	n := s.rangeCount()
	out := make([]RangeLineage, 0, n)
	for i := 0; i < n; i++ {
		r := s.rangeAt(i)
		r.mergeMu.Lock()
		rl := RangeLineage{
			Range:  i,
			Sealed: r.sealed.Load(),
			Tail:   r.appended.Load(),
			Cols:   make([]ColumnLineage, len(r.lineage.cols)),
		}
		rl.Backlog = rl.Tail - r.lineage.minCursor()
		for c, cl := range r.lineage.cols {
			rl.Cols[c] = ColumnLineage{Cursor: cl.cursor, TPS: cl.tps}
		}
		r.mergeMu.Unlock()
		out = append(out, rl)
	}
	return out
}
