// Package lint is lstore's static-analysis suite: a small, dependency-free
// analysis framework (the repo builds with the standard library only, so
// golang.org/x/tools/go/analysis is off the table) plus the analyzers that
// machine-check the engine's standing invariants from ROADMAP.md:
//
//   - walerr: WAL append/flush errors must be propagated or poison the
//     transaction, never dropped (the PR 5 bug class).
//   - scanpath: every read path outside internal/core must go through the
//     one scan engine, never decode pages directly.
//   - lockguard: `// guarded by <mu>` field annotations are enforced by an
//     intraprocedural lock-state walk, and the mutex acquisition graph must
//     stay acyclic.
//   - nodeterminism: no wall-clock time, global randomness, or map-order
//     dependent output inside internal/core and internal/wal, so replay and
//     recovery stay deterministic.
//
// Packages are loaded through `go list -export` and type-checked from
// source against compiler export data, which works offline and needs no
// third-party loader. Run the whole suite with `go run ./cmd/lstore-lint ./...`.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one named check. Run inspects a single type-checked
// package through its Pass and reports diagnostics.
type Analyzer struct {
	Name string // short lowercase identifier, shown in diagnostics
	Doc  string // one-paragraph description
	Run  func(*Pass) error
}

// A Pass is one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suppressed reports whether a suppression marker comment (for example
// "//lockguard:ok reclaimed under epoch") sits on the same line as pos.
// Markers are expected to carry a reason after the prefix; an empty reason
// still suppresses, but reads as an unexplained waiver in review.
func (p *Pass) Suppressed(pos token.Pos, marker string) bool {
	position := p.Pkg.Fset.Position(pos)
	for _, c := range p.Pkg.commentsOnLine(position.Filename, position.Line) {
		text := strings.TrimPrefix(c, "//")
		text = strings.TrimSpace(text)
		if text == marker || strings.HasPrefix(text, marker+" ") || strings.HasPrefix(text, marker+":") {
			return true
		}
	}
	return false
}

// Parents returns the parent map for file, built lazily: for every node, the
// syntactic parent it hangs off.
func (p *Package) Parents(file *ast.File) map[ast.Node]ast.Node {
	if p.parents == nil {
		p.parents = make(map[*ast.File]map[ast.Node]ast.Node)
	}
	if m, ok := p.parents[file]; ok {
		return m
	}
	m := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			m[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	p.parents[file] = m
	return m
}

// commentsOnLine returns the text of every comment whose position is on the
// given line of filename.
func (p *Package) commentsOnLine(filename string, line int) []string {
	if p.lineComments == nil {
		p.lineComments = make(map[string]map[int][]string)
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := p.Fset.Position(c.Pos())
					byLine := p.lineComments[pos.Filename]
					if byLine == nil {
						byLine = make(map[int][]string)
						p.lineComments[pos.Filename] = byLine
					}
					// A block comment can span lines; key it by its first.
					byLine[pos.Line] = append(byLine[pos.Line], c.Text)
				}
			}
		}
	}
	return p.lineComments[filename][line]
}

// PathHasSuffixSeg reports whether path ends with the "/"-prefixed segment
// suffix seg, or contains it as an interior segment boundary. It is how
// analyzers scope themselves to logical packages (e.g. "/internal/core")
// without hard-coding the module path, which also lets fixture packages
// under testdata opt in by mirroring the directory layout.
func PathHasSuffixSeg(path, seg string) bool {
	return strings.HasSuffix(path, seg) || strings.Contains(path, seg+"/")
}

// FuncFor resolves a call expression to the invoked *types.Func, or nil for
// calls through function values, type conversions, and builtins.
func FuncFor(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	}
	return nil
}
