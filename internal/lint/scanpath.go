package lint

import (
	"strconv"
)

// ScanPathAnalyzer enforces the "one scan engine" invariant: the page codecs
// (internal/page), the page directory (internal/pagedir), and the buffer
// pool (internal/bufpool) are implementation details of internal/core, where
// rangeScanner/probeSlot and the Query planner own every read path. Any
// other package that imports them is building a second, unvalidated read
// path — the exact bug class of stale-read shortcuts in HTAP engines — and
// gets flagged at the import. A package that pins pool handles outside core
// would additionally dodge the pin/unpin discipline the scan engine
// guarantees.
var ScanPathAnalyzer = &Analyzer{
	Name: "scanpath",
	Doc: "flags imports of internal/page, internal/pagedir, or internal/bufpool " +
		"outside internal/core; reads must go through the scan engine (rangeScanner/" +
		"probeSlot/Query), never decode pages, walk slots, or pin pool frames directly",
	Run: runScanPath,
}

const scanPathMarker = "scanpath:ok"

// scanPathSealed are the package path segments only internal/core may import.
// The sealed packages' own sources are exempt (bufpool builds on page).
var scanPathSealed = []string{"/internal/page", "/internal/pagedir", "/internal/bufpool"}

func runScanPath(pass *Pass) error {
	if PathHasSuffixSeg(pass.Pkg.ImportPath, "/internal/core") {
		return nil // the scan engine itself
	}
	for _, seg := range scanPathSealed {
		if PathHasSuffixSeg(pass.Pkg.ImportPath, seg) {
			return nil // the sealed package's own sources
		}
	}
	for _, file := range pass.Pkg.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			for _, seg := range scanPathSealed {
				if !PathHasSuffixSeg(path, seg) {
					continue
				}
				if pass.Suppressed(imp.Pos(), scanPathMarker) {
					continue
				}
				pass.Reportf(imp.Pos(), "package %s imports %s: page decoding and slot walks outside internal/core bypass the one scan engine (use rangeScanner/probeSlot via the Query API)", pass.Pkg.ImportPath, path)
			}
		}
	}
	return nil
}
