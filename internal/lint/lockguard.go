package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// LockGuardAnalyzer enforces the `// guarded by <mu>` annotation: a struct
// field whose doc or line comment starts with "guarded by tmu" may only be
// touched while the sibling mutex tmu of the same instance is held. The check
// is an intraprocedural lock-state walk: branch-sensitive (if/else states are
// intersected, terminated branches discarded), defer-aware (`defer mu.Unlock()`
// keeps the lock held to the end of the body), and mode-aware (writes to a
// field guarded by a sync.RWMutex held in read mode are flagged). Helper
// functions that run with a lock already held declare it with a
// `// locked: recv.mu` doc line. While walking, the analyzer also records the
// mutex acquisition graph (Type.field nodes, including lock sets reached
// through same-package calls) and rejects ordering cycles, the discipline that
// keeps db.mu/commitMu/ckptRoundMu deadlock-free.
var LockGuardAnalyzer = &Analyzer{
	Name: "lockguard",
	Doc: "checks `// guarded by <mu>` field annotations with an " +
		"intraprocedural lock-state walk, and rejects mutex acquisition-order " +
		"cycles across db.mu/commitMu/ckptRoundMu and friends",
	Run: runLockGuard,
}

const lockGuardMarker = "lockguard:ok"

var (
	guardedRe = regexp.MustCompile(`^guarded by ([A-Za-z_]\w*)`)
	lockedRe  = regexp.MustCompile(`^locked: ([A-Za-z_]\w*)\.([A-Za-z_]\w*)`)
)

// guardInfo is one annotated field: which sibling mutex guards it.
type guardInfo struct {
	mu       string // sibling mutex field name
	rw       bool   // the mutex is a sync.RWMutex (writes need Lock, not RLock)
	typeName string // declaring struct type, for messages
	field    string
}

// heldLock is one lock in the current state.
type heldLock struct {
	mode byte   // 'W' (Lock) or 'R' (RLock)
	node string // type-level name "Type.mu" for the acquisition graph
}

// heldSet maps canonical lock expressions ("l.mu", "s.ranges[i].tmu") to the
// mode they are held in.
type heldSet map[string]heldLock

type lockGuard struct {
	pass    *Pass
	info    *types.Info
	guards  map[token.Pos]guardInfo         // field defining Pos -> guard
	closure map[*types.Func]map[string]bool // transitive acquire sets
	edges   map[string]map[string]token.Pos // acquisition graph, first site
	handled map[*ast.FuncLit]bool           // func lits already walked
	ctor    map[types.Object]bool           // locals still under construction
}

func runLockGuard(pass *Pass) error {
	lg := &lockGuard{
		pass:    pass,
		info:    pass.Pkg.Info,
		guards:  make(map[token.Pos]guardInfo),
		edges:   make(map[string]map[string]token.Pos),
		closure: make(map[*types.Func]map[string]bool),
	}
	lg.collectGuards()
	lg.buildClosure()
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lg.handled = make(map[*ast.FuncLit]bool)
			lg.ctor = make(map[types.Object]bool)
			lg.walkStmt(fd.Body, lg.initialState(fd))
		}
	}
	lg.reportCycles()
	return nil
}

// ---------------------------------------------------------------------------
// Annotation collection

func (lg *lockGuard) collectGuards() {
	for _, file := range lg.pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				mu := guardAnnotation(fld)
				if mu == "" {
					continue
				}
				sib := findField(st, mu)
				if sib == nil {
					lg.pass.Reportf(fld.Pos(), "guarded by %s, but %s has no field named %s", mu, ts.Name.Name, mu)
					continue
				}
				rw, isMutex := lg.mutexKind(sib.Type)
				if !isMutex {
					lg.pass.Reportf(fld.Pos(), "guarded by %s, but %s.%s is not a sync.Mutex or sync.RWMutex", mu, ts.Name.Name, mu)
					continue
				}
				for _, name := range fld.Names {
					obj := lg.info.Defs[name]
					if obj == nil {
						continue
					}
					lg.guards[obj.Pos()] = guardInfo{mu: mu, rw: rw, typeName: ts.Name.Name, field: name.Name}
				}
			}
			return true
		})
	}
}

// guardAnnotation extracts the mutex name from a field's comments. Only a
// comment line that starts with "guarded by" counts — prose that merely
// mentions the phrase mid-sentence does not annotate.
func guardAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if m := guardedRe.FindStringSubmatch(text); m != nil {
				return m[1]
			}
		}
	}
	return ""
}

func findField(st *ast.StructType, name string) *ast.Field {
	for _, fld := range st.Fields.List {
		for _, n := range fld.Names {
			if n.Name == name {
				return fld
			}
		}
	}
	return nil
}

// mutexKind reports whether the field type is a sync mutex and whether it is
// the RW flavor.
func (lg *lockGuard) mutexKind(typeExpr ast.Expr) (rw, isMutex bool) {
	t := lg.info.TypeOf(typeExpr)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false, false
	}
	switch named.Obj().Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// ---------------------------------------------------------------------------
// Interprocedural acquire sets (for the acquisition graph only)

func (lg *lockGuard) buildClosure() {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range lg.pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := lg.info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	calls := make(map[*types.Func][]*types.Func)
	for fn, fd := range decls {
		acq := make(map[string]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if x, _, isAcq, isLockOp := lg.lockOp(call); isLockOp {
				if isAcq {
					acq[lg.nodeFor(x)] = true
				}
				return true
			}
			if callee := FuncFor(lg.info, call); callee != nil {
				if _, local := decls[callee]; local {
					calls[fn] = append(calls[fn], callee)
				}
			}
			return true
		})
		lg.closure[fn] = acq
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			for _, callee := range callees {
				for node := range lg.closure[callee] {
					if !lg.closure[fn][node] {
						lg.closure[fn][node] = true
						changed = true
					}
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Lock-state walk

// initialState seeds the held set from `// locked: recv.mu` doc lines.
func (lg *lockGuard) initialState(fd *ast.FuncDecl) heldSet {
	st := make(heldSet)
	if fd.Doc == nil {
		return st
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		m := lockedRe.FindStringSubmatch(text)
		if m == nil {
			continue
		}
		key := m[1] + "." + m[2]
		node := key
		if rt := recvTypeName(fd); rt != "" && m[1] == recvName(fd) {
			node = rt + "." + m[2]
		}
		st[key] = heldLock{mode: 'W', node: node}
	}
	return st
}

func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch e := t.(type) {
		case *ast.StarExpr:
			t = e.X
		case *ast.IndexExpr:
			t = e.X
		case *ast.IndexListExpr:
			t = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

// walkStmt processes one statement against the current lock state, mutating
// st in place. It returns true when the statement terminates the control
// path (return, branch, panic) so callers can discard the branch on merges.
func (lg *lockGuard) walkStmt(s ast.Stmt, st heldSet) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range s.List {
			if lg.walkStmt(sub, st) {
				return true
			}
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if lg.applyLockOp(call, st) {
				return false
			}
			if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
				// Immediately-invoked literal: runs inline with this state and
				// its lock effects persist.
				for _, a := range call.Args {
					lg.checkExpr(a, st, false)
				}
				lg.handled[lit] = true
				return lg.walkStmt(lit.Body, st)
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				lg.checkExpr(s.X, st, false)
				return true
			}
		}
		lg.checkExpr(s.X, st, false)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			lg.checkExpr(r, st, false)
		}
		for _, l := range s.Lhs {
			lg.checkExpr(l, st, true)
		}
		lg.recordCtorLocals(s)
	case *ast.IncDecStmt:
		lg.checkExpr(s.X, st, true)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					lg.checkExpr(v, st, false)
				}
				lg.recordCtorSpec(vs)
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			lg.checkExpr(r, st, false)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.DeferStmt:
		if _, _, acq, isLockOp := lg.lockOp(s.Call); isLockOp {
			// defer mu.Unlock(): the lock stays held to the end of the body,
			// which is exactly what leaving the state untouched models.
			_ = acq
			return false
		}
		for _, a := range s.Call.Args {
			lg.checkExpr(a, st, false)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			// Deferred literal: approximate its lock environment with the
			// state at the defer site (the dominant `mu.Lock(); defer func(){...}()`
			// shape makes this the useful reading).
			lg.handled[lit] = true
			lg.walkStmt(lit.Body, cloneState(st))
		}
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			lg.checkExpr(a, st, false)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			// A goroutine body runs with no inherited locks.
			lg.handled[lit] = true
			lg.walkStmt(lit.Body, make(heldSet))
		}
	case *ast.IfStmt:
		if s.Init != nil {
			lg.walkStmt(s.Init, st)
		}
		lg.checkExpr(s.Cond, st, false)
		thenSt := cloneState(st)
		tThen := lg.walkStmt(s.Body, thenSt)
		if s.Else != nil {
			elseSt := cloneState(st)
			tElse := lg.walkStmt(s.Else, elseSt)
			switch {
			case tThen && tElse:
				return true
			case tThen:
				replaceState(st, elseSt)
			case tElse:
				replaceState(st, thenSt)
			default:
				base := cloneState(thenSt)
				intersectInto(st, base, elseSt)
			}
			return false
		}
		if !tThen {
			base := cloneState(st)
			intersectInto(st, thenSt, base)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			lg.walkStmt(s.Init, st)
		}
		lg.checkExpr(s.Cond, st, false)
		body := cloneState(st)
		lg.walkStmt(s.Body, body)
		if s.Post != nil {
			lg.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		lg.checkExpr(s.X, st, false)
		body := cloneState(st)
		lg.walkStmt(s.Body, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			lg.walkStmt(s.Init, st)
		}
		lg.checkExpr(s.Tag, st, false)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			cs := cloneState(st)
			for _, e := range cc.List {
				lg.checkExpr(e, cs, false)
			}
			for _, sub := range cc.Body {
				if lg.walkStmt(sub, cs) {
					break
				}
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			lg.walkStmt(s.Init, st)
		}
		lg.walkStmt(s.Assign, st)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			cs := cloneState(st)
			for _, sub := range cc.Body {
				if lg.walkStmt(sub, cs) {
					break
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			cs := cloneState(st)
			if cc.Comm != nil {
				lg.walkStmt(cc.Comm, cs)
			}
			for _, sub := range cc.Body {
				if lg.walkStmt(sub, cs) {
					break
				}
			}
		}
	case *ast.SendStmt:
		lg.checkExpr(s.Chan, st, false)
		lg.checkExpr(s.Value, st, false)
	case *ast.LabeledStmt:
		return lg.walkStmt(s.Stmt, st)
	}
	return false
}

// checkExpr flags guarded-field accesses in e against the current state.
// write marks the whole expression as a mutation context (assignment LHS,
// ++/--, address-taken operands).
func (lg *lockGuard) checkExpr(e ast.Expr, st heldSet, write bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if !lg.handled[n] {
				// A literal stored or passed along may run anywhere: assume
				// no inherited locks.
				lg.handled[n] = true
				lg.walkStmt(n.Body, make(heldSet))
			}
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND && !write {
				lg.checkExpr(n.X, st, true)
				return false
			}
		case *ast.CallExpr:
			lg.callEdges(n, st)
		case *ast.SelectorExpr:
			lg.checkSel(n, st, write)
		}
		return true
	})
}

// checkSel checks a single selector against the guard annotations.
func (lg *lockGuard) checkSel(sel *ast.SelectorExpr, st heldSet, write bool) {
	s := lg.info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	// Pos-keyed lookup so fields of generic instantiations resolve to their
	// declaration's annotation.
	g, ok := lg.guards[v.Pos()]
	if !ok {
		return
	}
	base := types.ExprString(sel.X)
	if strings.Contains(base, "(") {
		return // call-derived receiver: not canonicalizable, skip
	}
	if id := rootIdent(sel.X); id != nil && lg.ctor[lg.info.ObjectOf(id)] {
		return // object still under construction, not yet shared
	}
	key := base + "." + g.mu
	h, held := st[key]
	if !held {
		if !lg.pass.Suppressed(sel.Pos(), lockGuardMarker) {
			lg.pass.Reportf(sel.Sel.Pos(), "%s.%s is guarded by %s, but %s is not held here", g.typeName, g.field, g.mu, key)
		}
		return
	}
	if write && g.rw && h.mode == 'R' {
		if !lg.pass.Suppressed(sel.Pos(), lockGuardMarker) {
			lg.pass.Reportf(sel.Sel.Pos(), "write to %s.%s while %s is held in read mode; writes need %s.Lock()", g.typeName, g.field, key, key)
		}
	}
}

// ---------------------------------------------------------------------------
// Lock operations and the acquisition graph

// lockOp decodes a sync.(RW)Mutex Lock/RLock/Unlock/RUnlock call: the locker
// expression, the mode on acquire, and whether it acquires or releases.
func (lg *lockGuard) lockOp(call *ast.CallExpr) (locker ast.Expr, mode byte, acquire, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, 0, false, false
	}
	fn := FuncFor(lg.info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, 0, false, false
	}
	switch fn.Name() {
	case "Lock":
		return sel.X, 'W', true, true
	case "RLock":
		return sel.X, 'R', true, true
	case "Unlock", "RUnlock":
		return sel.X, 0, false, true
	}
	return nil, 0, false, false
}

// applyLockOp mutates st for a statement that is exactly a lock or unlock
// call, recording acquisition-order edges from every lock already held.
func (lg *lockGuard) applyLockOp(call *ast.CallExpr, st heldSet) bool {
	x, mode, acquire, ok := lg.lockOp(call)
	if !ok {
		return false
	}
	key := types.ExprString(x)
	if acquire {
		node := lg.nodeFor(x)
		for _, h := range st {
			lg.addEdge(h.node, node, call.Pos())
		}
		st[key] = heldLock{mode: mode, node: node}
	} else {
		delete(st, key)
	}
	return true
}

// nodeFor names a mutex expression at the type level ("Logger.mu") so the
// acquisition graph is instance-independent.
func (lg *lockGuard) nodeFor(x ast.Expr) string {
	if sel, ok := ast.Unparen(x).(*ast.SelectorExpr); ok {
		t := lg.info.TypeOf(sel.X)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + sel.Sel.Name
		}
	}
	if id, ok := ast.Unparen(x).(*ast.Ident); ok {
		return lg.pass.Pkg.Name + "." + id.Name
	}
	return types.ExprString(x)
}

// callEdges adds acquisition edges for locks the callee (transitively)
// acquires while the caller already holds locks.
func (lg *lockGuard) callEdges(call *ast.CallExpr, st heldSet) {
	if len(st) == 0 {
		return
	}
	fn := FuncFor(lg.info, call)
	if fn == nil {
		return
	}
	for node := range lg.closure[fn] {
		for _, h := range st {
			lg.addEdge(h.node, node, call.Pos())
		}
	}
}

// addEdge records from -> to (first site wins; same-node edges are skipped —
// ordering between instances of one type is out of scope).
func (lg *lockGuard) addEdge(from, to string, pos token.Pos) {
	if from == to {
		return
	}
	m := lg.edges[from]
	if m == nil {
		m = make(map[string]token.Pos)
		lg.edges[from] = m
	}
	if _, dup := m[to]; !dup {
		m[to] = pos
	}
}

// reportCycles runs a DFS over the acquisition graph and reports each
// distinct ordering cycle once.
func (lg *lockGuard) reportCycles() {
	nodeSet := make(map[string]bool)
	for from, tos := range lg.edges {
		nodeSet[from] = true
		for to := range tos {
			nodeSet[to] = true
		}
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	state := make(map[string]int) // 0 unvisited, 1 on stack, 2 done
	reported := make(map[string]bool)
	var stack []string
	var dfs func(n string)
	dfs = func(n string) {
		state[n] = 1
		stack = append(stack, n)
		tos := make([]string, 0, len(lg.edges[n]))
		for to := range lg.edges[n] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			switch state[to] {
			case 0:
				dfs(to)
			case 1:
				i := 0
				for j, s := range stack {
					if s == to {
						i = j
						break
					}
				}
				cyc := append(append([]string{}, stack[i:]...), to)
				sig := cycleSig(cyc[:len(cyc)-1])
				if !reported[sig] {
					reported[sig] = true
					lg.pass.Reportf(lg.edges[n][to], "mutex acquisition-order cycle: %s", strings.Join(cyc, " -> "))
				}
			}
		}
		stack = stack[:len(stack)-1]
		state[n] = 2
	}
	for _, n := range nodes {
		if state[n] == 0 {
			dfs(n)
		}
	}
}

// cycleSig canonicalizes a cycle by rotating its smallest node first.
func cycleSig(cyc []string) string {
	if len(cyc) == 0 {
		return ""
	}
	min := 0
	for i, s := range cyc {
		if s < cyc[min] {
			min = i
		}
	}
	rot := append(append([]string{}, cyc[min:]...), cyc[:min]...)
	return strings.Join(rot, "->")
}

// ---------------------------------------------------------------------------
// Small helpers

func cloneState(st heldSet) heldSet {
	out := make(heldSet, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

func replaceState(dst, src heldSet) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// intersectInto sets dst to the locks held in both a and b, demoting to read
// mode when either side only holds the read lock.
func intersectInto(dst, a, b heldSet) {
	for k := range dst {
		delete(dst, k)
	}
	for k, va := range a {
		if vb, held := b[k]; held {
			if vb.mode == 'R' {
				va.mode = 'R'
			}
			dst[k] = va
		}
	}
}

// recordCtorLocals tracks `x := &T{...}` / `x := T{...}` / `x := new(T)`
// locals: until x escapes, its guarded fields may be initialized without the
// lock (the object is not yet shared).
func (lg *lockGuard) recordCtorLocals(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, l := range s.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := lg.info.ObjectOf(id)
		if obj == nil {
			continue
		}
		if isCtorExpr(s.Rhs[i]) {
			lg.ctor[obj] = true
		} else {
			delete(lg.ctor, obj)
		}
	}
}

func (lg *lockGuard) recordCtorSpec(vs *ast.ValueSpec) {
	if len(vs.Names) != len(vs.Values) {
		return
	}
	for i, id := range vs.Names {
		if !isCtorExpr(vs.Values[i]) {
			continue
		}
		if obj := lg.info.ObjectOf(id); obj != nil {
			lg.ctor[obj] = true
		}
	}
}

func isCtorExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// rootIdent returns the identifier at the base of a selector/index chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
