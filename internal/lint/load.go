package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package (non-test files only — test
// files are deliberately outside the invariants the analyzers enforce).
type Package struct {
	ImportPath string
	Name       string
	Dir        string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	parents      map[*ast.File]map[ast.Node]ast.Node
	lineComments map[string]map[int][]string
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
	DepsErrors []struct{ Err string }
}

// Load resolves patterns (go package patterns, relative to dir) and returns
// the matched packages parsed and type-checked from source. Dependencies are
// imported from compiler export data produced by `go list -export`, so
// loading works offline and without golang.org/x/tools.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Standard,Error,DepsErrors",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var roots []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		p := new(listedPkg)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && p.Name != "" && len(p.GoFiles) > 0 {
			roots = append(roots, p)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(exp)
	})

	pkgs := make([]*Package, 0, len(roots))
	for _, root := range roots {
		pkg, err := typecheck(fset, imp, root)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, root *listedPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(root.GoFiles))
	for _, name := range root.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(root.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(root.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", root.ImportPath, typeErrs[0])
	}
	return &Package{
		ImportPath: root.ImportPath,
		Name:       root.Name,
		Dir:        root.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
