// Package walerr is the walerr analyzer fixture: every way of dropping a WAL
// error that must be flagged, next to the intended shapes that must stay
// clean. The want comments are checked by fixture_test.go.
package walerr

import "lstore/internal/wal"

type txnSink struct{ err error }

func (s *txnSink) poison(err error) { s.err = err }

// --- flagged patterns ---------------------------------------------------

func discarded(l *wal.Logger) {
	l.Flush() // want "error result of wal.Flush discarded"
}

func blankAssigned(l *wal.Logger) {
	_, _ = l.Append(wal.Record{Kind: wal.KindBegin}) // want "assigned to _"
}

func assignedNeverRead(l *wal.Logger) {
	err := l.Flush()
	if err != nil {
		return
	}
	err = l.Flush() // want "assigned to err but never read"
}

func checkedButSwallowed(l *wal.Logger) {
	if err := l.Flush(); err != nil { // want "checked but swallowed"
		println("flush failed")
	}
}

func deferredAway(l *wal.Logger) {
	defer l.Flush() // want "discarded by go/defer"
}

func commitDropped(l *wal.Logger) uint64 {
	lsn, _ := l.AppendCommit(7) // want "assigned to _"
	return lsn
}

// --- clean patterns -----------------------------------------------------

func propagated(l *wal.Logger) error {
	if err := l.Flush(); err != nil {
		return err
	}
	return nil
}

func poisoned(l *wal.Logger, s *txnSink) {
	if _, err := l.Append(wal.Record{Kind: wal.KindAbort}); err != nil {
		s.poison(err)
	}
}

func returnedDirectly(l *wal.Logger) (uint64, error) {
	return l.Append(wal.Record{Kind: wal.KindBegin})
}

func waived(l *wal.Logger) {
	l.Flush() //wal:ignore-err fixture: intentional, reason recorded here
}
