// Package lockguard is the lockguard analyzer fixture: guarded-field
// annotations with violations (unguarded reads, writes under RLock, a lock
// ordering cycle, a dangling annotation) next to the intended patterns that
// must stay clean (defer unlock, locked: preconditions, constructor locals,
// branch-merged acquisition, deferred closures).
package lockguard

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) bad() int {
	return c.n // want "counter.n is guarded by mu"
}

func (c *counter) badAfterUnlock() int {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	return n + c.n // want "counter.n is guarded by mu"
}

// addLocked runs with the lock already held, declared by the precondition.
//
// locked: c.mu
func (c *counter) addLocked(d int) { c.n += d }

func (c *counter) viaHelper(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addLocked(d)
}

func newCounter() *counter {
	c := &counter{}
	c.n = 1 // constructor-local object, not yet shared: clean
	return c
}

func (c *counter) badGoroutine() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want "counter.n is guarded by mu"
	}()
}

func (c *counter) deferredCleanup() {
	c.mu.Lock()
	defer func() {
		c.n = 0 // runs with the state at the defer site: clean
		c.mu.Unlock()
	}()
	c.n++
}

func (c *counter) waived() int {
	return c.n //lockguard:ok fixture: intentionally unguarded
}

type table struct {
	rw   sync.RWMutex
	rows map[int]int // guarded by rw
}

func (t *table) get(k int) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.rows[k]
}

func (t *table) badWriteUnderRLock(k, v int) {
	t.rw.RLock()
	defer t.rw.RUnlock()
	t.rows[k] = v // want "read mode"
}

func (t *table) branchMerged(k int, fast bool) int {
	if fast {
		t.rw.RLock()
	} else {
		t.rw.RLock()
	}
	v := t.rows[k] // both branches acquired the lock: clean
	t.rw.RUnlock()
	return v
}

func (t *table) halfLocked(k int, maybe bool) int {
	if maybe {
		t.rw.RLock()
		defer t.rw.RUnlock()
	}
	return t.rows[k] // want "table.rows is guarded by rw"
}

type box[V any] struct {
	mu sync.Mutex
	v  V // guarded by mu
}

func getBox(b *box[int]) int {
	return b.v // want "box.v is guarded by mu"
}

func getBoxLocked(b *box[int]) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.v
}

type dangling struct {
	n int // guarded by missing — want "no field named missing"
}

type pair struct {
	a sync.Mutex
	b sync.Mutex
	x int // guarded by a
	y int // guarded by b
}

func (p *pair) ab() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	defer p.b.Unlock()
	p.x++
	p.y++
}

func (p *pair) ba() {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock() // want "mutex acquisition-order cycle"
	defer p.a.Unlock()
	p.x++
	p.y++
}
