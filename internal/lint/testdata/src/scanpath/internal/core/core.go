// Package core mirrors internal/core's path: the scan engine itself owns the
// page codecs, so nothing in this file may be flagged (scanpath negative
// fixture).
package core

import "lstore/internal/page"

// probeSlot is the engine-side idiom scanpath protects: direct page access is
// legal here.
func probeSlot(r page.Reader, slot int) uint64 { return r.Get(slot) }
