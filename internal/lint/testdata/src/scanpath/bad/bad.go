// Package bad is the scanpath positive fixture: a package outside
// internal/core reaching directly for the page codecs, the page
// directory, and the buffer pool — a second, unvalidated read path.
package bad

import (
	"lstore/internal/bufpool" // want "imports lstore/internal/bufpool"
	"lstore/internal/page"    // want "imports lstore/internal/page"
	"lstore/internal/pagedir" // want "imports lstore/internal/pagedir"
)

// Decode bypasses the scan engine.
func Decode(r page.Reader, slot int) uint64 { return r.Get(slot) }

// NewDir walks the page directory from outside the engine.
func NewDir() *pagedir.Directory[int] { return pagedir.New[int]() }

// PinOutsideCore dodges the pin/unpin discipline the scan engine guarantees.
func PinOutsideCore(h *bufpool.Handle) { h.MustPin() }
