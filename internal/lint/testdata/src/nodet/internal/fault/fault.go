// Package fault mirrors internal/fault's path for the nodeterminism
// fixture: an injection plan must be a pure function of its seed, so clock
// reads, the global rand source, and map-order-dependent plan assembly are
// flagged here exactly as in core and wal; seeded sources and sorted
// registry walks stay clean.
package fault

import (
	"math/rand"
	"sort"
	"time"
)

// --- flagged patterns ---------------------------------------------------

type rule struct {
	op  int
	nth int
}

func jitteredPlan() []rule {
	n := int(time.Now().UnixNano() % 5) // want "time.Now"
	return make([]rule, n)
}

func randomPlan() []rule {
	return []rule{{op: 0, nth: rand.Intn(8)}} // want "global math/rand source"
}

func planFromRegistry(points map[string]int) []rule {
	var plan []rule
	for _, nth := range points { // want "map iteration order"
		plan = append(plan, rule{nth: nth})
	}
	return plan
}

// --- clean patterns -----------------------------------------------------

func seededPlan(seed int64) []rule {
	r := rand.New(rand.NewSource(seed)) // seeded constructor: replayable
	return []rule{{op: r.Intn(3), nth: 1 + r.Intn(8)}}
}

func sortedRegistry(points map[string]int) []string {
	var names []string
	for name := range points {
		names = append(names, name)
	}
	sort.Strings(names) // collect-then-sort keeps the sweep order stable
	return names
}
