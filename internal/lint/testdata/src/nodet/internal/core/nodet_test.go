package core

import (
	"testing"
	"time"
)

// Test files sit outside the replayed engine: the loader analyzes only
// non-test sources, so this time.Now must produce no diagnostic. The fixture
// test asserts no findings are reported for this file.
func TestWallClockAllowedInTests(t *testing.T) {
	if time.Now().IsZero() {
		t.Fatal("clock is broken")
	}
}
