// Package core mirrors internal/core's path for the nodeterminism fixture:
// wall-clock reads, the global rand source, and order-dependent map iteration
// are flagged; caller-owned sources, collect-then-sort, commutative folds,
// and waived loops stay clean.
package core

import (
	"math/rand"
	"sort"
	"time"
)

// --- flagged patterns ---------------------------------------------------

func wallClock() int64 {
	return time.Now().UnixNano() // want "time.Now"
}

func sinceStart(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since"
}

func globalRand() int {
	return rand.Intn(10) // want "global math/rand source"
}

func badOrder(m map[int]int) []int {
	var out []int
	for _, v := range m { // want "map iteration order"
		out = append(out, v)
	}
	return out
}

// --- clean patterns -----------------------------------------------------

func seededRand(r *rand.Rand) int {
	return r.Intn(10) // method on a caller-owned source
}

func newSeeded() *rand.Rand {
	return rand.New(rand.NewSource(42)) // seeded constructor
}

func collectThenSort(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys) // re-establishes a deterministic order
	return keys
}

func commutativeFold(m map[int]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func waived(m map[int]int, sink chan int) {
	for _, v := range m { //nondeterminism:ok fixture: order immaterial here
		sink <- v
	}
}
