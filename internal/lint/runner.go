package lint

import (
	"fmt"
	"io"
	"sort"
)

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		WALErrAnalyzer,
		ScanPathAnalyzer,
		LockGuardAnalyzer,
		NodeterminismAnalyzer,
	}
}

// Run loads the packages matched by patterns (relative to dir), applies
// every analyzer to every package, prints the diagnostics to w sorted by
// position, and returns how many there were.
func Run(w io.Writer, dir string, analyzers []*Analyzer, patterns []string) (int, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return 0, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, az := range analyzers {
			ds, err := Analyze(az, pkg)
			if err != nil {
				return len(diags), fmt.Errorf("lint: %s on %s: %v", az.Name, pkg.ImportPath, err)
			}
			diags = append(diags, ds...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	return len(diags), nil
}

// Analyze applies one analyzer to one loaded package and returns its
// diagnostics.
func Analyze(az *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{Analyzer: az, Pkg: pkg, diags: &diags}
	if err := az.Run(pass); err != nil {
		return diags, err
	}
	return diags, nil
}
