package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NodeterminismAnalyzer keeps internal/core, internal/wal, and
// internal/fault replayable: the engine's recovery story is "re-run the log
// and land in the same state", and the crash-torture harness replays whole
// workloads against seeded fault plans. Both break the moment core logic
// consults the wall clock, a shared random source, or Go's randomized map
// iteration order for anything that reaches a result — and a fault plan that
// isn't a pure function of its seed cannot reproduce the failure it found.
// Test files are exempt (they are not part of the replayed engine).
var NodeterminismAnalyzer = &Analyzer{
	Name: "nodeterminism",
	Doc: "forbids time.Now/Since/Until, the global math/rand source, and " +
		"map-order iteration with order-dependent sinks (append, Write*, " +
		"channel send) inside internal/core, internal/wal, and internal/fault",
	Run: runNodeterminism,
}

const nodetMarker = "nondeterminism:ok"

// deterministicRandCtors are math/rand functions that build a seeded, local
// source — fine, because the caller controls the seed.
var deterministicRandCtors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewChaCha8": true,
	"NewPCG":     true,
	"NewZipf":    true,
}

var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runNodeterminism(pass *Pass) error {
	if !PathHasSuffixSeg(pass.Pkg.ImportPath, "/internal/core") &&
		!PathHasSuffixSeg(pass.Pkg.ImportPath, "/internal/wal") &&
		!PathHasSuffixSeg(pass.Pkg.ImportPath, "/internal/fault") {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNodetCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, file, n)
			}
			return true
		})
	}
	return nil
}

func checkNodetCall(pass *Pass, call *ast.CallExpr) {
	fn := FuncFor(pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods on a caller-owned source/timer are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] && !pass.Suppressed(call.Pos(), nodetMarker) {
			pass.Reportf(call.Pos(), "time.%s in %s: replay and recovery must be deterministic — thread timestamps in from the caller", fn.Name(), pass.Pkg.Name)
		}
	case "math/rand", "math/rand/v2":
		if !deterministicRandCtors[fn.Name()] && !pass.Suppressed(call.Pos(), nodetMarker) {
			pass.Reportf(call.Pos(), "global math/rand source (%s.%s) in %s: use a seeded *rand.Rand owned by the caller", pathBase(fn.Pkg().Path()), fn.Name(), pass.Pkg.Name)
		}
	}
}

// checkMapRange flags `for ... := range m` over a map when the body feeds an
// order-dependent sink: appending to a slice declared outside the loop,
// calling a Write*-named method, or sending on a channel. Appends whose
// slice is later passed to sort/slices are exempt — collect-then-sort is the
// deterministic idiom.
func checkMapRange(pass *Pass, file *ast.File, rs *ast.RangeStmt) {
	t := pass.Pkg.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	info := pass.Pkg.Info
	var sinkDesc string
	var appendObj types.Object
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sinkDesc != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 0 {
				dst := rootIdent(n.Args[0])
				if dst == nil {
					return true
				}
				obj := info.ObjectOf(dst)
				if obj != nil && obj.Pos() < rs.Pos() {
					sinkDesc = "appends to " + dst.Name
					appendObj = obj
				}
			} else if sel, ok := n.Fun.(*ast.SelectorExpr); ok && strings.HasPrefix(sel.Sel.Name, "Write") {
				sinkDesc = "calls " + sel.Sel.Name
			}
		case *ast.SendStmt:
			sinkDesc = "sends on a channel"
		}
		return true
	})
	if sinkDesc == "" {
		return
	}
	if appendObj != nil && sortedLater(pass, file, appendObj, rs.End()) {
		return
	}
	if pass.Suppressed(rs.Pos(), nodetMarker) {
		return
	}
	pass.Reportf(rs.Pos(), "map iteration order reaches a result: the loop body %s; iterate a sorted key slice instead", sinkDesc)
}

// sortedLater reports whether obj is subsequently handed to sort/slices,
// which re-establishes a deterministic order.
func sortedLater(pass *Pass, file *ast.File, obj types.Object, after token.Pos) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after {
			return true
		}
		fn := FuncFor(pass.Pkg.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, a := range call.Args {
			if id := rootIdent(a); id != nil && pass.Pkg.Info.ObjectOf(id) == obj {
				found = true
			}
		}
		return true
	})
	return found
}

func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
