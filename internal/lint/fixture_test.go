package lint

import (
	"path"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness: each fixture package under testdata/src is loaded by
// explicit directory path (go list skips testdata under ./..., so the
// deliberately-bad fixture code never reaches the build, vet, or the lint run
// over the repo) and the analyzer's diagnostics are matched line-by-line
// against `want "substring"` comments in the fixture sources — the
// analysistest convention, sized to this repo's framework.

var wantRe = regexp.MustCompile(`want "([^"]+)"`)

type fixtureKey struct {
	file string
	line int
}

func runFixture(t *testing.T, az *Analyzer, dirs ...string) {
	t.Helper()
	patterns := make([]string, len(dirs))
	for i, d := range dirs {
		patterns[i] = "./" + path.Join("testdata", "src", d)
	}
	pkgs, err := Load(".", patterns)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", dirs, err)
	}
	if len(pkgs) != len(dirs) {
		t.Fatalf("loaded %d packages from %v, want %d", len(pkgs), dirs, len(dirs))
	}

	wants := make(map[fixtureKey][]string)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ds, err := Analyze(az, pkg)
		if err != nil {
			t.Fatalf("analyzing %s: %v", pkg.ImportPath, err)
		}
		diags = append(diags, ds...)
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					k := fixtureKey{pos.Filename, pos.Line}
					wants[k] = append(wants[k], m[1])
				}
			}
		}
	}

	matched := make(map[fixtureKey]int)
	for _, d := range diags {
		k := fixtureKey{d.Pos.Filename, d.Pos.Line}
		ws := wants[k]
		if matched[k] >= len(ws) {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		if want := ws[matched[k]]; !strings.Contains(d.Message, want) {
			t.Errorf("diagnostic %q does not contain %q", d.String(), want)
		}
		matched[k]++
	}
	for k, ws := range wants {
		for i := matched[k]; i < len(ws); i++ {
			t.Errorf("%s:%d: missing diagnostic containing %q", k.file, k.line, ws[i])
		}
	}
}

func TestWALErrFixture(t *testing.T) { runFixture(t, WALErrAnalyzer, "walerr") }

func TestScanPathFixture(t *testing.T) {
	runFixture(t, ScanPathAnalyzer, "scanpath/bad", "scanpath/internal/core")
}

func TestLockGuardFixture(t *testing.T) { runFixture(t, LockGuardAnalyzer, "lockguard") }

func TestNodeterminismFixture(t *testing.T) {
	runFixture(t, NodeterminismAnalyzer, "nodet/internal/core", "nodet/internal/fault")
}

// TestRepoIsClean pins the acceptance criterion that the suite exits clean on
// the repository itself: every finding either got fixed or carries an
// explicit, reasoned waiver.
func TestRepoIsClean(t *testing.T) {
	var out strings.Builder
	n, err := Run(&out, "../..", All(), []string{"./..."})
	if err != nil {
		t.Fatalf("running suite over repo: %v", err)
	}
	if n != 0 {
		t.Fatalf("lstore-lint reported %d problem(s) on the repo:\n%s", n, out.String())
	}
}
