package lint

import (
	"go/ast"
	"go/types"
)

// WALErrAnalyzer flags calls to the WAL logger whose error result is dropped.
//
// This is the PR 5 bug class: a swallowed Append/Flush error leaves a torn
// record prefix in the log buffer, and replay silently truncates at the first
// unverifiable frame — every later commit looks durable but is not. The only
// acceptable fates for these errors are propagation (return, pass to a
// function such as poisonWAL, assignment that is later read) or an explicit
// `//wal:ignore-err <reason>` waiver on the call line.
var WALErrAnalyzer = &Analyzer{
	Name: "walerr",
	Doc: "flags wal.Logger.Append/AppendCommit/Flush/TruncateTo (and the wal " +
		"package replay helpers) whose error result is discarded, blank-assigned, " +
		"assigned but never read, or checked by an if that neither propagates " +
		"nor consumes it",
	Run: runWALErr,
}

const walErrMarker = "wal:ignore-err"

// walLoggerMethods are the Logger methods whose error must not be dropped.
var walLoggerMethods = map[string]bool{
	"Append":       true,
	"AppendCommit": true,
	"Flush":        true,
	"TruncateTo":   true,
}

// walPkgFuncs are package-level wal functions returning errors that gate
// replay correctness.
var walPkgFuncs = map[string]bool{
	"ReadAll":           true,
	"Redo":              true,
	"RedoInCommitOrder": true,
}

func runWALErr(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		parents := pass.Pkg.Parents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := FuncFor(info, call)
			if fn == nil || !isWALErrFunc(fn) {
				return true
			}
			if pass.Suppressed(call.Pos(), walErrMarker) {
				return true
			}
			errIdx := errResultIndex(fn)
			if errIdx < 0 {
				return true
			}
			checkErrUse(pass, file, parents, call, fn, errIdx)
			return true
		})
	}
	return nil
}

// isWALErrFunc reports whether fn is one of the guarded wal entry points:
// a Logger method or a package-level replay helper of a package whose import
// path ends in /internal/wal.
func isWALErrFunc(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil || !PathHasSuffixSeg(pkg.Path(), "/internal/wal") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		return ok && named.Obj().Name() == "Logger" && walLoggerMethods[fn.Name()]
	}
	return walPkgFuncs[fn.Name()]
}

// errResultIndex returns the index of fn's error result, or -1.
func errResultIndex(fn *types.Func) int {
	sig := fn.Type().(*types.Signature)
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return i
		}
	}
	return -1
}

// checkErrUse classifies what happens to the error result of call and reports
// the drop patterns.
func checkErrUse(pass *Pass, file *ast.File, parents map[ast.Node]ast.Node, call *ast.CallExpr, fn *types.Func, errIdx int) {
	parent := parents[call]
	// Unwrap parenthesization between the call and its consumer.
	for {
		if p, ok := parent.(*ast.ParenExpr); ok {
			parent = parents[p]
			continue
		}
		break
	}
	switch p := parent.(type) {
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "error result of wal.%s discarded; a dropped WAL error hides a torn log prefix (propagate it or poison the txn)", fn.Name())
	case *ast.AssignStmt:
		// Tuple assign from the call: the error lands at LHS[errIdx] when the
		// call is the sole RHS, or at the matching position otherwise.
		lhs := errLHS(p, call, errIdx)
		if lhs == nil {
			return // call feeds a larger expression; treat the value as consumed
		}
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return // stored into a field or element: consumed
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "error result of wal.%s assigned to _; a dropped WAL error hides a torn log prefix (propagate it or poison the txn)", fn.Name())
			return
		}
		obj := pass.Pkg.Info.Defs[id]
		if obj == nil {
			obj = pass.Pkg.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		uses := objectUses(pass.Pkg.Info, file, obj, id)
		if len(uses) == 0 {
			pass.Reportf(call.Pos(), "error result of wal.%s assigned to %s but never read", fn.Name(), id.Name)
			return
		}
		if !anyRealErrUse(pass, parents, obj, uses) {
			pass.Reportf(call.Pos(), "error result of wal.%s is checked but swallowed: no branch returns, panics, or consumes %s", fn.Name(), id.Name)
		}
	case *ast.GoStmt, *ast.DeferStmt:
		pass.Reportf(call.Pos(), "error result of wal.%s discarded by go/defer", fn.Name())
	}
}

// errLHS finds the assignment target holding the error result.
func errLHS(assign *ast.AssignStmt, call *ast.CallExpr, errIdx int) ast.Expr {
	if len(assign.Rhs) == 1 && assign.Rhs[0] == call {
		if errIdx < len(assign.Lhs) {
			return assign.Lhs[errIdx]
		}
		return nil
	}
	for i, rhs := range assign.Rhs {
		if rhs == call && i < len(assign.Lhs) {
			return assign.Lhs[i]
		}
	}
	return nil
}

// objectUses returns every use of obj in file after (and excluding) def.
func objectUses(info *types.Info, file *ast.File, obj types.Object, def *ast.Ident) []*ast.Ident {
	var uses []*ast.Ident
	ast.Inspect(file, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id == def || id.Pos() <= def.Pos() {
			return true
		}
		if info.Uses[id] == obj {
			uses = append(uses, id)
		}
		return true
	})
	return uses
}

// anyRealErrUse reports whether at least one use of the error either consumes
// it directly (returned, passed to a call, re-assigned, stored) or guards an
// if whose body propagates (contains a return, panic, or another consuming
// use of the error).
func anyRealErrUse(pass *Pass, parents map[ast.Node]ast.Node, obj types.Object, uses []*ast.Ident) bool {
	for _, u := range uses {
		if classifyErrUse(pass, parents, obj, u) {
			return true
		}
	}
	return false
}

func classifyErrUse(pass *Pass, parents map[ast.Node]ast.Node, obj types.Object, use *ast.Ident) bool {
	// Walk up from the use to find how it is consumed.
	var child ast.Node = use
	for n := parents[use]; n != nil; n = parents[n] {
		switch p := n.(type) {
		case *ast.ReturnStmt, *ast.CallExpr, *ast.CompositeLit, *ast.SendStmt:
			return true
		case *ast.AssignStmt:
			// err on the RHS of another assignment: consumed. On the LHS it is
			// being overwritten, which is not a use.
			for _, rhs := range p.Rhs {
				if containsNode(rhs, child) {
					return true
				}
			}
			return false
		case *ast.IfStmt:
			if p.Cond != nil && containsNode(p.Cond, child) {
				return ifBodyPropagates(pass, p, obj)
			}
			return false
		case *ast.BinaryExpr, *ast.ParenExpr, *ast.UnaryExpr:
			child = n
			continue
		default:
			return false
		}
	}
	return false
}

// ifBodyPropagates reports whether the body of an `if err != nil` check does
// anything with the failure: returns, panics, or touches the error again.
func ifBodyPropagates(pass *Pass, ifStmt *ast.IfStmt, obj types.Object) bool {
	propagates := false
	ast.Inspect(ifStmt.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			propagates = true
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				propagates = true
			}
		case *ast.Ident:
			if pass.Pkg.Info.Uses[n] == obj {
				propagates = true
			}
		}
		return !propagates
	})
	return propagates
}

// containsNode reports whether target is within the subtree rooted at root.
func containsNode(root, target ast.Node) bool {
	if root == target {
		return true
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}
