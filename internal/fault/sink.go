package fault

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// ErrInjected is the base error returned by injected write/sync/drop
// failures (wrapped with the operation and its index).
var ErrInjected = errors.New("fault: injected I/O failure")

// Op selects which sink operation a Rule targets.
type Op uint8

const (
	OpWrite Op = iota + 1
	OpSync
	OpDrop
)

func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpDrop:
		return "drop-prefix"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Rule is one injected fault: on the Nth call of the targeted operation
// (1-based, counted per operation kind), misbehave. Rules are plain data —
// a plan built from a seeded *rand.Rand is fully replayable from the seed.
type Rule struct {
	Op  Op
	Nth int
	// TornBytes, for writes: forward this many leading bytes to the inner
	// sink before failing — a torn write leaves a real partial prefix on the
	// "device".
	TornBytes int
	// Short, for writes: return n < len(p) with a NIL error (a misbehaving
	// io.Writer). TornBytes bytes are forwarded and reported.
	Short bool
	// Persistent repeats the failure on every later call of the same kind —
	// the device never heals (ENOSPC-style). One-shot rules heal: the next
	// call proceeds normally.
	Persistent bool
}

// The fault shapes of the torture suite, as rule constructors.

// FailWrite fails the nth write outright, then heals (error-once-then-heal).
func FailWrite(nth int) Rule { return Rule{Op: OpWrite, Nth: nth} }

// TornWrite forwards k bytes of the nth write to the inner sink and then
// fails — the classic torn page.
func TornWrite(nth, k int) Rule { return Rule{Op: OpWrite, Nth: nth, TornBytes: k} }

// ShortWrite makes the nth write return k < len(p) with a nil error — the
// misbehaving io.Writer the defensive short-write checks must catch.
func ShortWrite(nth, k int) Rule { return Rule{Op: OpWrite, Nth: nth, TornBytes: k, Short: true} }

// FailSync fails the nth Sync — the fsyncgate scenario: after it, the only
// honest stance is to distrust everything not yet acknowledged.
func FailSync(nth int) Rule { return Rule{Op: OpSync, Nth: nth} }

// NoSpace fails every write from the nth on (ENOSPC-style persistent
// failure).
func NoSpace(nth int) Rule { return Rule{Op: OpWrite, Nth: nth, Persistent: true} }

// FailDrop fails the nth DropPrefix call (a truncation that cannot delete
// its segment).
func FailDrop(nth int) Rule { return Rule{Op: OpDrop, Nth: nth} }

// Syncer is the real-fsync capability (os.File has it; wal.FileSink
// implements it; BufferSink does not need it).
type Syncer interface{ Sync() error }

// truncatable mirrors wal.TruncatableSink without importing it (fault sits
// below wal in the dependency order).
type truncatable interface {
	DropPrefix(n int64) error
}

// Sink wraps an inner WAL/checkpoint sink with an injection plan. It
// implements io.Writer, Sync() error, and DropPrefix(int64) error,
// delegating to the inner sink's capabilities; Sync on a non-Syncer inner
// sink is a successful no-op (so a Sink always presents the full interface
// and fsync faults can be injected over in-memory sinks too).
//
// Counting is strictly deterministic: the kth write is the kth Write call,
// regardless of outcome.
type Sink struct {
	mu     sync.Mutex
	inner  io.Writer
	rules  []Rule // guarded by mu; spent one-shot rules are removed
	writes int    // guarded by mu; Write calls seen
	syncs  int    // guarded by mu; Sync calls seen
	drops  int    // guarded by mu; DropPrefix calls seen
}

// NewSink wraps inner with the given injection plan.
func NewSink(inner io.Writer, plan ...Rule) *Sink {
	return &Sink{inner: inner, rules: append([]Rule(nil), plan...)}
}

// match returns the first rule triggered by the nth call of op, removing it
// from the plan unless persistent.
//
// locked: s.mu
func (s *Sink) match(op Op, nth int) (Rule, bool) {
	for i, r := range s.rules {
		if r.Op != op {
			continue
		}
		trig := r.Nth == nth || (r.Persistent && nth >= r.Nth)
		if !trig {
			continue
		}
		if !r.Persistent {
			s.rules = append(s.rules[:i], s.rules[i+1:]...)
		}
		return r, true
	}
	return Rule{}, false
}

// Write forwards p to the inner sink unless a rule fires: a torn rule
// forwards a prefix then errors, a short rule forwards a prefix and lies
// (nil error), a plain rule errors without touching the device.
func (s *Sink) Write(p []byte) (int, error) {
	s.mu.Lock()
	s.writes++
	n := s.writes
	r, hit := s.match(OpWrite, n)
	s.mu.Unlock()
	if !hit {
		return s.inner.Write(p)
	}
	k := r.TornBytes
	if k > len(p) {
		k = len(p)
	}
	wrote := 0
	if k > 0 {
		var err error
		wrote, err = s.inner.Write(p[:k])
		if err != nil {
			return wrote, err
		}
	}
	if r.Short {
		return wrote, nil // the misbehaving-writer lie
	}
	return wrote, fmt.Errorf("%w: write %d (%d of %d bytes reached the device)", ErrInjected, n, wrote, len(p))
}

// Sync delegates to the inner sink's Sync (no-op if it has none) unless a
// sync rule fires.
func (s *Sink) Sync() error {
	s.mu.Lock()
	s.syncs++
	n := s.syncs
	_, hit := s.match(OpSync, n)
	s.mu.Unlock()
	if hit {
		return fmt.Errorf("%w: sync %d", ErrInjected, n)
	}
	if sy, ok := s.inner.(Syncer); ok {
		return sy.Sync()
	}
	return nil
}

// DropPrefix delegates prefix truncation unless a drop rule fires. The
// inner sink must be truncatable.
func (s *Sink) DropPrefix(n int64) error {
	s.mu.Lock()
	s.drops++
	c := s.drops
	_, hit := s.match(OpDrop, c)
	s.mu.Unlock()
	if hit {
		return fmt.Errorf("%w: drop-prefix %d", ErrInjected, c)
	}
	t, ok := s.inner.(truncatable)
	if !ok {
		return fmt.Errorf("fault: inner sink %T cannot drop a prefix", s.inner)
	}
	return t.DropPrefix(n)
}

// Writes returns the number of Write calls seen.
func (s *Sink) Writes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writes
}

// Syncs returns the number of Sync calls seen.
func (s *Sink) Syncs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncs
}
