// Package fault is the deterministic fault-injection layer behind the
// crash-torture tests: it simulates the ways a disk betrays a database.
//
// Two instruments live here:
//
//   - Sink (sink.go) wraps any WAL or checkpoint sink with an injection
//     plan — fail the Nth write, tear a write after k bytes, fail an fsync,
//     fail once and heal, fail persistently (ENOSPC), or short-write with a
//     nil error (a misbehaving io.Writer). Plans are plain data chosen by
//     the caller, typically from a seeded *rand.Rand, so every failure a
//     torture run finds is replayable from its logged seed.
//
//   - Crash points (this file): named markers threaded through the commit,
//     checkpoint, truncation, and recovery paths. In production a point is
//     a single atomic load and nothing else. A test arms a point with Trip;
//     the next Hit panics with *Crash, which RunToCrash converts back into
//     a value — simulating a process kill at exactly that boundary. The
//     surviving state is whatever the sinks durably hold, and recovery must
//     rebuild a committed prefix from those bytes alone.
//
// The registry is global (the points are package-level vars at their use
// sites), so tests that arm points must not run concurrently with each
// other; Reset restores the production no-op state.
package fault

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Crash is the panic value raised by a tripped crash point: the moral
// equivalent of SIGKILL at that exact code boundary.
type Crash struct {
	Point string
}

func (c *Crash) Error() string { return fmt.Sprintf("fault: simulated crash at point %q", c.Point) }

// Point is one named crash site. Production code calls Hit at the site;
// unarmed, that is one atomic load.
type Point struct {
	name string
	// trip holds the armed countdown, nil while disarmed.
	trip atomic.Pointer[tripState]
	hits atomic.Int64 // total Hit calls while counting is enabled
}

type tripState struct {
	remaining atomic.Int64 // crash when a Hit decrements this to zero
}

var (
	regMu    sync.Mutex
	registry = map[string]*Point{} // guarded by regMu
	counting atomic.Bool
)

// Register declares a crash point. It is meant for package-level var
// initialization at the site that will Hit it; registering the same name
// twice returns the same point, so tests may also look points up by
// re-registering.
func Register(name string) *Point {
	regMu.Lock()
	defer regMu.Unlock()
	if p, ok := registry[name]; ok {
		return p
	}
	p := &Point{name: name}
	registry[name] = p
	return p
}

// Name returns the point's registered name.
func (p *Point) Name() string { return p.name }

// Hit marks execution passing the point. Unarmed it is a no-op; armed, the
// k-th Hit after arming panics with *Crash. Hits are counted while
// EnableCounting is on, so a torture harness can measure how often a clean
// run passes each point before choosing where to crash.
func (p *Point) Hit() {
	if counting.Load() {
		p.hits.Add(1)
	}
	ts := p.trip.Load()
	if ts == nil {
		return
	}
	if ts.remaining.Add(-1) == 0 {
		p.trip.Store(nil) // one-shot: a recovered harness must not re-crash
		panic(&Crash{Point: p.name})
	}
}

// Trip arms the named point: the nth subsequent Hit (1-based) panics with
// *Crash. The trip is one-shot. Unknown names are registered on the fly so
// a test can arm a point before the package that hits it is touched.
func Trip(name string, nth int) {
	if nth < 1 {
		nth = 1
	}
	p := Register(name)
	ts := &tripState{}
	ts.remaining.Store(int64(nth))
	p.trip.Store(ts)
}

// Reset disarms every point and clears hit counters — the production state.
func Reset() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, p := range registry {
		p.trip.Store(nil)
		p.hits.Store(0)
	}
	counting.Store(false)
}

// EnableCounting turns on per-point hit counting (off in production).
func EnableCounting() { counting.Store(true) }

// Hits returns how many times the named point was Hit while counting was
// enabled (0 for unknown points).
func Hits(name string) int64 {
	regMu.Lock()
	p := registry[name]
	regMu.Unlock()
	if p == nil {
		return 0
	}
	return p.hits.Load()
}

// Points returns every registered crash-point name, sorted. Importing the
// packages that declare points (e.g. the database root and internal/wal) is
// what populates the registry.
func Points() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RunToCrash runs fn, converting a tripped crash point's panic back into a
// value: the returned *Crash is non-nil iff fn died at a crash point. Other
// panics propagate. The crashed process's in-memory state is garbage by
// construction — callers must discard it and continue from durable bytes
// only, exactly like a real restart.
func RunToCrash(fn func()) (crashed *Crash) {
	defer func() {
		if r := recover(); r != nil {
			if c, ok := r.(*Crash); ok {
				crashed = c
				return
			}
			panic(r)
		}
	}()
	fn()
	return nil
}
