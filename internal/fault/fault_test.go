package fault

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestCrashPointLifecycle(t *testing.T) {
	defer Reset()
	p := Register("test.point.a")
	if got := Register("test.point.a"); got != p {
		t.Fatal("re-registering returned a different point")
	}
	p.Hit() // unarmed: no-op

	Trip("test.point.a", 3)
	hits := 0
	c := RunToCrash(func() {
		for i := 0; i < 10; i++ {
			hits++
			p.Hit()
		}
	})
	if c == nil || c.Point != "test.point.a" {
		t.Fatalf("crash = %+v", c)
	}
	if hits != 3 {
		t.Fatalf("crashed on hit %d, want 3", hits)
	}
	// One-shot: the recovered harness can pass the point again.
	if c := RunToCrash(func() { p.Hit() }); c != nil {
		t.Fatalf("tripped twice: %v", c)
	}
}

func TestCrashPointCountingAndReset(t *testing.T) {
	defer Reset()
	p := Register("test.point.count")
	EnableCounting()
	for i := 0; i < 5; i++ {
		p.Hit()
	}
	if Hits("test.point.count") != 5 {
		t.Fatalf("hits = %d", Hits("test.point.count"))
	}
	Reset()
	p.Hit() // counting off again
	if Hits("test.point.count") != 0 {
		t.Fatalf("hits after reset = %d", Hits("test.point.count"))
	}
	found := false
	for _, n := range Points() {
		if n == "test.point.count" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered point missing from Points()")
	}
}

func TestRunToCrashPropagatesForeignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic swallowed")
		}
	}()
	RunToCrash(func() { panic("not a crash") })
}

func TestSinkFailWriteHealsAfterOne(t *testing.T) {
	var inner bytes.Buffer
	s := NewSink(&inner, FailWrite(2))
	if _, err := s.Write([]byte("aa")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write([]byte("bb")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2 = %v, want injected failure", err)
	}
	if _, err := s.Write([]byte("cc")); err != nil {
		t.Fatalf("write 3 after one-shot failure = %v, want healed", err)
	}
	if inner.String() != "aacc" {
		t.Fatalf("device holds %q", inner.String())
	}
}

func TestSinkTornWriteLeavesPartialPrefix(t *testing.T) {
	var inner bytes.Buffer
	s := NewSink(&inner, TornWrite(1, 3))
	n, err := s.Write([]byte("abcdef"))
	if err == nil || n != 3 {
		t.Fatalf("torn write = (%d, %v)", n, err)
	}
	if inner.String() != "abc" {
		t.Fatalf("device holds %q, want the torn prefix", inner.String())
	}
}

func TestSinkShortWriteLies(t *testing.T) {
	var inner bytes.Buffer
	s := NewSink(&inner, ShortWrite(1, 2))
	n, err := s.Write([]byte("abcdef"))
	if err != nil || n != 2 {
		t.Fatalf("short write = (%d, %v), want (2, nil)", n, err)
	}
}

func TestSinkNoSpaceIsPersistent(t *testing.T) {
	var inner bytes.Buffer
	s := NewSink(&inner, NoSpace(2))
	if _, err := s.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Write([]byte("y")); !errors.Is(err, ErrInjected) {
			t.Fatalf("post-ENOSPC write %d = %v", i, err)
		}
	}
	if inner.String() != "x" {
		t.Fatalf("device holds %q", inner.String())
	}
}

func TestSinkSyncAndDropInjection(t *testing.T) {
	var inner bytes.Buffer // no Sync, no DropPrefix
	s := NewSink(&inner, FailSync(2), FailDrop(1))
	if err := s.Sync(); err != nil {
		t.Fatalf("sync over non-syncer inner = %v, want no-op success", err)
	}
	if err := s.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 2 = %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("sync 3 healed = %v", err)
	}
	if err := s.DropPrefix(1); !errors.Is(err, ErrInjected) {
		t.Fatalf("drop 1 = %v", err)
	}
	// Healed drop now reports the inner sink's missing capability.
	if err := s.DropPrefix(1); err == nil || errors.Is(err, ErrInjected) {
		t.Fatalf("drop over plain buffer = %v, want capability error", err)
	}
}

// TestSeededPlanIsReplayable pins the determinism contract: the same seed
// builds the same plan, and the same plan produces byte-identical device
// state — every torture failure replays from its logged seed.
func TestSeededPlanIsReplayable(t *testing.T) {
	build := func(seed int64) []Rule {
		rng := rand.New(rand.NewSource(seed))
		return []Rule{
			TornWrite(1+rng.Intn(4), rng.Intn(8)),
			FailSync(1 + rng.Intn(3)),
			NoSpace(4 + rng.Intn(4)),
		}
	}
	run := func(plan []Rule) string {
		var inner bytes.Buffer
		s := NewSink(&inner, plan...)
		for i := 0; i < 8; i++ {
			s.Write([]byte{byte('a' + i), byte('0' + i)}) //nolint:errcheck
			s.Sync()                                      //nolint:errcheck
		}
		return inner.String()
	}
	a, b := run(build(42)), run(build(42))
	if a != b {
		t.Fatalf("same seed diverged: %q vs %q", a, b)
	}
}
