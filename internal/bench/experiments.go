package bench

import (
	"fmt"
	"io"
	"time"

	"lstore/internal/workload"
)

// Options scales the experiments to the host. Defaults reproduce the
// paper's shapes at laptop scale (the paper ran 10 M-row active sets on a
// 24-thread Xeon; we preserve the contention ratios and thread sweeps).
type Options struct {
	TableSize   int           // preloaded rows (default 65536)
	Duration    time.Duration // measurement window per cell (default 1s)
	Threads     []int         // update-thread grid for Figure 7
	RangeSize   int           // L-Store update range (default 4096)
	MergeBatch  int           // L-Store merge batch (default RangeSize/2)
	ScanWorkers int           // L-Store scan worker pool (0 = engine default)
	Out         io.Writer
	// Report, when non-nil, collects one Sample per measured cell for the
	// -json output of cmd/lstore-bench.
	Report *Report
}

func (o Options) withDefaults() Options {
	if o.TableSize == 0 {
		o.TableSize = 65536
	}
	if o.Duration == 0 {
		o.Duration = time.Second
	}
	if len(o.Threads) == 0 {
		o.Threads = []int{1, 2, 4, 8, 16, 22}
	}
	if o.RangeSize == 0 {
		o.RangeSize = 4096
	}
	if o.MergeBatch == 0 {
		o.MergeBatch = o.RangeSize / 2
	}
	return o
}

func (o Options) printf(format string, args ...any) {
	fmt.Fprintf(o.Out, format, args...)
}

// engineKind identifies one architecture under test.
type engineKind int

const (
	kindLStore engineKind = iota
	kindLStoreRow
	kindIUH
	kindDBM
)

func (o Options) build(k engineKind, ncols int) (Engine, error) {
	switch k {
	case kindLStore:
		return NewLStore(ncols, LStoreOptions{RangeSize: o.RangeSize, MergeBatch: o.MergeBatch, ScanWorkers: o.ScanWorkers})
	case kindLStoreRow:
		return NewLStore(ncols, LStoreOptions{RangeSize: o.RangeSize, MergeBatch: o.MergeBatch, ScanWorkers: o.ScanWorkers, RowLayout: true})
	case kindIUH:
		return NewIUH(ncols, o.RangeSize), nil
	case kindDBM:
		return NewDBM(ncols, o.RangeSize, o.MergeBatch), nil
	}
	return nil, fmt.Errorf("bench: unknown engine kind %d", k)
}

// prepared builds and preloads an engine for w.
func (o Options) prepared(k engineKind, w workload.Config) (Engine, error) {
	e, err := o.build(k, w.NumCols)
	if err != nil {
		return nil, err
	}
	if err := e.Preload(w.TableSize, w.NumCols); err != nil {
		e.Close()
		return nil, err
	}
	return e, nil
}

var threeEngines = []engineKind{kindLStore, kindIUH, kindDBM}

// ---------------------------------------------------------------------------
// Figure 7: transaction throughput vs number of update threads, per
// contention level (a=low, b=medium, c=high), with one scan thread and one
// merge thread running throughout.

// Fig7 prints throughput series for the given contention level.
func Fig7(o Options, c workload.Contention) error {
	o = o.withDefaults()
	w := workload.ForContention(c, o.TableSize)
	o.printf("# Figure 7(%s): throughput (txns/s) vs update threads — active set %d of %d rows\n",
		c, w.ActiveSet, w.TableSize)
	o.printf("%-8s %14s %14s %14s\n", "threads", "L-Store", "IUH", "DBM")
	for _, threads := range o.Threads {
		row := make([]float64, len(threeEngines))
		for i, k := range threeEngines {
			e, err := o.prepared(k, w)
			if err != nil {
				return err
			}
			res := Run(RunConfig{
				Engine: e, Workload: w, UpdateThreads: threads, ScanThreads: 1,
				Duration: o.Duration, ReadsPerTxn: -1, WritesPerTxn: -1, Seed: int64(threads),
			})
			row[i] = res.TxnsPerSec
			o.record(Sample{
				Experiment: fmt.Sprintf("fig7%c", 'a'+int(c)), System: e.Name(),
				Labels:     map[string]int{"threads": threads},
				TxnsPerSec: res.TxnsPerSec,
			})
			e.Close()
		}
		o.printf("%-8d %14.0f %14.0f %14.0f\n", threads, row[0], row[1], row[2])
	}
	return nil
}

// ---------------------------------------------------------------------------
// Figure 8: single-threaded scan execution time vs number of tail records
// processed per merge (M), with 4 and 16 update threads and one dedicated
// merge thread. Larger merge batches amortize better until the backlog
// grows; the paper's optimum is M ≈ 50% of the range size.

// Fig8 prints scan latency versus merge batch size.
func Fig8(o Options) error {
	o = o.withDefaults()
	w := workload.ForContention(workload.Low, o.TableSize)
	batches := []int{o.RangeSize / 16, o.RangeSize / 8, o.RangeSize / 4, o.RangeSize / 2, o.RangeSize}
	o.printf("# Figure 8: scan time (ms) vs tail records per merge (range size %d)\n", o.RangeSize)
	o.printf("%-12s %18s %18s\n", "merge-batch", "4 update threads", "16 update threads")
	for _, m := range batches {
		times := make([]time.Duration, 2)
		for i, threads := range []int{4, 16} {
			e, err := NewLStore(w.NumCols, LStoreOptions{RangeSize: o.RangeSize, MergeBatch: m, ScanWorkers: o.ScanWorkers})
			if err != nil {
				return err
			}
			if err := e.Preload(w.TableSize, w.NumCols); err != nil {
				e.Close()
				return err
			}
			res := Run(RunConfig{
				Engine: e, Workload: w, UpdateThreads: threads, ScanThreads: 1,
				Duration: o.Duration, ReadsPerTxn: -1, WritesPerTxn: -1, Seed: int64(m),
			})
			times[i] = res.ScanAvg
			o.record(Sample{
				Experiment: "fig8", System: e.Name(),
				Labels:      map[string]int{"merge_batch": m, "threads": threads},
				ScanMillis:  scanMS(res.ScanAvg),
				ScansPerSec: res.ScansPerSec,
			})
			e.Close()
		}
		o.printf("%-12d %18.2f %18.2f\n", m,
			float64(times[0].Microseconds())/1000, float64(times[1].Microseconds())/1000)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Table 7: single-threaded scan time for the three systems with 16
// concurrent update threads (low contention, 4 K update ranges).

// Table7 prints the scan-latency comparison.
func Table7(o Options) error {
	o = o.withDefaults()
	w := workload.ForContention(workload.Low, o.TableSize)
	o.printf("# Table 7: scan time (ms) with 16 update threads\n")
	o.printf("%-28s %12s\n", "system", "scan (ms)")
	for _, k := range threeEngines {
		e, err := o.prepared(k, w)
		if err != nil {
			return err
		}
		res := Run(RunConfig{
			Engine: e, Workload: w, UpdateThreads: 16, ScanThreads: 1,
			Duration: o.Duration, ReadsPerTxn: -1, WritesPerTxn: -1, Seed: 7,
		})
		o.printf("%-28s %12.2f\n", e.Name(), float64(res.ScanAvg.Microseconds())/1000)
		o.record(Sample{
			Experiment: "table7", System: e.Name(),
			Labels:      map[string]int{"threads": 16},
			ScanMillis:  scanMS(res.ScanAvg),
			ScansPerSec: res.ScansPerSec,
		})
		e.Close()
	}
	return nil
}

// ---------------------------------------------------------------------------
// Figure 9: throughput vs percentage of reads in the short update
// transactions (0..100%), 16 update threads.

// Fig9 prints the read/write-ratio sweep for the given contention level.
func Fig9(o Options, c workload.Contention) error {
	o = o.withDefaults()
	w := workload.ForContention(c, o.TableSize)
	o.printf("# Figure 9(%s): throughput (txns/s) vs read %% in short txns (16 threads)\n", c)
	o.printf("%-8s %14s %14s %14s\n", "read%", "L-Store", "IUH", "DBM")
	for pct := 0; pct <= 100; pct += 20 {
		nr := pct / 10
		nw := 10 - nr
		row := make([]float64, len(threeEngines))
		for i, k := range threeEngines {
			e, err := o.prepared(k, w)
			if err != nil {
				return err
			}
			res := Run(RunConfig{
				Engine: e, Workload: w, UpdateThreads: 16, ScanThreads: 1,
				Duration: o.Duration, ReadsPerTxn: nr, WritesPerTxn: nw, Seed: int64(pct),
			})
			row[i] = res.TxnsPerSec
			o.record(Sample{
				Experiment: fmt.Sprintf("fig9%c", 'a'+int(c)), System: e.Name(),
				Labels:     map[string]int{"read_pct": pct},
				TxnsPerSec: res.TxnsPerSec,
			})
			e.Close()
		}
		o.printf("%-8d %14.0f %14.0f %14.0f\n", pct, row[0], row[1], row[2])
	}
	return nil
}

// ---------------------------------------------------------------------------
// Figure 10: mixed workload — 17 concurrent transactions split between
// short updates and long read-only scans. (a/c) report update throughput,
// (b/d) report read-only throughput; we print both series per split.

// Fig10 prints the mixed-workload sweep for the given contention level.
func Fig10(o Options, c workload.Contention) error {
	o = o.withDefaults()
	w := workload.ForContention(c, o.TableSize)
	o.printf("# Figure 10(%s): 17 concurrent txns, update vs long-read split\n", c)
	o.printf("%-14s %36s %36s\n", "", "update txns/s", "read-only txns/s")
	o.printf("%-14s %12s %12s %12s %12s %12s %12s\n",
		"upd:scan", "L-Store", "IUH", "DBM", "L-Store", "IUH", "DBM")
	for _, scans := range []int{1, 5, 9, 13, 16} {
		updates := 17 - scans
		upd := make([]float64, len(threeEngines))
		rd := make([]float64, len(threeEngines))
		for i, k := range threeEngines {
			e, err := o.prepared(k, w)
			if err != nil {
				return err
			}
			res := Run(RunConfig{
				Engine: e, Workload: w, UpdateThreads: updates, ScanThreads: scans,
				Duration: o.Duration, ReadsPerTxn: -1, WritesPerTxn: -1, Seed: int64(scans),
			})
			upd[i] = res.TxnsPerSec
			rd[i] = res.ScansPerSec
			o.record(Sample{
				Experiment: fmt.Sprintf("fig10-%s", c), System: e.Name(),
				Labels:      map[string]int{"update_threads": updates, "scan_threads": scans},
				TxnsPerSec:  res.TxnsPerSec,
				ScansPerSec: res.ScansPerSec,
			})
			e.Close()
		}
		o.printf("%-14s %12.0f %12.0f %12.0f %12.1f %12.1f %12.1f\n",
			fmt.Sprintf("%d:%d", updates, scans), upd[0], upd[1], upd[2], rd[0], rd[1], rd[2])
	}
	return nil
}

// ---------------------------------------------------------------------------
// Table 8: scan time, L-Store (Column) vs L-Store (Row), with and without
// 16 concurrent update threads.

// Table8 prints the layout comparison for scans.
func Table8(o Options) error {
	o = o.withDefaults()
	w := workload.ForContention(workload.Low, o.TableSize)
	o.printf("# Table 8: scan time (ms), columnar vs row layout\n")
	o.printf("%-24s %16s %16s\n", "layout", "no updates", "16 upd threads")
	for _, k := range []engineKind{kindLStore, kindLStoreRow} {
		e, err := o.prepared(k, w)
		if err != nil {
			return err
		}
		// Cold scans, no updates: average of a few runs.
		var cold time.Duration
		const reps = 5
		for i := 0; i < reps; i++ {
			cold += MeasureScan(e, w)
		}
		cold /= reps
		res := Run(RunConfig{
			Engine: e, Workload: w, UpdateThreads: 16, ScanThreads: 1,
			Duration: o.Duration, ReadsPerTxn: -1, WritesPerTxn: -1, Seed: 3,
		})
		o.printf("%-24s %16.2f %16.2f\n", e.Name(),
			float64(cold.Microseconds())/1000, float64(res.ScanAvg.Microseconds())/1000)
		o.record(Sample{
			Experiment: "table8", System: e.Name(),
			Labels:     map[string]int{"threads": 0},
			ScanMillis: scanMS(cold),
		})
		o.record(Sample{
			Experiment: "table8", System: e.Name(),
			Labels:      map[string]int{"threads": 16},
			ScanMillis:  scanMS(res.ScanAvg),
			ScansPerSec: res.ScansPerSec,
		})
		e.Close()
	}
	return nil
}

// ---------------------------------------------------------------------------
// Table 9: point-query throughput (txns/s) vs percentage of columns read,
// columnar vs row layout. Each transaction is 10 point reads.

// Table9 prints the layout comparison for point queries.
func Table9(o Options) error {
	o = o.withDefaults()
	w := workload.ForContention(workload.Low, o.TableSize)
	o.printf("# Table 9: point-query throughput (txns/s) vs %% of columns read\n")
	o.printf("%-24s", "layout")
	pcts := []int{10, 20, 40, 80, 100}
	for _, p := range pcts {
		o.printf(" %9d%%", p)
	}
	o.printf("\n")
	for _, k := range []engineKind{kindLStore, kindLStoreRow} {
		e, err := o.prepared(k, w)
		if err != nil {
			return err
		}
		o.printf("%-24s", e.Name())
		for _, pct := range pcts {
			res := Run(RunConfig{
				Engine: e, Workload: w, UpdateThreads: 16, ScanThreads: 0,
				Duration: o.Duration, ReadsPerTxn: -1, WritesPerTxn: -1,
				PointReadPctCols: pct, Seed: int64(pct),
			})
			o.printf(" %10.0f", res.TxnsPerSec)
			o.record(Sample{
				Experiment: "table9", System: e.Name(),
				Labels:     map[string]int{"pct_cols": pct},
				TxnsPerSec: res.TxnsPerSec,
			})
		}
		o.printf("\n")
		e.Close()
	}
	return nil
}

// Experiments maps CLI identifiers to runners.
var Experiments = map[string]func(Options) error{
	"fig7a":    func(o Options) error { return Fig7(o, workload.Low) },
	"fig7b":    func(o Options) error { return Fig7(o, workload.Medium) },
	"fig7c":    func(o Options) error { return Fig7(o, workload.High) },
	"fig8":     Fig8,
	"table7":   Table7,
	"fig9a":    func(o Options) error { return Fig9(o, workload.Low) },
	"fig9b":    func(o Options) error { return Fig9(o, workload.Medium) },
	"fig10a":   func(o Options) error { return Fig10(o, workload.Low) },
	"fig10b":   func(o Options) error { return Fig10(o, workload.Low) },
	"fig10c":   func(o Options) error { return Fig10(o, workload.Medium) },
	"fig10d":   func(o Options) error { return Fig10(o, workload.Medium) },
	"table8":   Table8,
	"table9":   Table9,
	"query":    QueryExp,
	"recover":  RecoverExp,
	"serve":    ServeExp,
	"compress": CompressExp,
	"spill":    SpillExp,
}

// ExperimentIDs lists the identifiers in paper order; "query" (the unified
// query API's filtered-scan + aggregate sweep), "recover" (restart time,
// full-log replay vs checkpoint+tail), "serve" (HTTP service layer: group
// commit and admission control at the wire), and "compress" (sealed-page
// encoding: encoded-space predicate evaluation vs decode-then-filter vs raw
// pages, plus resident and checkpoint footprint), and "spill" (beyond-RAM
// base storage: scan rate and resident bytes with the buffer pool capped at
// fractions of the sealed footprint) extend the paper's set.
var ExperimentIDs = []string{
	"fig7a", "fig7b", "fig7c", "fig8", "table7",
	"fig9a", "fig9b", "fig10a", "fig10c", "table8", "table9",
	"query", "recover", "serve", "compress", "spill",
}
