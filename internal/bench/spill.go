// The spill experiment measures beyond-RAM base storage: the same sealed
// table is scanned with every page resident, then through the buffer pool
// with the byte budget capped at 1/2, 1/5, and 1/10 of the encoded
// footprint, base pages spilled to a file. Reported per cell: scan latency
// and rate, the pool's resident bytes after the sweep (must stay under the
// cap — the beyond-RAM guarantee), and the hit rate the CLOCK policy
// sustained while refaulting misses from disk.
package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"lstore"
)

// SpillExp runs the pool-cap sweep over a file-spilled table.
func SpillExp(o Options) error {
	o = o.withDefaults()
	dir, err := os.MkdirTemp("", "lstore-spill-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	o.printf("# Spill: full-table aggregate over sealed pages — %d rows, range size %d\n",
		o.TableSize, o.RangeSize)
	o.printf("%-16s %14s %14s %16s %16s %10s\n",
		"pool", "scan (ms)", "scans/s", "resident-bytes", "pool-cap", "hit%")

	// The all-resident baseline also teaches us the encoded footprint the
	// caps are fractions of.
	baseRate, resident, err := o.spillCell(nil, 0, 0)
	if err != nil {
		return err
	}

	for _, div := range []int{2, 5, 10} {
		spillPath := filepath.Join(dir, fmt.Sprintf("spill-%d.lsp", div))
		spill, err := lstore.OpenFileSpill(spillPath)
		if err != nil {
			return err
		}
		rate, _, err := o.spillCell(spill, resident/int64(div), baseRate)
		spill.Close()
		if err != nil {
			return err
		}
		_ = rate
	}
	return nil
}

// spillCell loads one table (spilled iff spill != nil), seals it, runs the
// aggregate sweep, and verifies the pool stayed inside its budget. It
// returns the scan rate and the sealed encoded footprint.
func (o Options) spillCell(spill lstore.SpillSink, poolBytes int64, baseRate float64) (float64, int64, error) {
	opts := lstore.TableOptions{
		RangeSize:   o.RangeSize,
		MergeBatch:  o.MergeBatch,
		ScanWorkers: o.ScanWorkers,
		Spill:       spill,
		PoolBytes:   poolBytes,
	}
	db := lstore.Open()
	defer db.Close()
	tbl, err := db.CreateTable("s", lstore.NewSchema("id",
		lstore.Column{Name: "id", Type: lstore.Int64},
		lstore.Column{Name: "val", Type: lstore.Int64},
		lstore.Column{Name: "pay", Type: lstore.Int64},
	), opts)
	if err != nil {
		return 0, 0, err
	}
	const batch = 4096
	for lo := 0; lo < o.TableSize; lo += batch {
		hi := lo + batch
		if hi > o.TableSize {
			hi = o.TableSize
		}
		tx := db.Begin(lstore.ReadCommitted)
		for i := lo; i < hi; i++ {
			if err := tbl.Insert(tx, lstore.Row{
				"id":  lstore.Int(int64(i)),
				"val": lstore.Int(int64((i / 64) % 1000)),
				"pay": lstore.Int(int64(i % 4096)),
			}); err != nil {
				tx.Abort()
				return 0, 0, err
			}
		}
		if err := tx.Commit(); err != nil {
			return 0, 0, err
		}
	}
	tbl.Merge()
	ts := db.Now()
	resident := int64(tbl.CompressionStats().PhysicalWords) * 8

	wantSum := int64(0)
	for i := 0; i < o.TableSize; i++ {
		wantSum += int64(i % 4096)
	}
	ms, perSec, err := measureQuery(o.Duration, func() error {
		res, err := tbl.Query().At(ts).Aggregate(lstore.Sum("pay"), lstore.Count())
		if err == nil && res.Rows(1) != int64(o.TableSize) {
			err = fmt.Errorf("aggregate saw %d rows, want %d", res.Rows(1), o.TableSize)
		}
		if err == nil && res.Int(0) != wantSum {
			err = fmt.Errorf("aggregate sum %d, want %d", res.Int(0), wantSum)
		}
		return err
	})
	if err != nil {
		return 0, 0, err
	}

	st := tbl.Stats()
	name := "all-resident"
	hitPct := 100.0
	if spill != nil {
		name = fmt.Sprintf("cap-1/%d", resident/max64(poolBytes, 1))
		if st.PoolResidentBytes > poolBytes {
			return 0, 0, fmt.Errorf("spill: resident %d bytes exceeds pool cap %d after scan",
				st.PoolResidentBytes, poolBytes)
		}
		if st.SpilledPages == 0 || st.PoolMisses == 0 {
			return 0, 0, fmt.Errorf("spill: nothing spilled (pages=%d misses=%d) — cap %d too large?",
				st.SpilledPages, st.PoolMisses, poolBytes)
		}
		if total := st.PoolHits + st.PoolMisses; total > 0 {
			hitPct = 100 * float64(st.PoolHits) / float64(total)
		}
		if baseRate > 0 {
			o.printf("%-16s vs all-resident: %.1f%% of baseline rate\n",
				name, 100*perSec/baseRate)
		}
	}
	reportedResident := resident
	if spill != nil {
		reportedResident = st.PoolResidentBytes
	}
	o.printf("%-16s %14.3f %14.1f %16d %16d %10.1f\n",
		name, ms, perSec, reportedResident, poolBytes, hitPct)
	o.record(Sample{
		Experiment: "spill", System: name,
		Labels:        map[string]int{"pool_cap_kb": int(poolBytes / 1024)},
		ScanMillis:    ms,
		ScansPerSec:   perSec,
		BytesResident: reportedResident,
	})
	return perSec, resident, nil
}
