// The compress experiment measures what encoding the sealed base pages buys:
// scan throughput across a selectivity sweep for three storage variants of
// the same table — compressed pages with predicate evaluation on the encoded
// representation (the default), the same compressed pages force-decoded
// before filtering (DisableEncodedScan), and raw uncompressed pages
// (DisableCompression) — plus the bytes resident in sealed pages and the
// checkpoint image size each variant produces.
package bench

import (
	"bytes"
	"fmt"

	"lstore"
)

// compressVariant is one storage configuration under test.
type compressVariant struct {
	name string
	opts lstore.TableOptions
}

// CompressExp runs the selectivity sweep over the three storage variants.
func CompressExp(o Options) error {
	o = o.withDefaults()
	variants := []compressVariant{
		{"encoded-scan", lstore.TableOptions{}},
		{"decode-then-filter", lstore.TableOptions{DisableEncodedScan: true}},
		{"raw-pages", lstore.TableOptions{DisableCompression: true}},
	}
	o.printf("# Compress: filtered scan over sealed pages — %d rows, range size %d\n",
		o.TableSize, o.RangeSize)
	o.printf("%-22s %6s %14s %14s %16s %14s\n",
		"system", "sel%", "scan (ms)", "scans/s", "bytes-resident", "image-bytes")

	for _, v := range variants {
		opts := v.opts
		opts.RangeSize = o.RangeSize
		opts.MergeBatch = o.MergeBatch
		opts.ScanWorkers = o.ScanWorkers
		db := lstore.Open()
		tbl, err := db.CreateTable("c", lstore.NewSchema("id",
			lstore.Column{Name: "id", Type: lstore.Int64},
			lstore.Column{Name: "val", Type: lstore.Int64},
			lstore.Column{Name: "pay", Type: lstore.Int64},
		), opts)
		if err != nil {
			db.Close()
			return err
		}
		// val runs in word-aligned blocks over [0,1000) — the shape run-length
		// and dictionary encodings exist for; pay is a dense narrow counter
		// (bit-packs). A window [0, 10*sel) on val selects sel% of rows.
		const batch = 4096
		for lo := 0; lo < o.TableSize; lo += batch {
			hi := lo + batch
			if hi > o.TableSize {
				hi = o.TableSize
			}
			tx := db.Begin(lstore.ReadCommitted)
			for i := lo; i < hi; i++ {
				if err := tbl.Insert(tx, lstore.Row{
					"id":  lstore.Int(int64(i)),
					"val": lstore.Int(int64((i / 64) % 1000)),
					"pay": lstore.Int(int64(i % 4096)),
				}); err != nil {
					tx.Abort()
					db.Close()
					return err
				}
			}
			if err := tx.Commit(); err != nil {
				db.Close()
				return err
			}
		}
		tbl.Merge()
		ts := db.Now()

		cs := tbl.CompressionStats()
		resident := int64(cs.PhysicalWords) * 8
		var img bytes.Buffer
		if _, err := db.Checkpoint(&img); err != nil {
			db.Close()
			return err
		}

		for _, pct := range []int{1, 5, 10, 50, 100} {
			hi := int64(10*pct - 1)
			want := int64(0)
			for i := 0; i < o.TableSize; i++ { // exact expected count (tail rows included)
				if int64((i/64)%1000) <= hi {
					want++
				}
			}
			ms, perSec, err := measureQuery(o.Duration, func() error {
				res, err := tbl.Query().
					Where(lstore.Between("val", lstore.Int(0), lstore.Int(hi))).
					At(ts).Aggregate(lstore.Sum("pay"), lstore.Count())
				if err == nil && res.Rows(1) != want {
					err = fmt.Errorf("selectivity %d%%: matched %d rows, want %d", pct, res.Rows(1), want)
				}
				return err
			})
			if err != nil {
				db.Close()
				return err
			}
			o.printf("%-22s %6d %14.3f %14.1f %16d %14d\n",
				v.name, pct, ms, perSec, resident, img.Len())
			o.record(Sample{
				Experiment: "compress", System: v.name,
				Labels:        map[string]int{"sel_pct": pct},
				ScanMillis:    ms,
				ScansPerSec:   perSec,
				BytesResident: resident,
				ImageBytes:    int64(img.Len()),
			})
		}
		o.printf("%-22s pages: raw=%d packed=%d dict=%d rle=%d ratio=%.2fx\n",
			v.name, cs.PagesRaw, cs.PagesPacked, cs.PagesDict, cs.PagesRLE, cs.Ratio())
		db.Close()
	}
	return nil
}
