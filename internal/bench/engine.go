// Package bench is the experiment harness reproducing §6: it drives the
// micro benchmark of internal/workload against the three storage
// architectures (L-Store, In-place Update + History, Delta + Blocking
// Merge) and prints, for every figure and table of the paper's evaluation,
// the same rows/series the paper reports.
package bench

import (
	"fmt"

	"lstore/internal/baseline/dbm"
	"lstore/internal/baseline/iuh"
	"lstore/internal/core"
	"lstore/internal/txn"
	"lstore/internal/types"
)

// Engine is the harness contract every storage architecture implements.
type Engine interface {
	Name() string
	// Preload inserts keys [0, n) with ncols columns (col 0 = key).
	Preload(n, ncols int) error
	// Begin/Commit/Abort manage one short transaction.
	Begin(level txn.Level) *txn.Txn
	Commit(t *txn.Txn) error
	Abort(t *txn.Txn)
	// Read fetches cols of key (read-committed); ok=false → missing.
	Read(t *txn.Txn, key int64, cols []int) bool
	// Update writes vals into cols of key.
	Update(t *txn.Txn, key int64, cols []int, vals []int64) error
	// ScanSum sums col over rows [0, span) at snapshot ts.
	ScanSum(ts types.Timestamp, col int, span int) (int64, int64)
	// Now returns the current logical time.
	Now() types.Timestamp
	// Maintain runs one background-maintenance step (merge trigger for DBM;
	// a no-op for engines with their own threads).
	Maintain()
	// Close stops background work.
	Close()
}

// ---------------------------------------------------------------------------
// L-Store adapter

// LStoreEngine adapts core.Store.
type LStoreEngine struct {
	store *core.Store
	row   bool
}

// LStoreOptions tunes the adapter.
type LStoreOptions struct {
	RangeSize   int
	MergeBatch  int
	ScanWorkers int
	RowLayout   bool
	// DisableAutoMerge turns the background merge thread off (Figure 8
	// sweeps merge batch sizes with explicit control).
	DisableAutoMerge bool
}

// NewLStore builds the L-Store engine with ncols columns.
func NewLStore(ncols int, o LStoreOptions) (*LStoreEngine, error) {
	schema := types.Schema{Key: 0}
	for i := 0; i < ncols; i++ {
		schema.Cols = append(schema.Cols, types.ColumnDef{Name: fmt.Sprintf("c%d", i), Type: types.Int64})
	}
	cfg := core.Config{
		RangeSize:         o.RangeSize,
		MergeBatch:        o.MergeBatch,
		ScanWorkers:       o.ScanWorkers,
		CumulativeUpdates: true,
		AutoMerge:         !o.DisableAutoMerge,
	}
	if o.RowLayout {
		cfg.Layout = core.RowLayout
	}
	s, err := core.NewStore(schema, cfg, nil, nil)
	if err != nil {
		return nil, err
	}
	return &LStoreEngine{store: s, row: o.RowLayout}, nil
}

func (e *LStoreEngine) Name() string {
	if e.row {
		return "L-Store (Row)"
	}
	return "L-Store"
}

// Store exposes the underlying store (experiments trigger ForceMerge etc.).
func (e *LStoreEngine) Store() *core.Store { return e.store }

func (e *LStoreEngine) Preload(n, ncols int) error {
	tm := e.store.TxnManager()
	vals := make([]types.Value, ncols)
	const batch = 4096
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		t := tm.Begin(txn.ReadCommitted)
		for k := lo; k < hi; k++ {
			vals[0] = types.IntValue(int64(k))
			for c := 1; c < ncols; c++ {
				vals[c] = types.IntValue(int64(k + c))
			}
			if err := e.store.Insert(t, vals); err != nil {
				tm.Abort(t)
				return err
			}
		}
		if err := tm.Commit(t); err != nil {
			return err
		}
	}
	e.store.ForceMerge() // seal full ranges so the steady state starts merged
	return nil
}

func (e *LStoreEngine) Begin(level txn.Level) *txn.Txn { return e.store.TxnManager().Begin(level) }
func (e *LStoreEngine) Commit(t *txn.Txn) error        { return e.store.TxnManager().Commit(t) }
func (e *LStoreEngine) Abort(t *txn.Txn)               { e.store.TxnManager().Abort(t) }

func (e *LStoreEngine) Read(t *txn.Txn, key int64, cols []int) bool {
	_, ok, err := e.store.Get(t, key, cols)
	return err == nil && ok
}

func (e *LStoreEngine) Update(t *txn.Txn, key int64, cols []int, vals []int64) error {
	vv := make([]types.Value, len(vals))
	for i, v := range vals {
		vv[i] = types.IntValue(v)
	}
	return e.store.Update(t, key, cols, vv)
}

func (e *LStoreEngine) ScanSum(ts types.Timestamp, col int, span int) (int64, int64) {
	// Span-limited scan: base RIDs map 1:1 onto preload order, so the
	// 10%-of-table scan is a RID-bounded columnar sum.
	return e.store.ScanSumRIDs(ts, col, 1, types.RID(span+1))
}

func (e *LStoreEngine) Now() types.Timestamp { return e.store.TxnManager().Now() }
func (e *LStoreEngine) Maintain()            {}
func (e *LStoreEngine) Close()               { e.store.Close() }

// ---------------------------------------------------------------------------
// IUH adapter

// IUHEngine adapts the In-place Update + History baseline.
type IUHEngine struct {
	store *iuh.Store
}

// NewIUH builds the baseline with ncols columns.
func NewIUH(ncols, rangeSize int) *IUHEngine {
	return &IUHEngine{store: iuh.New(ncols, iuh.Config{RangeSize: rangeSize}, nil)}
}

func (e *IUHEngine) Name() string { return "In-place Update + History" }

func (e *IUHEngine) Preload(n, ncols int) error {
	tm := e.store.TxnManager()
	t := tm.Begin(txn.ReadCommitted)
	row := make([]uint64, ncols)
	for k := 0; k < n; k++ {
		row[0] = types.EncodeInt64(int64(k))
		for c := 1; c < ncols; c++ {
			row[c] = types.EncodeInt64(int64(k + c))
		}
		if err := e.store.Insert(t, row); err != nil {
			e.store.Abort(t)
			return err
		}
	}
	return e.store.Commit(t)
}

func (e *IUHEngine) Begin(level txn.Level) *txn.Txn { return e.store.TxnManager().Begin(level) }
func (e *IUHEngine) Commit(t *txn.Txn) error        { return e.store.Commit(t) }
func (e *IUHEngine) Abort(t *txn.Txn)               { e.store.Abort(t) }

func (e *IUHEngine) Read(t *txn.Txn, key int64, cols []int) bool {
	_, ok := e.store.Read(t, types.EncodeInt64(key), cols)
	return ok
}

func (e *IUHEngine) Update(t *txn.Txn, key int64, cols []int, vals []int64) error {
	vv := make([]uint64, len(vals))
	for i, v := range vals {
		vv[i] = types.EncodeInt64(v)
	}
	return e.store.Update(t, types.EncodeInt64(key), cols, vv)
}

func (e *IUHEngine) ScanSum(ts types.Timestamp, col int, span int) (int64, int64) {
	return e.store.ScanSumSpan(ts, col, span)
}

func (e *IUHEngine) Now() types.Timestamp { return e.store.TxnManager().Now() }
func (e *IUHEngine) Maintain()            {}
func (e *IUHEngine) Close()               {}

// ---------------------------------------------------------------------------
// DBM adapter

// DBMEngine adapts the Delta + Blocking Merge baseline.
type DBMEngine struct {
	store *dbm.Store
}

// NewDBM builds the baseline with ncols columns.
func NewDBM(ncols, rangeSize, mergeThreshold int) *DBMEngine {
	return &DBMEngine{store: dbm.New(ncols, dbm.Config{
		RangeSize: rangeSize, MergeThreshold: mergeThreshold,
	}, nil)}
}

func (e *DBMEngine) Name() string { return "Delta + Blocking Merge" }

func (e *DBMEngine) Preload(n, ncols int) error {
	t := e.store.BeginTxn(txn.ReadCommitted)
	row := make([]uint64, ncols)
	for k := 0; k < n; k++ {
		row[0] = types.EncodeInt64(int64(k))
		for c := 1; c < ncols; c++ {
			row[c] = types.EncodeInt64(int64(k + c))
		}
		if err := e.store.Insert(t, row); err != nil {
			e.store.Abort(t)
			return err
		}
	}
	return e.store.Commit(t)
}

func (e *DBMEngine) Begin(level txn.Level) *txn.Txn { return e.store.BeginTxn(level) }
func (e *DBMEngine) Commit(t *txn.Txn) error        { return e.store.Commit(t) }
func (e *DBMEngine) Abort(t *txn.Txn)               { e.store.Abort(t) }

func (e *DBMEngine) Read(t *txn.Txn, key int64, cols []int) bool {
	_, ok := e.store.Read(t, types.EncodeInt64(key), cols)
	return ok
}

func (e *DBMEngine) Update(t *txn.Txn, key int64, cols []int, vals []int64) error {
	vv := make([]uint64, len(vals))
	for i, v := range vals {
		vv[i] = types.EncodeInt64(v)
	}
	return e.store.Update(t, types.EncodeInt64(key), cols, vv)
}

func (e *DBMEngine) ScanSum(ts types.Timestamp, col int, span int) (int64, int64) {
	return e.store.ScanSumSpan(ts, col, span)
}

func (e *DBMEngine) Now() types.Timestamp { return e.store.TxnManager().Now() }

// Maintain triggers the blocking merge when deltas crossed the threshold —
// the "merge thread" of §6.1.
func (e *DBMEngine) Maintain() { e.store.MaybeMerge() }
func (e *DBMEngine) Close()    {}
