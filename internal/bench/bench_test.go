package bench

import (
	"strings"
	"testing"
	"time"

	"lstore/internal/txn"
	"lstore/internal/workload"
)

// tinyOptions keeps harness tests fast and deterministic-ish.
func tinyOptions() Options {
	return Options{
		TableSize: 2048,
		Duration:  50 * time.Millisecond,
		Threads:   []int{1, 2},
		RangeSize: 512,
	}
}

func preloadAll(t *testing.T, w workload.Config) []Engine {
	t.Helper()
	o := tinyOptions().withDefaults()
	var engines []Engine
	for _, k := range threeEngines {
		e, err := o.prepared(k, w)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		engines = append(engines, e)
	}
	return engines
}

// TestEnginesAgreeOnWorkloadState runs the identical deterministic op
// sequence single-threaded against all three engines; their final scans
// must agree exactly — the architectures differ in performance, never in
// answers.
func TestEnginesAgreeOnWorkloadState(t *testing.T) {
	w := workload.ForContention(workload.High, 2048)
	engines := preloadAll(t, w)
	for _, e := range engines {
		gen := workload.NewGenerator(w, 99)
		committed := 0
		for i := 0; i < 300; i++ {
			if runTxn(e, gen.NextTxn()) {
				committed++
			}
		}
		if committed != 300 {
			t.Fatalf("%s: committed %d/300 single-threaded (no conflicts possible)", e.Name(), committed)
		}
		e.Maintain()
	}
	sums := make([]int64, len(engines))
	rows := make([]int64, len(engines))
	for i, e := range engines {
		tx := e.Begin(txn.Snapshot)
		sums[i], rows[i] = e.ScanSum(tx.Begin, 1, w.TableSize)
		e.Abort(tx)
	}
	for i := 1; i < len(engines); i++ {
		if sums[i] != sums[0] || rows[i] != rows[0] {
			t.Fatalf("engine state divergence: %s=%d/%d vs %s=%d/%d",
				engines[i].Name(), sums[i], rows[i], engines[0].Name(), sums[0], rows[0])
		}
	}
}

func TestEnginesAgreeOnPointReads(t *testing.T) {
	w := workload.ForContention(workload.High, 2048)
	engines := preloadAll(t, w)
	for _, e := range engines {
		gen := workload.NewGenerator(w, 5)
		for i := 0; i < 100; i++ {
			runTxn(e, gen.NextTxn())
		}
	}
	for key := int64(0); key < 32; key++ {
		for _, e := range engines {
			tx := e.Begin(txn.ReadCommitted)
			if !e.Read(tx, key, []int{1, 5, 9}) {
				t.Fatalf("%s: key %d missing", e.Name(), key)
			}
			e.Abort(tx)
		}
	}
}

func TestRunProducesThroughput(t *testing.T) {
	w := workload.ForContention(workload.Medium, 2048)
	o := tinyOptions().withDefaults()
	e, err := o.prepared(kindLStore, w)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	res := Run(RunConfig{
		Engine: e, Workload: w, UpdateThreads: 2, ScanThreads: 1,
		Duration: 100 * time.Millisecond, ReadsPerTxn: -1, WritesPerTxn: -1,
	})
	if res.Committed == 0 {
		t.Fatal("no transactions committed")
	}
	if res.TxnsPerSec <= 0 {
		t.Fatalf("throughput = %f", res.TxnsPerSec)
	}
	if res.Scans == 0 || res.ScanAvg <= 0 {
		t.Fatalf("scans = %d avg %v", res.Scans, res.ScanAvg)
	}
}

func TestRunPointReadMode(t *testing.T) {
	w := workload.ForContention(workload.Medium, 2048)
	o := tinyOptions().withDefaults()
	e, err := o.prepared(kindLStoreRow, w)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	res := Run(RunConfig{
		Engine: e, Workload: w, UpdateThreads: 2, ScanThreads: 0,
		Duration: 60 * time.Millisecond, ReadsPerTxn: -1, WritesPerTxn: -1,
		PointReadPctCols: 40,
	})
	if res.Committed == 0 {
		t.Fatal("no point-read txns committed")
	}
	if res.Aborted != 0 {
		t.Fatalf("read-only txns aborted: %d", res.Aborted)
	}
}

// TestExperimentsRunAndPrint smoke-tests every experiment at tiny scale,
// checking each emits its header and at least one data row.
func TestExperimentsRunAndPrint(t *testing.T) {
	for _, id := range ExperimentIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			var sb strings.Builder
			o := tinyOptions()
			o.Duration = 30 * time.Millisecond
			o.Out = &sb
			if err := Experiments[id](o); err != nil {
				t.Fatal(err)
			}
			out := sb.String()
			if !strings.Contains(out, "#") {
				t.Fatalf("no header:\n%s", out)
			}
			if len(strings.Split(strings.TrimSpace(out), "\n")) < 3 {
				t.Fatalf("no data rows:\n%s", out)
			}
		})
	}
}

func TestEngineNames(t *testing.T) {
	o := tinyOptions().withDefaults()
	names := map[engineKind]string{
		kindLStore:    "L-Store",
		kindLStoreRow: "L-Store (Row)",
		kindIUH:       "In-place Update + History",
		kindDBM:       "Delta + Blocking Merge",
	}
	for k, want := range names {
		e, err := o.build(k, 10)
		if err != nil {
			t.Fatal(err)
		}
		if e.Name() != want {
			t.Fatalf("name = %q, want %q", e.Name(), want)
		}
		e.Close()
	}
}
