package bench

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"lstore"
	"lstore/internal/wal"
)

// RecoverExp measures restart cost: rebuild a database from its full redo
// log versus from a checkpoint plus the log tail above the watermark. The
// history is TableSize preloaded rows followed by 2×TableSize update
// transactions; the checkpoint is taken at the end of that history, then a
// tail of extra update transactions (swept as a fraction of the history)
// runs before the simulated crash. The headline: checkpoint+tail restart
// time is bounded by checkpoint size + tail length, full replay by total
// history.
func RecoverExp(o Options) error {
	o = o.withDefaults()
	rows := o.TableSize
	historyTxns := 2 * rows

	schema := lstore.NewSchema("id",
		lstore.Column{Name: "id", Type: lstore.Int64},
		lstore.Column{Name: "a", Type: lstore.Int64},
		lstore.Column{Name: "b", Type: lstore.Int64},
	)
	topts := lstore.TableOptions{RangeSize: o.RangeSize, MergeBatch: o.MergeBatch, ScanWorkers: o.ScanWorkers}

	sink := &wal.BufferSink{}
	db := lstore.Open(lstore.WithWAL(sink, nil))
	tbl, err := db.CreateTable("t", schema, topts)
	if err != nil {
		return err
	}
	const batch = 4096
	for lo := 0; lo < rows; lo += batch {
		hi := lo + batch
		if hi > rows {
			hi = rows
		}
		tx := db.Begin(lstore.ReadCommitted)
		for i := lo; i < hi; i++ {
			if err := tbl.Insert(tx, lstore.Row{
				"id": lstore.Int(int64(i)), "a": lstore.Int(0), "b": lstore.Int(0),
			}); err != nil {
				tx.Abort()
				return err
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	update := func(i int) error {
		tx := db.Begin(lstore.ReadCommitted)
		if err := tbl.Update(tx, int64(i%rows), lstore.Row{"a": lstore.Int(int64(i))}); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit()
	}
	for i := 0; i < historyTxns; i++ {
		if err := update(i); err != nil {
			return err
		}
	}

	var ckpt bytes.Buffer
	info, err := db.Checkpoint(&ckpt)
	if err != nil {
		return err
	}
	// The operational flow: checkpoint, then truncate the log to the
	// watermark. Full-replay restarts read prefix+tail; checkpoint restarts
	// read image+tail only.
	prefix := sink.Bytes()
	if _, err := db.TruncateWAL(info.LSN); err != nil {
		return err
	}

	restart := func(ckptImage []byte, logBytes []byte) (time.Duration, lstore.RecoverStats, error) {
		db2 := lstore.Open()
		defer db2.Close()
		if _, err := db2.CreateTable("t", schema, topts); err != nil {
			return 0, lstore.RecoverStats{}, err
		}
		var ckptReader io.Reader
		if ckptImage != nil {
			ckptReader = bytes.NewReader(ckptImage)
		}
		t0 := time.Now()
		stats, rerr := lstore.Recover(db2, ckptReader, bytes.NewReader(logBytes))
		return time.Since(t0), stats, rerr
	}

	o.printf("# Recover: restart time, full-log replay vs checkpoint+tail — %d rows, %d history txns, watermark LSN %d, checkpoint %d KB\n",
		rows, historyTxns, info.LSN, ckpt.Len()/1024)
	o.printf("%-10s %12s %12s %16s %18s %12s\n", "tail-txns", "log (KB)", "tail (KB)", "full replay (ms)", "ckpt+tail (ms)", "redone ops")

	tailFracs := []int{0, 5, 25} // percent of history length
	prevTail := 0
	for _, pct := range tailFracs {
		tailTxns := historyTxns * pct / 100
		for i := prevTail; i < tailTxns; i++ {
			if err := update(historyTxns + i); err != nil {
				return err
			}
		}
		prevTail = tailTxns
		tail := sink.Bytes()                                    // retained log: records above the watermark
		full := append(append([]byte(nil), prefix...), tail...) // what replay-from-scratch must read

		fullDur, fullStats, err := restart(nil, full)
		if err != nil {
			return err
		}
		ckptDur, ckptStats, err := restart(ckpt.Bytes(), tail)
		if err != nil {
			return err
		}
		if ckptStats.RedoneTxns != tailTxns {
			return fmt.Errorf("recover: redid %d tail txns, expected %d", ckptStats.RedoneTxns, tailTxns)
		}
		o.printf("%-10d %12d %12d %16.1f %18.1f %12d\n",
			tailTxns, len(full)/1024, len(tail)/1024,
			float64(fullDur.Microseconds())/1000, float64(ckptDur.Microseconds())/1000,
			ckptStats.RedoneOps)
		o.record(Sample{
			Experiment: "recover", System: "full-replay",
			Labels:        map[string]int{"tail_txns": tailTxns, "redone_ops": fullStats.RedoneOps},
			RestartMillis: float64(fullDur.Microseconds()) / 1000,
		})
		o.record(Sample{
			Experiment: "recover", System: "checkpoint+tail",
			Labels:        map[string]int{"tail_txns": tailTxns, "redone_ops": ckptStats.RedoneOps},
			RestartMillis: float64(ckptDur.Microseconds()) / 1000,
		})
	}
	db.Close()
	return nil
}
