// The "serve" experiment: end-to-end throughput and latency of the network
// service layer (internal/server) over a file-backed WAL, isolating what
// group commit buys at the wire. Concurrent HTTP clients commit insert
// transactions of {1, 8, 64} operations each, with group commit on and
// off; a final overload cell shrinks the admission queue until requests
// are shed to show backpressure working (429 + Retry-After, not queueing
// collapse).
package bench

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"lstore"
	"lstore/internal/server"
)

// serveCellResult is one measured (group, batch, clients) point.
type serveCellResult struct {
	committed  int64 // transactions acknowledged with 200
	shed       int64 // requests answered 429
	elapsed    time.Duration
	latencies  []time.Duration // one per committed request
	syncs      int             // WAL fsyncs over the window
	newBatches int             // group batches over the window
}

func (r serveCellResult) txnsPerSec() float64 {
	return float64(r.committed) / r.elapsed.Seconds()
}

func (r serveCellResult) pctile(p float64) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	sort.Slice(r.latencies, func(i, j int) bool { return r.latencies[i] < r.latencies[j] })
	i := int(p * float64(len(r.latencies)-1))
	return r.latencies[i]
}

// serveCell opens a fresh durable store under dir, serves it on a loopback
// listener, and drives it closed-loop with `clients` concurrent workers for
// o.Duration. Each request is one transaction of `batch` inserts with keys
// unique across the cell.
func serveCell(o Options, dir string, group bool, batch, clients int, cfg server.Config) (serveCellResult, error) {
	var res serveCellResult
	sub := filepath.Join(dir, fmt.Sprintf("g%v-b%d-q%d", group, batch, cfg.TxnQueue))
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return res, err
	}
	st, err := server.OpenStore(server.StoreConfig{
		WALPath:        filepath.Join(sub, "wal"),
		CheckpointPath: filepath.Join(sub, "ckpt"),
		NoGroupCommit:  !group,
		Tables: []server.TableSpec{{
			Name: "kv", Key: "id",
			Columns: []lstore.Column{
				{Name: "id", Type: lstore.Int64},
				{Name: "v", Type: lstore.Int64},
			},
		}},
	})
	if err != nil {
		return res, err
	}
	cfg.Checkpoint = st.Checkpoint
	srv := server.New(st.DB, cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		st.Close()
		return res, err
	}
	go srv.Serve(l) //nolint:errcheck // closed via the http.Server below
	url := "http://" + l.Addr().String() + "/v1/txn"

	transport := &http.Transport{MaxIdleConns: clients, MaxIdleConnsPerHost: clients}
	client := &http.Client{Transport: transport}

	startSyncs := st.DB.WALInfo().Syncs
	startBatches := st.DB.WALInfo().GroupBatches
	deadline := time.Now().Add(o.Duration)
	var mu sync.Mutex // guards the per-worker merges below
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var lats []time.Duration
			var committed, shed int64
			for i := 0; time.Now().Before(deadline); i++ {
				var sb strings.Builder
				sb.WriteString(`{"ops":[`)
				for j := 0; j < batch; j++ {
					if j > 0 {
						sb.WriteByte(',')
					}
					key := int64(w)*1_000_000_000 + int64(i)*int64(batch) + int64(j) + 1
					fmt.Fprintf(&sb, `{"op":"insert","table":"kv","row":{"id":%d,"v":%d}}`, key, key)
				}
				sb.WriteString(`]}`)
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", strings.NewReader(sb.String()))
				if err != nil {
					errCh <- err
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
				resp.Body.Close()
				switch resp.StatusCode {
				case 200:
					committed++
					lats = append(lats, time.Since(t0))
				case http.StatusTooManyRequests:
					shed++
				default:
					errCh <- fmt.Errorf("serve cell: unexpected status %d", resp.StatusCode)
					return
				}
			}
			mu.Lock()
			res.committed += committed
			res.shed += shed
			res.latencies = append(res.latencies, lats...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	res.elapsed = o.Duration
	wi := st.DB.WALInfo()
	res.syncs = wi.Syncs - startSyncs
	res.newBatches = wi.GroupBatches - startBatches
	transport.CloseIdleConnections()

	// Tear the cell down completely (drain, final checkpoint, close) so the
	// next cell starts from a quiet machine.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	err = srv.Shutdown(shutdownCtx)
	cancel()
	select {
	case werr := <-errCh:
		return res, werr
	default:
	}
	return res, err
}

// ServeExp measures the service layer end to end: committed transactions/s
// and request latency per (group commit, ops-per-txn) cell, then one
// deliberately undersized-queue cell to show admission control shedding
// instead of queueing without bound.
func ServeExp(o Options) error {
	o = o.withDefaults()
	clients := 16
	dir, err := os.MkdirTemp("", "lstore-serve-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	o.printf("# serve: HTTP txn throughput/latency vs group commit — %d closed-loop clients, file-backed WAL\n", clients)
	o.printf("%-8s %-8s %12s %10s %10s %14s\n", "group", "ops/txn", "txns/s", "p50(us)", "p99(us)", "syncs/commit")
	for _, group := range []bool{true, false} {
		for _, batch := range []int{1, 8, 64} {
			res, err := serveCell(o, dir, group, batch, clients, server.Config{})
			if err != nil {
				return err
			}
			spc := float64(res.syncs) / float64(max64(res.committed, 1))
			o.printf("%-8v %-8d %12.0f %10d %10d %14.3f\n",
				group, batch, res.txnsPerSec(),
				res.pctile(0.50).Microseconds(), res.pctile(0.99).Microseconds(), spc)
			o.record(Sample{
				Experiment: "serve", System: "L-Store",
				Labels:         map[string]int{"group": boolInt(group), "batch": batch, "clients": clients},
				TxnsPerSec:     res.txnsPerSec(),
				P50Micros:      float64(res.pctile(0.50).Microseconds()),
				P99Micros:      float64(res.pctile(0.99).Microseconds()),
				SyncsPerCommit: spc,
			})
		}
	}

	// Overload: a 2-deep admission queue against 16 clients must shed with
	// 429 (the shed count is the point — the server stays responsive for
	// what it does admit).
	res, err := serveCell(o, dir, true, 1, clients, server.Config{TxnQueue: 2})
	if err != nil {
		return err
	}
	o.printf("overload (txn queue 2): %d committed, %d shed with 429 (%.0f%% of offered)\n",
		res.committed, res.shed, 100*float64(res.shed)/float64(max64(res.committed+res.shed, 1)))
	if res.shed == 0 {
		o.printf("  (warning: queue never filled — host too fast for this cell to overload)\n")
	}
	o.record(Sample{
		Experiment: "serve", System: "L-Store",
		Labels:     map[string]int{"group": 1, "batch": 1, "clients": clients, "txn_queue": 2},
		TxnsPerSec: res.txnsPerSec(),
		P50Micros:  float64(res.pctile(0.50).Microseconds()),
		P99Micros:  float64(res.pctile(0.99).Microseconds()),
		ShedReqs:   res.shed,
	})
	return nil
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
