package bench

import (
	"sync"
	"sync/atomic"
	"time"

	"lstore/internal/txn"
	"lstore/internal/workload"
)

// RunConfig describes one measurement run.
type RunConfig struct {
	Engine        Engine
	Workload      workload.Config
	UpdateThreads int
	ScanThreads   int
	Duration      time.Duration
	// ReadsPerTxn/WritesPerTxn override the workload's txn shape when
	// non-negative (Figure 9 sweeps). -1 keeps defaults.
	ReadsPerTxn  int
	WritesPerTxn int
	// PointReadPctCols, when > 0, replaces update txns with 10-statement
	// point-read txns fetching that % of columns (Table 9).
	PointReadPctCols int
	// Seed differentiates runs.
	Seed int64
}

// Result aggregates a run's measurements.
type Result struct {
	Committed uint64
	Aborted   uint64
	Elapsed   time.Duration
	// TxnsPerSec is committed short transactions per second.
	TxnsPerSec float64
	// Scans and ScanAvg describe the analytical side.
	Scans       uint64
	ScanAvg     time.Duration
	ScansPerSec float64
}

// Run preconditions: Engine already preloaded. It spawns UpdateThreads
// short-transaction workers and ScanThreads snapshot scanners, runs for
// Duration, and returns the aggregate.
func Run(cfg RunConfig) Result {
	var committed, aborted, scans atomic.Uint64
	var scanNanos atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	nr, nw := cfg.Workload.ReadsPerTxn, cfg.Workload.WritesPerTxn
	if cfg.ReadsPerTxn >= 0 && cfg.WritesPerTxn >= 0 {
		nr, nw = cfg.ReadsPerTxn, cfg.WritesPerTxn
	}

	for w := 0; w < cfg.UpdateThreads; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			gen := workload.NewGenerator(cfg.Workload, seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				var ops []workload.Op
				if cfg.PointReadPctCols > 0 {
					ops = gen.PointReadTxn(10, cfg.PointReadPctCols)
				} else {
					ops = gen.MixedTxn(nr, nw)
				}
				if runTxn(cfg.Engine, ops) {
					committed.Add(1)
				} else {
					aborted.Add(1)
				}
			}
		}(cfg.Seed + int64(w))
	}

	span := cfg.Workload.ScanSpan()
	for sThread := 0; sThread < cfg.ScanThreads; sThread++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				// Long-running read-only transaction under snapshot
				// isolation (§6.1): DBM's adapter holds the drain latch for
				// its duration via Begin/Abort.
				t := cfg.Engine.Begin(txn.Snapshot)
				cfg.Engine.ScanSum(t.Begin, 1, span)
				cfg.Engine.Abort(t) // read-only: abort == cheap commit
				scanNanos.Add(uint64(time.Since(t0)))
				scans.Add(1)
			}
		}()
	}

	// Maintenance ticker (DBM's merge thread; no-op elsewhere).
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				cfg.Engine.Maintain()
			}
		}
	}()

	start := time.Now()
	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{
		Committed: committed.Load(),
		Aborted:   aborted.Load(),
		Scans:     scans.Load(),
		Elapsed:   elapsed,
	}
	res.TxnsPerSec = float64(res.Committed) / elapsed.Seconds()
	if res.Scans > 0 {
		res.ScanAvg = time.Duration(scanNanos.Load() / res.Scans)
		res.ScansPerSec = float64(res.Scans) / elapsed.Seconds()
	}
	return res
}

// RunOneTxn executes one short transaction against e; false = aborted
// (conflict). Exposed for the repository-level benchmarks.
func RunOneTxn(e Engine, ops []workload.Op) bool { return runTxn(e, ops) }

// runTxn executes one short transaction; false = aborted (conflict).
func runTxn(e Engine, ops []workload.Op) bool {
	t := e.Begin(txn.ReadCommitted)
	for i := range ops {
		op := &ops[i]
		if op.Write {
			if err := e.Update(t, op.Key, op.Cols, op.Vals); err != nil {
				e.Abort(t)
				return false
			}
		} else {
			if !e.Read(t, op.Key, op.Cols) {
				e.Abort(t)
				return false
			}
		}
	}
	return e.Commit(t) == nil
}

// MeasureScan runs a single scan and reports its duration (Figure 8 /
// Tables 7–8 measure scan latency directly).
func MeasureScan(e Engine, w workload.Config) time.Duration {
	t := e.Begin(txn.Snapshot)
	t0 := time.Now()
	e.ScanSum(t.Begin, 1, w.ScanSpan())
	d := time.Since(t0)
	e.Abort(t)
	return d
}
