// The query experiment measures the unified Query API: predicate pushdown
// through the scan engine's filtered bulk face versus the same filter
// applied caller-side in a Scan callback, plus the filtered aggregate
// kernels — the HTAP shape the paper's §6.1 scans approximate once
// selection actually pushes into the columnar read path.
package bench

import (
	"fmt"
	"time"

	"lstore"
)

// QueryExp sweeps filter selectivity (1%, 10%, 100% of rows) and prints,
// per selectivity: the filtered-query latency through predicate pushdown,
// the equivalent Scan-with-callback-filter latency, and the filtered
// aggregate (SUM+COUNT+MIN+MAX) latency.
func QueryExp(o Options) error {
	o = o.withDefaults()
	db := lstore.Open()
	defer db.Close()
	tbl, err := db.CreateTable("q", lstore.NewSchema("id",
		lstore.Column{Name: "id", Type: lstore.Int64},
		lstore.Column{Name: "val", Type: lstore.Int64},
		lstore.Column{Name: "pay", Type: lstore.Int64},
	), lstore.TableOptions{RangeSize: o.RangeSize, MergeBatch: o.MergeBatch, ScanWorkers: o.ScanWorkers})
	if err != nil {
		return err
	}
	const batch = 4096
	for lo := 0; lo < o.TableSize; lo += batch {
		hi := lo + batch
		if hi > o.TableSize {
			hi = o.TableSize
		}
		tx := db.Begin(lstore.ReadCommitted)
		for i := lo; i < hi; i++ {
			if err := tbl.Insert(tx, lstore.Row{
				"id": lstore.Int(int64(i)), "val": lstore.Int(int64(i)), "pay": lstore.Int(int64(-i)),
			}); err != nil {
				tx.Abort()
				return err
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	tbl.Merge()
	ts := db.Now()

	o.printf("# Query: filtered scan + aggregate vs callback filtering — %d rows\n", o.TableSize)
	o.printf("%-8s %20s %20s %20s\n", "sel%", "query pushdown (ms)", "scan+filter (ms)", "query aggregate (ms)")
	for _, pct := range []int{1, 10, 100} {
		lo := int64(0)
		hi := int64(o.TableSize*pct/100) - 1
		filter := []lstore.Predicate{lstore.Between("val", lstore.Int(lo), lstore.Int(hi))}

		queryMS, queryPS, err := measureQuery(o.Duration, func() error {
			n := int64(0)
			err := tbl.Query().Select("pay").Where(filter...).At(ts).Rows(func(rv *lstore.RowView) bool {
				n++
				return true
			})
			if err == nil && n != hi-lo+1 {
				err = fmt.Errorf("query matched %d rows, want %d", n, hi-lo+1)
			}
			return err
		})
		if err != nil {
			return err
		}
		scanMSv, _, err := measureQuery(o.Duration, func() error {
			n := int64(0)
			err := tbl.Scan(ts, []string{"val", "pay"}, func(_ int64, row lstore.Row) bool {
				if v := row["val"].Int(); v >= lo && v <= hi {
					n++
				}
				return true
			})
			if err == nil && n != hi-lo+1 {
				err = fmt.Errorf("scan matched %d rows, want %d", n, hi-lo+1)
			}
			return err
		})
		if err != nil {
			return err
		}
		aggMS, aggPS, err := measureQuery(o.Duration, func() error {
			res, err := tbl.Query().Where(filter...).At(ts).
				Aggregate(lstore.Sum("pay"), lstore.Count(), lstore.Min("pay"), lstore.Max("pay"))
			if err == nil && res.Rows(1) != hi-lo+1 {
				err = fmt.Errorf("aggregate counted %d rows, want %d", res.Rows(1), hi-lo+1)
			}
			return err
		})
		if err != nil {
			return err
		}

		o.printf("%-8d %20.3f %20.3f %20.3f\n", pct, queryMS, scanMSv, aggMS)
		o.record(Sample{
			Experiment: "query", System: "L-Store Query",
			Labels:      map[string]int{"sel_pct": pct},
			ScanMillis:  queryMS,
			ScansPerSec: queryPS,
		})
		o.record(Sample{
			Experiment: "query", System: "L-Store Scan+filter",
			Labels:     map[string]int{"sel_pct": pct},
			ScanMillis: scanMSv,
		})
		o.record(Sample{
			Experiment: "query", System: "L-Store QueryAggregate",
			Labels:      map[string]int{"sel_pct": pct},
			ScanMillis:  aggMS,
			ScansPerSec: aggPS,
		})
	}
	return nil
}

// measureQuery runs fn repeatedly for roughly window and returns the average
// latency in milliseconds and the rate per second.
func measureQuery(window time.Duration, fn func() error) (ms float64, perSec float64, err error) {
	// One warm-up pass populates the scratch pools.
	if err := fn(); err != nil {
		return 0, 0, err
	}
	start := time.Now()
	runs := 0
	for runs == 0 || time.Since(start) < window { // at least one timed run
		if err := fn(); err != nil {
			return 0, 0, err
		}
		runs++
	}
	elapsed := time.Since(start)
	avg := elapsed / time.Duration(runs)
	return float64(avg.Microseconds()) / 1000, float64(runs) / elapsed.Seconds(), nil
}
