// Machine-readable benchmark results. cmd/lstore-bench's -json flag attaches
// a Report to the Options it runs; every experiment records one Sample per
// measured cell alongside its printed row, and the CLI writes the collected
// report to disk so the repo can accumulate a BENCH_*.json perf trajectory
// across PRs.
package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"time"
)

// Sample is one measured cell of one experiment: a (system, parameters)
// point with whichever metrics that experiment produces.
type Sample struct {
	Experiment string `json:"experiment"`
	System     string `json:"system"`
	// Labels carries the experiment's swept parameters (threads,
	// merge_batch, read_pct, scan_threads, pct_cols, ...).
	Labels map[string]int `json:"labels,omitempty"`

	TxnsPerSec  float64 `json:"txns_per_sec,omitempty"`
	ScansPerSec float64 `json:"scans_per_sec,omitempty"`
	ScanMillis  float64 `json:"scan_ms,omitempty"`
	// RestartMillis is the wall-clock cost of rebuilding a database after a
	// simulated crash (the "recover" experiment).
	RestartMillis float64 `json:"restart_ms,omitempty"`
	// The "serve" experiment's request-level metrics: end-to-end HTTP commit
	// latency percentiles, WAL fsyncs amortized per committed transaction,
	// and requests shed with 429 by admission control.
	P50Micros      float64 `json:"p50_us,omitempty"`
	P99Micros      float64 `json:"p99_us,omitempty"`
	SyncsPerCommit float64 `json:"syncs_per_commit,omitempty"`
	ShedReqs       int64   `json:"shed_reqs,omitempty"`
	// The "compress" experiment's storage metrics: bytes resident in sealed
	// base pages and the size of a full checkpoint image.
	BytesResident int64 `json:"bytes_resident,omitempty"`
	ImageBytes    int64 `json:"image_bytes,omitempty"`
}

// Report aggregates the samples of one harness invocation plus the knobs
// that shaped them.
type Report struct {
	Timestamp  string `json:"timestamp"`
	GoMaxProcs int    `json:"gomaxprocs"`

	Rows        int    `json:"rows"`
	DurationMS  int64  `json:"duration_ms"`
	RangeSize   int    `json:"range_size"`
	MergeBatch  int    `json:"merge_batch"`
	ScanWorkers int    `json:"scan_workers"`
	GoVersion   string `json:"go_version"`

	Samples []Sample `json:"samples"`
}

// NewReport stamps a report with the run configuration.
func NewReport(o Options) *Report {
	o = o.withDefaults()
	return &Report{
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Rows:        o.TableSize,
		DurationMS:  o.Duration.Milliseconds(),
		RangeSize:   o.RangeSize,
		MergeBatch:  o.MergeBatch,
		ScanWorkers: o.ScanWorkers,
		GoVersion:   runtime.Version(),
	}
}

// Write serializes the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// record appends a sample when a report is attached. Experiments run
// sequentially, so no locking is needed.
func (o Options) record(s Sample) {
	if o.Report != nil {
		o.Report.Samples = append(o.Report.Samples, s)
	}
}

// scanMS converts a scan latency to the milliseconds the tables print.
func scanMS(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
