// Package dbm implements the Delta + Blocking Merge baseline of §6.1,
// inspired by HANA's main + delta store design [15]: a read-optimized,
// compressed main store plus per-range columnar delta stores holding recent
// updates (updated columns only), periodically consolidated by a merge that
// "requires the draining of all active transactions before the merge begins
// and after the merge ends".
//
// Faithful contention profile: every transaction holds a shared drain latch
// for its entire lifetime; the merge takes the latch exclusively, stalling
// the whole system for the duration of each consolidation. Merge frequency
// grows with update volume and with contention (smaller active sets
// concentrate updates, filling per-range deltas faster) — the collapse the
// paper shows in Figures 7 and 9.
//
// For fairness the engine keeps columnar storage, a single primary index,
// an embedded indirection (per-record newest delta pointer) and the shared
// transaction layer, mirroring the paper's setup.
package dbm

import (
	"fmt"
	"sync"

	"lstore/internal/index"
	"lstore/internal/txn"
	"lstore/internal/types"
)

// Config tunes the baseline.
type Config struct {
	// RangeSize is records per range (per-range delta stores, §6.1: "we
	// applied our range partitioning scheme to the delta store").
	RangeSize int
	// MergeThreshold is the per-range delta size that triggers a blocking
	// merge.
	MergeThreshold int
}

func (c Config) withDefaults() Config {
	if c.RangeSize == 0 {
		c.RangeSize = 4096
	}
	if c.MergeThreshold == 0 {
		c.MergeThreshold = c.RangeSize / 2
	}
	return c
}

// deltaEntry is one update in a range's delta store.
type deltaEntry struct {
	slot      int
	prev      int32 // previous entry for the same record (-1 = none)
	startSlot uint64
	cols      uint64
	vals      []uint64
}

// dbmRange is one range: immutable main columns + a growing delta.
type dbmRange struct {
	mu     sync.Mutex // guards delta append and main swap
	main   [][]uint64 // read-only between merges
	start  []uint64   // version start of the main image
	newest []int32    // record -> newest delta entry (-1 = none)
	delta  []deltaEntry
	used   int
}

// Store is the baseline engine.
type Store struct {
	cfg     Config
	ncols   int
	tm      *txn.Manager
	primary *index.Primary

	// drain is the blocking-merge barrier: transactions hold it shared for
	// their lifetime; the merge holds it exclusively.
	drain sync.RWMutex

	rangesMu sync.RWMutex
	ranges   []*dbmRange

	merges int64
	mmu    sync.Mutex
}

// New creates a DBM store with ncols data columns (column 0 is the key).
func New(ncols int, cfg Config, tm *txn.Manager) *Store {
	if tm == nil {
		tm = txn.NewManager()
	}
	return &Store{cfg: cfg.withDefaults(), ncols: ncols, tm: tm, primary: index.NewPrimary()}
}

// TxnManager returns the shared transaction manager.
func (s *Store) TxnManager() *txn.Manager { return s.tm }

// BeginTxn starts a transaction AND acquires the shared drain latch; it must
// be paired with EndTxn (via Commit/Abort). This is what makes the merge
// "blocking": an exclusive acquisition drains every active transaction.
func (s *Store) BeginTxn(level txn.Level) *txn.Txn {
	s.drain.RLock()
	return s.tm.Begin(level)
}

// Commit releases the drain latch after committing.
func (s *Store) Commit(t *txn.Txn) error {
	err := s.tm.Commit(t)
	s.drain.RUnlock()
	return err
}

// Abort releases the drain latch after aborting.
func (s *Store) Abort(t *txn.Txn) {
	s.tm.Abort(t)
	s.drain.RUnlock()
}

func newDBMRange(n, ncols int) *dbmRange {
	r := &dbmRange{
		main:   make([][]uint64, ncols),
		start:  make([]uint64, n),
		newest: make([]int32, n),
	}
	for c := range r.main {
		r.main[c] = make([]uint64, n)
	}
	for i := range r.newest {
		r.newest[i] = -1
		r.start[i] = types.NullSlot
	}
	return r
}

// Insert adds a record (vals[0] is the key) directly to the main store slot
// (inserts land in main; the delta holds updates, as in the original HANA
// main/delta split for this benchmark's preloaded tables).
func (s *Store) Insert(t *txn.Txn, vals []uint64) error {
	if len(vals) != s.ncols {
		return fmt.Errorf("dbm: arity %d, want %d", len(vals), s.ncols)
	}
	ri, slot := s.allocSlot()
	rid := types.RID(uint64(ri)*uint64(s.cfg.RangeSize) + uint64(slot) + 1)
	if _, installed := s.primary.PutIfAbsent(vals[0], rid); !installed {
		return fmt.Errorf("dbm: duplicate key %d", vals[0])
	}
	r := s.rangeAt(ri)
	r.mu.Lock()
	for c := 0; c < s.ncols; c++ {
		r.main[c][slot] = vals[c]
	}
	t.NoteWrite()
	r.start[slot] = t.ID
	r.mu.Unlock()
	return nil
}

func (s *Store) allocSlot() (int, int) {
	s.rangesMu.Lock()
	defer s.rangesMu.Unlock()
	if len(s.ranges) == 0 || s.ranges[len(s.ranges)-1].used >= s.cfg.RangeSize {
		s.ranges = append(s.ranges, newDBMRange(s.cfg.RangeSize, s.ncols))
	}
	r := s.ranges[len(s.ranges)-1]
	slot := r.used
	r.used++
	return len(s.ranges) - 1, slot
}

func (s *Store) rangeAt(i int) *dbmRange {
	s.rangesMu.RLock()
	defer s.rangesMu.RUnlock()
	return s.ranges[i]
}

func (s *Store) locate(key uint64) (int, int, bool) {
	rid, ok := s.primary.Get(key)
	if !ok {
		return 0, 0, false
	}
	v := uint64(rid) - 1
	return int(v / uint64(s.cfg.RangeSize)), int(v % uint64(s.cfg.RangeSize)), true
}

// Update appends the new values (updated columns only) to the range's delta
// store. A full delta triggers a blocking merge after the caller's
// transaction finishes (flagged here, executed by MaybeMerge from the
// worker loop or the next Begin).
func (s *Store) Update(t *txn.Txn, key uint64, cols []int, vals []uint64) error {
	ri, slot, ok := s.locate(key)
	if !ok {
		return fmt.Errorf("dbm: key %d not found", key)
	}
	r := s.rangeAt(ri)
	var bits uint64
	for _, c := range cols {
		bits |= 1 << uint(c)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// Write-write conflict: newest version must not belong to a live txn.
	cur := s.newestStartLocked(r, slot)
	if cur != t.ID {
		if _, st := s.tm.Resolve(cur); st == txn.StatusUncommitted || st == txn.StatusPreCommitted {
			return txn.ErrConflict
		}
	}
	// Store values aligned with ascending column order inside the entry.
	ordered := append([]int(nil), cols...)
	vv := append([]uint64(nil), vals...)
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j] < ordered[j-1]; j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
			vv[j], vv[j-1] = vv[j-1], vv[j]
		}
	}
	r.delta = append(r.delta, deltaEntry{
		slot: slot, prev: r.newest[slot], startSlot: t.ID, cols: bits, vals: vv,
	})
	t.NoteWrite()
	r.newest[slot] = int32(len(r.delta) - 1)
	return nil
}

// newestStartLocked returns the start slot of the record's newest version.
func (s *Store) newestStartLocked(r *dbmRange, slot int) uint64 {
	if e := r.newest[slot]; e >= 0 {
		return r.delta[e].startSlot
	}
	return r.start[slot]
}

// Read returns cols of the record with key (latest committed or own),
// overlaying delta entries on the main image.
func (s *Store) Read(t *txn.Txn, key uint64, cols []int) ([]uint64, bool) {
	ri, slot, ok := s.locate(key)
	if !ok {
		return nil, false
	}
	r := s.rangeAt(ri)
	out := make([]uint64, len(cols))
	need := uint64(0)
	for i, c := range cols {
		out[i] = types.NullSlot
		need |= 1 << uint(c)
		_ = i
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.newest[slot]
	for e >= 0 && need != 0 {
		d := &r.delta[e]
		visible := d.startSlot == t.ID
		if !visible {
			if _, st := s.tm.Resolve(d.startSlot); st == txn.StatusCommitted {
				visible = true
			}
		}
		if visible {
			for i, c := range cols {
				if need&(1<<uint(c)) != 0 && d.cols&(1<<uint(c)) != 0 {
					out[i] = d.value(c)
					need &^= 1 << uint(c)
				}
			}
		}
		e = d.prev
	}
	for i, c := range cols {
		if need&(1<<uint(c)) != 0 {
			out[i] = r.main[c][slot]
		}
	}
	return out, true
}

func (d *deltaEntry) value(col int) uint64 {
	vi := 0
	for c := 0; c < col; c++ {
		if d.cols&(1<<uint(c)) != 0 {
			vi++
		}
	}
	return d.vals[vi]
}

// ScanSum computes SUM(col) at ts over main + delta overlay. The caller
// must hold a transaction (and with it the shared drain latch).
func (s *Store) ScanSum(ts types.Timestamp, col int) (int64, int64) {
	var sum, rows int64
	s.rangesMu.RLock()
	ranges := append([]*dbmRange(nil), s.ranges...)
	s.rangesMu.RUnlock()
	for _, r := range ranges {
		r.mu.Lock()
		for slot := 0; slot < r.used; slot++ {
			v, ok := s.valueAtLocked(r, slot, col, ts)
			if ok && v != types.NullSlot {
				sum += types.DecodeInt64(v)
				rows++
			}
		}
		r.mu.Unlock()
	}
	return sum, rows
}

// valueAtLocked resolves slot's col value at ts.
func (s *Store) valueAtLocked(r *dbmRange, slot, col int, ts types.Timestamp) (uint64, bool) {
	e := r.newest[slot]
	for e >= 0 {
		d := &r.delta[e]
		if d.cols&(1<<uint(col)) != 0 {
			cts, st := s.tm.Resolve(d.startSlot)
			if st == txn.StatusCommitted && cts <= ts {
				return d.value(col), true
			}
		}
		e = d.prev
	}
	cts, st := s.tm.Resolve(r.start[slot])
	if st != txn.StatusCommitted || cts > ts {
		return 0, false
	}
	return r.main[col][slot], true
}

// ScanSumSpan is ScanSum limited to the first span rows (the benchmark's
// 10%-of-table analytical scans).
func (s *Store) ScanSumSpan(ts types.Timestamp, col int, span int) (int64, int64) {
	var sum, rows int64
	remaining := span
	s.rangesMu.RLock()
	ranges := append([]*dbmRange(nil), s.ranges...)
	s.rangesMu.RUnlock()
	for _, r := range ranges {
		if remaining <= 0 {
			break
		}
		r.mu.Lock()
		n := r.used
		if n > remaining {
			n = remaining
		}
		for slot := 0; slot < n; slot++ {
			v, ok := s.valueAtLocked(r, slot, col, ts)
			if ok && v != types.NullSlot {
				sum += types.DecodeInt64(v)
				rows++
			}
		}
		remaining -= n
		r.mu.Unlock()
	}
	return sum, rows
}

// MaybeMerge consolidates every range whose delta crossed the threshold. It
// takes the drain latch exclusively: all active transactions finish first,
// and no transaction starts until the merge completes — the defining cost
// of this architecture. Returns the number of ranges merged.
func (s *Store) MaybeMerge() int {
	// Cheap pre-check without the barrier.
	dirty := false
	s.rangesMu.RLock()
	for _, r := range s.ranges {
		r.mu.Lock()
		if len(r.delta) >= s.cfg.MergeThreshold {
			dirty = true
		}
		r.mu.Unlock()
		if dirty {
			break
		}
	}
	s.rangesMu.RUnlock()
	if !dirty {
		return 0
	}

	s.drain.Lock() // drain all active transactions
	defer s.drain.Unlock()
	merged := 0
	s.rangesMu.RLock()
	ranges := append([]*dbmRange(nil), s.ranges...)
	s.rangesMu.RUnlock()
	for _, r := range ranges {
		r.mu.Lock()
		if len(r.delta) >= s.cfg.MergeThreshold {
			s.mergeRangeLocked(r)
			merged++
		}
		r.mu.Unlock()
	}
	s.mmu.Lock()
	s.merges++
	s.mmu.Unlock()
	return merged
}

// mergeRangeLocked folds committed delta entries into main. With the drain
// latch held exclusively there are no active transactions: every entry is
// committed or aborted.
func (s *Store) mergeRangeLocked(r *dbmRange) {
	for slot := 0; slot < r.used; slot++ {
		e := r.newest[slot]
		applied := uint64(0)
		var newestTS uint64
		first := true
		for e >= 0 {
			d := &r.delta[e]
			if _, st := s.tm.Resolve(d.startSlot); st == txn.StatusCommitted {
				for c := 0; c < s.ncols; c++ {
					bit := uint64(1) << uint(c)
					if d.cols&bit != 0 && applied&bit == 0 {
						r.main[c][slot] = d.value(c)
						applied |= bit
					}
				}
				if first {
					ts, _ := s.tm.Resolve(d.startSlot)
					newestTS = ts
					first = false
				}
			}
			e = d.prev
		}
		if applied != 0 {
			r.start[slot] = newestTS
		}
		r.newest[slot] = -1
	}
	r.delta = r.delta[:0]
}

// Merges returns the number of blocking merges performed.
func (s *Store) Merges() int64 {
	s.mmu.Lock()
	defer s.mmu.Unlock()
	return s.merges
}
