package dbm

import (
	"sync"
	"sync/atomic"
	"testing"

	"lstore/internal/txn"
	"lstore/internal/types"
)

func enc(v int64) uint64 { return types.EncodeInt64(v) }
func dec(v uint64) int64 { return types.DecodeInt64(v) }

func newStore() *Store { return New(4, Config{RangeSize: 64, MergeThreshold: 8}, nil) }

func commit(t *testing.T, s *Store, fn func(tx *txn.Txn)) {
	t.Helper()
	tx := s.BeginTxn(txn.ReadCommitted)
	fn(tx)
	if err := s.Commit(tx); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

func TestInsertReadUpdateOverlay(t *testing.T) {
	s := newStore()
	commit(t, s, func(tx *txn.Txn) {
		if err := s.Insert(tx, []uint64{enc(1), enc(10), enc(20), enc(30)}); err != nil {
			t.Fatal(err)
		}
	})
	commit(t, s, func(tx *txn.Txn) {
		if err := s.Update(tx, enc(1), []int{3, 1}, []uint64{enc(33), enc(11)}); err != nil {
			t.Fatal(err)
		}
	})
	tx := s.BeginTxn(txn.ReadCommitted)
	got, ok := s.Read(tx, enc(1), []int{1, 2, 3})
	s.Abort(tx)
	if !ok || dec(got[0]) != 11 || dec(got[1]) != 20 || dec(got[2]) != 33 {
		t.Fatalf("read = %v %v", got, ok)
	}
}

func TestUncommittedDeltaInvisible(t *testing.T) {
	s := newStore()
	commit(t, s, func(tx *txn.Txn) {
		s.Insert(tx, []uint64{enc(1), enc(10), enc(20), enc(30)})
	})
	w := s.BeginTxn(txn.ReadCommitted)
	if err := s.Update(w, enc(1), []int{1}, []uint64{enc(999)}); err != nil {
		t.Fatal(err)
	}
	rd := s.BeginTxn(txn.ReadCommitted)
	got, _ := s.Read(rd, enc(1), []int{1})
	s.Abort(rd)
	if dec(got[0]) != 10 {
		t.Fatalf("reader saw uncommitted delta: %d", dec(got[0]))
	}
	// Own read sees it.
	own, _ := s.Read(w, enc(1), []int{1})
	if dec(own[0]) != 999 {
		t.Fatalf("own read = %d", dec(own[0]))
	}
	s.Abort(w)
	rd2 := s.BeginTxn(txn.ReadCommitted)
	got, _ = s.Read(rd2, enc(1), []int{1})
	s.Abort(rd2)
	if dec(got[0]) != 10 {
		t.Fatalf("aborted delta visible: %d", dec(got[0]))
	}
}

func TestWriteWriteConflict(t *testing.T) {
	s := newStore()
	commit(t, s, func(tx *txn.Txn) {
		s.Insert(tx, []uint64{enc(1), enc(10), enc(20), enc(30)})
	})
	t1 := s.BeginTxn(txn.ReadCommitted)
	t2 := s.BeginTxn(txn.ReadCommitted)
	if err := s.Update(t1, enc(1), []int{1}, []uint64{enc(11)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(t2, enc(1), []int{1}, []uint64{enc(22)}); err != txn.ErrConflict {
		t.Fatalf("second writer: %v", err)
	}
	s.Abort(t2)
	if err := s.Commit(t1); err != nil {
		t.Fatal(err)
	}
}

func TestBlockingMergeFoldsDelta(t *testing.T) {
	s := newStore()
	commit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 16; i++ {
			s.Insert(tx, []uint64{enc(i), enc(0), enc(0), enc(0)})
		}
	})
	// 10 updates cross the threshold (8).
	for i := int64(0); i < 10; i++ {
		commit(t, s, func(tx *txn.Txn) {
			if err := s.Update(tx, enc(i%4), []int{1}, []uint64{enc(100 + i)}); err != nil {
				t.Fatal(err)
			}
		})
	}
	if n := s.MaybeMerge(); n == 0 {
		t.Fatal("merge did not run")
	}
	if s.Merges() != 1 {
		t.Fatalf("merges = %d", s.Merges())
	}
	r := s.rangeAt(0)
	r.mu.Lock()
	deltaLen := len(r.delta)
	mainVal := r.main[1][1] // key 1's newest update was i=9 -> 109
	r.mu.Unlock()
	if deltaLen != 0 {
		t.Fatalf("delta not cleared: %d", deltaLen)
	}
	if dec(mainVal) != 109 {
		t.Fatalf("main after merge = %d, want 109", dec(mainVal))
	}
	// Idle merge is a no-op.
	if n := s.MaybeMerge(); n != 0 {
		t.Fatalf("idle merge ran on %d ranges", n)
	}
	// Reads still correct.
	tx := s.BeginTxn(txn.ReadCommitted)
	got, _ := s.Read(tx, enc(1), []int{1})
	s.Abort(tx)
	if dec(got[0]) != 109 {
		t.Fatalf("read after merge = %d", dec(got[0]))
	}
}

func TestMergeDrainsActiveTransactions(t *testing.T) {
	s := newStore()
	commit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 16; i++ {
			s.Insert(tx, []uint64{enc(i), enc(0), enc(0), enc(0)})
		}
	})
	for i := int64(0); i < 10; i++ {
		commit(t, s, func(tx *txn.Txn) {
			s.Update(tx, enc(i), []int{1}, []uint64{enc(i)})
		})
	}
	// Hold a transaction open: the merge must wait for it.
	open := s.BeginTxn(txn.ReadCommitted)
	done := make(chan int, 1)
	go func() { done <- s.MaybeMerge() }()
	select {
	case <-done:
		t.Fatal("merge completed while a transaction was active")
	default:
	}
	s.Abort(open)
	if n := <-done; n == 0 {
		t.Fatal("merge did not run after drain")
	}
}

func TestScanSum(t *testing.T) {
	s := newStore()
	commit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 20; i++ {
			s.Insert(tx, []uint64{enc(i), enc(1), enc(0), enc(0)})
		}
	})
	commit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 5; i++ {
			s.Update(tx, enc(i), []int{1}, []uint64{enc(10)})
		}
	})
	tx := s.BeginTxn(txn.Snapshot)
	sum, rows := s.ScanSum(tx.Begin, 1)
	s.Abort(tx)
	if sum != 15+50 || rows != 20 {
		t.Fatalf("scan = %d/%d, want 65/20", sum, rows)
	}
}

func TestConcurrentWritersWithPeriodicMerges(t *testing.T) {
	s := New(4, Config{RangeSize: 256, MergeThreshold: 32}, nil)
	commit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 64; i++ {
			s.Insert(tx, []uint64{enc(i), enc(0), enc(0), enc(0)})
		}
	})
	var committed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				key := int64(w*16 + i%16)
				tx := s.BeginTxn(txn.ReadCommitted)
				got, ok := s.Read(tx, enc(key), []int{1})
				if !ok {
					t.Errorf("key %d missing", key)
					s.Abort(tx)
					return
				}
				if err := s.Update(tx, enc(key), []int{1}, []uint64{enc(dec(got[0]) + 1)}); err != nil {
					s.Abort(tx)
					continue
				}
				if err := s.Commit(tx); err != nil {
					continue
				}
				committed.Add(1)
				if i%20 == 0 {
					s.MaybeMerge()
				}
			}
		}(w)
	}
	wg.Wait()
	s.MaybeMerge()
	tx := s.BeginTxn(txn.Snapshot)
	sum, _ := s.ScanSum(tx.Begin, 1)
	s.Abort(tx)
	if sum != committed.Load() {
		t.Fatalf("sum %d != committed %d", sum, committed.Load())
	}
}
