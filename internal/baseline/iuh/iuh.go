// Package iuh implements the In-place Update + History baseline of §6.1:
// "a prominent storage organization is to append old versions of records to
// a history table and only retain the most recent version in the main table,
// updating it in-place" (inspired by Oracle Flashback Archive).
//
// Faithful contention profile:
//
//   - the main table is columnar and updated in place, so every page access
//     takes a standard shared/exclusive latch (one RWMutex per range per
//     column page — readers block behind writers on hot pages);
//   - pre-update values are appended to a single history table (updated
//     columns only), giving snapshot readers a chain to walk but with the
//     reduced locality the paper observes;
//   - aborts must physically undo the in-place change;
//   - the embedded indirection column points from each record to its newest
//     history entry, as in the paper's "for fairness" setup.
//
// The transaction layer (timestamps, states, commit/abort) is shared with
// L-Store (internal/txn), isolating the storage-architecture comparison.
package iuh

import (
	"fmt"
	"sync"

	"lstore/internal/index"
	"lstore/internal/txn"
	"lstore/internal/types"
)

// Config tunes the baseline store.
type Config struct {
	// RangeSize is the number of records per latch unit (page set); the
	// paper latches 32 KB pages ≈ 4096 slots.
	RangeSize int
}

func (c Config) withDefaults() Config {
	if c.RangeSize == 0 {
		c.RangeSize = 4096
	}
	return c
}

// histEntry is one pre-image in the history table.
type histEntry struct {
	prev      int32 // index of the next-older entry (-1 = none)
	startSlot uint64
	cols      uint64
	vals      []uint64
}

// mainRange is one latch unit of the main table.
type mainRange struct {
	latches []sync.RWMutex // one per column page (data cols + meta)
	cols    [][]uint64     // in-place updated column pages
	start   []uint64       // version start: commit time or txn id
	hist    []int32        // indirection: newest history entry (-1 = none)
	used    int
	mu      sync.Mutex // row allocation
}

// Store is the baseline engine.
type Store struct {
	cfg     Config
	ncols   int
	tm      *txn.Manager
	primary *index.Primary

	rangesMu sync.RWMutex
	ranges   []*mainRange

	histMu  sync.Mutex
	history []histEntry

	undoMu sync.Mutex
	undo   map[uint64][]undoRec // txnID -> in-place changes to revert on abort
}

type undoRec struct {
	ri, slot int
	cols     []int
	oldVals  []uint64
	oldStart uint64
	oldHist  int32
}

// New creates an IUH store with ncols data columns (column 0 is the key).
func New(ncols int, cfg Config, tm *txn.Manager) *Store {
	if tm == nil {
		tm = txn.NewManager()
	}
	return &Store{
		cfg:     cfg.withDefaults(),
		ncols:   ncols,
		tm:      tm,
		primary: index.NewPrimary(),
		undo:    make(map[uint64][]undoRec),
	}
}

// TxnManager returns the shared transaction manager.
func (s *Store) TxnManager() *txn.Manager { return s.tm }

// lockCols exclusively latches the meta latch (page 0, which guards the
// start/hist meta columns) plus the given column pages, in canonical
// ascending order; cols must already be sorted. unlockCols is its mirror.
// rlockCols/runlockCols are the shared-mode pair.
func (r *mainRange) lockCols(cols []int) {
	if len(cols) == 0 || cols[0] != 0 {
		r.latches[0].Lock()
	}
	for _, c := range cols {
		r.latches[c].Lock()
	}
}

func (r *mainRange) unlockCols(cols []int) {
	for i := len(cols) - 1; i >= 0; i-- {
		r.latches[cols[i]].Unlock()
	}
	if len(cols) == 0 || cols[0] != 0 {
		r.latches[0].Unlock()
	}
}

func (r *mainRange) rlockCols(cols []int) {
	if len(cols) == 0 || cols[0] != 0 {
		r.latches[0].RLock()
	}
	for _, c := range cols {
		r.latches[c].RLock()
	}
}

func (r *mainRange) runlockCols(cols []int) {
	for i := len(cols) - 1; i >= 0; i-- {
		r.latches[cols[i]].RUnlock()
	}
	if len(cols) == 0 || cols[0] != 0 {
		r.latches[0].RUnlock()
	}
}

func newMainRange(n, ncols int) *mainRange {
	r := &mainRange{
		latches: make([]sync.RWMutex, ncols),
		cols:    make([][]uint64, ncols),
		start:   make([]uint64, n),
		hist:    make([]int32, n),
	}
	for c := range r.cols {
		r.cols[c] = make([]uint64, n)
	}
	for i := range r.hist {
		r.hist[i] = -1
		r.start[i] = types.NullSlot
	}
	return r
}

// Insert adds a record; vals[0] is the key.
func (s *Store) Insert(t *txn.Txn, vals []uint64) error {
	if len(vals) != s.ncols {
		return fmt.Errorf("iuh: arity %d, want %d", len(vals), s.ncols)
	}
	ri, slot := s.allocSlot()
	rid := types.RID(uint64(ri)*uint64(s.cfg.RangeSize) + uint64(slot) + 1)
	if _, installed := s.primary.PutIfAbsent(vals[0], rid); !installed {
		return fmt.Errorf("iuh: duplicate key %d", vals[0])
	}
	r := s.rangeAt(ri)
	// In-place write under exclusive latches of all column pages.
	for c := 0; c < s.ncols; c++ {
		r.latches[c].Lock()
	}
	for c := 0; c < s.ncols; c++ {
		r.cols[c][slot] = vals[c]
	}
	r.start[slot] = t.ID
	t.NoteWrite()
	for c := s.ncols - 1; c >= 0; c-- {
		r.latches[c].Unlock()
	}
	return nil
}

func (s *Store) allocSlot() (int, int) {
	s.rangesMu.Lock()
	defer s.rangesMu.Unlock()
	if len(s.ranges) == 0 || s.ranges[len(s.ranges)-1].used >= s.cfg.RangeSize {
		s.ranges = append(s.ranges, newMainRange(s.cfg.RangeSize, s.ncols))
	}
	r := s.ranges[len(s.ranges)-1]
	slot := r.used
	r.used++
	return len(s.ranges) - 1, slot
}

func (s *Store) rangeAt(i int) *mainRange {
	s.rangesMu.RLock()
	defer s.rangesMu.RUnlock()
	return s.ranges[i]
}

func (s *Store) locate(key uint64) (int, int, bool) {
	rid, ok := s.primary.Get(key)
	if !ok {
		return 0, 0, false
	}
	v := uint64(rid) - 1
	return int(v / uint64(s.cfg.RangeSize)), int(v % uint64(s.cfg.RangeSize)), true
}

// Update modifies cols of the record with key, in place, appending the
// pre-image to the history table. cols must be in ascending order (the
// canonical latch order that prevents deadlocks); callers are normalized by
// sortCols.
func (s *Store) Update(t *txn.Txn, key uint64, cols []int, vals []uint64) error {
	cols, vals = sortColsVals(cols, vals)
	ri, slot, ok := s.locate(key)
	if !ok {
		return fmt.Errorf("iuh: key %d not found", key)
	}
	r := s.rangeAt(ri)
	// Exclusive latches on every touched column page plus the meta latch.
	r.lockCols(cols)
	defer r.unlockCols(cols)

	cur := r.start[slot]
	if cur != t.ID {
		if _, st := s.tm.Resolve(cur); st == txn.StatusUncommitted || st == txn.StatusPreCommitted {
			return txn.ErrConflict
		}
	}

	// Append the pre-image (updated columns only) to the history table.
	old := make([]uint64, len(cols))
	var bits uint64
	for i, c := range cols {
		old[i] = r.cols[c][slot]
		bits |= 1 << uint(c)
	}
	s.histMu.Lock()
	prev := r.hist[slot]
	s.history = append(s.history, histEntry{prev: prev, startSlot: cur, cols: bits, vals: old})
	he := int32(len(s.history) - 1)
	s.histMu.Unlock()

	// Undo information for aborts (in-place updates demand physical undo).
	s.undoMu.Lock()
	s.undo[t.ID] = append(s.undo[t.ID], undoRec{
		ri: ri, slot: slot, cols: append([]int(nil), cols...),
		oldVals: old, oldStart: cur, oldHist: prev,
	})
	s.undoMu.Unlock()

	// In-place update.
	for i, c := range cols {
		r.cols[c][slot] = vals[i]
	}
	r.hist[slot] = he
	if cur != t.ID {
		t.NoteWrite()
	}
	r.start[slot] = t.ID
	return nil
}

// Abort reverts the transaction's in-place changes and marks it aborted.
func (s *Store) Abort(t *txn.Txn) {
	s.tm.Abort(t)
	s.undoMu.Lock()
	recs := s.undo[t.ID]
	delete(s.undo, t.ID)
	s.undoMu.Unlock()
	// Undo newest-first.
	for i := len(recs) - 1; i >= 0; i-- {
		u := recs[i]
		r := s.rangeAt(u.ri)
		r.lockCols(u.cols)
		for j, c := range u.cols {
			r.cols[c][slot(u)] = u.oldVals[j]
		}
		r.start[slot(u)] = u.oldStart
		r.hist[slot(u)] = u.oldHist
		r.unlockCols(u.cols)
	}
}

func slot(u undoRec) int { return u.slot }

// Commit finalizes the transaction and drops its undo records.
func (s *Store) Commit(t *txn.Txn) error {
	if err := s.tm.Commit(t); err != nil {
		s.Abort(t) // validation failure: physical undo required
		return err
	}
	s.undoMu.Lock()
	delete(s.undo, t.ID)
	s.undoMu.Unlock()
	return nil
}

// Read returns cols of the record with key: the latest committed version
// under read-committed, walking into the history table when the main row is
// uncommitted.
func (s *Store) Read(t *txn.Txn, key uint64, cols []int) ([]uint64, bool) {
	cols, _ = sortColsVals(cols, nil)
	ri, sl, ok := s.locate(key)
	if !ok {
		return nil, false
	}
	r := s.rangeAt(ri)
	out := make([]uint64, len(cols))
	r.rlockCols(cols)
	cur := r.start[sl]
	visible := cur == t.ID
	if !visible {
		if _, st := s.tm.Resolve(cur); st == txn.StatusCommitted {
			visible = true
		}
	}
	if visible {
		for i, c := range cols {
			out[i] = r.cols[c][sl]
		}
		r.runlockCols(cols)
		return out, true
	}
	// Uncommitted by another txn: reconstruct the committed image from the
	// newest history entries.
	for i, c := range cols {
		out[i] = r.cols[c][sl]
	}
	he := r.hist[sl]
	need := uint64(0)
	for _, c := range cols {
		need |= 1 << uint(c)
	}
	r.runlockCols(cols)
	s.histMu.Lock()
	for he >= 0 && need != 0 {
		e := s.history[he]
		for i, c := range cols {
			if need&(1<<uint(c)) != 0 && e.cols&(1<<uint(c)) != 0 {
				// The pre-image of the uncommitted writer IS the committed
				// value.
				vi := 0
				for cc := 0; cc < c; cc++ {
					if e.cols&(1<<uint(cc)) != 0 {
						vi++
					}
				}
				out[i] = e.vals[vi]
				need &^= 1 << uint(c)
			}
		}
		if _, st := s.tm.Resolve(e.startSlot); st == txn.StatusCommitted {
			break // reached a committed version; values now consistent
		}
		he = e.prev
	}
	s.histMu.Unlock()
	return out, true
}

// ScanSum computes SUM(col) over records visible at ts, taking shared page
// latches like any reader (the paper's point: "even for 100% read, IUH
// continues to pay the cost of acquiring read latches on each page").
func (s *Store) ScanSum(ts types.Timestamp, col int) (int64, int64) {
	var sum, rows int64
	scanCols := []int{col}
	for _, sr := range s.snapshotRanges() {
		r := sr.r
		r.rlockCols(scanCols)
		for sl := 0; sl < sr.used; sl++ {
			cur := r.start[sl]
			cts, st := s.tm.Resolve(cur)
			if st == txn.StatusCommitted && cts <= ts {
				v := r.cols[col][sl]
				if v != types.NullSlot {
					sum += types.DecodeInt64(v)
					rows++
				}
				continue
			}
			// Newer or uncommitted main image: walk history for the version
			// visible at ts.
			if v, ok := s.histValueAt(r, sl, col, ts); ok {
				sum += types.DecodeInt64(v)
				rows++
			}
		}
		r.runlockCols(scanCols)
	}
	return sum, rows
}

// rangeSnap pairs a range with its row count observed under rangesMu, so
// scans never race the row allocator.
type rangeSnap struct {
	r    *mainRange
	used int
}

func (s *Store) snapshotRanges() []rangeSnap {
	s.rangesMu.RLock()
	defer s.rangesMu.RUnlock()
	out := make([]rangeSnap, len(s.ranges))
	for i, r := range s.ranges {
		out[i] = rangeSnap{r: r, used: r.used}
	}
	return out
}

// histValueAt walks slot's history chain for col's value at ts. Entries
// touching col appear newest-first: the first whose version start is at or
// before ts holds the value visible at ts. When no entry touches col, the
// main value stands as long as the record itself existed at ts (its original
// insert time is the start slot of the oldest entry, or the main start for
// never-updated rows — that case is handled by the caller's fast path).
func (s *Store) histValueAt(r *mainRange, sl, col int, ts types.Timestamp) (uint64, bool) {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	he := r.hist[sl]
	var candidate uint64
	have := false
	rootStart := uint64(types.NullSlot)
	for he >= 0 {
		e := s.history[he]
		rootStart = e.startSlot
		if !have && e.cols&(1<<uint(col)) != 0 {
			cts, st := s.tm.Resolve(e.startSlot)
			if st == txn.StatusCommitted && cts <= ts {
				vi := 0
				for cc := 0; cc < col; cc++ {
					if e.cols&(1<<uint(cc)) != 0 {
						vi++
					}
				}
				candidate = e.vals[vi]
				have = true
				break
			}
		}
		he = e.prev
	}
	if !have {
		// Column never changed at or before ts by any entry: the record's
		// col value at ts is the current main value, valid if the record
		// was born at or before ts.
		if rootStart == types.NullSlot {
			return 0, false // no history: caller's fast path already decided
		}
		cts, st := s.tm.Resolve(rootStart)
		if st != txn.StatusCommitted || cts > ts {
			return 0, false // record born after ts
		}
		candidate = r.cols[col][sl]
	}
	if candidate == types.NullSlot {
		return 0, false
	}
	return candidate, true
}

// sortColsVals returns cols (and the matching vals) in ascending column
// order — the canonical latch acquisition order.
func sortColsVals(cols []int, vals []uint64) ([]int, []uint64) {
	sorted := true
	for i := 1; i < len(cols); i++ {
		if cols[i] < cols[i-1] {
			sorted = false
			break
		}
	}
	if sorted {
		return cols, vals
	}
	cc := append([]int(nil), cols...)
	var vv []uint64
	if vals != nil {
		vv = append([]uint64(nil), vals...)
	}
	for i := 1; i < len(cc); i++ {
		for j := i; j > 0 && cc[j] < cc[j-1]; j-- {
			cc[j], cc[j-1] = cc[j-1], cc[j]
			if vv != nil {
				vv[j], vv[j-1] = vv[j-1], vv[j]
			}
		}
	}
	return cc, vv
}

// ScanSumSpan is ScanSum limited to the first span rows (the benchmark's
// 10%-of-table analytical scans).
func (s *Store) ScanSumSpan(ts types.Timestamp, col int, span int) (int64, int64) {
	var sum, rows int64
	remaining := span
	scanCols := []int{col}
	for _, sr := range s.snapshotRanges() {
		if remaining <= 0 {
			break
		}
		r := sr.r
		r.rlockCols(scanCols)
		n := sr.used
		if n > remaining {
			n = remaining
		}
		for sl := 0; sl < n; sl++ {
			cur := r.start[sl]
			cts, st := s.tm.Resolve(cur)
			if st == txn.StatusCommitted && cts <= ts {
				v := r.cols[col][sl]
				if v != types.NullSlot {
					sum += types.DecodeInt64(v)
					rows++
				}
				continue
			}
			if v, ok := s.histValueAt(r, sl, col, ts); ok {
				sum += types.DecodeInt64(v)
				rows++
			}
		}
		remaining -= n
		r.runlockCols(scanCols)
	}
	return sum, rows
}

// NumHistory returns history-table length (introspection).
func (s *Store) NumHistory() int {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	return len(s.history)
}
