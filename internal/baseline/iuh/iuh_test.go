package iuh

import (
	"sync"
	"sync/atomic"
	"testing"

	"lstore/internal/txn"
	"lstore/internal/types"
)

func enc(v int64) uint64 { return types.EncodeInt64(v) }
func dec(v uint64) int64 { return types.DecodeInt64(v) }

func newStore() *Store { return New(4, Config{RangeSize: 64}, nil) }

func commit(t *testing.T, s *Store, fn func(tx *txn.Txn)) {
	t.Helper()
	tx := s.tm.Begin(txn.ReadCommitted)
	fn(tx)
	if err := s.Commit(tx); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

func TestInsertReadUpdate(t *testing.T) {
	s := newStore()
	commit(t, s, func(tx *txn.Txn) {
		if err := s.Insert(tx, []uint64{enc(1), enc(10), enc(20), enc(30)}); err != nil {
			t.Fatal(err)
		}
	})
	tx := s.tm.Begin(txn.ReadCommitted)
	got, ok := s.Read(tx, enc(1), []int{1, 2, 3})
	if !ok || dec(got[0]) != 10 || dec(got[2]) != 30 {
		t.Fatalf("read = %v %v", got, ok)
	}
	s.Abort(tx)
	commit(t, s, func(tx *txn.Txn) {
		if err := s.Update(tx, enc(1), []int{3, 1}, []uint64{enc(33), enc(11)}); err != nil {
			t.Fatal(err)
		}
	})
	tx = s.tm.Begin(txn.ReadCommitted)
	got, _ = s.Read(tx, enc(1), []int{1, 2, 3})
	s.Abort(tx)
	if dec(got[0]) != 11 || dec(got[1]) != 20 || dec(got[2]) != 33 {
		t.Fatalf("after update: %v", []int64{dec(got[0]), dec(got[1]), dec(got[2])})
	}
	if s.NumHistory() != 1 {
		t.Fatalf("history entries = %d, want 1", s.NumHistory())
	}
}

func TestUncommittedInvisibleAndAbortUndoes(t *testing.T) {
	s := newStore()
	commit(t, s, func(tx *txn.Txn) {
		s.Insert(tx, []uint64{enc(1), enc(10), enc(20), enc(30)})
	})
	w := s.tm.Begin(txn.ReadCommitted)
	if err := s.Update(w, enc(1), []int{1}, []uint64{enc(999)}); err != nil {
		t.Fatal(err)
	}
	// A concurrent reader reconstructs the committed image from history.
	rd := s.tm.Begin(txn.ReadCommitted)
	got, ok := s.Read(rd, enc(1), []int{1})
	s.Abort(rd)
	if !ok || dec(got[0]) != 10 {
		t.Fatalf("reader saw %v (want committed 10)", got)
	}
	// Abort physically undoes the in-place change.
	s.Abort(w)
	rd2 := s.tm.Begin(txn.ReadCommitted)
	got, _ = s.Read(rd2, enc(1), []int{1})
	s.Abort(rd2)
	if dec(got[0]) != 10 {
		t.Fatalf("after abort main = %d, want 10", dec(got[0]))
	}
}

func TestWriteWriteConflict(t *testing.T) {
	s := newStore()
	commit(t, s, func(tx *txn.Txn) {
		s.Insert(tx, []uint64{enc(1), enc(10), enc(20), enc(30)})
	})
	t1 := s.tm.Begin(txn.ReadCommitted)
	t2 := s.tm.Begin(txn.ReadCommitted)
	if err := s.Update(t1, enc(1), []int{1}, []uint64{enc(11)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(t2, enc(1), []int{1}, []uint64{enc(22)}); err != txn.ErrConflict {
		t.Fatalf("second writer: %v", err)
	}
	s.Abort(t2)
	if err := s.Commit(t1); err != nil {
		t.Fatal(err)
	}
}

func TestScanSumSnapshots(t *testing.T) {
	s := newStore()
	commit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 20; i++ {
			s.Insert(tx, []uint64{enc(i), enc(1), enc(0), enc(0)})
		}
	})
	ts1 := s.tm.Now()
	commit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 20; i++ {
			if err := s.Update(tx, enc(i), []int{1}, []uint64{enc(100)}); err != nil {
				t.Fatal(err)
			}
		}
	})
	sum, rows := s.ScanSum(ts1, 1)
	if sum != 20 || rows != 20 {
		t.Fatalf("snapshot scan = %d/%d, want 20/20", sum, rows)
	}
	sum, rows = s.ScanSum(s.tm.Now(), 1)
	if sum != 2000 || rows != 20 {
		t.Fatalf("current scan = %d/%d, want 2000/20", sum, rows)
	}
}

func TestScanNeverUpdatedColumnAtOldSnapshot(t *testing.T) {
	s := newStore()
	commit(t, s, func(tx *txn.Txn) {
		s.Insert(tx, []uint64{enc(1), enc(5), enc(7), enc(9)})
	})
	ts := s.tm.Now()
	// Update a DIFFERENT column; scan of column 2 at the old snapshot must
	// still see 7 even though the row's main start time advanced.
	commit(t, s, func(tx *txn.Txn) {
		s.Update(tx, enc(1), []int{1}, []uint64{enc(55)})
	})
	sum, rows := s.ScanSum(ts, 2)
	if sum != 7 || rows != 1 {
		t.Fatalf("scan old snapshot = %d/%d, want 7/1", sum, rows)
	}
}

func TestConcurrentUpdatersSerializeOnLatches(t *testing.T) {
	s := newStore()
	commit(t, s, func(tx *txn.Txn) {
		for i := int64(0); i < 64; i++ {
			s.Insert(tx, []uint64{enc(i), enc(0), enc(0), enc(0)})
		}
	})
	// Writers own disjoint key partitions (no write-write conflicts), so
	// every committed increment must land exactly once; concurrent scanners
	// exercise the shared-vs-exclusive page latching.
	var committed atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var scanWG sync.WaitGroup
	for sc := 0; sc < 2; sc++ {
		scanWG.Add(1)
		go func() {
			defer scanWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sum, rows := s.ScanSum(s.tm.Now(), 1)
				if rows != 64 || sum < 0 || sum > 4*200 {
					t.Errorf("scan = %d/%d out of bounds", sum, rows)
					return
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := int64(w*16 + i%16)
				tx := s.tm.Begin(txn.ReadCommitted)
				got, ok := s.Read(tx, enc(key), []int{1})
				if !ok {
					t.Errorf("key %d missing", key)
					s.Abort(tx)
					return
				}
				if err := s.Update(tx, enc(key), []int{1}, []uint64{enc(dec(got[0]) + 1)}); err != nil {
					s.Abort(tx)
					continue
				}
				if err := s.Commit(tx); err != nil {
					continue
				}
				committed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scanWG.Wait()
	sum, _ := s.ScanSum(s.tm.Now(), 1)
	if sum != committed.Load() {
		t.Fatalf("sum %d != committed increments %d", sum, committed.Load())
	}
}

func TestDuplicateKey(t *testing.T) {
	s := newStore()
	commit(t, s, func(tx *txn.Txn) {
		s.Insert(tx, []uint64{enc(1), enc(0), enc(0), enc(0)})
	})
	tx := s.tm.Begin(txn.ReadCommitted)
	if err := s.Insert(tx, []uint64{enc(1), enc(9), enc(9), enc(9)}); err == nil {
		t.Fatal("duplicate accepted")
	}
	s.Abort(tx)
}
