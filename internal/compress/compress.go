// Package compress is L-Store's codec toolbox. Base pages created by the
// merge process are compressed column-wise (§4.1 step 3: "any compression
// algorithm ... can be applied on the consolidated pages on column basis"),
// and historic tail pages are delta-compressed across inlined versions
// (§4.3). This package provides the primitives those layers compose:
//
//   - zigzag + varint integer coding,
//   - frame-of-reference bit-packing for dense slot vectors,
//   - run-length encoding for low-cardinality vectors,
//   - dictionary building for string columns,
//   - delta coding across version chains.
//
// All codecs round-trip exactly and are deterministic; the merge process is
// idempotent (§5.1.3) so the codecs must be too.
package compress

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// ZigZag maps signed deltas to unsigned so small magnitudes stay small.
func ZigZag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// UnZigZag inverts ZigZag.
func UnZigZag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// PutUvarint appends v to dst using unsigned LEB128.
func PutUvarint(dst []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return append(dst, buf[:n]...)
}

// Uvarint reads a uvarint from src, returning the value and bytes consumed.
func Uvarint(src []byte) (uint64, int, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, 0, fmt.Errorf("compress: truncated uvarint")
	}
	return v, n, nil
}

// DeltaEncode appends the zigzag-varint coding of vals (first value absolute,
// the rest as deltas) to dst. Used for inlined version chains of historic
// tail records and for Start Time columns, both of which are near-sorted.
func DeltaEncode(dst []byte, vals []uint64) []byte {
	dst = PutUvarint(dst, uint64(len(vals)))
	prev := uint64(0)
	for _, v := range vals {
		dst = PutUvarint(dst, ZigZag(int64(v-prev)))
		prev = v
	}
	return dst
}

// DeltaDecode inverts DeltaEncode, returning the values and bytes consumed.
func DeltaDecode(src []byte) ([]uint64, int, error) {
	n, off, err := Uvarint(src)
	if err != nil {
		return nil, 0, err
	}
	vals := make([]uint64, 0, n)
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		d, m, err := Uvarint(src[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("compress: delta stream truncated at %d/%d", i, n)
		}
		off += m
		prev += uint64(UnZigZag(d))
		vals = append(vals, prev)
	}
	return vals, off, nil
}

// BitWidth returns the number of bits needed to represent v (0 for v==0).
func BitWidth(v uint64) int { return bits.Len64(v) }

// PackBits packs each value of vals into width bits, little-endian within a
// uint64 word stream. Callers guarantee every value fits in width bits.
func PackBits(vals []uint64, width int) []uint64 {
	if width == 0 {
		return nil
	}
	totalBits := len(vals) * width
	words := make([]uint64, (totalBits+63)/64)
	bitPos := 0
	for _, v := range vals {
		w, b := bitPos/64, bitPos%64
		words[w] |= v << uint(b)
		if b+width > 64 {
			words[w+1] |= v >> uint(64-b)
		}
		bitPos += width
	}
	return words
}

// UnpackBit extracts the i-th width-bit value from a PackBits stream.
func UnpackBit(words []uint64, width, i int) uint64 {
	if width == 0 {
		return 0
	}
	bitPos := i * width
	w, b := bitPos/64, bitPos%64
	v := words[w] >> uint(b)
	if b+width > 64 {
		v |= words[w+1] << uint(64-b)
	}
	if width == 64 {
		return v
	}
	return v & (1<<uint(width) - 1)
}

// UnpackBitsInto appends n unpacked values to dst (append-style, like
// PutUvarint) so hot paths can reuse pooled scratch instead of allocating per
// page. The bit cursor advances monotonically — no per-value position
// re-derivation.
func UnpackBitsInto(dst []uint64, words []uint64, width, n int) []uint64 {
	if width == 0 {
		for i := 0; i < n; i++ {
			dst = append(dst, 0)
		}
		return dst
	}
	mask := ^uint64(0)
	if width < 64 {
		mask = 1<<uint(width) - 1
	}
	bitPos := 0
	for i := 0; i < n; i++ {
		w, b := bitPos/64, bitPos%64
		v := words[w] >> uint(b)
		if b+width > 64 {
			v |= words[w+1] << uint(64-b)
		}
		dst = append(dst, v&mask)
		bitPos += width
	}
	return dst
}

// UnpackBits expands the whole stream (n values). Thin allocating wrapper
// over UnpackBitsInto, kept for tests and cold callers.
func UnpackBits(words []uint64, width, n int) []uint64 {
	return UnpackBitsInto(make([]uint64, 0, n), words, width, n)
}

// Run is one RLE run.
type Run struct {
	Value uint64
	Count uint32
}

// RLEncode run-length encodes vals.
func RLEncode(vals []uint64) []Run {
	var runs []Run
	for _, v := range vals {
		if n := len(runs); n > 0 && runs[n-1].Value == v && runs[n-1].Count < ^uint32(0) {
			runs[n-1].Count++
			continue
		}
		runs = append(runs, Run{Value: v, Count: 1})
	}
	return runs
}

// RLDecodeInto appends the expansion of runs to dst (append-style, like
// PutUvarint): the scan path hands in pooled scratch and pays zero
// allocations when capacity suffices.
func RLDecodeInto(dst []uint64, runs []Run) []uint64 {
	for _, r := range runs {
		for i := uint32(0); i < r.Count; i++ {
			dst = append(dst, r.Value)
		}
	}
	return dst
}

// RLDecode expands runs. Thin allocating wrapper over RLDecodeInto, kept for
// tests and cold callers.
func RLDecode(runs []Run) []uint64 {
	total := 0
	for _, r := range runs {
		total += int(r.Count)
	}
	return RLDecodeInto(make([]uint64, 0, total), runs)
}

// Stats is a one-pass summary of a slot vector's value distribution — enough
// to price every page encoding (raw, frame-of-reference packed, RLE,
// dictionary) WITHOUT building any of them. The merge path analyzes each
// consolidated column once and constructs only the winning encoding.
type Stats struct {
	N       int    // total slots
	NonNull int    // slots != the null sentinel
	Min     uint64 // over non-null slots (0 when NonNull == 0)
	Max     uint64 // over non-null slots (0 when NonNull == 0)
	Runs    int    // run-length runs (over ALL slots, nulls included)
	// Distinct counts distinct slot values (nulls included); when the count
	// exceeds distinctTrackCap the tracker gives up and DistinctOverflow is
	// set — by then a dictionary cannot beat the other encodings anyway.
	Distinct         int
	DistinctOverflow bool
}

// distinctTrackCap bounds the distinct-value tracker in Analyze. A
// dictionary page costs 1 + distinct + packed-code words; past this many
// distinct values it never wins against raw/packed for the page sizes the
// engine uses, so Analyze stops paying for the map.
const distinctTrackCap = 1 << 12

// Analyze computes the distribution stats of vals in one pass. null is the
// caller's null sentinel (types.NullSlot for slot vectors); it is excluded
// from Min/Max but participates in runs and distinct counts, matching how
// the page encodings treat it.
func Analyze(vals []uint64, null uint64) Stats {
	st := Stats{N: len(vals)}
	var prev uint64
	var distinct map[uint64]struct{}
	for i, v := range vals {
		if i == 0 || v != prev {
			st.Runs++
		}
		prev = v
		if v != null {
			if st.NonNull == 0 {
				st.Min, st.Max = v, v
			} else {
				if v < st.Min {
					st.Min = v
				}
				if v > st.Max {
					st.Max = v
				}
			}
			st.NonNull++
		}
		if !st.DistinctOverflow {
			if distinct == nil {
				distinct = make(map[uint64]struct{}, 64)
			}
			if _, ok := distinct[v]; !ok {
				if len(distinct) >= distinctTrackCap {
					st.DistinctOverflow = true
				} else {
					distinct[v] = struct{}{}
				}
			}
		}
	}
	st.Distinct = len(distinct)
	return st
}

// Dict is an order-of-first-appearance dictionary for slot vectors. It is
// built once at merge time and immutable afterwards.
type Dict struct {
	codes  map[uint64]uint32
	values []uint64
}

// BuildDict builds a dictionary over vals and returns it along with the
// code vector.
func BuildDict(vals []uint64) (*Dict, []uint32) {
	d := &Dict{codes: make(map[uint64]uint32)}
	codes := make([]uint32, len(vals))
	for i, v := range vals {
		c, ok := d.codes[v]
		if !ok {
			c = uint32(len(d.values))
			d.codes[v] = c
			d.values = append(d.values, v)
		}
		codes[i] = c
	}
	return d, codes
}

// DictFromValues rebuilds a dictionary from its value table (deserialization:
// codes are positions, exactly as BuildDict assigned them). values is
// retained, not copied.
func DictFromValues(values []uint64) *Dict {
	d := &Dict{codes: make(map[uint64]uint32, len(values)), values: values}
	for i, v := range values {
		if _, dup := d.codes[v]; !dup {
			d.codes[v] = uint32(i)
		}
	}
	return d
}

// Size returns the number of distinct values.
func (d *Dict) Size() int { return len(d.values) }

// Value returns the value for a code.
func (d *Dict) Value(code uint32) uint64 { return d.values[code] }

// Code returns the code for a value, if present.
func (d *Dict) Code(v uint64) (uint32, bool) {
	c, ok := d.codes[v]
	return c, ok
}

// Values exposes the code-ordered value table (serialization; callers must
// not mutate it).
func (d *Dict) Values() []uint64 { return d.values }
