// Package compress is L-Store's codec toolbox. Base pages created by the
// merge process are compressed column-wise (§4.1 step 3: "any compression
// algorithm ... can be applied on the consolidated pages on column basis"),
// and historic tail pages are delta-compressed across inlined versions
// (§4.3). This package provides the primitives those layers compose:
//
//   - zigzag + varint integer coding,
//   - frame-of-reference bit-packing for dense slot vectors,
//   - run-length encoding for low-cardinality vectors,
//   - dictionary building for string columns,
//   - delta coding across version chains.
//
// All codecs round-trip exactly and are deterministic; the merge process is
// idempotent (§5.1.3) so the codecs must be too.
package compress

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// ZigZag maps signed deltas to unsigned so small magnitudes stay small.
func ZigZag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// UnZigZag inverts ZigZag.
func UnZigZag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// PutUvarint appends v to dst using unsigned LEB128.
func PutUvarint(dst []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return append(dst, buf[:n]...)
}

// Uvarint reads a uvarint from src, returning the value and bytes consumed.
func Uvarint(src []byte) (uint64, int, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, 0, fmt.Errorf("compress: truncated uvarint")
	}
	return v, n, nil
}

// DeltaEncode appends the zigzag-varint coding of vals (first value absolute,
// the rest as deltas) to dst. Used for inlined version chains of historic
// tail records and for Start Time columns, both of which are near-sorted.
func DeltaEncode(dst []byte, vals []uint64) []byte {
	dst = PutUvarint(dst, uint64(len(vals)))
	prev := uint64(0)
	for _, v := range vals {
		dst = PutUvarint(dst, ZigZag(int64(v-prev)))
		prev = v
	}
	return dst
}

// DeltaDecode inverts DeltaEncode, returning the values and bytes consumed.
func DeltaDecode(src []byte) ([]uint64, int, error) {
	n, off, err := Uvarint(src)
	if err != nil {
		return nil, 0, err
	}
	vals := make([]uint64, 0, n)
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		d, m, err := Uvarint(src[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("compress: delta stream truncated at %d/%d", i, n)
		}
		off += m
		prev += uint64(UnZigZag(d))
		vals = append(vals, prev)
	}
	return vals, off, nil
}

// BitWidth returns the number of bits needed to represent v (0 for v==0).
func BitWidth(v uint64) int { return bits.Len64(v) }

// PackBits packs each value of vals into width bits, little-endian within a
// uint64 word stream. Callers guarantee every value fits in width bits.
func PackBits(vals []uint64, width int) []uint64 {
	if width == 0 {
		return nil
	}
	totalBits := len(vals) * width
	words := make([]uint64, (totalBits+63)/64)
	bitPos := 0
	for _, v := range vals {
		w, b := bitPos/64, bitPos%64
		words[w] |= v << uint(b)
		if b+width > 64 {
			words[w+1] |= v >> uint(64-b)
		}
		bitPos += width
	}
	return words
}

// UnpackBit extracts the i-th width-bit value from a PackBits stream.
func UnpackBit(words []uint64, width, i int) uint64 {
	if width == 0 {
		return 0
	}
	bitPos := i * width
	w, b := bitPos/64, bitPos%64
	v := words[w] >> uint(b)
	if b+width > 64 {
		v |= words[w+1] << uint(64-b)
	}
	if width == 64 {
		return v
	}
	return v & (1<<uint(width) - 1)
}

// UnpackBits expands the whole stream (n values).
func UnpackBits(words []uint64, width, n int) []uint64 {
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = UnpackBit(words, width, i)
	}
	return out
}

// Run is one RLE run.
type Run struct {
	Value uint64
	Count uint32
}

// RLEncode run-length encodes vals.
func RLEncode(vals []uint64) []Run {
	var runs []Run
	for _, v := range vals {
		if n := len(runs); n > 0 && runs[n-1].Value == v && runs[n-1].Count < ^uint32(0) {
			runs[n-1].Count++
			continue
		}
		runs = append(runs, Run{Value: v, Count: 1})
	}
	return runs
}

// RLDecode expands runs.
func RLDecode(runs []Run) []uint64 {
	total := 0
	for _, r := range runs {
		total += int(r.Count)
	}
	out := make([]uint64, 0, total)
	for _, r := range runs {
		for i := uint32(0); i < r.Count; i++ {
			out = append(out, r.Value)
		}
	}
	return out
}

// Dict is an order-of-first-appearance dictionary for slot vectors. It is
// built once at merge time and immutable afterwards.
type Dict struct {
	codes  map[uint64]uint32
	values []uint64
}

// BuildDict builds a dictionary over vals and returns it along with the
// code vector.
func BuildDict(vals []uint64) (*Dict, []uint32) {
	d := &Dict{codes: make(map[uint64]uint32)}
	codes := make([]uint32, len(vals))
	for i, v := range vals {
		c, ok := d.codes[v]
		if !ok {
			c = uint32(len(d.values))
			d.codes[v] = c
			d.values = append(d.values, v)
		}
		codes[i] = c
	}
	return d, codes
}

// Size returns the number of distinct values.
func (d *Dict) Size() int { return len(d.values) }

// Value returns the value for a code.
func (d *Dict) Value(code uint32) uint64 { return d.values[code] }

// Code returns the code for a value, if present.
func (d *Dict) Code(v uint64) (uint32, bool) {
	c, ok := d.codes[v]
	return c, ok
}
