package compress

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestZigZagRoundTrip(t *testing.T) {
	f := func(v int64) bool { return UnZigZag(ZigZag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZigZagSmallMagnitudes(t *testing.T) {
	cases := map[int64]uint64{0: 0, -1: 1, 1: 2, -2: 3, 2: 4}
	for v, want := range cases {
		if got := ZigZag(v); got != want {
			t.Errorf("ZigZag(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	f := func(vals []uint64) bool {
		enc := DeltaEncode(nil, vals)
		dec, n, err := DeltaDecode(enc)
		if err != nil || n != len(enc) {
			return false
		}
		if len(vals) == 0 {
			return len(dec) == 0
		}
		return reflect.DeepEqual(dec, vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaDecodeTruncated(t *testing.T) {
	enc := DeltaEncode(nil, []uint64{1, 2, 3, 100000})
	for cut := 1; cut < len(enc); cut++ {
		if _, _, err := DeltaDecode(enc[:cut]); err == nil {
			// Some prefixes happen to decode (shorter count), only the count
			// prefix itself is guaranteed to fail; accept decodes that
			// consumed exactly the prefix.
			continue
		}
	}
	if _, _, err := DeltaDecode(nil); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestDeltaCompactForSorted(t *testing.T) {
	vals := make([]uint64, 1000)
	for i := range vals {
		vals[i] = 1_000_000 + uint64(i)*3
	}
	enc := DeltaEncode(nil, vals)
	if len(enc) > 1100 { // ~1 byte per delta + header
		t.Errorf("sorted delta encoding too large: %d bytes for 1000 values", len(enc))
	}
}

func TestPackBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, width := range []int{1, 3, 7, 8, 13, 31, 33, 63, 64} {
		n := 257
		vals := make([]uint64, n)
		for i := range vals {
			if width == 64 {
				vals[i] = rng.Uint64()
			} else {
				vals[i] = rng.Uint64() & (1<<uint(width) - 1)
			}
		}
		words := PackBits(vals, width)
		got := UnpackBits(words, width, n)
		if !reflect.DeepEqual(got, vals) {
			t.Fatalf("width %d: roundtrip mismatch", width)
		}
		for i := 0; i < n; i += 17 {
			if UnpackBit(words, width, i) != vals[i] {
				t.Fatalf("width %d: UnpackBit(%d) mismatch", width, i)
			}
		}
	}
}

func TestPackBitsZeroWidth(t *testing.T) {
	words := PackBits([]uint64{0, 0, 0}, 0)
	if len(words) != 0 {
		t.Errorf("zero-width pack should be empty")
	}
	if UnpackBit(words, 0, 2) != 0 {
		t.Errorf("zero-width unpack should be 0")
	}
}

func TestBitWidth(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 1, 2: 2, 3: 2, 255: 8, 256: 9, ^uint64(0): 64}
	for v, want := range cases {
		if got := BitWidth(v); got != want {
			t.Errorf("BitWidth(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestRLERoundTrip(t *testing.T) {
	f := func(vals []uint64) bool {
		small := make([]uint64, len(vals))
		for i, v := range vals {
			small[i] = v % 4 // force runs
		}
		return reflect.DeepEqual(RLDecode(RLEncode(small)), small) ||
			(len(small) == 0 && len(RLDecode(RLEncode(small))) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRLECompacts(t *testing.T) {
	vals := make([]uint64, 10000)
	runs := RLEncode(vals)
	if len(runs) != 1 {
		t.Fatalf("constant vector should be one run, got %d", len(runs))
	}
	if runs[0].Count != 10000 || runs[0].Value != 0 {
		t.Fatalf("bad run %+v", runs[0])
	}
}

func TestDictRoundTrip(t *testing.T) {
	vals := []uint64{5, 9, 5, 5, 7, 9, 1}
	d, codes := BuildDict(vals)
	if d.Size() != 4 {
		t.Fatalf("dict size = %d, want 4", d.Size())
	}
	for i, c := range codes {
		if d.Value(c) != vals[i] {
			t.Errorf("codes[%d] decodes to %d, want %d", i, d.Value(c), vals[i])
		}
	}
	if c, ok := d.Code(7); !ok || d.Value(c) != 7 {
		t.Errorf("Code(7) lookup failed")
	}
	if _, ok := d.Code(1234); ok {
		t.Errorf("Code found for absent value")
	}
}

func TestDictProperty(t *testing.T) {
	f := func(vals []uint64) bool {
		mod := make([]uint64, len(vals))
		for i, v := range vals {
			mod[i] = v % 16
		}
		d, codes := BuildDict(mod)
		for i, c := range codes {
			if d.Value(c) != mod[i] {
				return false
			}
		}
		return d.Size() <= 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
