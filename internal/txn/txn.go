// Package txn implements the transaction layer of §5.1: the optimistic
// concurrency model of Sadoghi et al. [33] with the speculative reads of
// Larson et al. [18]. L-Store's storage is agnostic to the concurrency
// protocol; this package provides what the storage layer consumes:
//
//   - a synchronized logical clock ("time is advanced before it is
//     returned") issuing begin and commit timestamps,
//   - a transaction-manager hashtable tracking each transaction's state
//     (active → pre-commit → committed | aborted) and times,
//   - resolution of Start Time slots that transiently hold transaction IDs,
//     plus the lazy swap bookkeeping that lets finished transactions be
//     forgotten,
//   - read-set validation hooks for repeatable-read/serializable commits.
//
// Write-write conflict detection itself lives with the Indirection word in
// the storage layer (a CAS on the embedded latch bit); this package supplies
// the state checks that protocol consults.
package txn

import (
	"fmt"
	"sync"
	"sync/atomic"

	"lstore/internal/types"
)

// Level is the isolation level of a transaction.
type Level uint8

const (
	// ReadCommitted reads the latest committed version of each record and
	// performs no commit-time validation (§5.1.1: "read committed ... does
	// not require validation"). The paper's short update transactions run
	// under this level.
	ReadCommitted Level = iota
	// Snapshot reads the database as of the transaction's begin time; only
	// speculative reads require validation. The paper's analytical scans run
	// under this level.
	Snapshot
	// Serializable validates the entire read set at commit time (read
	// repeatability via re-check of committed visible versions).
	Serializable
)

func (l Level) String() string {
	switch l {
	case ReadCommitted:
		return "read-committed"
	case Snapshot:
		return "snapshot"
	case Serializable:
		return "serializable"
	default:
		return fmt.Sprintf("level(%d)", uint8(l))
	}
}

// State is a transaction's lifecycle state (§5.1.1).
type State int32

const (
	StateActive State = iota
	StatePreCommit
	StateCommitted
	StateAborted
)

func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StatePreCommit:
		return "pre-commit"
	case StateCommitted:
		return "committed"
	case StateAborted:
		return "aborted"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// Status classifies a version's visibility source after resolving its Start
// Time slot.
type Status uint8

const (
	// StatusCommitted: the version belongs to a committed transaction.
	StatusCommitted Status = iota
	// StatusPreCommitted: the owning transaction is validating; visible only
	// to speculative reads.
	StatusPreCommitted
	// StatusUncommitted: the owning transaction is still active.
	StatusUncommitted
	// StatusAborted: tombstone; every reader skips it.
	StatusAborted
)

// ErrConflict is returned when OCC detects a write-write conflict or a
// validation failure; the caller aborts and may retry the transaction.
var ErrConflict = fmt.Errorf("txn: conflict")

// Txn is one transaction's bookkeeping.
type Txn struct {
	ID    types.TxnID
	Begin types.Timestamp
	Level Level

	state      atomic.Int32
	commit     atomic.Uint64
	mgr        *Manager
	mu         sync.Mutex
	validators []func(commitTime types.Timestamp) bool
	// pendingSlots counts Start Time slots still holding this txn's ID; the
	// lazy swap decrements it, and Sweep reclaims entries at zero.
	pendingSlots atomic.Int64
}

// State returns the current lifecycle state.
func (t *Txn) State() State { return State(t.state.Load()) }

// CommitTime returns the commit timestamp (0 before Prepare).
func (t *Txn) CommitTime() types.Timestamp { return t.commit.Load() }

// AddValidator registers a read-set re-check executed at commit when the
// isolation level requires validation. The callback receives the commit
// timestamp and reports whether the observed read is still the committed
// visible version as of that time.
func (t *Txn) AddValidator(f func(commitTime types.Timestamp) bool) {
	if t.Level == ReadCommitted {
		return // never validated; skip the allocation
	}
	t.mu.Lock()
	t.validators = append(t.validators, f)
	t.mu.Unlock()
}

// NoteWrite records that one Start Time slot now holds this txn's ID.
func (t *Txn) NoteWrite() { t.pendingSlots.Add(1) }

// NoteSwapped records that a reader lazily replaced one of this txn's Start
// Time slots with its commit time (or tombstone marker).
func (t *Txn) NoteSwapped() { t.pendingSlots.Add(-1) }

// Manager is the transaction manager: the synchronized clock plus the state
// hashtable of §5.1.1.
type Manager struct {
	clock  atomic.Uint64
	stripe [64]mgrStripe
}

type mgrStripe struct {
	mu sync.RWMutex
	m  map[types.TxnID]*Txn
}

// NewManager returns a Manager whose clock starts at 1 (timestamp 0 is the
// "before everything" sentinel used for base-record install times in tests).
func NewManager() *Manager {
	m := &Manager{}
	for i := range m.stripe {
		m.stripe[i].m = make(map[types.TxnID]*Txn)
	}
	return m
}

// Tick advances the clock and returns the new time.
func (m *Manager) Tick() types.Timestamp { return m.clock.Add(1) }

// Now returns the current time without advancing the clock.
func (m *Manager) Now() types.Timestamp { return m.clock.Load() }

// AdvanceTo moves the clock forward to at least ts (CAS-max; never moves it
// backward). Restore uses it after installing checkpointed base pages whose
// records keep their ORIGINAL commit timestamps: the clock must pass every
// installed time or fresh transactions would commit into the past.
func (m *Manager) AdvanceTo(ts types.Timestamp) {
	for {
		cur := m.clock.Load()
		if cur >= ts || m.clock.CompareAndSwap(cur, ts) {
			return
		}
	}
}

func (m *Manager) stripeFor(id types.TxnID) *mgrStripe {
	return &m.stripe[(id>>1)%64]
}

// Begin starts a transaction at the given isolation level. The begin time
// seeds the transaction ID (§5.1.1 footnote 14).
func (m *Manager) Begin(level Level) *Txn {
	begin := m.Tick()
	t := &Txn{
		ID:    types.TxnIDFlag | begin,
		Begin: begin,
		Level: level,
		mgr:   m,
	}
	s := m.stripeFor(t.ID)
	s.mu.Lock()
	s.m[t.ID] = t
	s.mu.Unlock()
	return t
}

// Lookup returns the transaction for id, if still tracked.
func (m *Manager) Lookup(id types.TxnID) (*Txn, bool) {
	s := m.stripeFor(id)
	s.mu.RLock()
	t, ok := s.m[id]
	s.mu.RUnlock()
	return t, ok
}

// Prepare moves t from active to pre-commit and assigns the commit time;
// both changes are reflected atomically with respect to Resolve (state is
// read after commit time is published).
func (m *Manager) Prepare(t *Txn) (types.Timestamp, error) {
	ct := m.Tick()
	t.commit.Store(ct)
	if !t.state.CompareAndSwap(int32(StateActive), int32(StatePreCommit)) {
		return 0, fmt.Errorf("txn: prepare in state %v", t.State())
	}
	return ct, nil
}

// Validate re-checks the read set against the commit time. It must be called
// between Prepare and Commit.
func (t *Txn) Validate() error {
	ct := t.CommitTime()
	t.mu.Lock()
	vs := t.validators
	t.mu.Unlock()
	for _, f := range vs {
		if !f(ct) {
			return ErrConflict
		}
	}
	return nil
}

// Commit finalizes t: prepare (if not yet), validate, then flip to
// committed. On validation failure the transaction is aborted and
// ErrConflict returned.
func (m *Manager) Commit(t *Txn) error {
	if t.State() == StateActive {
		if _, err := m.Prepare(t); err != nil {
			return err
		}
	}
	if err := t.Validate(); err != nil {
		m.Abort(t)
		return err
	}
	if !t.state.CompareAndSwap(int32(StatePreCommit), int32(StateCommitted)) {
		return fmt.Errorf("txn: commit in state %v", t.State())
	}
	return nil
}

// Abort marks t aborted. Its tail records become tombstones resolved through
// Resolve; nothing is physically removed (append-only, §5.1.3).
func (m *Manager) Abort(t *Txn) {
	for {
		s := t.State()
		if s == StateCommitted {
			return // too late; committed wins
		}
		if s == StateAborted {
			return
		}
		if t.state.CompareAndSwap(int32(s), int32(StateAborted)) {
			return
		}
	}
}

// Resolve interprets a Start Time slot value (§5.1.1 "the Start Time column
// may also hold transaction ID"). It returns the version's commit time when
// one exists. Unknown transaction IDs denote swept transactions; sweeping
// only removes transactions with no remaining slots, so an unknown ID can
// occur only if the caller raced a sweep after observing the slot — treat it
// as aborted-tombstone, the conservative answer.
func (m *Manager) Resolve(slot uint64) (types.Timestamp, Status) {
	if slot == types.NullSlot {
		return 0, StatusAborted
	}
	if !types.IsTxnID(slot) {
		return slot, StatusCommitted
	}
	t, ok := m.Lookup(slot)
	if !ok {
		return 0, StatusAborted
	}
	switch t.State() {
	case StateCommitted:
		return t.CommitTime(), StatusCommitted
	case StatePreCommit:
		return t.CommitTime(), StatusPreCommitted
	case StateAborted:
		return 0, StatusAborted
	default:
		return 0, StatusUncommitted
	}
}

// Sweep removes finished transactions whose Start Time slots have all been
// lazily swapped; it returns how many were forgotten.
func (m *Manager) Sweep() int {
	n := 0
	for i := range m.stripe {
		s := &m.stripe[i]
		s.mu.Lock()
		for id, t := range s.m {
			st := t.State()
			if (st == StateCommitted || st == StateAborted) && t.pendingSlots.Load() == 0 {
				delete(s.m, id)
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// Tracked returns the number of transactions currently tracked.
func (m *Manager) Tracked() int {
	n := 0
	for i := range m.stripe {
		s := &m.stripe[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}
