package txn

import (
	"sync"
	"testing"

	"lstore/internal/types"
)

func TestBeginAssignsMonotoneTimes(t *testing.T) {
	m := NewManager()
	t1 := m.Begin(ReadCommitted)
	t2 := m.Begin(ReadCommitted)
	if t1.Begin >= t2.Begin {
		t.Fatalf("begin times not monotone: %d, %d", t1.Begin, t2.Begin)
	}
	if t1.ID == t2.ID {
		t.Fatal("duplicate txn ids")
	}
	if !types.IsTxnID(t1.ID) {
		t.Fatal("txn id missing flag bit")
	}
	if t1.State() != StateActive {
		t.Fatalf("fresh txn state = %v", t1.State())
	}
}

func TestCommitLifecycle(t *testing.T) {
	m := NewManager()
	tx := m.Begin(ReadCommitted)
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if tx.State() != StateCommitted {
		t.Fatalf("state = %v", tx.State())
	}
	if tx.CommitTime() <= tx.Begin {
		t.Fatalf("commit time %d not after begin %d", tx.CommitTime(), tx.Begin)
	}
	// Double commit is an error.
	if err := m.Commit(tx); err == nil {
		t.Fatal("double commit accepted")
	}
}

func TestAbort(t *testing.T) {
	m := NewManager()
	tx := m.Begin(ReadCommitted)
	m.Abort(tx)
	if tx.State() != StateAborted {
		t.Fatalf("state = %v", tx.State())
	}
	m.Abort(tx) // idempotent
	if err := m.Commit(tx); err == nil {
		t.Fatal("commit after abort accepted")
	}
	// Abort after commit is a no-op.
	tx2 := m.Begin(ReadCommitted)
	if err := m.Commit(tx2); err != nil {
		t.Fatal(err)
	}
	m.Abort(tx2)
	if tx2.State() != StateCommitted {
		t.Fatal("abort overrode commit")
	}
}

func TestValidationFailureAborts(t *testing.T) {
	m := NewManager()
	tx := m.Begin(Serializable)
	tx.AddValidator(func(types.Timestamp) bool { return true })
	tx.AddValidator(func(types.Timestamp) bool { return false })
	if err := m.Commit(tx); err != ErrConflict {
		t.Fatalf("err = %v, want ErrConflict", err)
	}
	if tx.State() != StateAborted {
		t.Fatalf("state = %v", tx.State())
	}
}

func TestValidatorsSkippedForReadCommitted(t *testing.T) {
	m := NewManager()
	tx := m.Begin(ReadCommitted)
	called := false
	tx.AddValidator(func(types.Timestamp) bool { called = true; return false })
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("validator ran under read-committed")
	}
}

func TestValidatorReceivesCommitTime(t *testing.T) {
	m := NewManager()
	tx := m.Begin(Serializable)
	var got types.Timestamp
	tx.AddValidator(func(ct types.Timestamp) bool { got = ct; return true })
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if got != tx.CommitTime() {
		t.Fatalf("validator saw %d, commit time %d", got, tx.CommitTime())
	}
}

func TestResolve(t *testing.T) {
	m := NewManager()

	// Plain timestamp.
	if ts, st := m.Resolve(42); ts != 42 || st != StatusCommitted {
		t.Fatalf("plain slot: (%d,%v)", ts, st)
	}
	// Null slot is a tombstone.
	if _, st := m.Resolve(types.NullSlot); st != StatusAborted {
		t.Fatalf("null slot status %v", st)
	}
	// Active txn.
	tx := m.Begin(ReadCommitted)
	if _, st := m.Resolve(tx.ID); st != StatusUncommitted {
		t.Fatalf("active status %v", st)
	}
	// Pre-commit.
	if _, err := m.Prepare(tx); err != nil {
		t.Fatal(err)
	}
	if ts, st := m.Resolve(tx.ID); st != StatusPreCommitted || ts != tx.CommitTime() {
		t.Fatalf("pre-commit: (%d,%v)", ts, st)
	}
	// Committed.
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if ts, st := m.Resolve(tx.ID); st != StatusCommitted || ts != tx.CommitTime() {
		t.Fatalf("committed: (%d,%v)", ts, st)
	}
	// Aborted.
	tx2 := m.Begin(ReadCommitted)
	m.Abort(tx2)
	if _, st := m.Resolve(tx2.ID); st != StatusAborted {
		t.Fatalf("aborted status %v", st)
	}
	// Unknown txn id (swept) resolves as tombstone.
	if _, st := m.Resolve(types.TxnIDFlag | 999999); st != StatusAborted {
		t.Fatalf("unknown id status %v", st)
	}
}

func TestSweepOnlyDrainedTxns(t *testing.T) {
	m := NewManager()
	tx := m.Begin(ReadCommitted)
	tx.NoteWrite()
	tx.NoteWrite()
	if err := m.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if n := m.Sweep(); n != 0 {
		t.Fatalf("swept %d with pending slots", n)
	}
	tx.NoteSwapped()
	tx.NoteSwapped()
	if n := m.Sweep(); n != 1 {
		t.Fatalf("swept %d, want 1", n)
	}
	if _, ok := m.Lookup(tx.ID); ok {
		t.Fatal("swept txn still tracked")
	}
	if m.Tracked() != 0 {
		t.Fatalf("Tracked = %d", m.Tracked())
	}
}

func TestSweepKeepsActive(t *testing.T) {
	m := NewManager()
	_ = m.Begin(ReadCommitted)
	if n := m.Sweep(); n != 0 {
		t.Fatalf("swept active txn")
	}
}

func TestConcurrentBeginCommitUniqueCommitTimes(t *testing.T) {
	m := NewManager()
	const workers, per = 8, 200
	var mu sync.Mutex
	seen := make(map[types.Timestamp]struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]types.Timestamp, 0, per)
			for i := 0; i < per; i++ {
				tx := m.Begin(ReadCommitted)
				if err := m.Commit(tx); err != nil {
					t.Error(err)
					return
				}
				local = append(local, tx.CommitTime())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, ct := range local {
				if _, dup := seen[ct]; dup {
					t.Errorf("duplicate commit time %d", ct)
				}
				seen[ct] = struct{}{}
			}
		}()
	}
	wg.Wait()
	if len(seen) != workers*per {
		t.Fatalf("got %d unique commit times, want %d", len(seen), workers*per)
	}
}

func TestLevelAndStateStrings(t *testing.T) {
	if ReadCommitted.String() != "read-committed" || Snapshot.String() != "snapshot" || Serializable.String() != "serializable" {
		t.Error("level strings wrong")
	}
	if StateActive.String() != "active" || StatePreCommit.String() != "pre-commit" ||
		StateCommitted.String() != "committed" || StateAborted.String() != "aborted" {
		t.Error("state strings wrong")
	}
}
