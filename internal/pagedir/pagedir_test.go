package pagedir

import (
	"sync"
	"testing"
)

func TestBasicOps(t *testing.T) {
	d := New[string]()
	if _, ok := d.Get(1); ok {
		t.Fatal("empty directory hit")
	}
	d.Put(1, "a")
	if v, ok := d.Get(1); !ok || v != "a" {
		t.Fatalf("Get = (%q,%v)", v, ok)
	}
	old, ok := d.Swap(1, "b")
	if !ok || old != "a" {
		t.Fatalf("Swap = (%q,%v)", old, ok)
	}
	if v, _ := d.Get(1); v != "b" {
		t.Fatalf("after swap: %q", v)
	}
	if _, ok := d.Swap(99, "x"); ok {
		t.Fatal("swap on absent key reported present")
	}
	if v, _ := d.Get(99); v != "x" {
		t.Fatal("swap on absent key did not install")
	}
	d.Delete(1)
	if _, ok := d.Get(1); ok {
		t.Fatal("deleted key still present")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestRange(t *testing.T) {
	d := New[int]()
	for i := uint64(0); i < 50; i++ {
		d.Put(i, int(i)*2)
	}
	sum := 0
	d.Range(func(k uint64, v int) bool {
		if v != int(k)*2 {
			t.Errorf("entry %d = %d", k, v)
		}
		sum += v
		return true
	})
	if sum != 49*50 {
		t.Fatalf("sum = %d", sum)
	}
	n := 0
	d.Range(func(uint64, int) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

// TestRangeNoReentrantWrites pins the Range contract the doc comment states:
// fn runs under the stripe's read latch, so lookups from inside fn are safe
// (shared latches), while mutations must be collected and applied after the
// walk. The mutate-after pattern below is the prescribed idiom; calling
// Put/Swap/Delete from fn would self-deadlock on the iterated stripe and is
// deliberately NOT exercised.
func TestRangeNoReentrantWrites(t *testing.T) {
	d := New[int]()
	for i := uint64(0); i < 200; i++ {
		d.Put(i, int(i))
	}
	// Nested Gets under the read latch, including keys on the stripe being
	// iterated (k itself), must not block.
	d.Range(func(k uint64, v int) bool {
		if got, ok := d.Get(k); !ok || got != v {
			t.Errorf("nested Get(%d) = (%d,%v) under Range latch", k, got, ok)
		}
		return true
	})
	// Collect during the walk, mutate after Range returns.
	var stale []uint64
	d.Range(func(k uint64, v int) bool {
		if k%2 == 1 {
			stale = append(stale, k)
		}
		return true
	})
	for _, k := range stale {
		d.Delete(k)
	}
	if d.Len() != 100 {
		t.Fatalf("Len = %d after deferred deletes, want 100", d.Len())
	}
	d.Range(func(k uint64, _ int) bool {
		if k%2 == 1 {
			t.Errorf("stale key %d survived", k)
		}
		return true
	})
}

func TestConcurrentSwapAndGet(t *testing.T) {
	d := New[*int]()
	v0 := 0
	d.Put(7, &v0)
	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	// Readers always observe a valid pointer (old or new), never nil.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p, ok := d.Get(7)
				if !ok || p == nil {
					t.Error("reader observed missing/nil value during swaps")
					return
				}
			}
		}()
	}
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 1; i <= 500; i++ {
				v := i
				d.Swap(7, &v)
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}

func TestManyKeysAcrossShards(t *testing.T) {
	d := New[uint64]()
	const n = 10000
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint64(w); i < n; i += 4 {
				d.Put(i, i+1)
			}
		}(w)
	}
	wg.Wait()
	if d.Len() != n {
		t.Fatalf("Len = %d, want %d", d.Len(), n)
	}
	for i := uint64(0); i < n; i += 97 {
		if v, ok := d.Get(i); !ok || v != i+1 {
			t.Fatalf("key %d = (%d,%v)", i, v, ok)
		}
	}
}
