// Package pagedir implements L-Store's page directory (§2.1, §4.1 step 4):
// the structure through which both base and tail pages are referenced by
// RID-derived keys and "an index structure that is updated rarely, only when
// new pages are allocated" — plus the pointer swap that is the merge
// process's only foreground action.
//
// The directory is a lock-striped hash map. Point lookups take a shared
// stripe latch; Put/Swap take an exclusive stripe latch, mirroring the
// paper's per-entry latching (§5.1.2: "every affected page in the page
// directory is latched one at a time to perform the pointer swap").
package pagedir

import "sync"

const stripeCount = 64

// Directory maps uint64 keys (range indexes, tail-block indexes) to values
// (page sets). The zero value is not usable; call New.
type Directory[V any] struct {
	shards [stripeCount]shard[V]
}

type shard[V any] struct {
	mu sync.RWMutex
	m  map[uint64]V // guarded by mu
}

// New returns an empty directory.
func New[V any]() *Directory[V] {
	d := &Directory[V]{}
	for i := range d.shards {
		d.shards[i].m = make(map[uint64]V)
	}
	return d
}

func (d *Directory[V]) shard(k uint64) *shard[V] {
	// splitmix64 finalizer: directory keys are sequential indexes.
	x := k
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return &d.shards[x%stripeCount]
}

// Get returns the value for k.
func (d *Directory[V]) Get(k uint64) (V, bool) {
	s := d.shard(k)
	s.mu.RLock()
	v, ok := s.m[k]
	s.mu.RUnlock()
	return v, ok
}

// Put installs k → v unconditionally.
func (d *Directory[V]) Put(k uint64, v V) {
	s := d.shard(k)
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// Swap replaces the value for k and returns the previous value. This is the
// merge process's pointer swap; ok reports whether k was present.
func (d *Directory[V]) Swap(k uint64, v V) (old V, ok bool) {
	s := d.shard(k)
	s.mu.Lock()
	old, ok = s.m[k]
	s.m[k] = v
	s.mu.Unlock()
	return old, ok
}

// Delete removes k (used when historic tail pages are permanently
// discarded).
func (d *Directory[V]) Delete(k uint64) {
	s := d.shard(k)
	s.mu.Lock()
	delete(s.m, k)
	s.mu.Unlock()
}

// Len returns the number of entries.
func (d *Directory[V]) Len() int {
	n := 0
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Range calls fn for each entry until fn returns false, holding one stripe
// latch at a time.
//
// fn runs UNDER that stripe's read latch, so it must not call Put, Swap, or
// Delete on the directory: a write to a key that hashes to the stripe being
// iterated self-deadlocks on the stripe's write latch (sync.RWMutex is not
// reentrant, and a pending writer also blocks any further RLock). Lookups
// from fn are safe — read latches are shared — and writes to OTHER stripes
// merely risk blocking behind this iteration; collect mutations during the
// walk and apply them after Range returns.
func (d *Directory[V]) Range(fn func(k uint64, v V) bool) {
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.RLock()
		for k, v := range s.m {
			if !fn(k, v) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}
