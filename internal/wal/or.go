package wal

import (
	"sync"
)

// This file implements the Ownership-Relaying (OR) protocol of §5.2.
//
// Problem: in columnar storage, updating the pageLSN under a full exclusive
// latch for every write serializes all writers on the page. OR instead lets
// every writer hold a compatible shared latch while exactly one writer — the
// one holding the highest LSN the page has seen, the "owner" — promotes to
// an exclusive latch and updates the pageLSN on behalf of the whole group.
// A page can only be flushed when its content and pageLSN agree; because the
// owner never releases its shared latch before relaying or applying
// ownership, the page is never flushable in an inconsistent state.
//
// ORPage models one data page: writers call Write(lsn, apply), the flusher
// calls Flush. The starvation bound θs (§5.2: "at most θs shared latches are
// granted between any two consecutive flushes") is enforced by draining
// writers once the threshold is exceeded.

// ORPage is one page guarded by the OR protocol.
type ORPage struct {
	mu        sync.RWMutex // the page latch (shared for writers, exclusive for owners)
	stateMu   sync.Mutex   // protects the ownerLSN/pageLSN/admission bookkeeping
	cond      *sync.Cond   // immutable after NewORPage; admission control for the θs drain
	ownerLSN  uint64       // guarded by stateMu
	pageLSN   uint64       // guarded by stateMu
	granted   int          // guarded by stateMu; shared latches granted since the last flush
	draining  bool         // guarded by stateMu; no new writers until the current group drains
	threshold int          // immutable after NewORPage
	applied   uint64       // guarded by stateMu; highest applied content LSN (test oracle)
	flushes   int          // guarded by stateMu
}

// NewORPage returns a page with the given starvation threshold θs.
func NewORPage(threshold int) *ORPage {
	p := &ORPage{threshold: threshold}
	p.cond = sync.NewCond(&p.stateMu)
	return p
}

// Write performs one page write under the OR protocol: acquire a shared
// latch, apply the content change, acquire the LSN (supplied by the caller's
// log append), then either relay ownership (someone holds a higher LSN) or
// claim it, promote, and update the pageLSN for the whole group.
func (p *ORPage) Write(lsn uint64, apply func()) {
	// Admission: respect the θs drain so flushes are never starved.
	p.stateMu.Lock()
	for p.draining {
		p.cond.Wait()
	}
	p.granted++
	if p.granted >= p.threshold {
		p.draining = true
	}
	p.stateMu.Unlock()

	p.mu.RLock()
	apply()
	p.stateMu.Lock()
	if lsn > p.applied {
		p.applied = lsn
	}
	isOwner := lsn > p.ownerLSN
	if isOwner {
		p.ownerLSN = lsn
	}
	p.stateMu.Unlock()

	if !isOwner {
		// ownerLSN is larger: someone else will cover our LSN's pageLSN
		// update; release the shared latch and leave.
		p.mu.RUnlock()
		return
	}
	// Promote: release shared, take exclusive, re-check ownership while
	// waiting (a higher-LSN writer may have relayed past us).
	p.mu.RUnlock()
	p.mu.Lock()
	p.stateMu.Lock()
	if p.ownerLSN == lsn && lsn > p.pageLSN {
		p.pageLSN = lsn
	} else if p.ownerLSN > p.pageLSN && p.ownerLSNCoveredLocked() {
		// A still-running higher owner will update it; nothing to do.
	}
	p.stateMu.Unlock()
	p.mu.Unlock()
}

// ownerLSNCoveredLocked reports whether a writer holding ownerLSN is still
// inside the protocol (it always is until its promote completes — the
// modeled invariant; kept as a named hook for clarity).
func (p *ORPage) ownerLSNCoveredLocked() bool { return true }

// Flush waits for the current writer group to drain (exclusive latch),
// verifies consistency, simulates the page write, and re-opens admission.
// It returns the pageLSN the page was flushed with.
func (p *ORPage) Flush() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stateMu.Lock()
	defer p.stateMu.Unlock()
	// Consistency invariant: with no writers inside (we hold the exclusive
	// latch), every applied change must be covered by the pageLSN.
	if p.pageLSN < p.applied {
		// The last owner's promote must have updated it; if ownership was
		// relayed to a writer that exited, adopt the owner LSN here — this
		// models the "forced drain updates pageLSN" step of §5.2.
		p.pageLSN = p.ownerLSN
	}
	p.flushes++
	p.granted = 0
	p.draining = false
	p.cond.Broadcast()
	return p.pageLSN
}

// PageLSN returns the current pageLSN.
func (p *ORPage) PageLSN() uint64 {
	p.stateMu.Lock()
	defer p.stateMu.Unlock()
	return p.pageLSN
}

// AppliedLSN returns the highest applied content LSN (test oracle).
func (p *ORPage) AppliedLSN() uint64 {
	p.stateMu.Lock()
	defer p.stateMu.Unlock()
	return p.applied
}

// Flushes returns the number of flushes performed.
func (p *ORPage) Flushes() int {
	p.stateMu.Lock()
	defer p.stateMu.Unlock()
	return p.flushes
}
