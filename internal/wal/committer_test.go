package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"lstore/internal/fault"
)

// gatedSink is an in-memory Syncer whose Sync blocks until the test
// releases it — deterministic control over when a batch flush completes.
type gatedSink struct {
	mu      sync.Mutex
	buf     bytes.Buffer
	entered chan struct{} // one send per Sync entry
	release chan struct{} // one receive completes a Sync
}

func newGatedSink() *gatedSink {
	return &gatedSink{entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gatedSink) Write(p []byte) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.buf.Write(p)
}

func (g *gatedSink) Sync() error {
	g.entered <- struct{}{}
	<-g.release
	return nil
}

// TestGroupCommitOneFlushWakesAllWaiters pins the committer's core claim
// deterministically: with nine commit records already appended, nine
// concurrent commitWait callers produce EXACTLY one flush — one caller
// becomes leader, its single fsync vouches for every record, and every
// waiter (and every late arrival, which finds itself already covered)
// returns nil without touching the device.
func TestGroupCommitOneFlushWakesAllWaiters(t *testing.T) {
	g := newGatedSink()
	l := NewLogger(g, nil)
	const n = 9
	lsns := make([]uint64, n)
	for i := 0; i < n; i++ {
		txn := uint64(i + 1)
		if _, err := l.Append(Record{Kind: KindBegin, TxnID: txn}); err != nil {
			t.Fatal(err)
		}
		lsn, err := l.Append(Record{Kind: KindCommit, TxnID: txn})
		if err != nil {
			t.Fatal(err)
		}
		lsns[i] = lsn
	}
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(lsn uint64) { errs <- l.commitWait(lsn) }(lsns[i])
	}
	<-g.entered // exactly one leader reached the sync
	g.release <- struct{}{}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("commitWait: %v", err)
		}
	}
	if s := l.Syncs(); s != 1 {
		t.Fatalf("syncs = %d, want exactly 1 for the whole batch", s)
	}
	if b := l.GroupBatches(); b != 1 {
		t.Fatalf("batches = %d, want 1", b)
	}
	if got := l.FlushedLSN(); got < lsns[n-1] {
		t.Fatalf("flushed LSN %d does not cover last commit %d", got, lsns[n-1])
	}
}

// TestGroupCommitFailedBatchFlushFailsEveryWaiter: a batch whose one flush
// fails must fail EVERY waiter — no commit may be told "durable" on the
// strength of a flush that did not complete — and the logger stays
// poisoned for all later commits.
func TestGroupCommitFailedBatchFlushFailsEveryWaiter(t *testing.T) {
	sink := fault.NewSink(&bytes.Buffer{}, fault.FailSync(1))
	l := NewLogger(sink, nil)
	const n = 7
	lsns := make([]uint64, n)
	for i := 0; i < n; i++ {
		txn := uint64(i + 1)
		if _, err := l.Append(Record{Kind: KindBegin, TxnID: txn}); err != nil {
			t.Fatal(err)
		}
		lsn, err := l.Append(Record{Kind: KindCommit, TxnID: txn})
		if err != nil {
			t.Fatal(err)
		}
		lsns[i] = lsn
	}
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(lsn uint64) { errs <- l.commitWait(lsn) }(lsns[i])
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err == nil {
			t.Fatal("a waiter of the failed batch was acknowledged")
		}
	}
	if l.Err() == nil {
		t.Fatal("failed batch flush did not poison the logger")
	}
	if l.FlushedLSN() != 0 {
		t.Fatalf("flushed LSN advanced to %d across a failed sync", l.FlushedLSN())
	}
	if _, err := l.AppendCommit(99); err == nil {
		t.Fatal("post-poison commit succeeded")
	}
}

// TestGroupCommitEarlierFlushOutlivesLaterPoison: a commit covered by a
// successful flush stays acknowledged even though a LATER batch poisons
// the logger — durability already happened; poison only gates new work.
func TestGroupCommitEarlierFlushOutlivesLaterPoison(t *testing.T) {
	sink := fault.NewSink(&bytes.Buffer{}, fault.FailSync(2))
	l := NewLogger(sink, nil)
	l.Append(Record{Kind: KindBegin, TxnID: 1})
	lsn1, err := l.AppendCommit(1)
	if err != nil {
		t.Fatalf("first commit: %v", err)
	}
	l.Append(Record{Kind: KindBegin, TxnID: 2})
	if _, err := l.AppendCommit(2); err == nil {
		t.Fatal("second commit survived its failed flush")
	}
	// The first commit's coverage is still intact, and commitWait agrees.
	if l.FlushedLSN() < lsn1 {
		t.Fatalf("flushed LSN %d regressed below acknowledged commit %d", l.FlushedLSN(), lsn1)
	}
	if err := l.commitWait(lsn1); err != nil {
		t.Fatalf("already-covered commit re-answered %v, want nil", err)
	}
}

// TestGroupCommitConcurrentSyncsSublinear is the acceptance-criterion
// test: ≥32 concurrent committers over a file-backed (really-fsyncing)
// WAL, with a modeled device latency, must share flushes — Syncs() grows
// sublinearly in commits (here: at most half).
func TestGroupCommitConcurrentSyncsSublinear(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	sink, err := OpenFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	// The synced hook models device latency: tmpfs fsync is near-free, and
	// group commit only pays off (and only batches) when syncs cost
	// something for committers to pile up behind.
	l := NewLogger(sink, func() { time.Sleep(200 * time.Microsecond) })
	const (
		workers       = 32
		commitsPerWkr = 8
		totalCommits  = workers * commitsPerWkr
	)
	var wg sync.WaitGroup
	errs := make(chan error, totalCommits)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < commitsPerWkr; i++ {
				txn := uint64(w*commitsPerWkr + i + 1)
				if _, err := l.Append(Record{Kind: KindBegin, TxnID: txn}); err != nil {
					errs <- err
					return
				}
				if _, err := l.Append(Record{Kind: KindInsert, TxnID: txn, Key: txn, Vals: []uint64{txn}}); err != nil {
					errs <- err
					return
				}
				if _, err := l.AppendCommit(txn); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("commit failed: %v", err)
	}
	if s := l.Syncs(); s*2 > totalCommits {
		t.Fatalf("syncs = %d for %d commits: group commit is not batching", s, totalCommits)
	}
	if b := l.GroupBatches(); b == 0 || b > totalCommits {
		t.Fatalf("batches = %d for %d commits", b, totalCommits)
	}
	// Every acknowledged commit is durable in the file.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	records, err := ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	committed := Analyze(records)
	for txn := uint64(1); txn <= totalCommits; txn++ {
		if !committed[txn] {
			t.Fatalf("acknowledged txn %d missing from the durable log", txn)
		}
	}
}

// TestGroupCommitCrashRecoveryProperty tosses a simulated crash into the
// batch leader (the new wal.groupcommit.batch-flush point: batch sealed,
// nothing durable) under real concurrency, then checks the committed-
// prefix property over the bytes that actually reached the file: every
// commit that was ACKNOWLEDGED before the crash replays as committed.
// Committers left waiting on the dead leader's batch are abandoned, like
// the threads of a SIGKILLed process.
func TestGroupCommitCrashRecoveryProperty(t *testing.T) {
	fault.Reset()
	t.Cleanup(fault.Reset)
	path := filepath.Join(t.TempDir(), "wal")
	sink, err := OpenFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLogger(sink, func() { time.Sleep(100 * time.Microsecond) })
	fault.Trip("wal.groupcommit.batch-flush", 5)

	var ackedMu sync.Mutex
	acked := make(map[uint64]bool) // guarded by ackedMu

	const workers = 8
	crashCh := make(chan *fault.Crash, workers)
	crash := fault.RunToCrash(func() {
		for w := 0; w < workers; w++ {
			go func(w int) {
				// A crash point fires in whichever committer leads the
				// doomed batch; that goroutine is the "process death" —
				// report it and vanish. The others block forever on the
				// dead leader's batch, faithfully leaked.
				defer func() {
					if r := recover(); r != nil {
						if c, ok := r.(*fault.Crash); ok {
							crashCh <- c
							return
						}
						panic(r)
					}
				}()
				for i := 0; ; i++ {
					txn := uint64(w*1_000_000 + i + 1)
					if _, err := l.Append(Record{Kind: KindBegin, TxnID: txn}); err != nil {
						return
					}
					if _, err := l.AppendCommit(txn); err != nil {
						return
					}
					ackedMu.Lock()
					acked[txn] = true
					ackedMu.Unlock()
				}
			}(w)
		}
		panic(<-crashCh) // surface the first worker's crash to RunToCrash
	})
	if crash == nil || crash.Point != "wal.groupcommit.batch-flush" {
		t.Fatalf("expected a crash at the batch-flush point, got %+v", crash)
	}

	// The durable bytes are frozen: the doomed batch's leader died with
	// the batch sealed, so no later flush can run.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	records, rerr := ReadAll(bytes.NewReader(data))
	if rerr != nil {
		t.Fatalf("durable log unreadable: %v", rerr)
	}
	committed := Analyze(records)
	ackedMu.Lock()
	defer ackedMu.Unlock()
	if len(acked) == 0 {
		t.Fatal("calibration failure: no commit was acknowledged before the crash")
	}
	for txn := range acked {
		if !committed[txn] {
			t.Fatalf("txn %d was acknowledged before the crash but is not committed in the durable log", txn)
		}
	}
}

// TestGroupCommitToggleOffFlushesPerCommit: the benchmark baseline —
// SetGroupCommit(false) restores one flush per commit.
func TestGroupCommitToggleOffFlushesPerCommit(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, nil)
	l.SetGroupCommit(false)
	if l.GroupCommit() {
		t.Fatal("toggle did not stick")
	}
	for txn := uint64(1); txn <= 5; txn++ {
		l.Append(Record{Kind: KindBegin, TxnID: txn})
		if _, err := l.AppendCommit(txn); err != nil {
			t.Fatal(err)
		}
	}
	if s := l.Syncs(); s != 5 {
		t.Fatalf("syncs = %d, want 5 (one per commit with group commit off)", s)
	}
	if b := l.GroupBatches(); b != 0 {
		t.Fatalf("batches = %d with group commit off, want 0", b)
	}
}
