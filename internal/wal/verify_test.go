package wal

import (
	"bytes"
	"testing"
)

func buildVerifyLog(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	l := NewLogger(&buf, nil)
	for txn := uint64(1); txn <= 2; txn++ {
		if _, err := l.Append(Record{Kind: KindBegin, TxnID: txn}); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append(Record{Kind: KindInsert, TxnID: txn, Key: txn}); err != nil {
			t.Fatal(err)
		}
		if _, err := l.AppendCommit(txn); err != nil {
			t.Fatal(err)
		}
	}
	// A third transaction that never commits (crash cut it off).
	if _, err := l.Append(Record{Kind: KindBegin, TxnID: 3}); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestVerifyCleanLog(t *testing.T) {
	data := buildVerifyLog(t)
	rep := Verify(bytes.NewReader(data))
	if rep.ReadErr != nil {
		t.Fatal(rep.ReadErr)
	}
	if rep.Records != 7 || rep.Commits != 2 {
		t.Fatalf("records=%d commits=%d", rep.Records, rep.Commits)
	}
	if rep.FirstLSN != 1 || rep.LastLSN != 7 {
		t.Fatalf("LSN range [%d,%d]", rep.FirstLSN, rep.LastLSN)
	}
	if rep.LastCommitLSN != 6 {
		t.Fatalf("last commit LSN = %d, want 6", rep.LastCommitLSN)
	}
	if rep.TornBytes != 0 || rep.Reason != "clean-eof" {
		t.Fatalf("torn=%d reason=%s on a clean log", rep.TornBytes, rep.Reason)
	}
	if rep.CleanBytes != int64(len(data)) {
		t.Fatalf("clean bytes %d of %d", rep.CleanBytes, len(data))
	}
	// The trailing begin record sits past the last commit boundary.
	if rep.LastCommitEnd >= rep.CleanBytes {
		t.Fatalf("last commit boundary %d not before clean end %d", rep.LastCommitEnd, rep.CleanBytes)
	}
}

func TestVerifyTornTail(t *testing.T) {
	data := buildVerifyLog(t)
	for _, cut := range []int{len(data) - 1, len(data) - 5, len(data) - 9} {
		rep := Verify(bytes.NewReader(data[:cut]))
		if rep.ReadErr != nil {
			t.Fatal(rep.ReadErr)
		}
		if rep.Reason != "torn-header" && rep.Reason != "torn-payload" {
			t.Fatalf("cut %d: reason %s", cut, rep.Reason)
		}
		if rep.CleanBytes+rep.TornBytes != int64(cut) {
			t.Fatalf("cut %d: clean %d + torn %d != %d", cut, rep.CleanBytes, rep.TornBytes, cut)
		}
		if rep.LastCommitLSN != 6 {
			t.Fatalf("cut %d: last commit %d", cut, rep.LastCommitLSN)
		}
	}
}

func TestVerifyCRCMismatch(t *testing.T) {
	data := buildVerifyLog(t)
	mut := append([]byte(nil), data...)
	mut[len(mut)-2] ^= 0xFF // corrupt the final record's payload
	rep := Verify(bytes.NewReader(mut))
	if rep.Reason != "crc-mismatch" {
		t.Fatalf("reason = %s", rep.Reason)
	}
	if rep.Records != 6 {
		t.Fatalf("records before corruption = %d", rep.Records)
	}
	if rep.CleanBytes+rep.TornBytes != int64(len(mut)) {
		t.Fatalf("clean %d + torn %d != %d", rep.CleanBytes, rep.TornBytes, len(mut))
	}
}

func TestVerifyEmptyAndGarbage(t *testing.T) {
	rep := Verify(bytes.NewReader(nil))
	if rep.Records != 0 || rep.Reason != "clean-eof" {
		t.Fatalf("empty stream: %+v", rep)
	}
	rep = Verify(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3}))
	if rep.Records != 0 || rep.TornBytes != 11 {
		t.Fatalf("garbage stream: %+v", rep)
	}
	if rep.Reason != "bad-length" {
		t.Fatalf("garbage reason = %s", rep.Reason)
	}
}

// TestVerifyAgreesWithReadAll pins the scanner to the replay path: on any
// prefix, the records Verify counts are exactly the records ReadAll
// replays.
func TestVerifyAgreesWithReadAll(t *testing.T) {
	data := buildVerifyLog(t)
	for cut := 0; cut <= len(data); cut++ {
		recs, err := ReadAll(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		rep := Verify(bytes.NewReader(data[:cut]))
		if rep.Records != len(recs) {
			t.Fatalf("cut %d: Verify sees %d records, ReadAll replays %d", cut, rep.Records, len(recs))
		}
	}
}
