package wal

import (
	"encoding/binary"
	"hash/crc32"
	"io"
)

// FrameScan is the result of walking a stream of CRC frames without
// interpreting them: how far the stream verifies and why it stopped.
type FrameScan struct {
	Frames     int   // complete, CRC-verified frames
	CleanBytes int64 // bytes covered by them
	// TornBytes counts trailing bytes past the last verifiable frame — a
	// torn tail (the crash cut) or the start of a corrupt region.
	TornBytes int64
	// Reason classifies why the scan stopped: "clean-eof", "torn-header",
	// "torn-payload", "crc-mismatch", "bad-length", or "payload-rejected"
	// (the caller's callback refused a CRC-clean frame).
	Reason string
	// ReadErr reports a genuine reader failure (a dying device, not a short
	// stream); the counts above cover what was scanned before it.
	ReadErr error
}

// ScanFrames walks r frame by frame, calling fn with each CRC-verified
// payload (the slice is reused — copy to retain). A torn or corrupt tail is
// never an error: it ends the scan with the classification in Reason. If fn
// returns an error the frame and everything after it count as torn
// ("payload-rejected") — a CRC-clean frame whose content is unusable is as
// untrustworthy as a corrupt one.
func ScanFrames(r io.Reader, fn func(payload []byte) error) FrameScan {
	var scan FrameScan
	var hdr [frameHdrSize]byte
	buf := make([]byte, 0, 4096)
	scan.Reason = "clean-eof"
	for {
		n, err := io.ReadFull(r, hdr[:])
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			scan.TornBytes += int64(n)
			scan.Reason = "torn-header"
			break
		}
		if err != nil {
			scan.ReadErr = err
			break
		}
		length := binary.LittleEndian.Uint32(hdr[0:])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if length > 1<<28 {
			scan.TornBytes += frameHdrSize + drain(r)
			scan.Reason = "bad-length"
			break
		}
		if cap(buf) < int(length) {
			buf = make([]byte, length)
		}
		payload := buf[:length]
		pn, err := io.ReadFull(r, payload)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			scan.TornBytes += frameHdrSize + int64(pn)
			scan.Reason = "torn-payload"
			break
		}
		if err != nil {
			scan.ReadErr = err
			break
		}
		if crc32.ChecksumIEEE(payload) != crc {
			scan.TornBytes += frameHdrSize + int64(length) + drain(r)
			scan.Reason = "crc-mismatch"
			break
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				scan.TornBytes += frameHdrSize + int64(length) + drain(r)
				scan.Reason = "payload-rejected"
				break
			}
		}
		scan.Frames++
		scan.CleanBytes += frameHdrSize + int64(length)
	}
	return scan
}

// drain counts the remaining bytes of r (everything past an unverifiable
// frame is untrustworthy; the report sizes it).
func drain(r io.Reader) int64 {
	n, _ := io.Copy(io.Discard, r)
	return n
}

// VerifyReport is the result of an offline log integrity scan: what a
// recovery WOULD see, without performing one. Byte offsets are from the
// start of the scanned stream (for a truncated file sink that is the start
// of the retained suffix, not LSN-0).
type VerifyReport struct {
	FrameScan
	Records  int    // complete, CRC-verified, parseable records (== Frames)
	Commits  int    // commit records among them
	FirstLSN uint64 // LSN of the first record (0 if none)
	LastLSN  uint64 // LSN of the last verifiable record (0 if none)
	// LastCommitLSN / LastCommitEnd locate the last clean commit boundary:
	// recovery of this stream lands exactly there. Bytes past LastCommitEnd
	// belong to transactions no commit record vouches for.
	LastCommitLSN uint64
	LastCommitEnd int64
}

// Verify walks a log stream record by record without applying anything:
// frames are length- and CRC-checked, payloads parsed, offsets tracked. It
// never fails on torn or corrupt tails — those are the finding, reported in
// the VerifyReport. Only genuine read errors surface in ReadErr. A CRC-clean
// frame whose payload does not parse as a record stops the scan with reason
// "payload-rejected".
func Verify(r io.Reader) VerifyReport {
	var rep VerifyReport
	var off int64
	rep.FrameScan = ScanFrames(r, func(payload []byte) error {
		rec, err := parsePayload(payload)
		if err != nil {
			return err
		}
		off += frameHdrSize + int64(len(payload))
		rep.Records++
		if rep.Records == 1 {
			rep.FirstLSN = rec.LSN
		}
		rep.LastLSN = rec.LSN
		if rec.Kind == KindCommit {
			rep.Commits++
			rep.LastCommitLSN = rec.LSN
			rep.LastCommitEnd = off
		}
		return nil
	})
	return rep
}
