package wal

import (
	"encoding/binary"
	"fmt"
)

// TypedVal is a self-describing value for logical logging at the public API
// layer: unlike raw slot values, replaying typed values re-derives string
// dictionary codes deterministically on recovery.
type TypedVal struct {
	Kind uint8 // 0 = null, 1 = int64, 2 = string
	I    int64
	S    string
}

const (
	TVNull   uint8 = 0
	TVInt    uint8 = 1
	TVString uint8 = 2
)

// AppendTypedVals appends a length-prefixed TypedVal sequence to payload
// (the encoding shared by log records and checkpoint row frames).
func AppendTypedVals(payload []byte, tvals []TypedVal) []byte {
	payload = binary.AppendUvarint(payload, uint64(len(tvals)))
	for _, tv := range tvals {
		payload = append(payload, tv.Kind)
		switch tv.Kind {
		case TVInt:
			payload = binary.AppendUvarint(payload, zigzag(tv.I))
		case TVString:
			payload = binary.AppendUvarint(payload, uint64(len(tv.S)))
			payload = append(payload, tv.S...)
		}
	}
	return payload
}

// ParseTypedVals decodes a TypedVal sequence written by AppendTypedVals
// starting at off; it returns the values and the offset past them.
func ParseTypedVals(p []byte, off int) ([]TypedVal, int, error) {
	n, m := binary.Uvarint(p[off:])
	if m <= 0 {
		return nil, 0, fmt.Errorf("wal: truncated typed count")
	}
	off += m
	out := make([]TypedVal, 0, n)
	for i := uint64(0); i < n; i++ {
		if off >= len(p) {
			return nil, 0, fmt.Errorf("wal: truncated typed kind")
		}
		tv := TypedVal{Kind: p[off]}
		off++
		switch tv.Kind {
		case TVNull:
		case TVInt:
			v, m := binary.Uvarint(p[off:])
			if m <= 0 {
				return nil, 0, fmt.Errorf("wal: truncated typed int")
			}
			off += m
			tv.I = unzigzag(v)
		case TVString:
			l, m := binary.Uvarint(p[off:])
			if m <= 0 || off+m+int(l) > len(p) {
				return nil, 0, fmt.Errorf("wal: truncated typed string")
			}
			off += m
			tv.S = string(p[off : off+int(l)])
			off += int(l)
		default:
			return nil, 0, fmt.Errorf("wal: unknown typed kind %d", tv.Kind)
		}
		out = append(out, tv)
	}
	return out, off, nil
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// TxnOps is one committed transaction as reconstructed from the log: its
// operation records in append order plus the LSN of its commit record.
type TxnOps struct {
	TxnID     uint64
	CommitLSN uint64
	Ops       []Record
}

// CommittedTxns groups the operation records of committed transactions,
// ordered by the position of their commit records, skipping transactions
// whose commit LSN is at or below afterLSN (already covered by a checkpoint
// watermark). Within one transaction, operations keep append order.
// Cross-transaction ordering by commit position is correct because a writer
// can only follow another writer on the same record after the first
// committed (write-write conflict detection), so the later writer's commit
// record necessarily appears later in the log. Operations of transactions
// without a commit record — and of aborted ones — are discarded.
func CommittedTxns(records []Record, afterLSN uint64) []TxnOps {
	ops := make(map[uint64][]Record)
	var out []TxnOps
	for i := range records {
		rec := records[i]
		switch rec.Kind {
		case KindInsert, KindUpdate, KindDelete:
			ops[rec.TxnID] = append(ops[rec.TxnID], rec)
		case KindCommit:
			if rec.LSN > afterLSN {
				out = append(out, TxnOps{TxnID: rec.TxnID, CommitLSN: rec.LSN, Ops: ops[rec.TxnID]})
			}
			delete(ops, rec.TxnID)
		case KindAbort:
			delete(ops, rec.TxnID)
		}
	}
	return out
}

// RedoInCommitOrder replays every committed transaction's operations in
// commit order (CommittedTxns with no watermark), streaming them to apply.
func RedoInCommitOrder(records []Record, apply func(Record) error) error {
	for _, txn := range CommittedTxns(records, 0) {
		for _, op := range txn.Ops {
			if err := apply(op); err != nil {
				return fmt.Errorf("wal: redo txn %d LSN %d: %w", txn.TxnID, op.LSN, err)
			}
		}
	}
	return nil
}
