package wal

import (
	"bytes"
	"fmt"
	"io"
	"sync"
)

// TruncatableSink is a log sink that can discard a durable prefix — the
// capability Logger.TruncateTo needs so a checkpoint can bound log growth.
// A file-backed implementation would delete sealed segment files below the
// watermark; BufferSink is the in-memory equivalent.
type TruncatableSink interface {
	io.Writer
	// DropPrefix discards the first n retained bytes. The remaining bytes
	// must stay byte-exact: replay of the sink after a drop yields exactly
	// the records past the dropped prefix.
	DropPrefix(n int64) error
}

// BufferSink is an in-memory, mutex-guarded log sink supporting prefix
// truncation. It is safe for concurrent use (the logger flushes from
// multiple committers) and doubles as the recovery source via Reader.
type BufferSink struct {
	mu  sync.Mutex
	buf []byte // guarded by mu
}

// Write appends p to the retained bytes.
func (b *BufferSink) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf = append(b.buf, p...)
	return len(p), nil
}

// DropPrefix discards the first n retained bytes.
func (b *BufferSink) DropPrefix(n int64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n < 0 || n > int64(len(b.buf)) {
		return fmt.Errorf("wal: DropPrefix(%d) with %d bytes retained", n, len(b.buf))
	}
	b.buf = append(b.buf[:0], b.buf[n:]...)
	return nil
}

// Bytes returns a copy of the retained bytes.
func (b *BufferSink) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf...)
}

// Len returns the number of retained bytes.
func (b *BufferSink) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.buf)
}

// Reader returns a reader over a snapshot of the retained bytes (the log
// tail handed to recovery).
func (b *BufferSink) Reader() io.Reader {
	return bytes.NewReader(b.Bytes())
}
