package wal

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"lstore/internal/fault"
)

func openTestFileSink(t *testing.T) *FileSink {
	t.Helper()
	s, err := OpenFileSink(filepath.Join(t.TempDir(), "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestFileSinkMatchesBufferSink drives the same record stream through a
// FileSink and a BufferSink, with interleaved truncations, and requires
// byte-identical retained state at every step — the file implementation is
// held to the in-memory reference.
func TestFileSinkMatchesBufferSink(t *testing.T) {
	fs := openTestFileSink(t)
	bs := &BufferSink{}
	lf := NewLogger(fs, nil)
	lb := NewLogger(bs, nil)

	check := func(label string) {
		t.Helper()
		fb, err := fs.Bytes()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if !bytes.Equal(fb, bs.Bytes()) {
			t.Fatalf("%s: file sink diverged from buffer sink (%d vs %d bytes)", label, len(fb), bs.Len())
		}
	}

	for i := uint64(1); i <= 20; i++ {
		rec := Record{Kind: KindInsert, TxnID: i, Key: i, Vals: []uint64{i * 3}}
		if _, err := lf.Append(rec); err != nil {
			t.Fatal(err)
		}
		if _, err := lb.Append(rec); err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			if _, err := lf.AppendCommit(i); err != nil {
				t.Fatal(err)
			}
			if _, err := lb.AppendCommit(i); err != nil {
				t.Fatal(err)
			}
			check("after commit")
		}
		if i == 10 {
			if err := lf.TruncateTo(7); err != nil {
				t.Fatal(err)
			}
			if err := lb.TruncateTo(7); err != nil {
				t.Fatal(err)
			}
			check("after truncation")
		}
	}
	// The retained file replays to the same records as the buffer.
	fb, _ := fs.Bytes()
	recs, err := ReadAll(bytes.NewReader(fb))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[0].LSN != 8 {
		t.Fatalf("retained file starts at LSN %d with %d records, want LSN 8", recs[0].LSN, len(recs))
	}
}

// TestFileSinkReopenAfterCrash simulates a kill: write+sync, abandon the
// handle, reopen the path, and require the retained bytes (including a torn
// tail) to replay exactly.
func TestFileSinkReopenAfterCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	s, err := OpenFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLogger(s, nil)
	for i := uint64(1); i <= 3; i++ {
		if _, err := l.Append(Record{Kind: KindInsert, TxnID: 1, Key: i}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	// Tear the tail at the device level: an unsynced half-record.
	if _, err := s.Write([]byte{0xEE, 0xDD, 0xCC}); err != nil {
		t.Fatal(err)
	}
	// Crash: drop the handles, leave a stale truncation temp file behind.
	if err := os.WriteFile(path+tmpSuffix, []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := OpenFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := os.Stat(path + tmpSuffix); !os.IsNotExist(err) {
		t.Fatal("stale truncation temp file survived reopen")
	}
	data, err := s2.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || recs[3].Kind != KindCommit {
		t.Fatalf("reopened log replays %d records", len(recs))
	}
	// The reopened sink appends where the old one left off.
	l2 := NewLogger(s2, nil)
	if _, err := l2.Append(Record{Kind: KindBegin, TxnID: 2}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestFileSinkSyncFailureIsSticky pins the fsyncgate rule at the sink
// level: once Sync fails, every later Write/Sync/DropPrefix fails with the
// poisoning error — the sink never pretends a retried sync proves anything.
func TestFileSinkSyncFailureIsSticky(t *testing.T) {
	s := openTestFileSink(t)
	if _, err := s.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	// Force a real fsync failure: yank the descriptor out from under the
	// sink. (EBADF is not EIO, but the sink must treat any sync failure the
	// same way.)
	s.f.Close()
	if err := s.Sync(); err == nil {
		t.Fatal("sync on closed descriptor succeeded")
	}
	if err := s.Err(); err == nil {
		t.Fatal("sink not poisoned after failed sync")
	}
	if _, err := s.Write([]byte("x")); err == nil {
		t.Fatal("write after failed sync succeeded")
	}
	if err := s.Sync(); err == nil {
		t.Fatal("retried sync after failure succeeded — retry-and-trust")
	}
	if err := s.DropPrefix(1); err == nil {
		t.Fatal("truncation after failed sync succeeded")
	}
}

// TestSyncFailurePoisonsLogger pins the fsyncgate rule at the LOGGER level
// (the acceptance regression): a failed fsync during flush permanently
// poisons the logger — appends, flushes, commits, and truncations all
// refuse — even though the device "heals" afterwards.
func TestSyncFailurePoisonsLogger(t *testing.T) {
	inner := &BufferSink{}
	s := fault.NewSink(inner, fault.FailSync(1))
	l := NewLogger(s, nil)
	if _, err := l.Append(Record{Kind: KindInsert, TxnID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err == nil {
		t.Fatal("flush with failing fsync succeeded")
	}
	// The device heals (the fault was one-shot) — the logger must not care.
	if _, err := l.Append(Record{Kind: KindInsert, TxnID: 2}); err == nil {
		t.Fatal("append after failed fsync succeeded")
	}
	if err := l.Flush(); err == nil {
		t.Fatal("retried flush after failed fsync succeeded — retry-and-trust")
	}
	if _, err := l.AppendCommit(2); err == nil {
		t.Fatal("commit after failed fsync succeeded")
	}
	if err := l.TruncateTo(1); err == nil {
		t.Fatal("truncation after failed fsync succeeded")
	}
	if l.Err() == nil {
		t.Fatal("Err() nil after fsync poisoning")
	}
	if l.FlushedLSN() != 0 {
		t.Fatalf("FlushedLSN = %d after failed sync; nothing was proven durable", l.FlushedLSN())
	}
}

// TestShortWriteSinkPoisonsLogger pins the defensive short-write check: a
// sink that returns n < len(p) with a nil error (misbehaving io.Writer) is
// treated as a torn write — the flush fails and the logger poisons itself
// instead of silently corrupting its offset bookkeeping.
func TestShortWriteSinkPoisonsLogger(t *testing.T) {
	inner := &BufferSink{}
	s := fault.NewSink(inner, fault.ShortWrite(1, 5))
	l := NewLogger(s, nil)
	if _, err := l.Append(Record{Kind: KindInsert, TxnID: 1, Vals: []uint64{7}}); err != nil {
		t.Fatal(err) // buffered; the lie happens at flush
	}
	if err := l.Flush(); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("flush over short-writing sink = %v, want io.ErrShortWrite", err)
	}
	if _, err := l.Append(Record{Kind: KindInsert, TxnID: 2}); err == nil {
		t.Fatal("append after short write succeeded")
	}
	if l.Err() == nil {
		t.Fatal("logger not poisoned by short write")
	}
}

// TestWriteFrameShortWrite pins the same check on the direct frame path
// (checkpoint images write frames straight to caller-provided writers).
func TestWriteFrameShortWrite(t *testing.T) {
	inner := &BufferSink{}
	s := fault.NewSink(inner, fault.ShortWrite(2, 1)) // tear the payload write
	err := WriteFrame(s, []byte("payload"))
	if err == nil {
		t.Fatal("WriteFrame over short-writing sink succeeded")
	}
}
