package wal

import (
	"bytes"
	"testing"

	"lstore/internal/fault"
)

// Satellite coverage: BufferSink.DropPrefix / Logger.TruncateTo edge cases.

func TestDropPrefixBounds(t *testing.T) {
	b := &BufferSink{}
	if _, err := b.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if err := b.DropPrefix(-1); err == nil {
		t.Fatal("negative drop succeeded")
	}
	if err := b.DropPrefix(11); err == nil {
		t.Fatal("drop beyond retained bytes succeeded")
	}
	if err := b.DropPrefix(10); err != nil { // drop everything: exact boundary
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("len after full drop = %d", b.Len())
	}
	if err := b.DropPrefix(0); err != nil { // zero drop on empty sink
		t.Fatal(err)
	}
}

func TestTruncateToExactBoundaryAndBeyond(t *testing.T) {
	sink := &BufferSink{}
	l := NewLogger(sink, nil)
	for i := uint64(1); i <= 5; i++ {
		if _, err := l.Append(Record{Kind: KindInsert, TxnID: i}); err != nil {
			t.Fatal(err)
		}
	}
	// Truncate at the exact last-appended LSN: drops everything.
	if err := l.TruncateTo(5); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 0 {
		t.Fatalf("retained %d bytes after truncating at the flushed boundary", sink.Len())
	}
	if l.TruncatedLSN() != 5 {
		t.Fatalf("TruncatedLSN = %d", l.TruncatedLSN())
	}
	// Truncate BEYOND the flushed LSN: nothing is retained at or below 99,
	// so it is a no-op — it must not invent offsets or fail.
	if err := l.TruncateTo(99); err != nil {
		t.Fatal(err)
	}
	if l.TruncatedLSN() != 5 {
		t.Fatalf("truncation beyond flushed LSN moved the mark to %d", l.TruncatedLSN())
	}
	// New appends after a full truncation keep working and truncate again.
	if _, err := l.Append(Record{Kind: KindCommit, TxnID: 6}); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateTo(6); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 0 || l.TruncatedLSN() != 6 {
		t.Fatalf("second full truncation: %d bytes, mark %d", sink.Len(), l.TruncatedLSN())
	}
}

func TestDoubleTruncationIsIdempotent(t *testing.T) {
	sink := &BufferSink{}
	l := NewLogger(sink, nil)
	for i := uint64(1); i <= 8; i++ {
		if _, err := l.Append(Record{Kind: KindInsert, TxnID: i, Key: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.TruncateTo(4); err != nil {
		t.Fatal(err)
	}
	want := sink.Bytes()
	// The same truncation again must not move a single byte.
	if err := l.TruncateTo(4); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sink.Bytes(), want) {
		t.Fatal("repeated truncation changed the retained bytes")
	}
	recs, err := ReadAll(sink.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || recs[0].LSN != 5 {
		t.Fatalf("retained %d records from LSN %d", len(recs), recs[0].LSN)
	}
}

// TestTruncateOnPoisonedLogger pins the interleaving: once the logger is
// poisoned, TruncateTo must refuse (its internal flush fails) and must not
// touch the sink — truncating around a torn prefix could discard the very
// bytes that still replay cleanly.
func TestTruncateOnPoisonedLogger(t *testing.T) {
	inner := &BufferSink{}
	s := fault.NewSink(inner, fault.FailWrite(2))
	l := NewLogger(s, nil)
	for i := uint64(1); i <= 3; i++ {
		if _, err := l.Append(Record{Kind: KindInsert, TxnID: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil { // write 1: durable prefix
		t.Fatal(err)
	}
	durable := inner.Bytes()
	if _, err := l.Append(Record{Kind: KindInsert, TxnID: 4}); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err == nil { // write 2 fails: poisoned
		t.Fatal("flush on failing sink succeeded")
	}
	if err := l.TruncateTo(2); err == nil {
		t.Fatal("truncation on poisoned logger succeeded")
	}
	if !bytes.Equal(inner.Bytes(), durable) {
		t.Fatal("poisoned truncation modified the durable bytes")
	}
}
