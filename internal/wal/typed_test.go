package wal

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestTypedValsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, nil)
	rec := Record{
		Kind: KindInsert, TxnID: 3, Table: 9,
		TVals: []TypedVal{
			{Kind: TVInt, I: -42},
			{Kind: TVNull},
			{Kind: TVString, S: "hello, wörld"},
			{Kind: TVInt, I: 1 << 40},
		},
	}
	if _, err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	l.Flush()
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil || len(got) != 1 {
		t.Fatalf("read: %v, %d records", err, len(got))
	}
	r := got[0]
	if r.Table != 9 || len(r.TVals) != 4 {
		t.Fatalf("record = %+v", r)
	}
	if r.TVals[0].I != -42 || r.TVals[1].Kind != TVNull ||
		r.TVals[2].S != "hello, wörld" || r.TVals[3].I != 1<<40 {
		t.Fatalf("tvals = %+v", r.TVals)
	}
}

func TestTypedValsProperty(t *testing.T) {
	f := func(ints []int64, strs []string) bool {
		var tvals []TypedVal
		for _, v := range ints {
			tvals = append(tvals, TypedVal{Kind: TVInt, I: v})
		}
		for _, s := range strs {
			tvals = append(tvals, TypedVal{Kind: TVString, S: s})
		}
		tvals = append(tvals, TypedVal{Kind: TVNull})
		payload := AppendTypedVals(nil, tvals)
		got, off, err := ParseTypedVals(payload, 0)
		if err != nil || off != len(payload) || len(got) != len(tvals) {
			return false
		}
		for i := range tvals {
			if got[i] != tvals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRedoInCommitOrder(t *testing.T) {
	// Txn 1 writes key 5 and commits; txn 2 then overwrites key 5 and
	// commits later. Even if txn 2's operation record appears in the log
	// before txn 1's commit (interleaved appends), commit order rules.
	records := []Record{
		{LSN: 1, Kind: KindBegin, TxnID: 1},
		{LSN: 2, Kind: KindBegin, TxnID: 2},
		{LSN: 3, Kind: KindUpdate, TxnID: 1, Key: 5, Vals: []uint64{100}},
		{LSN: 4, Kind: KindCommit, TxnID: 1},
		{LSN: 5, Kind: KindUpdate, TxnID: 2, Key: 5, Vals: []uint64{200}},
		{LSN: 6, Kind: KindCommit, TxnID: 2},
		// Txn 3 never commits.
		{LSN: 7, Kind: KindUpdate, TxnID: 3, Key: 5, Vals: []uint64{300}},
		// Txn 4 aborts explicitly.
		{LSN: 8, Kind: KindUpdate, TxnID: 4, Key: 6, Vals: []uint64{400}},
		{LSN: 9, Kind: KindAbort, TxnID: 4},
	}
	state := map[uint64]uint64{}
	if err := RedoInCommitOrder(records, func(r Record) error {
		state[r.Key] = r.Vals[0]
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if state[5] != 200 {
		t.Fatalf("key 5 = %d, want 200 (commit order)", state[5])
	}
	if _, ok := state[6]; ok {
		t.Fatal("aborted txn's op replayed")
	}
	if len(state) != 1 {
		t.Fatalf("state = %v", state)
	}
}

func TestRedoInCommitOrderInterleavedOps(t *testing.T) {
	// Ops of a later-committing txn interleave before an earlier commit:
	// per-transaction grouping must keep txn A's op effect before txn B's.
	records := []Record{
		{LSN: 1, Kind: KindUpdate, TxnID: 2, Key: 1, Vals: []uint64{20}},
		{LSN: 2, Kind: KindUpdate, TxnID: 1, Key: 1, Vals: []uint64{10}},
		{LSN: 3, Kind: KindCommit, TxnID: 1},
		{LSN: 4, Kind: KindCommit, TxnID: 2},
	}
	var order []uint64
	if err := RedoInCommitOrder(records, func(r Record) error {
		order = append(order, r.Vals[0])
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 10 || order[1] != 20 {
		t.Fatalf("replay order = %v, want [10 20]", order)
	}
}
