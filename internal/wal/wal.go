// Package wal implements L-Store's logging and recovery support (§5.1.3):
//
//   - a redo-only, append-only log. Base pages are read-only and tail pages
//     append-only and write-once, so no undo logging exists anywhere: an
//     aborted transaction's tail records simply become tombstones. The log
//     carries logical operations (insert/update/delete) plus transaction
//     begin/commit/abort markers.
//
//   - group commit: records accumulate in a buffer; Flush makes everything
//     up to the returned LSN durable. Committing transactions flush at the
//     commit record, amortizing syncs across concurrent committers.
//
//   - recovery: a two-pass reader (analysis: find committed transactions;
//     redo: replay their operations in log order). Operations of
//     transactions without a commit record are discarded — exactly the
//     "mark as tombstone, space reclaimed later" rule of the paper.
//
// The Ownership-Relaying (OR) pageLSN protocol of §5.2 lives in or.go.
package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// Kind tags a log record.
type Kind uint8

const (
	KindBegin Kind = iota + 1
	KindInsert
	KindUpdate
	KindDelete
	KindCommit
	KindAbort
	// KindMerge is operational logging only: the merge is idempotent
	// (§5.1.3), so recovery ignores it; it exists for observability and to
	// bound replay work in a full implementation.
	KindMerge
)

func (k Kind) String() string {
	switch k {
	case KindBegin:
		return "begin"
	case KindInsert:
		return "insert"
	case KindUpdate:
		return "update"
	case KindDelete:
		return "delete"
	case KindCommit:
		return "commit"
	case KindAbort:
		return "abort"
	case KindMerge:
		return "merge"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record is one logical redo record. Low-level callers use slot-encoded
// Vals; the public API layer uses self-describing TVals so string
// dictionaries rebuild deterministically on replay.
type Record struct {
	LSN   uint64
	Kind  Kind
	TxnID uint64
	Table uint64     // table identifier (public layer)
	Key   uint64     // update/delete: primary key slot
	Cols  []uint32   // update: column indexes; insert: all columns implied
	Vals  []uint64   // insert: one per schema column; update: one per Cols
	TVals []TypedVal // typed payload (public layer)
}

// Logger is the append-only redo log with group commit.
type Logger struct {
	mu       sync.Mutex
	w        *bufio.Writer
	sink     io.Writer
	nextLSN  uint64
	flushed  uint64 // highest LSN guaranteed durable
	synced   func() // optional fsync hook
	syncs    int
	appended int
}

// NewLogger wraps sink (a file or buffer). syncFn, if non-nil, is invoked on
// every flush (an fsync stand-in that tests count).
func NewLogger(sink io.Writer, syncFn func()) *Logger {
	return &Logger{w: bufio.NewWriterSize(sink, 1<<16), sink: sink, nextLSN: 1, synced: syncFn}
}

// Append buffers rec and returns its LSN. It never blocks on I/O beyond the
// in-memory buffer (durability comes from Flush).
func (l *Logger) Append(rec Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec.LSN = l.nextLSN
	l.nextLSN++
	if err := writeRecord(l.w, &rec); err != nil {
		return 0, err
	}
	l.appended++
	return rec.LSN, nil
}

// AppendCommit appends a commit record and flushes — the group-commit
// point: every record buffered before it (from any transaction) becomes
// durable together.
func (l *Logger) AppendCommit(txnID uint64) (uint64, error) {
	lsn, err := l.Append(Record{Kind: KindCommit, TxnID: txnID})
	if err != nil {
		return 0, err
	}
	return lsn, l.Flush()
}

// Flush makes all appended records durable.
func (l *Logger) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return err
	}
	if l.synced != nil {
		l.synced()
	}
	l.syncs++
	l.flushed = l.nextLSN - 1
	return nil
}

// FlushedLSN returns the highest durable LSN.
func (l *Logger) FlushedLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushed
}

// Syncs returns how many flushes have run (group-commit effectiveness).
func (l *Logger) Syncs() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncs
}

// Appended returns the number of records appended.
func (l *Logger) Appended() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// ---------------------------------------------------------------------------
// Binary format: len u32 | crc u32 | payload. Payload: lsn, kind, txnid,
// key, cols, vals (varints). A torn tail (partial final record) terminates
// replay cleanly.

func writeRecord(w io.Writer, rec *Record) error {
	var payload []byte
	payload = binary.AppendUvarint(payload, rec.LSN)
	payload = append(payload, byte(rec.Kind))
	payload = binary.AppendUvarint(payload, rec.TxnID)
	payload = binary.AppendUvarint(payload, rec.Table)
	payload = binary.AppendUvarint(payload, rec.Key)
	payload = binary.AppendUvarint(payload, uint64(len(rec.Cols)))
	for _, c := range rec.Cols {
		payload = binary.AppendUvarint(payload, uint64(c))
	}
	payload = binary.AppendUvarint(payload, uint64(len(rec.Vals)))
	for _, v := range rec.Vals {
		payload = binary.AppendUvarint(payload, v)
	}
	payload = appendTypedVals(payload, rec.TVals)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadAll parses records from r until EOF or a torn/corrupt tail, which ends
// the stream without error (standard recovery semantics). A corrupt record
// in the middle still just ends the stream — everything after an
// unverifiable record is untrustworthy.
func ReadAll(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	var out []Record
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return out, nil
			}
			return out, err
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if n > 1<<24 {
			return out, nil // implausible length: torn tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return out, nil // torn tail
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return out, nil // corrupt tail
		}
		rec, err := parsePayload(payload)
		if err != nil {
			return out, nil
		}
		out = append(out, rec)
	}
}

func parsePayload(p []byte) (Record, error) {
	var rec Record
	var off int
	read := func() (uint64, error) {
		v, n := binary.Uvarint(p[off:])
		if n <= 0 {
			return 0, fmt.Errorf("wal: truncated varint")
		}
		off += n
		return v, nil
	}
	lsn, err := read()
	if err != nil {
		return rec, err
	}
	rec.LSN = lsn
	if off >= len(p) {
		return rec, fmt.Errorf("wal: missing kind")
	}
	rec.Kind = Kind(p[off])
	off++
	if rec.TxnID, err = read(); err != nil {
		return rec, err
	}
	if rec.Table, err = read(); err != nil {
		return rec, err
	}
	if rec.Key, err = read(); err != nil {
		return rec, err
	}
	nc, err := read()
	if err != nil {
		return rec, err
	}
	for i := uint64(0); i < nc; i++ {
		c, err := read()
		if err != nil {
			return rec, err
		}
		rec.Cols = append(rec.Cols, uint32(c))
	}
	nv, err := read()
	if err != nil {
		return rec, err
	}
	for i := uint64(0); i < nv; i++ {
		v, err := read()
		if err != nil {
			return rec, err
		}
		rec.Vals = append(rec.Vals, v)
	}
	tvals, noff, err := parseTypedVals(p, off)
	if err != nil {
		return rec, err
	}
	off = noff
	rec.TVals = tvals
	return rec, nil
}

// ---------------------------------------------------------------------------
// Recovery

// Analyze returns the set of transaction IDs with a durable commit record.
func Analyze(records []Record) map[uint64]bool {
	committed := make(map[uint64]bool)
	for i := range records {
		if records[i].Kind == KindCommit {
			committed[records[i].TxnID] = true
		}
	}
	return committed
}

// Redo streams the operations of committed transactions, in log order, to
// apply. Records of uncommitted or aborted transactions are skipped
// (append-only storage means they need no undo — they were never visible).
func Redo(records []Record, apply func(Record) error) error {
	committed := Analyze(records)
	for i := range records {
		rec := &records[i]
		switch rec.Kind {
		case KindInsert, KindUpdate, KindDelete:
			if committed[rec.TxnID] {
				if err := apply(*rec); err != nil {
					return fmt.Errorf("wal: redo LSN %d: %w", rec.LSN, err)
				}
			}
		}
	}
	return nil
}
