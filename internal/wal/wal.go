// Package wal implements L-Store's logging and recovery support (§5.1.3):
//
//   - a redo-only, append-only log. Base pages are read-only and tail pages
//     append-only and write-once, so no undo logging exists anywhere: an
//     aborted transaction's tail records simply become tombstones. The log
//     carries logical operations (insert/update/delete) plus transaction
//     begin/commit/abort markers.
//
//   - group commit: records accumulate in a buffer; Flush makes everything
//     up to the returned LSN durable. Committing transactions flush at the
//     commit record, amortizing syncs across concurrent committers.
//
//   - recovery: a two-pass reader (analysis: find committed transactions;
//     redo: replay their operations in log order). Operations of
//     transactions without a commit record are discarded — exactly the
//     "mark as tombstone, space reclaimed later" rule of the paper.
//     CommittedTxns additionally takes a checkpoint watermark: transactions
//     whose commit record has LSN at or below the watermark are already
//     reflected in the checkpoint image and are skipped, so restart cost is
//     bounded by checkpoint size plus log tail, not total history.
//
//   - torn-write poisoning: a write failure partway through a record leaves
//     a torn prefix in the buffer that would silently truncate every later
//     record on replay (replay stops at the first unverifiable frame). The
//     logger therefore goes sticky-failed on the first write or flush error:
//     every subsequent Append/Flush returns the poisoning error instead of
//     quietly logging records that can never be replayed.
//
//   - truncation: TruncateTo drops the durable prefix up to a checkpoint
//     watermark when the sink supports prefix disposal (TruncatableSink;
//     BufferSink is the in-memory implementation, a stand-in for deleting
//     sealed segment files). Callers must not truncate past the begin LSN of
//     any transaction that could still commit — the database layer computes
//     that safe point from its active-transaction table.
//
// The Ownership-Relaying (OR) pageLSN protocol of §5.2 lives in or.go.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"lstore/internal/fault"
)

// Crash points on the append/flush/truncate paths: no-ops in production,
// tripped by the crash-torture tests to simulate a process kill at exactly
// these boundaries (see internal/fault).
var (
	cpAppendPreWrite   = fault.Register("wal.append.pre-write")
	cpAppendPostWrite  = fault.Register("wal.append.post-write")
	cpAppendPreFlush   = fault.Register("wal.append.pre-flush")
	cpFlushPreSync     = fault.Register("wal.flush.pre-sync")
	cpFlushPostSync    = fault.Register("wal.flush.post-sync")
	cpTruncatePreDrop  = fault.Register("wal.truncate.pre-drop")
	cpTruncatePostDrop = fault.Register("wal.truncate.post-drop")
)

// Kind tags a log record.
type Kind uint8

const (
	KindBegin Kind = iota + 1
	KindInsert
	KindUpdate
	KindDelete
	KindCommit
	KindAbort
	// KindMerge is operational logging only: the merge is idempotent
	// (§5.1.3), so recovery ignores it; it exists for observability and to
	// bound replay work in a full implementation.
	KindMerge
)

func (k Kind) String() string {
	switch k {
	case KindBegin:
		return "begin"
	case KindInsert:
		return "insert"
	case KindUpdate:
		return "update"
	case KindDelete:
		return "delete"
	case KindCommit:
		return "commit"
	case KindAbort:
		return "abort"
	case KindMerge:
		return "merge"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record is one logical redo record. Low-level callers use slot-encoded
// Vals; the public API layer uses self-describing TVals so string
// dictionaries rebuild deterministically on replay.
type Record struct {
	LSN   uint64
	Kind  Kind
	TxnID uint64
	Table uint64     // table identifier (public layer)
	Key   uint64     // update/delete: primary key slot
	Cols  []uint32   // update: column indexes; insert: all columns implied
	Vals  []uint64   // insert: one per schema column; update: one per Cols
	TVals []TypedVal // typed payload (public layer)
}

// ErrNotTruncatable is returned by TruncateTo when the sink cannot discard
// a durable prefix (it does not implement TruncatableSink).
var ErrNotTruncatable = fmt.Errorf("wal: sink does not support truncation")

// lsnOffset records the cumulative byte offset at which one record ends,
// letting TruncateTo translate an LSN watermark into a sink byte count.
type lsnOffset struct {
	lsn uint64
	end int64
}

// Syncer is a sink with a real fsync: Sync must not return until every
// previously written byte is durable on the device. FileSink implements it
// with os.File.Sync; an in-memory BufferSink needs none (its writes are
// "durable" the moment they land).
type Syncer interface{ Sync() error }

// Logger is the append-only redo log with group commit.
type Logger struct {
	mu       sync.Mutex
	w        *bufio.Writer // guarded by mu
	sink     io.Writer     // immutable after NewLogger
	syncer   Syncer        // immutable after NewLogger; sink's fsync, if any
	nextLSN  uint64        // guarded by mu
	flushed  uint64        // guarded by mu; highest LSN guaranteed durable
	synced   func()        // immutable after NewLogger; optional fsync hook
	syncs    int           // guarded by mu
	appended int           // guarded by mu

	// err is the sticky poisoning error: once a record write or flush fails,
	// the buffer (or the sink) may hold a torn record prefix that would
	// silently end replay, so every later Append/Flush fails with this error
	// instead of appending records durability can never cover.
	// guarded by mu
	err error

	// Truncation bookkeeping (tracked only when the sink supports it).
	trackOffsets bool        // immutable after NewLogger
	written      int64       // guarded by mu; total bytes handed to the buffered writer
	dropped      int64       // guarded by mu; bytes already discarded from the sink's front
	offsets      []lsnOffset // guarded by mu; end offsets of retained records, ascending
	truncated    uint64      // guarded by mu; highest LSN discarded by TruncateTo

	// Group-commit committer state (committer.go). gcMu is ordered BEFORE mu:
	// the leader coordinates through gcMu and reads flush state (which takes
	// mu) while holding it; mu is never held while acquiring gcMu.
	group      bool       // immutable after NewLogger/SetGroupCommit (set before concurrent use)
	gcMu       sync.Mutex // committer coordination lock
	gcWake     *sync.Cond // on gcMu; signaled when a leader's flush completes
	gcFlushing bool       // guarded by gcMu; a batch leader's flush is in flight
	gcBatches  int        // guarded by gcMu; commit batches flushed by a leader
}

// NewLogger wraps sink (a file or buffer). syncFn, if non-nil, is invoked
// after every successful flush+sync (an fsync observer that tests count).
// A sink implementing Syncer gets a real fsync on every flush, with the
// fsyncgate rule: a failed Sync poisons the logger permanently (see
// flushLocked). The sink is additionally guarded against short writes — an
// io.Writer returning n < len(p) with a nil error would silently corrupt
// the LSN/offset bookkeeping, so the guard converts the lie into
// io.ErrShortWrite and the logger poisons itself like any torn write.
func NewLogger(sink io.Writer, syncFn func()) *Logger {
	_, truncatable := sink.(TruncatableSink)
	syncer, _ := sink.(Syncer)
	l := &Logger{
		w:            bufio.NewWriterSize(shortWriteGuard{sink}, 1<<16),
		sink:         sink,
		syncer:       syncer,
		nextLSN:      1,
		synced:       syncFn,
		trackOffsets: truncatable,
		group:        true,
	}
	l.gcWake = sync.NewCond(&l.gcMu)
	return l
}

// shortWriteGuard enforces the io.Writer contract on the sink: n < len(p)
// with a nil error is treated as a torn write (io.ErrShortWrite), never
// silently retried or absorbed into the buffered writer's accounting.
type shortWriteGuard struct{ w io.Writer }

func (g shortWriteGuard) Write(p []byte) (int, error) {
	n, err := g.w.Write(p)
	if err == nil && n < len(p) {
		return n, io.ErrShortWrite
	}
	return n, err
}

// Append buffers rec and returns its LSN. It never blocks on I/O beyond the
// in-memory buffer (durability comes from Flush). A write failure poisons
// the logger: the buffer may hold a torn prefix of the record, so every
// subsequent Append/Flush returns the sticky error.
func (l *Logger) Append(rec Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	rec.LSN = l.nextLSN
	l.nextLSN++
	cpAppendPreWrite.Hit()
	n, err := writeRecord(l.w, &rec)
	if err != nil {
		l.poison(fmt.Errorf("append of LSN %d failed mid-record: %w", rec.LSN, err))
		return 0, err
	}
	l.written += int64(n)
	if l.trackOffsets {
		l.offsets = append(l.offsets, lsnOffset{lsn: rec.LSN, end: l.written})
	}
	l.appended++
	cpAppendPostWrite.Hit()
	return rec.LSN, nil
}

// AppendCommit appends a commit record and makes it durable — the
// group-commit point: every record buffered before it (from any
// transaction) becomes durable together. With group commit on (the
// default), concurrent callers batch onto one leader's flush (committer.go:
// one fsync vouches for the whole batch, a failed flush fails every waiter
// in it); with it off, each call runs its own flush.
func (l *Logger) AppendCommit(txnID uint64) (uint64, error) {
	lsn, err := l.Append(Record{Kind: KindCommit, TxnID: txnID})
	if err != nil {
		return 0, err
	}
	cpAppendPreFlush.Hit() // the commit record is buffered but not yet durable
	if l.group {
		return lsn, l.commitWait(lsn)
	}
	return lsn, l.Flush()
}

// Flush makes all appended records durable.
func (l *Logger) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

// flushLocked pushes the buffer to the sink and, when the sink has a real
// fsync, syncs it. A failed sync poisons the logger PERMANENTLY — the
// fsyncgate rule: after fsync reports an error, the kernel may have
// discarded the dirty pages while a retry would succeed trivially and
// "vouch" for bytes that never reached the device. Never retry-and-trust;
// the only honest continuation is a new log.
//
// locked: l.mu
func (l *Logger) flushLocked() error {
	if l.err != nil {
		return l.err
	}
	if err := l.w.Flush(); err != nil {
		l.poison(fmt.Errorf("flush failed: %w", err))
		return err
	}
	if l.syncer != nil {
		cpFlushPreSync.Hit() // bytes at the device, not yet synced
		if err := l.syncer.Sync(); err != nil {
			l.poison(fmt.Errorf("fsync failed (never retry-and-trust a failed sync): %w", err))
			return err
		}
		cpFlushPostSync.Hit()
	}
	if l.synced != nil {
		l.synced()
	}
	l.syncs++
	l.flushed = l.nextLSN - 1
	return nil
}

// poison records the first write failure.
//
// locked: l.mu
func (l *Logger) poison(cause error) {
	if l.err == nil {
		l.err = fmt.Errorf("wal: log poisoned by earlier write failure (%v); later records could silently truncate on replay", cause)
	}
}

// Err returns the sticky poisoning error, or nil while the log is healthy.
func (l *Logger) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// TruncateTo flushes and then discards every durable record with LSN at or
// below lsn. The sink must implement TruncatableSink (ErrNotTruncatable
// otherwise). Truncating at a checkpoint watermark is only safe above the
// begin LSN of every transaction that could still commit; the database layer
// owns that bound. Records above lsn are retained byte-exactly.
func (l *Logger) TruncateTo(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	ts, ok := l.sink.(TruncatableSink)
	if !ok {
		return ErrNotTruncatable
	}
	if err := l.flushLocked(); err != nil {
		return err
	}
	// Find the end offset of the newest retained record at or below lsn.
	idx := -1
	for i, o := range l.offsets {
		if o.lsn > lsn {
			break
		}
		idx = i
	}
	if idx < 0 {
		return nil // nothing at or below lsn retained (already truncated)
	}
	cut := l.offsets[idx]
	cpTruncatePreDrop.Hit()
	if err := ts.DropPrefix(cut.end - l.dropped); err != nil {
		return err
	}
	cpTruncatePostDrop.Hit()
	l.dropped = cut.end
	l.truncated = cut.lsn
	l.offsets = append(l.offsets[:0], l.offsets[idx+1:]...)
	return nil
}

// Truncatable reports whether the sink supports prefix truncation (the
// logger only pays for offset tracking when it does).
func (l *Logger) Truncatable() bool { return l.trackOffsets }

// TruncatedLSN returns the highest LSN discarded by TruncateTo (0 = none).
func (l *Logger) TruncatedLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.truncated
}

// FlushedLSN returns the highest durable LSN.
func (l *Logger) FlushedLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushed
}

// Gauges is one consistent reading of the logger's mu-guarded counters.
// The single-acquisition snapshot matters for derived gauges: computing
// LastLSN-FlushedLSN from two separate reads lets a flush land in between,
// making FlushedLSN exceed the already-read LastLSN and the unsigned
// subtraction underflow.
type Gauges struct {
	Appended     int
	LastLSN      uint64
	FlushedLSN   uint64
	TruncatedLSN uint64
	Syncs        int
	Err          error
}

// Gauges snapshots every mu-guarded counter under one lock acquisition, so
// derived values (flush lag) are computed from a consistent pair.
func (l *Logger) Gauges() Gauges {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Gauges{
		Appended:     l.appended,
		LastLSN:      l.nextLSN - 1,
		FlushedLSN:   l.flushed,
		TruncatedLSN: l.truncated,
		Syncs:        l.syncs,
		Err:          l.err,
	}
}

// LastLSN returns the highest LSN handed out by Append. LastLSN minus
// FlushedLSN is the flush lag — records buffered but not yet durable, the
// WAL-side backpressure gauge a serving layer sheds load on.
func (l *Logger) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Syncs returns how many flushes have run (group-commit effectiveness).
func (l *Logger) Syncs() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncs
}

// Appended returns the number of records appended.
func (l *Logger) Appended() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// ---------------------------------------------------------------------------
// Binary format: one CRC frame per record (frame.go). Payload: lsn, kind,
// txnid, key, cols, vals (varints). A torn tail (partial final record)
// terminates replay cleanly.

func writeRecord(w io.Writer, rec *Record) (int, error) {
	var payload []byte
	payload = binary.AppendUvarint(payload, rec.LSN)
	payload = append(payload, byte(rec.Kind))
	payload = binary.AppendUvarint(payload, rec.TxnID)
	payload = binary.AppendUvarint(payload, rec.Table)
	payload = binary.AppendUvarint(payload, rec.Key)
	payload = binary.AppendUvarint(payload, uint64(len(rec.Cols)))
	for _, c := range rec.Cols {
		payload = binary.AppendUvarint(payload, uint64(c))
	}
	payload = binary.AppendUvarint(payload, uint64(len(rec.Vals)))
	for _, v := range rec.Vals {
		payload = binary.AppendUvarint(payload, v)
	}
	payload = AppendTypedVals(payload, rec.TVals)
	if err := WriteFrame(w, payload); err != nil {
		return 0, err
	}
	return frameHdrSize + len(payload), nil
}

// ReadAll parses records from r until EOF or a torn/corrupt tail, which ends
// the stream without error (standard recovery semantics). A corrupt record
// in the middle still just ends the stream — everything after an
// unverifiable record is untrustworthy. Genuine reader failures (a dying
// device, not a short stream) are returned.
func ReadAll(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	var out []Record
	for {
		payload, err := ReadFrame(br)
		switch {
		case err == io.EOF:
			return out, nil
		case errors.Is(err, ErrTornFrame):
			return out, nil // torn or corrupt tail: the crash cut
		case err != nil:
			return out, err
		}
		rec, perr := parsePayload(payload)
		if perr != nil {
			return out, nil
		}
		out = append(out, rec)
	}
}

func parsePayload(p []byte) (Record, error) {
	var rec Record
	var off int
	read := func() (uint64, error) {
		v, n := binary.Uvarint(p[off:])
		if n <= 0 {
			return 0, fmt.Errorf("wal: truncated varint")
		}
		off += n
		return v, nil
	}
	lsn, err := read()
	if err != nil {
		return rec, err
	}
	rec.LSN = lsn
	if off >= len(p) {
		return rec, fmt.Errorf("wal: missing kind")
	}
	rec.Kind = Kind(p[off])
	off++
	if rec.TxnID, err = read(); err != nil {
		return rec, err
	}
	if rec.Table, err = read(); err != nil {
		return rec, err
	}
	if rec.Key, err = read(); err != nil {
		return rec, err
	}
	nc, err := read()
	if err != nil {
		return rec, err
	}
	for i := uint64(0); i < nc; i++ {
		c, err := read()
		if err != nil {
			return rec, err
		}
		rec.Cols = append(rec.Cols, uint32(c))
	}
	nv, err := read()
	if err != nil {
		return rec, err
	}
	for i := uint64(0); i < nv; i++ {
		v, err := read()
		if err != nil {
			return rec, err
		}
		rec.Vals = append(rec.Vals, v)
	}
	tvals, noff, err := ParseTypedVals(p, off)
	if err != nil {
		return rec, err
	}
	off = noff
	rec.TVals = tvals
	return rec, nil
}

// ---------------------------------------------------------------------------
// Recovery

// Analyze returns the set of transaction IDs with a durable commit record.
func Analyze(records []Record) map[uint64]bool {
	committed := make(map[uint64]bool)
	for i := range records {
		if records[i].Kind == KindCommit {
			committed[records[i].TxnID] = true
		}
	}
	return committed
}

// Redo streams the operations of committed transactions, in log order, to
// apply. Records of uncommitted or aborted transactions are skipped
// (append-only storage means they need no undo — they were never visible).
func Redo(records []Record, apply func(Record) error) error {
	committed := Analyze(records)
	for i := range records {
		rec := &records[i]
		switch rec.Kind {
		case KindInsert, KindUpdate, KindDelete:
			if committed[rec.TxnID] {
				if err := apply(*rec); err != nil {
					return fmt.Errorf("wal: redo LSN %d: %w", rec.LSN, err)
				}
			}
		}
	}
	return nil
}
