package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// FileSink is the os.File-backed log sink: real writes, a real fsync, and
// prefix truncation on disk. It implements TruncatableSink and Syncer, so a
// Logger over a FileSink gets durable group commit (every Flush fsyncs) and
// TruncateWAL works against the actual file.
//
// Durability semantics, precisely:
//
//   - Sync is os.File.Sync. A FAILED sync poisons the sink permanently
//     (sticky error on every later Write/Sync/DropPrefix): after fsync
//     reports an error the kernel may already have dropped the dirty pages,
//     so a retried sync that "succeeds" proves nothing — the fsyncgate
//     rule. The Logger above applies the same rule to itself.
//
//   - DropPrefix truncates by rewrite-and-rename: the retained suffix is
//     written to a temp file in the same directory, fsynced, renamed over
//     the log, and the directory fsynced. A crash at any point leaves
//     either the old file (prefix not yet dropped — harmless, replay is
//     idempotent above the checkpoint watermark) or the new one; the
//     half-written temp file is ignored and removed by OpenFileSink.
//
//   - The file's content is exactly the retained log bytes: reopening after
//     a crash needs no sidecar state, Recover just reads the file.
type FileSink struct {
	mu   sync.Mutex
	f    *os.File // guarded by mu; swapped by DropPrefix
	path string   // immutable after OpenFileSink
	size int64    // guarded by mu; bytes retained in the file
	err  error    // guarded by mu; sticky after a failed sync (fsyncgate)
}

// tmpSuffix names the rewrite-and-rename scratch file; OpenFileSink removes
// a stale one left by a crash mid-truncation.
const tmpSuffix = ".truncating"

// OpenFileSink opens (creating if needed) the log file at path for
// appending. An existing file is appended to — its content is the retained
// log from the previous run; read it with Bytes or an os.Open before
// handing the tail to recovery.
func OpenFileSink(path string) (*FileSink, error) {
	// A crash between writing and renaming the truncation temp file leaves
	// it behind; it is scratch, never authoritative.
	_ = os.Remove(path + tmpSuffix)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open file sink: %w", err)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: open file sink: %w", err)
	}
	return &FileSink{f: f, path: path, size: size}, nil
}

// Path returns the log file's path.
func (s *FileSink) Path() string { return s.path }

// Write appends p to the file. Short writes surface as io.ErrShortWrite; a
// poisoned sink (failed sync) rejects every write.
func (s *FileSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return 0, s.err
	}
	n, err := s.f.Write(p)
	s.size += int64(n)
	if err == nil && n < len(p) {
		err = io.ErrShortWrite
	}
	return n, err
}

// Sync makes every written byte durable (os.File.Sync). A failure poisons
// the sink permanently: never retry-and-trust a failed fsync.
func (s *FileSink) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if err := s.f.Sync(); err != nil {
		s.err = fmt.Errorf("wal: file sink poisoned by failed fsync (%v); durability of prior writes is unknown", err)
		return s.err
	}
	return nil
}

// DropPrefix discards the first n retained bytes by rewrite-and-rename.
// The remaining bytes stay byte-exact.
func (s *FileSink) DropPrefix(n int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if n < 0 || n > s.size {
		return fmt.Errorf("wal: DropPrefix(%d) with %d bytes retained", n, s.size)
	}
	if n == 0 {
		return nil
	}
	rest := make([]byte, s.size-n)
	if _, err := s.f.ReadAt(rest, n); err != nil {
		return fmt.Errorf("wal: truncate read: %w", err)
	}
	tmpPath := s.path + tmpSuffix
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if _, err := tmp.Write(rest); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("wal: truncate write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("wal: truncate sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("wal: truncate close: %w", err)
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("wal: truncate rename: %w", err)
	}
	syncDir(filepath.Dir(s.path))
	nf, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reopen after truncate: %w", err)
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		return fmt.Errorf("wal: reopen after truncate: %w", err)
	}
	s.f.Close()
	s.f = nf
	s.size -= n
	return nil
}

// syncDir fsyncs a directory so a rename inside it is durable. Best-effort:
// some filesystems reject directory fsync; the rename itself is atomic
// either way.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() //nolint:errcheck // best-effort; see above
	d.Close()
}

// Len returns the number of retained bytes.
func (s *FileSink) Len() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Err returns the sticky poisoning error, nil while the sink is healthy.
func (s *FileSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Bytes reads back the retained bytes — the durable log — from the file.
func (s *FileSink) Bytes() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := make([]byte, s.size)
	if _, err := s.f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil, fmt.Errorf("wal: read file sink: %w", err)
	}
	return buf, nil
}

// Close closes the underlying file.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
