package wal

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestAppendReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, nil)
	recs := []Record{
		{Kind: KindBegin, TxnID: 7},
		{Kind: KindInsert, TxnID: 7, Vals: []uint64{1, 2, 3}},
		{Kind: KindUpdate, TxnID: 7, Key: 42, Cols: []uint32{1, 3}, Vals: []uint64{10, 30}},
		{Kind: KindDelete, TxnID: 7, Key: 42},
		{Kind: KindCommit, TxnID: 7},
	}
	for _, r := range recs {
		if _, err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		if r.LSN != uint64(i+1) {
			t.Errorf("record %d LSN = %d", i, r.LSN)
		}
		if r.Kind != recs[i].Kind || r.TxnID != recs[i].TxnID || r.Key != recs[i].Key {
			t.Errorf("record %d = %+v, want %+v", i, r, recs[i])
		}
	}
	if got[2].Cols[1] != 3 || got[2].Vals[1] != 30 {
		t.Errorf("update payload mangled: %+v", got[2])
	}
}

func TestTornTailTerminatesCleanly(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, nil)
	for i := 0; i < 5; i++ {
		if _, err := l.Append(Record{Kind: KindInsert, TxnID: uint64(i), Vals: []uint64{9}}); err != nil {
			t.Fatal(err)
		}
	}
	l.Flush()
	whole := buf.Bytes()
	// Cut mid-record: replay returns only the intact prefix, no error.
	for cut := len(whole) - 1; cut > len(whole)-12 && cut > 0; cut-- {
		got, err := ReadAll(bytes.NewReader(whole[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got) != 4 {
			t.Fatalf("cut %d: read %d records, want 4", cut, len(got))
		}
	}
}

func TestCorruptRecordStopsReplay(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, nil)
	l.Append(Record{Kind: KindInsert, TxnID: 1})
	l.Append(Record{Kind: KindInsert, TxnID: 2})
	l.Flush()
	b := buf.Bytes()
	// Flip a payload byte of the second record.
	b[len(b)-1] ^= 0xFF
	got, err := ReadAll(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("read %d records past corruption, want 1", len(got))
	}
}

func TestGroupCommitFlushesBatch(t *testing.T) {
	var buf bytes.Buffer
	var syncs atomic.Int32
	l := NewLogger(&buf, func() { syncs.Add(1) })
	// Three transactions interleave; only one commit triggers the flush.
	for txn := uint64(1); txn <= 3; txn++ {
		l.Append(Record{Kind: KindBegin, TxnID: txn})
		l.Append(Record{Kind: KindUpdate, TxnID: txn, Key: txn, Cols: []uint32{1}, Vals: []uint64{txn}})
	}
	if syncs.Load() != 0 {
		t.Fatal("flushed before any commit")
	}
	lsn, err := l.AppendCommit(1)
	if err != nil {
		t.Fatal(err)
	}
	if syncs.Load() != 1 {
		t.Fatalf("syncs = %d, want 1", syncs.Load())
	}
	if l.FlushedLSN() != lsn {
		t.Fatalf("flushed LSN %d, commit LSN %d", l.FlushedLSN(), lsn)
	}
	// All seven records durable from the single sync.
	got, _ := ReadAll(bytes.NewReader(buf.Bytes()))
	if len(got) != 7 {
		t.Fatalf("durable records = %d, want 7", len(got))
	}
}

func TestAnalyzeAndRedoSkipUncommitted(t *testing.T) {
	records := []Record{
		{LSN: 1, Kind: KindBegin, TxnID: 1},
		{LSN: 2, Kind: KindInsert, TxnID: 1, Vals: []uint64{1}},
		{LSN: 3, Kind: KindBegin, TxnID: 2},
		{LSN: 4, Kind: KindInsert, TxnID: 2, Vals: []uint64{2}},
		{LSN: 5, Kind: KindCommit, TxnID: 1},
		{LSN: 6, Kind: KindBegin, TxnID: 3},
		{LSN: 7, Kind: KindUpdate, TxnID: 3, Key: 1},
		{LSN: 8, Kind: KindAbort, TxnID: 3},
	}
	committed := Analyze(records)
	if !committed[1] || committed[2] || committed[3] {
		t.Fatalf("analyze = %v", committed)
	}
	var applied []uint64
	if err := Redo(records, func(r Record) error {
		applied = append(applied, r.LSN)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 || applied[0] != 2 {
		t.Fatalf("redo applied %v, want [2]", applied)
	}
}

func TestConcurrentAppendsUniqueLSNs(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, nil)
	var wg sync.WaitGroup
	lsns := make([][]uint64, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				lsn, err := l.Append(Record{Kind: KindInsert, TxnID: uint64(w)})
				if err != nil {
					t.Error(err)
					return
				}
				lsns[w] = append(lsns[w], lsn)
			}
		}(w)
	}
	wg.Wait()
	l.Flush()
	seen := make(map[uint64]bool)
	for _, ls := range lsns {
		for _, lsn := range ls {
			if seen[lsn] {
				t.Fatalf("duplicate LSN %d", lsn)
			}
			seen[lsn] = true
		}
	}
	got, _ := ReadAll(bytes.NewReader(buf.Bytes()))
	if len(got) != 800 {
		t.Fatalf("read %d records, want 800", len(got))
	}
	if l.Appended() != 800 {
		t.Fatalf("Appended = %d", l.Appended())
	}
}

// --------------------------------------------------------------------------
// OR protocol

func TestORSingleWriterUpdatesPageLSN(t *testing.T) {
	p := NewORPage(1000)
	p.Write(5, func() {})
	if p.PageLSN() != 5 {
		t.Fatalf("pageLSN = %d, want 5", p.PageLSN())
	}
}

func TestORPageLSNCoversAllAppliedWritesAtFlush(t *testing.T) {
	p := NewORPage(64)
	var nextLSN atomic.Uint64
	var wg sync.WaitGroup
	applied := make([]atomic.Bool, 4096)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				lsn := nextLSN.Add(1)
				p.Write(lsn, func() { applied[lsn].Store(true) })
			}
		}()
	}
	// Concurrent flusher: at every flush, the flushed pageLSN must cover
	// every change applied before the flush observed the page.
	stop := make(chan struct{})
	var flushErr atomic.Value
	var fwg sync.WaitGroup
	fwg.Add(1)
	go func() {
		defer fwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			flushLSN := p.Flush()
			appliedLSN := p.AppliedLSN()
			// Writes may land after the flush returned; only assert that the
			// flush covered what was applied when it held the exclusive
			// latch: flushLSN >= everything applied before Flush acquired
			// the latch. AppliedLSN sampled after is >= that, so the real
			// invariant is checked at quiescence below. Here we only check
			// monotonicity.
			if flushLSN > appliedLSN {
				flushErr.Store("pageLSN beyond applied LSN")
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	fwg.Wait()
	if e := flushErr.Load(); e != nil {
		t.Fatal(e)
	}
	// Quiescent: a final flush must cover every applied write exactly.
	final := p.Flush()
	if final != p.AppliedLSN() {
		t.Fatalf("final flush pageLSN %d != applied %d", final, p.AppliedLSN())
	}
	if final != 1600 {
		t.Fatalf("final pageLSN %d, want 1600", final)
	}
}

func TestORThetaDrainForcesFlushOpportunity(t *testing.T) {
	p := NewORPage(4) // tiny θs
	var wg sync.WaitGroup
	var nextLSN atomic.Uint64
	// Background flusher releases drained groups.
	stop := make(chan struct{})
	var fwg sync.WaitGroup
	fwg.Add(1)
	go func() {
		defer fwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				p.Flush()
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p.Write(nextLSN.Add(1), func() {})
			}
		}()
	}
	wg.Wait()
	close(stop)
	fwg.Wait()
	p.Flush()
	if p.PageLSN() != 200 {
		t.Fatalf("pageLSN = %d, want 200", p.PageLSN())
	}
	if p.Flushes() < 2 {
		t.Fatalf("flushes = %d; θs drain never let the flusher in", p.Flushes())
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindBegin: "begin", KindInsert: "insert", KindUpdate: "update",
		KindDelete: "delete", KindCommit: "commit", KindAbort: "abort", KindMerge: "merge",
	} {
		if k.String() != want {
			t.Errorf("%v", k)
		}
	}
}

// --------------------------------------------------------------------------
// Torn-write poisoning, truncation, frames

// deadWriter fails every write.
type deadWriter struct{}

func (deadWriter) Write([]byte) (int, error) {
	return 0, errors.New("dead device")
}

func TestWriteFailurePoisonsLogger(t *testing.T) {
	l := NewLogger(deadWriter{}, nil)
	// An oversized record writes through the buffer and fails mid-record.
	big := Record{Kind: KindInsert, TxnID: 1, TVals: []TypedVal{{Kind: TVString, S: strings.Repeat("x", 1<<17)}}}
	if _, err := l.Append(big); err == nil {
		t.Fatal("oversized append on dead device succeeded")
	}
	// The buffer may hold a torn prefix: everything later must fail sticky.
	if _, err := l.Append(Record{Kind: KindInsert, TxnID: 2}); err == nil {
		t.Fatal("append after poisoning succeeded")
	}
	if err := l.Flush(); err == nil {
		t.Fatal("flush after poisoning succeeded")
	}
	if _, err := l.AppendCommit(2); err == nil {
		t.Fatal("commit after poisoning succeeded")
	}
	if l.Err() == nil {
		t.Fatal("Err() nil after poisoning")
	}
	if l.Appended() != 0 {
		t.Fatalf("Appended = %d after poisoned appends", l.Appended())
	}
}

func TestFlushFailurePoisonsLogger(t *testing.T) {
	l := NewLogger(deadWriter{}, nil)
	if _, err := l.Append(Record{Kind: KindInsert, TxnID: 1}); err != nil {
		t.Fatalf("buffered append failed: %v", err)
	}
	if err := l.Flush(); err == nil {
		t.Fatal("flush to dead device succeeded")
	}
	if _, err := l.Append(Record{Kind: KindInsert, TxnID: 2}); err == nil {
		t.Fatal("append after flush failure succeeded")
	}
}

func TestTruncateToDropsPrefixExactly(t *testing.T) {
	sink := &BufferSink{}
	l := NewLogger(sink, nil)
	for i := uint64(1); i <= 10; i++ {
		if _, err := l.Append(Record{Kind: KindInsert, TxnID: i, Key: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.TruncateTo(4); err != nil { // flushes internally
		t.Fatal(err)
	}
	if got := l.TruncatedLSN(); got != 4 {
		t.Fatalf("TruncatedLSN = %d, want 4", got)
	}
	recs, err := ReadAll(sink.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 || recs[0].LSN != 5 || recs[5].LSN != 10 {
		t.Fatalf("retained %d records, first LSN %d", len(recs), recs[0].LSN)
	}
	// Truncating again below the retained range is a no-op.
	if err := l.TruncateTo(3); err != nil {
		t.Fatal(err)
	}
	if recs, _ := ReadAll(sink.Reader()); len(recs) != 6 {
		t.Fatalf("idempotent truncation dropped records: %d left", len(recs))
	}
	// Appending continues with monotone LSNs; a later truncation works too.
	if _, err := l.Append(Record{Kind: KindCommit, TxnID: 11}); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateTo(10); err != nil {
		t.Fatal(err)
	}
	recs, _ = ReadAll(sink.Reader())
	if len(recs) != 1 || recs[0].LSN != 11 {
		t.Fatalf("after second truncation: %d records, first LSN %d", len(recs), recs[0].LSN)
	}
}

func TestTruncateToNonTruncatableSink(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, nil)
	l.Append(Record{Kind: KindInsert, TxnID: 1})
	if err := l.TruncateTo(1); err != ErrNotTruncatable {
		t.Fatalf("TruncateTo on plain buffer = %v, want ErrNotTruncatable", err)
	}
}

func TestCommittedTxnsWatermark(t *testing.T) {
	records := []Record{
		{LSN: 1, Kind: KindBegin, TxnID: 1},
		{LSN: 2, Kind: KindInsert, TxnID: 1, Key: 1},
		{LSN: 3, Kind: KindBegin, TxnID: 2},
		{LSN: 4, Kind: KindInsert, TxnID: 2, Key: 2},
		{LSN: 5, Kind: KindCommit, TxnID: 1},
		{LSN: 6, Kind: KindUpdate, TxnID: 2, Key: 2},
		{LSN: 7, Kind: KindCommit, TxnID: 2},
		{LSN: 8, Kind: KindBegin, TxnID: 3},
		{LSN: 9, Kind: KindInsert, TxnID: 3, Key: 3},
		{LSN: 10, Kind: KindAbort, TxnID: 3},
		{LSN: 11, Kind: KindInsert, TxnID: 4, Key: 4}, // no commit: discarded
	}
	all := CommittedTxns(records, 0)
	if len(all) != 2 || all[0].TxnID != 1 || all[1].TxnID != 2 {
		t.Fatalf("CommittedTxns(0) = %+v", all)
	}
	if len(all[1].Ops) != 2 || all[1].Ops[0].LSN != 4 || all[1].Ops[1].LSN != 6 {
		t.Fatalf("txn 2 ops out of order: %+v", all[1].Ops)
	}
	// Watermark 5: txn 1 (commit LSN 5) is covered, txn 2 (LSN 7) is not —
	// including its op at LSN 4, below the watermark but uncovered.
	tail := CommittedTxns(records, 5)
	if len(tail) != 1 || tail[0].TxnID != 2 || len(tail[0].Ops) != 2 {
		t.Fatalf("CommittedTxns(5) = %+v", tail)
	}
}

func TestFrameRoundTripAndTorn(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("alpha"), {}, []byte("gamma-gamma")}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(bytes.NewReader(buf.Bytes()))
	for i, want := range payloads {
		got, err := ReadFrame(br)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("frame %d = %q, %v", i, got, err)
		}
	}
	if _, err := ReadFrame(br); err != io.EOF {
		t.Fatalf("clean end = %v, want io.EOF", err)
	}
	// Torn and corrupt streams fail loudly (strict, unlike the log).
	data := buf.Bytes()
	br = bufio.NewReader(bytes.NewReader(data[:len(data)-2]))
	ReadFrame(br)
	ReadFrame(br)
	if _, err := ReadFrame(br); err != ErrTornFrame {
		t.Fatalf("torn frame = %v, want ErrTornFrame", err)
	}
	mut := append([]byte(nil), data...)
	mut[9] ^= 0xFF // payload byte of the first frame
	br = bufio.NewReader(bytes.NewReader(mut))
	if _, err := ReadFrame(br); err != ErrTornFrame {
		t.Fatalf("corrupt frame = %v, want ErrTornFrame", err)
	}
}
