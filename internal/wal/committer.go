package wal

import "lstore/internal/fault"

// Group commit, the real thing (§5.1.3 "group commit" made concurrent):
//
// AppendCommit used to be append-then-Flush, which under N concurrent
// committers degenerates to N flushes — and with an fsync-backed FileSink,
// one fsync per transaction is the write-throughput ceiling. The committer
// in this file turns concurrent AppendCommit callers into batches: every
// caller appends its commit record (cheap, buffered, serialized on l.mu)
// and then enqueues on the open commit batch; the first enqueuer becomes
// the batch LEADER, seals the batch, and runs the one Flush (buffer push +
// fsync) that makes every record appended so far durable. Followers block
// until a flush whose coverage reaches their commit LSN has run, and take
// that flush's verdict:
//
//   - success: the follower's commit record has LSN at or below the flushed
//     watermark, so the one fsync vouched for it too — it returns nil
//     without ever touching the device.
//
//   - failure: the flush (or its fsync) poisoned the logger (see
//     flushLocked: never retry-and-trust), and EVERY waiter in the batch
//     fails with the poisoning error. No waiter may be told "durable" on
//     the strength of a flush that did not complete, and no later retry can
//     un-poison the log — this is the PR-5/PR-7 durability contract carried
//     over the batch boundary unchanged.
//
// Commit records that were covered by an EARLIER successful flush stay
// acknowledged even if a later batch poisons the logger: durability already
// happened; the poison only gates new work.
//
// The protocol is deliberately timer-free (no batching window): batches
// form from genuine concurrency — committers that arrive while a leader's
// flush is in flight pile onto the next batch, so batch size adapts to the
// fsync latency and the offered load, and a lone committer degrades to
// exactly the old append-then-flush behavior (same syncs, same semantics).
// Timer-free also keeps internal/wal deterministic (the nodeterminism
// analyzer bans wall-clock reads here).
//
// Lock order: gcMu is acquired BEFORE l.mu (the leader reads
// FlushedLSN/Err and runs Flush while coordinating through gcMu); l.mu is
// never held while acquiring gcMu.

// cpGroupBatchFlush is hit by the batch leader after sealing the batch and
// before running the batch flush: a crash here is the worst case for group
// commit — several transactions' commit records are buffered, none durable,
// and every one of them must vanish on recovery.
var cpGroupBatchFlush = fault.Register("wal.groupcommit.batch-flush")

// commitWait makes the commit record at lsn durable through the group
// committer: the caller either becomes the leader of the open batch and
// flushes for everyone, or waits for a covering flush and inherits its
// verdict. See the package comment above for the full protocol.
// Unlocks are explicit (no defer): the leader releases gcMu across the
// flush, and a crash-point panic inside the flush must propagate as-is —
// the simulated process is dead, and a deferred unlock would fire on a
// mutex the leader no longer holds.
func (l *Logger) commitWait(lsn uint64) error {
	l.gcMu.Lock()
	for {
		// Covered by a flush that succeeded: durable. This is checked before
		// the poison check on purpose — a commit covered by an earlier good
		// flush stays acknowledged even if a later batch poisoned the log.
		if l.FlushedLSN() >= lsn {
			l.gcMu.Unlock()
			return nil
		}
		if err := l.Err(); err != nil {
			l.gcMu.Unlock()
			return err
		}
		if !l.gcFlushing {
			// Leader: seal the batch — everything appended up to now,
			// including every waiter's commit record — and flush once for
			// all of it. gcMu is released across the flush so new
			// committers can append and enqueue onto the next batch while
			// this one syncs.
			l.gcFlushing = true
			l.gcBatches++
			l.gcMu.Unlock()
			cpGroupBatchFlush.Hit() // crash here: batch sealed, nothing durable
			err := l.Flush()
			l.gcMu.Lock()
			l.gcFlushing = false
			l.gcWake.Broadcast()
			l.gcMu.Unlock()
			return err
		}
		l.gcWake.Wait()
	}
}

// SetGroupCommit selects between batched commits (the default: concurrent
// AppendCommit callers share one flush) and a flush per commit. It must be
// called before the logger is used concurrently — typically right after
// NewLogger — and exists so benchmarks and tests can measure the batching
// against the flush-per-commit baseline.
func (l *Logger) SetGroupCommit(on bool) { l.group = on }

// GroupCommit reports whether commits are batched.
func (l *Logger) GroupCommit() bool { return l.group }

// GroupBatches returns how many commit batches a leader has flushed (0 with
// group commit off). Syncs()/GroupBatches() ≈ 1 when batching is active;
// commits divided by GroupBatches is the achieved batch size.
func (l *Logger) GroupBatches() int {
	l.gcMu.Lock()
	defer l.gcMu.Unlock()
	return l.gcBatches
}
