package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// The one CRC framing shared by log records and checkpoint images:
// len u32 | crc u32 | payload. The two consumers differ only in tail
// semantics — ReadAll (the log) treats a torn tail as the crash cut and
// ends replay cleanly, while checkpoint restore treats ErrTornFrame as
// fatal (a torn image is unusable and must fail loudly).

const frameHdrSize = 8

// ErrTornFrame reports a truncated or corrupt frame.
var ErrTornFrame = fmt.Errorf("wal: torn or corrupt frame")

// WriteFrame writes one CRC-protected frame. Short writes with a nil error
// (a misbehaving io.Writer) are reported as io.ErrShortWrite instead of
// being silently absorbed: a frame the writer only half-took would read
// back as a torn tail and end replay early with no error ever surfaced.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [frameHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if n, err := w.Write(hdr[:]); err != nil {
		return err
	} else if n < len(hdr) {
		return io.ErrShortWrite
	}
	if n, err := w.Write(payload); err != nil {
		return err
	} else if n < len(payload) {
		return io.ErrShortWrite
	}
	return nil
}

// ReadFrame reads one frame. It returns io.EOF at a clean end of stream,
// ErrTornFrame (exactly) for truncated or unverifiable frames, and wraps
// genuine I/O failures distinctly so callers can tell a torn tail from a
// dying reader.
func ReadFrame(br *bufio.Reader) ([]byte, error) {
	var hdr [frameHdrSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		switch err {
		case io.EOF:
			return nil, io.EOF
		case io.ErrUnexpectedEOF:
			return nil, ErrTornFrame
		default:
			return nil, fmt.Errorf("wal: read frame: %w", err)
		}
	}
	n := binary.LittleEndian.Uint32(hdr[0:])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if n > 1<<28 {
		return nil, ErrTornFrame // implausible length
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrTornFrame
		}
		return nil, fmt.Errorf("wal: read frame: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, ErrTornFrame
	}
	return payload, nil
}
