package workload

import (
	"testing"
	"testing/quick"
)

func TestForContentionRatios(t *testing.T) {
	low := ForContention(Low, 65536)
	med := ForContention(Medium, 65536)
	high := ForContention(High, 65536)
	if low.ActiveSet != 65536 || med.ActiveSet != 8192 || high.ActiveSet != 1024 {
		t.Fatalf("active sets = %d/%d/%d", low.ActiveSet, med.ActiveSet, high.ActiveSet)
	}
	if low.NumCols != 10 || low.ReadsPerTxn != 8 || low.WritesPerTxn != 2 {
		t.Fatalf("defaults wrong: %+v", low)
	}
	if low.ColsPerWrite != 4 {
		t.Fatalf("ColsPerWrite = %d, want 4 (40%% of 10)", low.ColsPerWrite)
	}
	if low.ScanSpan() != 6553 {
		t.Fatalf("ScanSpan = %d", low.ScanSpan())
	}
	tiny := ForContention(High, 10)
	if tiny.ActiveSet < 1 {
		t.Fatal("active set must be >= 1")
	}
	if Low.String() != "low" || Medium.String() != "medium" || High.String() != "high" {
		t.Error("contention strings")
	}
}

func TestNextTxnShape(t *testing.T) {
	cfg := ForContention(Medium, 4096)
	g := NewGenerator(cfg, 1)
	for round := 0; round < 50; round++ {
		ops := g.NextTxn()
		if len(ops) != 10 {
			t.Fatalf("txn has %d ops", len(ops))
		}
		reads, writes := 0, 0
		for _, op := range ops {
			if op.Key < 0 || op.Key >= int64(cfg.ActiveSet) {
				t.Fatalf("key %d outside active set", op.Key)
			}
			if op.Write {
				writes++
				if len(op.Cols) != cfg.ColsPerWrite || len(op.Vals) != len(op.Cols) {
					t.Fatalf("write touches %d cols", len(op.Cols))
				}
				seen := map[int]bool{}
				for _, c := range op.Cols {
					if c == 0 || c >= cfg.NumCols {
						t.Fatalf("write col %d out of range", c)
					}
					if seen[c] {
						t.Fatalf("duplicate col %d", c)
					}
					seen[c] = true
				}
			} else {
				reads++
				if len(op.Cols) != 1 {
					t.Fatalf("read touches %d cols", len(op.Cols))
				}
			}
		}
		if reads != 8 || writes != 2 {
			t.Fatalf("txn = %dR/%dW", reads, writes)
		}
	}
}

func TestMixedTxnRatios(t *testing.T) {
	g := NewGenerator(ForContention(Low, 1024), 2)
	for _, nw := range []int{0, 3, 10} {
		ops := g.MixedTxn(10-nw, nw)
		writes := 0
		for _, op := range ops {
			if op.Write {
				writes++
			}
		}
		if writes != nw {
			t.Fatalf("want %d writes, got %d", nw, writes)
		}
	}
}

func TestPointReadTxnColumnCounts(t *testing.T) {
	g := NewGenerator(ForContention(Low, 1024), 3)
	for _, pct := range []int{10, 20, 40, 80, 100} {
		ops := g.PointReadTxn(10, pct)
		if len(ops) != 10 {
			t.Fatalf("ops = %d", len(ops))
		}
		want := (10*pct + 99) / 100
		if want > 9 {
			want = 9
		}
		for _, op := range ops {
			if len(op.Cols) != want {
				t.Fatalf("pct %d: read %d cols, want %d", pct, len(op.Cols), want)
			}
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(ForContention(Medium, 8192), 42)
	b := NewGenerator(ForContention(Medium, 8192), 42)
	for i := 0; i < 20; i++ {
		oa, ob := a.NextTxn(), b.NextTxn()
		for j := range oa {
			if oa[j].Key != ob[j].Key || oa[j].Write != ob[j].Write {
				t.Fatalf("divergence at txn %d op %d", i, j)
			}
		}
	}
}

func TestDistinctColsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		g := NewGenerator(ForContention(Low, 128), seed)
		n := int(nRaw)%9 + 1
		cols := g.distinctCols(nil, n)
		if len(cols) != n {
			return false
		}
		seen := map[int]bool{}
		for _, c := range cols {
			if c < 1 || c > 9 || seen[c] {
				return false
			}
			seen[c] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
