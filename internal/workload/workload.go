// Package workload implements the micro benchmark of §6.1, originally
// defined in Larson et al. [18] and Sadoghi et al. [33]:
//
//   - a 10-column table; the degree of reader/writer contention is set by
//     the size of the database active set: low (10 M records), medium
//     (100 K) and high (10 K) — scaled proportionally for smaller machines;
//   - short update transactions of 8 reads + 2 writes (read committed),
//     with configurable read/write ratio for the Figure 9 sweeps;
//   - writers update 40% of all columns on average;
//   - read-only analytical transactions scanning 10% of the base table
//     under snapshot isolation (SUM over one continuously updated column).
package workload

import (
	"math/rand"
)

// Contention selects the active-set size class of §6.1.
type Contention int

const (
	Low Contention = iota
	Medium
	High
)

func (c Contention) String() string {
	switch c {
	case Low:
		return "low"
	case Medium:
		return "medium"
	case High:
		return "high"
	default:
		return "contention(?)"
	}
}

// Config describes one benchmark workload.
type Config struct {
	// TableSize is the number of preloaded records (the database is larger
	// than the active set, §6.1).
	TableSize int
	// ActiveSet is the number of distinct keys update transactions touch.
	ActiveSet int
	// NumCols is the total column count including the key (paper: 10).
	NumCols int
	// ReadsPerTxn and WritesPerTxn shape the short update transaction
	// (paper default: 8 reads, 2 writes).
	ReadsPerTxn  int
	WritesPerTxn int
	// ColsPerWrite is how many data columns each write statement updates
	// (paper: 40% of all columns on average).
	ColsPerWrite int
	// ScanFraction is the portion of the table a long-running read-only
	// transaction touches (paper: 10%).
	ScanFraction float64
}

// Scale shrinks the paper's active sets for a target machine while
// preserving the contention ratios as far as memory allows. scale=1.0
// reproduces the paper's sizes (10M/100K/10K).
func ForContention(c Contention, tableSize int) Config {
	cfg := Config{
		TableSize:    tableSize,
		NumCols:      10,
		ReadsPerTxn:  8,
		WritesPerTxn: 2,
		ScanFraction: 0.10,
	}
	cfg.ColsPerWrite = (cfg.NumCols*40 + 99) / 100 // 40% of all columns
	switch c {
	case Low:
		cfg.ActiveSet = tableSize // spread across the whole table
	case Medium:
		cfg.ActiveSet = tableSize / 8
	case High:
		cfg.ActiveSet = tableSize / 64
	}
	if cfg.ActiveSet < 1 {
		cfg.ActiveSet = 1
	}
	return cfg
}

// Op is one statement of a short transaction.
type Op struct {
	Write bool
	Key   int64
	Cols  []int   // data-column indexes (never the key column 0)
	Vals  []int64 // write payloads, aligned with Cols
}

// Generator produces transactions deterministically per seed; one generator
// per worker thread.
type Generator struct {
	cfg Config
	rng *rand.Rand
	// scratch reused across calls; callers consume a txn before requesting
	// the next.
	ops  []Op
	cols []int
}

// NewGenerator creates a generator for the given worker seed.
func NewGenerator(cfg Config, seed int64) *Generator {
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// NextTxn emits the paper's default short update transaction: ReadsPerTxn
// reads and WritesPerTxn writes over the active set. The returned slice is
// valid until the next call.
func (g *Generator) NextTxn() []Op {
	return g.MixedTxn(g.cfg.ReadsPerTxn, g.cfg.WritesPerTxn)
}

// MixedTxn emits a transaction with exactly nr reads and nw writes (the
// Figure 9 read/write-ratio sweeps vary these over a 10-statement budget).
func (g *Generator) MixedTxn(nr, nw int) []Op {
	total := nr + nw
	if cap(g.ops) < total {
		g.ops = make([]Op, total)
	}
	ops := g.ops[:total]
	for i := range ops {
		ops[i].Write = i >= nr // reads first, then writes (paper's RMW shape)
		ops[i].Key = int64(g.rng.Intn(g.cfg.ActiveSet))
		if ops[i].Write {
			ops[i].Cols, ops[i].Vals = g.writeSet(ops[i].Cols, ops[i].Vals)
		} else {
			ops[i].Cols = g.readSet(ops[i].Cols, 1)
			ops[i].Vals = ops[i].Vals[:0]
		}
	}
	return ops
}

// PointReadTxn emits a transaction of n point reads each fetching pct% of
// all columns (Table 9).
func (g *Generator) PointReadTxn(n, pctCols int) []Op {
	ncols := (g.cfg.NumCols*pctCols + 99) / 100
	if ncols < 1 {
		ncols = 1
	}
	if ncols > g.cfg.NumCols-1 {
		ncols = g.cfg.NumCols - 1
	}
	if cap(g.ops) < n {
		g.ops = make([]Op, n)
	}
	ops := g.ops[:n]
	for i := range ops {
		ops[i].Write = false
		ops[i].Key = int64(g.rng.Intn(g.cfg.ActiveSet))
		ops[i].Cols = g.readSet(ops[i].Cols, ncols)
		ops[i].Vals = ops[i].Vals[:0]
	}
	return ops
}

// writeSet draws ColsPerWrite distinct data columns and values.
func (g *Generator) writeSet(cols []int, vals []int64) ([]int, []int64) {
	n := g.cfg.ColsPerWrite
	if n > g.cfg.NumCols-1 {
		n = g.cfg.NumCols - 1
	}
	cols = g.distinctCols(cols[:0], n)
	if cap(vals) < n {
		vals = make([]int64, n)
	}
	vals = vals[:n]
	for i := range vals {
		vals[i] = g.rng.Int63n(1 << 20)
	}
	return cols, vals
}

// readSet draws n distinct data columns to read.
func (g *Generator) readSet(cols []int, n int) []int {
	return g.distinctCols(cols[:0], n)
}

// distinctCols samples n distinct data-column indexes in [1, NumCols).
func (g *Generator) distinctCols(cols []int, n int) []int {
	if cap(g.cols) < g.cfg.NumCols-1 {
		g.cols = make([]int, g.cfg.NumCols-1)
	}
	pool := g.cols[:g.cfg.NumCols-1]
	for i := range pool {
		pool[i] = i + 1
	}
	for i := 0; i < n; i++ {
		j := i + g.rng.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
		cols = append(cols, pool[i])
	}
	return cols
}

// ScanSpan returns the row-count of one analytical scan (ScanFraction of
// the table).
func (c Config) ScanSpan() int {
	n := int(float64(c.TableSize) * c.ScanFraction)
	if n < 1 {
		n = 1
	}
	return n
}
