package lstore

import (
	"bytes"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRecoveryEquivalenceProperty drives random committed/aborted work over
// two tables with the WAL attached, then recovers the log into a fresh
// database and requires exact state equality with the survivor.
func TestRecoveryEquivalenceProperty(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		var log bytes.Buffer
		db := Open(WithWAL(&log, nil))
		users, err := db.CreateTable("users", NewSchema("id",
			Column{Name: "id", Type: Int64},
			Column{Name: "name", Type: String},
			Column{Name: "score", Type: Int64},
		))
		if err != nil {
			t.Fatal(err)
		}
		orders, err := db.CreateTable("orders", NewSchema("id",
			Column{Name: "id", Type: Int64},
			Column{Name: "user", Type: Int64},
			Column{Name: "total", Type: Int64},
		))
		if err != nil {
			t.Fatal(err)
		}

		rng := rand.New(rand.NewSource(seed))
		names := []string{"ada", "bob", "cleo", "dan"}
		for op := 0; op < 400; op++ {
			tx := db.Begin(ReadCommitted)
			ok := true
			switch rng.Intn(5) {
			case 0, 1:
				key := rng.Int63n(50)
				err := users.Insert(tx, Row{
					"id": Int(key), "name": Str(names[rng.Intn(4)]), "score": Int(rng.Int63n(100)),
				})
				ok = err == nil
			case 2:
				key := rng.Int63n(50)
				err := users.Update(tx, key, Row{"score": Int(rng.Int63n(1000))})
				ok = err == nil
			case 3:
				key := rng.Int63n(200)
				err := orders.Insert(tx, Row{
					"id": Int(key), "user": Int(rng.Int63n(50)), "total": Int(rng.Int63n(500)),
				})
				ok = err == nil
			case 4:
				err := users.Delete(tx, rng.Int63n(50))
				ok = err == nil
			}
			// Randomly abort some otherwise-fine transactions too.
			if !ok || rng.Intn(10) == 0 {
				tx.Abort()
				continue
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		users.Merge()
		db.Close()

		// Recover.
		db2 := Open()
		users2, _ := db2.CreateTable("users", NewSchema("id",
			Column{Name: "id", Type: Int64},
			Column{Name: "name", Type: String},
			Column{Name: "score", Type: Int64},
		))
		orders2, _ := db2.CreateTable("orders", NewSchema("id",
			Column{Name: "id", Type: Int64},
			Column{Name: "user", Type: Int64},
			Column{Name: "total", Type: Int64},
		))
		if _, err := Recover(db2, nil, bytes.NewReader(log.Bytes())); err != nil {
			t.Fatalf("seed %d: recover: %v", seed, err)
		}

		// Compare row by row.
		compare := func(a, b *Table, cols []string) {
			t.Helper()
			tsA, tsB := a.db.Now(), b.db.Now()
			rowsA := map[int64]Row{}
			if err := a.Scan(tsA, cols, func(key int64, row Row) bool {
				cp := Row{}
				for k, v := range row {
					cp[k] = v
				}
				rowsA[key] = cp
				return true
			}); err != nil {
				t.Fatal(err)
			}
			n := 0
			if err := b.Scan(tsB, cols, func(key int64, row Row) bool {
				n++
				ra, ok := rowsA[key]
				if !ok {
					t.Fatalf("seed %d: recovered extra key %d", seed, key)
				}
				for _, c := range cols {
					if !ra[c].Equal(row[c]) {
						t.Fatalf("seed %d: key %d col %s: %v != %v", seed, key, c, ra[c], row[c])
					}
				}
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if n != len(rowsA) {
				t.Fatalf("seed %d: row count %d != %d", seed, n, len(rowsA))
			}
		}
		compare(users, users2, []string{"name", "score"})
		compare(orders, orders2, []string{"user", "total"})
		db2.Close()
	}
}

// TestRecoveryFromTornLog cuts the log mid-record: the intact committed
// prefix must recover, the torn tail must vanish silently.
func TestRecoveryFromTornLog(t *testing.T) {
	var log bytes.Buffer
	db := Open(WithWAL(&log, nil))
	tbl, _ := db.CreateTable("t", NewSchema("id",
		Column{Name: "id", Type: Int64},
		Column{Name: "v", Type: Int64},
	))
	for i := int64(0); i < 10; i++ {
		tx := db.Begin(ReadCommitted)
		if err := tbl.Insert(tx, Row{"id": Int(i), "v": Int(i)}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()

	data := log.Bytes()
	cut := len(data) - 7 // inside the final commit record
	db2 := Open()
	defer db2.Close()
	tbl2, _ := db2.CreateTable("t", NewSchema("id",
		Column{Name: "id", Type: Int64},
		Column{Name: "v", Type: Int64},
	))
	if _, err := Recover(db2, nil, bytes.NewReader(data[:cut])); err != nil {
		t.Fatal(err)
	}
	_, rows, _ := tbl2.Sum(db2.Now(), "v")
	if rows != 9 {
		t.Fatalf("recovered %d rows from torn log, want 9 (last commit torn)", rows)
	}
}

// TestConcurrentPublicAPIWithWAL hammers the public API from several
// goroutines with the WAL attached, then verifies recovery reproduces the
// final sum exactly.
func TestConcurrentPublicAPIWithWAL(t *testing.T) {
	var log safeBuffer // buffer writes race across committers' flushes
	db := Open(WithWAL(&log, nil))
	tbl, _ := db.CreateTable("t", NewSchema("id",
		Column{Name: "id", Type: Int64},
		Column{Name: "v", Type: Int64},
	), TableOptions{RangeSize: 1024, MergeBatch: 128})
	seedTx := db.Begin(ReadCommitted)
	for i := int64(0); i < 256; i++ {
		if err := tbl.Insert(seedTx, Row{"id": Int(i), "v": Int(0)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := seedTx.Commit(); err != nil {
		t.Fatal(err)
	}

	var committed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 150; i++ {
				key := int64(w*64 + rng.Intn(64)) // disjoint per worker
				tx := db.Begin(Serializable)
				row, ok, err := tbl.Get(tx, key, "v")
				if err != nil || !ok {
					tx.Abort()
					continue
				}
				if err := tbl.Update(tx, key, Row{"v": Int(row["v"].Int() + 1)}); err != nil {
					tx.Abort()
					continue
				}
				if err := tx.Commit(); err != nil {
					continue
				}
				committed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	sum, _, _ := tbl.Sum(db.Now(), "v")
	if sum != committed.Load() {
		t.Fatalf("live sum %d != committed %d", sum, committed.Load())
	}
	db.Close()

	db2 := Open()
	defer db2.Close()
	tbl2, _ := db2.CreateTable("t", NewSchema("id",
		Column{Name: "id", Type: Int64},
		Column{Name: "v", Type: Int64},
	))
	if _, err := Recover(db2, nil, bytes.NewReader(log.Bytes())); err != nil {
		t.Fatal(err)
	}
	sum2, rows, _ := tbl2.Sum(db2.Now(), "v")
	if sum2 != sum || rows != 256 {
		t.Fatalf("recovered sum %d/%d, want %d/256", sum2, rows, sum)
	}
}

// safeBuffer is a mutex-guarded bytes.Buffer (the logger flushes from
// multiple committers).
type safeBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *safeBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// TestTwoTablesShareClock: snapshots cut consistently across tables of one
// database (single synchronized clock).
func TestTwoTablesShareClock(t *testing.T) {
	db := Open()
	defer db.Close()
	a, _ := db.CreateTable("a", NewSchema("id",
		Column{Name: "id", Type: Int64}, Column{Name: "v", Type: Int64}))
	bTbl, _ := db.CreateTable("b", NewSchema("id",
		Column{Name: "id", Type: Int64}, Column{Name: "v", Type: Int64}))
	// One transaction writes both tables; any snapshot sees both writes or
	// neither.
	tx := db.Begin(ReadCommitted)
	if err := a.Insert(tx, Row{"id": Int(1), "v": Int(10)}); err != nil {
		t.Fatal(err)
	}
	if err := bTbl.Insert(tx, Row{"id": Int(1), "v": Int(20)}); err != nil {
		t.Fatal(err)
	}
	before := db.Now()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	after := db.Now()

	_, okA, _ := a.GetAt(before, 1, "v")
	_, okB, _ := bTbl.GetAt(before, 1, "v")
	if okA || okB {
		t.Fatalf("pre-commit snapshot sees writes: a=%v b=%v", okA, okB)
	}
	ra, okA, _ := a.GetAt(after, 1, "v")
	rb, okB, _ := bTbl.GetAt(after, 1, "v")
	if !okA || !okB || ra["v"].Int() != 10 || rb["v"].Int() != 20 {
		t.Fatalf("post-commit snapshot: %v/%v %v/%v", ra, okA, rb, okB)
	}
}
