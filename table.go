package lstore

import (
	"fmt"

	"lstore/internal/core"
	"lstore/internal/types"
	"lstore/internal/wal"
)

// Table is one L-Store table.
type Table struct {
	db     *DB
	name   string
	id     uint64
	store  *core.Store
	schema types.Schema
}

// Name returns the table name.
func (tb *Table) Name() string { return tb.name }

// Key returns the primary-key column name.
func (tb *Table) Key() string { return tb.schema.Cols[tb.schema.Key].Name }

// ColumnDefs returns the column declarations in schema order.
func (tb *Table) ColumnDefs() []Column {
	out := make([]Column, tb.schema.NumCols())
	for i, c := range tb.schema.Cols {
		out[i] = Column{Name: c.Name, Type: c.Type}
	}
	return out
}

// SecondaryIndexes returns the names of columns with declared secondary
// indexes, in column order.
func (tb *Table) SecondaryIndexes() []string {
	var out []string
	for _, ci := range tb.store.Config().SecondaryIndexColumns {
		out = append(out, tb.schema.Cols[ci].Name)
	}
	return out
}

// Columns returns the column names in schema order.
func (tb *Table) Columns() []string {
	out := make([]string, tb.schema.NumCols())
	for i, c := range tb.schema.Cols {
		out[i] = c.Name
	}
	return out
}

func (tb *Table) colIndexes(cols []string) ([]int, error) {
	if len(cols) == 0 {
		idx := make([]int, tb.schema.NumCols())
		for i := range idx {
			idx[i] = i
		}
		return idx, nil
	}
	idx := make([]int, len(cols))
	for i, name := range cols {
		ci := tb.schema.ColIndex(name)
		if ci < 0 {
			return nil, fmt.Errorf("lstore: table %q has no column %q", tb.name, name)
		}
		idx[i] = ci
	}
	return idx, nil
}

// Insert adds a record; row must provide a value for the key column, and
// omitted columns are null.
func (tb *Table) Insert(t *Txn, row Row) error {
	vals := make([]Value, tb.schema.NumCols())
	for i := range vals {
		vals[i] = Null()
	}
	for name, v := range row {
		ci := tb.schema.ColIndex(name)
		if ci < 0 {
			return fmt.Errorf("lstore: table %q has no column %q", tb.name, name)
		}
		vals[ci] = v
	}
	if err := tb.store.Insert(t.inner, vals); err != nil {
		return err
	}
	if tb.db.logger != nil {
		tvals := make([]wal.TypedVal, len(vals))
		for i, v := range vals {
			tvals[i] = toTyped(v)
		}
		if _, err := tb.db.logger.Append(wal.Record{
			Kind: wal.KindInsert, TxnID: t.inner.ID, Table: tb.id, TVals: tvals,
		}); err != nil {
			// The insert applied in memory but its log record did not:
			// poison the transaction so Commit aborts it atomically.
			return t.poisonWAL(err)
		}
	}
	return nil
}

// Update modifies the given columns of the record with key.
func (tb *Table) Update(t *Txn, key int64, set Row) error {
	cols := make([]int, 0, len(set))
	vals := make([]Value, 0, len(set))
	for name, v := range set {
		ci := tb.schema.ColIndex(name)
		if ci < 0 {
			return fmt.Errorf("lstore: table %q has no column %q", tb.name, name)
		}
		cols = append(cols, ci)
		vals = append(vals, v)
	}
	if err := tb.store.Update(t.inner, key, cols, vals); err != nil {
		return err
	}
	if tb.db.logger != nil {
		rec := wal.Record{Kind: wal.KindUpdate, TxnID: t.inner.ID, Table: tb.id, Key: zig(key)}
		for i := range cols {
			rec.Cols = append(rec.Cols, uint32(cols[i]))
			rec.TVals = append(rec.TVals, toTyped(vals[i]))
		}
		if _, err := tb.db.logger.Append(rec); err != nil {
			return t.poisonWAL(err)
		}
	}
	return nil
}

// Delete removes the record with key.
func (tb *Table) Delete(t *Txn, key int64) error {
	if err := tb.store.Delete(t.inner, key); err != nil {
		return err
	}
	if tb.db.logger != nil {
		if _, err := tb.db.logger.Append(wal.Record{
			Kind: wal.KindDelete, TxnID: t.inner.ID, Table: tb.id, Key: zig(key),
		}); err != nil {
			return t.poisonWAL(err)
		}
	}
	return nil
}

// Get returns the requested columns (all columns when none named) of the
// record with key, under the transaction's isolation level.
func (tb *Table) Get(t *Txn, key int64, cols ...string) (Row, bool, error) {
	idx, err := tb.colIndexes(cols)
	if err != nil {
		return nil, false, err
	}
	vals, ok, err := tb.store.Get(t.inner, key, idx)
	if err != nil || !ok {
		return nil, ok, err
	}
	return tb.makeRow(idx, vals), true, nil
}

// GetSpeculative is Get under speculative-read semantics: it may observe
// pre-committed versions of competing transactions and registers commit
// validation (§5.1.1).
func (tb *Table) GetSpeculative(t *Txn, key int64, cols ...string) (Row, bool, error) {
	idx, err := tb.colIndexes(cols)
	if err != nil {
		return nil, false, err
	}
	vals, ok, err := tb.store.GetSpeculative(t.inner, key, idx)
	if err != nil || !ok {
		return nil, ok, err
	}
	return tb.makeRow(idx, vals), true, nil
}

// GetAt is a time-travel read: the record as of ts.
func (tb *Table) GetAt(ts Timestamp, key int64, cols ...string) (Row, bool, error) {
	idx, err := tb.colIndexes(cols)
	if err != nil {
		return nil, false, err
	}
	vals, ok, err := tb.store.GetAt(ts, key, idx)
	if err != nil || !ok {
		return nil, ok, err
	}
	return tb.makeRow(idx, vals), true, nil
}

func (tb *Table) makeRow(idx []int, vals []Value) Row {
	row := make(Row, len(idx))
	for i, ci := range idx {
		row[tb.schema.Cols[ci].Name] = vals[i]
	}
	return row
}

// Sum computes SUM(col) over live records as of ts (snapshot semantics);
// rows is the number of contributing records. A thin wrapper over the
// Query aggregate plan: the fold runs inside the shared columnar scan
// engine, fanned across the table's scan worker pool
// (TableOptions.ScanWorkers).
func (tb *Table) Sum(ts Timestamp, col string) (sum int64, rows int64, err error) {
	res, err := tb.Query().At(ts).Aggregate(Sum(col))
	if err != nil {
		return 0, 0, err
	}
	return res.Int(0), res.Rows(0), nil
}

// Scan applies fn to every live record as of ts, in primary-RID order; fn
// returning false stops. A thin wrapper over the unfiltered Query scan plan
// that materializes a Row map per record — filtering callers should use
// Query directly, whose pushed-down predicates skip non-matching rows
// before any materialization. With ScanWorkers > 1 ranges are scanned
// concurrently, but fn always runs on the calling goroutine and observes
// exactly the sequential row order.
func (tb *Table) Scan(ts Timestamp, cols []string, fn func(key int64, row Row) bool) error {
	q := tb.Query().At(ts)
	if len(cols) > 0 {
		q.Select(cols...)
	}
	return q.Rows(func(rv *RowView) bool {
		return fn(rv.Key(), rv.Row())
	})
}

// FindBy returns the keys of records whose col equals v as of ts — a thin
// wrapper over the Query index-probe plan. The column must carry a declared
// secondary index (TableOptions.SecondaryIndexes) or FindBy fails with
// ErrNoIndex; Query with an Eq predicate instead falls back to a filtered
// scan when no index exists.
func (tb *Table) FindBy(ts Timestamp, col string, v Value) ([]int64, error) {
	ci := tb.schema.ColIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("lstore: table %q has no column %q", tb.name, col)
	}
	if !tb.store.HasSecondary(ci) {
		return nil, fmt.Errorf("lstore: table %q column %q: %w", tb.name, col, ErrNoIndex)
	}
	if v.IsNull() {
		// Secondary indexes never hold nulls, so the probe was always empty;
		// do not fall into Query's IS NULL scan semantics.
		return nil, nil
	}
	return tb.Query().At(ts).Where(Eq(col, v)).Keys()
}

// Merge synchronously consolidates every range's committed tail backlog
// (the background merge does this automatically unless disabled). Returns
// the number of tail records consolidated.
func (tb *Table) Merge() int { return tb.store.ForceMerge() }

// CompressHistory moves fully merged historic tail records into the
// delta-compressed history store (§4.3). Returns records moved.
func (tb *Table) CompressHistory() int { return tb.store.CompressHistory() }

// Stats returns engine counters and merge-lag gauges.
func (tb *Table) Stats() core.StatsSnapshot { return tb.store.Stats() }

// CompressionStats summarizes the encoded footprint of the table's sealed
// base pages (page counts per encoding, logical vs physical words).
func (tb *Table) CompressionStats() core.CompressionStats { return tb.store.CompressionStats() }

// Lineage reports every update range's per-column merge lineage
// ({cursor, TPS} records; see §4.2) for introspection tools.
func (tb *Table) Lineage() []core.RangeLineage { return tb.store.LineageSnapshot() }

func toTyped(v Value) wal.TypedVal {
	switch {
	case v.IsNull():
		return wal.TypedVal{Kind: wal.TVNull}
	case v.Kind() == types.String:
		return wal.TypedVal{Kind: wal.TVString, S: v.Str()}
	default:
		return wal.TypedVal{Kind: wal.TVInt, I: v.Int()}
	}
}
